#!/usr/bin/env python3
"""Unit tests for bench/regression.py gating logic.

Runs the checker as a subprocess over synthetic reports, pinning the
missing-section rule (a gated section present in the baseline but absent
from the candidate must FAIL, not silently skip) and the array_scaling
gates (hard determinism, hw_threads-conditional scaling floor).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

REGRESSION = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "regression.py")


def minimal_report(**extra):
    report = {
        "schema": "fw-bench-sim/2",
        "queue_speedup": 5.0,
        "bucketed_events_per_sec": 1e6,
        "seed": 42,
        "e2e": {"dataset": "TT", "scale": "test", "walks": 1000,
                "sim_exec_ns": 12345},
    }
    report.update(extra)
    return report


def array_section(determinism_ok=True, scaling_4dev=2.5, hw_threads=8):
    return {
        "dataset": "TT",
        "walks": 50000,
        "seed": 42,
        "hw_threads": hw_threads,
        "determinism_ok": determinism_ok,
        "scaling_4dev": scaling_4dev,
        "points": [],
    }


def run_checker(base, cur, *args):
    with tempfile.TemporaryDirectory() as d:
        bpath = os.path.join(d, "base.json")
        cpath = os.path.join(d, "cur.json")
        with open(bpath, "w") as f:
            json.dump(base, f)
        with open(cpath, "w") as f:
            json.dump(cur, f)
        proc = subprocess.run(
            [sys.executable, REGRESSION, "--baseline", bpath,
             "--current", cpath, *args],
            capture_output=True, text=True)
    return proc


class MissingSectionTest(unittest.TestCase):
    def test_section_in_baseline_missing_from_candidate_fails(self):
        base = minimal_report(array_scaling=array_section())
        cur = minimal_report()
        proc = run_checker(base, cur)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("[MISSING]", proc.stdout)
        self.assertIn("array_scaling.missing", proc.stderr)

    def test_every_gated_section_obeys_the_missing_rule(self):
        for section, payload in [
            ("service_mix", {"dataset": "TT", "scale": "test", "seed": 42,
                             "mixes": []}),
            ("parallel", {"determinism_ok": True, "speedup_8w": 4.0,
                          "hw_threads": 8}),
            ("engine_parallel", {"determinism_ok": True, "speedup_8w": 3.0,
                                 "hw_threads": 8}),
            ("array_scaling", array_section()),
        ]:
            with self.subTest(section=section):
                base = minimal_report(**{section: payload})
                proc = run_checker(base, minimal_report())
                self.assertEqual(proc.returncode, 1,
                                 proc.stdout + proc.stderr)
                self.assertIn(f"{section}.missing", proc.stderr)

    def test_section_absent_from_both_skips(self):
        proc = run_checker(minimal_report(), minimal_report())
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("checks skipped", proc.stdout)


def mix_section(models=None):
    return {
        "dataset": "TT",
        "scale": "test",
        "seed": 42,
        "mixes": [],
        "models": models if models is not None else [],
    }


def model_entry(name, legacy=False, deterministic=True, makespan_ns=1000):
    return {"name": name, "legacy": legacy, "deterministic": deterministic,
            "makespan_ns": makespan_ns, "steps": 500}


class CheckModelsTest(unittest.TestCase):
    def test_passing_model_block(self):
        sect = mix_section([model_entry("deepwalk", legacy=True),
                            model_entry("metapath")])
        proc = run_checker(minimal_report(service_mix=sect),
                           minimal_report(service_mix=sect))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("service_mix.models[deepwalk].makespan_ns", proc.stdout)
        self.assertIn("service_mix.models[metapath].deterministic", proc.stdout)

    def test_new_model_nondeterminism_fails_even_without_baseline_entry(self):
        base = minimal_report(service_mix=mix_section([]))
        cur = minimal_report(service_mix=mix_section(
            [model_entry("metapath", deterministic=False)]))
        proc = run_checker(base, cur)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("service_mix.models.metapath.deterministic", proc.stderr)

    def test_legacy_makespan_drift_fails(self):
        base = minimal_report(service_mix=mix_section(
            [model_entry("ppr", legacy=True, makespan_ns=1000)]))
        cur = minimal_report(service_mix=mix_section(
            [model_entry("ppr", legacy=True, makespan_ns=1001)]))
        proc = run_checker(base, cur)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("service_mix.models.ppr.makespan_ns", proc.stderr)

    def test_new_model_makespan_drift_is_not_gated(self):
        base = minimal_report(service_mix=mix_section(
            [model_entry("autoreg", makespan_ns=1000)]))
        cur = minimal_report(service_mix=mix_section(
            [model_entry("autoreg", makespan_ns=2000)]))
        proc = run_checker(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_model_vanishing_from_candidate_fails(self):
        base = minimal_report(service_mix=mix_section(
            [model_entry("metapath")]))
        cur = minimal_report(service_mix=mix_section([]))
        proc = run_checker(base, cur)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("service_mix.models.metapath", proc.stderr)


class ArrayScalingTest(unittest.TestCase):
    def test_passing_section(self):
        base = minimal_report(array_scaling=array_section())
        cur = minimal_report(array_scaling=array_section())
        proc = run_checker(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("array_scaling.determinism_ok: True", proc.stdout)

    def test_nondeterminism_always_fails(self):
        base = minimal_report(array_scaling=array_section())
        cur = minimal_report(
            array_scaling=array_section(determinism_ok=False, hw_threads=2))
        proc = run_checker(base, cur)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("array_scaling.determinism_ok", proc.stderr)

    def test_scaling_floor_gated_only_with_8_hw_threads(self):
        base = minimal_report(array_scaling=array_section())
        low = minimal_report(
            array_scaling=array_section(scaling_4dev=1.2, hw_threads=4))
        proc = run_checker(base, low)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("[informational]", proc.stdout)

        low_hw8 = minimal_report(
            array_scaling=array_section(scaling_4dev=1.2, hw_threads=8))
        proc = run_checker(base, low_hw8)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("array_scaling.scaling_4dev", proc.stderr)

    def test_array_floor_flag_overrides(self):
        base = minimal_report(array_scaling=array_section())
        cur = minimal_report(
            array_scaling=array_section(scaling_4dev=1.2, hw_threads=8))
        proc = run_checker(base, cur, "--array-floor", "1.0")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
