// All-engines comparison (extension): one workload through the full
// comparator set the paper's related work spans —
//   DrunkardMob  (out-of-core, iteration-synchronous),
//   GraphWalker  (out-of-core, asynchronous — the paper's baseline),
//   GraphSSD     (graph-semantic storage, host-driven walks),
//   ThunderRW    (in-memory, single node),
//   KnightKing   (in-memory, distributed, 4 workers),
//   FlashWalker  (in-storage).
// Positioning mirrors the paper's §V discussion: in-memory engines are fast
// but capacity-bound; FlashWalker reaches flash capacity at near-in-memory
// rates.
#include <iostream>

#include "baseline/graphssd.hpp"
#include "baseline/knightking.hpp"
#include "baseline/thunder.hpp"
#include "bench_common.hpp"

using namespace fw;

int main() {
  bench::print_banner("Engine comparison — the related-work spectrum",
                      "extension (paper §V positioning)");

  for (const auto id : {graph::DatasetId::TT, graph::DatasetId::FS}) {
    const auto& g = bench::bench_graph(id);
    rw::WalkSpec spec;
    spec.num_walks = graph::default_walk_count(id, graph::Scale::kBench);
    spec.length = 6;

    std::cout << "\n--- " << bench::dataset_abbrev(id) << " (" << spec.num_walks
              << " walks) ---\n";
    TextTable table({"engine", "class", "time", "vs FlashWalker"});

    bench::RunConfig cfg;
    cfg.dataset = id;
    const auto fw_r = bench::run_flashwalker(cfg);
    auto rel = [&](Tick t) {
      return TextTable::num(static_cast<double>(t) /
                                static_cast<double>(fw_r.exec_time),
                            2) +
             "x";
    };
    table.add_row({"FlashWalker", "in-storage", TextTable::time_ns(fw_r.exec_time),
                   "1.00x"});

    {
      baseline::ThunderOptions opts;
      opts.ssd = bench::bench_ssd();
      opts.spec = spec;
      opts.host = bench::bench_host();
      opts.host.memory_bytes = g.csr_size_bytes() + MiB;  // in-memory engine
      opts.record_visits = false;
      baseline::ThunderEngine engine(g, opts);
      const auto r = engine.run();
      table.add_row({"ThunderRW", "in-memory", TextTable::time_ns(r.exec_time),
                     rel(r.exec_time)});
    }
    {
      baseline::KnightKingOptions opts;
      opts.workers = 4;
      opts.spec = spec;
      opts.record_visits = false;
      baseline::KnightKingEngine engine(g, opts);
      const auto r = engine.run();
      table.add_row({"KnightKing (4 workers)", "distributed",
                     TextTable::time_ns(r.base.exec_time), rel(r.base.exec_time)});
    }
    {
      const auto r = bench::run_graphwalker(cfg);
      table.add_row({"GraphWalker", "out-of-core async", TextTable::time_ns(r.exec_time),
                     rel(r.exec_time)});
    }
    {
      baseline::GraphSsdOptions opts;
      opts.ssd = bench::bench_ssd();
      opts.spec = spec;
      opts.host = bench::bench_host();
      opts.record_visits = false;
      baseline::GraphSsdEngine engine(g, opts);
      const auto r = engine.run();
      table.add_row({"GraphSSD (semantic reads)", "in-storage reads, host walks",
                     TextTable::time_ns(r.exec_time), rel(r.exec_time)});
    }
    {
      baseline::DrunkardMobOptions opts;
      opts.ssd = bench::bench_ssd();
      opts.spec = spec;
      opts.host = bench::bench_host();
      opts.record_visits = false;
      baseline::DrunkardMobEngine engine(g, opts);
      const auto r = engine.run();
      table.add_row({"DrunkardMob", "out-of-core iteration",
                     TextTable::time_ns(r.exec_time), rel(r.exec_time)});
    }
    table.print(std::cout);
  }
  std::cout << "\nThe out-of-core engines pay the PCIe / iteration taxes the\n"
               "paper targets (5-12x). The in-memory engines are within 2-3x —\n"
               "but they cap out at DRAM size, while FlashWalker's 128-chip\n"
               "update fabric serves flash-capacity graphs and still leads an\n"
               "8-core host on raw update throughput.\n";
  return 0;
}
