// Multi-SSD array scale-out benchmark: aggregate simulated walks/sec at
// 1/2/4/8 devices plus the forwarding traffic the host fabric carried.
//
// Every number is simulated (exec time, walks/sec, forwarded walks), so
// each point is bit-deterministic for a fixed seed and machine-independent;
// the bench re-runs every point at --sim-threads 1 and 8 and byte-compares
// the serialized reports (determinism_ok). bench/regression.py gates
// determinism always and the 4-device scaling ratio on hosts with >= 8
// hardware threads (where CI actually exercises the parallel DES).
//
// Results land in the "array_scaling" section of BENCH_sim.json:
// --merge-into splices the section into an existing fw-bench-sim/2 report,
// --out writes a standalone report.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "accel/array/board_array.hpp"
#include "accel/builder.hpp"
#include "accel/report.hpp"
#include "bench_common.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "graph/datasets.hpp"
#include "partition/partitioned_graph.hpp"

namespace fw::bench {
namespace {

struct Point {
  std::uint32_t devices = 1;
  Tick exec = 0;
  double walks_per_sec = 0.0;
  std::uint64_t forwarded_walks = 0;
  std::uint64_t forward_batches = 0;
  std::uint64_t forwarded_bytes = 0;
  std::uint64_t timeout_flushes = 0;
  bool determinism_ok = false;
};

accel::SimulationConfig array_config(std::uint32_t devices, std::uint64_t walks,
                                     std::uint64_t seed, std::uint32_t sim_threads) {
  accel::SimulationConfig cfg;
  cfg.ssd = bench_ssd();
  cfg.accel = accel::bench_accel_config();
  cfg.record_visits = false;
  cfg.spec.num_walks = walks;
  cfg.spec.length = 6;
  cfg.spec.seed = seed;
  cfg.sim_threads = sim_threads;
  cfg.array.devices = devices;
  return cfg;
}

Point run_point(const partition::PartitionedGraph& pg, std::uint32_t devices,
                std::uint64_t walks, std::uint64_t seed) {
  accel::array::BoardArray a1(pg, array_config(devices, walks, seed, 1));
  const accel::array::ArrayResult r1 = a1.run();
  accel::array::BoardArray a8(pg, array_config(devices, walks, seed, 8));
  const accel::array::ArrayResult r8 = a8.run();

  Point p;
  p.devices = devices;
  p.exec = r1.exec_time;
  p.walks_per_sec = r1.walks_per_sec();
  p.forwarded_walks = r1.fabric.walks;
  p.forward_batches = r1.fabric.batches;
  p.forwarded_bytes = r1.fabric.bytes;
  p.timeout_flushes = r1.metrics.forward_timeout_flushes;
  p.determinism_ok =
      accel::to_json("array", r1) == accel::to_json("array", r8);
  return p;
}

std::string section_json(const std::vector<Point>& points, const std::string& dataset,
                         std::uint64_t walks, std::uint64_t seed,
                         std::uint32_t hw_threads, bool determinism_ok,
                         double scaling_4dev) {
  std::ostringstream os;
  os << "{\n"
     << "    \"dataset\": \"" << dataset << "\",\n"
     << "    \"walks\": " << walks << ",\n"
     << "    \"seed\": " << seed << ",\n"
     << "    \"hw_threads\": " << hw_threads << ",\n"
     << "    \"determinism_ok\": " << (determinism_ok ? "true" : "false") << ",\n"
     << "    \"scaling_4dev\": " << scaling_4dev << ",\n"
     << "    \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    os << "      {\"devices\": " << p.devices << ", \"exec_ns\": " << p.exec
       << ", \"walks_per_sec\": " << p.walks_per_sec
       << ", \"forwarded_walks\": " << p.forwarded_walks
       << ", \"forward_batches\": " << p.forward_batches
       << ", \"forwarded_bytes\": " << p.forwarded_bytes
       << ", \"timeout_flushes\": " << p.timeout_flushes
       << ", \"determinism_ok\": " << (p.determinism_ok ? "true" : "false") << "}"
       << (i + 1 < points.size() ? ",\n" : "\n");
  }
  os << "    ]\n"
     << "  }";
  return os.str();
}

/// Splice `section` into an existing fw-bench-sim/2 report as the trailing
/// "array_scaling" key, replacing any earlier section.
int merge_into(const std::string& path, const std::string& section) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "array_scaling: cannot read " << path << " (run sim_hotpath first)\n";
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();

  std::size_t cut = text.find(",\n  \"array_scaling\":");
  if (cut == std::string::npos) {
    cut = text.rfind('}');
    if (cut == std::string::npos) {
      std::cerr << "array_scaling: " << path << " is not a JSON report\n";
      return 1;
    }
    while (cut > 0 && (text[cut - 1] == '\n' || text[cut - 1] == ' ')) --cut;
  }
  text.resize(cut);
  text += ",\n  \"array_scaling\": " + section + "\n}\n";

  std::ofstream out(path);
  if (!out) {
    std::cerr << "array_scaling: cannot write " << path << "\n";
    return 1;
  }
  out << text;
  std::cout << "merged array_scaling section into " << path << "\n";
  return 0;
}

}  // namespace
}  // namespace fw::bench

int main(int argc, char** argv) {
  using namespace fw;
  using namespace fw::bench;

  std::string out_path;
  std::string merge_path;
  std::string dataset = "TT";
  std::uint64_t walks = 50000;
  std::uint64_t seed = bench_seed();
  OptionSet opts;
  opts.opt("--out", &out_path, "FILE", "write a standalone array_scaling report");
  opts.opt("--merge-into", &merge_path, "FILE",
           "splice the array_scaling section into an\n"
           "existing fw-bench-sim/2 report (BENCH_sim.json)");
  opts.opt("--dataset", &dataset, "TT|FS|CW|R2B|R8B", "dataset (default TT)");
  opts.opt("--walks", &walks, "N", "walks per point (default 50000)");
  opts.opt("--seed", &seed, "N", "walk RNG seed");
  opts.parse_or_exit(argc, argv,
                     "Multi-SSD array scale-out: walks/sec at 1/2/4/8 devices");

  print_banner("Multi-SSD array — aggregate walks/sec and fabric traffic vs devices",
               "scale-out extension (not a paper figure)");

  graph::DatasetId id = graph::DatasetId::TT;
  for (const auto& info : graph::all_datasets()) {
    if (info.abbrev == dataset) id = info.id;
  }
  const graph::CsrGraph g = graph::make_dataset(id, graph::Scale::kTest);
  // One partition per graph block and a fine 2 KiB block grain: ~50
  // partitions on the test-scale graph, so even the 8-device point gets a
  // balanced stripe (the round-robin device assignment needs partitions >>
  // devices or the largest per-board share caps the speedup). Identical for
  // every device count — only the device assignment varies.
  partition::PartitionConfig pc = bench_partition();
  pc.block_capacity_bytes = 2 * KiB;
  pc.subgraphs_per_partition = 1;
  const partition::PartitionedGraph pg(g, pc);
  std::cout << "graph: " << g.num_vertices() << " vertices, " << pg.num_partitions()
            << " partitions\n\n";

  const std::uint32_t hw_threads = std::thread::hardware_concurrency();
  std::vector<Point> points;
  TextTable table({"devices", "exec", "walks/s", "fwd walks", "batches", "det"});
  for (const std::uint32_t d : {1u, 2u, 4u, 8u}) {
    const Point p = run_point(pg, d, walks, seed);
    table.add_row({std::to_string(p.devices), TextTable::time_ns(p.exec),
                   TextTable::num(p.walks_per_sec, 0), std::to_string(p.forwarded_walks),
                   std::to_string(p.forward_batches), p.determinism_ok ? "ok" : "FAIL"});
    points.push_back(p);
  }
  table.print(std::cout);

  bool determinism_ok = true;
  for (const Point& p : points) determinism_ok &= p.determinism_ok;
  const double scaling_4dev =
      points[0].walks_per_sec == 0.0 ? 0.0
                                     : points[2].walks_per_sec / points[0].walks_per_sec;
  std::cout << "\n4-device scaling: " << TextTable::num(scaling_4dev, 2)
            << "x single-device (simulated), determinism "
            << (determinism_ok ? "ok" : "FAIL") << "\n";
  if (!determinism_ok) return 1;

  const std::string section = section_json(points, dataset, walks, seed, hw_threads,
                                           determinism_ok, scaling_4dev);
  if (!merge_path.empty()) {
    if (const int rc = merge_into(merge_path, section); rc != 0) return rc;
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << "{\n  \"schema\": \"fw-bench-sim/2\",\n  \"array_scaling\": " << section
        << "\n}\n";
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
