// DES hot-path benchmark: event-queue throughput + end-to-end walk rate.
//
// Two measurements, both emitted as JSON (BENCH_sim.json) so
// bench/regression.py can track the trajectory across PRs:
//
//  1. Events/sec through the kernel loop (push one / pop one at steady
//     state, ~4K in-flight events) with delays drawn from the Table III
//     latency mixture the engine actually schedules — accelerator cycles,
//     DRAM accesses, channel transfers, roving polls, flash reads/programs,
//     erases. Run against both the current bucketed EventQueue and a
//     faithful copy of the pre-optimization binary heap of std::function
//     closures (`LegacyEventQueue` below), giving a same-binary speedup
//     number that is meaningful across machines.
//
//  2. End-to-end FlashWalker engine throughput (hops/sec wall-clock) on a
//     dataset/scale of choice, plus the simulated exec_time, which is
//     deterministic for a fixed seed and doubles as a cross-machine
//     regression guard.
//
// Usage: sim_hotpath [--out FILE] [--events N] [--dataset TT] [--scale
// test|small|bench] [--walks N] [--seed N] [--quick]
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "accel/config.hpp"
#include "accel/builder.hpp"
#include "accel/engine.hpp"
#include "accel/lookahead.hpp"
#include "bench_common.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "graph/datasets.hpp"
#include "partition/partitioned_graph.hpp"
#include "sim/event_queue.hpp"
#include "sim/parallel_sim.hpp"

namespace fw::bench {
namespace {

/// The event queue this PR replaced, verbatim: a std::priority_queue of
/// heap-allocating std::function closures. Kept here (not in src/) purely
/// as the microbench comparison point.
class LegacyEventQueue {
 public:
  using Fn = std::function<void()>;

  void push(Tick at, Fn fn) { heap_.push(Event{at, next_seq_++, std::move(fn)}); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  std::pair<Tick, Fn> pop() {
    const Event& top = heap_.top();
    std::pair<Tick, Fn> result{top.at, std::move(top.fn)};
    heap_.pop();
    return result;
  }

 private:
  struct Event {
    Tick at;
    std::uint64_t seq;
    mutable Fn fn;

    bool operator>(const Event& other) const {
      return at != other.at ? at > other.at : seq > other.seq;
    }
  };

  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
};

/// Delay mixture keyed to the latency clusters the engine schedules
/// (Table II cycle times, Table III DRAM/flash timings). Percentages are
/// rough shares of event traffic in a bench-scale run.
Tick next_delay(Xoshiro256& rng) {
  const std::uint64_t r = rng.bounded(1000);
  if (r < 550) return 4 + 4 * rng.bounded(4);        // updater/guider cycles
  if (r < 750) return 55;                            // DRAM access
  if (r < 880) return 200 + rng.bounded(1200);       // ONFI channel transfer
  if (r < 960) return 2 * kUs;                       // roving poll interval
  if (r < 992) return 35 * kUs;                      // flash page read
  if (r < 999) return 350 * kUs;                     // flash page program
  return 2 * kMs;                                    // block erase
}

/// Steady-state kernel loop: pop an event, run its (engine-sized, ~40 B
/// capture) closure, schedule a successor. Returns events/sec and feeds a
/// checksum through the handlers so nothing folds away.
template <typename Queue>
double measure_events_per_sec(std::uint64_t total_events, std::uint64_t seed,
                              std::uint64_t* checksum_out) {
  Queue q;
  Xoshiro256 rng(seed);
  std::uint64_t checksum = 0;
  constexpr std::uint64_t kInFlight = 4096;

  // Engine-shaped payload: a this-pointer-sized handle plus a few scalars
  // (comfortably past std::function's 16-byte inline buffer, inside
  // EventFn's 64 bytes).
  auto make_handler = [&checksum](std::uint64_t a, std::uint64_t b, std::uint64_t c,
                                  std::uint64_t d) {
    return [&checksum, a, b, c, d] { checksum += a ^ (b + c) ^ d; };
  };

  Tick now = 0;
  for (std::uint64_t i = 0; i < kInFlight; ++i) {
    q.push(next_delay(rng), make_handler(i, i + 1, i + 2, i + 3));
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t done = 0; done < total_events; ++done) {
    auto [at, fn] = q.pop();
    now = at;
    fn();
    q.push(now + next_delay(rng), make_handler(done, now, done + now, done ^ now));
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  while (!q.empty()) q.pop();
  *checksum_out = checksum;
  return static_cast<double>(total_events) / secs;
}

// --- parallel section -------------------------------------------------------
//
// Engine-shaped sharded workload for the conservative-lookahead parallel
// DES: one shard per channel plus a hub shard (the board), each shard
// driving self-perpetuating event chains with a mostly-local delay mixture
// (cycles/DRAM, all inside one lookahead window) and a ~6% tail of
// cross-shard sends routed at >= lookahead — the traffic shape
// src/accel/engine.cpp produces per the shard audit. The same workload runs
// on a single serial bucketed EventQueue (the baseline) and on
// sim::ParallelSimulator at several worker counts; per-shard checksums and
// event counts must agree across worker counts (the determinism gate).

struct ShardCtx {
  Xoshiro256 rng{0};
  std::uint64_t checksum = 0;
};

/// Shard-local delays: small enough that each shard executes several
/// events per ~260 ns window.
Tick local_delay(Xoshiro256& rng) {
  const std::uint64_t r = rng.bounded(100);
  if (r < 70) return 4 + 4 * rng.bounded(4);  // accelerator cycles
  if (r < 90) return 55;                      // DRAM access
  return 100 + rng.bounded(100);              // short channel hop
}

/// Chain driver over the parallel simulator. Each fire consumes one hop of
/// its chain's budget and schedules exactly one successor, ~6% of them
/// cross-shard (half to the hub, half to a random shard).
struct ParallelDriver {
  sim::ParallelSimulator& ps;
  std::vector<ShardCtx>& ctx;
  std::uint32_t shards;
  Tick lookahead;

  void fire(sim::ShardId s, std::uint32_t hops) {
    ShardCtx& c = ctx[s];
    c.checksum += (ps.shard(s).now() << 1) ^ hops;
    if (hops == 0) return;
    const std::uint64_t r = c.rng.bounded(1000);
    if (r < 60) {
      const auto dst = r < 30 ? sim::ShardId{0}
                              : static_cast<sim::ShardId>(1 + c.rng.bounded(shards - 1));
      ps.shard(s).send(dst, lookahead + c.rng.bounded(256),
                       [this, dst, hops] { fire(dst, hops - 1); });
    } else {
      ps.shard(s).schedule(local_delay(c.rng),
                           [this, s, hops] { fire(s, hops - 1); });
    }
  }
};

/// Identical workload on one serial bucketed queue: the speedup
/// denominator. (Event totals match the parallel runs exactly; checksums
/// are not compared against them — single-queue interleaving legitimately
/// orders equal-tick cross traffic differently.)
struct SerialDriver {
  sim::EventQueue& q;
  std::vector<ShardCtx>& ctx;
  std::uint32_t shards;
  Tick lookahead;
  Tick now = 0;

  void fire(std::uint32_t s, std::uint32_t hops) {
    ShardCtx& c = ctx[s];
    c.checksum += (now << 1) ^ hops;
    if (hops == 0) return;
    const std::uint64_t r = c.rng.bounded(1000);
    if (r < 60) {
      const auto dst =
          r < 30 ? 0u : static_cast<std::uint32_t>(1 + c.rng.bounded(shards - 1));
      q.push(now + lookahead + c.rng.bounded(256),
             [this, dst, hops] { fire(dst, hops - 1); });
    } else {
      q.push(now + local_delay(c.rng), [this, s, hops] { fire(s, hops - 1); });
    }
  }
};

struct ParallelRun {
  double events_per_sec = 0.0;
  std::uint64_t events = 0;
  std::uint64_t checksum = 0;
};

constexpr std::uint32_t kParChains = 8;  ///< chains seeded per shard

void seed_shard_rngs(std::vector<ShardCtx>& ctx, std::uint64_t seed) {
  for (std::size_t s = 0; s < ctx.size(); ++s) {
    ctx[s].rng = Xoshiro256(seed ^ (0x9e3779b97f4a7c15ull * (s + 1)));
    ctx[s].checksum = 0;
  }
}

ParallelRun run_parallel(std::uint32_t shards, Tick lookahead, std::uint32_t workers,
                         std::uint32_t hops, std::uint64_t seed) {
  sim::ParallelSimulator ps(shards, lookahead, workers);
  std::vector<ShardCtx> ctx(shards);
  seed_shard_rngs(ctx, seed);
  ParallelDriver drv{ps, ctx, shards, lookahead};
  for (std::uint32_t s = 0; s < shards; ++s) {
    for (std::uint32_t k = 0; k < kParChains; ++k) {
      ps.shard(s).schedule(8 * k + s % 8, [&drv, s, hops] { drv.fire(s, hops); });
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t executed = ps.run();
  const auto t1 = std::chrono::steady_clock::now();

  ParallelRun r;
  r.events = executed;
  r.events_per_sec =
      static_cast<double>(executed) / std::chrono::duration<double>(t1 - t0).count();
  // Fold shard clocks in too: a determinism breach in timing (not just
  // payload order) must flip the checksum.
  for (std::uint32_t s = 0; s < shards; ++s) {
    r.checksum ^= ctx[s].checksum + 0x9e3779b97f4a7c15ull * ps.shard(s).now();
  }
  return r;
}

ParallelRun run_serial_sharded(std::uint32_t shards, Tick lookahead,
                               std::uint32_t hops, std::uint64_t seed) {
  sim::EventQueue q;
  std::vector<ShardCtx> ctx(shards);
  seed_shard_rngs(ctx, seed);
  SerialDriver drv{q, ctx, shards, lookahead};
  for (std::uint32_t s = 0; s < shards; ++s) {
    for (std::uint32_t k = 0; k < kParChains; ++k) {
      q.push(8 * k + s % 8, [&drv, s, hops] { drv.fire(s, hops); });
    }
  }
  ParallelRun r;
  const auto t0 = std::chrono::steady_clock::now();
  while (auto ev = q.try_pop()) {
    drv.now = ev->first;
    ev->second();
    ++r.events;
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.events_per_sec =
      static_cast<double>(r.events) / std::chrono::duration<double>(t1 - t0).count();
  return r;
}

struct E2eResult {
  double wall_s = 0.0;
  double hops_per_sec = 0.0;
  double walks_per_sec = 0.0;
  std::uint64_t total_hops = 0;
  std::uint64_t walks = 0;
  Tick sim_exec_ns = 0;
  accel::ShardAuditReport audit;  ///< filled when measured with audit=true
};

E2eResult measure_engine(graph::DatasetId id, graph::Scale scale, std::uint64_t walks,
                         std::uint64_t seed, std::uint32_t sim_threads = 1,
                         bool audit = false) {
  const graph::CsrGraph g = graph::make_dataset(id, scale);
  const partition::PartitionedGraph pg(g, bench_partition());

  accel::EngineOptions opts;
  opts.ssd = bench_ssd();
  opts.accel = accel::bench_accel_config();
  opts.spec.num_walks = walks ? walks : graph::default_walk_count(id, scale);
  opts.spec.length = 6;
  opts.spec.seed = seed;
  opts.record_visits = false;
  opts.sim_threads = sim_threads;
  opts.shard_audit = audit;

  auto engine = accel::SimulationBuilder(pg).options(opts).build();
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = engine.run();
  const auto t1 = std::chrono::steady_clock::now();

  E2eResult e2e;
  e2e.wall_s = std::chrono::duration<double>(t1 - t0).count();
  e2e.total_hops = result.metrics.total_hops;
  e2e.walks = result.metrics.walks_completed;
  e2e.hops_per_sec = static_cast<double>(e2e.total_hops) / e2e.wall_s;
  e2e.walks_per_sec = static_cast<double>(e2e.walks) / e2e.wall_s;
  e2e.sim_exec_ns = result.exec_time;
  e2e.audit = result.shard_audit;
  return e2e;
}

graph::Scale parse_scale(const std::string& s) {
  if (s == "test") return graph::Scale::kTest;
  if (s == "small") return graph::Scale::kSmall;
  if (s == "bench") return graph::Scale::kBench;
  std::cerr << "unknown scale '" << s << "' (test|small|bench)\n";
  std::exit(2);
}

graph::DatasetId parse_dataset(const std::string& s) {
  for (const auto& info : graph::all_datasets()) {
    if (info.abbrev == s) return info.id;
  }
  std::cerr << "unknown dataset '" << s << "'\n";
  std::exit(2);
}

}  // namespace
}  // namespace fw::bench

int main(int argc, char** argv) {
  using namespace fw;
  using namespace fw::bench;

  std::string out_path = "BENCH_sim.json";
  std::string dataset = "TT";
  std::string scale = "small";
  std::uint64_t events = 2'000'000;
  std::uint64_t walks = 20'000;
  std::uint64_t seed = bench_seed();
  bool parallel = false;
  std::uint64_t par_events = 2'000'000;
  OptionSet opts;
  opts.opt("--out", &out_path, "FILE", "report path (default BENCH_sim.json)");
  opts.opt("--events", &events, "N", "microbench event count");
  opts.opt("--dataset", &dataset, "TT|FS|CW|R2B|R8B", "e2e dataset (default TT)");
  opts.opt("--scale", &scale, "test|small|bench", "e2e dataset scale");
  opts.opt("--walks", &walks, "N", "e2e walk count");
  opts.opt("--seed", &seed, "N", "RNG seed");
  opts.flag("--parallel", &parallel,
            "also measure the sharded parallel DES and\n"
            "the concurrent engine (1/2/4/8 workers)");
  opts.opt("--par-events", &par_events, "N", "parallel-section event target");
  opts.flag("--quick", "CI preset: 400k events, test scale, 5k walks", [&] {
    events = 400'000;
    scale = "test";
    walks = 5'000;
    par_events = 300'000;
  });
  opts.parse_or_exit(argc, argv,
                     "DES hot-path benchmark: event-queue + engine throughput");

  print_banner("DES hot path — event queue + engine throughput",
               "kernel microbench (not a paper figure)");

  // Warm-up pass primes the allocator and branch predictors for both
  // queues; the measured passes follow.
  std::uint64_t checksum_bucketed = 0;
  std::uint64_t checksum_legacy = 0;
  measure_events_per_sec<sim::EventQueue>(events / 10, seed, &checksum_bucketed);
  measure_events_per_sec<LegacyEventQueue>(events / 10, seed, &checksum_legacy);

  const double bucketed =
      measure_events_per_sec<sim::EventQueue>(events, seed, &checksum_bucketed);
  const double legacy =
      measure_events_per_sec<LegacyEventQueue>(events, seed, &checksum_legacy);
  if (checksum_bucketed != checksum_legacy) {
    std::cerr << "FATAL: queue implementations executed different event sets\n";
    return 1;
  }
  const double speedup = bucketed / legacy;

  std::cout << "\nEvent-queue microbench (" << events << " events, seed " << seed
            << "):\n"
            << "  bucketed queue : " << static_cast<std::uint64_t>(bucketed)
            << " events/s\n"
            << "  legacy heap    : " << static_cast<std::uint64_t>(legacy)
            << " events/s\n"
            << "  speedup        : " << speedup << "x\n";

  // Parallel DES section: serial sharded baseline + 1/2/4/8-worker runs of
  // the identical workload, with a cross-worker-count determinism check.
  const std::uint32_t par_shards = 1 + bench_ssd().topo.channels;
  const Tick par_lookahead =
      accel::conservative_lookahead_ns(accel::bench_accel_config(), bench_ssd());
  ParallelRun par_serial;
  std::vector<std::pair<std::uint32_t, ParallelRun>> par_runs;
  bool determinism_ok = true;
  if (parallel) {
    const auto hops = static_cast<std::uint32_t>(std::max<std::uint64_t>(
        1, par_events / (par_shards * kParChains) - 1));
    // Warm-up (primes allocator + branch predictors, like section 1).
    run_serial_sharded(par_shards, par_lookahead, hops / 4, seed);
    par_serial = run_serial_sharded(par_shards, par_lookahead, hops, seed);
    for (const std::uint32_t w : {1u, 2u, 4u, 8u}) {
      par_runs.emplace_back(w, run_parallel(par_shards, par_lookahead, w, hops, seed));
    }
    for (const auto& [w, r] : par_runs) {
      determinism_ok &= r.checksum == par_runs.front().second.checksum &&
                        r.events == par_runs.front().second.events;
    }
    std::cout << "\nParallel DES (" << par_shards << " shards, lookahead "
              << par_lookahead << " ns, " << par_serial.events << " events):\n"
              << "  serial queue   : "
              << static_cast<std::uint64_t>(par_serial.events_per_sec)
              << " events/s\n";
    for (const auto& [w, r] : par_runs) {
      std::cout << "  " << w << " worker(s)    : "
                << static_cast<std::uint64_t>(r.events_per_sec) << " events/s\n";
    }
    std::cout << "  determinism    : " << (determinism_ok ? "ok" : "FAILED")
              << " (1/2/4/8 workers)\n";
    if (!determinism_ok) {
      std::cerr << "FATAL: parallel runs diverged across worker counts\n";
      return 1;
    }
  }

  // Concurrent-engine section: the full FlashWalker engine at 1/2/4/8 DES
  // workers on the same workload. Every run must report the identical
  // simulated execution (exec_time / hops / walks are bit-deterministic
  // regardless of worker count); walks/sec wall-clock is the speedup story.
  std::vector<std::pair<std::uint32_t, E2eResult>> eng_runs;
  bool engine_determinism_ok = true;
  bool hub_determinism_ok = true;
  if (parallel) {
    for (const std::uint32_t w : {1u, 2u, 4u, 8u}) {
      eng_runs.emplace_back(w, measure_engine(parse_dataset(dataset), parse_scale(scale),
                                              walks, seed, w, /*audit=*/true));
    }
    for (const auto& [w, r] : eng_runs) {
      engine_determinism_ok &= r.sim_exec_ns == eng_runs.front().second.sim_exec_ns &&
                               r.total_hops == eng_runs.front().second.total_hops &&
                               r.walks == eng_runs.front().second.walks;
      // The audit stream itself is part of the determinism contract: the
      // board-hub shape (event balance, batched handoffs, cross traffic)
      // must not depend on the worker count either.
      const accel::ShardAuditReport& base = eng_runs.front().second.audit;
      hub_determinism_ok &= r.audit.events == base.events &&
                            r.audit.board_events == base.board_events &&
                            r.audit.cross_sends == base.cross_sends &&
                            r.audit.board_batches == base.board_batches &&
                            r.audit.board_batched_ops == base.board_batched_ops;
    }
    std::cout << "\nConcurrent engine (" << dataset << "/" << scale << ", "
              << eng_runs.front().second.walks << " walks):\n";
    for (const auto& [w, r] : eng_runs) {
      std::cout << "  " << w << " worker(s)    : "
                << static_cast<std::uint64_t>(r.walks_per_sec) << " walks/s\n";
    }
    std::cout << "  determinism    : " << (engine_determinism_ok ? "ok" : "FAILED")
              << " (1/2/4/8 workers)\n";
    if (!engine_determinism_ok) {
      std::cerr << "FATAL: engine runs diverged across worker counts\n";
      return 1;
    }
    const accel::ShardAuditReport& hub = eng_runs.front().second.audit;
    std::cout << "\nBoard hub (" << hub.shards << " shards):\n"
              << "  events         : " << hub.events << " (board "
              << hub.board_events << ", share "
              << static_cast<double>(hub.board_share_ppm()) / 10000.0 << "%)\n"
              << "  cross sends    : " << hub.cross_sends << "\n"
              << "  board batches  : " << hub.board_batches << " carrying "
              << hub.board_batched_ops << " ops\n"
              << "  determinism    : " << (hub_determinism_ok ? "ok" : "FAILED")
              << " (audit stream, 1/2/4/8 workers)\n";
    if (!hub_determinism_ok) {
      std::cerr << "FATAL: shard-audit streams diverged across worker counts\n";
      return 1;
    }
  }

  const auto e2e =
      measure_engine(parse_dataset(dataset), parse_scale(scale), walks, seed);
  std::cout << "\nEnd-to-end engine (" << dataset << "/" << scale << ", " << e2e.walks
            << " walks):\n"
            << "  wall time      : " << e2e.wall_s << " s\n"
            << "  hops/s (wall)  : " << static_cast<std::uint64_t>(e2e.hops_per_sec)
            << "\n"
            << "  sim exec_time  : " << e2e.sim_exec_ns << " ns (deterministic)\n";

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"schema\": \"fw-bench-sim/2\",\n"
      << "  \"seed\": " << seed << ",\n"
      << "  \"events\": " << events << ",\n"
      << "  \"bucketed_events_per_sec\": " << static_cast<std::uint64_t>(bucketed)
      << ",\n"
      << "  \"legacy_events_per_sec\": " << static_cast<std::uint64_t>(legacy) << ",\n"
      << "  \"queue_speedup\": " << speedup << ",\n";
  if (parallel) {
    const double speedup_8w =
        par_runs.back().second.events_per_sec / par_serial.events_per_sec;
    out << "  \"parallel\": {\n"
        << "    \"shards\": " << par_shards << ",\n"
        << "    \"lookahead_ns\": " << par_lookahead << ",\n"
        << "    \"events\": " << par_serial.events << ",\n"
        << "    \"hw_threads\": " << std::thread::hardware_concurrency() << ",\n"
        << "    \"serial_events_per_sec\": "
        << static_cast<std::uint64_t>(par_serial.events_per_sec) << ",\n"
        << "    \"workers\": {";
    for (std::size_t i = 0; i < par_runs.size(); ++i) {
      out << (i ? ", " : "") << "\"" << par_runs[i].first
          << "\": " << static_cast<std::uint64_t>(par_runs[i].second.events_per_sec);
    }
    out << "},\n"
        << "    \"speedup_8w\": " << speedup_8w << ",\n"
        << "    \"determinism_ok\": " << (determinism_ok ? "true" : "false") << "\n"
        << "  },\n";

    const double eng_speedup_8w =
        eng_runs.back().second.walks_per_sec / eng_runs.front().second.walks_per_sec;
    out << "  \"engine_parallel\": {\n"
        << "    \"hw_threads\": " << std::thread::hardware_concurrency() << ",\n"
        << "    \"sim_exec_ns\": " << eng_runs.front().second.sim_exec_ns << ",\n"
        << "    \"workers_walks_per_sec\": {";
    for (std::size_t i = 0; i < eng_runs.size(); ++i) {
      out << (i ? ", " : "") << "\"" << eng_runs[i].first
          << "\": " << static_cast<std::uint64_t>(eng_runs[i].second.walks_per_sec);
    }
    out << "},\n"
        << "    \"speedup_8w\": " << eng_speedup_8w << ",\n"
        << "    \"determinism_ok\": " << (engine_determinism_ok ? "true" : "false")
        << "\n"
        << "  },\n";

    const accel::ShardAuditReport& hub = eng_runs.front().second.audit;
    const std::uint64_t hub_hops = eng_runs.front().second.total_hops;
    out << "  \"board_hub\": {\n"
        << "    \"shards\": " << hub.shards << ",\n"
        << "    \"events\": " << hub.events << ",\n"
        << "    \"board_events\": " << hub.board_events << ",\n"
        << "    \"board_share_ppm\": " << hub.board_share_ppm() << ",\n"
        << "    \"cross_sends\": " << hub.cross_sends << ",\n"
        << "    \"board_batches\": " << hub.board_batches << ",\n"
        << "    \"board_batched_ops\": " << hub.board_batched_ops << ",\n"
        << "    \"total_hops\": " << hub_hops << ",\n"
        << "    \"cross_per_hop\": "
        << (hub_hops ? static_cast<double>(hub.cross_sends) /
                           static_cast<double>(hub_hops)
                     : 0.0)
        << ",\n"
        << "    \"determinism_ok\": " << (hub_determinism_ok ? "true" : "false")
        << "\n"
        << "  },\n";
  }
  out << "  \"e2e\": {\n"
      << "    \"dataset\": \"" << dataset << "\",\n"
      << "    \"scale\": \"" << scale << "\",\n"
      << "    \"walks\": " << e2e.walks << ",\n"
      << "    \"total_hops\": " << e2e.total_hops << ",\n"
      << "    \"wall_s\": " << e2e.wall_s << ",\n"
      << "    \"hops_per_sec\": " << static_cast<std::uint64_t>(e2e.hops_per_sec)
      << ",\n"
      << "    \"sim_exec_ns\": " << e2e.sim_exec_ns << "\n"
      << "  }\n"
      << "}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
