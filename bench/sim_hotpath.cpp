// DES hot-path benchmark: event-queue throughput + end-to-end walk rate.
//
// Two measurements, both emitted as JSON (BENCH_sim.json) so
// bench/regression.py can track the trajectory across PRs:
//
//  1. Events/sec through the kernel loop (push one / pop one at steady
//     state, ~4K in-flight events) with delays drawn from the Table III
//     latency mixture the engine actually schedules — accelerator cycles,
//     DRAM accesses, channel transfers, roving polls, flash reads/programs,
//     erases. Run against both the current bucketed EventQueue and a
//     faithful copy of the pre-optimization binary heap of std::function
//     closures (`LegacyEventQueue` below), giving a same-binary speedup
//     number that is meaningful across machines.
//
//  2. End-to-end FlashWalker engine throughput (hops/sec wall-clock) on a
//     dataset/scale of choice, plus the simulated exec_time, which is
//     deterministic for a fixed seed and doubles as a cross-machine
//     regression guard.
//
// Usage: sim_hotpath [--out FILE] [--events N] [--dataset TT] [--scale
// test|small|bench] [--walks N] [--seed N] [--quick]
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <queue>
#include <string>
#include <vector>

#include "accel/config.hpp"
#include "accel/builder.hpp"
#include "accel/engine.hpp"
#include "bench_common.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "graph/datasets.hpp"
#include "partition/partitioned_graph.hpp"
#include "sim/event_queue.hpp"

namespace fw::bench {
namespace {

/// The event queue this PR replaced, verbatim: a std::priority_queue of
/// heap-allocating std::function closures. Kept here (not in src/) purely
/// as the microbench comparison point.
class LegacyEventQueue {
 public:
  using Fn = std::function<void()>;

  void push(Tick at, Fn fn) { heap_.push(Event{at, next_seq_++, std::move(fn)}); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  std::pair<Tick, Fn> pop() {
    const Event& top = heap_.top();
    std::pair<Tick, Fn> result{top.at, std::move(top.fn)};
    heap_.pop();
    return result;
  }

 private:
  struct Event {
    Tick at;
    std::uint64_t seq;
    mutable Fn fn;

    bool operator>(const Event& other) const {
      return at != other.at ? at > other.at : seq > other.seq;
    }
  };

  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
};

/// Delay mixture keyed to the latency clusters the engine schedules
/// (Table II cycle times, Table III DRAM/flash timings). Percentages are
/// rough shares of event traffic in a bench-scale run.
Tick next_delay(Xoshiro256& rng) {
  const std::uint64_t r = rng.bounded(1000);
  if (r < 550) return 4 + 4 * rng.bounded(4);        // updater/guider cycles
  if (r < 750) return 55;                            // DRAM access
  if (r < 880) return 200 + rng.bounded(1200);       // ONFI channel transfer
  if (r < 960) return 2 * kUs;                       // roving poll interval
  if (r < 992) return 35 * kUs;                      // flash page read
  if (r < 999) return 350 * kUs;                     // flash page program
  return 2 * kMs;                                    // block erase
}

/// Steady-state kernel loop: pop an event, run its (engine-sized, ~40 B
/// capture) closure, schedule a successor. Returns events/sec and feeds a
/// checksum through the handlers so nothing folds away.
template <typename Queue>
double measure_events_per_sec(std::uint64_t total_events, std::uint64_t seed,
                              std::uint64_t* checksum_out) {
  Queue q;
  Xoshiro256 rng(seed);
  std::uint64_t checksum = 0;
  constexpr std::uint64_t kInFlight = 4096;

  // Engine-shaped payload: a this-pointer-sized handle plus a few scalars
  // (comfortably past std::function's 16-byte inline buffer, inside
  // EventFn's 64 bytes).
  auto make_handler = [&checksum](std::uint64_t a, std::uint64_t b, std::uint64_t c,
                                  std::uint64_t d) {
    return [&checksum, a, b, c, d] { checksum += a ^ (b + c) ^ d; };
  };

  Tick now = 0;
  for (std::uint64_t i = 0; i < kInFlight; ++i) {
    q.push(next_delay(rng), make_handler(i, i + 1, i + 2, i + 3));
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t done = 0; done < total_events; ++done) {
    auto [at, fn] = q.pop();
    now = at;
    fn();
    q.push(now + next_delay(rng), make_handler(done, now, done + now, done ^ now));
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  while (!q.empty()) q.pop();
  *checksum_out = checksum;
  return static_cast<double>(total_events) / secs;
}

struct E2eResult {
  double wall_s = 0.0;
  double hops_per_sec = 0.0;
  double walks_per_sec = 0.0;
  std::uint64_t total_hops = 0;
  std::uint64_t walks = 0;
  Tick sim_exec_ns = 0;
};

E2eResult measure_engine(graph::DatasetId id, graph::Scale scale, std::uint64_t walks,
                         std::uint64_t seed) {
  const graph::CsrGraph g = graph::make_dataset(id, scale);
  const partition::PartitionedGraph pg(g, bench_partition());

  accel::EngineOptions opts;
  opts.ssd = bench_ssd();
  opts.accel = accel::bench_accel_config();
  opts.spec.num_walks = walks ? walks : graph::default_walk_count(id, scale);
  opts.spec.length = 6;
  opts.spec.seed = seed;
  opts.record_visits = false;

  auto engine = accel::SimulationBuilder(pg).options(opts).build();
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = engine.run();
  const auto t1 = std::chrono::steady_clock::now();

  E2eResult e2e;
  e2e.wall_s = std::chrono::duration<double>(t1 - t0).count();
  e2e.total_hops = result.metrics.total_hops;
  e2e.walks = result.metrics.walks_completed;
  e2e.hops_per_sec = static_cast<double>(e2e.total_hops) / e2e.wall_s;
  e2e.walks_per_sec = static_cast<double>(e2e.walks) / e2e.wall_s;
  e2e.sim_exec_ns = result.exec_time;
  return e2e;
}

graph::Scale parse_scale(const std::string& s) {
  if (s == "test") return graph::Scale::kTest;
  if (s == "small") return graph::Scale::kSmall;
  if (s == "bench") return graph::Scale::kBench;
  std::cerr << "unknown scale '" << s << "' (test|small|bench)\n";
  std::exit(2);
}

graph::DatasetId parse_dataset(const std::string& s) {
  for (const auto& info : graph::all_datasets()) {
    if (info.abbrev == s) return info.id;
  }
  std::cerr << "unknown dataset '" << s << "'\n";
  std::exit(2);
}

}  // namespace
}  // namespace fw::bench

int main(int argc, char** argv) {
  using namespace fw;
  using namespace fw::bench;

  std::string out_path = "BENCH_sim.json";
  std::string dataset = "TT";
  std::string scale = "small";
  std::uint64_t events = 2'000'000;
  std::uint64_t walks = 20'000;
  std::uint64_t seed = bench_seed();
  OptionSet opts;
  opts.opt("--out", &out_path, "FILE", "report path (default BENCH_sim.json)");
  opts.opt("--events", &events, "N", "microbench event count");
  opts.opt("--dataset", &dataset, "TT|FS|CW|R2B|R8B", "e2e dataset (default TT)");
  opts.opt("--scale", &scale, "test|small|bench", "e2e dataset scale");
  opts.opt("--walks", &walks, "N", "e2e walk count");
  opts.opt("--seed", &seed, "N", "RNG seed");
  opts.flag("--quick", "CI preset: 400k events, test scale, 5k walks", [&] {
    events = 400'000;
    scale = "test";
    walks = 5'000;
  });
  opts.parse_or_exit(argc, argv,
                     "DES hot-path benchmark: event-queue + engine throughput");

  print_banner("DES hot path — event queue + engine throughput",
               "kernel microbench (not a paper figure)");

  // Warm-up pass primes the allocator and branch predictors for both
  // queues; the measured passes follow.
  std::uint64_t checksum_bucketed = 0;
  std::uint64_t checksum_legacy = 0;
  measure_events_per_sec<sim::EventQueue>(events / 10, seed, &checksum_bucketed);
  measure_events_per_sec<LegacyEventQueue>(events / 10, seed, &checksum_legacy);

  const double bucketed =
      measure_events_per_sec<sim::EventQueue>(events, seed, &checksum_bucketed);
  const double legacy =
      measure_events_per_sec<LegacyEventQueue>(events, seed, &checksum_legacy);
  if (checksum_bucketed != checksum_legacy) {
    std::cerr << "FATAL: queue implementations executed different event sets\n";
    return 1;
  }
  const double speedup = bucketed / legacy;

  std::cout << "\nEvent-queue microbench (" << events << " events, seed " << seed
            << "):\n"
            << "  bucketed queue : " << static_cast<std::uint64_t>(bucketed)
            << " events/s\n"
            << "  legacy heap    : " << static_cast<std::uint64_t>(legacy)
            << " events/s\n"
            << "  speedup        : " << speedup << "x\n";

  const auto e2e =
      measure_engine(parse_dataset(dataset), parse_scale(scale), walks, seed);
  std::cout << "\nEnd-to-end engine (" << dataset << "/" << scale << ", " << e2e.walks
            << " walks):\n"
            << "  wall time      : " << e2e.wall_s << " s\n"
            << "  hops/s (wall)  : " << static_cast<std::uint64_t>(e2e.hops_per_sec)
            << "\n"
            << "  sim exec_time  : " << e2e.sim_exec_ns << " ns (deterministic)\n";

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"schema\": \"fw-bench-sim/2\",\n"
      << "  \"seed\": " << seed << ",\n"
      << "  \"events\": " << events << ",\n"
      << "  \"bucketed_events_per_sec\": " << static_cast<std::uint64_t>(bucketed)
      << ",\n"
      << "  \"legacy_events_per_sec\": " << static_cast<std::uint64_t>(legacy) << ",\n"
      << "  \"queue_speedup\": " << speedup << ",\n"
      << "  \"e2e\": {\n"
      << "    \"dataset\": \"" << dataset << "\",\n"
      << "    \"scale\": \"" << scale << "\",\n"
      << "    \"walks\": " << e2e.walks << ",\n"
      << "    \"total_hops\": " << e2e.total_hops << ",\n"
      << "    \"wall_s\": " << e2e.wall_s << ",\n"
      << "    \"hops_per_sec\": " << static_cast<std::uint64_t>(e2e.hops_per_sec)
      << ",\n"
      << "    \"sim_exec_ns\": " << e2e.sim_exec_ns << "\n"
      << "  }\n"
      << "}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
