// Figure 8: FlashWalker resource-consumption behaviour over time — flash
// read/write bandwidth, channel-bus bandwidth, overall bandwidth, and the
// percentage of finished walks. Paper observations: channel bandwidth
// saturates early (roving-walk pressure) while flash read bandwidth rises
// as walks thin out; write bandwidth stays tiny; ClueWeb spends most of its
// time on the last ~10% straggler walks.
#include <iostream>

#include "bench_common.hpp"

using namespace fw;

int main() {
  bench::print_banner("Figure 8 — resource consumption over time", "Fig. 8");
  const auto agg_channel =
      static_cast<double>(bench::bench_ssd().aggregate_channel_mb_per_s());

  for (const auto id : bench::bench_datasets()) {
    bench::RunConfig cfg;
    cfg.dataset = id;
    const auto fw_probe = bench::run_flashwalker(cfg);  // sizes the interval
    bench::RunConfig timed = cfg;
    timed.timeline_interval = std::max<Tick>(fw_probe.exec_time / 24, 10 * kUs);
    const auto r = bench::run_flashwalker(timed);

    std::cout << "\n--- " << bench::dataset_abbrev(id)
              << " (exec " << TextTable::time_ns(r.exec_time) << ", "
              << r.metrics.walks_started << " walks) ---\n";
    TextTable table({"t", "flash read MB/s", "flash write MB/s", "channel MB/s",
                     "channel util", "overall MB/s", "walks done"});
    for (const auto& p : r.timeline) {
      table.add_row({TextTable::time_ns(p.at), TextTable::num(p.flash_read_mb_s, 0),
                     TextTable::num(p.flash_write_mb_s, 0),
                     TextTable::num(p.channel_mb_s, 0),
                     TextTable::num(100.0 * p.channel_mb_s / agg_channel, 1) + "%",
                     TextTable::num(p.overall_mb_s, 0),
                     TextTable::num(p.walks_done_pct, 1) + "%"});
    }
    table.print(std::cout);

    // Straggler summary (the paper's CW observation).
    Tick t90 = r.exec_time;
    for (const auto& p : r.timeline) {
      if (p.walks_done_pct >= 90.0) {
        t90 = p.at;
        break;
      }
    }
    std::cout << "90% of walks finished by " << TextTable::time_ns(t90) << " ("
              << TextTable::num(100.0 * static_cast<double>(t90) /
                                    static_cast<double>(r.exec_time),
                                1)
              << "% of the run); the rest is straggler processing.\n"
              << "chip utilization: mean "
              << TextTable::num(100.0 * r.mean_chip_utilization(), 1) << "%, max "
              << TextTable::num(100.0 * r.max_chip_utilization(), 1)
              << "% (spread = straggler imbalance)\n";
  }
  std::cout << "\nShape checks: write bandwidth tiny throughout; channel\n"
               "pressure highest early; CW shows the longest straggler tail.\n"
               "Note: bus bytes are counted when a transfer is *issued*, so the\n"
               "first interval absorbs the t=0 ingestion burst and can read\n"
               "above the line rate; later intervals are steady-state.\n";
  return 0;
}
