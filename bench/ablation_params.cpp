// Extra ablations DESIGN.md calls out (beyond the paper's figures): the
// design-parameter sweeps behind FlashWalker's defaults —
//   alpha/beta in the Eq. 1 score,
//   walk query cache size,
//   per-chip top-N list length,
//   partition-walk-buffer entry size (overflow pressure).
// Run on FS (mid-size, moderately skewed).
#include <iostream>

#include "accel/config.hpp"
#include "bench_common.hpp"

using namespace fw;

namespace {

accel::EngineResult run_cfg(const accel::AccelConfig& acfg) {
  accel::EngineOptions opts;
  opts.ssd = bench::bench_ssd();
  opts.accel = acfg;
  opts.spec.num_walks =
      graph::default_walk_count(graph::DatasetId::FS, graph::Scale::kBench) / 2;
  opts.spec.length = 6;
  opts.record_visits = false;
  auto engine = accel::SimulationBuilder(bench::bench_partitioned(graph::DatasetId::FS))
                    .options(opts)
                    .build();
  return engine.run();
}

}  // namespace

int main() {
  bench::print_banner("Parameter ablations — alpha/beta, cache size, top-N, pwb entry",
                      "design-parameter sweeps (DESIGN.md)");

  {
    std::cout << "\nEq. 1 alpha sweep (beta = 1.5):\n";
    TextTable t({"alpha", "time", "overflow walks", "flash writes"});
    for (const double alpha : {0.4, 0.8, 1.2, 2.0, 4.0}) {
      auto cfg = accel::bench_accel_config();
      cfg.alpha = alpha;
      const auto r = run_cfg(cfg);
      t.add_row({TextTable::num(alpha, 1), TextTable::time_ns(r.exec_time),
                 std::to_string(r.metrics.pwb_overflow_walks),
                 TextTable::bytes(r.flash_write_bytes)});
    }
    t.print(std::cout);
  }
  {
    std::cout << "\nEq. 1 beta sweep (alpha = 1.2):\n";
    TextTable t({"beta", "time", "overflow walks"});
    for (const double beta : {1.0, 1.5, 2.5}) {
      auto cfg = accel::bench_accel_config();
      cfg.beta = beta;
      const auto r = run_cfg(cfg);
      t.add_row({TextTable::num(beta, 1), TextTable::time_ns(r.exec_time),
                 std::to_string(r.metrics.pwb_overflow_walks)});
    }
    t.print(std::cout);
  }
  {
    std::cout << "\nWalk query cache size sweep:\n";
    TextTable t({"cache bytes", "time", "hit rate", "search steps"});
    for (const std::uint64_t bytes : {512ull, 2048ull, 4096ull, 16384ull}) {
      auto cfg = accel::bench_accel_config();
      cfg.query_cache_bytes = bytes;
      const auto r = run_cfg(cfg);
      const auto h = r.metrics.query_cache_hits;
      const auto m = r.metrics.query_cache_misses;
      t.add_row({TextTable::bytes(bytes), TextTable::time_ns(r.exec_time),
                 TextTable::num(100.0 * static_cast<double>(h) /
                                    static_cast<double>(h + m),
                                1) +
                     "%",
                 std::to_string(r.metrics.mapping_search_steps)});
    }
    t.print(std::cout);
  }
  {
    std::cout << "\nTop-N list length sweep:\n";
    TextTable t({"N", "time", "scheduler compares"});
    for (const std::uint32_t n : {2u, 8u, 32u}) {
      auto cfg = accel::bench_accel_config();
      cfg.top_n = n;
      const auto r = run_cfg(cfg);
      t.add_row({std::to_string(n), TextTable::time_ns(r.exec_time),
                 std::to_string(r.metrics.scheduler_compare_ops)});
    }
    t.print(std::cout);
  }
  {
    std::cout << "\nPartition-walk-buffer entry size sweep:\n";
    TextTable t({"entry bytes", "time", "overflow events", "overflow walks"});
    for (const std::uint64_t bytes : {512ull, 1024ull, 4096ull, 16384ull}) {
      auto cfg = accel::bench_accel_config();
      cfg.pwb_entry_bytes = bytes;
      const auto r = run_cfg(cfg);
      t.add_row({TextTable::bytes(bytes), TextTable::time_ns(r.exec_time),
                 std::to_string(r.metrics.pwb_overflow_events),
                 std::to_string(r.metrics.pwb_overflow_walks)});
    }
    t.print(std::cout);
  }
  return 0;
}
