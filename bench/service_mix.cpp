// Multi-job service benchmark: aggregate throughput and fairness for
// 1/4/16-job mixes through the WalkService over one shared accelerator
// hierarchy.
//
// Every number reported here is simulated (makespan, per-job latency,
// steps per simulated second, fairness ratio), so the section is
// bit-deterministic for a fixed seed and doubles as a cross-machine
// regression guard: bench/regression.py asserts makespan equality and the
// fairness bound (max/min weight-normalized per-job throughput <= 2 for
// uniform equal-priority mixes).
//
// Results land in the "service_mix" section of BENCH_sim.json: --merge-into
// splices the section into an existing fw-bench-sim/2 report (replacing a
// prior section), --out writes a standalone report.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "accel/builder.hpp"
#include "accel/service/jobs_spec.hpp"
#include "accel/service/walk_service.hpp"
#include "bench_common.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "graph/datasets.hpp"
#include "partition/partitioned_graph.hpp"
#include "rw/model/registry.hpp"

namespace fw::bench {
namespace {

struct Mix {
  std::string name;
  std::string jobs;   ///< --jobs grammar (dogfoods the CLI parser)
  bool uniform;       ///< equal-priority homogeneous jobs: fairness gated <= 2x
  bool labeled = false;  ///< needs the labeled graph copy (metapath jobs)
};

/// 1/4/16-job mixes plus the acceptance-criteria mixed workload
/// (2x DeepWalk + node2vec + PPR), all 2000 walks total. The hetero5 mix
/// spans every registered model family and runs on a separate labeled copy
/// of the graph (label bytes change the partition layout, so reusing the
/// legacy mixes' PartitionedGraph would silently re-baseline their
/// makespans).
const std::vector<Mix>& mixes() {
  static const std::vector<Mix> m = {
      {"solo", "deepwalk:walks=2000", true},
      {"uniform4", "4*deepwalk:walks=500", true},
      {"uniform16", "16*deepwalk:walks=125", true},
      {"mixed4",
       "2*deepwalk:walks=500;node2vec:walks=250,p=0.5,q=2;ppr:walks=250,source=3",
       false},
      {"hetero5",
       "deepwalk:walks=600;node2vec:walks=400,p=0.5,q=2;"
       "ppr:walks=400,source=3,length=20,stop_mode=residual,eps=0.1;"
       "metapath:walks=300,pattern=0-1-2;autoreg:walks=300,alpha=0.6",
       false, /*labeled=*/true},
  };
  return m;
}

/// One representative solo workload per registered model for the per-model
/// determinism block (bench/regression.py check: new-model determinism is
/// always gated; legacy-model makespans must stay byte-equal).
const char* model_case(std::string_view model) {
  if (model == "deepwalk") return "deepwalk:walks=1000";
  if (model == "node2vec") return "node2vec:walks=500,p=0.5,q=2";
  if (model == "ppr") return "ppr:walks=500,source=3";
  if (model == "metapath") return "metapath:walks=500,pattern=0-1-2";
  if (model == "autoreg") return "autoreg:walks=500,alpha=0.6";
  return nullptr;
}

struct ModelResult {
  std::string name;
  bool legacy = false;
  bool deterministic = false;
  Tick makespan = 0;
  std::uint64_t steps = 0;
};

struct MixResult {
  Mix mix;
  std::size_t jobs = 0;
  Tick makespan = 0;
  double aggregate_steps_per_sec = 0.0;
  double fairness_ratio = 1.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

MixResult run_mix(const partition::PartitionedGraph& pg, const Mix& mix,
                  std::uint64_t seed) {
  accel::service::JobSpecDefaults defaults;
  defaults.base_seed = seed;

  accel::SimulationConfig cfg;
  cfg.ssd = bench_ssd();
  cfg.accel = accel::bench_accel_config();
  cfg.record_visits = false;

  accel::service::WalkService service(pg, cfg);
  for (auto& job : accel::service::parse_jobs(mix.jobs, defaults)) {
    service.submit(std::move(job));
  }
  const auto res = service.run();

  MixResult r;
  r.mix = mix;
  r.jobs = res.jobs().size();
  r.makespan = res.makespan;
  r.aggregate_steps_per_sec = res.aggregate_steps_per_sec;
  r.fairness_ratio = res.fairness_ratio;
  r.p50 = res.latency_p50_ns;
  r.p95 = res.latency_p95_ns;
  r.p99 = res.latency_p99_ns;
  return r;
}

/// One solo run of a model workload at the given DES worker count.
std::pair<Tick, std::uint64_t> run_model_once(const partition::PartitionedGraph& pg,
                                              const std::string& jobs,
                                              std::uint64_t seed,
                                              std::uint32_t threads) {
  accel::service::JobSpecDefaults defaults;
  defaults.base_seed = seed;
  accel::SimulationConfig cfg;
  cfg.ssd = bench_ssd();
  cfg.accel = accel::bench_accel_config();
  cfg.record_visits = false;
  cfg.sim_threads = threads;
  accel::service::WalkService service(pg, cfg);
  for (auto& job : accel::service::parse_jobs(jobs, defaults)) {
    service.submit(std::move(job));
  }
  const auto res = service.run();
  std::uint64_t steps = 0;
  for (const auto& jr : res.jobs()) steps += jr.stats.steps;
  return {res.makespan, steps};
}

/// Per-model determinism block: every registered model runs solo at 1 and
/// 8 DES workers on the labeled graph — the worker count must be invisible
/// in simulated time and step counts. regression.py gates `deterministic`
/// for every model and byte-equal makespans for the legacy ones.
std::vector<ModelResult> run_model_block(const partition::PartitionedGraph& labeled_pg,
                                         std::uint64_t seed, bool& missing_case) {
  std::vector<ModelResult> out;
  for (const rw::ModelInfo& m : rw::model_registry()) {
    const char* jobs = model_case(m.name);
    if (jobs == nullptr) {
      std::cerr << "FAIL: registered model '" << m.name
                << "' has no bench case (extend model_case)\n";
      missing_case = true;
      continue;
    }
    const auto [ms1, st1] = run_model_once(labeled_pg, jobs, seed, 1);
    const auto [ms8, st8] = run_model_once(labeled_pg, jobs, seed, 8);
    ModelResult r;
    r.name = std::string(m.name);
    r.legacy = m.legacy;
    r.deterministic = ms1 == ms8 && st1 == st8;
    r.makespan = ms1;
    r.steps = st1;
    out.push_back(std::move(r));
  }
  return out;
}

std::string section_json(const std::vector<MixResult>& results,
                         const std::vector<ModelResult>& models,
                         const std::string& dataset, const std::string& scale,
                         std::uint64_t seed) {
  std::ostringstream os;
  os << "{\n"
     << "    \"dataset\": \"" << dataset << "\",\n"
     << "    \"scale\": \"" << scale << "\",\n"
     << "    \"seed\": " << seed << ",\n"
     << "    \"mixes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const MixResult& r = results[i];
    os << "      {\"name\": \"" << r.mix.name << "\", \"jobs\": " << r.jobs
       << ", \"uniform\": " << (r.mix.uniform ? "true" : "false")
       << ", \"makespan_ns\": " << r.makespan
       << ", \"aggregate_steps_per_sec\": " << r.aggregate_steps_per_sec
       << ", \"fairness_ratio\": " << r.fairness_ratio
       << ", \"latency_p50_ns\": " << r.p50 << ", \"latency_p95_ns\": " << r.p95
       << ", \"latency_p99_ns\": " << r.p99 << "}"
       << (i + 1 < results.size() ? ",\n" : "\n");
  }
  os << "    ],\n"
     << "    \"models\": [\n";
  for (std::size_t i = 0; i < models.size(); ++i) {
    const ModelResult& m = models[i];
    os << "      {\"name\": \"" << m.name << "\", \"legacy\": "
       << (m.legacy ? "true" : "false")
       << ", \"deterministic\": " << (m.deterministic ? "true" : "false")
       << ", \"makespan_ns\": " << m.makespan << ", \"steps\": " << m.steps << "}"
       << (i + 1 < models.size() ? ",\n" : "\n");
  }
  os << "    ]\n"
     << "  }";
  return os.str();
}

/// Splice `section` into an existing fw-bench-sim/2 report as the trailing
/// "service_mix" key, replacing any earlier section (which, by this
/// writer's construction, is always the last key in the object).
int merge_into(const std::string& path, const std::string& section) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "service_mix: cannot read " << path << " (run sim_hotpath first)\n";
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();

  std::size_t cut = text.find(",\n  \"service_mix\":");
  if (cut == std::string::npos) {
    cut = text.rfind('}');
    if (cut == std::string::npos) {
      std::cerr << "service_mix: " << path << " is not a JSON report\n";
      return 1;
    }
    // Trim trailing whitespace before the closing brace.
    while (cut > 0 && (text[cut - 1] == '\n' || text[cut - 1] == ' ')) --cut;
  }
  text.resize(cut);
  text += ",\n  \"service_mix\": " + section + "\n}\n";

  std::ofstream out(path);
  if (!out) {
    std::cerr << "service_mix: cannot write " << path << "\n";
    return 1;
  }
  out << text;
  std::cout << "merged service_mix section into " << path << "\n";
  return 0;
}

}  // namespace
}  // namespace fw::bench

int main(int argc, char** argv) {
  using namespace fw;
  using namespace fw::bench;

  std::string out_path;
  std::string merge_path;
  std::string dataset = "TT";
  std::string scale = "test";
  std::uint64_t seed = bench_seed();
  OptionSet opts;
  opts.opt("--out", &out_path, "FILE", "write a standalone service_mix report");
  opts.opt("--merge-into", &merge_path, "FILE",
           "splice the service_mix section into an\n"
           "existing fw-bench-sim/2 report (BENCH_sim.json)");
  opts.opt("--dataset", &dataset, "TT|FS|CW|R2B|R8B", "dataset (default TT)");
  opts.opt("--scale", &scale, "test|small|bench", "dataset scale (default test)");
  opts.opt("--seed", &seed, "N", "base job seed");
  opts.parse_or_exit(argc, argv,
                     "WalkService throughput/fairness across 1/4/16-job mixes");

  print_banner("Walk service — aggregate throughput and fairness across job mixes",
               "multi-tenant extension (not a paper figure)");

  graph::DatasetId id = graph::DatasetId::TT;
  for (const auto& info : graph::all_datasets()) {
    if (info.abbrev == dataset) id = info.id;
  }
  const graph::Scale sc = scale == "test"    ? graph::Scale::kTest
                          : scale == "small" ? graph::Scale::kSmall
                                             : graph::Scale::kBench;
  const graph::CsrGraph g = graph::make_dataset(id, sc);
  const partition::PartitionedGraph pg(g, bench_partition());

  // Separate labeled copy for metapath-bearing workloads: the label byte in
  // the vertex headers changes the partition layout, so the legacy mixes
  // keep their own (unlabeled) PartitionedGraph and their makespans stay
  // comparable against committed baselines.
  graph::CsrGraph labeled_g = g;
  labeled_g.assign_hashed_labels(/*num_labels=*/3, /*seed=*/5);
  partition::PartitionConfig labeled_pc = bench_partition();
  labeled_pc.labeled = true;
  const partition::PartitionedGraph labeled_pg(labeled_g, labeled_pc);

  std::vector<MixResult> results;
  TextTable table({"mix", "jobs", "makespan", "agg steps/s", "fairness", "p95 latency"});
  for (const Mix& mix : mixes()) {
    const MixResult r = run_mix(mix.labeled ? labeled_pg : pg, mix, seed);
    table.add_row({r.mix.name, std::to_string(r.jobs), TextTable::time_ns(r.makespan),
                   TextTable::num(r.aggregate_steps_per_sec, 0),
                   TextTable::num(r.fairness_ratio, 2) + "x",
                   TextTable::time_ns(static_cast<Tick>(r.p95))});
    results.push_back(r);
  }
  table.print(std::cout);

  bool missing_case = false;
  const std::vector<ModelResult> models = run_model_block(labeled_pg, seed, missing_case);
  TextTable mtable({"model", "legacy", "deterministic", "makespan", "steps"});
  for (const ModelResult& m : models) {
    mtable.add_row({m.name, m.legacy ? "yes" : "no", m.deterministic ? "yes" : "NO",
                    TextTable::time_ns(m.makespan), std::to_string(m.steps)});
  }
  mtable.print(std::cout);
  if (missing_case) return 1;

  bool fairness_ok = true;
  for (const MixResult& r : results) {
    if (r.mix.uniform && r.fairness_ratio > 2.0) {
      std::cerr << "FAIL: mix '" << r.mix.name << "' fairness "
                << r.fairness_ratio << "x exceeds the 2x bound\n";
      fairness_ok = false;
    }
  }
  for (const ModelResult& m : models) {
    if (!m.deterministic) {
      std::cerr << "FAIL: model '" << m.name
                << "' diverged across DES worker counts\n";
      fairness_ok = false;
    }
  }
  if (!fairness_ok) return 1;

  const std::string section = section_json(results, models, dataset, scale, seed);
  if (!merge_path.empty()) {
    if (const int rc = merge_into(merge_path, section); rc != 0) return rc;
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << "{\n  \"schema\": \"fw-bench-sim/2\",\n  \"service_mix\": " << section
        << "\n}\n";
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
