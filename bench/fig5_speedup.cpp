// Figure 5: FlashWalker speedup over GraphWalker with different numbers of
// walks, per dataset. Paper result: 4.79x-660.50x, 51.56x average, with
// larger graphs showing larger average speedup.
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"

using namespace fw;

int main() {
  bench::print_banner("Figure 5 — speedup vs number of walks", "Fig. 5");

  TextTable table({"dataset", "walks", "FlashWalker", "GraphWalker", "speedup"});
  std::vector<double> speedups;

  for (const auto id : bench::bench_datasets()) {
    const std::uint64_t base =
        graph::default_walk_count(id, graph::Scale::kBench);
    for (const double frac : {0.1, 0.25, 0.5, 1.0}) {
      bench::RunConfig cfg;
      cfg.dataset = id;
      cfg.num_walks = static_cast<std::uint64_t>(static_cast<double>(base) * frac);
      const auto r = bench::run_comparison(cfg);
      speedups.push_back(r.speedup());
      table.add_row({bench::dataset_abbrev(id), std::to_string(cfg.num_walks),
                     TextTable::time_ns(r.fw.exec_time),
                     TextTable::time_ns(r.gw.exec_time),
                     TextTable::num(r.speedup(), 2) + "x"});
    }
  }
  table.print(std::cout);

  double min = speedups[0], max = speedups[0];
  for (double s : speedups) {
    min = std::min(min, s);
    max = std::max(max, s);
  }
  std::cout << "\nSpeedup range: " << TextTable::num(min, 2) << "x - "
            << TextTable::num(max, 2) << "x, geomean "
            << TextTable::num(geomean(speedups), 2) << "x\n"
            << "(paper: 4.79x - 660.50x, average 51.56x at ~1000x larger scale)\n";
  return 0;
}
