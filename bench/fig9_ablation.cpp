// Figure 9: FlashWalker speedup under incrementally-enabled optimizations
// over the no-optimization baseline:
//   WQ  (approximate walk search + walk query caches),
//   +HS (hot subgraphs at channel/board level),
//   +SS (Eq. 1 subgraph scheduling, alpha = 0.4 per §IV.E).
// Paper: WQ helps FS/R2B/R8B 13-18%, TT only ~5% (update-bound, skew);
// HS mainly helps TT; SS adds a final increment; CW barely moves (straggler
// bound).
#include <iostream>

#include "accel/config.hpp"
#include "bench_common.hpp"

using namespace fw;

namespace {

accel::EngineResult run_with(graph::DatasetId id, accel::Features f) {
  accel::EngineOptions opts;
  opts.ssd = fw::bench::bench_ssd();
  opts.accel = accel::bench_accel_config();
  opts.accel.features = f;
  if (f.subgraph_scheduling) {
    opts.accel.alpha = 0.4;  // paper §IV.E: reduce channel-bus burden
  }
  opts.spec.num_walks = graph::default_walk_count(id, graph::Scale::kBench);
  opts.spec.length = 6;
  opts.record_visits = false;
  auto engine =
      accel::SimulationBuilder(fw::bench::bench_partitioned(id)).options(opts).build();
  return engine.run();
}

}  // namespace

int main() {
  bench::print_banner("Figure 9 — speedup of the proposed optimizations", "Fig. 9");

  TextTable table({"dataset", "baseline", "+WQ", "+WQ+HS", "+WQ+HS+SS", "WQ gain",
                   "HS gain", "SS gain"});
  for (const auto id : bench::bench_datasets()) {
    const auto base = run_with(id, {false, false, false});
    const auto wq = run_with(id, {true, false, false});
    const auto hs = run_with(id, {true, true, false});
    const auto ss = run_with(id, {true, true, true});
    auto pct = [&](const accel::EngineResult& r) {
      return 100.0 * (static_cast<double>(base.exec_time) /
                          static_cast<double>(r.exec_time) -
                      1.0);
    };
    table.add_row({bench::dataset_abbrev(id), TextTable::time_ns(base.exec_time),
                   TextTable::time_ns(wq.exec_time), TextTable::time_ns(hs.exec_time),
                   TextTable::time_ns(ss.exec_time), TextTable::num(pct(wq), 1) + "%",
                   TextTable::num(pct(hs), 1) + "%", TextTable::num(pct(ss), 1) + "%"});
  }
  table.print(std::cout);
  std::cout << "\n(paper: over baseline, full stack improves TT 21.5%, FS 21.3%,\n"
               "R2B 18.8%, R8B 18.3%; CW marginal — straggler-bound. Gains are\n"
               "cumulative percentages over the no-optimization baseline.)\n";
  return 0;
}
