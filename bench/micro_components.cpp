// Component micro-benchmarks (google-benchmark): the hot inner loops of the
// simulator — neighbor sampling, ITS search, mapping-table search (full vs
// range-limited, quantifying the WQ optimization), Bloom-filter probes,
// query-cache accesses, and the event queue.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "common/assoc_cache.hpp"
#include "common/bloom.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "partition/dense_table.hpp"
#include "partition/mapping_table.hpp"
#include "partition/partitioned_graph.hpp"
#include "rw/sampler.hpp"
#include "sim/event_queue.hpp"

namespace fw {
namespace {

const graph::CsrGraph& bench_graph(bool weighted) {
  static const graph::CsrGraph unweighted = [] {
    graph::RmatParams p;
    p.num_vertices = 1 << 14;
    p.num_edges = 1 << 18;
    p.seed = bench::bench_seed();
    return graph::generate_rmat(p);
  }();
  static const graph::CsrGraph with_weights = [] {
    graph::RmatParams p;
    p.num_vertices = 1 << 14;
    p.num_edges = 1 << 18;
    p.weighted = true;
    p.seed = bench::bench_seed();
    return graph::generate_rmat(p);
  }();
  return weighted ? with_weights : unweighted;
}

const partition::PartitionedGraph& bench_pg() {
  static const partition::PartitionedGraph pg = [] {
    partition::PartitionConfig pc;
    pc.block_capacity_bytes = 4096;
    return partition::PartitionedGraph(bench_graph(false), pc);
  }();
  return pg;
}

const partition::SubgraphMappingTable& bench_mtab() {
  static const partition::SubgraphMappingTable mtab = [] {
    std::vector<std::uint64_t> pages(bench_pg().num_subgraphs(), 0);
    return partition::SubgraphMappingTable(bench_pg(), pages);
  }();
  return mtab;
}

void BM_SampleUnbiased(benchmark::State& state) {
  const auto& g = bench_graph(false);
  Xoshiro256 rng(bench::bench_seed() + 1);
  VertexId v = 0;
  for (auto _ : state) {
    const auto s = rw::sample_unbiased(g, v, rng);
    v = s.next == kInvalidVertex ? rng.bounded(g.num_vertices()) : s.next;
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_SampleUnbiased);

void BM_SampleBiasedIts(benchmark::State& state) {
  const auto& g = bench_graph(true);
  static const rw::ItsTable its(bench_graph(true));
  Xoshiro256 rng(bench::bench_seed() + 1);
  VertexId v = 0;
  for (auto _ : state) {
    const auto s = its.sample(g, v, rng);
    v = s.next == kInvalidVertex ? rng.bounded(g.num_vertices()) : s.next;
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_SampleBiasedIts);

void BM_MappingFullSearch(benchmark::State& state) {
  const auto& mtab = bench_mtab();
  Xoshiro256 rng(bench::bench_seed() + 2);
  const VertexId n = bench_graph(false).num_vertices();
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const auto lookup = mtab.find(rng.bounded(n));
    steps += lookup.steps;
    benchmark::DoNotOptimize(lookup.sgid);
  }
  state.counters["steps/query"] =
      static_cast<double>(steps) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_MappingFullSearch);

void BM_MappingRangeSearch(benchmark::State& state) {
  // The WQ path: channel-level range query + board-level in-range search.
  const auto& mtab = bench_mtab();
  Xoshiro256 rng(bench::bench_seed() + 2);
  const VertexId n = bench_graph(false).num_vertices();
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const VertexId v = rng.bounded(n);
    const auto r = mtab.find_range(v);
    const auto lookup = mtab.find_in_range(v, r.range_id);
    steps += lookup.steps;  // board-side steps only (channel search is offloaded)
    benchmark::DoNotOptimize(lookup.sgid);
  }
  state.counters["board steps/query"] =
      static_cast<double>(steps) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_MappingRangeSearch);

void BM_BloomProbe(benchmark::State& state) {
  BloomFilter bf(10'000, 0.01);
  for (std::uint64_t k = 0; k < 10'000; ++k) bf.insert(k * 3);
  Xoshiro256 rng(bench::bench_seed() + 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf.may_contain(rng.bounded(60'000)));
  }
}
BENCHMARK(BM_BloomProbe);

void BM_DenseTableLookup(benchmark::State& state) {
  static const partition::DenseVertexTable dtab(bench_pg());
  Xoshiro256 rng(bench::bench_seed() + 5);
  const VertexId n = bench_graph(false).num_vertices();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtab.lookup(rng.bounded(n)).meta.has_value());
  }
}
BENCHMARK(BM_DenseTableLookup);

void BM_QueryCache(benchmark::State& state) {
  AssocCacheModel cache(4096, 16, 4);
  Xoshiro256 rng(bench::bench_seed() + 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.bounded(1 << state.range(0))));
  }
  state.counters["hit rate"] = cache.hit_rate();
}
BENCHMARK(BM_QueryCache)->Arg(6)->Arg(10)->Arg(16);

void BM_EventQueue(benchmark::State& state) {
  Xoshiro256 rng(bench::bench_seed() + 7);
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < 256; ++i) q.push(rng.bounded(100'000), [] {});
    while (!q.empty()) q.pop();
  }
  state.SetItemsProcessed(state.iterations() * 512);  // push + pop
}
BENCHMARK(BM_EventQueue);

void BM_PrewalkChoice(benchmark::State& state) {
  Xoshiro256 rng(bench::bench_seed() + 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rw::prewalk_block_choice(rw::prewalk_draw(1'213'787, rng), 65536));
  }
}
BENCHMARK(BM_PrewalkChoice);

}  // namespace
}  // namespace fw

// Custom main instead of BENCHMARK_MAIN(): report the seed every RNG stream
// above derives from, so a report is reproducible from its own header.
int main(int argc, char** argv) {
  std::cout << "Seed: " << fw::bench::bench_seed()
            << " (override with FW_BENCH_SEED for a different stream)\n";
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
