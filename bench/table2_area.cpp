// Table II: accelerator configurations and synthesized circuit area.
// The RTL/Yosys/FreePDK45 flow is replaced by the calibrated analytic area
// model (DESIGN.md §3.1); this bench prints model vs paper per level and
// the full-SSD total that backs the "small circuit area overhead" claim.
#include <iostream>

#include "accel/area_model.hpp"
#include "bench_common.hpp"

using namespace fw;

int main() {
  bench::print_banner("Table II — accelerator configuration and area", "Table II");
  const accel::AccelConfig cfg = accel::paper_accel_config();

  TextTable table({"module", "chip-level", "channel-level", "board-level"});
  auto row3 = [&](const std::string& name, auto get) {
    table.add_row({name, get(cfg.chip), get(cfg.channel), get(cfg.board)});
  };
  row3("# updaters",
       [](const accel::LevelConfig& l) { return std::to_string(l.updaters); });
  row3("updater cycle",
       [](const accel::LevelConfig& l) { return std::to_string(l.updater_cycle) + "ns"; });
  row3("# guiders",
       [](const accel::LevelConfig& l) { return std::to_string(l.guiders); });
  row3("guider cycle",
       [](const accel::LevelConfig& l) { return std::to_string(l.guider_cycle) + "ns"; });
  row3("subgraph buffer",
       [](const accel::LevelConfig& l) { return TextTable::bytes(l.subgraph_buffer_bytes); });
  row3("walk queues",
       [](const accel::LevelConfig& l) { return TextTable::bytes(l.walk_queue_bytes); });
  row3("guide buffer",
       [](const accel::LevelConfig& l) { return TextTable::bytes(l.guide_buffer_bytes); });
  row3("roving walk buffer",
       [](const accel::LevelConfig& l) { return TextTable::bytes(l.roving_buffer_bytes); });
  table.print(std::cout);

  std::cout << "\nArea model vs paper (45 nm):\n";
  TextTable area({"level", "SRAM mm2", "tables mm2", "logic mm2", "model total",
                  "paper", "error"});
  const char* names[] = {"chip-level", "channel-level", "board-level"};
  const accel::AccelLevel levels[] = {accel::AccelLevel::kChip, accel::AccelLevel::kChannel,
                                      accel::AccelLevel::kBoard};
  double total = 0.0;
  for (int i = 0; i < 3; ++i) {
    const auto a = accel::estimate_area(cfg, levels[i]);
    const double paper = accel::paper_area_mm2(levels[i]);
    const double err = 100.0 * (a.total() - paper) / paper;
    area.add_row({names[i], TextTable::num(a.sram_mm2, 2), TextTable::num(a.tables_mm2, 2),
                  TextTable::num(a.logic_mm2, 2), TextTable::num(a.total(), 2),
                  TextTable::num(paper, 2), TextTable::num(err, 1) + "%"});
    total += a.total() * (i == 0 ? 128 : i == 1 ? 32 : 1);
  }
  area.print(std::cout);
  std::cout << "\nWhole-SSD overhead (128 chip + 32 channel + 1 board): "
            << TextTable::num(total, 1) << " mm2 at 45 nm\n";
  return 0;
}
