// SSD-topology scalability (extension): how FlashWalker's performance
// scales with channel and chip counts — the in-storage design's headroom
// claim made quantitative. Runs FS at a fixed workload across topologies.
#include <iostream>

#include "bench_common.hpp"

using namespace fw;

int main() {
  bench::print_banner("Topology scalability — channels x chips sweep",
                      "extension (paper §II.C headroom argument)");

  const auto& pg = bench::bench_partitioned(graph::DatasetId::FS);
  TextTable table({"channels", "chips/chan", "total chips", "time", "speedup vs 8x2",
                   "flash read BW", "channel util proxy"});
  Tick base_time = 0;
  for (const std::uint32_t channels : {8u, 16u, 32u}) {
    for (const std::uint32_t chips : {2u, 4u}) {
      ssd::SsdConfig ssd = bench::bench_ssd();
      ssd.topo.channels = channels;
      ssd.topo.chips_per_channel = chips;

      accel::EngineOptions opts;
      opts.ssd = ssd;
      opts.accel = accel::bench_accel_config();
      opts.spec.num_walks =
          graph::default_walk_count(graph::DatasetId::FS, graph::Scale::kBench);
      opts.spec.length = 6;
      opts.record_visits = false;
      auto engine = accel::SimulationBuilder(pg).options(opts).build();
      const auto r = engine.run();
      if (base_time == 0) base_time = r.exec_time;

      const double chan_bw = bandwidth_mb_per_s(r.channel_bytes, r.exec_time);
      const double chan_cap = static_cast<double>(ssd.aggregate_channel_mb_per_s());
      table.add_row({std::to_string(channels), std::to_string(chips),
                     std::to_string(channels * chips), TextTable::time_ns(r.exec_time),
                     TextTable::num(static_cast<double>(base_time) /
                                        static_cast<double>(r.exec_time),
                                    2) +
                         "x",
                     TextTable::num(r.flash_read_mb_per_s(), 0) + " MB/s",
                     TextTable::num(100.0 * chan_bw / chan_cap, 1) + "%"});
    }
  }
  table.print(std::cout);
  std::cout << "\nMore chips = more in-storage update parallelism and more\n"
               "aggregate plane bandwidth; the walk population eventually\n"
               "becomes the limit (chips idle-load small subgraphs), which is\n"
               "the paper's TT parallelism-overload effect.\n";
  return 0;
}
