// Graph-reordering ablation (extension): FlashWalker subgraphs are
// contiguous vertex-ID ranges, so vertex labeling controls how often a hop
// stays inside the loaded subgraph. BFS/degree orderings should cut roving
// traffic versus a random labeling; this quantifies how much preprocessing
// order matters for in-storage walkers.
#include <iostream>

#include "bench_common.hpp"
#include "graph/transform.hpp"

using namespace fw;

namespace {

struct Ordering {
  const char* name;
  std::vector<VertexId> (*make)(const graph::CsrGraph&);
};

std::vector<VertexId> identity_order(const graph::CsrGraph& g) {
  std::vector<VertexId> id(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) id[v] = v;
  return id;
}

std::vector<VertexId> random_order7(const graph::CsrGraph& g) {
  return graph::random_order(g, 7);
}

}  // namespace

int main() {
  bench::print_banner("Reordering ablation — vertex labeling vs roving traffic",
                      "extension (subgraph locality)");

  const auto& g = bench::bench_graph(graph::DatasetId::FS);
  const std::uint64_t walks =
      graph::default_walk_count(graph::DatasetId::FS, graph::Scale::kBench) / 2;

  const Ordering orderings[] = {
      {"original", identity_order},
      {"random", random_order7},
      {"bfs", graph::bfs_order},
      {"degree", graph::degree_order},
  };

  TextTable table({"ordering", "edge locality", "time", "roving walks",
                   "channel bytes", "subgraph loads"});
  for (const auto& ord : orderings) {
    const auto relabeled = graph::relabel(g, ord.make(g));
    const partition::PartitionedGraph pg(relabeled, bench::bench_partition());

    accel::EngineOptions opts;
    opts.ssd = bench::bench_ssd();
    opts.accel = accel::bench_accel_config();
    opts.spec.num_walks = walks;
    opts.spec.length = 6;
    opts.record_visits = false;
    auto engine = accel::SimulationBuilder(pg).options(opts).build();
    const auto r = engine.run();

    // Locality proxy at subgraph granularity: average vertices per subgraph.
    const VertexId span = static_cast<VertexId>(
        std::max<std::uint64_t>(1, relabeled.num_vertices() / pg.num_subgraphs()));
    table.add_row({ord.name, TextTable::num(graph::edge_locality(relabeled, span), 3),
                   TextTable::time_ns(r.exec_time),
                   std::to_string(r.metrics.roving_walks),
                   TextTable::bytes(r.channel_bytes),
                   std::to_string(r.metrics.subgraph_loads)});
  }
  table.print(std::cout);
  std::cout << "\nTakeaway: a 16 KiB subgraph holds ~0.2% of this graph's\n"
               "vertices, so even the best ordering keeps edge locality in the\n"
               "single digits and the roving reduction is modest. Degree\n"
               "ordering still wins a few percent — it concentrates the hot\n"
               "vertices into the hot subgraphs the board/channel accelerators\n"
               "hold, which is the same mechanism as the paper's HS optimization.\n";
  return 0;
}
