// Shared setup for the bench harness: one canonical configuration per run
// so every table/figure bench measures the same system.
//
// Hardware side: the paper's full Table I/III SSD (32 channels x 4 chips,
// PCIe3 x4) and Table II accelerator parameters with buffer capacities
// scaled alongside the graphs (bench_accel_config). Software side: scaled
// datasets (graph::Scale::kBench), 16 KiB graph blocks (so subgraph counts
// per chip stay comparable to the paper), and a GraphWalker host model with
// the same graph:memory ratio as the paper's 8 GB default.
#pragma once

#include <string>
#include <vector>

#include "accel/builder.hpp"
#include "accel/engine.hpp"
#include "baseline/drunkardmob.hpp"
#include "baseline/graphwalker.hpp"
#include "common/table.hpp"
#include "graph/datasets.hpp"

namespace fw::bench {

/// Paper Table I/III SSD.
ssd::SsdConfig bench_ssd();

/// Graph-block partitioning used by every bench (16 KiB blocks; 512 KiB
/// intent of the paper scaled by the same factor as the graphs).
partition::PartitionConfig bench_partition(bool weighted = false);

/// GraphWalker host model: 8 cores, 6 MiB block cache (the paper's 8 GB
/// scaled to keep graph:memory ratios), 1 MiB blocks (the paper's ~1 GB).
baseline::HostConfig bench_host();

/// The seed every bench run (and every RNG a bench constructs) derives
/// from: FW_BENCH_SEED in the environment, else 42. Printed by
/// print_banner so any report names the seed that reproduces it.
std::uint64_t bench_seed();

struct RunConfig {
  graph::DatasetId dataset = graph::DatasetId::TT;
  std::uint64_t num_walks = 0;  ///< 0 = dataset default
  accel::Features features;     ///< FlashWalker optimization toggles
  std::uint64_t host_memory_bytes = 0;  ///< 0 = bench_host() default
  Tick timeline_interval = 0;
  std::uint64_t seed = bench_seed();
  /// When set, the FlashWalker run writes a Chrome trace_event JSON here.
  std::string trace_out;
  /// When set, the FlashWalker run writes its nested counter JSON here.
  std::string metrics_out;
};

struct ComparisonResult {
  accel::EngineResult fw;
  baseline::BaselineResult gw;
  [[nodiscard]] double speedup() const {
    return fw.exec_time == 0 ? 0.0
                             : static_cast<double>(gw.exec_time) /
                                   static_cast<double>(fw.exec_time);
  }
};

/// Dataset cache: generation is seconds for the big graphs, so each bench
/// binary generates each dataset at most once.
const graph::CsrGraph& bench_graph(graph::DatasetId id);
const partition::PartitionedGraph& bench_partitioned(graph::DatasetId id);

accel::EngineResult run_flashwalker(const RunConfig& cfg);
baseline::BaselineResult run_graphwalker(const RunConfig& cfg);
ComparisonResult run_comparison(const RunConfig& cfg);

/// "TT" etc. for row labels.
std::string dataset_abbrev(graph::DatasetId id);

/// The five datasets in paper order.
const std::vector<graph::DatasetId>& bench_datasets();

/// Standard bench banner: what is being reproduced + the scaling notice.
void print_banner(const std::string& title, const std::string& paper_ref);

}  // namespace fw::bench
