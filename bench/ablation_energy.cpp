// Energy comparison (extension; the paper motivates in-storage processing
// partly by host "energy consumption" (§I) but does not quantify it).
// Per-dataset energy of FlashWalker vs GraphWalker on the shared workload,
// using the order-of-magnitude EnergyParams documented in energy_model.hpp.
#include <iostream>

#include "accel/energy_model.hpp"
#include "bench_common.hpp"
#include "common/stats.hpp"

using namespace fw;

int main() {
  bench::print_banner("Energy comparison — FlashWalker vs GraphWalker",
                      "extension (paper §I motivation)");

  TextTable table({"dataset", "FW flash mJ", "FW bus mJ", "FW PE mJ", "FW total mJ",
                   "GW total mJ", "energy ratio", "time speedup"});
  std::vector<double> ratios;
  for (const auto id : bench::bench_datasets()) {
    bench::RunConfig cfg;
    cfg.dataset = id;
    const auto r = bench::run_comparison(cfg);
    const auto fw_e = accel::estimate_flashwalker(r.fw, accel::bench_accel_config(),
                                                  bench::bench_ssd());
    const auto gw_e = accel::estimate_baseline(r.gw, bench::bench_ssd());
    const double ratio = gw_e.total_j() / fw_e.total_j();
    ratios.push_back(ratio);
    table.add_row({bench::dataset_abbrev(id), TextTable::num(fw_e.flash_j * 1e3, 2),
                   TextTable::num(fw_e.interconnect_j * 1e3, 2),
                   TextTable::num((fw_e.compute_j + fw_e.static_j) * 1e3, 2),
                   TextTable::num(fw_e.total_j() * 1e3, 2),
                   TextTable::num(gw_e.total_j() * 1e3, 2),
                   TextTable::num(ratio, 2) + "x", TextTable::num(r.speedup(), 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nGeomean energy ratio (GW/FW): " << TextTable::num(geomean(ratios), 2)
            << "x\nFlashWalker saves energy two ways: no PCIe/host-DRAM data\n"
               "movement, and no 65 W CPU burning through an I/O-bound run —\n"
               "even though it reads more flash bytes at this scale.\n";
  return 0;
}
