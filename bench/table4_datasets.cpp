// Table IV: statistics of datasets. Prints the paper's values for the real
// graphs next to the scaled stand-ins this reproduction generates (see
// DESIGN.md §3.3 for the substitution rationale).
#include <iostream>

#include "bench_common.hpp"
#include "graph/graph_stats.hpp"

using namespace fw;

int main() {
  bench::print_banner("Table IV — statistics of datasets", "Table IV");

  TextTable table({"dataset", "|V| (paper)", "|E| (paper)", "CSR (paper)",
                   "|V| (scaled)", "|E| (scaled)", "CSR (scaled)", "avg deg",
                   "top1% edges", "max outdeg"});
  for (const auto id : bench::bench_datasets()) {
    const auto& info = graph::dataset_info(id);
    const auto s = graph::compute_stats(bench::bench_graph(id));
    table.add_row({info.abbrev, info.paper.vertices, info.paper.edges,
                   info.paper.csr_size, std::to_string(s.num_vertices),
                   std::to_string(s.num_edges), TextTable::bytes(s.csr_size_bytes),
                   TextTable::num(s.avg_out_degree, 2),
                   TextTable::num(100.0 * s.top1pct_edge_share, 1) + "%",
                   std::to_string(s.max_out_degree)});
  }
  table.print(std::cout);
  std::cout << "\nShape checks: size ordering TT < R2B < FS < R8B < CW holds;\n"
               "CW is web-sparse (paper avg degree 1.66); TT is the most\n"
               "skewed (drives the Fig 9 hot-subgraph discussion).\n";
  return 0;
}
