// Tables I & III: SSD architectural characteristics, plus the derived
// aggregate bandwidths the paper's §II.C argument rests on: flash planes in
// aggregate far outrun the ONFI channel buses, which in turn outrun PCIe.
#include <iostream>

#include "bench_common.hpp"

using namespace fw;

int main() {
  bench::print_banner("Tables I & III — SSD and DRAM configuration", "Tables I/III");
  const ssd::SsdConfig cfg = bench::bench_ssd();
  const auto& t = cfg.topo;

  TextTable table({"parameter", "value", "paper"});
  table.add_row({"channels", std::to_string(t.channels), "32"});
  table.add_row({"chips per channel", std::to_string(t.chips_per_channel), "4"});
  table.add_row({"dies per chip", std::to_string(t.dies_per_chip), "2"});
  table.add_row({"planes per die", std::to_string(t.planes_per_die), "4"});
  table.add_row({"blocks per plane", std::to_string(t.blocks_per_plane), "2048"});
  table.add_row({"pages per block", std::to_string(t.pages_per_block), "64"});
  table.add_row({"page size", TextTable::bytes(t.page_bytes), "4KB"});
  table.add_row({"flash read latency", TextTable::time_ns(cfg.timing.read_latency), "35us"});
  table.add_row(
      {"flash program latency", TextTable::time_ns(cfg.timing.program_latency), "350us"});
  table.add_row({"flash erase latency", TextTable::time_ns(cfg.timing.erase_latency), "2ms"});
  table.add_row({"channel rate", std::to_string(cfg.timing.channel_mb_per_s) + " MB/s",
                 "333 MT/s (NV-DDR2)"});
  table.add_row({"PCIe bandwidth", std::to_string(cfg.pcie.mb_per_s()) + " MB/s",
                 "1GB/s x 4"});
  table.add_row({"DRAM peak", std::to_string(cfg.dram.peak_mb_per_s()) + " MB/s",
                 "DDR4-1600 x64"});
  table.add_row({"DRAM first-access latency", TextTable::time_ns(cfg.dram.access_latency()),
                 "(tRCD+tCL)*tCK"});
  table.print(std::cout);

  std::cout << "\nDerived aggregates (paper §II.C):\n";
  TextTable agg({"stage", "aggregate bandwidth", "paper"});
  agg.add_row({"flash planes (all " + std::to_string(t.total_planes()) + ")",
               TextTable::num(cfg.aggregate_plane_read_mb_per_s() / 1000.0, 1) + " GB/s",
               "~57.1 GB/s"});
  agg.add_row({"ONFI channels (all " + std::to_string(t.channels) + ")",
               TextTable::num(cfg.aggregate_channel_mb_per_s() / 1000.0, 1) + " GB/s",
               "10.4-10.7 GB/s"});
  agg.add_row({"PCIe", TextTable::num(cfg.pcie.mb_per_s() / 1000.0, 1) + " GB/s", "4 GB/s"});
  agg.print(std::cout);
  std::cout << "\nEach stage outward loses ~3-5x of bandwidth — the headroom\n"
               "FlashWalker's in-storage hierarchy exploits.\n";
  return 0;
}
