// Micro-benchmarks for the deeper substrates (google-benchmark): banked
// DRAM hit/miss paths, NVMe command issue, FTL write/GC, second-order
// sampling, skip-gram training, and the parallel host walker.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "baseline/knightking.hpp"
#include "graph/generators.hpp"
#include "rw/embeddings.hpp"
#include "rw/parallel_walker.hpp"
#include "rw/sampler.hpp"
#include "ssd/dram_banked.hpp"
#include "ssd/ftl.hpp"
#include "ssd/nvme.hpp"

namespace fw {
namespace {

const graph::CsrGraph& micro_graph() {
  static const graph::CsrGraph g = [] {
    graph::RmatParams p;
    p.num_vertices = 1 << 13;
    p.num_edges = 1 << 17;
    p.seed = bench::bench_seed();
    return graph::generate_rmat(p);
  }();
  return g;
}

void BM_BankedDramRowHit(benchmark::State& state) {
  ssd::BankedDram dram{ssd::DramConfig{}};
  Tick t = 0;
  for (auto _ : state) {
    t = dram.access(t, 0, 64);  // same row every time
    benchmark::DoNotOptimize(t);
  }
  state.counters["row hit rate"] = dram.stats().row_hit_rate();
}
BENCHMARK(BM_BankedDramRowHit);

void BM_BankedDramScattered(benchmark::State& state) {
  ssd::BankedDram dram{ssd::DramConfig{}};
  Xoshiro256 rng(bench::bench_seed() + 1);
  Tick t = 0;
  for (auto _ : state) {
    t = dram.access(t, rng.bounded(1u << 30), 64);
    benchmark::DoNotOptimize(t);
  }
  state.counters["row hit rate"] = dram.stats().row_hit_rate();
}
BENCHMARK(BM_BankedDramScattered);

void BM_NvmeCommandIssue(benchmark::State& state) {
  ssd::FlashArray flash(ssd::test_ssd_config());
  ssd::SsdDevice dev(flash);
  ssd::NvmeInterface nvme(dev, ssd::NvmeConfig{});
  Tick t = 0;
  for (auto _ : state) {
    t = nvme.read(t, 0, 4096);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_NvmeCommandIssue);

void BM_FtlWritePath(benchmark::State& state) {
  ssd::FlashArray flash(ssd::test_ssd_config());
  ssd::Ftl ftl(flash, 4);
  std::uint64_t lpn = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftl.write_page(0, lpn));
    lpn = (lpn + 1) % 1024;  // overwrites exercise invalidation
  }
}
BENCHMARK(BM_FtlWritePath);

void BM_SecondOrderSample(benchmark::State& state) {
  const auto& g = micro_graph();
  Xoshiro256 rng(bench::bench_seed() + 2);
  VertexId prev = 0;
  while (g.out_degree(prev) == 0) ++prev;
  VertexId cur = g.neighbors(prev)[0];
  for (auto _ : state) {
    if (g.out_degree(cur) == 0) {
      cur = prev;
      continue;
    }
    const auto s = rw::sample_second_order(g, prev, cur, g.offsets()[cur],
                                           g.offsets()[cur + 1], {0.5, 2.0}, rng);
    prev = cur;
    cur = s.next == kInvalidVertex ? 0 : s.next;
    benchmark::DoNotOptimize(cur);
  }
}
BENCHMARK(BM_SecondOrderSample);

void BM_SkipGramPairRate(benchmark::State& state) {
  const auto& g = micro_graph();
  rw::DeepWalkParams dw;
  dw.walks_per_vertex = 1;
  dw.walk_length = 6;
  static const auto corpus = rw::deepwalk_corpus(micro_graph(), dw);
  rw::SkipGramParams sp;
  sp.dimensions = static_cast<std::uint32_t>(state.range(0));
  sp.epochs = 1;
  for (auto _ : state) {
    rw::EmbeddingModel model(g.num_vertices(), sp);
    model.train_epoch(corpus, 0.025);
    benchmark::DoNotOptimize(model.embedding(0).data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(corpus.size()));
}
BENCHMARK(BM_SkipGramPairRate)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_ParallelWalker(benchmark::State& state) {
  rw::WalkSpec spec;
  spec.num_walks = 20'000;
  spec.length = 6;
  spec.seed = bench::bench_seed();
  rw::ParallelWalkOptions opts;
  opts.threads = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const auto r = rw::run_walks_parallel(micro_graph(), spec, opts);
    benchmark::DoNotOptimize(r.summary.total_hops);
  }
  state.SetItemsProcessed(state.iterations() * 20'000 * 6);
}
BENCHMARK(BM_ParallelWalker)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_KnightKingSuperstep(benchmark::State& state) {
  baseline::KnightKingOptions opts;
  opts.workers = 4;
  opts.spec.num_walks = 20'000;
  opts.spec.length = 6;
  opts.spec.seed = bench::bench_seed();
  opts.record_visits = false;
  for (auto _ : state) {
    baseline::KnightKingEngine engine(micro_graph(), opts);
    benchmark::DoNotOptimize(engine.run().supersteps);
  }
  state.SetItemsProcessed(state.iterations() * 20'000 * 6);
}
BENCHMARK(BM_KnightKingSuperstep)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fw

// Custom main instead of BENCHMARK_MAIN(): report the seed every RNG stream
// above derives from, so a report is reproducible from its own header.
int main(int argc, char** argv) {
  std::cout << "Seed: " << fw::bench::bench_seed()
            << " (override with FW_BENCH_SEED for a different stream)\n";
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
