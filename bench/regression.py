#!/usr/bin/env python3
"""Compare a fresh bench/sim_hotpath report against the committed baseline.

Usage:
    python3 bench/regression.py --baseline BENCH_sim.json \
        --current /tmp/current.json [--max-drop 0.20] [--absolute]

Exit status 0 = within budget, 1 = regression, 2 = bad input.

What is gated, and why
----------------------
1. `queue_speedup` (always): bucketed-queue events/sec divided by the
   frozen legacy-heap events/sec *measured in the same binary on the same
   machine*. The ratio cancels out host speed, so it is the portable proxy
   for "did the DES hot path regress". A drop > --max-drop fails.

2. `sim_exec_ns` (when the e2e configs match): the simulated exec time for
   a fixed (dataset, scale, walks, seed) is bit-deterministic — it must
   EQUAL the baseline on any machine. A mismatch means either a
   determinism bug or an intentional timing-model change; for the latter,
   refresh the baseline in the same PR (see docs/MODELING.md, "The DES
   kernel").

3. `bucketed_events_per_sec` (only with --absolute): raw throughput is
   only comparable on the machine that produced the baseline, so this
   check is opt-in for local tuning runs; CI uses the speedup gate.

4. `service_mix` (when both reports carry the section): every mix's
   simulated makespan_ns is deterministic and must EQUAL the baseline
   (same refresh rule as sim_exec_ns), and uniform equal-priority mixes
   must hold the weighted-fair scheduler's <= 2x fairness bound. The
   section's per-model block is gated too: `deterministic` must be true
   for EVERY registered walk model (new models included — this is the
   check_models gate), and models marked `legacy` (pre-plugin,
   byte-identity-pinned) must reproduce the baseline makespan exactly.

5. `parallel` (when the current report carries the section, i.e. the
   bench ran with --parallel): `determinism_ok` must be true — identical
   checksums and event counts across 1/2/4/8 workers are the whole
   contract of the conservative-lookahead design. The 8-worker speedup
   floor (--parallel-floor, default 3.0x over the serial sharded
   baseline) is gated only when the *current* machine reports
   `hw_threads >= 8`; on smaller hosts real parallel speedup is
   physically unobservable, so the number prints as informational.

6. `engine_parallel` (same trigger as 5): the full FlashWalker engine at
   1/2/4/8 DES workers. `determinism_ok` (identical sim_exec_ns / hop /
   walk totals across worker counts) is gated unconditionally — it holds
   even on a single-core host. The 8-worker walks/sec speedup floor
   (--engine-floor, default 2.5x over the 1-worker run) is gated only
   when `hw_threads >= 8`, like the raw-DES floor.

7. `array_scaling` (multi-SSD array): `determinism_ok` (byte-identical
   array reports across --sim-threads 1/8 at every device count) is gated
   unconditionally. The 4-device aggregate walks/sec ratio over the
   single-device run (--array-floor, default 2.0) is gated only when
   `hw_threads >= 8`, like the other scaling floors.

8. `board_hub` (same trigger as 5): the shard-audit breakdown of the
   board-shard serial hub — event share, windowed handoff batches,
   cross-shard sends per hop. `determinism_ok` (the audit stream itself
   identical across 1/2/4/8 workers) is gated unconditionally; the share
   numbers print as informational trend lines. With --serial-floor N the
   1-worker concurrent-engine walks/sec is also gated as an absolute
   same-machine floor, so parallel speedup cannot be bought by slowing
   the serial path.

Missing-section rule: a section the BASELINE carries is a promise — if
the candidate report lacks it, that is a FAILURE (a silently skipped
gate), not a skip. Sections absent from both reports are skipped with a
notice.

Reports must declare `"schema": "fw-bench-sim/2"`; unknown or missing
versions are rejected (exit 2) instead of silently parsed.
"""

import argparse
import json
import sys

SCHEMA = "fw-bench-sim/2"
FAIRNESS_BOUND = 2.0


def load(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"regression: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if report.get("schema") != SCHEMA:
        print(f"regression: {path}: unexpected schema {report.get('schema')!r} "
              f"(this tool understands {SCHEMA!r})", file=sys.stderr)
        sys.exit(2)
    return report


def e2e_config(report):
    e2e = report.get("e2e", {})
    return (e2e.get("dataset"), e2e.get("scale"), e2e.get("walks"),
            report.get("seed"))


def mix_config(report):
    sm = report.get("service_mix", {})
    return (sm.get("dataset"), sm.get("scale"), sm.get("seed"))


def section_or_fail(name, base, cur, failures):
    """Missing-section rule: a section the baseline carries must exist in the
    candidate (else a gate silently vanishes — that is a failure, not a
    skip). Returns the candidate section, or None when checks should stop."""
    if name not in base:
        print(f"{name}: no section in baseline report, checks skipped")
        return None
    if name not in cur:
        print(f"{name}: baseline has the section but the current report "
              f"does not [MISSING]")
        failures.append(f"{name}.missing")
        return None
    return cur[name]


def check_service_mix(base, cur, failures):
    """Gate the walk-service section: deterministic makespans + fairness."""
    if section_or_fail("service_mix", base, cur, failures) is None:
        return
    cur_mixes = {m["name"]: m for m in cur["service_mix"].get("mixes", [])}
    configs_match = mix_config(base) == mix_config(cur)
    if not configs_match:
        print(f"service_mix: configs differ ({mix_config(base)} vs "
              f"{mix_config(cur)}), makespan determinism check skipped")
    for bm in base["service_mix"].get("mixes", []):
        name = bm["name"]
        cm = cur_mixes.get(name)
        if cm is None:
            print(f"service_mix[{name}]: missing from current report [MISSING]")
            failures.append(f"service_mix.{name}")
            continue
        if configs_match:
            b_ns, c_ns = bm["makespan_ns"], cm["makespan_ns"]
            verdict = "ok" if b_ns == c_ns else "MISMATCH"
            print(f"service_mix[{name}].makespan_ns: baseline {b_ns}  "
                  f"current {c_ns}  [{verdict}]")
            if b_ns != c_ns:
                failures.append(f"service_mix.{name}.makespan_ns")
        if cm.get("uniform"):
            ratio = cm["fairness_ratio"]
            verdict = "ok" if ratio <= FAIRNESS_BOUND else "UNFAIR"
            print(f"service_mix[{name}].fairness_ratio: {ratio:.3g} "
                  f"(bound {FAIRNESS_BOUND}) [{verdict}]")
            if ratio > FAIRNESS_BOUND:
                failures.append(f"service_mix.{name}.fairness_ratio")
    check_models(base, cur, configs_match, failures)


def check_models(base, cur, configs_match, failures):
    """Gate the per-model block inside service_mix: every model the bench
    ran must be deterministic across DES worker counts (gated always, new
    models included), and the legacy (pre-plugin, byte-identity-pinned)
    models must reproduce the baseline makespan exactly. A model the
    baseline carries must not vanish from the candidate."""
    cur_models = {m["name"]: m for m in cur["service_mix"].get("models", [])}
    base_models = {m["name"]: m for m in base["service_mix"].get("models", [])}
    if not cur_models and not base_models:
        print("service_mix.models: no per-model block in either report, "
              "checks skipped")
        return
    for name, cm in sorted(cur_models.items()):
        ok = cm.get("deterministic")
        verdict = "ok" if ok else "NONDETERMINISTIC"
        print(f"service_mix.models[{name}].deterministic: {ok}  [{verdict}]")
        if not ok:
            failures.append(f"service_mix.models.{name}.deterministic")
    for name, bm in sorted(base_models.items()):
        cm = cur_models.get(name)
        if cm is None:
            print(f"service_mix.models[{name}]: missing from current report "
                  "[MISSING]")
            failures.append(f"service_mix.models.{name}")
            continue
        if bm.get("legacy") and configs_match:
            b_ns, c_ns = bm["makespan_ns"], cm["makespan_ns"]
            verdict = "ok" if b_ns == c_ns else "MISMATCH"
            print(f"service_mix.models[{name}].makespan_ns: baseline {b_ns}  "
                  f"current {c_ns}  [{verdict}]")
            if b_ns != c_ns:
                failures.append(f"service_mix.models.{name}.makespan_ns")


def check_parallel(base, cur, floor, failures):
    """Gate the parallel-DES section: hard determinism, conditional speedup."""
    par = section_or_fail("parallel", base, cur, failures)
    if par is None:
        return
    ok = par.get("determinism_ok")
    verdict = "ok" if ok else "NONDETERMINISTIC"
    print(f"parallel.determinism_ok: {ok}  [{verdict}]")
    if not ok:
        failures.append("parallel.determinism_ok")

    speedup = par.get("speedup_8w", 0.0)
    hw = par.get("hw_threads", 0)
    if hw >= 8:
        verdict = "ok" if speedup >= floor else "REGRESSION"
        print(f"parallel.speedup_8w: {speedup:.3g} (floor {floor}, "
              f"hw_threads {hw}) [{verdict}]")
        if speedup < floor:
            failures.append("parallel.speedup_8w")
    else:
        # Fewer hardware threads than workers: the barrier protocol still
        # proves determinism, but speedup cannot manifest. Report, don't gate.
        print(f"parallel.speedup_8w: {speedup:.3g} (hw_threads {hw} < 8) "
              "[informational]")


def check_engine_parallel(base, cur, floor, serial_floor, max_drop, failures):
    """Gate the concurrent-engine section: hard determinism, conditional
    speedup, and (opt-in) a serial-throughput floor so parallel wins cannot
    be bought by slowing the 1-worker path down."""
    par = section_or_fail("engine_parallel", base, cur, failures)
    if par is None:
        return
    ok = par.get("determinism_ok")
    verdict = "ok" if ok else "NONDETERMINISTIC"
    print(f"engine_parallel.determinism_ok: {ok}  [{verdict}]")
    if not ok:
        failures.append("engine_parallel.determinism_ok")

    speedup = par.get("speedup_8w", 0.0)
    hw = par.get("hw_threads", 0)
    if hw >= 8:
        verdict = "ok" if speedup >= floor else "REGRESSION"
        print(f"engine_parallel.speedup_8w: {speedup:.3g} (floor {floor}, "
              f"hw_threads {hw}) [{verdict}]")
        if speedup < floor:
            failures.append("engine_parallel.speedup_8w")
    else:
        print(f"engine_parallel.speedup_8w: {speedup:.3g} (hw_threads {hw} < 8) "
              "[informational]")

    serial = cur.get("engine_parallel", {}).get(
        "workers_walks_per_sec", {}).get("1", 0)
    if serial_floor is not None:
        # Explicit absolute floor: same-machine runs only (like --absolute).
        verdict = "ok" if serial >= serial_floor else "REGRESSION"
        print(f"engine_parallel.workers_walks_per_sec[1]: {serial} "
              f"(floor {serial_floor}) [{verdict}]")
        if serial < serial_floor:
            failures.append("engine_parallel.serial_floor")
    else:
        base_serial = base.get("engine_parallel", {}).get(
            "workers_walks_per_sec", {}).get("1", 0)
        print(f"engine_parallel.workers_walks_per_sec[1]: baseline {base_serial}  "
              f"current {serial}  [informational]")


def check_board_hub(base, cur, failures):
    """Gate the board-hub breakdown: the audit stream must be identical
    across worker counts (determinism_ok), and the per-hop cross-shard
    traffic must not regress past the batching win the baseline recorded."""
    hub = section_or_fail("board_hub", base, cur, failures)
    if hub is None:
        return
    ok = hub.get("determinism_ok")
    verdict = "ok" if ok else "NONDETERMINISTIC"
    print(f"board_hub.determinism_ok: {ok}  [{verdict}]")
    if not ok:
        failures.append("board_hub.determinism_ok")

    share = hub.get("board_share_ppm", 0)
    print(f"board_hub.board_share_ppm: {share} "
          f"(baseline {base['board_hub'].get('board_share_ppm', 0)}) "
          "[informational]")


def check_array(base, cur, floor, failures):
    """Gate the multi-SSD array section: hard determinism, conditional scaling."""
    arr = section_or_fail("array_scaling", base, cur, failures)
    if arr is None:
        return
    ok = arr.get("determinism_ok")
    verdict = "ok" if ok else "NONDETERMINISTIC"
    print(f"array_scaling.determinism_ok: {ok}  [{verdict}]")
    if not ok:
        failures.append("array_scaling.determinism_ok")

    scaling = arr.get("scaling_4dev", 0.0)
    hw = arr.get("hw_threads", 0)
    if hw >= 8:
        verdict = "ok" if scaling >= floor else "REGRESSION"
        print(f"array_scaling.scaling_4dev: {scaling:.3g} (floor {floor}, "
              f"hw_threads {hw}) [{verdict}]")
        if scaling < floor:
            failures.append("array_scaling.scaling_4dev")
    else:
        print(f"array_scaling.scaling_4dev: {scaling:.3g} (hw_threads {hw} < 8) "
              "[informational]")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--max-drop", type=float, default=0.20,
                    help="allowed fractional drop in gated rates (default 0.20)")
    ap.add_argument("--absolute", action="store_true",
                    help="also gate raw bucketed_events_per_sec (same-machine runs only)")
    ap.add_argument("--parallel-floor", type=float, default=3.0,
                    help="minimum 8-worker speedup over the serial sharded "
                         "baseline, gated only on hosts with >= 8 hardware "
                         "threads (default 3.0)")
    ap.add_argument("--engine-floor", type=float, default=2.5,
                    help="minimum 8-worker concurrent-engine walks/sec speedup "
                         "over the 1-worker run, gated only on hosts with >= 8 "
                         "hardware threads (default 2.5)")
    ap.add_argument("--array-floor", type=float, default=2.0,
                    help="minimum 4-device array walks/sec ratio over the "
                         "single-device run, gated only on hosts with >= 8 "
                         "hardware threads (default 2.0)")
    ap.add_argument("--serial-floor", type=float, default=None,
                    help="absolute floor on the 1-worker concurrent-engine "
                         "walks/sec (same-machine runs only, like --absolute); "
                         "guards against buying parallel speedup by slowing "
                         "the serial path. Off by default.")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    failures = []

    def gate_rate(name, base_v, cur_v):
        floor = base_v * (1.0 - args.max_drop)
        verdict = "ok" if cur_v >= floor else "REGRESSION"
        print(f"{name}: baseline {base_v:.4g}  current {cur_v:.4g}  "
              f"floor {floor:.4g}  [{verdict}]")
        if cur_v < floor:
            failures.append(name)

    gate_rate("queue_speedup", base["queue_speedup"], cur["queue_speedup"])

    if args.absolute:
        gate_rate("bucketed_events_per_sec", base["bucketed_events_per_sec"],
                  cur["bucketed_events_per_sec"])
    else:
        print(f"bucketed_events_per_sec: baseline {base['bucketed_events_per_sec']}  "
              f"current {cur['bucketed_events_per_sec']}  [informational]")

    if e2e_config(base) == e2e_config(cur):
        b_ns, c_ns = base["e2e"]["sim_exec_ns"], cur["e2e"]["sim_exec_ns"]
        verdict = "ok" if b_ns == c_ns else "MISMATCH"
        print(f"sim_exec_ns: baseline {b_ns}  current {c_ns}  [{verdict}]")
        if b_ns != c_ns:
            failures.append("sim_exec_ns")
            print("  simulated time diverged for an identical config+seed: either a\n"
                  "  determinism bug or an intentional model change. If intentional,\n"
                  "  regenerate the baseline (bench/sim_hotpath --quick --out\n"
                  "  BENCH_sim.json, then bench/service_mix --merge-into\n"
                  "  BENCH_sim.json) and commit it with the change.", file=sys.stderr)
    else:
        print(f"sim_exec_ns: configs differ ({e2e_config(base)} vs {e2e_config(cur)}), "
              "determinism check skipped")

    check_service_mix(base, cur, failures)
    check_parallel(base, cur, args.parallel_floor, failures)
    check_engine_parallel(base, cur, args.engine_floor, args.serial_floor,
                          args.max_drop, failures)
    check_board_hub(base, cur, failures)
    check_array(base, cur, args.array_floor, failures)

    if failures:
        print(f"regression: FAILED ({', '.join(failures)})", file=sys.stderr)
        return 1
    print("regression: all checks within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
