// Figure 6: flash memory read-traffic reduction and achieved-bandwidth
// improvement of FlashWalker over GraphWalker. Paper: 17.21x bandwidth
// improvement and 3.82x read-traffic reduction on average; on TT
// FlashWalker reads MORE total data than GraphWalker (parallelism overload
// on a small graph) but wins anyway through bandwidth.
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"

using namespace fw;

int main() {
  bench::print_banner("Figure 6 — read-traffic reduction & bandwidth improvement",
                      "Fig. 6");

  TextTable table({"dataset", "FW read", "GW read", "traffic ratio (GW/FW)",
                   "FW read BW", "GW read BW", "BW improvement"});
  std::vector<double> bw_ratios, traffic_ratios;
  for (const auto id : bench::bench_datasets()) {
    bench::RunConfig cfg;
    cfg.dataset = id;
    const auto r = bench::run_comparison(cfg);
    const double fw_bw = r.fw.flash_read_mb_per_s();
    const double gw_bw = r.gw.read_mb_per_s();
    const double traffic = static_cast<double>(r.gw.flash_read_bytes) /
                           static_cast<double>(r.fw.flash_read_bytes);
    const double bw = fw_bw / gw_bw;
    bw_ratios.push_back(bw);
    traffic_ratios.push_back(traffic);
    table.add_row({bench::dataset_abbrev(id), TextTable::bytes(r.fw.flash_read_bytes),
                   TextTable::bytes(r.gw.flash_read_bytes),
                   TextTable::num(traffic, 2) + "x",
                   TextTable::num(fw_bw, 0) + " MB/s", TextTable::num(gw_bw, 0) + " MB/s",
                   TextTable::num(bw, 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nGeomean: bandwidth improvement "
            << TextTable::num(geomean(bw_ratios), 2) << "x, traffic ratio "
            << TextTable::num(geomean(traffic_ratios), 2) << "x\n"
            << "(paper averages: 17.21x bandwidth, 3.82x traffic over all tasks)\n"
            << "At 1/1000 scale every dataset shows the paper's *TT* traffic\n"
            << "behaviour — FlashWalker re-reads small subgraphs to keep 128\n"
            << "chips busy, trading extra reads for bandwidth (paper §IV.B).\n"
            << "The amortization that flips the ratio at paper scale is visible\n"
            << "as walk density grows:\n\n";

  TextTable amort({"CW walks", "FW hops per subgraph load", "FW read bytes/hop"});
  for (const std::uint64_t walks : {250'000ull, 1'000'000ull, 2'000'000ull}) {
    bench::RunConfig cfg;
    cfg.dataset = graph::DatasetId::CW;
    cfg.num_walks = walks;
    const auto fw = bench::run_flashwalker(cfg);
    amort.add_row({std::to_string(walks),
                   TextTable::num(static_cast<double>(fw.metrics.total_hops) /
                                      static_cast<double>(fw.metrics.subgraph_loads),
                                  1),
                   TextTable::num(static_cast<double>(fw.flash_read_bytes) /
                                      static_cast<double>(fw.metrics.total_hops),
                                  0)});
  }
  amort.print(std::cout);
  std::cout << "(paper-scale walk density is ~15x higher still, where loads\n"
               "amortize over thousands of hops and the traffic ratio exceeds 1.)\n";
  return 0;
}
