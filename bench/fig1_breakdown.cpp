// Figure 1: GraphWalker execution-time breakdown on ClueWeb. Paper
// observation: loading graph structure dominates total execution time
// (the motivation for in-storage processing); walk load/write and compute
// are minor.
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"

using namespace fw;

int main() {
  bench::print_banner("Figure 1 — GraphWalker time-cost breakdown on ClueWeb",
                      "Fig. 1");

  TextTable table({"walks", "graph load", "load walks", "write walks", "compute",
                   "total", "graph load %"});
  for (const std::uint64_t walks : {100'000ull, 250'000ull, 500'000ull, 1'000'000ull}) {
    bench::RunConfig cfg;
    cfg.dataset = graph::DatasetId::CW;
    cfg.num_walks = walks;
    const auto r = bench::run_graphwalker(cfg);
    const auto& b = r.breakdown;
    const double pct =
        100.0 * static_cast<double>(b.graph_load) / static_cast<double>(r.exec_time);
    table.add_row({std::to_string(walks), TextTable::time_ns(b.graph_load),
                   TextTable::time_ns(b.walk_load), TextTable::time_ns(b.walk_write),
                   TextTable::time_ns(b.compute), TextTable::time_ns(r.exec_time),
                   TextTable::num(pct, 1) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nPaper: time spent loading graph structure accounts for the\n"
               "majority of GraphWalker's execution time on ClueWeb, which is\n"
               "what motivates moving walk updating into the SSD.\n";
  return 0;
}
