#include "bench_common.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace fw::bench {

ssd::SsdConfig bench_ssd() {
  return ssd::SsdConfig{};  // Table I/III defaults
}

std::uint64_t bench_seed() {
  static const std::uint64_t seed = [] {
    if (const char* env = std::getenv("FW_BENCH_SEED")) {
      return static_cast<std::uint64_t>(std::stoull(std::string(env)));
    }
    return std::uint64_t{42};
  }();
  return seed;
}

partition::PartitionConfig bench_partition(bool weighted) {
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 16 * KiB;
  // The paper's 2 MB board mapping table holds ~170K subgraph entries, so
  // TT/FS/R2B/R8B fit in ONE graph partition and only ClueWeb-scale graphs
  // rotate partitions. 2048 preserves that at bench scale (CW: 2881
  // subgraphs -> 2 partitions; everything else single-partition).
  pc.subgraphs_per_partition = 2048;
  pc.subgraphs_per_range = 64;
  pc.weighted = weighted;
  return pc;
}

baseline::HostConfig bench_host() {
  baseline::HostConfig host;
  host.cores = 8;
  host.ns_per_hop = 200;  // 25 ns effective: 4x10^7 hops/s across 8 cores
  host.memory_bytes = 6 * MiB;
  host.block_bytes = 1 * MiB;
  return host;
}

namespace {

struct DatasetCacheEntry {
  std::unique_ptr<graph::CsrGraph> graph;
  std::unique_ptr<partition::PartitionedGraph> pg;
};

DatasetCacheEntry& cache_entry(graph::DatasetId id) {
  static std::map<graph::DatasetId, DatasetCacheEntry> cache;
  auto& entry = cache[id];
  if (!entry.graph) {
    entry.graph = std::make_unique<graph::CsrGraph>(
        graph::make_dataset(id, graph::Scale::kBench));
    entry.pg = std::make_unique<partition::PartitionedGraph>(*entry.graph,
                                                             bench_partition());
  }
  return entry;
}

}  // namespace

const graph::CsrGraph& bench_graph(graph::DatasetId id) { return *cache_entry(id).graph; }

const partition::PartitionedGraph& bench_partitioned(graph::DatasetId id) {
  return *cache_entry(id).pg;
}

accel::EngineResult run_flashwalker(const RunConfig& cfg) {
  accel::EngineOptions opts;
  opts.ssd = bench_ssd();
  opts.accel = accel::bench_accel_config();
  opts.accel.features = cfg.features;
  opts.spec.num_walks =
      cfg.num_walks ? cfg.num_walks
                    : graph::default_walk_count(cfg.dataset, graph::Scale::kBench);
  opts.spec.length = 6;  // paper: "the walk length is fixed as 6"
  opts.spec.seed = cfg.seed;
  opts.record_visits = false;
  opts.timeline_interval = cfg.timeline_interval;
  obs::TraceRecorder trace;
  if (!cfg.trace_out.empty()) opts.trace = &trace;
  auto engine =
      accel::SimulationBuilder(bench_partitioned(cfg.dataset)).options(opts).build();
  auto result = engine.run();
  if (!cfg.trace_out.empty()) {
    std::ofstream out(cfg.trace_out);
    trace.write_json(out);
    out << "\n";
  }
  if (!cfg.metrics_out.empty()) {
    std::ofstream out(cfg.metrics_out);
    obs::write_counters_json(out, result.counters);
    out << "\n";
  }
  return result;
}

baseline::BaselineResult run_graphwalker(const RunConfig& cfg) {
  baseline::GraphWalkerOptions opts;
  opts.ssd = bench_ssd();
  opts.host = bench_host();
  if (cfg.host_memory_bytes) opts.host.memory_bytes = cfg.host_memory_bytes;
  opts.spec.num_walks =
      cfg.num_walks ? cfg.num_walks
                    : graph::default_walk_count(cfg.dataset, graph::Scale::kBench);
  opts.spec.length = 6;
  opts.spec.seed = cfg.seed;
  opts.record_visits = false;
  baseline::GraphWalkerEngine engine(bench_graph(cfg.dataset), opts);
  return engine.run();
}

ComparisonResult run_comparison(const RunConfig& cfg) {
  return ComparisonResult{run_flashwalker(cfg), run_graphwalker(cfg)};
}

std::string dataset_abbrev(graph::DatasetId id) { return graph::dataset_info(id).abbrev; }

const std::vector<graph::DatasetId>& bench_datasets() {
  static const std::vector<graph::DatasetId> ids = {
      graph::DatasetId::TT, graph::DatasetId::FS, graph::DatasetId::CW,
      graph::DatasetId::R2B, graph::DatasetId::R8B};
  return ids;
}

void print_banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "==========================================================\n"
            << title << "\n"
            << "Reproduces: " << paper_ref << " (FlashWalker, IPDPS'22)\n"
            << "Scaled run: graphs ~1/1000 of the paper's, Table I-III SSD,\n"
            << "Table II accelerators with proportionally scaled buffers.\n"
            << "Shapes (who wins / rough factors / crossovers) are the\n"
            << "reproduction target, not absolute values. See EXPERIMENTS.md.\n"
            << "Seed: " << bench_seed()
            << " (override with FW_BENCH_SEED for a different stream)\n"
            << "==========================================================\n";
}

}  // namespace fw::bench
