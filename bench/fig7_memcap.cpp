// Figure 7: FlashWalker speedup over GraphWalker with varied GraphWalker
// DRAM capacity (paper: 4/8/16 GB; scaled: 3/6/12 MiB with the same
// graph:memory ratios). Paper observations: the speedup does not drop much
// at the largest memory; TT is insensitive (fits already at the default);
// CW is insensitive (still far exceeds memory).
#include <iostream>

#include "bench_common.hpp"

using namespace fw;

int main() {
  bench::print_banner("Figure 7 — speedup vs GraphWalker DRAM capacity", "Fig. 7");

  // FlashWalker's time is independent of host memory: run it once per
  // dataset.
  TextTable table({"dataset", "FW time", "speedup @3MiB", "speedup @6MiB",
                   "speedup @12MiB"});
  for (const auto id : bench::bench_datasets()) {
    bench::RunConfig cfg;
    cfg.dataset = id;
    const auto fw = bench::run_flashwalker(cfg);
    std::vector<std::string> row{bench::dataset_abbrev(id),
                                 TextTable::time_ns(fw.exec_time)};
    for (const std::uint64_t mem : {3 * MiB, 6 * MiB, 12 * MiB}) {
      bench::RunConfig gcfg = cfg;
      gcfg.host_memory_bytes = mem;
      const auto gw = bench::run_graphwalker(gcfg);
      row.push_back(TextTable::num(static_cast<double>(gw.exec_time) /
                                       static_cast<double>(fw.exec_time),
                                   2) +
                    "x");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout
      << "\nShape checks (paper §IV.C): larger GraphWalker memory shrinks the\n"
         "speedup only mildly; TT barely moves (the graph already fits at the\n"
         "default), and CW barely moves (the graph still far exceeds memory).\n";
  return 0;
}
