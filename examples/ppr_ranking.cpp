// Personalized PageRank via Monte-Carlo random walks (paper §I: one of the
// core random-walk applications). Ranks vertices around a source with the
// host reference, then simulates the walk phase in-storage, including the
// probabilistic-termination walk mode (paper §II.A's second termination
// condition).
//
//   ./ppr_ranking [source_vertex]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "accel/builder.hpp"
#include "accel/engine.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"
#include "rw/algorithms.hpp"

using namespace fw;

int main(int argc, char** argv) {
  graph::ZipfParams gp;
  gp.num_vertices = 1 << 14;
  gp.num_edges = 1 << 18;
  gp.exponent = 1.3;
  gp.seed = 3;
  const graph::CsrGraph graph = graph::generate_zipf(gp);

  // Pick a well-connected default source.
  VertexId source = 0;
  if (argc > 1) {
    source = std::strtoull(argv[1], nullptr, 10) % graph.num_vertices();
  } else {
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      if (graph.out_degree(v) > graph.out_degree(source)) source = v;
    }
  }

  rw::PprParams params;
  params.source = source;
  params.num_walks = 200'000;
  params.restart_prob = 0.15;
  params.seed = 17;

  const auto ranking = rw::personalized_pagerank(graph, params, 15);
  std::cout << "Personalized PageRank from vertex " << source << " (out-degree "
            << graph.out_degree(source) << "):\n";
  TextTable table({"rank", "vertex", "score", "out-degree"});
  int rank = 1;
  for (const auto& [v, score] : ranking) {
    table.add_row({std::to_string(rank++), std::to_string(v), TextTable::num(score, 5),
                   std::to_string(graph.out_degree(v))});
  }
  table.print(std::cout);

  // The same PPR computed *in-storage*: single-source walks with
  // probabilistic termination; endpoint counts are the PPR estimate the
  // host reads back from the completed-walk region.
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 16 * KiB;
  const partition::PartitionedGraph pg(graph, pc);
  accel::EngineOptions opts;
  opts.accel = accel::bench_accel_config();
  opts.spec.start_mode = rw::StartMode::kSingleSource;
  opts.spec.source = source;
  opts.spec.num_walks = params.num_walks;
  opts.spec.length = params.max_hops;
  opts.spec.stop_prob = params.restart_prob;
  opts.spec.seed = params.seed;
  opts.record_visits = false;
  opts.record_endpoints = true;
  auto engine = accel::SimulationBuilder(pg).options(opts).build();
  const auto r = engine.run();
  std::cout << "\nsimulated in-storage PPR walk phase: " << TextTable::time_ns(r.exec_time)
            << " (" << r.metrics.total_hops << " hops, "
            << r.metrics.dense_prewalks << " dense pre-walks)\n";

  // Agreement check: how many of the host top-10 appear in the engine
  // top-10 (independent randomness, so expect high-but-not-perfect overlap).
  std::vector<std::pair<VertexId, std::uint64_t>> engine_scores;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (r.endpoint_counts[v] > 0) engine_scores.emplace_back(v, r.endpoint_counts[v]);
  }
  std::sort(engine_scores.begin(), engine_scores.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  int overlap = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(10, engine_scores.size()); ++i) {
    for (std::size_t j = 0; j < std::min<std::size_t>(10, ranking.size()); ++j) {
      overlap += engine_scores[i].first == ranking[j].first;
    }
  }
  std::cout << "host vs in-storage top-10 overlap: " << overlap << "/10\n";
  return 0;
}
