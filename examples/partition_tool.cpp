// partition_tool — the preprocessing step as a standalone tool.
//
// Builds the FlashWalker preprocessing artifact (partitioned graph bundle)
// from an edge list or a named scaled dataset, printing the partitioning
// report the board-level structures are sized from.
//
//   partition_tool --dataset FS --out fs.fwpart [--block-bytes N]
//   partition_tool --graph edges.txt --out g.fwpart [--weighted]
//   partition_tool --inspect g.fwpart
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "common/units.hpp"
#include "graph/datasets.hpp"
#include "graph/io.hpp"
#include "partition/dense_table.hpp"
#include "partition/io.hpp"
#include "partition/mapping_table.hpp"

using namespace fw;

namespace {

void report(const partition::PartitionedGraph& pg) {
  std::size_t dense_blocks = 0;
  std::uint64_t payload = 0;
  for (const auto& sg : pg.subgraphs()) {
    dense_blocks += sg.dense;
    payload += sg.payload_bytes;
  }
  std::vector<std::uint64_t> pages(pg.num_subgraphs(), 0);
  const partition::SubgraphMappingTable mtab(pg, pages);
  const partition::DenseVertexTable dtab(pg);

  TextTable t({"property", "value"});
  t.add_row({"vertices", std::to_string(pg.graph().num_vertices())});
  t.add_row({"edges", std::to_string(pg.graph().num_edges())});
  t.add_row({"graph-block capacity", TextTable::bytes(pg.config().block_capacity_bytes)});
  t.add_row({"subgraphs", std::to_string(pg.num_subgraphs())});
  t.add_row({"dense blocks", std::to_string(dense_blocks)});
  t.add_row({"dense vertices", std::to_string(dtab.num_dense_vertices())});
  t.add_row({"partitions", std::to_string(pg.num_partitions())});
  t.add_row({"total payload", TextTable::bytes(payload)});
  t.add_row({"mapping table", TextTable::bytes(mtab.table_bytes())});
  t.add_row({"range table", TextTable::bytes(mtab.range_table_bytes())});
  t.add_row({"dense table", TextTable::bytes(dtab.table_bytes())});
  t.add_row({"max binary-search steps", std::to_string(mtab.max_search_steps())});
  t.print(std::cout);
}

[[noreturn]] void usage() {
  std::cerr << "usage: partition_tool (--dataset TT|FS|CW|R2B|R8B | --graph PATH |\n"
               "                       --inspect PATH) [--out PATH]\n"
               "                      [--block-bytes N] [--per-partition N]\n"
               "                      [--per-range N] [--weighted]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string dataset, graph_path, inspect_path, out_path;
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 16 * KiB;
  pc.subgraphs_per_partition = 2048;
  pc.subgraphs_per_range = 64;

  auto need = [&](int& i) -> const char* {
    if (++i >= argc) usage();
    return argv[i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dataset") dataset = need(i);
    else if (arg == "--graph") graph_path = need(i);
    else if (arg == "--inspect") inspect_path = need(i);
    else if (arg == "--out") out_path = need(i);
    else if (arg == "--block-bytes") pc.block_capacity_bytes = std::strtoull(need(i), nullptr, 10);
    else if (arg == "--per-partition") pc.subgraphs_per_partition = std::strtoul(need(i), nullptr, 10);
    else if (arg == "--per-range") pc.subgraphs_per_range = std::strtoul(need(i), nullptr, 10);
    else if (arg == "--weighted") pc.weighted = true;
    else usage();
  }

  if (!inspect_path.empty()) {
    const auto bundle = partition::load_partitioned_file(inspect_path);
    std::cout << "bundle: " << inspect_path << "\n";
    report(*bundle.partitioned);
    return 0;
  }
  if (dataset.empty() == graph_path.empty()) usage();  // exactly one source

  graph::CsrGraph g = [&] {
    if (!dataset.empty()) {
      for (const auto& info : graph::all_datasets()) {
        if (info.abbrev == dataset) return graph::make_dataset(info.id);
      }
      usage();
    }
    std::ifstream in(graph_path);
    if (!in) {
      std::cerr << "cannot open " << graph_path << "\n";
      std::exit(1);
    }
    return graph::load_edge_list(in);
  }();

  const partition::PartitionedGraph pg(g, pc);
  report(pg);
  if (!out_path.empty()) {
    partition::save_partitioned_file(pg, out_path);
    std::cout << "wrote bundle to " << out_path << "\n";
  }
  return 0;
}
