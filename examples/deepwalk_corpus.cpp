// DeepWalk corpus generation (paper §I motivation: graph representation
// learning uses random walks as skip-gram input).
//
// Generates the walk corpus with the host reference implementation, writes
// it to a file, and simulates the same workload on the in-storage engine to
// estimate how long the walk-generation phase would take inside the SSD.
//
//   ./deepwalk_corpus [out_path]
#include <fstream>
#include <iostream>

#include "accel/builder.hpp"
#include "accel/engine.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"
#include "rw/algorithms.hpp"
#include "rw/embeddings.hpp"

using namespace fw;

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "deepwalk_corpus.txt";

  graph::RmatParams gp;
  gp.num_vertices = 1 << 13;
  gp.num_edges = 1 << 17;
  gp.seed = 5;
  const graph::CsrGraph graph = graph::generate_rmat(gp);

  rw::DeepWalkParams params;
  params.walks_per_vertex = 4;
  params.walk_length = 6;
  params.seed = 11;

  // Host-side corpus (the actual sequences downstream skip-gram consumes).
  const auto corpus = rw::deepwalk_corpus(graph, params);
  std::ofstream out(out_path);
  std::uint64_t tokens = 0;
  for (const auto& seq : corpus) {
    for (std::size_t i = 0; i < seq.size(); ++i) {
      out << seq[i] << (i + 1 < seq.size() ? ' ' : '\n');
    }
    tokens += seq.size();
  }
  std::cout << "wrote " << corpus.size() << " walks (" << tokens << " tokens) to "
            << out_path << "\n";

  // In-storage estimate of the same workload: every vertex starts
  // walks_per_vertex fixed-length walks.
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 16 * KiB;
  const partition::PartitionedGraph pg(graph, pc);

  accel::EngineOptions opts;
  opts.accel = accel::bench_accel_config();
  opts.spec.start_mode = rw::StartMode::kAllVertices;
  opts.spec.length = params.walk_length;
  opts.spec.seed = params.seed;
  opts.record_visits = false;

  Tick total = 0;
  for (std::uint32_t rep = 0; rep < params.walks_per_vertex; ++rep) {
    opts.spec.seed = params.seed + rep;
    auto engine = accel::SimulationBuilder(pg).options(opts).build();
    total += engine.run().exec_time;
  }
  std::cout << "simulated in-storage walk generation: " << TextTable::time_ns(total)
            << " for " << corpus.size() << " walks ("
            << TextTable::num(static_cast<double>(corpus.size()) / to_seconds(total) / 1e6,
                              2)
            << "M walks/s inside the SSD)\n";

  // Complete the DeepWalk pipeline: train skip-gram embeddings on the
  // corpus and verify they capture structure (graph neighbors end up closer
  // than random vertex pairs).
  rw::SkipGramParams sp;
  sp.dimensions = 32;
  sp.epochs = 2;
  rw::EmbeddingModel model(graph.num_vertices(), sp);
  model.train(corpus);
  const double gap = rw::edge_similarity_gap(model, graph, 5000, 99);
  std::cout << "trained " << sp.dimensions << "-d embeddings; neighbor-vs-random "
            << "cosine-similarity gap = " << TextTable::num(gap, 3)
            << " (positive = structure captured)\n";
  return 0;
}
