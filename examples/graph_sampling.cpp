// Random-walk graph sampling (paper §I: RW "generates small but
// representative samples from large-scale graphs"). Samples a vertex set by
// random walk with restart, extracts the induced subgraph, compares its
// degree shape with the full graph, and writes it as an edge list.
//
//   ./graph_sampling [target_vertices] [out_path]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <unordered_map>
#include <unordered_set>

#include "common/table.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "graph/io.hpp"
#include "rw/algorithms.hpp"

using namespace fw;

int main(int argc, char** argv) {
  const std::uint64_t target = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
  const std::string out_path = argc > 2 ? argv[2] : "sampled_graph.txt";

  graph::RmatParams gp;
  gp.num_vertices = 1 << 15;
  gp.num_edges = 1 << 19;
  gp.seed = 9;
  const graph::CsrGraph graph = graph::generate_rmat(gp);

  rw::SamplingParams params;
  params.target_vertices = target;
  params.restart_prob = 0.15;
  params.seed = 23;
  const auto sample = rw::rw_sample_vertices(graph, params);

  // Compare the three walk-based samplers on degree representativeness.
  const auto mhrw = rw::mhrw_sample_vertices(graph, params);
  rw::ForestFireParams ff;
  ff.target_vertices = target;
  ff.seed = 23;
  const auto fire = rw::forest_fire_sample(graph, ff);
  auto mean_degree = [&](const std::vector<VertexId>& vs) {
    double sum = 0;
    for (VertexId v : vs) sum += static_cast<double>(graph.out_degree(v));
    return vs.empty() ? 0.0 : sum / static_cast<double>(vs.size());
  };
  std::cout << "sampler mean out-degree (graph avg "
            << TextTable::num(static_cast<double>(graph.num_edges()) /
                                  static_cast<double>(graph.num_vertices()),
                              1)
            << "): RWR " << TextTable::num(mean_degree(sample), 1) << ", MHRW "
            << TextTable::num(mean_degree(mhrw), 1) << ", forest-fire "
            << TextTable::num(mean_degree(fire), 1) << "\n";

  // Graphlet concentration (paper §I use case) of full graph vs the sample.
  rw::GraphletParams glp;
  glp.num_samples = 40'000;
  const auto gl = rw::graphlet_concentration(graph, glp);
  std::cout << "triangle concentration (walk-sampled): "
            << TextTable::num(100 * gl.triangle_concentration(), 2) << "% over "
            << gl.wedges + gl.triangles << " sampled 3-node graphlets\n\n";

  // Induced subgraph with remapped vertex IDs.
  std::unordered_set<VertexId> in_sample(sample.begin(), sample.end());
  std::unordered_map<VertexId, VertexId> remap;
  remap.reserve(sample.size());
  for (VertexId v : sample) remap.emplace(v, remap.size());

  graph::GraphBuilder builder(sample.size());
  for (VertexId v : sample) {
    for (VertexId dst : graph.neighbors(v)) {
      if (in_sample.contains(dst)) builder.add_edge(remap[v], remap[dst]);
    }
  }
  const graph::CsrGraph sampled = std::move(builder).build();

  const auto full_stats = graph::compute_stats(graph);
  const auto sample_stats = graph::compute_stats(sampled);
  TextTable table({"", "full graph", "RW sample"});
  table.add_row({"vertices", std::to_string(full_stats.num_vertices),
                 std::to_string(sample_stats.num_vertices)});
  table.add_row({"edges", std::to_string(full_stats.num_edges),
                 std::to_string(sample_stats.num_edges)});
  table.add_row({"avg out-degree", TextTable::num(full_stats.avg_out_degree, 2),
                 TextTable::num(sample_stats.avg_out_degree, 2)});
  table.add_row({"top-1% edge share",
                 TextTable::num(100 * full_stats.top1pct_edge_share, 1) + "%",
                 TextTable::num(100 * sample_stats.top1pct_edge_share, 1) + "%"});
  table.print(std::cout);
  std::cout << "\nRW-with-restart sampling preserves the skew signature that a\n"
               "uniform vertex sample would destroy.\n";

  std::ofstream out(out_path);
  graph::save_edge_list(sampled, out);
  std::cout << "wrote induced sample to " << out_path << "\n";
  return 0;
}
