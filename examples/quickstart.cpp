// Quickstart: build a graph, partition it into graph blocks, run the same
// random-walk workload through the FlashWalker in-storage engine and the
// GraphWalker host baseline, and compare.
//
//   ./quickstart [num_walks]
#include <cstdlib>
#include <iostream>

#include "accel/builder.hpp"
#include "accel/engine.hpp"
#include "baseline/graphwalker.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"

using namespace fw;

int main(int argc, char** argv) {
  const std::uint64_t num_walks = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50'000;

  // 1. A power-law graph (the regime FlashWalker targets).
  graph::ZipfParams gp;
  gp.num_vertices = 1 << 14;
  gp.num_edges = 1 << 19;
  gp.exponent = 1.4;
  gp.seed = 7;
  const graph::CsrGraph graph = graph::generate_zipf(gp);
  const auto stats = graph::compute_stats(graph);
  std::cout << "graph: " << stats.num_vertices << " vertices, " << stats.num_edges
            << " edges, CSR " << TextTable::bytes(stats.csr_size_bytes)
            << ", top-1% vertices own "
            << TextTable::num(100 * stats.top1pct_edge_share, 1) << "% of edges\n";

  // 2. Partition into graph blocks (one flash block per subgraph; dense
  //    vertices split across blocks).
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 16 * KiB;
  const partition::PartitionedGraph pg(graph, pc);
  std::size_t dense = 0;
  for (const auto& sg : pg.subgraphs()) dense += sg.dense;
  std::cout << "partitioned into " << pg.num_subgraphs() << " subgraphs ("
            << dense << " dense blocks), " << pg.num_partitions() << " partition(s)\n";

  // 3. The workload: fixed-length unbiased walks from random vertices
  //    (the paper's evaluation setting).
  rw::WalkSpec spec;
  spec.num_walks = num_walks;
  spec.length = 6;
  spec.seed = 1;

  // 4. In-storage execution.
  accel::EngineOptions fw_opts;
  fw_opts.ssd = ssd::SsdConfig{};  // Table I/III SSD
  fw_opts.accel = accel::bench_accel_config();
  fw_opts.spec = spec;
  auto engine = accel::SimulationBuilder(pg).options(fw_opts).build();
  const auto fw_result = engine.run();

  // 5. GraphWalker on the same simulated SSD via PCIe.
  baseline::GraphWalkerOptions gw_opts;
  gw_opts.ssd = fw_opts.ssd;
  gw_opts.spec = spec;
  gw_opts.host.memory_bytes = 2 * MiB;  // out-of-core: graph > memory
  gw_opts.host.block_bytes = 512 * KiB;
  baseline::GraphWalkerEngine gw(graph, gw_opts);
  const auto gw_result = gw.run();

  // 6. Compare.
  TextTable table({"engine", "exec time", "hops", "flash reads", "achieved read BW"});
  table.add_row({"FlashWalker (in-storage)", TextTable::time_ns(fw_result.exec_time),
                 std::to_string(fw_result.metrics.total_hops),
                 TextTable::bytes(fw_result.flash_read_bytes),
                 TextTable::num(fw_result.flash_read_mb_per_s(), 0) + " MB/s"});
  table.add_row({"GraphWalker (host)", TextTable::time_ns(gw_result.exec_time),
                 std::to_string(gw_result.total_hops),
                 TextTable::bytes(gw_result.flash_read_bytes),
                 TextTable::num(gw_result.read_mb_per_s(), 0) + " MB/s"});
  table.print(std::cout);
  std::cout << "speedup: "
            << TextTable::num(static_cast<double>(gw_result.exec_time) /
                                  static_cast<double>(fw_result.exec_time),
                              2)
            << "x\n";
  std::cout << "\nwhere FlashWalker updated walks: chip-level "
            << fw_result.metrics.chip_updates << ", channel-level "
            << fw_result.metrics.channel_updates << ", board-level "
            << fw_result.metrics.board_updates << "\n";
  return 0;
}
