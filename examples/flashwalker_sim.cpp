// flashwalker_sim — command-line driver for the full simulator.
//
// Runs a random-walk workload through FlashWalker, GraphWalker, and/or the
// DrunkardMob iteration baseline on a chosen dataset (or an edge-list file)
// and prints a comparison report with energy estimates. With --jobs, runs a
// multi-job mix through the WalkService (FlashWalker only): N concurrent
// walk jobs multiplexed over one shared accelerator hierarchy with
// weighted-fair scheduling and per-job outputs.
//
// Run with --help for the full option table (generated from the shared
// fw::OptionSet registration below).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "accel/array/board_array.hpp"
#include "accel/builder.hpp"
#include "accel/energy_model.hpp"
#include "accel/engine.hpp"
#include "accel/report.hpp"
#include "accel/service/jobs_spec.hpp"
#include "accel/service/walk_service.hpp"
#include "baseline/drunkardmob.hpp"
#include "baseline/graphssd.hpp"
#include "baseline/graphwalker.hpp"
#include "baseline/thunder.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "graph/datasets.hpp"
#include "graph/graph_stats.hpp"
#include "graph/io.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "ssd/reliability/options.hpp"

using namespace fw;

namespace {

struct CliOptions {
  graph::DatasetId dataset = graph::DatasetId::FS;
  std::string graph_path;
  std::uint64_t walks = 0;
  std::uint32_t length = 6;
  bool biased = false;
  std::optional<std::pair<double, double>> node2vec;
  bool run_fw = true, run_gw = true, run_dm = false, run_tr = false, run_gs = false;
  accel::Features features;
  std::uint64_t memory = 6 * MiB;
  graph::Scale scale = graph::Scale::kBench;
  std::uint64_t seed = 42;
  std::string json_path;
  std::string trace_path;
  std::string metrics_path;
  std::string jobs_spec;
  std::uint32_t labels = 0;
  std::uint32_t sim_threads = 1;
  bool shard_audit = false;
  std::uint32_t devices = 1;
  Tick link_ns = accel::array::ArrayConfig{}.link_ns;
  std::uint32_t forward_batch = accel::array::ArrayConfig{}.forward_batch;
  ssd::SsdConfig ssd{};
};

/// Shard-audit summary for `--sim-threads N` runs (FlashWalker only).
void print_shard_audit(const accel::ShardAuditReport& a,
                       const std::string& label = "parallel-DES") {
  if (!a.enabled) return;
  const double cross_pct =
      a.local_sends + a.cross_sends == 0
          ? 0.0
          : 100.0 * static_cast<double>(a.cross_sends) /
                static_cast<double>(a.local_sends + a.cross_sends);
  std::cout << "\n" << label << " shard audit (" << a.shards << " shards, lookahead "
            << a.lookahead_ns << " ns):\n"
            << "  events        : " << a.events << " (busiest shard "
            << a.max_shard_events << ")\n"
            << "  occupancy     : min " << a.min_shard_events << ", max "
            << a.max_shard_events << " events/shard; board share "
            << TextTable::num(static_cast<double>(a.board_share_ppm()) / 10000.0, 2)
            << "%\n"
            << "  board batches : " << a.board_batches << " windows carrying "
            << a.board_batched_ops << " staged ops\n"
            << "  cross-shard   : " << a.cross_sends << " sends ("
            << TextTable::num(cross_pct, 1) << "% of traffic), min delay "
            << a.min_cross_delay_ns << " ns\n"
            << "  violations    : " << a.lookahead_violations
            << " sends inside the lookahead window\n";
}

CliOptions parse(int argc, char** argv) {
  CliOptions o;
  OptionSet opts;
  opts.opt("--dataset", "TT|FS|CW|R2B|R8B", "scaled Table-IV dataset (default FS)",
           [&o](const std::string& name) {
             for (const auto& info : graph::all_datasets()) {
               if (info.abbrev == name) {
                 o.dataset = info.id;
                 return;
               }
             }
             throw std::invalid_argument("--dataset: unknown dataset '" + name + "'");
           });
  opts.opt("--graph", &o.graph_path, "PATH", "load an edge-list file instead");
  opts.opt("--walks", &o.walks, "N", "number of walks (default: dataset default)");
  opts.opt("--length", &o.length, "N", "walk length (default 6)");
  opts.flag("--biased", &o.biased, "edge-weight-biased walks (ITS)");
  opts.opt("--node2vec", "P,Q", "second-order walks with p/q",
           [&o](const std::string& v) {
             const auto comma = v.find(',');
             if (comma == std::string::npos) {
               throw std::invalid_argument("--node2vec: expected P,Q, got '" + v + "'");
             }
             o.node2vec = {OptionSet::to_f64("--node2vec", v.substr(0, comma)),
                           OptionSet::to_f64("--node2vec", v.substr(comma + 1))};
           });
  opts.opt("--engines", "fw,gw,dm,tr,gs", "which engines to run (default fw,gw)",
           [&o](const std::string& list) {
             o.run_fw = list.find("fw") != std::string::npos;
             o.run_gw = list.find("gw") != std::string::npos;
             o.run_dm = list.find("dm") != std::string::npos;
             o.run_tr = list.find("tr") != std::string::npos;
             o.run_gs = list.find("gs") != std::string::npos;
           });
  opts.flag("--no-wq", "disable walk-query merging",
            [&o] { o.features.walk_query = false; });
  opts.flag("--no-hs", "disable hot-subgraph pinning",
            [&o] { o.features.hot_subgraphs = false; });
  opts.flag("--no-ss", "disable subgraph scheduling",
            [&o] { o.features.subgraph_scheduling = false; });
  opts.opt("--memory", &o.memory, "BYTES", "GraphWalker cache (default 6 MiB)");
  opts.opt("--scale", "test|small|bench", "dataset scale (default bench)",
           [&o](const std::string& s) {
             if (s == "test") {
               o.scale = graph::Scale::kTest;
             } else if (s == "small") {
               o.scale = graph::Scale::kSmall;
             } else if (s == "bench") {
               o.scale = graph::Scale::kBench;
             } else {
               throw std::invalid_argument("--scale: unknown scale '" + s + "'");
             }
           });
  opts.opt("--seed", &o.seed, "N", "RNG seed (default 42)");
  opts.opt("--labels", &o.labels, "N",
           "attach N deterministic per-vertex labels\n"
           "(heterogeneous graph; label = hash(seed, v)\n"
           "% N; required by the metapath model)");
  opts.opt("--sim-threads", &o.sim_threads, "N",
           "parallel-DES worker threads: channel\n"
           "shards execute concurrently, bit-identical\n"
           "to N=1 for any N (FlashWalker only;\n"
           "incompatible with --trace-out)");
  opts.flag("--shard-audit", &o.shard_audit,
            "record the cross-shard traffic audit\n"
            "(pure observation; printed after the run)");
  opts.opt("--devices", &o.devices, "N",
           "multi-SSD array: shard the graph across N\n"
           "FlashWalker boards behind a host fabric\n"
           "(default 1; FlashWalker only, incompatible\n"
           "with --trace-out)");
  opts.opt("--link-ns", &o.link_ns, "NS",
           "array fabric per-hop latency (default 600;\nfloored to the DES lookahead)");
  opts.opt("--forward-batch", &o.forward_batch, "N",
           "walks buffered per destination board before\n"
           "a cross-device forward ships (default 32)");
  opts.opt("--json", &o.json_path, "PATH", "full FlashWalker run report as JSON");
  opts.opt("--trace-out", &o.trace_path, "PATH",
           "Chrome trace_event JSON of the FW run\n"
           "(open in Perfetto / chrome://tracing)");
  opts.opt("--metrics-out", &o.metrics_path, "PATH",
           "hierarchical counter JSON for every\n"
           "engine that ran (artifact comparison)");
  ssd::add_reliability_options(opts, &o.ssd.reliability);
  opts.opt("--jobs", &o.jobs_spec, "SPEC",
           "multi-job mix through the WalkService\n(FlashWalker only)\n" +
               accel::service::jobs_help());
  opts.parse_or_exit(argc, argv, "FlashWalker vs. baseline random-walk simulation");
  if (o.sim_threads > 1 && !o.trace_path.empty()) {
    std::cerr << "--trace-out requires --sim-threads 1 (the trace recorder is a "
                 "single shared sink)\n";
    std::exit(2);
  }
  if (o.devices == 0) {
    std::cerr << "--devices must be >= 1\n";
    std::exit(2);
  }
  if (o.devices > 1 && !o.trace_path.empty()) {
    std::cerr << "--trace-out requires --devices 1 (a forwarded walk's spans would "
                 "split across boards)\n";
    std::exit(2);
  }
  if (o.devices > 1 && !o.run_fw) {
    std::cerr << "--devices applies to the FlashWalker engine; include fw in "
                 "--engines\n";
    std::exit(2);
  }
  if (o.labels > 255) {
    std::cerr << "--labels: at most 255 label classes (labels are one byte)\n";
    std::exit(2);
  }
  return o;
}

/// Multi-job service run: parse the mix, submit, print the per-job table
/// and service-level summary, honor --json/--trace-out/--metrics-out.
int run_service(const CliOptions& cli, const partition::PartitionedGraph& pg,
                accel::SimulationConfig cfg) {
  accel::service::JobSpecDefaults defaults;
  defaults.base_seed = cli.seed;
  defaults.length = cli.length;
  if (cli.walks > 0) defaults.walks = cli.walks;

  obs::TraceRecorder trace;
  if (!cli.trace_path.empty()) cfg.trace = &trace;
  accel::service::WalkService service(pg, std::move(cfg));
  for (auto& job : accel::service::parse_jobs(cli.jobs_spec, defaults)) {
    service.submit(std::move(job));
  }
  const auto res = service.run();

  TextTable table(
      {"job", "qos", "weight", "walks", "steps", "exec", "latency", "steps/s"});
  for (const auto& jr : res.jobs()) {
    table.add_row({jr.stats.name, std::string(accel::service::qos_name(jr.stats.qos)),
                   std::to_string(jr.stats.weight), std::to_string(jr.stats.walks),
                   std::to_string(jr.stats.steps),
                   TextTable::time_ns(jr.stats.exec_ns()),
                   TextTable::time_ns(jr.stats.latency_ns()),
                   TextTable::num(jr.stats.steps_per_sec(), 0)});
  }
  table.print(std::cout);
  std::cout << "\nservice: makespan " << TextTable::time_ns(res.makespan)
            << ", aggregate " << TextTable::num(res.aggregate_steps_per_sec, 0)
            << " steps/s, fairness " << TextTable::num(res.fairness_ratio, 2) << "x\n"
            << "latency: p50 "
            << TextTable::time_ns(static_cast<Tick>(res.latency_p50_ns))
            << ", p95 " << TextTable::time_ns(static_cast<Tick>(res.latency_p95_ns))
            << ", p99 " << TextTable::time_ns(static_cast<Tick>(res.latency_p99_ns))
            << "\n";
  print_shard_audit(res.engine.shard_audit);

  if (!cli.trace_path.empty()) {
    std::ofstream out(cli.trace_path);
    if (!out) {
      std::cerr << "cannot write " << cli.trace_path << "\n";
    } else {
      trace.write_json(out);
      out << "\n";
      std::cout << "wrote Chrome trace (" << trace.num_events() << " events) to "
                << cli.trace_path << "\n";
    }
  }
  if (!cli.json_path.empty()) {
    std::ofstream json(cli.json_path);
    accel::write_json(json, "flashwalker-service", res.engine);
    json << "\n";
    std::cout << "wrote JSON report to " << cli.json_path << "\n";
  }
  if (!cli.metrics_path.empty()) {
    std::ofstream out(cli.metrics_path);
    if (!out) {
      std::cerr << "cannot write " << cli.metrics_path << "\n";
      return 1;
    }
    out << "{\"schema_version\":" << accel::kReportSchemaVersion
        << ",\"engines\":{\"flashwalker\":";
    accel::write_counters_json(out, res.engine);
    out << "}}\n";
    std::cout << "wrote metrics JSON to " << cli.metrics_path << "\n";
  }
  return 0;
}

/// Multi-SSD array run (--devices > 1, FlashWalker only): shard the graph
/// across N boards, print the fabric/per-board summary, honor
/// --json/--metrics-out. With --jobs the mix runs directly as the array's
/// job list (every board admits the same jobs; walks split by ownership).
int run_array(const CliOptions& cli, const partition::PartitionedGraph& pg,
              accel::SimulationConfig cfg) {
  cfg.array.devices = cli.devices;
  cfg.array.link_ns = cli.link_ns;
  cfg.array.forward_batch = cli.forward_batch;
  if (!cli.jobs_spec.empty()) {
    accel::service::JobSpecDefaults defaults;
    defaults.base_seed = cli.seed;
    defaults.length = cli.length;
    if (cli.walks > 0) defaults.walks = cli.walks;
    cfg.jobs = accel::service::parse_jobs(cli.jobs_spec, defaults);
  }
  accel::array::BoardArray arr(pg, std::move(cfg));
  const auto res = arr.run();

  std::cout << "array: " << res.devices << " devices, exec "
            << TextTable::time_ns(res.exec_time) << ", aggregate "
            << TextTable::num(res.walks_per_sec(), 0) << " walks/s\n"
            << "fabric: " << res.fabric.batches << " batches / " << res.fabric.walks
            << " walks / " << TextTable::bytes(res.fabric.bytes) << " forwarded, "
            << res.fabric.job_notifications << " completion notices, hop "
            << res.fabric.link_ns << " ns\n\n";
  TextTable table({"board", "hops", "fwd out", "fwd in", "batches", "timeouts"});
  for (std::size_t d = 0; d < res.boards.size(); ++d) {
    const auto& m = res.boards[d].metrics;
    table.add_row({"board" + std::to_string(d), std::to_string(m.total_hops),
                   std::to_string(m.forwarded_out_walks),
                   std::to_string(m.forwarded_in_walks),
                   std::to_string(m.forward_batches),
                   std::to_string(m.forward_timeout_flushes)});
  }
  table.print(std::cout);
  for (std::size_t d = 0; d < res.boards.size(); ++d)
    print_shard_audit(res.boards[d].shard_audit,
                      std::string("board") + std::to_string(d));
  if (!cli.jobs_spec.empty()) {
    TextTable jt({"job", "qos", "weight", "walks", "steps", "latency"});
    for (const auto& s : res.jobs) {
      jt.add_row({s.name, std::string(accel::service::qos_name(s.qos)),
                  std::to_string(s.weight), std::to_string(s.walks),
                  std::to_string(s.steps), TextTable::time_ns(s.latency_ns())});
    }
    std::cout << "\n";
    jt.print(std::cout);
  }

  if (!cli.json_path.empty()) {
    std::ofstream json(cli.json_path);
    accel::write_json(json, "flashwalker-array", res);
    json << "\n";
    std::cout << "wrote JSON report to " << cli.json_path << "\n";
  }
  if (!cli.metrics_path.empty()) {
    std::ofstream out(cli.metrics_path);
    if (!out) {
      std::cerr << "cannot write " << cli.metrics_path << "\n";
      return 1;
    }
    out << "{\"schema_version\":" << accel::kReportSchemaVersion << ",\"engines\":{";
    for (std::size_t d = 0; d < res.boards.size(); ++d) {
      if (d > 0) out << ',';
      out << "\"board" << d << "\":";
      accel::write_counters_json(out, res.boards[d]);
    }
    out << "}}\n";
    std::cout << "wrote metrics JSON to " << cli.metrics_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = parse(argc, argv);

  // --- graph -------------------------------------------------------------
  graph::CsrGraph g = cli.graph_path.empty()
                          ? graph::make_dataset(cli.dataset, cli.scale)
                          : [&] {
                              std::ifstream in(cli.graph_path);
                              if (!in) {
                                std::cerr << "cannot open " << cli.graph_path << "\n";
                                std::exit(1);
                              }
                              return graph::load_edge_list(in);
                            }();
  if (cli.labels > 0) {
    g.assign_hashed_labels(static_cast<std::uint8_t>(cli.labels), cli.seed);
  }
  const auto stats = graph::compute_stats(g);
  std::cout << "graph: " << stats.num_vertices << " vertices, " << stats.num_edges
            << " edges, CSR " << TextTable::bytes(stats.csr_size_bytes)
            << (g.labeled() ? ", " + std::to_string(cli.labels) + " label classes" : "")
            << "\n";

  rw::WalkSpec spec;
  spec.num_walks = cli.walks ? cli.walks
                             : (cli.graph_path.empty()
                                    ? graph::default_walk_count(cli.dataset, cli.scale)
                                    : stats.num_vertices);
  spec.length = cli.length;
  spec.biased = cli.biased;
  spec.seed = cli.seed;
  if (cli.node2vec) {
    spec.second_order.enabled = true;
    spec.second_order.p = cli.node2vec->first;
    spec.second_order.q = cli.node2vec->second;
  }

  const ssd::SsdConfig& ssd_cfg = cli.ssd;
  if (ssd_cfg.reliability.enabled()) {
    std::cout << "reliability: rber " << ssd_cfg.reliability.rber.base
              << ", retention " << ssd_cfg.reliability.rber.retention_age
              << ", fault seed " << ssd_cfg.reliability.fault_seed << "\n";
  }
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 16 * KiB;
  pc.subgraphs_per_partition = 2048;
  pc.subgraphs_per_range = 64;
  pc.weighted = spec.biased;
  // Model label bytes in the blocks whenever the graph carries labels (the
  // jobs that read them are resolved later, inside the service/array path).
  pc.labeled = g.labeled();

  if (cli.devices > 1) {
    // Stripe grain: aim for ~4 partitions per board so the round-robin
    // device assignment gives every board work and walks actually cross the
    // fabric; a single monolithic partition would pin the whole graph to
    // board 0. Derived from the CSR size, so it stays deterministic.
    const std::uint64_t est_subgraphs =
        std::max<std::uint64_t>(1, stats.csr_size_bytes / pc.block_capacity_bytes);
    pc.subgraphs_per_partition = static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
        est_subgraphs / (4ull * cli.devices), 1, pc.subgraphs_per_partition));
    const partition::PartitionedGraph pg(g, pc);
    accel::SimulationConfig cfg;
    cfg.ssd = ssd_cfg;
    cfg.accel = accel::bench_accel_config();
    cfg.accel.features = cli.features;
    cfg.spec = spec;
    cfg.record_visits = false;
    cfg.sim_threads = cli.sim_threads;
    cfg.shard_audit = cli.shard_audit;
    try {
      return run_array(cli, pg, std::move(cfg));
    } catch (const std::invalid_argument& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }

  if (!cli.jobs_spec.empty()) {
    const partition::PartitionedGraph pg(g, pc);
    accel::SimulationConfig cfg;
    cfg.ssd = ssd_cfg;
    cfg.accel = accel::bench_accel_config();
    cfg.accel.features = cli.features;
    cfg.record_visits = false;
    cfg.sim_threads = cli.sim_threads;
    cfg.shard_audit = cli.shard_audit;
    try {
      return run_service(cli, pg, std::move(cfg));
    } catch (const std::invalid_argument& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }

  std::cout << "workload: " << spec.num_walks << " walks x " << spec.length << " hops"
            << (spec.biased ? ", biased (ITS)" : "")
            << (spec.second_order.enabled ? ", node2vec" : "") << "\n\n";

  TextTable table({"engine", "time", "hops", "flash read", "flash write",
                   "read BW MB/s", "energy mJ"});
  Tick fw_time = 0;
  // Per-engine counter payloads for --metrics-out:
  // {"schema_version":2,"engines":{"flashwalker":{...},...}}.
  std::vector<std::pair<std::string, std::string>> metric_parts;

  if (cli.run_fw) {
    const partition::PartitionedGraph pg(g, pc);
    accel::SimulationConfig cfg;
    cfg.ssd = ssd_cfg;
    cfg.accel = accel::bench_accel_config();
    cfg.accel.features = cli.features;
    cfg.spec = spec;
    cfg.record_visits = false;
    cfg.sim_threads = cli.sim_threads;
    cfg.shard_audit = cli.shard_audit;
    obs::TraceRecorder trace;
    if (!cli.trace_path.empty()) cfg.trace = &trace;
    const auto r = accel::SimulationBuilder(pg).config(cfg).run();
    fw_time = r.exec_time;
    print_shard_audit(r.shard_audit);
    if (!cli.trace_path.empty()) {
      std::ofstream out(cli.trace_path);
      if (!out) {
        std::cerr << "cannot write " << cli.trace_path << "\n";
      } else {
        trace.write_json(out);
        out << "\n";
        std::cout << "wrote Chrome trace (" << trace.num_events() << " events) to "
                  << cli.trace_path << "\n";
      }
    }
    if (!cli.metrics_path.empty()) {
      std::ostringstream ss;
      accel::write_counters_json(ss, r);
      metric_parts.emplace_back("flashwalker", ss.str());
    }
    if (!cli.json_path.empty()) {
      std::ofstream json(cli.json_path);
      accel::write_json(json, "flashwalker", r);
      json << "\n";
      std::cout << "wrote JSON report to " << cli.json_path << "\n";
    }
    const auto e = accel::estimate_flashwalker(r, cfg.accel, ssd_cfg);
    table.add_row({"FlashWalker", TextTable::time_ns(r.exec_time),
                   std::to_string(r.metrics.total_hops),
                   TextTable::bytes(r.flash_read_bytes),
                   TextTable::bytes(r.flash_write_bytes),
                   TextTable::num(r.flash_read_mb_per_s(), 0),
                   TextTable::num(e.total_j() * 1e3, 1)});
  }
  auto add_baseline = [&](const std::string& name, const std::string& key,
                          const baseline::BaselineResult& r) {
    if (!cli.metrics_path.empty()) {
      std::ostringstream ss;
      accel::write_counters_json(ss, r);
      metric_parts.emplace_back(key, ss.str());
    }
    const auto e = accel::estimate_baseline(r, ssd_cfg);
    table.add_row({name, TextTable::time_ns(r.exec_time), std::to_string(r.total_hops),
                   TextTable::bytes(r.flash_read_bytes), TextTable::bytes(r.bytes_written),
                   TextTable::num(r.read_mb_per_s(), 0),
                   TextTable::num(e.total_j() * 1e3, 1)});
    if (fw_time > 0) {
      std::cout << name << " / FlashWalker speedup: "
                << TextTable::num(static_cast<double>(r.exec_time) /
                                      static_cast<double>(fw_time),
                                  2)
                << "x\n";
    }
  };
  if (cli.run_gw) {
    baseline::GraphWalkerOptions opts;
    opts.ssd = ssd_cfg;
    opts.spec = spec;
    opts.host.memory_bytes = cli.memory;
    opts.record_visits = false;
    baseline::GraphWalkerEngine engine(g, opts);
    add_baseline("GraphWalker", "graphwalker", engine.run());
  }
  if (cli.run_dm) {
    baseline::DrunkardMobOptions opts;
    opts.ssd = ssd_cfg;
    opts.spec = spec;
    opts.host.memory_bytes = cli.memory;
    opts.record_visits = false;
    baseline::DrunkardMobEngine engine(g, opts);
    add_baseline("DrunkardMob", "drunkardmob", engine.run());
  }
  if (cli.run_gs) {
    baseline::GraphSsdOptions opts;
    opts.ssd = ssd_cfg;
    opts.spec = spec;
    opts.host.memory_bytes = cli.memory;
    opts.record_visits = false;
    baseline::GraphSsdEngine engine(g, opts);
    add_baseline("GraphSSD (semantic reads)", "graphssd", engine.run());
  }
  if (cli.run_tr) {
    baseline::ThunderOptions opts;
    opts.ssd = ssd_cfg;
    opts.spec = spec;
    opts.host.memory_bytes = std::max<std::uint64_t>(cli.memory, g.csr_size_bytes() + MiB);
    opts.record_visits = false;
    baseline::ThunderEngine engine(g, opts);
    add_baseline("ThunderRW (in-memory)", "thunderrw", engine.run());
  }
  if (!cli.metrics_path.empty()) {
    std::ofstream out(cli.metrics_path);
    if (!out) {
      std::cerr << "cannot write " << cli.metrics_path << "\n";
      return 1;
    }
    out << "{\"schema_version\":" << accel::kReportSchemaVersion << ",\"engines\":{";
    for (std::size_t i = 0; i < metric_parts.size(); ++i) {
      if (i > 0) out << ',';
      out << '"' << metric_parts[i].first << "\":" << metric_parts[i].second;
    }
    out << "}}\n";
    std::cout << "wrote metrics JSON to " << cli.metrics_path << "\n";
  }
  table.print(std::cout);
  return 0;
}
