// flashwalker_sim — command-line driver for the full simulator.
//
// Runs a random-walk workload through FlashWalker, GraphWalker, and/or the
// DrunkardMob iteration baseline on a chosen dataset (or an edge-list file)
// and prints a comparison report with energy estimates.
//
// Usage:
//   flashwalker_sim [options]
//     --dataset TT|FS|CW|R2B|R8B   scaled Table-IV dataset (default FS)
//     --graph PATH                 load an edge-list file instead
//     --walks N                    number of walks (default: dataset default)
//     --length N                   walk length (default 6)
//     --biased                     edge-weight-biased walks (ITS)
//     --node2vec P Q               second-order walks with p/q
//     --engines fw,gw,dm,tr        which engines to run (default fw,gw)
//     --no-wq / --no-hs / --no-ss  disable an optimization
//     --memory BYTES               GraphWalker cache (default 6 MiB)
//     --scale test|small|bench     dataset scale (default bench)
//     --seed N
//     --json PATH                  full FlashWalker run report as JSON
//     --trace-out PATH             Chrome trace_event JSON of the FW run
//                                  (open in Perfetto / chrome://tracing)
//     --metrics-out PATH           hierarchical counter JSON for every
//                                  engine that ran (artifact comparison)
//     --rber X                     NAND raw bit error rate of a fresh block
//                                  (0 disables the fault model; default 0)
//     --retention X                simulated retention age multiplier
//     --fault-seed N               seed for all fault draws (default 1);
//                                  runs are bit-identical for a fixed seed
//     --inject=K=V[,K=V...]        probabilistic fault injection; keys:
//                                  prog_fail, erase_fail, uncorrectable
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "accel/energy_model.hpp"
#include "accel/report.hpp"
#include "accel/engine.hpp"
#include "baseline/drunkardmob.hpp"
#include "baseline/graphwalker.hpp"
#include "baseline/graphssd.hpp"
#include "baseline/thunder.hpp"
#include "common/table.hpp"
#include "graph/datasets.hpp"
#include "graph/graph_stats.hpp"
#include "graph/io.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

using namespace fw;

namespace {

struct CliOptions {
  graph::DatasetId dataset = graph::DatasetId::FS;
  std::string graph_path;
  std::uint64_t walks = 0;
  std::uint32_t length = 6;
  bool biased = false;
  std::optional<std::pair<double, double>> node2vec;
  bool run_fw = true, run_gw = true, run_dm = false, run_tr = false, run_gs = false;
  accel::Features features;
  std::uint64_t memory = 6 * MiB;
  graph::Scale scale = graph::Scale::kBench;
  std::uint64_t seed = 42;
  std::string json_path;
  std::string trace_path;
  std::string metrics_path;
  double rber = 0.0;
  double retention = 0.0;
  std::uint64_t fault_seed = 1;
  double inject_prog_fail = 0.0;
  double inject_erase_fail = 0.0;
  double inject_uncorrectable = 0.0;
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--dataset TT|FS|CW|R2B|R8B] [--graph PATH] [--walks N]\n"
               "       [--length N] [--biased] [--node2vec P Q]\n"
               "       [--engines fw,gw,dm,tr,gs] [--no-wq] [--no-hs] [--no-ss]\n"
               "       [--memory BYTES] [--scale test|small|bench] [--seed N]\n"
               "       [--json PATH] [--trace-out PATH] [--metrics-out PATH]\n"
               "       [--rber X] [--retention X] [--fault-seed N]\n"
               "       [--inject=prog_fail=P,erase_fail=P,uncorrectable=P]\n";
  std::exit(2);
}

CliOptions parse(int argc, char** argv) {
  CliOptions o;
  auto need = [&](int& i) -> const char* {
    if (++i >= argc) usage(argv[0]);
    return argv[i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dataset") {
      const std::string name = need(i);
      bool found = false;
      for (const auto& info : graph::all_datasets()) {
        if (info.abbrev == name) {
          o.dataset = info.id;
          found = true;
        }
      }
      if (!found) usage(argv[0]);
    } else if (arg == "--graph") {
      o.graph_path = need(i);
    } else if (arg == "--walks") {
      o.walks = std::strtoull(need(i), nullptr, 10);
    } else if (arg == "--length") {
      o.length = static_cast<std::uint32_t>(std::strtoul(need(i), nullptr, 10));
    } else if (arg == "--biased") {
      o.biased = true;
    } else if (arg == "--node2vec") {
      const double p = std::strtod(need(i), nullptr);
      const double q = std::strtod(need(i), nullptr);
      o.node2vec = {p, q};
    } else if (arg == "--engines") {
      const std::string list = need(i);
      o.run_fw = list.find("fw") != std::string::npos;
      o.run_gw = list.find("gw") != std::string::npos;
      o.run_dm = list.find("dm") != std::string::npos;
      o.run_tr = list.find("tr") != std::string::npos;
      o.run_gs = list.find("gs") != std::string::npos;
    } else if (arg == "--no-wq") {
      o.features.walk_query = false;
    } else if (arg == "--no-hs") {
      o.features.hot_subgraphs = false;
    } else if (arg == "--no-ss") {
      o.features.subgraph_scheduling = false;
    } else if (arg == "--memory") {
      o.memory = std::strtoull(need(i), nullptr, 10);
    } else if (arg == "--scale") {
      const std::string s = need(i);
      o.scale = s == "test"    ? graph::Scale::kTest
                : s == "small" ? graph::Scale::kSmall
                               : graph::Scale::kBench;
    } else if (arg == "--seed") {
      o.seed = std::strtoull(need(i), nullptr, 10);
    } else if (arg == "--json") {
      o.json_path = need(i);
    } else if (arg == "--trace-out") {
      o.trace_path = need(i);
    } else if (arg == "--metrics-out") {
      o.metrics_path = need(i);
    } else if (arg == "--rber") {
      o.rber = std::strtod(need(i), nullptr);
    } else if (arg == "--retention") {
      o.retention = std::strtod(need(i), nullptr);
    } else if (arg == "--fault-seed") {
      o.fault_seed = std::strtoull(need(i), nullptr, 10);
    } else if (arg == "--inject" || arg.rfind("--inject=", 0) == 0) {
      const std::string list = arg == "--inject" ? need(i) : arg.substr(9);
      std::stringstream ss(list);
      std::string kv;
      while (std::getline(ss, kv, ',')) {
        const auto eq = kv.find('=');
        if (eq == std::string::npos) usage(argv[0]);
        const std::string key = kv.substr(0, eq);
        const double val = std::strtod(kv.c_str() + eq + 1, nullptr);
        if (key == "prog_fail") {
          o.inject_prog_fail = val;
        } else if (key == "erase_fail") {
          o.inject_erase_fail = val;
        } else if (key == "uncorrectable") {
          o.inject_uncorrectable = val;
        } else {
          usage(argv[0]);
        }
      }
    } else {
      usage(argv[0]);
    }
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = parse(argc, argv);

  // --- graph -------------------------------------------------------------
  graph::CsrGraph g = cli.graph_path.empty()
                          ? graph::make_dataset(cli.dataset, cli.scale)
                          : [&] {
                              std::ifstream in(cli.graph_path);
                              if (!in) {
                                std::cerr << "cannot open " << cli.graph_path << "\n";
                                std::exit(1);
                              }
                              return graph::load_edge_list(in);
                            }();
  const auto stats = graph::compute_stats(g);
  std::cout << "graph: " << stats.num_vertices << " vertices, " << stats.num_edges
            << " edges, CSR " << TextTable::bytes(stats.csr_size_bytes) << "\n";

  rw::WalkSpec spec;
  spec.num_walks = cli.walks ? cli.walks
                             : (cli.graph_path.empty()
                                    ? graph::default_walk_count(cli.dataset, cli.scale)
                                    : stats.num_vertices);
  spec.length = cli.length;
  spec.biased = cli.biased;
  spec.seed = cli.seed;
  if (cli.node2vec) {
    spec.second_order.enabled = true;
    spec.second_order.p = cli.node2vec->first;
    spec.second_order.q = cli.node2vec->second;
  }
  std::cout << "workload: " << spec.num_walks << " walks x " << spec.length << " hops"
            << (spec.biased ? ", biased (ITS)" : "")
            << (spec.second_order.enabled ? ", node2vec" : "") << "\n\n";

  ssd::SsdConfig ssd_cfg{};
  ssd_cfg.reliability.rber.base = cli.rber;
  ssd_cfg.reliability.rber.retention_age = cli.retention;
  ssd_cfg.reliability.fault_seed = cli.fault_seed;
  ssd_cfg.reliability.inject.program_fail = cli.inject_prog_fail;
  ssd_cfg.reliability.inject.erase_fail = cli.inject_erase_fail;
  ssd_cfg.reliability.inject.uncorrectable = cli.inject_uncorrectable;
  if (ssd_cfg.reliability.enabled()) {
    std::cout << "reliability: rber " << cli.rber << ", retention " << cli.retention
              << ", fault seed " << cli.fault_seed << "\n";
  }
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 16 * KiB;
  pc.subgraphs_per_partition = 2048;
  pc.subgraphs_per_range = 64;
  pc.weighted = spec.biased;

  TextTable table({"engine", "time", "hops", "flash read", "flash write",
                   "read BW MB/s", "energy mJ"});
  Tick fw_time = 0;
  // Per-engine counter payloads for --metrics-out: {"flashwalker": {...}, ...}.
  std::vector<std::pair<std::string, std::string>> metric_parts;

  if (cli.run_fw) {
    const partition::PartitionedGraph pg(g, pc);
    accel::EngineOptions opts;
    opts.ssd = ssd_cfg;
    opts.accel = accel::bench_accel_config();
    opts.accel.features = cli.features;
    opts.spec = spec;
    opts.record_visits = false;
    obs::TraceRecorder trace;
    if (!cli.trace_path.empty()) opts.trace = &trace;
    accel::FlashWalkerEngine engine(pg, opts);
    const auto r = engine.run();
    fw_time = r.exec_time;
    if (!cli.trace_path.empty()) {
      std::ofstream out(cli.trace_path);
      if (!out) {
        std::cerr << "cannot write " << cli.trace_path << "\n";
      } else {
        trace.write_json(out);
        out << "\n";
        std::cout << "wrote Chrome trace (" << trace.num_events() << " events) to "
                  << cli.trace_path << "\n";
      }
    }
    if (!cli.metrics_path.empty()) {
      std::ostringstream ss;
      accel::write_counters_json(ss, r);
      metric_parts.emplace_back("flashwalker", ss.str());
    }
    if (!cli.json_path.empty()) {
      std::ofstream json(cli.json_path);
      accel::write_json(json, "flashwalker", r);
      json << "\n";
      std::cout << "wrote JSON report to " << cli.json_path << "\n";
    }
    const auto e = accel::estimate_flashwalker(r, opts.accel, ssd_cfg);
    table.add_row({"FlashWalker", TextTable::time_ns(r.exec_time),
                   std::to_string(r.metrics.total_hops),
                   TextTable::bytes(r.flash_read_bytes),
                   TextTable::bytes(r.flash_write_bytes),
                   TextTable::num(r.flash_read_mb_per_s(), 0),
                   TextTable::num(e.total_j() * 1e3, 1)});
  }
  auto add_baseline = [&](const std::string& name, const std::string& key,
                          const baseline::BaselineResult& r) {
    if (!cli.metrics_path.empty()) {
      std::ostringstream ss;
      accel::write_counters_json(ss, r);
      metric_parts.emplace_back(key, ss.str());
    }
    const auto e = accel::estimate_baseline(r, ssd_cfg);
    table.add_row({name, TextTable::time_ns(r.exec_time), std::to_string(r.total_hops),
                   TextTable::bytes(r.flash_read_bytes), TextTable::bytes(r.bytes_written),
                   TextTable::num(r.read_mb_per_s(), 0),
                   TextTable::num(e.total_j() * 1e3, 1)});
    if (fw_time > 0) {
      std::cout << name << " / FlashWalker speedup: "
                << TextTable::num(static_cast<double>(r.exec_time) /
                                      static_cast<double>(fw_time),
                                  2)
                << "x\n";
    }
  };
  if (cli.run_gw) {
    baseline::GraphWalkerOptions opts;
    opts.ssd = ssd_cfg;
    opts.spec = spec;
    opts.host.memory_bytes = cli.memory;
    opts.record_visits = false;
    baseline::GraphWalkerEngine engine(g, opts);
    add_baseline("GraphWalker", "graphwalker", engine.run());
  }
  if (cli.run_dm) {
    baseline::DrunkardMobOptions opts;
    opts.ssd = ssd_cfg;
    opts.spec = spec;
    opts.host.memory_bytes = cli.memory;
    opts.record_visits = false;
    baseline::DrunkardMobEngine engine(g, opts);
    add_baseline("DrunkardMob", "drunkardmob", engine.run());
  }
  if (cli.run_gs) {
    baseline::GraphSsdOptions opts;
    opts.ssd = ssd_cfg;
    opts.spec = spec;
    opts.host.memory_bytes = cli.memory;
    opts.record_visits = false;
    baseline::GraphSsdEngine engine(g, opts);
    add_baseline("GraphSSD (semantic reads)", "graphssd", engine.run());
  }
  if (cli.run_tr) {
    baseline::ThunderOptions opts;
    opts.ssd = ssd_cfg;
    opts.spec = spec;
    opts.host.memory_bytes = std::max<std::uint64_t>(cli.memory, g.csr_size_bytes() + MiB);
    opts.record_visits = false;
    baseline::ThunderEngine engine(g, opts);
    add_baseline("ThunderRW (in-memory)", "thunderrw", engine.run());
  }
  if (!cli.metrics_path.empty()) {
    std::ofstream out(cli.metrics_path);
    if (!out) {
      std::cerr << "cannot write " << cli.metrics_path << "\n";
      return 1;
    }
    out << '{';
    for (std::size_t i = 0; i < metric_parts.size(); ++i) {
      if (i > 0) out << ',';
      out << '"' << metric_parts[i].first << "\":" << metric_parts[i].second;
    }
    out << "}\n";
    std::cout << "wrote metrics JSON to " << cli.metrics_path << "\n";
  }
  table.print(std::cout);
  return 0;
}
