// Random-walk semantics: samplers (uniform / ITS / slices / pre-walk block
// choice) with distributional property checks, and the reference algorithms.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/stats.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"
#include "rw/algorithms.hpp"
#include "rw/sampler.hpp"
#include "rw/spec.hpp"
#include "rw/walk.hpp"

namespace fw::rw {
namespace {

graph::CsrGraph star_graph(std::size_t leaves, bool weighted) {
  // Vertex 0 points at vertices 1..leaves with weight = leaf index.
  graph::GraphBuilder b(leaves + 1);
  for (std::size_t i = 1; i <= leaves; ++i) {
    b.add_edge(0, i, static_cast<float>(i));
  }
  graph::BuildOptions opts;
  opts.keep_weights = weighted;
  return std::move(b).build(opts);
}

TEST(Walk, ByteAccounting) {
  EXPECT_EQ(walk_bytes(4), 10u);        // 2 ids + hop counter
  EXPECT_EQ(walk_bytes(8), 18u);
  EXPECT_EQ(walk_bytes(4, true), 6u);   // dense walks drop `cur`
}

TEST(SampleUnbiased, DeadEndReturnsInvalid) {
  graph::GraphBuilder b(2);
  b.add_edge(0, 1);
  const auto g = std::move(b).build();
  Xoshiro256 rng(1);
  EXPECT_EQ(sample_unbiased(g, 1, rng).next, kInvalidVertex);
}

TEST(SampleUnbiased, UniformOverNeighbors) {
  const auto g = star_graph(8, false);
  Xoshiro256 rng(1);
  std::vector<std::uint64_t> counts(9, 0);
  for (int i = 0; i < 80'000; ++i) ++counts[sample_unbiased(g, 0, rng).next];
  std::vector<double> expected(9, 0.0);
  for (int i = 1; i <= 8; ++i) expected[i] = 1.0 / 8;
  EXPECT_LT(chi_square(counts, expected), 26.1);  // 7 dof, p~0.0005
}

TEST(SampleSlice, RestrictsToSlice) {
  const auto g = star_graph(8, false);
  Xoshiro256 rng(2);
  // Slice covering edges 2..5 of vertex 0 → neighbors 3,4,5 (sorted by dst).
  for (int i = 0; i < 1000; ++i) {
    const auto s = sample_unbiased_slice(g, 2, 5, rng);
    EXPECT_GE(s.next, 3u);
    EXPECT_LE(s.next, 5u);
  }
}

TEST(SampleSlice, EmptySliceIsDeadEnd) {
  const auto g = star_graph(4, false);
  Xoshiro256 rng(2);
  EXPECT_EQ(sample_unbiased_slice(g, 3, 3, rng).next, kInvalidVertex);
}

TEST(Its, RequiresWeights) {
  const auto g = star_graph(4, false);
  EXPECT_THROW(ItsTable{g}, std::invalid_argument);
}

TEST(Its, BiasedDistributionMatchesWeights) {
  const auto g = star_graph(8, true);  // weight of leaf i is i
  const ItsTable its(g);
  Xoshiro256 rng(3);
  std::vector<std::uint64_t> counts(9, 0);
  for (int i = 0; i < 90'000; ++i) ++counts[its.sample(g, 0, rng).next];
  const double total = 8.0 * 9.0 / 2.0;  // sum 1..8
  std::vector<double> expected(9, 0.0);
  for (int i = 1; i <= 8; ++i) expected[i] = i / total;
  EXPECT_LT(chi_square(counts, expected), 26.1);
}

TEST(Its, CountsBinarySearchSteps) {
  const auto g = star_graph(64, true);
  const ItsTable its(g);
  Xoshiro256 rng(4);
  const auto s = its.sample(g, 0, rng);
  EXPECT_GE(s.search_steps, 6u);  // log2(64)
  EXPECT_LE(s.search_steps, 8u);
}

TEST(Its, SliceSamplingUsesInVertexBase) {
  const auto g = star_graph(8, true);
  const ItsTable its(g);
  Xoshiro256 rng(5);
  // Slice covering the last 4 edges (leaves 5..8, weights 5..8).
  std::vector<std::uint64_t> counts(9, 0);
  for (int i = 0; i < 60'000; ++i) {
    const auto s = its.sample_slice(g, 0, 4, 8, rng);
    ASSERT_GE(s.next, 5u);
    ++counts[s.next];
  }
  const double total = 5 + 6 + 7 + 8;
  std::vector<double> expected(9, 0.0);
  for (int i = 5; i <= 8; ++i) expected[i] = i / total;
  EXPECT_LT(chi_square(counts, expected), 21.0);
}

TEST(Its, CumulativeWeightRestartsPerVertex) {
  graph::GraphBuilder b(3);
  b.add_edge(0, 1, 2.0f);
  b.add_edge(0, 2, 3.0f);
  b.add_edge(1, 2, 7.0f);
  graph::BuildOptions opts;
  opts.keep_weights = true;
  const auto g = std::move(b).build(opts);
  const ItsTable its(g);
  EXPECT_DOUBLE_EQ(its.cumulative_weight(0), 2.0);
  EXPECT_DOUBLE_EQ(its.cumulative_weight(1), 5.0);
  EXPECT_DOUBLE_EQ(its.cumulative_weight(2), 7.0);  // restarts at vertex 1
}

TEST(Prewalk, BlockChoiceFormula) {
  // Paper: gb_next is the floor(rnd / size(gb))-th graph block.
  EXPECT_EQ(prewalk_block_choice(0, 100), 0u);
  EXPECT_EQ(prewalk_block_choice(99, 100), 0u);
  EXPECT_EQ(prewalk_block_choice(100, 100), 1u);
  EXPECT_EQ(prewalk_block_choice(250, 100), 2u);
}

TEST(Prewalk, BlockDistributionProportionalToBlockDegree) {
  // Dense vertex with 250 edges, 100-edge blocks → blocks of 100/100/50
  // edges; chosen block frequency must be proportional.
  Xoshiro256 rng(6);
  std::vector<std::uint64_t> counts(3, 0);
  for (int i = 0; i < 100'000; ++i) {
    ++counts[prewalk_block_choice(prewalk_draw(250, rng), 100)];
  }
  std::vector<double> expected{100.0 / 250, 100.0 / 250, 50.0 / 250};
  EXPECT_LT(chi_square(counts, expected), 15.2);  // 2 dof
}

TEST(Prewalk, ComposedWithInBlockUniformIsGloballyUniform) {
  // Choosing block ∝ size then uniform-within-block == uniform over edges.
  const auto g = star_graph(25, false);
  Xoshiro256 rng(7);
  const EdgeId per_block = 10;
  std::vector<std::uint64_t> counts(26, 0);
  for (int i = 0; i < 130'000; ++i) {
    const auto rnd = prewalk_draw(25, rng);
    const auto block = prewalk_block_choice(rnd, per_block);
    const EdgeId begin = block * per_block;
    const EdgeId end = std::min<EdgeId>(25, begin + per_block);
    ++counts[sample_unbiased_slice(g, begin, end, rng).next];
  }
  std::vector<double> expected(26, 0.0);
  for (int i = 1; i <= 25; ++i) expected[i] = 1.0 / 25;
  EXPECT_LT(chi_square(counts, expected), 52.6);  // 24 dof, p~0.0005
}

// --- Reference walk execution ----------------------------------------------

TEST(RunWalks, FixedLengthCompletes) {
  graph::RmatParams p;
  p.num_vertices = 512;
  p.num_edges = 8192;
  const auto g = graph::generate_rmat(p);
  WalkSpec spec;
  spec.num_walks = 5000;
  spec.length = 6;
  const auto s = run_walks(g, spec);
  EXPECT_EQ(s.walks, 5000u);
  EXPECT_LE(s.total_hops, 5000u * 6);
  EXPECT_GT(s.total_hops, 0u);
  const auto visits = std::accumulate(s.visit_counts.begin(), s.visit_counts.end(), 0ull);
  EXPECT_EQ(visits, s.total_hops);
}

TEST(RunWalks, StopProbShortensWalks) {
  graph::RmatParams p;
  p.num_vertices = 512;
  p.num_edges = 8192;
  const auto g = graph::generate_rmat(p);
  WalkSpec spec;
  spec.num_walks = 5000;
  spec.length = 20;
  WalkSpec stopping = spec;
  stopping.stop_prob = 0.5;
  EXPECT_LT(run_walks(g, stopping).total_hops, run_walks(g, spec).total_hops / 2);
}

TEST(RunWalks, DeterministicForSeed) {
  graph::RmatParams p;
  p.num_vertices = 256;
  p.num_edges = 4096;
  const auto g = graph::generate_rmat(p);
  WalkSpec spec;
  spec.num_walks = 1000;
  const auto a = run_walks(g, spec);
  const auto b = run_walks(g, spec);
  EXPECT_EQ(a.visit_counts, b.visit_counts);
}

TEST(WalkPath, LengthBounded) {
  graph::RmatParams p;
  p.num_vertices = 256;
  p.num_edges = 4096;
  const auto g = graph::generate_rmat(p);
  WalkSpec spec;
  spec.length = 6;
  Xoshiro256 rng(1);
  for (VertexId v = 0; v < 50; ++v) {
    const auto path = walk_path(g, v, spec, rng);
    EXPECT_GE(path.size(), 1u);
    EXPECT_LE(path.size(), 7u);
    EXPECT_EQ(path.front(), v);
  }
}

TEST(DeepWalk, CorpusShape) {
  graph::RmatParams p;
  p.num_vertices = 128;
  p.num_edges = 2048;
  const auto g = graph::generate_rmat(p);
  DeepWalkParams dp;
  dp.walks_per_vertex = 3;
  dp.walk_length = 4;
  const auto corpus = deepwalk_corpus(g, dp);
  EXPECT_EQ(corpus.size(), 128u * 3);
  for (const auto& seq : corpus) EXPECT_LE(seq.size(), 5u);
}

TEST(Ppr, SourceNeighborhoodRanksHigh) {
  // A directed chain with a hub: walks from the hub end near it.
  graph::GraphBuilder b(10);
  for (VertexId v = 0; v + 1 < 10; ++v) b.add_edge(v, v + 1);
  b.add_edge(9, 0);
  const auto g = std::move(b).build();
  PprParams pp;
  pp.source = 0;
  pp.num_walks = 20'000;
  pp.restart_prob = 0.5;
  const auto scores = personalized_pagerank(g, pp, 10);
  ASSERT_FALSE(scores.empty());
  // With restart 0.5, mass concentrates at/near the source.
  EXPECT_LE(scores[0].first, 2u);
  double sum = 0;
  for (const auto& [v, s] : scores) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Node2Vec, WalksStayOnGraph) {
  graph::RmatParams p;
  p.num_vertices = 128;
  p.num_edges = 2048;
  const auto g = graph::generate_rmat(p);
  Node2VecParams np;
  np.walk_length = 5;
  const auto walks = node2vec_walks(g, np);
  EXPECT_EQ(walks.size(), 128u);
  for (const auto& path : walks) {
    for (std::size_t i = 1; i < path.size(); ++i) {
      const auto nbrs = g.neighbors(path[i - 1]);
      EXPECT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), path[i]))
          << "hop " << i << " not an edge";
    }
  }
}

TEST(Node2Vec, ReturnParameterBiasesBacktracking) {
  // Small p → strong return bias: consecutive A-B-A patterns more common.
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  b.add_edge(1, 2);
  b.add_edge(2, 1);
  const auto g = std::move(b).build();
  auto count_backtracks = [&](double pparam) {
    Node2VecParams np;
    np.p = pparam;
    np.q = 1.0;
    np.walk_length = 20;
    np.walks_per_vertex = 200;
    np.seed = 8;
    std::uint64_t backtracks = 0, steps = 0;
    for (const auto& path : node2vec_walks(g, np)) {
      for (std::size_t i = 2; i < path.size(); ++i) {
        ++steps;
        backtracks += path[i] == path[i - 2];
      }
    }
    return static_cast<double>(backtracks) / static_cast<double>(steps);
  };
  EXPECT_GT(count_backtracks(0.1), count_backtracks(10.0) + 0.1);
}

TEST(SimRank, IdenticalVerticesScoreOne) {
  const auto g = star_graph(4, false);
  EXPECT_DOUBLE_EQ(simrank(g, 0, 0, {}), 1.0);
}

TEST(SimRank, StructurallySimilarBeatsDissimilar) {
  // a and b both point only at hub h; c points elsewhere.
  graph::GraphBuilder bld(5);
  bld.add_edge(0, 2);  // a -> h
  bld.add_edge(1, 2);  // b -> h
  bld.add_edge(3, 4);  // c -> other
  bld.add_edge(2, 2);  // hub self-loop keeps walks alive
  bld.add_edge(4, 4);
  const auto g = std::move(bld).build();
  SimRankParams sp;
  sp.num_pairs = 5000;
  EXPECT_GT(simrank(g, 0, 1, sp), simrank(g, 0, 3, sp) + 0.3);
}

TEST(Sampling, MhrwReducesDegreeBias) {
  // Plain RW sampling over-represents hubs; MHRW's acceptance rule corrects
  // it on symmetric adjacency (the textbook setting). Compare the mean
  // degree of samples from a symmetrized skewed graph.
  graph::ZipfParams zp;
  zp.num_vertices = 1 << 12;
  zp.num_edges = 1 << 16;
  zp.exponent = 1.4;
  zp.seed = 77;
  const auto g = graph::symmetrize(graph::generate_zipf(zp));

  // Plain-RW stationary visits on a symmetric graph are ∝ degree, so the
  // visit-frequency-weighted mean degree is E[deg²]/E[deg] ≫ E[deg].
  WalkSpec spec;
  spec.num_walks = 5000;
  spec.length = 20;
  const auto visits = run_walks(g, spec).visit_counts;
  double vw_deg = 0, vw_total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    vw_deg += static_cast<double>(visits[v]) * static_cast<double>(g.out_degree(v));
    vw_total += static_cast<double>(visits[v]);
  }
  const double plain_visit_mean = vw_deg / vw_total;

  SamplingParams sp;
  sp.target_vertices = 600;
  const auto mhrw = mhrw_sample_vertices(g, sp);
  double mhrw_sum = 0;
  for (VertexId v : mhrw) mhrw_sum += static_cast<double>(g.out_degree(v));
  const double mhrw_mean = mhrw_sum / static_cast<double>(mhrw.size());

  EXPECT_LT(mhrw_mean, 0.5 * plain_visit_mean)
      << "MHRW should shed most of the degree bias of plain-RW visitation";
}

TEST(Sampling, ForestFireBurnsConnectedRegions) {
  graph::RmatParams p;
  p.num_vertices = 1 << 12;
  p.num_edges = 1 << 15;
  const auto g = graph::generate_rmat(p);
  ForestFireParams fp;
  fp.target_vertices = 500;
  const auto sample = forest_fire_sample(g, fp);
  EXPECT_GE(sample.size(), 400u);
  for (VertexId v : sample) EXPECT_LT(v, g.num_vertices());
}

TEST(Graphlets, TriangleHeavyGraphScoresHigh) {
  // Complete graph: every wedge closes.
  graph::GraphBuilder b(16);
  for (VertexId v = 0; v < 16; ++v) {
    for (VertexId u = 0; u < 16; ++u) {
      if (v != u) b.add_edge(v, u);
    }
  }
  const auto g = std::move(b).build();
  GraphletParams gp;
  gp.num_samples = 20'000;
  const auto r = graphlet_concentration(g, gp);
  EXPECT_GT(r.triangle_concentration(), 0.95);
}

TEST(Graphlets, TriangleFreeGraphScoresZero) {
  // Bipartite-ish: even -> odd edges only; no directed triangles close.
  graph::GraphBuilder b(64);
  for (VertexId v = 0; v < 64; v += 2) {
    b.add_edge(v, (v + 1) % 64);
    b.add_edge(v + 1, (v + 2) % 64);
  }
  const auto g = std::move(b).build();
  GraphletParams gp;
  gp.num_samples = 10'000;
  const auto r = graphlet_concentration(g, gp);
  EXPECT_DOUBLE_EQ(r.triangle_concentration(), 0.0);
}

TEST(Graphlets, SamplesAreCounted) {
  graph::RmatParams p;
  p.num_vertices = 1 << 10;
  p.num_edges = 1 << 14;
  const auto g = graph::generate_rmat(p);
  GraphletParams gp;
  gp.num_samples = 20'000;
  const auto r = graphlet_concentration(g, gp);
  EXPECT_GT(r.wedges + r.triangles, 10'000u);
  EXPECT_GT(r.triangle_concentration(), 0.0);  // RMAT has triangles
  EXPECT_LT(r.triangle_concentration(), 0.5);
}

TEST(Sampling, ReturnsRequestedCount) {
  graph::RmatParams p;
  p.num_vertices = 1 << 12;
  p.num_edges = 1 << 15;
  const auto g = graph::generate_rmat(p);
  SamplingParams sp;
  sp.target_vertices = 300;
  const auto sample = rw_sample_vertices(g, sp);
  EXPECT_GE(sample.size(), 250u);
  for (VertexId v : sample) EXPECT_LT(v, g.num_vertices());
}

}  // namespace
}  // namespace fw::rw
