// SSD substrate tests: addressing, flash timing, channel contention, FTL
// (mapping, GC, write amplification), DRAM, host device, and graph layout.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/partitioned_graph.hpp"
#include "ssd/address.hpp"
#include "ssd/config.hpp"
#include "ssd/dram.hpp"
#include "ssd/flash_array.hpp"
#include "ssd/ftl.hpp"
#include "ssd/graph_layout.hpp"
#include "ssd/ssd_device.hpp"

namespace fw::ssd {
namespace {

TEST(Config, PaperAggregates) {
  const SsdConfig cfg;  // Table I/III defaults
  // Paper §II.C: 32 channels at 333 MB/s ≈ 10.4 GB/s aggregate.
  EXPECT_EQ(cfg.aggregate_channel_mb_per_s(), 32u * 333u);
  // 1024 planes at 4 KB / 35 us each.
  EXPECT_NEAR(cfg.aggregate_plane_read_mb_per_s(), 1024 * 4096.0 * 1000 / 35000.0, 1.0);
  // PCIe: "1GB/s x 4".
  EXPECT_EQ(cfg.pcie.mb_per_s(), 4000u);
  // Channel bandwidth is the narrow stage: planes >> channels >> PCIe.
  EXPECT_GT(cfg.aggregate_plane_read_mb_per_s(),
            static_cast<double>(cfg.aggregate_channel_mb_per_s()));
  EXPECT_GT(cfg.aggregate_channel_mb_per_s(), cfg.pcie.mb_per_s());
}

TEST(Config, CapacityArithmetic) {
  const SsdConfig cfg = test_ssd_config();
  const auto& t = cfg.topo;
  EXPECT_EQ(cfg.topo.total_planes(),
            t.channels * t.chips_per_channel * t.dies_per_chip * t.planes_per_die);
  EXPECT_EQ(cfg.topo.capacity_bytes(),
            std::uint64_t{t.channels} * t.chips_per_channel * t.dies_per_chip *
                t.planes_per_die * t.blocks_per_plane * t.pages_per_block * t.page_bytes);
}

TEST(Config, DramLatencyFromTimings) {
  DramConfig d;  // DDR4-1600, CL=RCD=22
  // tCK = 2000/1600 = 1.25 ns; (22+22)*1.25 = 55 ns.
  EXPECT_EQ(d.access_latency(), 55u);
  EXPECT_EQ(d.peak_mb_per_s(), 1600u * 8u);
}

TEST(AddressMap, RoundTrip) {
  const SsdConfig cfg = test_ssd_config();
  AddressMap amap(cfg.topo);
  for (std::uint64_t ppn = 0; ppn < amap.total_pages(); ppn += 97) {
    EXPECT_EQ(amap.to_ppn(amap.from_ppn(ppn)), ppn);
  }
}

TEST(AddressMap, PlaneIndexIsDense) {
  const SsdConfig cfg = test_ssd_config();
  AddressMap amap(cfg.topo);
  std::vector<bool> seen(cfg.topo.total_planes(), false);
  for (std::uint32_t ch = 0; ch < cfg.topo.channels; ++ch) {
    for (std::uint32_t chip = 0; chip < cfg.topo.chips_per_channel; ++chip) {
      for (std::uint32_t pl = 0; pl < cfg.topo.planes_per_chip(); ++pl) {
        FlashAddress a{ch, chip, pl, 0, 0};
        const auto idx = amap.plane_index(a);
        ASSERT_LT(idx, seen.size());
        EXPECT_FALSE(seen[idx]);
        seen[idx] = true;
      }
    }
  }
}

TEST(FlashArray, InternalReadSkipsChannel) {
  FlashArray flash(test_ssd_config());
  FlashAddress a{};
  const Tick t = flash.read_page(0, a, /*over_channel=*/false);
  EXPECT_EQ(t, flash.config().timing.read_latency);
  EXPECT_EQ(flash.channel_bytes(), 0u);
  EXPECT_EQ(flash.read_bytes(), flash.config().topo.page_bytes);
}

TEST(FlashArray, ChannelReadAddsBusTime) {
  FlashArray flash(test_ssd_config());
  FlashAddress a{};
  const Tick t = flash.read_page(0, a, /*over_channel=*/true);
  const auto& cfg = flash.config();
  const Tick expected = cfg.timing.read_latency +
                        transfer_time_ns(cfg.topo.page_bytes, cfg.timing.channel_mb_per_s) +
                        cfg.timing.channel_cmd_overhead;
  EXPECT_EQ(t, expected);
  EXPECT_EQ(flash.channel_bytes(), cfg.topo.page_bytes);
}

TEST(FlashArray, PlaneSerializesSamePlaneReads) {
  FlashArray flash(test_ssd_config());
  FlashAddress a{};
  const Tick t1 = flash.read_page(0, a, false);
  const Tick t2 = flash.read_page(0, a, false);
  EXPECT_EQ(t2, 2 * t1);
}

TEST(FlashArray, DifferentPlanesReadInParallel) {
  FlashArray flash(test_ssd_config());
  FlashAddress a{}, b{};
  b.plane = 1;
  const Tick t1 = flash.read_page(0, a, false);
  const Tick t2 = flash.read_page(0, b, false);
  EXPECT_EQ(t1, t2);
}

TEST(FlashArray, ChipPagesStripeAcrossPlanes) {
  const SsdConfig cfg = test_ssd_config();
  FlashArray flash(cfg);
  const std::uint32_t planes = cfg.topo.planes_per_chip();
  // Reading `planes` pages internally takes one read latency (all parallel).
  const Tick t = flash.read_chip_pages(0, 0, 0, 0, planes, false);
  EXPECT_EQ(t, cfg.timing.read_latency);
  // Reading 2x planes pages takes two rounds.
  FlashArray flash2(cfg);
  const Tick t2 = flash2.read_chip_pages(0, 0, 0, 0, 2 * planes, false);
  EXPECT_EQ(t2, 2 * cfg.timing.read_latency);
}

TEST(FlashArray, ProgramSlowerThanRead) {
  FlashArray flash(test_ssd_config());
  FlashAddress a{};
  const Tick tr = flash.read_page(0, a, false);
  FlashArray flash2(test_ssd_config());
  const Tick tw = flash2.program_page(0, a, false);
  EXPECT_EQ(tw, 10 * tr);  // 350 us vs 35 us
}

TEST(FlashArray, EraseAccounted) {
  FlashArray flash(test_ssd_config());
  FlashAddress a{};
  flash.erase_block(0, a);
  EXPECT_EQ(flash.erase_count(), 1u);
}

TEST(FlashArray, UtilizationTracksBusyTime) {
  FlashArray flash(test_ssd_config());
  FlashAddress a{};
  const Tick t = flash.read_page(0, a, false);
  const double util = flash.plane_utilization(t);
  EXPECT_NEAR(util, 1.0 / flash.config().topo.total_planes(), 1e-9);
}

// --- FTL ---------------------------------------------------------------------

TEST(Ftl, WriteThenReadMapsCorrectly) {
  FlashArray flash(test_ssd_config());
  Ftl ftl(flash, /*reserved=*/4);
  EXPECT_FALSE(ftl.is_mapped(7));
  ftl.write_page(0, 7);
  EXPECT_TRUE(ftl.is_mapped(7));
  const Tick t = ftl.read_page(0, 7);
  EXPECT_GT(t, 0u);
  EXPECT_EQ(ftl.stats().host_page_writes, 1u);
  EXPECT_EQ(ftl.stats().host_page_reads, 1u);
}

TEST(Ftl, ReadUnmappedThrows) {
  FlashArray flash(test_ssd_config());
  Ftl ftl(flash, 4);
  EXPECT_THROW(ftl.read_page(0, 99), std::out_of_range);
}

TEST(Ftl, OverwriteInvalidatesOldPage) {
  FlashArray flash(test_ssd_config());
  Ftl ftl(flash, 4);
  ftl.write_page(0, 1);
  ftl.write_page(0, 1);
  EXPECT_EQ(ftl.stats().host_page_writes, 2u);
  ftl.read_page(0, 1);  // still readable after overwrite
}

TEST(Ftl, StripesAcrossPlanes) {
  const SsdConfig cfg = test_ssd_config();
  FlashArray flash(cfg);
  Ftl ftl(flash, 4);
  // N writes across N planes should overlap: total time ~ one program.
  Tick done = 0;
  for (std::uint32_t i = 0; i < cfg.topo.total_planes(); ++i) {
    done = std::max(done, ftl.write_page(0, i, /*over_channel=*/false));
  }
  EXPECT_EQ(done, cfg.timing.program_latency);
}

TEST(Ftl, GarbageCollectionReclaimsSpace) {
  SsdConfig cfg = test_ssd_config();
  cfg.topo.channels = 1;
  cfg.topo.chips_per_channel = 1;
  cfg.topo.dies_per_chip = 1;
  cfg.topo.planes_per_die = 1;
  cfg.topo.blocks_per_plane = 4;
  cfg.topo.pages_per_block = 4;
  FlashArray flash(cfg);
  Ftl ftl(flash, /*reserved=*/1);  // 3 usable blocks x 4 pages = 12 pages
  // Overwrite 4 LPNs repeatedly: most pages become invalid, so GC can
  // always reclaim.
  for (int round = 0; round < 20; ++round) {
    for (std::uint64_t lpn = 0; lpn < 4; ++lpn) ftl.write_page(0, lpn);
  }
  EXPECT_GT(ftl.stats().gc_erases, 0u);
  EXPECT_GE(ftl.stats().write_amplification(), 1.0);
  for (std::uint64_t lpn = 0; lpn < 4; ++lpn) ftl.read_page(0, lpn);  // survives GC
}

TEST(Ftl, RejectsFullReservation) {
  FlashArray flash(test_ssd_config());
  EXPECT_THROW(Ftl(flash, flash.config().topo.blocks_per_plane), std::invalid_argument);
}

// --- DRAM ----------------------------------------------------------------------

TEST(Dram, AccessChargesLatencyAndBandwidth) {
  DramModel dram{DramConfig{}};
  const Tick t = dram.access(0, 12800);  // 12.8 KB at 12.8 GB/s = 1 us
  EXPECT_EQ(t, 1000u + dram.config().access_latency());
  EXPECT_EQ(dram.bytes_moved(), 12800u);
}

TEST(Dram, SharedBusSerializes) {
  DramModel dram{DramConfig{}};
  const Tick t1 = dram.access(0, 12800);
  const Tick t2 = dram.access(0, 12800);
  EXPECT_EQ(t2, 2 * t1);
}

// --- SsdDevice ---------------------------------------------------------------------

TEST(SsdDevice, LargeReadBottleneckedByNarrowStage) {
  const SsdConfig cfg = test_ssd_config();
  FlashArray flash(cfg);
  SsdDevice dev(flash);
  const std::uint64_t bytes = 4 * MiB;
  const Tick t = dev.host_read(0, bytes);
  // The read must take at least as long as the PCIe transfer and at least
  // one flash read.
  EXPECT_GE(t, transfer_time_ns(bytes, cfg.pcie.mb_per_s()));
  EXPECT_GE(t, cfg.timing.read_latency);
  EXPECT_EQ(dev.host_read_bytes(), bytes);
  EXPECT_GE(flash.read_bytes(), bytes);
}

TEST(SsdDevice, WriteGoesThroughPcieAndPrograms) {
  FlashArray flash(test_ssd_config());
  SsdDevice dev(flash);
  const Tick t = dev.host_write(0, 64 * KiB);
  EXPECT_GE(t, flash.config().timing.program_latency);
  EXPECT_GT(flash.programmed_bytes(), 0u);
}

TEST(SsdDevice, ZeroByteOpsAreFree) {
  FlashArray flash(test_ssd_config());
  SsdDevice dev(flash);
  EXPECT_EQ(dev.host_read(123, 0), 123u);
  EXPECT_EQ(dev.host_write(123, 0), 123u);
}

TEST(SsdDevice, BackToBackReadsQueue) {
  FlashArray flash(test_ssd_config());
  SsdDevice dev(flash);
  const Tick t1 = dev.host_read(0, 1 * MiB);
  const Tick t2 = dev.host_read(0, 1 * MiB);
  EXPECT_GT(t2, t1);
}

// --- GraphLayout ----------------------------------------------------------------------

class LayoutTest : public ::testing::Test {
 protected:
  LayoutTest() {
    graph::RmatParams p;
    p.num_vertices = 1 << 10;
    p.num_edges = 32 << 10;
    p.seed = 5;
    g_ = graph::generate_rmat(p);
    partition::PartitionConfig pc;
    pc.block_capacity_bytes = 2048;
    pg_ = std::make_unique<partition::PartitionedGraph>(g_, pc);
    cfg_ = test_ssd_config();
    layout_ = std::make_unique<GraphLayout>(*pg_, cfg_);
  }
  graph::CsrGraph g_;
  std::unique_ptr<partition::PartitionedGraph> pg_;
  SsdConfig cfg_;
  std::unique_ptr<GraphLayout> layout_;
};

TEST_F(LayoutTest, EverySubgraphPlacedInOneChip) {
  for (SubgraphId sg = 0; sg < pg_->num_subgraphs(); ++sg) {
    const auto& p = layout_->placement(sg);
    EXPECT_LT(p.channel, cfg_.topo.channels);
    EXPECT_LT(p.chip, cfg_.topo.chips_per_channel);
    EXPECT_GT(p.num_pages, 0u);
  }
}

TEST_F(LayoutTest, ChipSubgraphListsAreConsistent) {
  std::size_t total = 0;
  for (std::uint32_t ch = 0; ch < cfg_.topo.channels; ++ch) {
    for (std::uint32_t chip = 0; chip < cfg_.topo.chips_per_channel; ++chip) {
      for (SubgraphId sg : layout_->chip_subgraphs(ch, chip)) {
        EXPECT_EQ(layout_->placement(sg).channel, ch);
        EXPECT_EQ(layout_->placement(sg).chip, chip);
        ++total;
      }
    }
  }
  EXPECT_EQ(total, pg_->num_subgraphs());
}

TEST_F(LayoutTest, PlacementIsBalanced) {
  std::size_t min_count = ~0ull, max_count = 0;
  for (std::uint32_t ch = 0; ch < cfg_.topo.channels; ++ch) {
    for (std::uint32_t chip = 0; chip < cfg_.topo.chips_per_channel; ++chip) {
      const auto n = layout_->chip_subgraphs(ch, chip).size();
      min_count = std::min(min_count, n);
      max_count = std::max(max_count, n);
    }
  }
  EXPECT_LE(max_count - min_count, 1u);  // round-robin
}

TEST_F(LayoutTest, ReservationCoversGraphPages) {
  const auto reserved = layout_->reserved_blocks_per_plane();
  EXPECT_GT(reserved, 0u);
  EXPECT_LT(reserved, cfg_.topo.blocks_per_plane);
}

TEST_F(LayoutTest, FirstPagesAlignWithPlacements) {
  const auto pages = layout_->first_pages();
  ASSERT_EQ(pages.size(), pg_->num_subgraphs());
  AddressMap amap(cfg_.topo);
  for (SubgraphId sg = 0; sg < pg_->num_subgraphs(); ++sg) {
    const auto addr = amap.from_ppn(pages[sg]);
    EXPECT_EQ(addr.channel, layout_->placement(sg).channel);
    EXPECT_EQ(addr.chip, layout_->placement(sg).chip);
  }
}

TEST(Layout, ThrowsWhenGraphDoesNotFit) {
  graph::RmatParams p;
  p.num_vertices = 1 << 12;
  p.num_edges = 256 << 10;
  const auto g = graph::generate_rmat(p);
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 4096;
  const partition::PartitionedGraph pg(g, pc);
  SsdConfig tiny = test_ssd_config();
  tiny.topo.channels = 1;
  tiny.topo.chips_per_channel = 1;
  tiny.topo.blocks_per_plane = 2;
  tiny.topo.pages_per_block = 2;
  EXPECT_THROW(GraphLayout(pg, tiny), std::runtime_error);
}

}  // namespace
}  // namespace fw::ssd
