// Golden determinism tests: the simulator's core contract is that a fixed
// seed reproduces a run *bit-identically* — same walk paths, same simulated
// exec time, same counter registry down to the last byte of the JSON dump.
// This is what makes the bucketed event queue a legal replacement for the
// binary heap (equal-tick events must fire in insertion order) and what
// bench/regression.py's sim_exec_ns gate relies on.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "accel/builder.hpp"
#include "accel/engine.hpp"
#include "graph/datasets.hpp"
#include "obs/counters.hpp"
#include "rw/parallel_walker.hpp"

namespace fw {
namespace {

accel::EngineOptions engine_opts(std::uint64_t seed) {
  accel::EngineOptions o;
  o.ssd = ssd::test_ssd_config();
  o.spec.num_walks = 3000;
  o.spec.length = 6;
  o.spec.seed = seed;
  return o;
}

std::string counters_dump(const std::vector<obs::CounterSample>& counters) {
  std::ostringstream os;
  obs::write_counters_json(os, counters);
  return os.str();
}

TEST(Determinism, EngineRunsAreBitIdenticalForSameSeed) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 4096;
  pc.subgraphs_per_range = 8;
  const partition::PartitionedGraph pg(g, pc);

  auto e1 = accel::SimulationBuilder(pg).options(engine_opts(2024)).build();
  auto e2 = accel::SimulationBuilder(pg).options(engine_opts(2024)).build();
  const auto r1 = e1.run();
  const auto r2 = e2.run();

  EXPECT_EQ(r1.exec_time, r2.exec_time);
  EXPECT_EQ(r1.metrics.total_hops, r2.metrics.total_hops);
  EXPECT_EQ(r1.metrics.walks_completed, r2.metrics.walks_completed);
  EXPECT_EQ(r1.visit_counts, r2.visit_counts);
  // The full registry, compared as the exact JSON bytes --metrics-out would
  // emit: any nondeterminism in any counter fails here by name.
  EXPECT_EQ(r1.counters, r2.counters);
  EXPECT_EQ(counters_dump(r1.counters), counters_dump(r2.counters));
}

TEST(Determinism, EngineRunsDivergeForDifferentSeeds) {
  // Guards against the degenerate way to pass the test above: ignoring the
  // seed entirely.
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 4096;
  pc.subgraphs_per_range = 8;
  const partition::PartitionedGraph pg(g, pc);

  auto e1 = accel::SimulationBuilder(pg).options(engine_opts(2024)).build();
  auto e2 = accel::SimulationBuilder(pg).options(engine_opts(2025)).build();
  EXPECT_NE(e1.run().visit_counts, e2.run().visit_counts);
}

TEST(Determinism, ParallelWalkerBitIdenticalAcrossOneTwoEightThreads) {
  // The host walker derives walk i's RNG stream from (seed, i), so any
  // worker count must reproduce the exact same paths and summary.
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  rw::WalkSpec spec;
  spec.num_walks = 6000;
  spec.length = 6;
  spec.seed = 31;

  rw::ParallelWalkResult runs[3];
  const std::uint32_t threads[3] = {1, 2, 8};
  for (int i = 0; i < 3; ++i) {
    rw::ParallelWalkOptions opts;
    opts.threads = threads[i];
    opts.record_paths = true;
    runs[i] = rw::run_walks_parallel(g, spec, opts);
    ASSERT_EQ(runs[i].threads_used, threads[i]);
  }
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(runs[0].summary.total_hops, runs[i].summary.total_hops);
    EXPECT_EQ(runs[0].summary.dead_ends, runs[i].summary.dead_ends);
    EXPECT_EQ(runs[0].summary.visit_counts, runs[i].summary.visit_counts);
    EXPECT_EQ(runs[0].paths, runs[i].paths);
  }
}

TEST(Determinism, ParallelWalkerRepeatRunsBitIdentical) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  rw::WalkSpec spec;
  spec.num_walks = 4000;
  spec.length = 6;
  spec.seed = 7;
  rw::ParallelWalkOptions opts;
  opts.threads = 8;
  opts.record_paths = true;
  const auto a = rw::run_walks_parallel(g, spec, opts);
  const auto b = rw::run_walks_parallel(g, spec, opts);
  EXPECT_EQ(a.summary.visit_counts, b.summary.visit_counts);
  EXPECT_EQ(a.paths, b.paths);
}

}  // namespace
}  // namespace fw
