// Walk service layer: solo-vs-co-scheduled bit-identity (the per-job RNG
// stream contract), weighted-fair scheduling bounds, admission control,
// arrival times, completion callbacks, per-job counters, and the --jobs
// grammar.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "accel/builder.hpp"
#include "accel/engine.hpp"
#include "accel/report.hpp"
#include "accel/service/jobs_spec.hpp"
#include "accel/service/walk_service.hpp"
#include "graph/datasets.hpp"

namespace fw::accel {
namespace {

partition::PartitionConfig small_pc() {
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 4096;
  pc.subgraphs_per_partition = 1u << 20;
  pc.subgraphs_per_range = 8;
  return pc;
}

service::WalkJob make_job(std::string name, std::uint64_t walks, std::uint64_t seed) {
  service::WalkJob j;
  j.name = std::move(name);
  j.spec.num_walks = walks;
  j.spec.length = 6;
  j.spec.seed = seed;
  return j;
}

/// Fault-injecting SSD: moderate mid-life RBER so retries/parks actually
/// happen (mirrors reliability_test's retrying_config).
ssd::SsdConfig faulty_ssd() {
  ssd::SsdConfig cfg = ssd::test_ssd_config();
  cfg.reliability.rber.base = 5e-3;
  cfg.reliability.fault_seed = 7;
  return cfg;
}

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest()
      : g_(graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest)),
        pg_(g_, small_pc()) {}

  EngineResult run_jobs(std::vector<service::WalkJob> jobs,
                        ssd::SsdConfig ssd = ssd::test_ssd_config(),
                        service::ServicePolicy policy = {}) {
    SimulationConfig cfg;
    cfg.ssd = ssd;
    cfg.record_paths = true;
    cfg.record_endpoints = true;
    cfg.policy = policy;
    return SimulationBuilder(pg_).config(cfg).jobs(std::move(jobs)).run();
  }

  /// Assert each co-scheduled job's walk output is bit-identical to the
  /// same job run alone on an otherwise idle service.
  void expect_solo_identity(const std::vector<service::WalkJob>& jobs,
                            ssd::SsdConfig ssd = ssd::test_ssd_config()) {
    const EngineResult co = run_jobs(jobs, ssd);
    ASSERT_EQ(co.jobs.size(), jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const EngineResult solo = run_jobs({jobs[j]}, ssd);
      ASSERT_EQ(solo.jobs.size(), 1u);
      EXPECT_EQ(co.jobs[j].paths, solo.jobs[0].paths)
          << "job " << jobs[j].name << " diverged from its solo run";
      EXPECT_EQ(co.jobs[j].endpoint_counts, solo.jobs[0].endpoint_counts);
      EXPECT_EQ(co.jobs[j].stats.steps, solo.jobs[0].stats.steps);
      EXPECT_EQ(co.jobs[j].stats.walks, solo.jobs[0].stats.walks);
    }
  }

  graph::CsrGraph g_;
  partition::PartitionedGraph pg_;
};

// --- determinism: solo == co-scheduled -----------------------------------------

TEST_F(ServiceTest, SingleExplicitJobMatchesImplicitSpecRun) {
  // The explicit one-job service run must replay the exact event sequence
  // of the classic single-workload run: same exec time, same totals.
  SimulationConfig implicit_cfg;
  implicit_cfg.ssd = ssd::test_ssd_config();
  implicit_cfg.spec = make_job("x", 2000, 99).spec;
  const EngineResult implicit = SimulationBuilder(pg_).config(implicit_cfg).run();

  const EngineResult explicit_run = run_jobs({make_job("x", 2000, 99)});
  EXPECT_EQ(implicit.exec_time, explicit_run.exec_time);
  EXPECT_EQ(implicit.metrics.total_hops, explicit_run.metrics.total_hops);
  EXPECT_EQ(implicit.metrics.walks_completed, explicit_run.metrics.walks_completed);
}

TEST_F(ServiceTest, SoloVsCoScheduledFourJobs) {
  expect_solo_identity({make_job("a", 500, 1), make_job("b", 500, 2),
                        make_job("c", 500, 3), make_job("d", 500, 4)});
}

TEST_F(ServiceTest, SoloVsCoScheduledSixteenJobs) {
  std::vector<service::WalkJob> jobs;
  for (std::uint64_t j = 0; j < 16; ++j) {
    jobs.push_back(make_job(std::string("j") + std::to_string(j), 125, 1000 + 13 * j));
  }
  expect_solo_identity(jobs);
}

TEST_F(ServiceTest, SoloVsCoScheduledMixedModels) {
  // The acceptance-criteria mix: 2x DeepWalk + node2vec + PPR.
  auto n2v = make_job("n2v", 250, 5);
  n2v.spec.second_order.enabled = true;
  n2v.spec.second_order.p = 0.5;
  n2v.spec.second_order.q = 2.0;
  auto ppr = make_job("ppr", 250, 6);
  ppr.spec.start_mode = rw::StartMode::kSingleSource;
  ppr.spec.source = 3;
  ppr.spec.stop_prob = 0.15;
  ppr.spec.dead_end = rw::WalkSpec::DeadEnd::kRestart;
  expect_solo_identity(
      {make_job("dw0", 500, 3), make_job("dw1", 500, 4), n2v, ppr});
}

TEST_F(ServiceTest, SoloVsCoScheduledUnderFaultInjection) {
  expect_solo_identity({make_job("a", 400, 11), make_job("b", 400, 12),
                        make_job("c", 400, 13), make_job("d", 400, 14)},
                       faulty_ssd());
}

TEST_F(ServiceTest, CoScheduledRunsAreReproducible) {
  const std::vector<service::WalkJob> jobs = {make_job("a", 300, 21),
                                              make_job("b", 300, 22)};
  const EngineResult r1 = run_jobs(jobs);
  const EngineResult r2 = run_jobs(jobs);
  EXPECT_EQ(r1.exec_time, r2.exec_time);
  ASSERT_EQ(r1.jobs.size(), r2.jobs.size());
  for (std::size_t j = 0; j < r1.jobs.size(); ++j) {
    EXPECT_EQ(r1.jobs[j].paths, r2.jobs[j].paths);
    EXPECT_EQ(r1.jobs[j].stats.completed, r2.jobs[j].stats.completed);
  }
}

// --- fairness and starvation ---------------------------------------------------

TEST_F(ServiceTest, EqualPriorityJobsWithinTwoXThroughput) {
  service::WalkService svc(pg_);
  for (std::uint64_t j = 0; j < 4; ++j) {
    svc.submit(make_job(std::string("j") + std::to_string(j), 500, 31 + j));
  }
  const auto res = svc.run();
  EXPECT_LE(res.fairness_ratio, 2.0);
  double min_rate = 0.0, max_rate = 0.0;
  for (const auto& jr : res.jobs()) {
    const double rate = jr.stats.steps_per_sec();
    ASSERT_GT(rate, 0.0);
    min_rate = min_rate == 0.0 ? rate : std::min(min_rate, rate);
    max_rate = std::max(max_rate, rate);
  }
  EXPECT_LE(max_rate, 2.0 * min_rate);
}

TEST_F(ServiceTest, TinyJobFinishesWhileHugeJobRuns) {
  // Starvation regression: a 50-walk job sharing the array with a
  // 10000-walk job must not be held to the big job's completion. The tiny
  // job's last walk still waits on the partition rotation reaching its
  // subgraph, so strictly-before is the architectural bound, not a ratio.
  const EngineResult r =
      run_jobs({make_job("huge", 10'000, 41), make_job("tiny", 50, 42)});
  ASSERT_EQ(r.jobs.size(), 2u);
  EXPECT_LT(r.jobs[1].stats.completed, r.jobs[0].stats.completed);
  EXPECT_LT(r.jobs[1].stats.exec_ns(), r.jobs[0].stats.exec_ns());
}

TEST_F(ServiceTest, GoldQosDerivesHigherWeight) {
  auto gold = make_job("gold", 200, 51);
  gold.qos = service::QosClass::kGold;
  const EngineResult r = run_jobs({make_job("bronze", 200, 52), gold});
  ASSERT_EQ(r.jobs.size(), 2u);
  EXPECT_EQ(r.jobs[0].stats.weight, 1u);
  EXPECT_EQ(r.jobs[1].stats.weight, 4u);
  EXPECT_EQ(r.jobs[1].stats.qos, service::QosClass::kGold);
}

// --- admission control and arrivals --------------------------------------------

TEST_F(ServiceTest, MaxConcurrentSerializesAdmission) {
  service::ServicePolicy policy;
  policy.max_concurrent_jobs = 1;
  const EngineResult r = run_jobs(
      {make_job("first", 500, 61), make_job("second", 100, 62)},
      ssd::test_ssd_config(), policy);
  ASSERT_EQ(r.jobs.size(), 2u);
  // The second job waits in the admit queue until the first completes.
  EXPECT_GE(r.jobs[1].stats.admitted, r.jobs[0].stats.completed);
  EXPECT_GT(r.jobs[1].stats.latency_ns(), r.jobs[1].stats.exec_ns());
}

TEST_F(ServiceTest, LateArrivalIsHonored) {
  auto late = make_job("late", 100, 71);
  late.arrival = 300 * kUs;
  const EngineResult r = run_jobs({make_job("early", 100, 72), late});
  ASSERT_EQ(r.jobs.size(), 2u);
  EXPECT_GE(r.jobs[1].stats.admitted, late.arrival);
  EXPECT_EQ(r.jobs[1].stats.walks, 100u);
  // An arrival gap with an idle array must not kill the run.
  EXPECT_GT(r.exec_time, late.arrival);
}

TEST_F(ServiceTest, CompletionCallbackFiresWithStats) {
  std::vector<std::string> done;
  auto a = make_job("a", 300, 81);
  auto b = make_job("b", 50, 82);
  a.on_complete = [&done](const service::JobStats& s) { done.push_back(s.name); };
  b.on_complete = [&done](const service::JobStats& s) { done.push_back(s.name); };
  run_jobs({a, b});
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], "b");  // the small job finishes first
  EXPECT_EQ(done[1], "a");
}

TEST_F(ServiceTest, SubmitEnforcesPolicyCaps) {
  SimulationConfig cfg;
  cfg.policy.max_jobs = 2;
  cfg.policy.max_total_walks = 900;
  service::WalkService svc(pg_, cfg);
  svc.submit(make_job("a", 400, 1));
  EXPECT_THROW(svc.submit(make_job("big", 600, 2)), service::AdmissionError);
  svc.submit(make_job("b", 400, 3));
  EXPECT_THROW(svc.submit(make_job("c", 10, 4)), service::AdmissionError);
  EXPECT_EQ(svc.num_jobs(), 2u);
}

TEST_F(ServiceTest, RunWithoutJobsThrows) {
  service::WalkService svc(pg_);
  EXPECT_THROW(svc.run(), std::logic_error);
}

TEST_F(ServiceTest, ZeroWalkJobCompletesInstantly) {
  const EngineResult r = run_jobs({make_job("empty", 0, 91), make_job("real", 200, 92)});
  ASSERT_EQ(r.jobs.size(), 2u);
  EXPECT_EQ(r.jobs[0].stats.walks, 0u);
  EXPECT_EQ(r.jobs[0].stats.completed, r.jobs[0].stats.admitted);
}

// --- observability -------------------------------------------------------------

TEST_F(ServiceTest, PerJobCountersAndLatencyPercentilesPublished) {
  const EngineResult r = run_jobs({make_job("a", 300, 93), make_job("b", 100, 94)});
  auto has = [&r](const std::string& name) {
    return std::any_of(r.counters.begin(), r.counters.end(),
                       [&name](const auto& s) { return s.first == name; });
  };
  EXPECT_TRUE(has("job.0.exec_ns"));
  EXPECT_TRUE(has("job.0.steps"));
  EXPECT_TRUE(has("job.0.parked_walks"));
  EXPECT_TRUE(has("job.1.exec_ns"));
  EXPECT_TRUE(has("service.jobs"));
  EXPECT_TRUE(has("service.latency_p50_ns"));
  EXPECT_TRUE(has("service.latency_p95_ns"));
  EXPECT_TRUE(has("service.latency_p99_ns"));
}

std::uint64_t counter_value(const EngineResult& r, const std::string& name) {
  for (const auto& [n, v] : r.counters) {
    if (n == name) return v;
  }
  ADD_FAILURE() << "counter " << name << " not published";
  return 0;
}

TEST_F(ServiceTest, LatencyPercentilesAreNearestRankObservedValues) {
  // Pins the SLO percentile semantics: service.latency_p{50,95,99}_ns are
  // nearest-rank order statistics of the per-job latencies — always a
  // latency some job actually experienced, never an interpolated midpoint.
  const EngineResult r = run_jobs({make_job("big", 400, 97), make_job("small", 50, 98)});
  ASSERT_EQ(r.jobs.size(), 2u);
  const std::uint64_t lat0 = counter_value(r, "job.0.latency_ns");
  const std::uint64_t lat1 = counter_value(r, "job.1.latency_ns");
  ASSERT_NE(lat0, lat1);  // a 400-walk and a 50-walk job cannot tie
  const std::uint64_t lo = std::min(lat0, lat1);
  const std::uint64_t hi = std::max(lat0, lat1);
  // n = 2: p50 -> ceil(1) = 1st order statistic (min); p95/p99 -> 2nd (max).
  EXPECT_EQ(counter_value(r, "service.latency_p50_ns"), lo);
  EXPECT_EQ(counter_value(r, "service.latency_p95_ns"), hi);
  EXPECT_EQ(counter_value(r, "service.latency_p99_ns"), hi);
}

TEST_F(ServiceTest, SingleJobPercentilesAllEqualItsLatency) {
  // n = 1: every percentile is that one observed latency (nearest-rank is
  // total on tiny samples — no special-casing, no zeros, no interpolation).
  const EngineResult r = run_jobs({make_job("only", 200, 99)});
  ASSERT_EQ(r.jobs.size(), 1u);
  const std::uint64_t lat = counter_value(r, "job.0.latency_ns");
  EXPECT_GT(lat, 0u);
  EXPECT_EQ(counter_value(r, "service.latency_p50_ns"), lat);
  EXPECT_EQ(counter_value(r, "service.latency_p95_ns"), lat);
  EXPECT_EQ(counter_value(r, "service.latency_p99_ns"), lat);
}

TEST_F(ServiceTest, ReportJsonCarriesSchemaV2AndJobSections) {
  const EngineResult r = run_jobs({make_job("a", 200, 95), make_job("b", 100, 96)});
  const std::string json = to_json("svc", r);
  EXPECT_NE(json.find("\"schema_version\":2"), std::string::npos);
  EXPECT_NE(json.find("\"jobs\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"a\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_ns\":"), std::string::npos);
}

// --- the --jobs grammar --------------------------------------------------------

TEST(JobsSpec, ParsesMixWithRepeatsAndDefaults) {
  service::JobSpecDefaults d;
  d.base_seed = 100;
  const auto jobs = service::parse_jobs(
      "2*deepwalk:walks=500;node2vec:walks=250,p=0.5,q=2;ppr:walks=250,source=3", d);
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(jobs[0].name, "deepwalk#0");
  EXPECT_EQ(jobs[1].name, "deepwalk#1");
  EXPECT_EQ(jobs[2].name, "node2vec#2");
  EXPECT_EQ(jobs[3].name, "ppr#3");
  // Unseeded jobs get distinct stride-spaced seeds off the base.
  EXPECT_EQ(jobs[0].spec.seed, 100u);
  EXPECT_EQ(jobs[1].spec.seed, 100u + service::kSeedStride);
  EXPECT_TRUE(jobs[2].spec.second_order.enabled);
  EXPECT_DOUBLE_EQ(jobs[2].spec.second_order.p, 0.5);
  EXPECT_EQ(jobs[3].spec.start_mode, rw::StartMode::kSingleSource);
  EXPECT_EQ(jobs[3].spec.source, 3u);
  EXPECT_DOUBLE_EQ(jobs[3].spec.stop_prob, 0.15);
}

TEST(JobsSpec, ParsesQosAndExplicitSeedAndArrival) {
  const auto jobs = service::parse_jobs(
      "deepwalk:walks=10,seed=7,qos=gold,arrive=5000", {});
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].spec.seed, 7u);
  EXPECT_EQ(jobs[0].qos, service::QosClass::kGold);
  EXPECT_EQ(jobs[0].arrival, 5000u);
}

TEST(JobsSpec, ParsesNewModelsWithModelKeys) {
  const auto jobs = service::parse_jobs(
      "metapath:pattern=0-1-2,walks=50;autoreg:alpha=0.6;"
      "ppr:stop_mode=residual,eps=0.05", {});
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].name, "metapath#0");
  EXPECT_EQ(jobs[0].spec.metapath_pattern,
            (std::vector<std::uint8_t>{0, 1, 2}));
  EXPECT_EQ(jobs[1].name, "autoreg#1");
  EXPECT_DOUBLE_EQ(jobs[1].spec.autoreg_alpha, 0.6);
  EXPECT_EQ(jobs[2].name, "ppr#2");
  EXPECT_DOUBLE_EQ(jobs[2].spec.residual_eps, 0.05);
  EXPECT_DOUBLE_EQ(jobs[2].spec.stop_prob, 0.15);  // ppr default stop kept
}

TEST(JobsSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(service::parse_jobs("", {}), std::invalid_argument);
  EXPECT_THROW(service::parse_jobs("randomwalk", {}), std::invalid_argument);
  EXPECT_THROW(service::parse_jobs("deepwalk:p=0.5", {}), std::invalid_argument);
  EXPECT_THROW(service::parse_jobs("ppr:stop=x", {}), std::invalid_argument);
  EXPECT_THROW(service::parse_jobs("0*deepwalk", {}), std::invalid_argument);
  EXPECT_THROW(service::parse_jobs("deepwalk:qos=plutonium", {}), std::invalid_argument);
  EXPECT_THROW(service::parse_jobs("autoreg:alpha=1.5", {}), std::invalid_argument);
  EXPECT_THROW(service::parse_jobs("metapath:pattern=", {}), std::invalid_argument);
  EXPECT_THROW(service::parse_jobs("ppr:stop_mode=sideways", {}), std::invalid_argument);
  EXPECT_THROW(service::parse_jobs("ppr:eps=1.0", {}), std::invalid_argument);
}

std::string parse_error(const std::string& spec) {
  try {
    (void)service::parse_jobs(spec, {});
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  ADD_FAILURE() << "'" << spec << "' parsed but should have thrown";
  return {};
}

TEST(JobsSpec, UnknownModelErrorListsRegisteredModels) {
  const std::string what = parse_error("randomwalk:walks=10");
  EXPECT_NE(what.find("--jobs entry 'randomwalk:walks=10'"), std::string::npos) << what;
  EXPECT_NE(what.find("unknown model 'randomwalk'"), std::string::npos) << what;
  EXPECT_NE(what.find("registered: autoreg|deepwalk|metapath|node2vec|ppr"),
            std::string::npos)
      << what;
}

TEST(JobsSpec, UnknownKeyErrorListsModelAndCommonKeys) {
  // A model with its own keys enumerates both key sets...
  const std::string n2v = parse_error("node2vec:alpha=0.5");
  EXPECT_NE(n2v.find("unknown key 'alpha' for model 'node2vec'"), std::string::npos)
      << n2v;
  EXPECT_NE(n2v.find("model keys: p, q"), std::string::npos) << n2v;
  EXPECT_NE(n2v.find("common keys: walks, length, seed, weight, arrive, "
                     "source, qos, start"),
            std::string::npos)
      << n2v;
  // ... and a key-less model says so instead of printing an empty list.
  const std::string dw = parse_error("deepwalk:p=0.5");
  EXPECT_NE(dw.find("unknown key 'p' for model 'deepwalk'"), std::string::npos) << dw;
  EXPECT_NE(dw.find("model keys: none"), std::string::npos) << dw;
}

TEST(JobsSpec, ModelValueErrorsNameTheEntryAndKey) {
  const std::string alpha = parse_error("autoreg:alpha=1.5");
  EXPECT_NE(alpha.find("--jobs entry 'autoreg:alpha=1.5'"), std::string::npos) << alpha;
  EXPECT_NE(alpha.find("key 'alpha'"), std::string::npos) << alpha;
}

TEST(JobsSpec, HelpTextIsGeneratedFromTheRegistry) {
  const std::string help = service::jobs_help();
  for (const char* model : {"autoreg", "deepwalk", "metapath", "node2vec", "ppr"}) {
    EXPECT_NE(help.find(model), std::string::npos) << "missing " << model;
  }
  EXPECT_NE(help.find("pattern"), std::string::npos);
  EXPECT_NE(help.find("stop_mode=geometric|residual"), std::string::npos);
}

}  // namespace
}  // namespace fw::accel
