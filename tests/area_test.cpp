// Area model: Table II reproduction within documented tolerance, and
// monotonicity properties used by the ablation benches.
#include <gtest/gtest.h>

#include "accel/area_model.hpp"

namespace fw::accel {
namespace {

TEST(AreaModel, MatchesTableIIWithinTolerance) {
  const AccelConfig cfg = paper_accel_config();
  for (auto level : {AccelLevel::kChip, AccelLevel::kChannel, AccelLevel::kBoard}) {
    const double model = estimate_area(cfg, level).total();
    const double paper = paper_area_mm2(level);
    EXPECT_NEAR(model, paper, 0.20 * paper)
        << "level " << static_cast<int>(level) << ": model " << model << " vs paper "
        << paper;
  }
}

TEST(AreaModel, OrderingMatchesPaper) {
  const AccelConfig cfg = paper_accel_config();
  const double chip = estimate_area(cfg, AccelLevel::kChip).total();
  const double channel = estimate_area(cfg, AccelLevel::kChannel).total();
  const double board = estimate_area(cfg, AccelLevel::kBoard).total();
  EXPECT_LT(chip, channel);
  EXPECT_LT(channel, board);
}

TEST(AreaModel, SramGrowsWithBuffers) {
  AccelConfig small = paper_accel_config();
  AccelConfig big = paper_accel_config();
  big.chip.subgraph_buffer_bytes *= 4;
  EXPECT_GT(estimate_area(big, AccelLevel::kChip).sram_mm2,
            estimate_area(small, AccelLevel::kChip).sram_mm2);
}

TEST(AreaModel, LogicGrowsWithPEs) {
  AccelConfig more = paper_accel_config();
  more.board.guiders *= 2;
  EXPECT_GT(estimate_area(more, AccelLevel::kBoard).logic_mm2,
            estimate_area(paper_accel_config(), AccelLevel::kBoard).logic_mm2);
}

TEST(AreaModel, OnlyBoardPaysForTables) {
  const AccelConfig cfg = paper_accel_config();
  EXPECT_EQ(estimate_area(cfg, AccelLevel::kChip).tables_mm2, 0.0);
  EXPECT_EQ(estimate_area(cfg, AccelLevel::kChannel).tables_mm2, 0.0);
  EXPECT_GT(estimate_area(cfg, AccelLevel::kBoard).tables_mm2, 0.0);
}

TEST(AreaModel, TotalSsdOverheadIsSmall) {
  // The paper's pitch: the whole hierarchy (128 chip + 32 channel + 1 board
  // accelerators) has acceptable area. Sanity: under ~400 mm² total at 45 nm.
  const AccelConfig cfg = paper_accel_config();
  const double total = 128 * estimate_area(cfg, AccelLevel::kChip).total() +
                       32 * estimate_area(cfg, AccelLevel::kChannel).total() +
                       estimate_area(cfg, AccelLevel::kBoard).total();
  EXPECT_LT(total, 400.0);
  EXPECT_GT(total, 50.0);
}

}  // namespace
}  // namespace fw::accel
