// Graph algorithms & transforms: BFS, WCC, PageRank, triangle proxy,
// reverse/symmetrize/relabel, ordering permutations, and edge locality.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/algorithms.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"

namespace fw::graph {
namespace {

CsrGraph chain(VertexId n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return std::move(b).build();
}

TEST(Bfs, LevelsOnChain) {
  const auto g = chain(5);
  const auto levels = bfs_levels(g, 0);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(levels[v], v);
}

TEST(Bfs, UnreachableMarked) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const auto g = std::move(b).build();
  const auto levels = bfs_levels(g, 0);
  EXPECT_EQ(levels[1], 1u);
  EXPECT_EQ(levels[2], ~0u);
  EXPECT_EQ(levels[3], ~0u);
}

TEST(Wcc, TwoComponents) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const auto g = std::move(b).build();
  std::uint32_t n = 0;
  const auto comp = weakly_connected_components(g, &n);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_EQ(largest_wcc_size(g), 3u);
}

TEST(Wcc, DirectionIgnored) {
  GraphBuilder b(3);
  b.add_edge(1, 0);
  b.add_edge(1, 2);
  const auto g = std::move(b).build();
  std::uint32_t n = 0;
  weakly_connected_components(g, &n);
  EXPECT_EQ(n, 1u);
}

TEST(Pagerank, SumsToOne) {
  RmatParams p;
  p.num_vertices = 512;
  p.num_edges = 4096;
  const auto g = generate_rmat(p);
  const auto pr = pagerank(g);
  const double sum = std::accumulate(pr.begin(), pr.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Pagerank, HubOutranksLeaf) {
  // Everyone points to vertex 0; 0 points to 1.
  GraphBuilder b(6);
  for (VertexId v = 1; v < 6; ++v) b.add_edge(v, 0);
  b.add_edge(0, 1);
  const auto g = std::move(b).build();
  const auto pr = pagerank(g);
  for (VertexId v = 2; v < 6; ++v) EXPECT_GT(pr[0], pr[v]);
}

TEST(Triangles, TriangleDetected) {
  GraphBuilder b(3);
  for (VertexId v = 0; v < 3; ++v) {
    for (VertexId u = 0; u < 3; ++u) {
      if (v != u) b.add_edge(v, u);
    }
  }
  const auto g = std::move(b).build();
  EXPECT_GT(count_triangles(g), 0u);
}

TEST(Triangles, ChainHasNone) {
  EXPECT_EQ(count_triangles(chain(10)), 0u);
}

// --- transforms ----------------------------------------------------------------

TEST(Transform, ReverseFlipsEdges) {
  const auto g = chain(4);
  const auto r = reverse(g);
  EXPECT_EQ(r.out_degree(0), 0u);
  EXPECT_EQ(r.out_degree(3), 1u);
  EXPECT_EQ(r.neighbors(3)[0], 2u);
  EXPECT_EQ(r.num_edges(), g.num_edges());
}

TEST(Transform, ReverseIsInvolution) {
  RmatParams p;
  p.num_vertices = 256;
  p.num_edges = 2048;
  const auto g = generate_rmat(p);
  const auto rr = reverse(reverse(g));
  EXPECT_EQ(rr.offsets(), g.offsets());
  EXPECT_EQ(rr.edges(), g.edges());
}

TEST(Transform, ReversePreservesWeights) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 3.5f);
  BuildOptions opts;
  opts.keep_weights = true;
  const auto g = std::move(b).build(opts);
  const auto r = reverse(g);
  ASSERT_TRUE(r.weighted());
  EXPECT_FLOAT_EQ(r.edge_weights(1)[0], 3.5f);
}

TEST(Transform, SymmetrizeMakesDegreesMatch) {
  const auto g = chain(5);
  const auto s = symmetrize(g);
  const auto in = s.compute_in_degrees();
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(s.out_degree(v), in[v]);
}

TEST(Transform, RelabelPreservesStructure) {
  RmatParams p;
  p.num_vertices = 128;
  p.num_edges = 1024;
  const auto g = generate_rmat(p);
  const auto perm = random_order(g, 7);
  const auto h = relabel(g, perm);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  // Edge (v, u) in g iff (perm[v], perm[u]) in h.
  for (VertexId v = 0; v < g.num_vertices(); v += 5) {
    for (VertexId u : g.neighbors(v)) {
      const auto nbrs = h.neighbors(perm[v]);
      EXPECT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), perm[u]));
    }
  }
}

TEST(Transform, RelabelRejectsBadPermutation) {
  const auto g = chain(4);
  EXPECT_THROW(relabel(g, {0, 1}), std::invalid_argument);
}

TEST(Transform, OrderingsArePermutations) {
  RmatParams p;
  p.num_vertices = 256;
  p.num_edges = 2048;
  const auto g = generate_rmat(p);
  for (const auto& perm : {bfs_order(g), degree_order(g), random_order(g, 3)}) {
    std::vector<bool> seen(g.num_vertices(), false);
    for (VertexId id : perm) {
      ASSERT_LT(id, g.num_vertices());
      ASSERT_FALSE(seen[id]);
      seen[id] = true;
    }
  }
}

TEST(Transform, DegreeOrderPutsHubsFirst) {
  ZipfParams p;
  p.num_vertices = 512;
  p.num_edges = 8192;
  const auto g = generate_zipf(p);
  const auto perm = degree_order(g);
  const auto h = relabel(g, perm);
  EXPECT_GE(h.out_degree(0), h.out_degree(100));
  EXPECT_GE(h.out_degree(0), h.out_degree(511));
}

TEST(Transform, BfsOrderImprovesLocalityOverRandom) {
  RmatParams p;
  p.num_vertices = 1 << 12;
  p.num_edges = 1 << 15;
  const auto g = generate_rmat(p);
  const auto bfs = relabel(g, bfs_order(g));
  const auto rnd = relabel(g, random_order(g, 5));
  constexpr VertexId kSpan = 256;
  EXPECT_GT(edge_locality(bfs, kSpan), edge_locality(rnd, kSpan));
}

TEST(Transform, EdgeLocalityBounds) {
  const auto g = chain(100);
  EXPECT_GT(edge_locality(g, 50), 0.9);  // chains are maximally local
  EXPECT_EQ(edge_locality(g, 0), 0.0);
}

}  // namespace
}  // namespace fw::graph
