// Unit tests for the graph substrate: CSR invariants, builder options,
// generators (including statistical shape), I/O round-trips, stats, and the
// scaled Table IV dataset registry.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "graph/io.hpp"

namespace fw::graph {
namespace {

CsrGraph triangle() {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  return std::move(b).build();
}

TEST(Csr, BasicAccessors) {
  const CsrGraph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
  EXPECT_TRUE(g.validate().empty());
}

TEST(Csr, InDegrees) {
  GraphBuilder b(4);
  b.add_edge(0, 3);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  const CsrGraph g = std::move(b).build();
  const auto in = g.compute_in_degrees();
  EXPECT_EQ(in[3], 3u);
  EXPECT_EQ(in[0], 0u);
}

TEST(Csr, RejectsMalformedArrays) {
  EXPECT_THROW(CsrGraph({}, {}), std::invalid_argument);
  EXPECT_THROW(CsrGraph({0, 2}, {1}), std::invalid_argument);           // count mismatch
  EXPECT_THROW(CsrGraph({0, 1}, {0}, {1.0f, 2.0f}), std::invalid_argument);
}

TEST(Csr, ValidateCatchesOutOfRangeEdge) {
  const CsrGraph g({0, 1}, {5});  // target 5 in a 1-vertex graph
  EXPECT_FALSE(g.validate().empty());
}

TEST(Csr, IdBytesSwitchesAt32Bits) {
  const CsrGraph g = triangle();
  EXPECT_EQ(g.id_bytes(), 4u);
}

TEST(Csr, SizeAccounting) {
  const CsrGraph g = triangle();
  EXPECT_EQ(g.csr_size_bytes(), (3 + 1) * 4u + 3 * 4u);
  EXPECT_GT(g.text_size_bytes(), 0u);
}

TEST(Builder, SortsNeighbors) {
  GraphBuilder b(3);
  b.add_edge(0, 2);
  b.add_edge(0, 1);
  const CsrGraph g = std::move(b).build();
  EXPECT_EQ(g.neighbors(0)[0], 1u);
  EXPECT_EQ(g.neighbors(0)[1], 2u);
}

TEST(Builder, Deduplicates) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  BuildOptions opts;
  opts.deduplicate = true;
  const CsrGraph g = std::move(b).build(opts);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Builder, DropsSelfLoops) {
  GraphBuilder b(2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  BuildOptions opts;
  opts.drop_self_loops = true;
  const CsrGraph g = std::move(b).build(opts);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Builder, Symmetrizes) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  BuildOptions opts;
  opts.symmetrize = true;
  const CsrGraph g = std::move(b).build(opts);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.out_degree(1), 1u);
}

TEST(Builder, KeepsWeights) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 2.5f);
  BuildOptions opts;
  opts.keep_weights = true;
  const CsrGraph g = std::move(b).build(opts);
  ASSERT_TRUE(g.weighted());
  EXPECT_FLOAT_EQ(g.edge_weights(0)[0], 2.5f);
}

TEST(Builder, RejectsOutOfRangeEndpoint) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 2), std::out_of_range);
}

// --- Generators ------------------------------------------------------------

TEST(Rmat, ProducesRequestedSize) {
  RmatParams p;
  p.num_vertices = 1 << 10;
  p.num_edges = 10'000;
  p.seed = 9;
  const CsrGraph g = generate_rmat(p);
  EXPECT_EQ(g.num_vertices(), 1u << 10);
  EXPECT_EQ(g.num_edges(), 10'000u);
  EXPECT_TRUE(g.validate().empty());
}

TEST(Rmat, DeterministicForSeed) {
  RmatParams p;
  p.num_vertices = 512;
  p.num_edges = 4096;
  p.seed = 42;
  const CsrGraph a = generate_rmat(p);
  const CsrGraph b = generate_rmat(p);
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_EQ(a.offsets(), b.offsets());
}

TEST(Rmat, SkewedDegreeDistribution) {
  RmatParams p;
  p.num_vertices = 1 << 12;
  p.num_edges = 1 << 16;
  p.seed = 3;
  const auto s = compute_stats(generate_rmat(p));
  // R-MAT with Graph500 params: top 1% of vertices own far more than 1%
  // of edges.
  EXPECT_GT(s.top1pct_edge_share, 0.10);
}

TEST(Rmat, WeightedEmitsPositiveWeights) {
  RmatParams p;
  p.num_vertices = 256;
  p.num_edges = 2048;
  p.weighted = true;
  const CsrGraph g = generate_rmat(p);
  ASSERT_TRUE(g.weighted());
  EXPECT_TRUE(g.validate().empty());  // validate() checks weight positivity
}

TEST(ErdosRenyi, NearUniformDegrees) {
  ErdosRenyiParams p;
  p.num_vertices = 1 << 12;
  p.num_edges = 1 << 16;
  const auto s = compute_stats(generate_erdos_renyi(p));
  // Uniform graph: top 1% of vertices own close to their fair share.
  EXPECT_LT(s.top1pct_edge_share, 0.05);
}

TEST(Zipf, PowerLawOutDegrees) {
  ZipfParams p;
  p.num_vertices = 1 << 12;
  p.num_edges = 1 << 16;
  p.exponent = 1.5;
  const auto g = generate_zipf(p);
  EXPECT_EQ(g.num_edges(), p.num_edges);
  const auto s = compute_stats(g);
  EXPECT_GT(s.top1pct_edge_share, 0.3);
  EXPECT_GT(s.max_out_degree, 100u * static_cast<EdgeId>(s.avg_out_degree));
}

TEST(ZipfSampler, PrefersLowRanks) {
  ZipfSampler sampler(1000, 1.5);
  Xoshiro256 rng(1);
  std::uint64_t low = 0;
  for (int i = 0; i < 10'000; ++i) {
    if (sampler.sample(rng) < 10) ++low;
  }
  EXPECT_GT(low, 3000u);  // top 1% of ranks get a large share
}

// --- I/O -------------------------------------------------------------------

TEST(Io, BinaryRoundTrip) {
  RmatParams p;
  p.num_vertices = 256;
  p.num_edges = 2048;
  p.weighted = true;
  const CsrGraph g = generate_rmat(p);
  std::stringstream ss;
  save_binary(g, ss);
  const CsrGraph g2 = load_binary(ss);
  EXPECT_EQ(g.offsets(), g2.offsets());
  EXPECT_EQ(g.edges(), g2.edges());
  EXPECT_EQ(g.weights(), g2.weights());
}

TEST(Io, BinaryRejectsBadMagic) {
  std::stringstream ss;
  ss << "NOTAGRAPH-------";
  EXPECT_THROW(load_binary(ss), std::runtime_error);
}

TEST(Io, EdgeListRoundTrip) {
  const CsrGraph g = triangle();
  std::stringstream ss;
  save_edge_list(g, ss);
  const CsrGraph g2 = load_edge_list(ss);
  EXPECT_EQ(g.offsets(), g2.offsets());
  EXPECT_EQ(g.edges(), g2.edges());
}

TEST(Io, EdgeListSkipsComments) {
  std::stringstream ss("# header\n0 1\n1 0\n");
  const CsrGraph g = load_edge_list(ss);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Io, EdgeListParsesWeights) {
  std::stringstream ss("0 1 2.5\n");
  const CsrGraph g = load_edge_list(ss);
  ASSERT_TRUE(g.weighted());
  EXPECT_FLOAT_EQ(g.edge_weights(0)[0], 2.5f);
}

TEST(Io, EdgeListRejectsGarbage) {
  std::stringstream ss("zero one\n");
  EXPECT_THROW(load_edge_list(ss), std::runtime_error);
}

// --- Datasets ----------------------------------------------------------------

TEST(Datasets, RegistryHasAllFive) {
  EXPECT_EQ(all_datasets().size(), 5u);
  EXPECT_EQ(dataset_info(DatasetId::CW).abbrev, "CW");
  EXPECT_EQ(dataset_info(DatasetId::TT).paper.edges, "1.46B");
}

struct DatasetCase {
  DatasetId id;
  const char* abbrev;
};

class DatasetShape : public ::testing::TestWithParam<DatasetCase> {};

TEST_P(DatasetShape, TestScaleIsValidAndDeterministic) {
  const auto g = make_dataset(GetParam().id, Scale::kTest);
  EXPECT_TRUE(g.validate().empty());
  EXPECT_GT(g.num_edges(), 0u);
  const auto g2 = make_dataset(GetParam().id, Scale::kTest);
  EXPECT_EQ(g.edges(), g2.edges());
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetShape,
                         ::testing::Values(DatasetCase{DatasetId::TT, "TT"},
                                           DatasetCase{DatasetId::FS, "FS"},
                                           DatasetCase{DatasetId::CW, "CW"},
                                           DatasetCase{DatasetId::R2B, "R2B"},
                                           DatasetCase{DatasetId::R8B, "R8B"}),
                         [](const auto& param_info) { return param_info.param.abbrev; });

TEST(Datasets, SizeOrderingMatchesPaper) {
  // CSR size ordering in Table IV: TT < R2B < FS < R8B < CW.
  const auto tt = make_dataset(DatasetId::TT, Scale::kTest).csr_size_bytes();
  const auto r2b = make_dataset(DatasetId::R2B, Scale::kTest).csr_size_bytes();
  const auto fs = make_dataset(DatasetId::FS, Scale::kTest).csr_size_bytes();
  const auto r8b = make_dataset(DatasetId::R8B, Scale::kTest).csr_size_bytes();
  const auto cw = make_dataset(DatasetId::CW, Scale::kTest).csr_size_bytes();
  EXPECT_LT(tt, fs);
  EXPECT_LT(fs, r8b);
  EXPECT_LT(r2b, fs);
  EXPECT_LT(r8b, cw);
}

TEST(Datasets, ClueWebIsSparse) {
  const auto s = compute_stats(make_dataset(DatasetId::CW, Scale::kTest));
  EXPECT_LT(s.avg_out_degree, 4.0);  // web-graph sparsity (paper: 1.66)
}

TEST(Datasets, TwitterIsMostSkewed) {
  const auto tt = compute_stats(make_dataset(DatasetId::TT, Scale::kTest));
  const auto cw = compute_stats(make_dataset(DatasetId::CW, Scale::kTest));
  EXPECT_GT(tt.top1pct_edge_share, cw.top1pct_edge_share);
}

TEST(Datasets, WalkCountsFollowPaperRatios) {
  // Paper: 10^9 walks for CW vs 4x10^8 for the rest (2.5x).
  const auto cw = default_walk_count(DatasetId::CW, Scale::kBench);
  const auto tt = default_walk_count(DatasetId::TT, Scale::kBench);
  EXPECT_EQ(cw, tt * 10 / 4);
}

TEST(Stats, ZeroDegreeCounting) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const auto s = compute_stats(std::move(b).build());
  EXPECT_EQ(s.zero_out_degree_vertices, 3u);
  EXPECT_EQ(s.max_out_degree, 1u);
}

}  // namespace
}  // namespace fw::graph
