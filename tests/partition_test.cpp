// Partitioner invariants, subgraph mapping table (exact + range + in-range
// searches), and the dense-vertices mapping table.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/builder.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "partition/dense_table.hpp"
#include "partition/mapping_table.hpp"
#include "partition/partitioned_graph.hpp"

namespace fw::partition {
namespace {

graph::CsrGraph skewed_graph() {
  graph::ZipfParams p;
  p.num_vertices = 1 << 11;
  p.num_edges = 48 << 10;
  p.exponent = 1.4;
  p.seed = 17;
  return graph::generate_zipf(p);
}

PartitionConfig small_config() {
  PartitionConfig pc;
  pc.block_capacity_bytes = 2048;  // small blocks force dense splitting
  pc.subgraphs_per_partition = 16;
  pc.subgraphs_per_range = 4;
  return pc;
}

class PartitionerInvariants : public ::testing::Test {
 protected:
  PartitionerInvariants() : g_(skewed_graph()), pg_(g_, small_config()) {}
  graph::CsrGraph g_;
  PartitionedGraph pg_;
};

TEST_F(PartitionerInvariants, EveryVertexIsCovered) {
  for (VertexId v = 0; v < g_.num_vertices(); ++v) {
    const SubgraphId sg = pg_.subgraph_of(v);
    ASSERT_NE(sg, kInvalidSubgraph);
    const Subgraph& s = pg_.subgraph(sg);
    EXPECT_GE(v, s.low_vid);
    EXPECT_LE(v, s.high_vid);
  }
}

TEST_F(PartitionerInvariants, SubgraphsAreOrderedAndContiguous) {
  const auto& sgs = pg_.subgraphs();
  for (std::size_t i = 1; i < sgs.size(); ++i) {
    EXPECT_EQ(sgs[i].id, sgs[i - 1].id + 1);
    if (sgs[i].dense && sgs[i - 1].dense && sgs[i].low_vid == sgs[i - 1].low_vid) {
      // consecutive blocks of the same dense vertex share the vertex
      EXPECT_EQ(sgs[i].edge_begin, sgs[i - 1].edge_end);
    } else {
      EXPECT_GE(sgs[i].low_vid, sgs[i - 1].high_vid);
    }
  }
}

TEST_F(PartitionerInvariants, EdgesPartitionExactly) {
  // Every CSR edge belongs to exactly one subgraph's [edge_begin, edge_end).
  EdgeId covered = 0;
  for (const auto& sg : pg_.subgraphs()) covered += sg.edge_end - sg.edge_begin;
  EXPECT_EQ(covered, g_.num_edges());
  EXPECT_EQ(pg_.subgraphs().front().edge_begin, 0u);
  EXPECT_EQ(pg_.subgraphs().back().edge_end, g_.num_edges());
}

TEST_F(PartitionerInvariants, NonDensePayloadFitsBlock) {
  for (const auto& sg : pg_.subgraphs()) {
    if (!sg.dense) {
      EXPECT_LE(sg.payload_bytes, pg_.config().block_capacity_bytes)
          << "subgraph " << sg.id;
    }
  }
}

TEST_F(PartitionerInvariants, DenseBlocksCoverDenseVertexExactly) {
  for (VertexId v = 0; v < g_.num_vertices(); ++v) {
    if (!pg_.is_dense_vertex(v)) continue;
    const SubgraphId first = pg_.subgraph_of(v);
    EdgeId covered = 0;
    SubgraphId sg = first;
    while (sg < pg_.num_subgraphs() && pg_.subgraph(sg).dense &&
           pg_.subgraph(sg).low_vid == v) {
      covered += pg_.subgraph(sg).sum_out_degree();
      ++sg;
    }
    EXPECT_EQ(covered, g_.out_degree(v)) << "dense vertex " << v;
  }
}

TEST_F(PartitionerInvariants, DenseVerticesExistInSkewedGraph) {
  std::size_t dense = 0;
  for (const auto& sg : pg_.subgraphs()) dense += sg.dense;
  EXPECT_GT(dense, 0u) << "test graph should exercise dense splitting";
}

TEST_F(PartitionerInvariants, PartitionRangesTile) {
  SubgraphId expect_first = 0;
  for (PartitionId p = 0; p < pg_.num_partitions(); ++p) {
    const auto [first, last] = pg_.partition_range(p);
    EXPECT_EQ(first, expect_first);
    EXPECT_GT(last, first);
    for (SubgraphId sg = first; sg < last; ++sg) EXPECT_EQ(pg_.partition_of(sg), p);
    expect_first = last;
  }
  EXPECT_EQ(expect_first, pg_.num_subgraphs());
}

TEST_F(PartitionerInvariants, InDegreeSumsMatchEdgeCount) {
  const auto& sums = pg_.subgraph_in_degrees();
  const std::uint64_t total = std::accumulate(sums.begin(), sums.end(), 0ull);
  EXPECT_EQ(total, g_.num_edges());
}

TEST_F(PartitionerInvariants, TopKPopularIsSortedByInDegree) {
  std::vector<SubgraphId> all(pg_.num_subgraphs());
  std::iota(all.begin(), all.end(), 0u);
  const auto top = pg_.top_k_popular(all, 5);
  ASSERT_EQ(top.size(), 5u);
  const auto& sums = pg_.subgraph_in_degrees();
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(sums[top[i - 1]], sums[top[i]]);
  }
  // Best really is the max.
  for (SubgraphId sg : all) EXPECT_LE(sums[sg], sums[top[0]]);
}

TEST(Partitioner, EdgesPerBlockMatchesCapacity) {
  graph::GraphBuilder b(8);
  for (VertexId v = 0; v < 8; ++v) b.add_edge(v, (v + 1) % 8);
  const auto g = std::move(b).build();
  PartitionConfig pc;
  pc.block_capacity_bytes = 64;
  const PartitionedGraph pg(g, pc);
  EXPECT_EQ(pg.edges_per_block(), 64u / 4u);
}

TEST(Partitioner, RejectsZeroConfig) {
  const auto g = skewed_graph();
  PartitionConfig pc;
  pc.block_capacity_bytes = 0;
  EXPECT_THROW(PartitionedGraph(g, pc), std::invalid_argument);
}

TEST(Partitioner, SingleVertexGraph) {
  graph::GraphBuilder b(1);
  b.add_edge(0, 0);
  const auto g = std::move(b).build();
  const PartitionedGraph pg(g, small_config());
  EXPECT_EQ(pg.num_subgraphs(), 1u);
  EXPECT_EQ(pg.subgraph_of(0), 0u);
}

// --- Mapping table -------------------------------------------------------------

class MappingTableTest : public ::testing::Test {
 protected:
  MappingTableTest() : g_(skewed_graph()), pg_(g_, small_config()) {
    std::vector<std::uint64_t> pages(pg_.num_subgraphs());
    for (std::size_t i = 0; i < pages.size(); ++i) pages[i] = i * 10;
    mtab_ = std::make_unique<SubgraphMappingTable>(pg_, pages);
  }
  graph::CsrGraph g_;
  PartitionedGraph pg_;
  std::unique_ptr<SubgraphMappingTable> mtab_;
};

TEST_F(MappingTableTest, BinarySearchMatchesGroundTruth) {
  for (VertexId v = 0; v < g_.num_vertices(); ++v) {
    const auto lookup = mtab_->find(v);
    ASSERT_TRUE(lookup.found()) << v;
    EXPECT_EQ(lookup.sgid, pg_.subgraph_of(v)) << v;
  }
}

TEST_F(MappingTableTest, StepCountIsLogarithmic) {
  std::uint32_t max_steps = 0;
  for (VertexId v = 0; v < g_.num_vertices(); v += 7) {
    max_steps = std::max(max_steps, mtab_->find(v).steps);
  }
  EXPECT_LE(max_steps, mtab_->max_search_steps() + 4);  // + dense back-scan slack
  EXPECT_GT(max_steps, 1u);
}

TEST_F(MappingTableTest, RangeSearchContainsAnswer) {
  for (VertexId v = 0; v < g_.num_vertices(); ++v) {
    const auto r = mtab_->find_range(v);
    ASSERT_TRUE(r.found()) << v;
    const auto lookup = mtab_->find_in_range(v, r.range_id);
    ASSERT_TRUE(lookup.found()) << v;
    EXPECT_EQ(lookup.sgid, pg_.subgraph_of(v)) << v;
  }
}

TEST_F(MappingTableTest, InRangeSearchIsCheaper) {
  std::uint64_t full = 0, ranged = 0;
  for (VertexId v = 0; v < g_.num_vertices(); v += 3) {
    full += mtab_->find(v).steps;
    const auto r = mtab_->find_range(v);
    ranged += mtab_->find_in_range(v, r.range_id).steps;
  }
  EXPECT_LT(ranged, full);
}

TEST_F(MappingTableTest, RangeTableIsSmaller) {
  EXPECT_LT(mtab_->range_table_bytes(), mtab_->table_bytes());
  EXPECT_EQ(mtab_->num_ranges(),
            (pg_.num_subgraphs() + pg_.config().subgraphs_per_range - 1) /
                pg_.config().subgraphs_per_range);
}

TEST_F(MappingTableTest, EntriesRecordFlashPlacement) {
  const auto& entries = mtab_->entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].flash_page, i * 10);
    EXPECT_EQ(entries[i].sgid, i);
  }
}

TEST_F(MappingTableTest, DenseVertexResolvesToFirstBlock) {
  for (VertexId v = 0; v < g_.num_vertices(); ++v) {
    if (!pg_.is_dense_vertex(v)) continue;
    const auto lookup = mtab_->find(v);
    const auto& sg = pg_.subgraph(lookup.sgid);
    EXPECT_TRUE(sg.dense);
    EXPECT_EQ(sg.dense_block_index, 0u);
  }
}

TEST_F(MappingTableTest, InvalidRangeReturnsNotFound) {
  EXPECT_FALSE(mtab_->find_in_range(0, 999'999).found());
}

TEST_F(MappingTableTest, WrongRangeReturnsNotFound) {
  // A vertex searched in a range that does not contain it must not match.
  const auto r0 = mtab_->find_range(0);
  const VertexId last = g_.num_vertices() - 1;
  const auto r_last = mtab_->find_range(last);
  if (r0.range_id != r_last.range_id) {
    EXPECT_FALSE(mtab_->find_in_range(last, r0.range_id).found());
  }
}

// --- Dense table ------------------------------------------------------------------

class DenseTableTest : public ::testing::Test {
 protected:
  DenseTableTest() : g_(skewed_graph()), pg_(g_, small_config()), dtab_(pg_) {}
  graph::CsrGraph g_;
  PartitionedGraph pg_;
  DenseVertexTable dtab_;
};

TEST_F(DenseTableTest, FindsEveryDenseVertex) {
  std::size_t found = 0;
  for (VertexId v = 0; v < g_.num_vertices(); ++v) {
    const auto r = dtab_.lookup(v);
    if (pg_.is_dense_vertex(v)) {
      ASSERT_TRUE(r.meta.has_value()) << v;
      ++found;
    } else {
      EXPECT_FALSE(r.meta.has_value()) << v;
    }
  }
  EXPECT_EQ(found, dtab_.num_dense_vertices());
  EXPECT_GT(found, 0u);
}

TEST_F(DenseTableTest, MetadataIsConsistent) {
  for (VertexId v = 0; v < g_.num_vertices(); ++v) {
    const auto r = dtab_.lookup(v);
    if (!r.meta) continue;
    const auto& meta = *r.meta;
    EXPECT_EQ(meta.first_sgid, pg_.subgraph_of(v));
    EXPECT_EQ(meta.out_degree, g_.out_degree(v));
    // num_blocks covers the out-degree at edges_per_block granularity.
    const EdgeId per_block = pg_.edges_per_block();
    EXPECT_EQ(meta.num_blocks, (meta.out_degree + per_block - 1) / per_block);
    // Last block holds the remainder.
    const EdgeId expected_last = meta.out_degree - (meta.num_blocks - 1) * per_block;
    EXPECT_EQ(meta.last_block_degree, expected_last);
  }
}

TEST_F(DenseTableTest, BloomNeverFalseNegative) {
  for (VertexId v = 0; v < g_.num_vertices(); ++v) {
    if (pg_.is_dense_vertex(v)) {
      EXPECT_TRUE(dtab_.may_be_dense(v));
    }
  }
}

TEST_F(DenseTableTest, FalsePositivesAreHarmless) {
  // A bloom false positive yields bloom_positive && !meta — exactly the
  // fallback path the paper describes.
  for (VertexId v = 0; v < g_.num_vertices(); ++v) {
    const auto r = dtab_.lookup(v);
    if (r.bloom_false_positive) {
      EXPECT_TRUE(r.bloom_positive);
      EXPECT_FALSE(r.meta.has_value());
    }
  }
}

TEST_F(DenseTableTest, TableBytesAccounted) {
  EXPECT_GT(dtab_.table_bytes(), 0u);
}

TEST(DenseTable, EmptyWhenNoDenseVertices) {
  graph::GraphBuilder b(16);
  for (VertexId v = 0; v < 16; ++v) b.add_edge(v, (v + 1) % 16);
  const auto g = std::move(b).build();
  PartitionConfig pc;
  pc.block_capacity_bytes = 4096;
  const PartitionedGraph pg(g, pc);
  const DenseVertexTable dtab(pg);
  EXPECT_EQ(dtab.num_dense_vertices(), 0u);
}

}  // namespace
}  // namespace fw::partition
