// KnightKing-style distributed baseline: conservation, partition ownership,
// communication accounting, and scaling behaviour.
#include <gtest/gtest.h>

#include "baseline/knightking.hpp"
#include "graph/datasets.hpp"
#include "rw/algorithms.hpp"

namespace fw::baseline {
namespace {

KnightKingOptions kk_opts(std::uint64_t walks = 5000, std::uint32_t workers = 4) {
  KnightKingOptions o;
  o.workers = workers;
  o.spec.num_walks = walks;
  o.spec.length = 6;
  o.spec.seed = 31;
  return o;
}

TEST(KnightKing, ConservesWalks) {
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  KnightKingEngine engine(g, kk_opts());
  const auto r = engine.run();
  EXPECT_EQ(r.base.walks_started, 5000u);
  EXPECT_EQ(r.base.walks_completed, 5000u);
  EXPECT_GT(r.supersteps, 0u);
  EXPECT_LE(r.supersteps, 7u);  // length-6 walks need at most 6-7 steps
}

TEST(KnightKing, WorkerOwnershipPartitionsVertices) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  KnightKingEngine engine(g, kk_opts(100, 4));
  std::vector<std::uint64_t> owned(4, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto w = engine.worker_of(v);
    ASSERT_LT(w, 4u);
    ++owned[w];
  }
  for (const auto count : owned) {
    EXPECT_NEAR(static_cast<double>(count), g.num_vertices() / 4.0,
                g.num_vertices() / 16.0);
  }
}

TEST(KnightKing, CommunicationAccounted) {
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  KnightKingEngine engine(g, kk_opts());
  const auto r = engine.run();
  // Random hops on a 4-worker range partition cross workers ~3/4 of the time.
  EXPECT_GT(r.forward_fraction(), 0.4);
  EXPECT_LT(r.forward_fraction(), 1.0);
  EXPECT_EQ(r.network_bytes,
            r.forwarded_walkers * rw::walk_bytes(g.id_bytes()));
  EXPECT_EQ(r.base.exec_time, r.compute_time + r.network_time);
}

TEST(KnightKing, SingleWorkerHasNoNetwork) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  KnightKingEngine engine(g, kk_opts(3000, 1));
  const auto r = engine.run();
  EXPECT_EQ(r.forwarded_walkers, 0u);
  EXPECT_EQ(r.network_time, 0u);
  EXPECT_EQ(r.base.walks_completed, 3000u);
}

TEST(KnightKing, MoreWorkersReduceComputeTime) {
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  KnightKingEngine e1(g, kk_opts(20'000, 1));
  KnightKingEngine e8(g, kk_opts(20'000, 8));
  const auto r1 = e1.run();
  const auto r8 = e8.run();
  EXPECT_LT(r8.compute_time, r1.compute_time);
  // ...but the network becomes the cost (the capacity/communication
  // trade-off FlashWalker's in-storage design avoids).
  EXPECT_GT(r8.network_time, r1.network_time);
}

TEST(KnightKing, VisitTotalsMatchReference) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  auto opts = kk_opts(20'000);
  KnightKingEngine engine(g, opts);
  const auto r = engine.run();
  const auto ref = rw::run_walks(g, opts.spec);
  const auto rt = static_cast<double>(ref.total_hops);
  EXPECT_NEAR(static_cast<double>(r.base.total_hops), rt, 0.05 * rt);
}

TEST(KnightKing, RejectsZeroWorkers) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  KnightKingOptions o;
  o.workers = 0;
  EXPECT_THROW(KnightKingEngine(g, o), std::invalid_argument);
}

}  // namespace
}  // namespace fw::baseline
