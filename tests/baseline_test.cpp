// GraphWalker / DrunkardMob baseline tests: conservation, scheduling
// behaviour, memory-capacity sensitivity (Fig 7 mechanism), breakdown
// accounting (Fig 1 mechanism), and the iteration-barrier penalty.
#include <gtest/gtest.h>

#include <numeric>

#include "baseline/drunkardmob.hpp"
#include "baseline/graphwalker.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"

namespace fw::baseline {
namespace {

GraphWalkerOptions gw_opts(std::uint64_t walks = 3000) {
  GraphWalkerOptions o;
  o.ssd = ssd::test_ssd_config();
  o.spec.num_walks = walks;
  o.spec.length = 6;
  o.spec.seed = 7;
  o.host.memory_bytes = 64 * KiB;
  o.host.block_bytes = 8 * KiB;
  return o;
}

class GraphWalkerBasic : public ::testing::Test {
 protected:
  GraphWalkerBasic() : g_(graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest)) {}
  graph::CsrGraph g_;
};

TEST_F(GraphWalkerBasic, AllWalksComplete) {
  GraphWalkerEngine engine(g_, gw_opts());
  const auto r = engine.run();
  EXPECT_EQ(r.walks_started, 3000u);
  EXPECT_EQ(r.walks_completed, 3000u);
  EXPECT_GT(r.exec_time, 0u);
}

TEST_F(GraphWalkerBasic, BreakdownSumsToExecTime) {
  GraphWalkerEngine engine(g_, gw_opts());
  const auto r = engine.run();
  EXPECT_EQ(r.breakdown.total(), r.exec_time);
  EXPECT_GT(r.breakdown.graph_load, 0u);
  EXPECT_GT(r.breakdown.compute, 0u);
}

TEST_F(GraphWalkerBasic, Deterministic) {
  GraphWalkerEngine e1(g_, gw_opts()), e2(g_, gw_opts());
  const auto r1 = e1.run();
  const auto r2 = e2.run();
  EXPECT_EQ(r1.exec_time, r2.exec_time);
  EXPECT_EQ(r1.visit_counts, r2.visit_counts);
}

TEST_F(GraphWalkerBasic, VisitCountsSumToHops) {
  GraphWalkerEngine engine(g_, gw_opts());
  const auto r = engine.run();
  const auto visits =
      std::accumulate(r.visit_counts.begin(), r.visit_counts.end(), 0ull);
  EXPECT_EQ(visits, r.total_hops);
}

TEST_F(GraphWalkerBasic, SmallMemoryCausesMoreLoads) {
  // Fig 7 mechanism: shrinking the cache forces block re-reads.
  auto small = gw_opts();
  small.host.memory_bytes = 16 * KiB;
  auto large = gw_opts();
  large.host.memory_bytes = 10 * MiB;  // whole graph fits
  GraphWalkerEngine es(g_, small), el(g_, large);
  const auto rs = es.run();
  const auto rl = el.run();
  EXPECT_GT(rs.block_loads, rl.block_loads);
  EXPECT_GT(rs.bytes_read, rl.bytes_read);
  EXPECT_GE(rs.exec_time, rl.exec_time);
}

TEST_F(GraphWalkerBasic, WholeGraphInMemoryLoadsEachBlockOnce) {
  auto opts = gw_opts();
  opts.host.memory_bytes = 64 * MiB;
  GraphWalkerEngine engine(g_, opts);
  const auto r = engine.run();
  EXPECT_LE(r.block_loads, engine.num_blocks());
  EXPECT_EQ(r.bytes_written, 0u);  // nothing spills when everything is cached
}

TEST_F(GraphWalkerBasic, TightMemorySpillsWalks) {
  auto opts = gw_opts(10'000);
  opts.host.memory_bytes = 16 * KiB;
  opts.host.spill_buffer_bytes = 1 * KiB;
  GraphWalkerEngine engine(g_, opts);
  const auto r = engine.run();
  EXPECT_GT(r.bytes_written, 0u);
  EXPECT_GT(r.breakdown.walk_write, 0u);
  EXPECT_GT(r.breakdown.walk_load, 0u);
}

TEST_F(GraphWalkerBasic, GraphLoadDominatesWhenMemoryTight) {
  // Fig 1: loading graph structure is the majority of GraphWalker's time on
  // graphs much larger than memory.
  const auto cw = graph::make_dataset(graph::DatasetId::CW, graph::Scale::kTest);
  auto opts = gw_opts(2000);
  opts.host.memory_bytes = 32 * KiB;
  GraphWalkerEngine engine(cw, opts);
  const auto r = engine.run();
  EXPECT_GT(r.breakdown.graph_load, r.exec_time / 2);
}

TEST_F(GraphWalkerBasic, CacheHitsHappenWithWarmCache) {
  GraphWalkerEngine engine(g_, gw_opts(5000));
  const auto r = engine.run();
  EXPECT_GT(r.cache_hits, 0u);
}

TEST(GraphWalkerModes, SingleSourceAndAllVertices) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  auto opts = gw_opts(500);
  opts.spec.start_mode = rw::StartMode::kSingleSource;
  opts.spec.source = 3;
  GraphWalkerEngine e1(g, opts);
  EXPECT_EQ(e1.run().walks_completed, 500u);

  opts.spec.start_mode = rw::StartMode::kAllVertices;
  GraphWalkerEngine e2(g, opts);
  EXPECT_EQ(e2.run().walks_completed, g.num_vertices());
}

TEST(GraphWalkerModes, StopProbability) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  auto opts = gw_opts(2000);
  opts.spec.stop_prob = 0.5;
  opts.spec.length = 20;
  GraphWalkerEngine engine(g, opts);
  const auto r = engine.run();
  EXPECT_EQ(r.walks_completed, 2000u);
  EXPECT_LT(r.total_hops, 2000u * 4);
}

TEST(GraphWalkerBiased, WeightedWalks) {
  graph::ZipfParams zp;
  zp.num_vertices = 1 << 10;
  zp.num_edges = 16 << 10;
  zp.weighted = true;
  const auto g = graph::generate_zipf(zp);
  auto opts = gw_opts(1000);
  opts.spec.biased = true;
  GraphWalkerEngine engine(g, opts);
  EXPECT_EQ(engine.run().walks_completed, 1000u);
}

// --- DrunkardMob -------------------------------------------------------------

TEST(DrunkardMob, AllWalksComplete) {
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  DrunkardMobOptions opts;
  opts.ssd = ssd::test_ssd_config();
  opts.spec.num_walks = 3000;
  opts.spec.length = 6;
  opts.host.block_bytes = 8 * KiB;
  DrunkardMobEngine engine(g, opts);
  const auto r = engine.run();
  EXPECT_EQ(r.walks_started, 3000u);
  EXPECT_EQ(r.walks_completed, 3000u);
}

TEST(DrunkardMob, IterationBarrierCostsMoreThanGraphWalker) {
  // §II.B: the iteration-synchronous engine re-reads blocks every hop and
  // writes walks back each iteration — it must be slower than GraphWalker
  // on the same workload.
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  DrunkardMobOptions dopts;
  dopts.ssd = ssd::test_ssd_config();
  dopts.spec.num_walks = 3000;
  dopts.spec.length = 6;
  dopts.host.block_bytes = 8 * KiB;
  DrunkardMobEngine dm(g, dopts);
  const auto rd = dm.run();

  GraphWalkerEngine gw(g, gw_opts(3000));
  const auto rg = gw.run();
  EXPECT_GT(rd.exec_time, rg.exec_time);
  EXPECT_GT(rd.bytes_written, rg.bytes_written);
}

TEST(DrunkardMob, WalkWriteTrafficEveryIteration) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  DrunkardMobOptions opts;
  opts.ssd = ssd::test_ssd_config();
  opts.spec.num_walks = 2000;
  opts.spec.length = 6;
  opts.host.block_bytes = 8 * KiB;
  DrunkardMobEngine engine(g, opts);
  const auto r = engine.run();
  EXPECT_GT(r.bytes_written, 0u);
  EXPECT_GT(r.breakdown.walk_write, 0u);
}

}  // namespace
}  // namespace fw::baseline
