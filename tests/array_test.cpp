// Multi-SSD array tests: forwarding-buffer edge cases, single-device
// equivalence against the committed report baseline, and the array's
// determinism contract (device count changes placement and timing, never
// walk paths; sim-thread count changes nothing at all).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "accel/array/board_array.hpp"
#include "accel/builder.hpp"
#include "accel/report.hpp"
#include "graph/builder.hpp"
#include "graph/datasets.hpp"
#include "obs/trace.hpp"
#include "partition/partitioned_graph.hpp"
#include "ssd/config.hpp"

namespace fw::accel::array {
namespace {

/// Fine partition grain (many partitions), so the round-robin device
/// stripe produces real cross-device traffic even at 2 devices. The graph
/// must outlive the PartitionedGraph (it holds a reference), so tests keep
/// both on the stack.
partition::PartitionConfig fine_grain() {
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 2 * KiB;
  pc.subgraphs_per_partition = 1;
  pc.subgraphs_per_range = 64;
  return pc;
}

graph::CsrGraph tt_test() {
  return graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
}

SimulationConfig array_cfg(std::uint32_t devices, std::uint64_t walks,
                           std::uint32_t sim_threads = 1) {
  SimulationConfig cfg;
  cfg.ssd = ssd::test_ssd_config();
  cfg.accel = bench_accel_config();
  cfg.record_visits = true;
  cfg.spec.num_walks = walks;
  cfg.spec.length = 6;
  cfg.spec.seed = 0xA11Aull;
  cfg.sim_threads = sim_threads;
  cfg.array.devices = devices;
  return cfg;
}

TEST(BoardArrayForwarding, StragglerFlushesOnTimeoutNotBatchSize) {
  // A forward batch far larger than the workload means no size-triggered
  // flush can ever fire: every forwarded walk — including a lone straggler
  // sitting in a board's buffer — must leave via the timeout path, and the
  // run must still drain to completion.
  const graph::CsrGraph g = tt_test();
  const partition::PartitionedGraph pg(g, fine_grain());
  SimulationConfig cfg = array_cfg(2, 64);
  cfg.array.forward_batch = 100000;
  cfg.array.forward_timeout_ns = 5'000;

  BoardArray array(pg, cfg);
  const ArrayResult r = array.run();

  EXPECT_EQ(r.metrics.walks_completed, 64u);
  ASSERT_GT(r.fabric.walks, 0u) << "workload never crossed devices";
  // Every flush was a timeout flush.
  EXPECT_GT(r.metrics.forward_timeout_flushes, 0u);
  EXPECT_EQ(r.metrics.forward_batches, r.metrics.forward_timeout_flushes);
  EXPECT_EQ(r.metrics.forwarded_out_walks, r.metrics.forwarded_in_walks);
}

TEST(BoardArrayForwarding, WalkPingPongsBetweenTwoBoards) {
  // A directed ring with one vertex per block and one block per partition:
  // consecutive partitions alternate between the two devices (round-robin
  // stripe), so a walk along the ring hops boards on every partition
  // crossing. With forward_batch=1 each hop is its own batch.
  constexpr std::uint32_t kRing = 64;
  graph::GraphBuilder b(kRing);
  for (VertexId v = 0; v < kRing; ++v) b.add_edge(v, (v + 1) % kRing);
  const graph::CsrGraph g = std::move(b).build();

  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 16;  // one ring vertex per block
  pc.subgraphs_per_partition = 1;
  pc.subgraphs_per_range = 4;
  const partition::PartitionedGraph pg(g, pc);
  ASSERT_GE(pg.num_partitions(), 4u) << "ring did not split into partitions";

  SimulationConfig cfg = array_cfg(2, 32);
  cfg.spec.length = 16;  // long enough to wrap through many partitions
  cfg.array.forward_batch = 1;

  BoardArray array(pg, cfg);
  const ArrayResult r = array.run();

  EXPECT_EQ(r.metrics.walks_completed, 32u);
  ASSERT_EQ(r.boards.size(), 2u);
  for (std::uint32_t d = 0; d < 2; ++d) {
    SCOPED_TRACE("board " + std::to_string(d));
    EXPECT_GT(r.boards[d].metrics.forwarded_out_walks, 0u);
    EXPECT_GT(r.boards[d].metrics.forwarded_in_walks, 0u);
  }
  // Conservation across the ping-pong: the fabric carried exactly what the
  // boards sent, and everything sent was re-admitted somewhere.
  EXPECT_EQ(r.metrics.forwarded_out_walks, r.metrics.forwarded_in_walks);
  EXPECT_EQ(r.fabric.walks, r.metrics.forwarded_out_walks);
}

TEST(BoardArray, WalkPathsInvariantAcrossDeviceCounts) {
  // Moving a partition to a different board changes where and when a walk
  // executes, never which vertices it visits: the per-walk RNG stream is a
  // pure function of (seed, walk index). Totals and visit histograms must
  // be identical at every device count.
  const graph::CsrGraph g = tt_test();
  const partition::PartitionedGraph pg(g, fine_grain());

  BoardArray ref(pg, array_cfg(1, 500));
  const ArrayResult r1 = ref.run();
  ASSERT_GT(r1.metrics.total_hops, 0u);

  for (const std::uint32_t devices : {2u, 4u, 8u}) {
    SCOPED_TRACE(std::to_string(devices) + " devices");
    BoardArray array(pg, array_cfg(devices, 500));
    const ArrayResult r = array.run();
    EXPECT_EQ(r.metrics.walks_completed, r1.metrics.walks_completed);
    EXPECT_EQ(r.metrics.total_hops, r1.metrics.total_hops);
    EXPECT_EQ(r.metrics.dead_ends, r1.metrics.dead_ends);
    EXPECT_EQ(r.visit_counts, r1.visit_counts);
  }
}

TEST(BoardArray, SimThreadCountIsInvisible) {
  // Byte-identical serialized reports across --sim-threads at 2 and 4
  // devices, and across repeat runs (no hidden cross-run state).
  const graph::CsrGraph g = tt_test();
  const partition::PartitionedGraph pg(g, fine_grain());
  for (const std::uint32_t devices : {2u, 4u}) {
    SCOPED_TRACE(std::to_string(devices) + " devices");
    BoardArray a1(pg, array_cfg(devices, 500, 1));
    const std::string serial = to_json("array", a1.run());
    for (const std::uint32_t threads : {2u, 8u}) {
      SCOPED_TRACE(std::to_string(threads) + " sim threads");
      BoardArray an(pg, array_cfg(devices, 500, threads));
      EXPECT_EQ(serial, to_json("array", an.run()));
    }
    BoardArray again(pg, array_cfg(devices, 500, 1));
    EXPECT_EQ(serial, to_json("array", again.run()));
  }
}

TEST(BoardArray, SingleDeviceKeepsStandaloneWalkTotals) {
  // devices=1 wraps the engine in the array harness (fabric shard,
  // coordinator ledger) without any forwarding; the walk work must be
  // exactly the standalone engine's.
  const graph::CsrGraph g = tt_test();
  const partition::PartitionedGraph pg(g, fine_grain());
  const SimulationConfig cfg = array_cfg(1, 500);

  BoardArray array(pg, cfg);
  const ArrayResult ar = array.run();
  const EngineResult er = SimulationBuilder(pg).config(cfg).run();

  EXPECT_EQ(ar.metrics.walks_completed, er.metrics.walks_completed);
  EXPECT_EQ(ar.metrics.total_hops, er.metrics.total_hops);
  EXPECT_EQ(ar.metrics.dead_ends, er.metrics.dead_ends);
  EXPECT_EQ(ar.visit_counts, er.visit_counts);
  EXPECT_EQ(ar.fabric.walks, 0u);
  EXPECT_EQ(ar.metrics.forwarded_out_walks, 0u);
}

TEST(BoardArray, SingleDeviceReportMatchesCommittedBaseline) {
  // The standalone (non-array) report for a pinned config must stay
  // byte-identical to the committed baseline: the Board extraction and the
  // prime/finalize split may not perturb single-device output. Refresh with
  // FW_UPDATE_BASELINE=1 ./array_test (then commit the file) after an
  // intentional model or schema change.
  const graph::CsrGraph g = tt_test();
  const partition::PartitionedGraph pg(g, fine_grain());
  SimulationConfig cfg = array_cfg(1, 200);
  const EngineResult r = SimulationBuilder(pg).config(cfg).run();
  const std::string current = to_json("single_device_baseline", r);

  const std::string path =
      std::string(FW_TEST_DATA_DIR) + "/single_device_report.json";
  if (std::getenv("FW_UPDATE_BASELINE") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << current;
    GTEST_SKIP() << "baseline refreshed at " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing " << path
                  << " (generate with FW_UPDATE_BASELINE=1)";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), current)
      << "single-device report drifted from the committed baseline";
}

TEST(BoardArray, RejectsConfigsTheArrayCannotHonor) {
  const graph::CsrGraph g = tt_test();
  const partition::PartitionedGraph pg(g, fine_grain());
  SimulationConfig zero = array_cfg(0, 100);
  EXPECT_THROW(BoardArray(pg, zero), std::invalid_argument);
  obs::TraceRecorder recorder;
  SimulationConfig traced = array_cfg(2, 100);
  traced.trace = &recorder;
  EXPECT_THROW(BoardArray(pg, traced), std::invalid_argument);
  SimulationConfig paths = array_cfg(2, 100);
  paths.record_paths = true;
  EXPECT_THROW(BoardArray(pg, paths), std::invalid_argument);
}

}  // namespace
}  // namespace fw::accel::array
