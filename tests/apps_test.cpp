// Application-layer and tooling tests: skip-gram embeddings over walk
// corpora, the ThunderRW-style in-memory baseline, and partitioned-graph
// bundle serialization.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "accel/builder.hpp"
#include "accel/engine.hpp"
#include "accel/report.hpp"
#include "baseline/graphwalker.hpp"
#include "baseline/thunder.hpp"
#include "graph/builder.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "partition/io.hpp"
#include "rw/algorithms.hpp"
#include "rw/embeddings.hpp"

namespace fw {
namespace {

// --- embeddings ---------------------------------------------------------------

graph::CsrGraph two_cliques(VertexId clique_size) {
  // Two cliques joined by a single bridge edge — the classic embedding
  // sanity structure.
  graph::GraphBuilder b(2 * clique_size);
  for (VertexId i = 0; i < clique_size; ++i) {
    for (VertexId j = 0; j < clique_size; ++j) {
      if (i != j) {
        b.add_edge(i, j);
        b.add_edge(clique_size + i, clique_size + j);
      }
    }
  }
  b.add_edge(0, clique_size);
  b.add_edge(clique_size, 0);
  return std::move(b).build();
}

TEST(Embeddings, NeighborsCloserThanRandomPairs) {
  const auto g = two_cliques(8);
  rw::DeepWalkParams dw;
  dw.walks_per_vertex = 20;
  dw.walk_length = 8;
  const auto corpus = rw::deepwalk_corpus(g, dw);

  rw::SkipGramParams sp;
  sp.dimensions = 16;
  sp.epochs = 3;
  rw::EmbeddingModel model(g.num_vertices(), sp);
  model.train(corpus);

  EXPECT_GT(rw::edge_similarity_gap(model, g, 2000, 9), 0.2);
}

TEST(Embeddings, CliqueMembersClusterTogether) {
  const VertexId k = 8;
  const auto g = two_cliques(k);
  rw::DeepWalkParams dw;
  dw.walks_per_vertex = 20;
  dw.walk_length = 8;
  rw::SkipGramParams sp;
  sp.dimensions = 16;
  sp.epochs = 3;
  rw::EmbeddingModel model(g.num_vertices(), sp);
  model.train(rw::deepwalk_corpus(g, dw));

  // A mid-clique vertex's nearest neighbors should mostly be same-clique.
  const auto nn = model.nearest(3, 5);
  int same = 0;
  for (const auto& [v, sim] : nn) same += v < k;
  EXPECT_GE(same, 4);
}

TEST(Embeddings, SimilarityIsSymmetricAndBounded) {
  rw::SkipGramParams sp;
  sp.dimensions = 8;
  rw::EmbeddingModel model(10, sp);
  for (VertexId a = 0; a < 10; ++a) {
    for (VertexId b = 0; b < 10; ++b) {
      const double s = model.similarity(a, b);
      EXPECT_LE(std::abs(s), 1.0 + 1e-9);
      EXPECT_DOUBLE_EQ(s, model.similarity(b, a));
    }
  }
  EXPECT_NEAR(model.similarity(3, 3), 1.0, 1e-6);
}

TEST(Embeddings, EngineWalksTrainAsWellAsHostWalks) {
  // The in-storage engine's recorded paths are a drop-in corpus.
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 4096;
  const partition::PartitionedGraph pg(g, pc);
  accel::EngineOptions opts;
  opts.ssd = ssd::test_ssd_config();
  opts.spec.start_mode = rw::StartMode::kAllVertices;
  opts.spec.length = 6;
  opts.record_paths = true;
  auto engine = accel::SimulationBuilder(pg).options(opts).build();
  const auto r = engine.run();

  rw::SkipGramParams sp;
  sp.dimensions = 16;
  sp.epochs = 2;
  rw::EmbeddingModel model(g.num_vertices(), sp);
  model.train(r.paths);
  EXPECT_GT(rw::edge_similarity_gap(model, g, 2000, 3), 0.05);
}

// --- ThunderRW baseline ---------------------------------------------------------

TEST(Thunder, CompletesInMemory) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  baseline::ThunderOptions opts;
  opts.ssd = ssd::test_ssd_config();
  opts.spec.num_walks = 5000;
  opts.host.memory_bytes = 64 * MiB;
  baseline::ThunderEngine engine(g, opts);
  const auto r = engine.run();
  EXPECT_EQ(r.walks_completed, 5000u);
  EXPECT_EQ(r.block_loads, 1u);  // one full-graph load
  EXPECT_EQ(r.bytes_written, 0u);
}

TEST(Thunder, RefusesOversizedGraph) {
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  baseline::ThunderOptions opts;
  opts.ssd = ssd::test_ssd_config();
  opts.host.memory_bytes = 1024;  // far too small
  EXPECT_THROW(baseline::ThunderEngine(g, opts), std::invalid_argument);
}

TEST(Thunder, FasterThanGraphWalkerWhenBothFit) {
  // In-memory step-centric execution beats the out-of-core loop even when
  // GraphWalker's cache holds the whole graph (no bucket management).
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  rw::WalkSpec spec;
  spec.num_walks = 20'000;
  spec.length = 6;

  baseline::ThunderOptions topts;
  topts.ssd = ssd::test_ssd_config();
  topts.spec = spec;
  topts.host.memory_bytes = 64 * MiB;
  baseline::ThunderEngine thunder(g, topts);

  baseline::GraphWalkerOptions gopts;
  gopts.ssd = ssd::test_ssd_config();
  gopts.spec = spec;
  gopts.host.memory_bytes = 64 * MiB;
  baseline::GraphWalkerEngine gw(g, gopts);

  EXPECT_LT(thunder.run().exec_time, gw.run().exec_time);
}

TEST(Thunder, VisitDistributionMatchesReference) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  rw::WalkSpec spec;
  spec.num_walks = 20'000;
  spec.length = 6;
  spec.seed = 3;
  const auto ref = rw::run_walks(g, spec);

  baseline::ThunderOptions opts;
  opts.ssd = ssd::test_ssd_config();
  opts.spec = spec;
  opts.host.memory_bytes = 64 * MiB;
  baseline::ThunderEngine engine(g, opts);
  const auto r = engine.run();
  const auto rt = static_cast<double>(ref.total_hops);
  EXPECT_NEAR(static_cast<double>(r.total_hops), rt, 0.05 * rt);
}

// --- partition bundle io ------------------------------------------------------

TEST(PartitionIo, RoundTripReproducesLayout) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 4096;
  pc.subgraphs_per_partition = 32;
  const partition::PartitionedGraph pg(g, pc);

  std::stringstream ss;
  partition::save_partitioned(pg, ss);
  const auto bundle = partition::load_partitioned(ss);

  ASSERT_EQ(bundle.partitioned->num_subgraphs(), pg.num_subgraphs());
  ASSERT_EQ(bundle.partitioned->num_partitions(), pg.num_partitions());
  for (SubgraphId sg = 0; sg < pg.num_subgraphs(); ++sg) {
    EXPECT_EQ(bundle.partitioned->subgraph(sg).low_vid, pg.subgraph(sg).low_vid);
    EXPECT_EQ(bundle.partitioned->subgraph(sg).high_vid, pg.subgraph(sg).high_vid);
    EXPECT_EQ(bundle.partitioned->subgraph(sg).edge_begin, pg.subgraph(sg).edge_begin);
    EXPECT_EQ(bundle.partitioned->subgraph(sg).dense, pg.subgraph(sg).dense);
  }
  EXPECT_EQ(bundle.graph->edges(), g.edges());
}

TEST(PartitionIo, RejectsBadMagic) {
  std::stringstream ss("definitely not a bundle");
  EXPECT_THROW(partition::load_partitioned(ss), std::runtime_error);
}

TEST(PartitionIo, RejectsTruncatedStream) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 4096;
  const partition::PartitionedGraph pg(g, pc);
  std::stringstream ss;
  partition::save_partitioned(pg, ss);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(partition::load_partitioned(cut), std::runtime_error);
}

TEST(PartitionIo, LoadedBundleDrivesTheEngine) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 4096;
  const partition::PartitionedGraph pg(g, pc);
  std::stringstream ss;
  partition::save_partitioned(pg, ss);
  const auto bundle = partition::load_partitioned(ss);

  accel::EngineOptions opts;
  opts.ssd = ssd::test_ssd_config();
  opts.spec.num_walks = 2000;
  auto engine = accel::SimulationBuilder(*bundle.partitioned).options(opts).build();
  EXPECT_EQ(engine.run().metrics.walks_completed, 2000u);
}

// --- JSON run reports ----------------------------------------------------------

TEST(Report, EngineJsonIsWellFormed) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 4096;
  const partition::PartitionedGraph pg(g, pc);
  accel::EngineOptions opts;
  opts.ssd = ssd::test_ssd_config();
  opts.spec.num_walks = 500;
  opts.timeline_interval = 100 * kUs;
  auto engine = accel::SimulationBuilder(pg).options(opts).build();
  const auto json = accel::to_json("unit \"test\"", engine.run());
  // Structural checks without a JSON library: balanced braces/brackets,
  // escaped label, key fields present.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"walks_completed\":500"), std::string::npos);
  EXPECT_NE(json.find("unit \\\"test\\\""), std::string::npos);
  EXPECT_NE(json.find("\"timeline\":["), std::string::npos);
}

TEST(Report, BaselineJsonHasBreakdown) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  baseline::GraphWalkerOptions opts;
  opts.ssd = ssd::test_ssd_config();
  opts.spec.num_walks = 500;
  opts.host.memory_bytes = 64 * KiB;
  opts.host.block_bytes = 8 * KiB;
  baseline::GraphWalkerEngine engine(g, opts);
  const auto json = accel::to_json("gw", engine.run());
  EXPECT_NE(json.find("\"graph_load_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"nvme_commands\":"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace fw
