// Serial-vs-parallel differential harness for the concurrent engine.
//
// The determinism contract of the parallel DES is that the worker count is
// invisible: `--sim-threads N` must produce byte-identical results for any
// N, because workers only change which OS thread executes a shard's window,
// never the merged event order. This suite proves the contract end to end —
// not on the raw simulator (tests/parallel_sim_test.cpp covers that) but on
// the full engine, over a seeded scenario matrix that crosses channel
// counts, walk-model job mixes, and NAND fault injection, comparing the
// complete serialized run report (JSON) and metrics envelope byte for byte.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "accel/array/board_array.hpp"
#include "accel/builder.hpp"
#include "accel/report.hpp"
#include "accel/service/job.hpp"
#include "common/rng.hpp"
#include "graph/datasets.hpp"
#include "partition/partitioned_graph.hpp"

namespace fw::accel {
namespace {

struct Scenario {
  std::string name;
  std::uint32_t channels = 4;
  bool faults = false;
  std::vector<service::WalkJob> jobs;
};

/// Seeded scenario matrix: for every channel count the acceptance gate
/// names (4, 8, 33) and both fault settings, draw a deepwalk + node2vec +
/// PPR job mix whose counts, lengths, and parameters come from a fixed-seed
/// RNG — varied scenarios, reproducible failures.
std::vector<Scenario> make_matrix(const graph::CsrGraph& g) {
  Xoshiro256 rng(0xD1FFull);
  std::vector<Scenario> matrix;
  for (const std::uint32_t channels : {4u, 8u, 33u}) {
    for (const bool faults : {false, true}) {
      Scenario sc;
      sc.name = std::to_string(channels) + "ch" + (faults ? "+faults" : "");
      sc.channels = channels;
      sc.faults = faults;

      service::WalkJob deepwalk;
      deepwalk.name = "deepwalk";
      deepwalk.spec.num_walks = 100 + rng.bounded(200);
      deepwalk.spec.length = 4 + static_cast<std::uint32_t>(rng.bounded(5));
      deepwalk.spec.seed = rng.next();
      deepwalk.qos = service::QosClass::kSilver;
      sc.jobs.push_back(deepwalk);

      service::WalkJob node2vec;
      node2vec.name = "node2vec";
      node2vec.spec.num_walks = 50 + rng.bounded(150);
      node2vec.spec.length = 4 + static_cast<std::uint32_t>(rng.bounded(4));
      node2vec.spec.second_order.enabled = true;
      node2vec.spec.second_order.p = 0.5 + 0.25 * static_cast<double>(rng.bounded(4));
      node2vec.spec.second_order.q = 0.5 + 0.25 * static_cast<double>(rng.bounded(4));
      node2vec.spec.seed = rng.next();
      node2vec.spec.dead_end = rw::WalkSpec::DeadEnd::kRestart;
      node2vec.qos = service::QosClass::kGold;
      node2vec.arrival = rng.bounded(50'000);
      sc.jobs.push_back(node2vec);

      service::WalkJob ppr;
      ppr.name = "ppr";
      ppr.spec.num_walks = 100 + rng.bounded(100);
      ppr.spec.length = 10;
      ppr.spec.stop_prob = 0.15;
      ppr.spec.start_mode = rw::StartMode::kSingleSource;
      ppr.spec.source = static_cast<VertexId>(rng.bounded(g.num_vertices()));
      ppr.spec.seed = rng.next();
      ppr.arrival = rng.bounded(100'000);
      sc.jobs.push_back(ppr);

      matrix.push_back(std::move(sc));
    }
  }
  return matrix;
}

/// Everything the engine externalizes about a run, in serialized form: the
/// full JSON run report (counters, byte totals, per-job stats and outputs)
/// plus the hierarchical metrics envelope. Byte-equality of these strings
/// is the differential oracle.
struct RunFingerprint {
  Tick exec_time = 0;
  std::string report;
  std::string envelope;

  bool operator==(const RunFingerprint& o) const = default;
};

RunFingerprint run_scenario(const partition::PartitionedGraph& pg,
                            const Scenario& sc, std::uint32_t threads) {
  SimulationConfig cfg;
  cfg.ssd = ssd::test_ssd_config();
  cfg.ssd.topo.channels = sc.channels;
  if (sc.faults) {
    cfg.ssd.reliability.rber.base = 5e-3;
    cfg.ssd.reliability.fault_seed = 7 + sc.channels;
  }
  cfg.accel = bench_accel_config();
  cfg.jobs = sc.jobs;
  cfg.record_visits = true;
  cfg.record_endpoints = true;
  cfg.sim_threads = threads;

  const EngineResult r = SimulationBuilder(pg).config(cfg).run();
  RunFingerprint fp;
  fp.exec_time = r.exec_time;
  fp.report = to_json("diff", r);
  std::ostringstream env;
  write_counters_json(env, r);
  fp.envelope = env.str();
  return fp;
}

TEST(EngineParallelDiff, WorkerCountIsInvisibleAcrossScenarioMatrix) {
  const graph::CsrGraph g =
      graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 16 * KiB;
  pc.subgraphs_per_partition = 2048;
  pc.subgraphs_per_range = 64;
  const partition::PartitionedGraph pg(g, pc);

  for (const Scenario& sc : make_matrix(g)) {
    SCOPED_TRACE(sc.name);
    const RunFingerprint serial = run_scenario(pg, sc, 1);
    ASSERT_FALSE(serial.report.empty());
    ASSERT_GT(serial.exec_time, 0u);
    for (const std::uint32_t workers : {2u, 4u, 8u}) {
      SCOPED_TRACE(std::to_string(workers) + " workers");
      const RunFingerprint parallel = run_scenario(pg, sc, workers);
      // Byte-equal serialized report and metrics envelope: every counter,
      // byte total, per-job stat, visit/endpoint vector, and the simulated
      // clock agree exactly with the serial reference.
      EXPECT_EQ(serial.exec_time, parallel.exec_time);
      EXPECT_EQ(serial.report, parallel.report);
      EXPECT_EQ(serial.envelope, parallel.envelope);
    }
  }
}

TEST(EngineParallelDiff, ArrayWorkerCountIsInvisible) {
  // Same contract, multi-board shape: a 4-device BoardArray run (fabric
  // shard + 4 boards, cross-device forwarding in flight) serialized at
  // --sim-threads 1 must byte-equal every other worker count. This is the
  // hardest case for the merge order because fabric events interleave with
  // every board's local windows.
  const graph::CsrGraph g =
      graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 2 * KiB;
  pc.subgraphs_per_partition = 1;
  pc.subgraphs_per_range = 64;
  const partition::PartitionedGraph pg(g, pc);

  auto run_array = [&pg](std::uint32_t threads) {
    SimulationConfig cfg;
    cfg.ssd = ssd::test_ssd_config();
    cfg.accel = bench_accel_config();
    cfg.record_visits = true;
    cfg.spec.num_walks = 400;
    cfg.spec.length = 6;
    cfg.spec.seed = 0xABCDull;
    cfg.sim_threads = threads;
    cfg.array.devices = 4;
    array::BoardArray array(pg, cfg);
    return to_json("array_diff", array.run());
  };

  const std::string serial = run_array(1);
  ASSERT_FALSE(serial.empty());
  ASSERT_NE(serial.find("\"forwarded_out_walks\""), std::string::npos);
  for (const std::uint32_t workers : {2u, 4u, 8u}) {
    SCOPED_TRACE(std::to_string(workers) + " workers");
    EXPECT_EQ(serial, run_array(workers));
  }
}

TEST(EngineParallelDiff, SingleChannelAndGuiderShardVariantsStayDeterministic) {
  // Degenerate shapes for the sharded board guider pool: one channel (board
  // residue + a single channel shard + the K sub-shards) and K = 1 (the
  // pool collapses to one sub-shard, re-serializing every routing decision
  // behind a single message stream). Every variant must stay byte-identical
  // across worker counts; different K values legitimately produce different
  // schedules and are only compared within themselves.
  const graph::CsrGraph g =
      graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 16 * KiB;
  pc.subgraphs_per_partition = 2048;
  pc.subgraphs_per_range = 64;
  const partition::PartitionedGraph pg(g, pc);

  auto run_variant = [&pg](std::uint32_t channels, std::uint32_t kshards,
                           std::uint32_t threads) {
    SimulationConfig cfg;
    cfg.ssd = ssd::test_ssd_config();
    cfg.ssd.topo.channels = channels;
    cfg.accel = bench_accel_config();
    cfg.accel.board_guider_shards = kshards;
    cfg.spec.num_walks = 300;
    cfg.spec.length = 6;
    cfg.spec.seed = 0xFEEDull;
    cfg.record_visits = true;
    cfg.sim_threads = threads;
    const EngineResult r = SimulationBuilder(pg).config(cfg).run();
    return to_json("variant_diff", r);
  };

  for (const std::uint32_t channels : {1u, 4u}) {
    for (const std::uint32_t kshards : {1u, 2u, 8u}) {
      SCOPED_TRACE(std::to_string(channels) + "ch/K=" + std::to_string(kshards));
      const std::string serial = run_variant(channels, kshards, 1);
      ASSERT_FALSE(serial.empty());
      for (const std::uint32_t workers : {2u, 4u, 8u}) {
        SCOPED_TRACE(std::to_string(workers) + " workers");
        EXPECT_EQ(serial, run_variant(channels, kshards, workers));
      }
    }
  }
}

TEST(EngineParallelDiff, RepeatedConcurrentRunsAreReproducible) {
  // Same config, same worker count, run twice: guards against hidden
  // cross-run state (static RNGs, pool reuse) masquerading as determinism.
  const graph::CsrGraph g =
      graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 16 * KiB;
  pc.subgraphs_per_partition = 2048;
  pc.subgraphs_per_range = 64;
  const partition::PartitionedGraph pg(g, pc);

  const std::vector<Scenario> matrix = make_matrix(g);
  const Scenario& sc = matrix.front();
  const RunFingerprint a = run_scenario(pg, sc, 8);
  const RunFingerprint b = run_scenario(pg, sc, 8);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace fw::accel
