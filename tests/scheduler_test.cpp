// Subgraph scheduler: Eq. 1 scoring, scoreboard transitions, top-N laziness,
// and the SS-off (GraphWalker-policy) baseline path.
#include <gtest/gtest.h>

#include "accel/scheduler.hpp"
#include "graph/generators.hpp"
#include "ssd/config.hpp"

namespace fw::accel {
namespace {

struct SchedulerFixture : ::testing::Test {
  SchedulerFixture() {
    graph::RmatParams p;
    p.num_vertices = 1 << 10;
    p.num_edges = 24 << 10;
    p.seed = 21;
    g_ = graph::generate_rmat(p);
    partition::PartitionConfig pc;
    pc.block_capacity_bytes = 2048;
    pc.subgraphs_per_partition = 1u << 20;  // single partition
    pg_ = std::make_unique<partition::PartitionedGraph>(g_, pc);
    ssd_ = ssd::test_ssd_config();
    layout_ = std::make_unique<ssd::GraphLayout>(*pg_, ssd_);
  }

  SubgraphScheduler make(bool ss_enabled, double alpha = 1.2, double beta = 1.5,
                         std::uint32_t update_every = 4) {
    AccelConfig cfg;
    cfg.features.subgraph_scheduling = ss_enabled;
    cfg.alpha = alpha;
    cfg.beta = beta;
    cfg.top_n = 4;
    cfg.score_update_every = update_every;
    SubgraphScheduler sched(*pg_, *layout_, cfg, ssd_.topo.total_chips(),
                            ssd_.topo.chips_per_channel);
    sched.begin_partition(0);
    return sched;
  }

  /// A subgraph owned by the given chip (for targeted insertions).
  SubgraphId sg_of_chip(std::uint32_t chip_global, std::size_t index = 0) {
    const auto& list = layout_->chip_subgraphs(chip_global / ssd_.topo.chips_per_channel,
                                               chip_global % ssd_.topo.chips_per_channel);
    return list.at(index);
  }

  graph::CsrGraph g_;
  std::unique_ptr<partition::PartitionedGraph> pg_;
  ssd::SsdConfig ssd_;
  std::unique_ptr<ssd::GraphLayout> layout_;
};

TEST_F(SchedulerFixture, ScoreFollowsEq1) {
  auto sched = make(true, 1.2, 1.5);
  // Find one dense and one non-dense subgraph.
  SubgraphId nondense = kInvalidSubgraph, dense = kInvalidSubgraph;
  for (const auto& sg : pg_->subgraphs()) {
    if (sg.dense && dense == kInvalidSubgraph) dense = sg.id;
    if (!sg.dense && nondense == kInvalidSubgraph) nondense = sg.id;
  }
  ASSERT_NE(nondense, kInvalidSubgraph);
  for (int i = 0; i < 3; ++i) sched.on_walk_insert(nondense);
  sched.on_walk_insert(nondense, /*to_flash=*/true);
  // (3*1.2 + 1) * 1.5
  EXPECT_DOUBLE_EQ(sched.score(nondense), (3 * 1.2 + 1) * 1.5);
  if (dense != kInvalidSubgraph) {
    for (int i = 0; i < 3; ++i) sched.on_walk_insert(dense);
    sched.on_walk_insert(dense, true);
    EXPECT_DOUBLE_EQ(sched.score(dense), 3 * 1.2 + 1);  // no beta for dense
  }
}

TEST_F(SchedulerFixture, PicksHighestScoreForChip) {
  auto sched = make(true);
  const SubgraphId a = sg_of_chip(0, 0);
  const SubgraphId b = sg_of_chip(0, 1);
  for (int i = 0; i < 2; ++i) sched.on_walk_insert(a);
  for (int i = 0; i < 10; ++i) sched.on_walk_insert(b);
  const auto pick = sched.pick_for_chip(0, [](SubgraphId) { return true; });
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->sg, b);
}

TEST_F(SchedulerFixture, BaselinePolicyPicksMostWalks) {
  auto sched = make(false);
  const SubgraphId a = sg_of_chip(0, 0);
  const SubgraphId b = sg_of_chip(0, 1);
  for (int i = 0; i < 5; ++i) sched.on_walk_insert(a);
  for (int i = 0; i < 7; ++i) sched.on_walk_insert(b);
  const auto pick = sched.pick_for_chip(0, [](SubgraphId) { return true; });
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->sg, b);
}

TEST_F(SchedulerFixture, NoPendingWalksMeansNoPick) {
  auto sched = make(true);
  EXPECT_FALSE(sched.pick_for_chip(0, [](SubgraphId) { return true; }).has_value());
}

TEST_F(SchedulerFixture, EligibilityFilterRespected) {
  auto sched = make(true);
  const SubgraphId a = sg_of_chip(0, 0);
  sched.on_walk_insert(a);
  const auto pick =
      sched.pick_for_chip(0, [a](SubgraphId sg) { return sg != a; });
  EXPECT_FALSE(pick.has_value());
}

TEST_F(SchedulerFixture, LoadedSubgraphResetsCounters) {
  auto sched = make(true);
  const SubgraphId a = sg_of_chip(0, 0);
  for (int i = 0; i < 5; ++i) sched.on_walk_insert(a);
  EXPECT_EQ(sched.pwb_count(a), 5u);
  sched.on_subgraph_loaded(a);
  EXPECT_EQ(sched.pending_walks(a), 0u);
  EXPECT_FALSE(sched.pick_for_chip(0, [](SubgraphId) { return true; }).has_value());
}

TEST_F(SchedulerFixture, EntryFlushMovesPwbToFlash) {
  auto sched = make(true);
  const SubgraphId a = sg_of_chip(0, 0);
  for (int i = 0; i < 8; ++i) sched.on_walk_insert(a);
  sched.on_entry_flushed(a, 8);
  EXPECT_EQ(sched.pwb_count(a), 0u);
  EXPECT_EQ(sched.fl_count(a), 8u);
  // fl walks score lower than pwb walks (alpha > 1), but still schedule.
  const auto pick = sched.pick_for_chip(0, [](SubgraphId) { return true; });
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->sg, a);
}

TEST_F(SchedulerFixture, SsPickIsCheaperThanScan) {
  // With SS, a pick should cost ~top_n compares; the baseline scans all of
  // the chip's candidates.
  auto ss = make(true);
  auto base = make(false);
  const std::uint32_t chip = 0;
  const auto& list = layout_->chip_subgraphs(0, 0);
  for (SubgraphId sg : list) {
    ss.on_walk_insert(sg);
    base.on_walk_insert(sg);
  }
  const auto p1 = ss.pick_for_chip(chip, [](SubgraphId) { return true; });
  const auto p2 = base.pick_for_chip(chip, [](SubgraphId) { return true; });
  ASSERT_TRUE(p1 && p2);
  if (list.size() > 8) {  // only meaningful when the chip owns many subgraphs
    EXPECT_LT(p1->compare_ops, p2->compare_ops);
  }
}

TEST_F(SchedulerFixture, FallbackScanRepopulatesDrainedTopN) {
  // Regression: the fallback candidate scan claimed to repopulate a drained
  // top-N list but didn't, so every pick after a drain paid the full scan.
  auto sched = make(true);  // top_n = 4
  const auto& list = layout_->chip_subgraphs(0, 0);
  ASSERT_GT(list.size(), 4u) << "fixture must own more subgraphs than top_n";
  for (SubgraphId sg : list) sched.on_walk_insert(sg);
  // Drain: an all-ineligible pick pops every top-N entry, then falls back to
  // the candidate scan (which must refill the list on its way through).
  const auto none = sched.pick_for_chip(0, [](SubgraphId) { return false; });
  EXPECT_FALSE(none.has_value());
  // The next pick must ride the repopulated fast path: ~top_n comparisons,
  // not a rescan of every candidate.
  const auto pick = sched.pick_for_chip(0, [](SubgraphId) { return true; });
  ASSERT_TRUE(pick.has_value());
  EXPECT_LE(pick->compare_ops, 4u);
  EXPECT_LT(pick->compare_ops, static_cast<std::uint32_t>(list.size()));
}

TEST_F(SchedulerFixture, AlphaWeightsPwbOverFlash) {
  // update_every = 1: refresh the top-N on every insert so scores are exact
  // (the lazy default is covered by LazyTopNDefersRefresh below).
  auto sched = make(true, /*alpha=*/2.0, /*beta=*/1.0, /*update_every=*/1);
  const SubgraphId a = sg_of_chip(0, 0);
  const SubgraphId b = sg_of_chip(0, 1);
  // a: 4 walks in pwb (score 8); b: 6 walks in flash (score 6).
  for (int i = 0; i < 4; ++i) sched.on_walk_insert(a);
  for (int i = 0; i < 6; ++i) sched.on_walk_insert(b, true);
  const auto pick = sched.pick_for_chip(0, [](SubgraphId) { return true; });
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->sg, a);
}

TEST_F(SchedulerFixture, LazyTopNDefersRefresh) {
  // With update_every = M, the first insert places a subgraph in the list
  // but the next M-1 inserts leave its score stale (the paper's every-M
  // rule); the pick can therefore prefer a fresher, lower-total entry.
  auto sched = make(true, /*alpha=*/1.0, /*beta=*/1.0, /*update_every=*/100);
  const SubgraphId a = sg_of_chip(0, 0);
  const SubgraphId b = sg_of_chip(0, 1);
  for (int i = 0; i < 50; ++i) sched.on_walk_insert(a);  // stale score: 1
  sched.on_walk_insert(b);                               // fresh score: 1
  EXPECT_DOUBLE_EQ(sched.score(a), 50.0);  // ground truth is still exact
  const auto pick = sched.pick_for_chip(0, [](SubgraphId) { return true; });
  ASSERT_TRUE(pick.has_value());
  // Whatever wins, a valid pending subgraph must come back.
  EXPECT_TRUE(pick->sg == a || pick->sg == b);
}

TEST_F(SchedulerFixture, BeginPartitionResetsCandidates) {
  auto sched = make(true);
  const SubgraphId a = sg_of_chip(0, 0);
  sched.on_walk_insert(a);
  sched.begin_partition(0);  // re-begin: counters survive, top-N rebuilt
  const auto pick = sched.pick_for_chip(0, [](SubgraphId) { return true; });
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->sg, a);
}

}  // namespace
}  // namespace fw::accel
