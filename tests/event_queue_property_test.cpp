// Property-based tests for the bucketed (calendar) event queue and its
// small-buffer callable, checked against a naive std::multimap model.
//
// The model is the specification: pops deliver the globally earliest
// (tick, insertion-order) event, exactly like the binary heap the calendar
// queue replaced. Random interleavings drive both structures through the
// interesting geometry: equal-tick bursts, bucket-boundary ticks, events
// past the window (overflow heap + promotion), and pushes earlier than the
// last pop (window rewind).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sim/event_fn.hpp"
#include "sim/event_queue.hpp"

namespace fw::sim {
namespace {

/// Naive reference queue. std::multimap inserts equal keys at the upper
/// bound of their range (C++11), so iteration order within a tick is
/// insertion order — the determinism contract the real queue must match.
class ModelQueue {
 public:
  void push(Tick at, std::uint64_t id) { events_.emplace(at, id); }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] Tick next_tick() const { return events_.begin()->first; }

  std::pair<Tick, std::uint64_t> pop() {
    const auto it = events_.begin();
    const auto result = *it;
    events_.erase(it);
    return result;
  }

 private:
  std::multimap<Tick, std::uint64_t> events_;
};

/// Drive a real queue and the model through the same randomized push/pop
/// interleaving (pushes at now + delay_gen(rng), simulator-style), then
/// drain both, asserting tick-and-identity agreement at every step.
template <typename DelayGen>
void run_against_model(std::uint32_t width_log2, std::uint32_t buckets_log2,
                       std::uint64_t seed, int ops, DelayGen delay_gen,
                       bool expect_overflow = false) {
  EventQueue q(width_log2, buckets_log2);
  ModelQueue model;
  std::vector<std::uint64_t> fired;
  Xoshiro256 rng(seed);
  Tick now = 0;
  std::uint64_t next_id = 0;
  bool saw_overflow = false;

  auto check_pop = [&] {
    ASSERT_FALSE(q.empty());
    ASSERT_EQ(q.next_tick(), model.next_tick());
    const auto [model_tick, model_id] = model.pop();
    auto [tick, fn] = q.pop();
    ASSERT_EQ(tick, model_tick);
    fn();
    ASSERT_EQ(fired.back(), model_id);
    now = tick;
  };

  for (int op = 0; op < ops; ++op) {
    saw_overflow |= q.overflow_size() > 0;
    if (model.empty() || rng.bounded(100) < 55) {
      const Tick at = now + delay_gen(rng);
      const std::uint64_t id = next_id++;
      q.push(at, [&fired, id] { fired.push_back(id); });
      model.push(at, id);
      ASSERT_EQ(q.size(), model.size());
    } else {
      check_pop();
    }
  }
  while (!model.empty()) check_pop();
  ASSERT_TRUE(q.empty());
  ASSERT_EQ(q.size(), 0u);
  ASSERT_EQ(fired.size(), next_id);
  if (expect_overflow) {
    EXPECT_TRUE(saw_overflow);
  }
}

TEST(EventQueueProperty, RandomInterleavingsMatchModel) {
  // Default-ish geometry, engine-like delay mixture (dense near field plus
  // occasional far events), several seeds.
  auto mixture = [](Xoshiro256& rng) -> Tick {
    const std::uint64_t r = rng.bounded(100);
    if (r < 50) return rng.bounded(16);        // cycle-scale, incl. delay 0
    if (r < 75) return 55;                     // equal ticks collide often
    if (r < 90) return 200 + rng.bounded(1200);
    if (r < 97) return 2000;
    return 35'000 + rng.bounded(400'000);      // beyond the default window
  };
  for (std::uint64_t seed : {1ull, 7ull, 1234ull}) {
    run_against_model(EventQueue::kDefaultWidthLog2, EventQueue::kDefaultBucketsLog2,
                      seed, 6000, mixture, /*expect_overflow=*/true);
  }
}

TEST(EventQueueProperty, EqualTickBurstsFireInInsertionOrder) {
  // Heavy tick collisions: only 8 distinct delays, so most buckets hold
  // multi-event FIFO runs.
  auto bursty = [](Xoshiro256& rng) -> Tick { return 8 * rng.bounded(8); };
  for (std::uint64_t seed : {3ull, 99ull}) {
    run_against_model(EventQueue::kDefaultWidthLog2, EventQueue::kDefaultBucketsLog2,
                      seed, 4000, bursty);
  }
}

TEST(EventQueueProperty, BucketBoundaryTicks) {
  // Delays sitting exactly on bucket edges (multiples of the 4 ns width),
  // one off either side, and exactly the window span — tiny 4 ns x 16
  // bucket geometry so every case is hit constantly.
  constexpr std::uint32_t kW = 2, kB = 4;
  constexpr Tick kWidth = Tick{1} << kW;
  constexpr Tick kWindow = Tick{1} << (kW + kB);
  auto boundary = [](Xoshiro256& rng) -> Tick {
    static constexpr Tick kEdges[] = {0,          1,           kWidth - 1, kWidth,
                                      kWidth + 1, kWindow - 1, kWindow,    kWindow + 1,
                                      3 * kWindow};
    return kEdges[rng.bounded(std::size(kEdges))];
  };
  for (std::uint64_t seed : {5ull, 42ull, 777ull}) {
    run_against_model(kW, kB, seed, 5000, boundary, /*expect_overflow=*/true);
  }
}

TEST(EventQueueProperty, TinyWindowOverflowPromotion) {
  // 4 ns x 8 buckets = 32 ns window: nearly every push overflows and must
  // be promoted back as the window slides.
  auto far = [](Xoshiro256& rng) -> Tick { return rng.bounded(500); };
  for (std::uint64_t seed : {11ull, 1337ull}) {
    run_against_model(2, 3, seed, 4000, far, /*expect_overflow=*/true);
  }
}

TEST(EventQueueProperty, NonMonotonePushesRewindWindow) {
  // Direct queue users may push earlier than the last popped tick; the
  // window must rewind without losing or reordering anything. Absolute
  // times, not now-relative, so pushes land arbitrarily far in the past.
  EventQueue q(2, 4);  // 4 ns x 16 = 64 ns window
  ModelQueue model;
  std::vector<std::uint64_t> fired;
  Xoshiro256 rng(21);
  std::uint64_t next_id = 0;
  for (int op = 0; op < 5000; ++op) {
    if (model.empty() || rng.bounded(100) < 55) {
      const Tick at = rng.bounded(4000);
      const std::uint64_t id = next_id++;
      q.push(at, [&fired, id] { fired.push_back(id); });
      model.push(at, id);
    } else {
      ASSERT_EQ(q.next_tick(), model.next_tick());
      const auto [model_tick, model_id] = model.pop();
      auto [tick, fn] = q.pop();
      ASSERT_EQ(tick, model_tick);
      fn();
      ASSERT_EQ(fired.back(), model_id);
    }
  }
  while (!model.empty()) {
    const auto [model_tick, model_id] = model.pop();
    auto [tick, fn] = q.pop();
    ASSERT_EQ(tick, model_tick);
    fn();
    ASSERT_EQ(fired.back(), model_id);
  }
  ASSERT_TRUE(q.empty());
}

// --- empty-queue hard checks ----------------------------------------------

TEST(EventQueueProperty, EmptyQueueAccessThrowsInEveryBuildType) {
  // next_tick/pop on an empty queue used to be assert-only (UB in Release);
  // they are hard std::logic_error throws now, so this test is meaningful
  // in both Debug and Release CI legs.
  EventQueue q;
  EXPECT_THROW(q.next_tick(), std::logic_error);
  EXPECT_THROW(q.pop(), std::logic_error);
  // Still empty and usable after the misuse.
  q.push(5, [] {});
  EXPECT_EQ(q.next_tick(), 5u);
  q.pop().second();
  EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(EventQueueProperty, TryPopDrainsWithoutThrowing) {
  EventQueue q;
  EXPECT_FALSE(q.try_pop().has_value());
  std::vector<Tick> ticks;
  q.push(20, [] {});
  q.push(10, [] {});
  while (auto ev = q.try_pop()) {
    ticks.push_back(ev->first);
    ev->second();
  }
  EXPECT_EQ(ticks, (std::vector<Tick>{10, 20}));
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_TRUE(q.empty());
}

// --- EventFn ---------------------------------------------------------------

TEST(EventFn, SmallTrivialCapturesStayInline) {
  int sink = 0;
  auto small = [&sink] { sink = 7; };
  static_assert(EventFn::stores_inline<decltype(small)>());
  EventFn fn(small);
  fn();
  EXPECT_EQ(sink, 7);
}

TEST(EventFn, OversizedCapturesFallBackToHeap) {
  std::array<std::uint64_t, 12> payload{};  // 96 B > 64 B inline budget
  payload[11] = 5;
  int sink = 0;
  auto big = [payload, &sink] { sink = static_cast<int>(payload[11]); };
  static_assert(!EventFn::stores_inline<decltype(big)>());
  EventFn fn(std::move(big));
  fn();
  EXPECT_EQ(sink, 5);
}

TEST(EventFn, AcceptsMoveOnlyCallables) {
  // std::function rejects this capture; EventFn must not.
  auto owned = std::make_unique<int>(99);
  int sink = 0;
  EventFn fn([owned = std::move(owned), &sink] { sink = *owned; });
  fn();
  EXPECT_EQ(sink, 99);
}

TEST(EventFn, MoveTransfersOwnershipExactlyOnce) {
  auto counter = std::make_shared<int>(0);
  EventFn a([counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);

  EventFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  EXPECT_EQ(counter.use_count(), 2);  // moved, not copied

  EventFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(*counter, 1);

  c = EventFn([counter] { *counter += 10; });  // assignment destroys old state
  EXPECT_EQ(counter.use_count(), 2);
  c();
  EXPECT_EQ(*counter, 11);
}

TEST(EventFn, DestructionReleasesCapturedState) {
  auto tracked = std::make_shared<int>(1);
  {
    EventFn fn([tracked] {});
    EXPECT_EQ(tracked.use_count(), 2);
  }
  EXPECT_EQ(tracked.use_count(), 1);
}

TEST(EventQueueProperty, QueueCarriesHeapAndMoveOnlyPayloads) {
  // The queue's internal Event moves must preserve every payload species:
  // trivially-copyable inline, non-trivial inline (move-only), and heap.
  EventQueue q(2, 3);  // tiny window forces overflow traffic too
  std::vector<int> fired;
  std::array<std::uint64_t, 12> big{};
  big[0] = 2;
  q.push(30, [&fired] { fired.push_back(1); });
  q.push(10, [&fired, big] { fired.push_back(static_cast<int>(big[0])); });
  q.push(500, [&fired, owned = std::make_unique<int>(3)] { fired.push_back(*owned); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{2, 1, 3}));
}

}  // namespace
}  // namespace fw::sim
