// Engine stress and edge cases: pathological buffer sizes, poll intervals,
// degenerate graphs, cache-clearing across partitions, hot-queue overflow
// fallback, and utilization accounting.
#include <gtest/gtest.h>

#include "accel/builder.hpp"
#include "accel/engine.hpp"
#include "graph/builder.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"

namespace fw::accel {
namespace {

partition::PartitionConfig small_pc(std::uint32_t per_partition = 1u << 20) {
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 4096;
  pc.subgraphs_per_partition = per_partition;
  pc.subgraphs_per_range = 8;
  return pc;
}

EngineOptions small_opts(std::uint64_t walks = 2000) {
  EngineOptions o;
  o.ssd = ssd::test_ssd_config();
  o.spec.num_walks = walks;
  o.spec.length = 6;
  o.spec.seed = 5;
  return o;
}

TEST(EngineStress, TinyRovingBufferStillCompletes) {
  // Roving buffer of one walk: chips stall constantly, channel polls must
  // drain them; conservation must survive the stalling.
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto opts = small_opts(3000);
  opts.accel.chip.roving_buffer_bytes = 16;  // ~1 walk
  auto engine = SimulationBuilder(pg).options(opts).build();
  EXPECT_EQ(engine.run().metrics.walks_completed, 3000u);
}

TEST(EngineStress, SlowPollIntervalStillCompletes) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto opts = small_opts(2000);
  opts.accel.roving_poll_interval = 500 * kUs;  // 250x the default
  auto engine = SimulationBuilder(pg).options(opts).build();
  const auto r = engine.run();
  EXPECT_EQ(r.metrics.walks_completed, 2000u);
}

TEST(EngineStress, FastPollIntervalStillCompletes) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto opts = small_opts(2000);
  opts.accel.roving_poll_interval = 100;  // 100 ns
  auto engine = SimulationBuilder(pg).options(opts).build();
  EXPECT_EQ(engine.run().metrics.walks_completed, 2000u);
}

TEST(EngineStress, SingleSlotChips) {
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto opts = small_opts(3000);
  opts.accel.chip.subgraph_buffer_bytes = 4096;  // exactly one slot
  auto engine = SimulationBuilder(pg).options(opts).build();
  EXPECT_EQ(engine.run().metrics.walks_completed, 3000u);
}

TEST(EngineStress, TinyHotQueuesFallBackToPwb) {
  // Hot queues that hold almost nothing: the full path must reroute via the
  // partition walk buffer instead of dropping walks.
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto opts = small_opts(5000);
  opts.accel.board.walk_queue_bytes = 64;
  opts.accel.channel.walk_queue_bytes = 64;
  auto engine = SimulationBuilder(pg).options(opts).build();
  EXPECT_EQ(engine.run().metrics.walks_completed, 5000u);
}

TEST(EngineStress, SelfLoopGraph) {
  // Every vertex loops to itself: walks never leave their subgraph.
  graph::GraphBuilder b(256);
  for (VertexId v = 0; v < 256; ++v) b.add_edge(v, v);
  const auto g = std::move(b).build();
  partition::PartitionedGraph pg(g, small_pc());
  auto opts = small_opts(1000);
  auto engine = SimulationBuilder(pg).options(opts).build();
  const auto r = engine.run();
  EXPECT_EQ(r.metrics.walks_completed, 1000u);
  EXPECT_EQ(r.metrics.total_hops, 6000u);  // all walks run the full length
}

TEST(EngineStress, AllDeadEndsGraph) {
  // No vertex has out-edges: every walk dies on its first update.
  graph::GraphBuilder b(64);
  b.add_edge(0, 1);  // one edge so the graph is non-empty
  const auto g = std::move(b).build();
  partition::PartitionedGraph pg(g, small_pc());
  auto opts = small_opts(500);
  auto engine = SimulationBuilder(pg).options(opts).build();
  const auto r = engine.run();
  EXPECT_EQ(r.metrics.walks_completed, 500u);
  EXPECT_GE(r.metrics.dead_ends, 400u);
}

TEST(EngineStress, StarGraphSerializesOnOneSubgraph) {
  // All edges point at one hub: extreme skew, one dense-or-hot subgraph
  // absorbs everything.
  graph::GraphBuilder b(4096);
  for (VertexId v = 1; v < 4096; ++v) {
    b.add_edge(v, 0);
    b.add_edge(0, v);
  }
  const auto g = std::move(b).build();
  partition::PartitionedGraph pg(g, small_pc());
  ASSERT_TRUE(pg.is_dense_vertex(0));  // 4095 out-edges > one 4 KiB block
  auto opts = small_opts(2000);
  auto engine = SimulationBuilder(pg).options(opts).build();
  const auto r = engine.run();
  EXPECT_EQ(r.metrics.walks_completed, 2000u);
  // Every other hop returns to the dense hub: pre-walking must fire.
  EXPECT_GT(r.metrics.dense_prewalks, 0u);
}

TEST(EngineStress, WalkLengthOne) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto opts = small_opts(2000);
  opts.spec.length = 1;
  auto engine = SimulationBuilder(pg).options(opts).build();
  const auto r = engine.run();
  EXPECT_EQ(r.metrics.walks_completed, 2000u);
  EXPECT_LE(r.metrics.total_hops, 2000u);
}

TEST(EngineStress, LongWalks) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto opts = small_opts(500);
  opts.spec.length = 64;
  auto engine = SimulationBuilder(pg).options(opts).build();
  const auto r = engine.run();
  EXPECT_EQ(r.metrics.walks_completed, 500u);
  EXPECT_LE(r.metrics.total_hops, 500u * 64);
}

TEST(EngineStress, QueryCachesClearAcrossPartitions) {
  // With multiple partitions, cache hit counts must reflect the clears:
  // run two configurations and confirm conservation + nonzero switches.
  const auto g = graph::make_dataset(graph::DatasetId::CW, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc(/*per_partition=*/8));
  auto opts = small_opts(4000);
  auto engine = SimulationBuilder(pg).options(opts).build();
  const auto r = engine.run();
  EXPECT_EQ(r.metrics.walks_completed, 4000u);
  EXPECT_GT(r.metrics.partition_switches, 0u);
  EXPECT_GT(r.metrics.range_foreigner_hints, 0u);  // channel foreigner check fires
}

TEST(EngineStress, UtilizationAccountingSane) {
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto engine = SimulationBuilder(pg).options(small_opts(10'000)).build();
  const auto r = engine.run();
  ASSERT_EQ(r.chip_utilization.size(),
            ssd::test_ssd_config().topo.total_chips());
  for (const double u : r.chip_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
  EXPECT_GT(r.mean_chip_utilization(), 0.0);
  EXPECT_GE(r.max_chip_utilization(), r.mean_chip_utilization());
}

TEST(EngineStress, BatchSizeOneMatchesConservation) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto opts = small_opts(1000);
  opts.accel.batch_walks = 1;
  auto engine = SimulationBuilder(pg).options(opts).build();
  EXPECT_EQ(engine.run().metrics.walks_completed, 1000u);
}

}  // namespace
}  // namespace fw::accel
