// Unit tests for src/common: RNG, Bloom filter, cache model, top-N list,
// statistics, table printer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/assoc_cache.hpp"
#include "common/bloom.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/topn.hpp"
#include "common/units.hpp"

namespace fw {
namespace {

// --- RNG -------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.bounded(bound), bound);
  }
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr std::uint64_t kBound = 10;
  constexpr int kTrials = 100'000;
  std::vector<std::uint64_t> counts(kBound, 0);
  for (int i = 0; i < kTrials; ++i) ++counts[rng.bounded(kBound)];
  std::vector<double> expected(kBound, 1.0 / kBound);
  // chi-square with 9 dof: 27.9 is p ~ 0.001
  EXPECT_LT(chi_square(counts, expected), 27.9);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(SplitMix, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const auto first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(first, sm2.next());
  EXPECT_NE(sm.next(), first);
}

// --- Bloom filter ------------------------------------------------------------

TEST(Bloom, NoFalseNegatives) {
  BloomFilter bf(1000, 0.01);
  for (std::uint64_t k = 0; k < 1000; ++k) bf.insert(k * 7919);
  for (std::uint64_t k = 0; k < 1000; ++k) EXPECT_TRUE(bf.may_contain(k * 7919));
}

TEST(Bloom, FalsePositiveRateNearTarget) {
  BloomFilter bf(10'000, 0.01);
  for (std::uint64_t k = 0; k < 10'000; ++k) bf.insert(k);
  int fp = 0;
  const int kProbes = 20'000;
  for (int i = 0; i < kProbes; ++i) {
    if (bf.may_contain(1'000'000 + i)) ++fp;
  }
  const double rate = static_cast<double>(fp) / kProbes;
  EXPECT_LT(rate, 0.03);  // target 1%, generous bound
  EXPECT_NEAR(bf.predicted_fpr(), 0.01, 0.01);
}

TEST(Bloom, EmptyFilterRejectsEverything) {
  BloomFilter bf(100);
  for (std::uint64_t k = 0; k < 1000; ++k) EXPECT_FALSE(bf.may_contain(k));
}

TEST(Bloom, SizeGrowsWithItems) {
  BloomFilter small(100), large(100'000);
  EXPECT_LT(small.byte_size(), large.byte_size());
}

// --- AssocCacheModel -----------------------------------------------------------

TEST(AssocCache, HitAfterInsert) {
  AssocCacheModel cache(1024, 16, 4);
  EXPECT_FALSE(cache.access(42));
  EXPECT_TRUE(cache.access(42));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(AssocCache, LruEvictionWithinSet) {
  // 1 set, 2 ways: third distinct key evicts the LRU.
  AssocCacheModel cache(32, 16, 2);
  ASSERT_EQ(cache.num_sets(), 1u);
  cache.access(1);
  cache.access(2);
  cache.access(1);       // 1 is now MRU
  cache.access(3);       // evicts 2
  EXPECT_TRUE(cache.access(1));
  EXPECT_FALSE(cache.access(2));
}

TEST(AssocCache, ClearInvalidatesAll) {
  AssocCacheModel cache(1024, 16);
  cache.access(7);
  cache.clear();
  EXPECT_FALSE(cache.access(7));
}

TEST(AssocCache, HotWorkingSetHitsOften) {
  AssocCacheModel cache(4096, 16, 4);  // 256 entries
  Xoshiro256 rng(3);
  for (int i = 0; i < 20'000; ++i) cache.access(rng.bounded(64));  // fits
  EXPECT_GT(cache.hit_rate(), 0.95);
}

TEST(AssocCache, ColdStreamMissesOften) {
  AssocCacheModel cache(1024, 16, 4);  // 64 entries
  for (std::uint64_t i = 0; i < 10'000; ++i) cache.access(i);
  EXPECT_LT(cache.hit_rate(), 0.01);
}

// --- TopNList ---------------------------------------------------------------------

TEST(TopN, KeepsOnlyBestN) {
  TopNList list(3);
  for (std::uint64_t i = 0; i < 10; ++i) list.update(i, static_cast<double>(i));
  EXPECT_EQ(list.size(), 3u);
  EXPECT_TRUE(list.contains(9));
  EXPECT_TRUE(list.contains(8));
  EXPECT_TRUE(list.contains(7));
  EXPECT_FALSE(list.contains(0));
}

TEST(TopN, PopBestReturnsDescending) {
  TopNList list(4);
  list.update(1, 5.0);
  list.update(2, 9.0);
  list.update(3, 7.0);
  EXPECT_EQ(list.pop_best()->first, 2u);
  EXPECT_EQ(list.pop_best()->first, 3u);
  EXPECT_EQ(list.pop_best()->first, 1u);
  EXPECT_FALSE(list.pop_best().has_value());
}

TEST(TopN, UpdateExistingChangesScore) {
  TopNList list(2);
  list.update(1, 1.0);
  list.update(2, 2.0);
  list.update(1, 10.0);
  EXPECT_EQ(list.peek_best()->first, 1u);
  EXPECT_EQ(list.size(), 2u);
}

TEST(TopN, RemoveDeletes) {
  TopNList list(3);
  list.update(5, 1.0);
  list.remove(5);
  EXPECT_TRUE(list.empty());
  list.remove(5);  // idempotent
}

TEST(TopN, LowScoreDoesNotEnterFullList) {
  TopNList list(2);
  list.update(1, 10.0);
  list.update(2, 20.0);
  EXPECT_FALSE(list.update(3, 5.0));
  EXPECT_FALSE(list.contains(3));
}

// --- Stats -------------------------------------------------------------------------

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);  // sample stddev
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(Percentile, Median) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
}

TEST(PercentileNearestRank, ReturnsObservedOrderStatistics) {
  // ceil(p/100 * n)-th order statistic: every result is a sample member.
  std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(v, 20), 10.0);   // ceil(1) = 1st
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(v, 50), 30.0);   // ceil(2.5) = 3rd
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(v, 90), 50.0);   // ceil(4.5) = 5th
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(v, 100), 50.0);
  // Unlike linear interpolation, p95 of {10..50} is never an invented 48.
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(v, 95), 50.0);
}

TEST(PercentileNearestRank, TinySamplesAreWellBehaved) {
  EXPECT_DOUBLE_EQ(percentile_nearest_rank({}, 50), 0.0);  // empty -> 0
  std::vector<double> one{7.0};
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile_nearest_rank(one, p), 7.0);
  }
  std::vector<double> two{3.0, 9.0};  // unsorted input is fine
  std::reverse(two.begin(), two.end());
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(two, 50), 3.0);  // ceil(1) = min
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(two, 51), 9.0);  // ceil(1.02) = max
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(two, 99), 9.0);
}

TEST(PercentileNearestRank, ClampsOutOfRangeP) {
  std::vector<double> v{1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(v, -10), 1.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(v, 250), 3.0);
}

TEST(Geomean, Basic) {
  std::vector<double> v{1.0, 4.0, 16.0};
  EXPECT_NEAR(geomean(v), 4.0, 1e-9);
}

TEST(Geomean, IgnoresNonPositive) {
  std::vector<double> v{0.0, -3.0, 4.0, 4.0};
  EXPECT_NEAR(geomean(v), 4.0, 1e-9);
}

TEST(ChiSquare, UniformFitIsSmall) {
  std::vector<std::uint64_t> obs{100, 101, 99, 100};
  std::vector<double> exp(4, 0.25);
  EXPECT_LT(chi_square(obs, exp), 1.0);
}

TEST(Log2Histogram, BucketsByMagnitude) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.buckets()[0], 1u);   // 0
  EXPECT_EQ(h.buckets()[1], 1u);   // 1
  EXPECT_EQ(h.buckets()[2], 2u);   // 2..3
  EXPECT_EQ(h.buckets()[11], 1u);  // 1024
}

// --- Units / table -----------------------------------------------------------

TEST(Units, TransferTime) {
  EXPECT_EQ(transfer_time_ns(1'000'000, 1000), 1'000'000u);  // 1 MB @ 1 GB/s = 1 ms
  EXPECT_EQ(transfer_time_ns(0, 333), 0u);
  EXPECT_EQ(transfer_time_ns(333, 333), 1000u);  // 333 B @ 333 MB/s = 1 us
  EXPECT_EQ(transfer_time_ns(1, 1000), 1u);      // rounds up
}

TEST(Units, Bandwidth) {
  EXPECT_DOUBLE_EQ(bandwidth_mb_per_s(1'000'000, 1'000'000), 1000.0);
  EXPECT_DOUBLE_EQ(bandwidth_mb_per_s(100, 0), 0.0);
}

TEST(TextTable, PrintsAlignedRows) {
  TextTable t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(out.find("| 333 | 4  |"), std::string::npos);
}

TEST(TextTable, Formatters) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::bytes(2048), "2.00 KiB");
  EXPECT_EQ(TextTable::time_ns(1'500'000), "1.500 ms");
}

// --- OptionSet -------------------------------------------------------------

/// Parse the given argv tail against a fresh `--walks` u64 / `--rate` u32
/// option set; returns the parsed values.
struct ParsedOpts {
  std::uint64_t walks = 11;
  std::uint32_t rate = 22;
};

ParsedOpts parse_opts(std::initializer_list<const char*> args) {
  ParsedOpts p;
  OptionSet os;
  os.opt("--walks", &p.walks, "N", "walk count")
      .opt("--rate", &p.rate, "R", "rate");
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  os.parse(static_cast<int>(argv.size()), argv.data());
  return p;
}

TEST(OptionSet, ParsesUnsignedValuesInBothSpellings) {
  const ParsedOpts a = parse_opts({"--walks", "500", "--rate", "7"});
  EXPECT_EQ(a.walks, 500u);
  EXPECT_EQ(a.rate, 7u);
  const ParsedOpts b = parse_opts({"--walks=18446744073709551615"});
  EXPECT_EQ(b.walks, 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(b.rate, 22u);  // untouched default
}

TEST(OptionSet, RejectsNegativeUnsignedValues) {
  // Regression: std::stoull accepts "-5" and wraps it to 2^64-5, so a typo
  // like `--walks -5` used to silently request ~1.8e19 walks. Any '-' in an
  // unsigned value must be a hard parse error in both option spellings.
  EXPECT_THROW(parse_opts({"--walks", "-5"}), std::invalid_argument);
  EXPECT_THROW(parse_opts({"--walks=-5"}), std::invalid_argument);
  EXPECT_THROW(parse_opts({"--rate", "-1"}), std::invalid_argument);
  EXPECT_THROW(parse_opts({"--walks", "5-5"}), std::invalid_argument);
  EXPECT_THROW(parse_opts({"--walks", " -5"}), std::invalid_argument);
}

TEST(OptionSet, ToU64RejectsMalformedInput) {
  EXPECT_EQ(OptionSet::to_u64("--x", "42"), 42u);
  EXPECT_THROW(OptionSet::to_u64("--x", "-1"), std::invalid_argument);
  EXPECT_THROW(OptionSet::to_u64("--x", ""), std::invalid_argument);
  EXPECT_THROW(OptionSet::to_u64("--x", "12abc"), std::invalid_argument);
  EXPECT_THROW(OptionSet::to_u64("--x", "abc"), std::invalid_argument);
}

TEST(OptionSet, StillRejectsUnknownAndValuelessOptions) {
  EXPECT_THROW(parse_opts({"--bogus", "1"}), std::invalid_argument);
  EXPECT_THROW(parse_opts({"--walks"}), std::invalid_argument);
}

}  // namespace
}  // namespace fw
