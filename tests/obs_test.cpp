// Observability layer: counter registry semantics, nested-JSON rendering,
// Chrome trace_event output (syntax, metadata, unit conversion), and the
// engine/FTL integration that --trace-out / --metrics-out rely on.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <string_view>

#include "accel/builder.hpp"
#include "accel/engine.hpp"
#include "graph/datasets.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "ssd/config.hpp"
#include "ssd/flash_array.hpp"
#include "ssd/ftl.hpp"

namespace fw::obs {
namespace {

// --- mini JSON validator ------------------------------------------------------
//
// Recursive-descent syntax checker for the subset the emitters produce
// (objects, arrays, strings with \" and \\ escapes, unsigned/decimal
// numbers, true/false/null). Certifies well-formedness without pulling in a
// JSON library.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  bool string() {
    if (!eat('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return eat('"');
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    if (pos_ == start) return false;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      const std::size_t frac = pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
      if (pos_ == frac) return false;
    }
    return true;
  }
  bool object() {
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    do {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
    } while (eat(','));
    return eat('}');
  }
  bool array() {
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    do {
      skip_ws();
      if (!value()) return false;
      skip_ws();
    } while (eat(','));
    return eat(']');
  }
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

bool json_valid(const std::string& text) { return JsonChecker(text).valid(); }

TEST(JsonValidator, SelfCheck) {
  EXPECT_TRUE(json_valid(R"({"a":[1,2.500,"x\"y"],"b":{"c":true,"d":null}})"));
  EXPECT_FALSE(json_valid(R"({"a":1)"));
  EXPECT_FALSE(json_valid(R"({"a":1} trailing)"));
  EXPECT_FALSE(json_valid(R"({"a":.5})"));
  EXPECT_FALSE(json_valid(R"([1,])"));
}

// --- CounterRegistry ----------------------------------------------------------

TEST(CounterRegistry, GetOrCreateReturnsStableReference) {
  CounterRegistry reg;
  Counter& a = reg.counter("chip.0.updates");
  a.add(3);
  // Creating more counters must not invalidate the first handle.
  for (int i = 0; i < 100; ++i) reg.counter("filler." + std::to_string(i));
  Counter& again = reg.counter("chip.0.updates");
  EXPECT_EQ(&a, &again);
  EXPECT_EQ(a.value(), 3u);
  EXPECT_EQ(reg.size(), 101u);
}

TEST(CounterRegistry, FindDoesNotCreate) {
  CounterRegistry reg;
  EXPECT_EQ(reg.find("missing"), nullptr);
  EXPECT_EQ(reg.size(), 0u);
  reg.counter("present").set(9);
  ASSERT_NE(reg.find("present"), nullptr);
  EXPECT_EQ(reg.find("present")->value(), 9u);
}

TEST(CounterRegistry, SnapshotSortedByName) {
  CounterRegistry reg;
  reg.counter("z.last").add(1);
  reg.counter("a.first").add(2);
  reg.counter("m.middle").add(3);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, "a.first");
  EXPECT_EQ(snap[1].first, "m.middle");
  EXPECT_EQ(snap[2].first, "z.last");
  EXPECT_EQ(snap[0].second, 2u);
}

TEST(CounterRegistry, WriteJsonNestsDottedNames) {
  CounterRegistry reg;
  reg.counter("chip.0.updates").set(5);
  reg.counter("chip.1.updates").set(7);
  reg.counter("ftl.gc.page_moves").set(2);
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_EQ(json,
            R"({"chip":{"0":{"updates":5},"1":{"updates":7}},"ftl":{"gc":{"page_moves":2}}})");
}

TEST(CounterRegistry, LeafAndPrefixCollisionUsesValueKey) {
  // "a" is both a counter and a namespace: its own value must survive under
  // the reserved "value" key inside the shared object.
  CounterRegistry reg;
  reg.counter("a").set(1);
  reg.counter("a.b").set(2);
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_EQ(json, R"({"a":{"value":1,"b":2}})");
}

TEST(CounterRegistry, EmptyRegistryIsEmptyObject) {
  CounterRegistry reg;
  std::ostringstream os;
  reg.write_json(os);
  EXPECT_EQ(os.str(), "{}");
}

TEST(CounterRegistry, SnapshotRoundTripsThroughFreeFunction) {
  CounterRegistry reg;
  reg.counter("x.a").set(1);
  reg.counter("x.b").set(2);
  std::ostringstream direct, via_snapshot;
  reg.write_json(direct);
  write_counters_json(via_snapshot, reg.snapshot());
  EXPECT_EQ(direct.str(), via_snapshot.str());
}

// --- TraceRecorder ------------------------------------------------------------

TEST(TraceRecorder, EmitsProcessAndThreadMetadata) {
  TraceRecorder trace;
  const auto t0 = trace.register_track("chip", "chip.0");
  const auto t1 = trace.register_track("chip", "chip.1");
  const auto t2 = trace.register_track("board", "guider");
  EXPECT_EQ(trace.num_tracks(), 3u);
  trace.complete(t0, "update", 0, 100);
  trace.complete(t1, "update", 0, 100);
  trace.complete(t2, "guide", 0, 100);
  std::ostringstream os;
  trace.write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(json_valid(json)) << json;
  // One process_name per unique process, one thread_name per track.
  EXPECT_NE(json.find(R"("name":"process_name","args":{"name":"chip"})"),
            std::string::npos);
  EXPECT_NE(json.find(R"("name":"process_name","args":{"name":"board"})"),
            std::string::npos);
  EXPECT_NE(json.find(R"("name":"thread_name","args":{"name":"chip.1"})"),
            std::string::npos);
  EXPECT_NE(json.find(R"("name":"thread_name","args":{"name":"guider"})"),
            std::string::npos);
  // Both chip tracks share a pid; the board track does not.
  EXPECT_EQ(json.find(R"("args":{"name":"chip"})"), json.rfind(R"("args":{"name":"chip"})"));
}

TEST(TraceRecorder, SpanTimesConvertToMicrosecondsWithNsPrecision) {
  TraceRecorder trace;
  const auto track = trace.register_track("chip", "chip.0");
  trace.complete(track, "update", 1500, 4750);  // 1.5 us start, 3.25 us long
  trace.complete(track, "whole", 2000, 5000);   // integral microseconds
  std::ostringstream os;
  trace.write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find(R"("ts":1.500,"dur":3.250)"), std::string::npos) << json;
  EXPECT_NE(json.find(R"("ts":2,"dur":3)"), std::string::npos) << json;
}

TEST(TraceRecorder, SpanArgsAndInstants) {
  TraceRecorder trace;
  const auto track = trace.register_track("channel", "channel.0");
  trace.complete(track, "rove", 10, 20, 17, "walks");
  trace.instant(track, "wakeup", 30);
  std::ostringstream os;
  trace.write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find(R"("args":{"walks":17})"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"i")"), std::string::npos);
}

TEST(TraceRecorder, CounterSamplesLiveInOwnProcess) {
  TraceRecorder trace;
  trace.counter("engine.walks_completed", 1000, 42);
  trace.counter("engine.walks_completed", 2000, 84);
  std::ostringstream os;
  trace.write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find(R"("name":"process_name","args":{"name":"counters"})"),
            std::string::npos);
  EXPECT_NE(json.find(R"("ph":"C","pid":0,"name":"engine.walks_completed","ts":1,"args":{"value":42})"),
            std::string::npos);
}

TEST(TraceRecorder, EmptyTraceIsValidJson) {
  TraceRecorder trace;
  std::ostringstream os;
  trace.write_json(os);
  EXPECT_TRUE(json_valid(os.str()));
  EXPECT_EQ(trace.num_events(), 0u);
}

// --- FTL GC tracing -----------------------------------------------------------

TEST(FtlTrace, GcEpisodeEmitsSpanAndCounters) {
  ssd::SsdConfig cfg = ssd::test_ssd_config();
  cfg.topo.channels = 1;
  cfg.topo.chips_per_channel = 1;
  cfg.topo.dies_per_chip = 1;
  cfg.topo.planes_per_die = 1;
  cfg.topo.blocks_per_plane = 4;
  cfg.topo.pages_per_block = 4;
  ssd::FlashArray flash(cfg);
  ssd::Ftl ftl(flash, /*reserved_blocks_per_plane=*/1);
  CounterRegistry reg;
  TraceRecorder trace;
  ftl.attach_observability(&reg, &trace);
  // Hammer 4 LPNs until space-pressure GC must run.
  for (int round = 0; round < 20; ++round) {
    for (std::uint64_t lpn = 0; lpn < 4; ++lpn) ftl.write_page(0, lpn);
  }
  ASSERT_GT(ftl.stats().gc_erases, 0u);
  ASSERT_NE(reg.find("ftl.gc.erases"), nullptr);
  EXPECT_EQ(reg.find("ftl.gc.erases")->value(), ftl.stats().gc_erases);
  EXPECT_EQ(reg.find("ftl.gc.page_moves")->value(), ftl.stats().gc_page_moves);
  EXPECT_EQ(reg.find("ftl.host_page_writes")->value(), ftl.stats().host_page_writes);
  std::ostringstream os;
  trace.write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find(R"("name":"gc")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"process_name","args":{"name":"ftl"})"),
            std::string::npos);
  EXPECT_NE(json.find("page_moves"), std::string::npos);
}

// --- engine integration -------------------------------------------------------

TEST(EngineTrace, RunProducesSpansForAllUnitLevels) {
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 4096;
  pc.subgraphs_per_partition = 1u << 20;
  pc.subgraphs_per_range = 8;
  const partition::PartitionedGraph pg(g, pc);
  accel::EngineOptions opts;
  opts.ssd = ssd::test_ssd_config();
  opts.spec.num_walks = 2000;
  opts.spec.length = 6;
  opts.spec.seed = 99;
  TraceRecorder trace;
  opts.trace = &trace;
  auto engine = accel::SimulationBuilder(pg).options(opts).build();
  const auto r = engine.run();
  EXPECT_EQ(r.metrics.walks_completed, 2000u);
  EXPECT_GT(trace.num_events(), 0u);

  std::ostringstream os;
  trace.write_json(os);
  const std::string json = os.str();
  ASSERT_TRUE(json_valid(json));
  // Spans for every accelerator level of the hierarchy.
  EXPECT_NE(json.find(R"("args":{"name":"chip"})"), std::string::npos);
  EXPECT_NE(json.find(R"("args":{"name":"channel"})"), std::string::npos);
  EXPECT_NE(json.find(R"("args":{"name":"guider"})"), std::string::npos);
  EXPECT_NE(json.find(R"("args":{"name":"updater"})"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"sg_load")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"guide")"), std::string::npos);

  // The run's counter snapshot feeds --metrics-out: spot-check hierarchy
  // names and agreement with the run metrics.
  ASSERT_FALSE(r.counters.empty());
  std::uint64_t walks = 0, chip0 = 0;
  bool saw_chip0 = false;
  for (const auto& [name, value] : r.counters) {
    if (name == "engine.walks_completed") walks = value;
    if (name == "chip.0.updates") {
      chip0 = value;
      saw_chip0 = true;
    }
  }
  EXPECT_EQ(walks, r.metrics.walks_completed);
  EXPECT_TRUE(saw_chip0);
  (void)chip0;
  std::ostringstream cos;
  write_counters_json(cos, r.counters);
  EXPECT_TRUE(json_valid(cos.str())) << cos.str();
}

TEST(EngineTrace, DisabledTracingLeavesResultIdentical) {
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 4096;
  pc.subgraphs_per_partition = 1u << 20;
  pc.subgraphs_per_range = 8;
  const partition::PartitionedGraph pg(g, pc);
  auto opts = [&] {
    accel::EngineOptions o;
    o.ssd = ssd::test_ssd_config();
    o.spec.num_walks = 1000;
    o.spec.length = 6;
    o.spec.seed = 7;
    return o;
  };
  auto with = opts();
  TraceRecorder trace;
  with.trace = &trace;
  auto e1 = accel::SimulationBuilder(pg).options(with).build();
  auto e2 = accel::SimulationBuilder(pg).options(opts()).build();
  const auto r1 = e1.run();
  const auto r2 = e2.run();
  EXPECT_EQ(r1.exec_time, r2.exec_time);
  EXPECT_EQ(r1.metrics.total_hops, r2.metrics.total_hops);
  EXPECT_EQ(r1.counters, r2.counters);
  EXPECT_GT(trace.num_events(), 0u);
}

}  // namespace
}  // namespace fw::obs
