// Multithreaded host walker: thread-count invariance (walk-exact), path
// validity, and agreement with the single-threaded reference.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/datasets.hpp"
#include "rw/parallel_walker.hpp"

namespace fw::rw {
namespace {

TEST(ParallelWalker, ThreadCountInvariant) {
  // Per-walk RNG streams: any thread count must produce byte-identical
  // results, including recorded paths.
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  WalkSpec spec;
  spec.num_walks = 10'000;
  spec.length = 6;
  spec.seed = 12;

  ParallelWalkOptions one;
  one.threads = 1;
  one.record_paths = true;
  ParallelWalkOptions four;
  four.threads = 4;
  four.record_paths = true;

  const auto r1 = run_walks_parallel(g, spec, one);
  const auto r4 = run_walks_parallel(g, spec, four);
  EXPECT_EQ(r1.summary.total_hops, r4.summary.total_hops);
  EXPECT_EQ(r1.summary.dead_ends, r4.summary.dead_ends);
  EXPECT_EQ(r1.summary.visit_counts, r4.summary.visit_counts);
  EXPECT_EQ(r1.paths, r4.paths);
  EXPECT_EQ(r4.threads_used, 4u);
}

TEST(ParallelWalker, SerialEquivalenceAcrossOneTwoEightThreads) {
  // The parallel executor must be walk-exact against itself for any thread
  // count (1, 2, and 8 here) with a fixed seed. The single-threaded serial
  // reference `run_walks` advances one master RNG stream hop by hop, while
  // the parallel executor derives one stream per walk — so the two agree in
  // distribution (checked below via total hops) but intentionally not
  // walk-for-walk; see parallel_walker.hpp.
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  WalkSpec spec;
  spec.num_walks = 8'000;
  spec.length = 6;
  spec.seed = 77;

  ParallelWalkResult runs[3];
  const std::uint32_t thread_counts[3] = {1, 2, 8};
  for (int i = 0; i < 3; ++i) {
    ParallelWalkOptions opts;
    opts.threads = thread_counts[i];
    opts.record_paths = true;
    runs[i] = run_walks_parallel(g, spec, opts);
    EXPECT_EQ(runs[i].threads_used, thread_counts[i]);
  }
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(runs[0].summary.total_hops, runs[i].summary.total_hops);
    EXPECT_EQ(runs[0].summary.dead_ends, runs[i].summary.dead_ends);
    EXPECT_EQ(runs[0].summary.visit_counts, runs[i].summary.visit_counts);
    EXPECT_EQ(runs[0].paths, runs[i].paths);
  }
  const auto ref = run_walks(g, spec);
  EXPECT_EQ(ref.walks, runs[0].summary.walks);
  const auto rt = static_cast<double>(ref.total_hops);
  EXPECT_NEAR(static_cast<double>(runs[0].summary.total_hops), rt, 0.05 * rt);
}

TEST(ParallelWalker, PathsAreValidWalks) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  WalkSpec spec;
  spec.num_walks = 2000;
  spec.length = 6;
  ParallelWalkOptions opts;
  opts.threads = 2;
  opts.record_paths = true;
  const auto r = run_walks_parallel(g, spec, opts);
  ASSERT_EQ(r.paths.size(), 2000u);
  std::uint64_t hops = 0;
  for (const auto& path : r.paths) {
    for (std::size_t i = 1; i < path.size(); ++i) {
      const auto nbrs = g.neighbors(path[i - 1]);
      ASSERT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), path[i]));
    }
    hops += path.size() - 1;
  }
  EXPECT_EQ(hops, r.summary.total_hops);
}

TEST(ParallelWalker, StatisticallyMatchesReference) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  WalkSpec spec;
  spec.num_walks = 20'000;
  spec.length = 6;
  spec.seed = 5;
  const auto ref = run_walks(g, spec);
  ParallelWalkOptions opts;
  opts.threads = 3;
  const auto par = run_walks_parallel(g, spec, opts);
  const auto rt = static_cast<double>(ref.total_hops);
  EXPECT_NEAR(static_cast<double>(par.summary.total_hops), rt, 0.05 * rt);
}

TEST(ParallelWalker, AllStartModes) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  for (const auto mode : {StartMode::kAllVertices, StartMode::kUniformRandom,
                          StartMode::kSingleSource}) {
    WalkSpec spec;
    spec.start_mode = mode;
    spec.num_walks = 1000;
    spec.source = 3;
    ParallelWalkOptions opts;
    opts.threads = 2;
    const auto r = run_walks_parallel(g, spec, opts);
    const std::uint64_t expected =
        mode == StartMode::kAllVertices ? g.num_vertices() : 1000u;
    EXPECT_EQ(r.summary.walks, expected);
  }
}

TEST(ParallelWalker, SecondOrderAndRestartModesWork) {
  const auto g = graph::make_dataset(graph::DatasetId::CW, graph::Scale::kTest);
  WalkSpec spec;
  spec.num_walks = 3000;
  spec.length = 6;
  spec.dead_end = WalkSpec::DeadEnd::kRestart;
  spec.second_order.enabled = true;
  spec.second_order.p = 0.5;
  ParallelWalkOptions opts;
  opts.threads = 2;
  const auto r = run_walks_parallel(g, spec, opts);
  EXPECT_EQ(r.summary.dead_ends, 0u);
  EXPECT_GT(r.summary.total_hops, 0u);
}

TEST(ParallelWalker, ZeroWalks) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  WalkSpec spec;
  spec.num_walks = 0;
  const auto r = run_walks_parallel(g, spec);
  EXPECT_EQ(r.summary.walks, 0u);
  EXPECT_EQ(r.summary.total_hops, 0u);
}

}  // namespace
}  // namespace fw::rw
