// Integration tests for the FlashWalker engine: walk conservation,
// determinism, statistical equivalence with the host reference, feature
// toggles (Fig 9 machinery), dense pre-walking, partition rotation, walk
// writes, and timeline recording.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "accel/builder.hpp"
#include "accel/engine.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "rw/algorithms.hpp"

namespace fw::accel {
namespace {

partition::PartitionConfig small_pc(std::uint32_t per_partition = 1u << 20) {
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 4096;
  pc.subgraphs_per_partition = per_partition;
  pc.subgraphs_per_range = 8;
  return pc;
}

EngineOptions small_opts(std::uint64_t walks = 2000) {
  EngineOptions o;
  o.ssd = ssd::test_ssd_config();
  o.spec.num_walks = walks;
  o.spec.length = 6;
  o.spec.seed = 99;
  return o;
}

class EngineBasic : public ::testing::Test {
 protected:
  EngineBasic()
      : g_(graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest)),
        pg_(g_, small_pc()) {}
  graph::CsrGraph g_;
  partition::PartitionedGraph pg_;
};

TEST_F(EngineBasic, AllWalksComplete) {
  auto engine = SimulationBuilder(pg_).options(small_opts()).build();
  const auto r = engine.run();
  EXPECT_EQ(r.metrics.walks_started, 2000u);
  EXPECT_EQ(r.metrics.walks_completed, 2000u);
  EXPECT_GT(r.exec_time, 0u);
}

TEST_F(EngineBasic, HopAccountingConsistent) {
  auto engine = SimulationBuilder(pg_).options(small_opts()).build();
  const auto r = engine.run();
  // Every walk takes at most `length` hops; dead ends take fewer.
  EXPECT_LE(r.metrics.total_hops, 2000u * 6);
  EXPECT_GE(r.metrics.total_hops + r.metrics.dead_ends * 6, 2000u);
  // Visit counts sum to hop count.
  const auto visits =
      std::accumulate(r.visit_counts.begin(), r.visit_counts.end(), 0ull);
  EXPECT_EQ(visits, r.metrics.total_hops);
  // Updates across the three levels cover all hops + completions.
  EXPECT_GE(r.metrics.chip_updates + r.metrics.channel_updates + r.metrics.board_updates,
            r.metrics.total_hops);
}

TEST_F(EngineBasic, DeterministicAcrossRuns) {
  auto e1 = SimulationBuilder(pg_).options(small_opts()).build();
  auto e2 = SimulationBuilder(pg_).options(small_opts()).build();
  const auto r1 = e1.run();
  const auto r2 = e2.run();
  EXPECT_EQ(r1.exec_time, r2.exec_time);
  EXPECT_EQ(r1.metrics.total_hops, r2.metrics.total_hops);
  EXPECT_EQ(r1.visit_counts, r2.visit_counts);
  EXPECT_EQ(r1.flash_read_bytes, r2.flash_read_bytes);
}

TEST_F(EngineBasic, SeedChangesTrajectory) {
  auto o1 = small_opts();
  auto o2 = small_opts();
  o2.spec.seed = 123456;
  auto e1 = SimulationBuilder(pg_).options(o1).build();
  auto e2 = SimulationBuilder(pg_).options(o2).build();
  EXPECT_NE(e1.run().visit_counts, e2.run().visit_counts);
}

TEST_F(EngineBasic, VisitDistributionMatchesHostReference) {
  // The engine executes real hops: its stationary visit distribution must
  // match the host reference within sampling noise. Compare top-vertex
  // visit shares.
  auto opts = small_opts(20'000);
  auto engine = SimulationBuilder(pg_).options(opts).build();
  const auto r = engine.run();

  rw::WalkSpec ref_spec = opts.spec;
  const auto ref = rw::run_walks(g_, ref_spec);

  const double engine_total = static_cast<double>(r.metrics.total_hops);
  const double ref_total = static_cast<double>(ref.total_hops);
  ASSERT_GT(engine_total, 0);
  ASSERT_GT(ref_total, 0);

  // Compare visit share of the 20 most-visited (by reference) vertices.
  std::vector<VertexId> order(g_.num_vertices());
  std::iota(order.begin(), order.end(), 0u);
  std::partial_sort(order.begin(), order.begin() + 20, order.end(),
                    [&](VertexId a, VertexId b) {
                      return ref.visit_counts[a] > ref.visit_counts[b];
                    });
  for (int i = 0; i < 20; ++i) {
    const VertexId v = order[i];
    const double engine_share = r.visit_counts[v] / engine_total;
    const double ref_share = ref.visit_counts[v] / ref_total;
    EXPECT_NEAR(engine_share, ref_share, 0.25 * ref_share + 0.002)
        << "vertex " << v;
  }
}

TEST_F(EngineBasic, DensePrewalkingHappens) {
  auto engine = SimulationBuilder(pg_).options(small_opts()).build();
  // The FS test graph at 4 KB blocks has dense vertices.
  bool any_dense = false;
  for (const auto& sg : pg_.subgraphs()) any_dense |= sg.dense;
  ASSERT_TRUE(any_dense);
  const auto r = engine.run();
  EXPECT_GT(r.metrics.dense_prewalks, 0u);
  EXPECT_GT(r.metrics.bloom_lookups, 0u);
}

TEST_F(EngineBasic, InStorageReadsDominateChannelTraffic) {
  // The design's core claim: chip-level loads avoid the channel bus, so
  // bytes read at the planes exceed bytes moved over channels.
  auto engine = SimulationBuilder(pg_).options(small_opts(10'000)).build();
  const auto r = engine.run();
  EXPECT_GT(r.flash_read_bytes, r.channel_bytes);
}

TEST_F(EngineBasic, TimelineRecordsProgress) {
  auto opts = small_opts(5000);
  opts.timeline_interval = 50 * kUs;
  auto engine = SimulationBuilder(pg_).options(opts).build();
  const auto r = engine.run();
  ASSERT_GT(r.timeline.size(), 1u);
  // Progress is monotone and ends at 100%.
  for (std::size_t i = 1; i < r.timeline.size(); ++i) {
    EXPECT_GE(r.timeline[i].walks_done_pct, r.timeline[i - 1].walks_done_pct);
  }
  EXPECT_NEAR(r.timeline.back().walks_done_pct, 100.0, 20.0);
}

TEST_F(EngineBasic, ZeroWalksFinishInstantly) {
  auto engine = SimulationBuilder(pg_).options(small_opts(0)).build();
  const auto r = engine.run();
  EXPECT_EQ(r.metrics.walks_completed, 0u);
  EXPECT_EQ(r.exec_time, 0u);
}

TEST_F(EngineBasic, SingleSourceMode) {
  auto opts = small_opts(1000);
  opts.spec.start_mode = rw::StartMode::kSingleSource;
  opts.spec.source = 5;
  auto engine = SimulationBuilder(pg_).options(opts).build();
  const auto r = engine.run();
  EXPECT_EQ(r.metrics.walks_completed, 1000u);
}

TEST_F(EngineBasic, AllVerticesMode) {
  auto opts = small_opts();
  opts.spec.start_mode = rw::StartMode::kAllVertices;
  auto engine = SimulationBuilder(pg_).options(opts).build();
  const auto r = engine.run();
  EXPECT_EQ(r.metrics.walks_started, g_.num_vertices());
  EXPECT_EQ(r.metrics.walks_completed, g_.num_vertices());
}

TEST_F(EngineBasic, StopProbabilityTermination) {
  auto opts = small_opts(3000);
  opts.spec.stop_prob = 0.5;
  opts.spec.length = 20;
  auto engine = SimulationBuilder(pg_).options(opts).build();
  const auto r = engine.run();
  EXPECT_EQ(r.metrics.walks_completed, 3000u);
  // Expected hops/walk ≈ 1 with stop 0.5 (plus dead ends cut more).
  EXPECT_LT(r.metrics.total_hops, 3000u * 5);
}

// --- feature toggles (Fig 9 machinery) ----------------------------------------

struct FeatureCase {
  bool wq, hs, ss;
  const char* name;
};

class EngineFeatures : public ::testing::TestWithParam<FeatureCase> {
 protected:
  EngineFeatures()
      : g_(graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest)),
        pg_(g_, small_pc()) {}
  graph::CsrGraph g_;
  partition::PartitionedGraph pg_;
};

TEST_P(EngineFeatures, CompletesAndConserves) {
  auto opts = small_opts(4000);
  opts.accel.features.walk_query = GetParam().wq;
  opts.accel.features.hot_subgraphs = GetParam().hs;
  opts.accel.features.subgraph_scheduling = GetParam().ss;
  auto engine = SimulationBuilder(pg_).options(opts).build();
  const auto r = engine.run();
  EXPECT_EQ(r.metrics.walks_completed, 4000u);
  if (!GetParam().hs) {
    EXPECT_EQ(r.metrics.channel_updates, 0u);
    EXPECT_EQ(r.metrics.board_updates, 0u);
    EXPECT_EQ(r.metrics.hot_subgraph_loads, 0u);
  }
  if (!GetParam().wq) {
    EXPECT_EQ(r.metrics.query_cache_hits, 0u);
    EXPECT_EQ(r.metrics.range_searches, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Toggles, EngineFeatures,
    ::testing::Values(FeatureCase{false, false, false, "none"},
                      FeatureCase{true, false, false, "wq"},
                      FeatureCase{true, true, false, "wq_hs"},
                      FeatureCase{true, true, true, "all"},
                      FeatureCase{false, true, true, "hs_ss"},
                      FeatureCase{false, false, true, "ss"}),
    [](const auto& param_info) { return param_info.param.name; });

TEST(EngineFeaturesExtra, WalkQueryReducesSearchSteps) {
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto base_opts = small_opts(5000);
  base_opts.accel.features = {false, false, false};
  auto wq_opts = small_opts(5000);
  wq_opts.accel.features = {true, false, false};
  auto base = SimulationBuilder(pg).options(base_opts).build();
  auto wq = SimulationBuilder(pg).options(wq_opts).build();
  const auto rb = base.run();
  const auto rw_ = wq.run();
  // WQ replaces full-table searches with range-limited + cached ones.
  EXPECT_LT(rw_.metrics.mapping_search_steps, rb.metrics.mapping_search_steps);
  EXPECT_GT(rw_.metrics.query_cache_hits + rw_.metrics.query_cache_misses, 0u);
}

TEST(EngineFeaturesExtra, HotSubgraphsOffloadChipUpdates) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto off = small_opts(5000);
  off.accel.features.hot_subgraphs = false;
  auto on = small_opts(5000);
  on.accel.features.hot_subgraphs = true;
  auto e_off = SimulationBuilder(pg).options(off).build();
  auto e_on = SimulationBuilder(pg).options(on).build();
  const auto r_off = e_off.run();
  const auto r_on = e_on.run();
  EXPECT_GT(r_on.metrics.channel_updates + r_on.metrics.board_updates, 0u);
  EXPECT_LT(r_on.metrics.chip_updates, r_off.metrics.chip_updates);
}

// --- partition rotation ----------------------------------------------------------

TEST(EnginePartitions, MultiPartitionRunCompletes) {
  const auto g = graph::make_dataset(graph::DatasetId::CW, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc(/*per_partition=*/8));
  ASSERT_GT(pg.num_partitions(), 3u);
  auto opts = small_opts(3000);
  auto engine = SimulationBuilder(pg).options(opts).build();
  const auto r = engine.run();
  EXPECT_EQ(r.metrics.walks_completed, 3000u);
  EXPECT_GT(r.metrics.partition_switches, 0u);
  EXPECT_GT(r.metrics.foreigner_walks, 0u);
}

TEST(EnginePartitions, ForeignerFlushesAccounted) {
  const auto g = graph::make_dataset(graph::DatasetId::CW, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc(8));
  auto opts = small_opts(5000);
  opts.accel.foreigner_buffer_bytes = 512;  // tiny buffer: force flushes
  auto engine = SimulationBuilder(pg).options(opts).build();
  const auto r = engine.run();
  EXPECT_GT(r.metrics.foreigner_flush_pages, 0u);
  EXPECT_GT(r.flash_write_bytes, 0u);
}

TEST(EnginePartitions, PwbOverflowTriggersFlashWrites) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto opts = small_opts(20'000);
  opts.accel.pwb_entry_bytes = 128;  // tiny entries: overflow quickly
  auto engine = SimulationBuilder(pg).options(opts).build();
  const auto r = engine.run();
  EXPECT_GT(r.metrics.pwb_overflow_events, 0u);
  EXPECT_GT(r.metrics.pwb_overflow_walks, 0u);
  EXPECT_EQ(r.metrics.walks_completed, 20'000u);
}

TEST(EnginePartitions, SchedulingReducesOverflowFlushes) {
  // SS prioritizes subgraphs whose entries are close to overflow; with the
  // same tiny entries, SS should flush no more than the baseline.
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto mk = [&](bool ss) {
    auto opts = small_opts(20'000);
    opts.accel.pwb_entry_bytes = 256;
    opts.accel.features.subgraph_scheduling = ss;
    auto e = SimulationBuilder(pg).options(opts).build();
    return e.run();
  };
  const auto with_ss = mk(true);
  const auto without = mk(false);
  EXPECT_LE(with_ss.metrics.pwb_overflow_walks,
            without.metrics.pwb_overflow_walks * 12 / 10);
}

// --- biased walks -----------------------------------------------------------------

TEST(EngineBiased, BiasedRunCompletesAndBiases) {
  graph::ZipfParams zp;
  zp.num_vertices = 1 << 10;
  zp.num_edges = 16 << 10;
  zp.weighted = true;
  zp.seed = 31;
  const auto g = graph::generate_zipf(zp);
  partition::PartitionConfig pc = small_pc();
  pc.weighted = true;
  partition::PartitionedGraph pg(g, pc);
  auto opts = small_opts(5000);
  opts.spec.biased = true;
  auto engine = SimulationBuilder(pg).options(opts).build();
  const auto r = engine.run();
  EXPECT_EQ(r.metrics.walks_completed, 5000u);

  // Cross-check against the biased host reference on aggregate visit mass.
  rw::ItsTable its(g);
  auto spec = opts.spec;
  const auto ref = rw::run_walks(g, spec, &its);
  const auto engine_hops = static_cast<double>(r.metrics.total_hops);
  const auto ref_hops = static_cast<double>(ref.total_hops);
  EXPECT_NEAR(engine_hops / 5000.0, ref_hops / 5000.0, 0.5);
}

TEST(EngineBiased, RequiresWeightedGraph) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto opts = small_opts();
  opts.spec.biased = true;
  EXPECT_THROW(SimulationBuilder(pg).options(opts).build(), std::invalid_argument);
}

// --- walk writes / FTL interaction --------------------------------------------------

TEST(EngineWrites, CompletedWalksFlushToFlash) {
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto opts = small_opts(10'000);
  opts.accel.completed_buffer_bytes = 256;
  auto engine = SimulationBuilder(pg).options(opts).build();
  const auto r = engine.run();
  EXPECT_GT(r.metrics.completed_flush_pages, 0u);
  EXPECT_GT(r.ftl.host_page_writes, 0u);
}

TEST(EngineWrites, WriteTrafficIsSmallVsReads) {
  // Fig 8 observation: "very small flash memory write bandwidth".
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto engine = SimulationBuilder(pg).options(small_opts(10'000)).build();
  const auto r = engine.run();
  EXPECT_LT(r.flash_write_bytes, r.flash_read_bytes / 2);
}

}  // namespace
}  // namespace fw::accel
