// Cross-engine integration tests: all four execution paths (host reference,
// FlashWalker, GraphWalker, DrunkardMob) run the same workload over the
// same graph and must agree statistically; plus end-to-end runs at kSmall
// scale with the full bench-style configuration.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "accel/builder.hpp"
#include "accel/engine.hpp"
#include "baseline/drunkardmob.hpp"
#include "baseline/graphwalker.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "rw/algorithms.hpp"

namespace fw {
namespace {

/// L1 distance between two visit distributions (each normalized).
double l1_distance(const std::vector<std::uint64_t>& a,
                   const std::vector<std::uint64_t>& b) {
  const double ta = static_cast<double>(std::accumulate(a.begin(), a.end(), 0ull));
  const double tb = static_cast<double>(std::accumulate(b.begin(), b.end(), 0ull));
  if (ta == 0 || tb == 0) return 2.0;
  double d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d += std::abs(static_cast<double>(a[i]) / ta - static_cast<double>(b[i]) / tb);
  }
  return d;
}

struct AllEngines {
  rw::WalkSummary ref;
  accel::EngineResult fw;
  baseline::BaselineResult gw;
  baseline::BaselineResult dm;
};

AllEngines run_all(const graph::CsrGraph& g, std::uint64_t walks) {
  rw::WalkSpec spec;
  spec.num_walks = walks;
  spec.length = 6;
  spec.seed = 77;

  AllEngines out;
  out.ref = rw::run_walks(g, spec);

  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 4096;
  pc.subgraphs_per_partition = 1u << 20;
  pc.subgraphs_per_range = 8;
  const partition::PartitionedGraph pg(g, pc);
  accel::EngineOptions fw_opts;
  fw_opts.ssd = ssd::test_ssd_config();
  fw_opts.spec = spec;
  auto fw_engine = accel::SimulationBuilder(pg).options(fw_opts).build();
  out.fw = fw_engine.run();

  baseline::GraphWalkerOptions gw_opts;
  gw_opts.ssd = ssd::test_ssd_config();
  gw_opts.spec = spec;
  gw_opts.host.memory_bytes = 64 * KiB;
  gw_opts.host.block_bytes = 8 * KiB;
  baseline::GraphWalkerEngine gw_engine(g, gw_opts);
  out.gw = gw_engine.run();

  baseline::DrunkardMobOptions dm_opts;
  dm_opts.ssd = ssd::test_ssd_config();
  dm_opts.spec = spec;
  dm_opts.host.block_bytes = 8 * KiB;
  baseline::DrunkardMobEngine dm_engine(g, dm_opts);
  out.dm = dm_engine.run();
  return out;
}

TEST(CrossEngine, AllEnginesConserveWalks) {
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  const auto all = run_all(g, 20'000);
  EXPECT_EQ(all.fw.metrics.walks_completed, 20'000u);
  EXPECT_EQ(all.gw.walks_completed, 20'000u);
  EXPECT_EQ(all.dm.walks_completed, 20'000u);
  EXPECT_EQ(all.ref.walks, 20'000u);
}

TEST(CrossEngine, VisitDistributionsAgree) {
  // Same workload, independent randomness: the stationary visit
  // distributions must be close in L1 (bounded sampling noise).
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  const auto all = run_all(g, 20'000);
  EXPECT_LT(l1_distance(all.ref.visit_counts, all.fw.visit_counts), 0.30);
  EXPECT_LT(l1_distance(all.ref.visit_counts, all.gw.visit_counts), 0.30);
  EXPECT_LT(l1_distance(all.ref.visit_counts, all.dm.visit_counts), 0.30);
  EXPECT_LT(l1_distance(all.fw.visit_counts, all.gw.visit_counts), 0.30);
}

TEST(CrossEngine, HopCountsAgreeWithinNoise) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  const auto all = run_all(g, 20'000);
  const auto ref = static_cast<double>(all.ref.total_hops);
  EXPECT_NEAR(static_cast<double>(all.fw.metrics.total_hops), ref, 0.05 * ref);
  EXPECT_NEAR(static_cast<double>(all.gw.total_hops), ref, 0.05 * ref);
  EXPECT_NEAR(static_cast<double>(all.dm.total_hops), ref, 0.05 * ref);
}

TEST(CrossEngine, PerformanceOrderingHolds) {
  // The paper's ordering at any scale: FlashWalker < GraphWalker <
  // iteration-synchronous DrunkardMob.
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  const auto all = run_all(g, 20'000);
  EXPECT_LT(all.fw.exec_time, all.gw.exec_time);
  EXPECT_LT(all.gw.exec_time, all.dm.exec_time);
}

TEST(CrossEngine, BiasedDistributionsAgree) {
  graph::ZipfParams zp;
  zp.num_vertices = 1 << 10;
  zp.num_edges = 16 << 10;
  zp.weighted = true;
  zp.seed = 41;
  const auto g = graph::generate_zipf(zp);

  rw::WalkSpec spec;
  spec.num_walks = 15'000;
  spec.length = 6;
  spec.biased = true;
  spec.seed = 13;

  rw::ItsTable its(g);
  const auto ref = rw::run_walks(g, spec, &its);

  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 4096;
  pc.weighted = true;
  const partition::PartitionedGraph pg(g, pc);
  accel::EngineOptions opts;
  opts.ssd = ssd::test_ssd_config();
  opts.spec = spec;
  auto engine = accel::SimulationBuilder(pg).options(opts).build();
  const auto r = engine.run();
  EXPECT_LT(l1_distance(ref.visit_counts, r.visit_counts), 0.30);
}

// --- kSmall end-to-end (bench-shaped config, every dataset) -----------------

class SmallScaleEndToEnd : public ::testing::TestWithParam<graph::DatasetId> {};

TEST_P(SmallScaleEndToEnd, FullSsdRunCompletesAndWins) {
  const auto g = graph::make_dataset(GetParam(), graph::Scale::kSmall);
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 16 * KiB;
  pc.subgraphs_per_partition = 2048;
  pc.subgraphs_per_range = 64;
  const partition::PartitionedGraph pg(g, pc);

  const std::uint64_t walks = graph::default_walk_count(GetParam(), graph::Scale::kSmall);
  accel::EngineOptions fw_opts;
  fw_opts.ssd = ssd::SsdConfig{};  // full Table I/III SSD
  fw_opts.accel = accel::bench_accel_config();
  fw_opts.spec.num_walks = walks;
  fw_opts.spec.length = 6;
  fw_opts.record_visits = false;
  auto fw_engine = accel::SimulationBuilder(pg).options(fw_opts).build();
  const auto fw = fw_engine.run();
  EXPECT_EQ(fw.metrics.walks_completed, walks);

  baseline::GraphWalkerOptions gw_opts;
  gw_opts.ssd = ssd::SsdConfig{};
  gw_opts.spec = fw_opts.spec;
  gw_opts.host.memory_bytes = 1536 * KiB;  // kSmall graphs are ~0.5-3.5 MiB
  gw_opts.record_visits = false;
  baseline::GraphWalkerEngine gw_engine(g, gw_opts);
  const auto gw = gw_engine.run();
  EXPECT_EQ(gw.walks_completed, walks);

  EXPECT_LT(fw.exec_time, gw.exec_time) << "FlashWalker must win at kSmall scale";
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, SmallScaleEndToEnd,
    ::testing::Values(graph::DatasetId::TT, graph::DatasetId::FS, graph::DatasetId::CW,
                      graph::DatasetId::R2B, graph::DatasetId::R8B),
    [](const auto& param_info) { return graph::dataset_info(param_info.param).abbrev; });

}  // namespace
}  // namespace fw
