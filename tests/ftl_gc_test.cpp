// FTL garbage-collection regressions: copy-back must stay inside the
// victim's plane (the bug was round-robin reallocation scattering relocated
// pages across planes), idle-time GC (including open-block sealing), and
// determinism of engine runs that exercise GC.
#include <gtest/gtest.h>

#include <vector>

#include "accel/builder.hpp"
#include "accel/engine.hpp"
#include "graph/datasets.hpp"
#include "ssd/address.hpp"
#include "ssd/config.hpp"
#include "ssd/flash_array.hpp"
#include "ssd/ftl.hpp"

namespace fw::ssd {
namespace {

SsdConfig tiny_config(std::uint32_t planes, std::uint32_t blocks = 4,
                      std::uint32_t pages = 4) {
  SsdConfig cfg = test_ssd_config();
  cfg.topo.channels = 1;
  cfg.topo.chips_per_channel = 1;
  cfg.topo.dies_per_chip = 1;
  cfg.topo.planes_per_die = planes;
  cfg.topo.blocks_per_plane = blocks;
  cfg.topo.pages_per_block = pages;
  return cfg;
}

TEST(FtlGc, RelocationsStayInVictimPlane) {
  // Two planes; cold pages in both. Hammering hot LPNs forces GC in every
  // plane, and the cold survivors must be copied back within their own
  // plane — never migrate across the plane boundary.
  const SsdConfig cfg = tiny_config(/*planes=*/2);
  const AddressMap amap(cfg.topo);
  FlashArray flash(cfg);
  Ftl ftl(flash, /*reserved_blocks_per_plane=*/1);
  // usable = 3/plane, 1 spare -> host capacity 2 planes x 2 blocks x 4 pages.
  ASSERT_EQ(ftl.host_capacity_pages(), 16u);

  constexpr std::uint64_t kColdLpns = 8;
  for (std::uint64_t lpn = 0; lpn < kColdLpns; ++lpn) ftl.write_page(0, lpn);
  std::vector<std::uint32_t> home_plane;
  for (std::uint64_t lpn = 0; lpn < kColdLpns; ++lpn) {
    home_plane.push_back(amap.plane_index(amap.from_ppn(ftl.physical_of(lpn))));
  }

  // Hot overwrites: 4 live hot LPNs, rewritten until GC has run plenty.
  for (int round = 0; round < 30; ++round) {
    for (std::uint64_t lpn = kColdLpns; lpn < kColdLpns + 4; ++lpn) {
      ftl.write_page(0, lpn);
    }
  }
  ASSERT_GT(ftl.stats().gc_erases, 0u);
  ASSERT_GT(ftl.stats().gc_page_moves, 0u);

  for (std::uint64_t lpn = 0; lpn < kColdLpns; ++lpn) {
    const auto addr = amap.from_ppn(ftl.physical_of(lpn));
    EXPECT_EQ(amap.plane_index(addr), home_plane[lpn])
        << "LPN " << lpn << " migrated out of its plane during GC";
    ftl.read_page(0, lpn);  // still mapped and readable
  }
}

TEST(FtlGc, IdleGcWithNoGarbageIsNoOp) {
  const SsdConfig cfg = tiny_config(/*planes=*/1);
  FlashArray flash(cfg);
  Ftl ftl(flash, 1);
  ftl.write_page(0, 0);
  ftl.write_page(0, 1);  // two valid pages, zero invalid
  const Tick done = ftl.idle_gc(/*now=*/5000, /*max_episodes=*/16);
  EXPECT_EQ(done, 5000u);
  EXPECT_EQ(ftl.stats().gc_idle_episodes, 0u);
  EXPECT_EQ(ftl.stats().gc_erases, 0u);
}

TEST(FtlGc, IdleGcSealsFragmentedOpenBlock) {
  // The active block never fills, but half its pages are stale: background
  // GC must seal it (re-open on a free block) and compact the survivors.
  const SsdConfig cfg = tiny_config(/*planes=*/1);
  FlashArray flash(cfg);
  Ftl ftl(flash, 1);
  ftl.write_page(0, 0);
  ftl.write_page(0, 1);
  ftl.write_page(0, 0);  // overwrite: active block now written=3, invalid=1
  const Tick done = ftl.idle_gc(/*now=*/1000, /*max_episodes=*/16);
  EXPECT_GT(done, 1000u);
  EXPECT_EQ(ftl.stats().gc_idle_episodes, 1u);
  EXPECT_EQ(ftl.stats().gc_page_moves, 2u);  // LPNs 0 and 1 survive
  EXPECT_EQ(ftl.stats().gc_erases, 1u);
  ftl.read_page(0, 0);
  ftl.read_page(0, 1);
}

TEST(FtlGc, IdleGcHonorsEpisodeCap) {
  // Garbage in both planes, but only one episode allowed per pass.
  const SsdConfig cfg = tiny_config(/*planes=*/2);
  FlashArray flash(cfg);
  Ftl ftl(flash, 1);
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t lpn = 0; lpn < 8; ++lpn) ftl.write_page(0, lpn);
  }
  const auto before = ftl.stats().gc_idle_episodes;
  ftl.idle_gc(/*now=*/0, /*max_episodes=*/1);
  EXPECT_EQ(ftl.stats().gc_idle_episodes, before + 1);
}

TEST(FtlGc, PhysicalOfThrowsOnUnmapped) {
  FlashArray flash(test_ssd_config());
  Ftl ftl(flash, 4);
  EXPECT_THROW((void)ftl.physical_of(123), std::out_of_range);
}

TEST(FtlGc, EngineRunWithGcIsDeterministic) {
  // Same seed -> byte-identical results, including the FTL's GC activity
  // (allocation, victim choice, and the post-run idle pass are all
  // deterministic functions of the workload).
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 4096;
  pc.subgraphs_per_partition = 1u << 20;
  pc.subgraphs_per_range = 8;
  const partition::PartitionedGraph pg(g, pc);
  auto opts = [] {
    accel::EngineOptions o;
    o.ssd = test_ssd_config();
    o.spec.num_walks = 2000;
    o.spec.length = 6;
    o.spec.seed = 99;
    return o;
  };
  auto e1 = accel::SimulationBuilder(pg).options(opts()).build();
  auto e2 = accel::SimulationBuilder(pg).options(opts()).build();
  const auto r1 = e1.run();
  const auto r2 = e2.run();
  EXPECT_EQ(r1.exec_time, r2.exec_time);
  EXPECT_EQ(r1.metrics.total_hops, r2.metrics.total_hops);
  EXPECT_EQ(r1.ftl.host_page_writes, r2.ftl.host_page_writes);
  EXPECT_EQ(r1.ftl.gc_page_moves, r2.ftl.gc_page_moves);
  EXPECT_EQ(r1.ftl.gc_erases, r2.ftl.gc_erases);
  EXPECT_EQ(r1.ftl.gc_idle_episodes, r2.ftl.gc_idle_episodes);
  EXPECT_EQ(r1.counters, r2.counters);
}

}  // namespace
}  // namespace fw::ssd
