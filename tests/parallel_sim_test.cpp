// Tests for the conservative-lookahead parallel DES (sim/parallel_sim):
// cross-worker-count determinism, merge-order rules, window semantics, and
// misuse hard-checks — plus the engine's shard-audit mode staying
// bit-identical to the serial reference. The determinism cases are the ones
// the CI TSan job runs to prove the barrier protocol race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "accel/builder.hpp"
#include "accel/lookahead.hpp"
#include "common/rng.hpp"
#include "graph/datasets.hpp"
#include "partition/partitioned_graph.hpp"
#include "sim/parallel_sim.hpp"

namespace fw::sim {
namespace {

constexpr Tick kLookahead = 100;

/// Deterministic chain workload across shards: every handler mixes the
/// execution context (shard, tick, hop) into a per-shard trace checksum and
/// schedules one successor, some of them cross-shard at >= lookahead.
struct ChainState {
  std::vector<std::uint64_t> checksum;
  std::vector<Xoshiro256> rng;

  explicit ChainState(std::uint32_t shards) : checksum(shards) {
    for (std::uint32_t s = 0; s < shards; ++s) rng.emplace_back(1234 + s);
  }
};

struct ChainDriver {
  ParallelSimulator& ps;
  ChainState& st;

  void fire(ShardId s, std::uint32_t hops) {
    st.checksum[s] = st.checksum[s] * 31 + (ps.shard(s).now() ^ hops);
    if (hops == 0) return;
    const std::uint64_t r = st.rng[s].bounded(100);
    if (r < 10) {
      const auto dst = static_cast<ShardId>(st.rng[s].bounded(ps.num_shards()));
      ps.shard(s).send(dst, kLookahead + st.rng[s].bounded(64),
                       [this, dst, hops] { fire(dst, hops - 1); });
    } else {
      ps.shard(s).schedule(1 + st.rng[s].bounded(40),
                           [this, s, hops] { fire(s, hops - 1); });
    }
  }
};

struct RunResult {
  std::vector<std::uint64_t> checksums;
  std::vector<Tick> clocks;
  std::uint64_t executed = 0;
  Tick now = 0;
};

RunResult run_chains(std::uint32_t shards, std::uint32_t workers,
                     std::uint32_t chains, std::uint32_t hops) {
  ParallelSimulator ps(shards, kLookahead, workers);
  ChainState st(shards);
  ChainDriver drv{ps, st};
  for (std::uint32_t s = 0; s < shards; ++s) {
    for (std::uint32_t k = 0; k < chains; ++k) {
      ps.shard(s).schedule(k * 3 + s, [&drv, s, hops] { drv.fire(s, hops); });
    }
  }
  RunResult r;
  r.executed = ps.run();
  r.checksums = st.checksum;
  for (std::uint32_t s = 0; s < shards; ++s) r.clocks.push_back(ps.shard(s).now());
  r.now = ps.now();
  return r;
}

TEST(ParallelSim, WorkerCountsProduceIdenticalResults) {
  // The acceptance determinism gate: 1, 2, and 8 workers must yield
  // bit-identical traces (checksums, per-shard clocks, event counts).
  const RunResult one = run_chains(9, 1, 4, 200);
  const RunResult two = run_chains(9, 2, 4, 200);
  const RunResult eight = run_chains(9, 8, 4, 200);
  EXPECT_EQ(one.checksums, two.checksums);
  EXPECT_EQ(one.checksums, eight.checksums);
  EXPECT_EQ(one.clocks, two.clocks);
  EXPECT_EQ(one.clocks, eight.clocks);
  EXPECT_EQ(one.executed, two.executed);
  EXPECT_EQ(one.executed, eight.executed);
  EXPECT_EQ(one.now, two.now);
  EXPECT_EQ(one.now, eight.now);
  EXPECT_EQ(one.executed, 9u * 4u * 201u);  // every chain ran to completion
}

TEST(ParallelSim, RepeatedRunsAreReproducible) {
  const RunResult a = run_chains(5, 4, 2, 100);
  const RunResult b = run_chains(5, 4, 2, 100);
  EXPECT_EQ(a.checksums, b.checksums);
  EXPECT_EQ(a.executed, b.executed);
}

TEST(ParallelSim, CrossingsMergeInTickSourceSeqOrder) {
  // Three shards bombard shard 0 with same-tick crossings; arrival order at
  // the destination must be (tick, src shard, send seq) regardless of the
  // order the window executed the senders.
  for (std::uint32_t workers : {1u, 2u, 4u}) {
    ParallelSimulator ps(4, kLookahead, workers);
    std::vector<std::pair<ShardId, int>> order;
    for (ShardId src : {3u, 1u, 2u}) {  // scheduled in scrambled shard order
      ps.shard(src).schedule(src, [&ps, &order, src] {
        // All three send()s land on shard 0 at the same absolute tick.
        const Tick at = 2 * kLookahead;
        const Tick d = at - ps.shard(src).now();
        ps.shard(src).send(0, d, [&order, src] { order.emplace_back(src, 0); });
        ps.shard(src).send(0, d, [&order, src] { order.emplace_back(src, 1); });
      });
    }
    ps.run();
    const std::vector<std::pair<ShardId, int>> expect = {
        {1, 0}, {1, 1}, {2, 0}, {2, 1}, {3, 0}, {3, 1}};
    EXPECT_EQ(order, expect) << workers << " workers";
  }
}

TEST(ParallelSim, LocalEventsFireBeforeEqualTickCrossings) {
  // A crossing arriving at tick T merges behind anything the destination
  // already scheduled for T (local pushes carry smaller destination seq).
  ParallelSimulator ps(2, kLookahead, 2);
  std::vector<int> order;
  ps.shard(0).schedule(2 * kLookahead, [&order] { order.push_back(1); });  // local @2L
  ps.shard(1).schedule(0, [&ps, &order] {
    ps.shard(1).send(0, 2 * kLookahead, [&order] { order.push_back(2); });  // cross @2L
  });
  ps.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ParallelSim, EventsCanScheduleAndChainAcrossWindows) {
  ParallelSimulator ps(3, kLookahead, 1);
  Tick seen = 0;
  ps.shard(2).schedule(5, [&ps, &seen] {
    ps.shard(2).send(0, kLookahead, [&ps, &seen] {
      ps.shard(0).schedule(7, [&ps, &seen] { seen = ps.shard(0).now(); });
    });
  });
  ps.run();
  EXPECT_EQ(seen, 5u + kLookahead + 7u);
  EXPECT_EQ(ps.events_executed(), 3u);
}

TEST(ParallelSim, RunUntilBoundsExecutionAndResumes) {
  ParallelSimulator ps(2, kLookahead, 1);
  int fired = 0;
  ps.shard(0).schedule(10, [&fired] { ++fired; });
  ps.shard(1).schedule(500, [&fired] { ++fired; });
  EXPECT_EQ(ps.run(100), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(ps.idle());
  // Like Simulator::run, the clock rests on the last executed event while
  // work remains pending beyond the bound.
  EXPECT_EQ(ps.now(), 10u);
  EXPECT_EQ(ps.run(), 1u);
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(ps.idle());
  EXPECT_EQ(ps.now(), 500u);
}

TEST(ParallelSim, SelfSendIsLocalAndUnconstrained) {
  ParallelSimulator ps(2, kLookahead, 1);
  int fired = 0;
  ps.shard(1).schedule(0, [&ps, &fired] {
    ps.shard(1).send(1, 1, [&fired] { ++fired; });  // below lookahead: fine
  });
  ps.run();
  EXPECT_EQ(fired, 1);
}

TEST(ParallelSim, RejectsSubLookaheadCrossSends) {
  ParallelSimulator ps(2, kLookahead, 1);
  bool threw = false;
  ps.shard(0).schedule(0, [&ps, &threw] {
    try {
      ps.shard(0).send(1, kLookahead - 1, [] {});
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  ps.run();
  EXPECT_TRUE(threw);
}

TEST(ParallelSim, RejectsUnknownDestinationAndBadConfig) {
  ParallelSimulator ps(2, kLookahead, 1);
  EXPECT_THROW(ps.shard(0).send(2, kLookahead, [] {}), std::out_of_range);
  EXPECT_THROW(ParallelSimulator(0, kLookahead), std::invalid_argument);
  EXPECT_THROW(ParallelSimulator(4, 0), std::invalid_argument);
}

TEST(ParallelSim, WorkerCountClampsToShards) {
  ParallelSimulator ps(3, kLookahead, 64);
  EXPECT_EQ(ps.workers(), 3u);
  // Atomic: the three events land in one window, so with 3 workers they
  // execute concurrently — shared test state needs its own synchronization.
  std::atomic<int> fired{0};
  for (ShardId s = 0; s < 3; ++s) ps.shard(s).schedule(s, [&fired] { ++fired; });
  ps.run();
  EXPECT_EQ(fired.load(), 3);
}

TEST(ParallelSim, WindowFlushFiresOncePerWindowOnEveryShard) {
  // The flush hook runs at the end of every drain_window pass — including
  // on shards that executed nothing in the window — so its cadence is a
  // pure function of the window schedule, never of the worker count.
  auto run = [](std::uint32_t workers) {
    ParallelSimulator ps(3, kLookahead, workers);
    // Per-shard slots: each hook writes only its own element, so the
    // threaded modes need no extra synchronization.
    std::vector<std::uint64_t> flushes(3, 0);
    for (ShardId s = 0; s < 3; ++s) {
      ps.shard(s).set_window_flush([&flushes, s](Shard&) { ++flushes[s]; });
    }
    // Four events on shard 0, spaced beyond the lookahead: four windows.
    // Shards 1 and 2 stay empty the whole run.
    for (Tick t = 0; t < 4; ++t) {
      ps.shard(0).schedule(t * 3 * kLookahead, [] {});
    }
    ps.run();
    return flushes;
  };
  const auto one = run(1);
  EXPECT_EQ(one, (std::vector<std::uint64_t>{4, 4, 4}));
  EXPECT_EQ(run(2), one);
  EXPECT_EQ(run(3), one);
}

TEST(ParallelSim, WindowFlushBatchesStraddlingAWindowLeaveOnce) {
  // Two events execute on shard 1 inside one window and stage work for
  // shard 0. The flush hook coalesces the staging into ONE send_at, so the
  // batch crosses the window boundary as a single message, delivered at the
  // latest staged arrival, with the staged order preserved — identically
  // for every worker count.
  struct Delivery {
    Tick at = 0;
    std::vector<int> items;
    bool operator==(const Delivery& o) const {
      return at == o.at && items == o.items;
    }
  };
  auto run = [](std::uint32_t workers) {
    ParallelSimulator ps(2, kLookahead, workers);
    std::vector<int> staged;
    Tick staged_at = 0;
    std::vector<Delivery> deliveries;  // only shard 0 writes
    ps.shard(1).set_window_flush([&](Shard& sh) {
      if (staged.empty()) return;
      const Tick at = std::max(staged_at, sh.now() + kLookahead);
      sh.send_at(0, at, [&ps, &deliveries, items = std::move(staged)] {
        deliveries.push_back(Delivery{ps.shard(0).now(), items});
      });
      staged.clear();
    });
    auto stage = [&](int item) {
      staged.push_back(item);
      staged_at = ps.shard(1).now() + kLookahead;
    };
    ps.shard(1).schedule(0, [&stage] { stage(1); });
    ps.shard(1).schedule(10, [&stage] { stage(2); });
    ps.run();
    return deliveries;
  };
  const auto one = run(1);
  ASSERT_EQ(one.size(), 1u);  // one batch, not one message per event
  EXPECT_EQ(one[0].at, 10u + kLookahead);
  EXPECT_EQ(one[0].items, (std::vector<int>{1, 2}));
  EXPECT_EQ(run(2), one);
}

TEST(ParallelSim, SendAtRejectsSubLookaheadDeliveries) {
  ParallelSimulator ps(2, kLookahead, 1);
  bool threw = false;
  int fired = 0;
  ps.shard(0).schedule(5, [&] {
    try {
      ps.shard(0).send_at(1, 5 + kLookahead - 1, [] {});
    } catch (const std::logic_error&) {
      threw = true;
    }
    ps.shard(0).send_at(1, 5 + kLookahead, [&fired] { ++fired; });
    ps.shard(0).send_at(0, 6, [&fired] { ++fired; });  // self: unconstrained
  });
  ps.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace fw::sim

namespace fw::accel {
namespace {

/// Engine on the parallel DES: worker count must not perturb the run, the
/// audit is a pure observer behind its own flag, and — now that every
/// cross-shard handoff pays its honest ONFI-command + DRAM-hop floor —
/// the audit must report zero lookahead violations on the default config.
TEST(EngineShardAudit, ConcurrentRunIsBitIdenticalAndViolationFree) {
  const graph::CsrGraph g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 16 * KiB;
  pc.subgraphs_per_partition = 2048;
  pc.subgraphs_per_range = 64;
  const partition::PartitionedGraph pg(g, pc);

  auto run_with = [&](std::uint32_t threads, bool audit) {
    SimulationConfig cfg;
    cfg.ssd = ssd::test_ssd_config();
    cfg.accel = bench_accel_config();
    cfg.spec.num_walks = 500;
    cfg.spec.length = 6;
    cfg.spec.seed = 42;
    cfg.record_visits = true;
    cfg.sim_threads = threads;
    cfg.shard_audit = audit;
    return SimulationBuilder(pg).config(cfg).run();
  };

  const EngineResult serial = run_with(1, /*audit=*/false);
  const EngineResult audited = run_with(8, /*audit=*/true);

  EXPECT_FALSE(serial.shard_audit.enabled);
  ASSERT_TRUE(audited.shard_audit.enabled);
  // Bit-identical simulation: same exec time, hop counts, visit vector —
  // the audit observes, it never perturbs.
  EXPECT_EQ(serial.exec_time, audited.exec_time);
  EXPECT_EQ(serial.metrics.total_hops, audited.metrics.total_hops);
  EXPECT_EQ(serial.metrics.walks_completed, audited.metrics.walks_completed);
  EXPECT_EQ(serial.flash_read_bytes, audited.flash_read_bytes);
  EXPECT_EQ(serial.visit_counts, audited.visit_counts);

  const ShardAuditReport& a = audited.shard_audit;
  EXPECT_EQ(a.shards, FlashWalkerEngine::local_shard_count(bench_accel_config(),
                                                           ssd::test_ssd_config()));
  EXPECT_EQ(a.lookahead_ns,
            conservative_lookahead_ns(bench_accel_config(), ssd::test_ssd_config()));
  EXPECT_GT(a.events, 0u);
  EXPECT_GT(a.cross_sends, 0u);  // channel<->board traffic exists
  EXPECT_LE(a.max_shard_events, a.events);
  EXPECT_LE(a.min_shard_events, a.max_shard_events);
  // The board residue shard no longer hosts per-hop work, but it still
  // executes events; its share of the stream is a proper fraction.
  EXPECT_GT(a.board_events, 0u);
  EXPECT_LE(a.board_events, a.events);
  EXPECT_LE(a.board_share_ppm(), 1000000u);
  // Windowed batching ran: ops crossed in aggregated messages, and each
  // batch carried at least one op.
  EXPECT_GT(a.board_batches, 0u);
  EXPECT_GE(a.board_batched_ops, a.board_batches);
  // The regression pin for the handoff-cost fix: every cross-shard send
  // pays at least the conservative window, so zero-latency sends can never
  // silently return.
  EXPECT_EQ(a.lookahead_violations, 0u);
  EXPECT_GE(a.min_cross_delay_ns, a.lookahead_ns);
}

}  // namespace
}  // namespace fw::accel
