// Property-style parameterized sweeps: the invariants of partitioning,
// mapping tables, layout, and engine walk conservation must hold across
// block sizes, graph families, range widths, and SSD topologies — not just
// at the defaults the other suites use.
#include <gtest/gtest.h>

#include <numeric>

#include "accel/builder.hpp"
#include "accel/engine.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "partition/dense_table.hpp"
#include "partition/mapping_table.hpp"
#include "partition/partitioned_graph.hpp"
#include "ssd/graph_layout.hpp"

namespace fw {
namespace {

enum class GraphKind { kRmat, kZipf, kErdosRenyi, kChain };

graph::CsrGraph make_graph(GraphKind kind) {
  switch (kind) {
    case GraphKind::kRmat: {
      graph::RmatParams p;
      p.num_vertices = 1 << 11;
      p.num_edges = 24 << 10;
      p.seed = 101;
      return graph::generate_rmat(p);
    }
    case GraphKind::kZipf: {
      graph::ZipfParams p;
      p.num_vertices = 1 << 11;
      p.num_edges = 24 << 10;
      p.exponent = 1.6;
      p.seed = 102;
      return graph::generate_zipf(p);
    }
    case GraphKind::kErdosRenyi: {
      graph::ErdosRenyiParams p;
      p.num_vertices = 1 << 11;
      p.num_edges = 24 << 10;
      p.seed = 103;
      return graph::generate_erdos_renyi(p);
    }
    case GraphKind::kChain: {
      // Degenerate: a directed chain (degree <= 1 everywhere).
      graph::GraphBuilder b(1 << 10);
      for (VertexId v = 0; v + 1 < (1u << 10); ++v) b.add_edge(v, v + 1);
      return std::move(b).build();
    }
  }
  throw std::logic_error("unreachable");
}

const char* kind_name(GraphKind k) {
  switch (k) {
    case GraphKind::kRmat: return "rmat";
    case GraphKind::kZipf: return "zipf";
    case GraphKind::kErdosRenyi: return "er";
    case GraphKind::kChain: return "chain";
  }
  return "?";
}

struct SweepCase {
  GraphKind kind;
  std::uint64_t block_bytes;
  std::uint32_t per_range;
};

class PartitionSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PartitionSweep, AllInvariantsHold) {
  const auto g = make_graph(GetParam().kind);
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = GetParam().block_bytes;
  pc.subgraphs_per_partition = 64;
  pc.subgraphs_per_range = GetParam().per_range;
  const partition::PartitionedGraph pg(g, pc);

  // 1. Coverage: every vertex in exactly one subgraph's range.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const SubgraphId sg = pg.subgraph_of(v);
    ASSERT_NE(sg, kInvalidSubgraph);
    EXPECT_GE(v, pg.subgraph(sg).low_vid);
    EXPECT_LE(v, pg.subgraph(sg).high_vid);
  }
  // 2. Edge partition is exact and ordered.
  EdgeId covered = 0;
  for (const auto& sg : pg.subgraphs()) {
    EXPECT_LE(sg.edge_begin, sg.edge_end);
    covered += sg.edge_end - sg.edge_begin;
    if (!sg.dense) {
      EXPECT_LE(sg.payload_bytes, pc.block_capacity_bytes);
    }
  }
  EXPECT_EQ(covered, g.num_edges());

  // 3. Mapping table agrees with ground truth everywhere, with and without
  //    the range hint.
  std::vector<std::uint64_t> pages(pg.num_subgraphs(), 0);
  const partition::SubgraphMappingTable mtab(pg, pages);
  for (VertexId v = 0; v < g.num_vertices(); v += 3) {
    ASSERT_EQ(mtab.find(v).sgid, pg.subgraph_of(v)) << v;
    const auto r = mtab.find_range(v);
    ASSERT_TRUE(r.found());
    ASSERT_EQ(mtab.find_in_range(v, r.range_id).sgid, pg.subgraph_of(v)) << v;
  }

  // 4. Dense table covers exactly the dense vertices.
  const partition::DenseVertexTable dtab(pg);
  std::size_t dense_truth = 0;
  VertexId prev_dense = kInvalidVertex;
  for (const auto& sg : pg.subgraphs()) {
    if (sg.dense && sg.low_vid != prev_dense) {
      ++dense_truth;
      prev_dense = sg.low_vid;
    }
  }
  EXPECT_EQ(dtab.num_dense_vertices(), dense_truth);

  // 5. In-degree sums conserve edges.
  const auto& sums = pg.subgraph_in_degrees();
  EXPECT_EQ(std::accumulate(sums.begin(), sums.end(), 0ull), g.num_edges());
}

std::string sweep_name(const ::testing::TestParamInfo<SweepCase>& param_info) {
  return std::string(kind_name(param_info.param.kind)) + "_b" +
         std::to_string(param_info.param.block_bytes) + "_r" +
         std::to_string(param_info.param.per_range);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionSweep,
    ::testing::Values(SweepCase{GraphKind::kRmat, 1024, 4},
                      SweepCase{GraphKind::kRmat, 4096, 16},
                      SweepCase{GraphKind::kRmat, 65536, 8},
                      SweepCase{GraphKind::kZipf, 1024, 4},
                      SweepCase{GraphKind::kZipf, 4096, 64},
                      SweepCase{GraphKind::kZipf, 16384, 16},
                      SweepCase{GraphKind::kErdosRenyi, 2048, 8},
                      SweepCase{GraphKind::kErdosRenyi, 8192, 32},
                      SweepCase{GraphKind::kChain, 512, 4},
                      SweepCase{GraphKind::kChain, 4096, 16}),
    sweep_name);

// --- layout across topologies -------------------------------------------------

struct TopoCase {
  std::uint32_t channels, chips, dies, planes;
};

class LayoutSweep : public ::testing::TestWithParam<TopoCase> {};

TEST_P(LayoutSweep, PlacementCoversAndBalances) {
  const auto g = make_graph(GraphKind::kRmat);
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 2048;
  const partition::PartitionedGraph pg(g, pc);

  ssd::SsdConfig cfg = ssd::test_ssd_config();
  cfg.topo.channels = GetParam().channels;
  cfg.topo.chips_per_channel = GetParam().chips;
  cfg.topo.dies_per_chip = GetParam().dies;
  cfg.topo.planes_per_die = GetParam().planes;
  const ssd::GraphLayout layout(pg, cfg);

  std::size_t total = 0;
  std::size_t min_n = ~0ull, max_n = 0;
  for (std::uint32_t ch = 0; ch < cfg.topo.channels; ++ch) {
    for (std::uint32_t chip = 0; chip < cfg.topo.chips_per_channel; ++chip) {
      const auto n = layout.chip_subgraphs(ch, chip).size();
      total += n;
      min_n = std::min(min_n, n);
      max_n = std::max(max_n, n);
    }
  }
  EXPECT_EQ(total, pg.num_subgraphs());
  EXPECT_LE(max_n - min_n, 1u);
  EXPECT_LT(layout.reserved_blocks_per_plane(), cfg.topo.blocks_per_plane);
}

INSTANTIATE_TEST_SUITE_P(Topologies, LayoutSweep,
                         ::testing::Values(TopoCase{1, 1, 1, 1}, TopoCase{2, 1, 2, 2},
                                           TopoCase{4, 4, 2, 4}, TopoCase{16, 2, 2, 2}),
                         [](const auto& param_info) {
                           const auto& p = param_info.param;
                           return std::string("t") + std::to_string(p.channels) + "x" +
                                  std::to_string(p.chips) + "x" + std::to_string(p.dies) +
                                  "x" + std::to_string(p.planes);
                         });

// --- engine conservation across topologies & batch sizes ------------------------

class EngineSweep : public ::testing::TestWithParam<std::tuple<TopoCase, std::uint32_t>> {
};

TEST_P(EngineSweep, WalksConservedEverywhere) {
  const auto g = make_graph(GraphKind::kZipf);
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 4096;
  pc.subgraphs_per_partition = 64;
  const partition::PartitionedGraph pg(g, pc);

  const auto& [topo, batch] = GetParam();
  accel::EngineOptions opts;
  opts.ssd = ssd::test_ssd_config();
  opts.ssd.topo.channels = topo.channels;
  opts.ssd.topo.chips_per_channel = topo.chips;
  opts.ssd.topo.dies_per_chip = topo.dies;
  opts.ssd.topo.planes_per_die = topo.planes;
  opts.accel.batch_walks = batch;
  opts.spec.num_walks = 4000;
  opts.spec.length = 6;
  auto engine = accel::SimulationBuilder(pg).options(opts).build();
  const auto r = engine.run();
  EXPECT_EQ(r.metrics.walks_completed, 4000u);
  EXPECT_GT(r.exec_time, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineSweep,
    ::testing::Combine(::testing::Values(TopoCase{1, 1, 1, 1}, TopoCase{4, 4, 2, 4},
                                         TopoCase{16, 2, 2, 2}),
                       ::testing::Values(1u, 16u, 256u)),
    [](const auto& param_info) {
      const auto& tc = std::get<0>(param_info.param);
      return std::string("c") + std::to_string(tc.channels) + "x" +
             std::to_string(tc.chips) + "_b" +
             std::to_string(std::get<1>(param_info.param));
    });

// --- batch size must not change walk semantics ----------------------------------

TEST(EngineBatching, VisitCountsIndependentOfBatchSize) {
  // Batching is a simulation knob: it changes event granularity (and hence
  // exact interleaving) but the aggregate visit distribution must remain
  // statistically indistinguishable. Compare total hops across batch sizes.
  const auto g = make_graph(GraphKind::kRmat);
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 4096;
  const partition::PartitionedGraph pg(g, pc);
  std::vector<std::uint64_t> hops;
  for (const std::uint32_t batch : {8u, 64u, 512u}) {
    accel::EngineOptions opts;
    opts.ssd = ssd::test_ssd_config();
    opts.accel.batch_walks = batch;
    opts.spec.num_walks = 10'000;
    auto engine = accel::SimulationBuilder(pg).options(opts).build();
    hops.push_back(engine.run().metrics.total_hops);
  }
  for (std::size_t i = 1; i < hops.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(hops[i]), static_cast<double>(hops[0]),
                0.05 * static_cast<double>(hops[0]));
  }
}

}  // namespace
}  // namespace fw
