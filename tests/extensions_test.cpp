// Tests for the paper-extension features: in-storage second-order
// (node2vec) walks, dead-end restart mode, walk-path recording, and the
// energy model.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "accel/energy_model.hpp"
#include "accel/builder.hpp"
#include "accel/engine.hpp"
#include "baseline/graphwalker.hpp"
#include "graph/builder.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "rw/algorithms.hpp"

namespace fw::accel {
namespace {

partition::PartitionConfig small_pc() {
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 4096;
  pc.subgraphs_per_partition = 1u << 20;
  pc.subgraphs_per_range = 8;
  return pc;
}

EngineOptions small_opts(std::uint64_t walks = 2000) {
  EngineOptions o;
  o.ssd = ssd::test_ssd_config();
  o.spec.num_walks = walks;
  o.spec.length = 6;
  o.spec.seed = 5;
  return o;
}

// --- second-order walks ------------------------------------------------------

TEST(SecondOrderSampler, LowPBiasesBacktracking) {
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  b.add_edge(1, 2);
  b.add_edge(2, 1);
  const auto g = std::move(b).build();
  Xoshiro256 rng(1);
  auto backtrack_rate = [&](double p) {
    std::uint64_t back = 0;
    const int kTrials = 20'000;
    for (int i = 0; i < kTrials; ++i) {
      // At vertex 1 having come from 0: choices are {0 (back), 2 (out)}.
      const auto s = rw::sample_second_order(g, /*prev=*/0, /*cur=*/1, g.offsets()[1],
                                             g.offsets()[2], {p, 1.0}, rng);
      back += s.next == 0;
    }
    return static_cast<double>(back) / kTrials;
  };
  EXPECT_GT(backtrack_rate(0.1), 0.75);
  EXPECT_LT(backtrack_rate(10.0), 0.25);
}

TEST(SecondOrderSampler, TriangleEdgesPreferredOverOutward) {
  // prev=0 links to {1, 2}; cur=1 links to {2, 3}. With q large, the
  // triangle-closing hop 1->2 (weight 1) beats the outward hop 1->3 (1/q).
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  b.add_edge(1, 3);
  const auto g = std::move(b).build();
  Xoshiro256 rng(2);
  std::uint64_t triangle = 0;
  const int kTrials = 20'000;
  for (int i = 0; i < kTrials; ++i) {
    const auto s = rw::sample_second_order(g, 0, 1, g.offsets()[1], g.offsets()[2],
                                           {/*p=*/100.0, /*q=*/8.0}, rng);
    triangle += s.next == 2;
  }
  EXPECT_GT(static_cast<double>(triangle) / kTrials, 0.75);
}

TEST(SecondOrderSampler, CountsMembershipSteps) {
  graph::RmatParams p;
  p.num_vertices = 256;
  p.num_edges = 8192;
  const auto g = graph::generate_rmat(p);
  Xoshiro256 rng(3);
  VertexId prev = 0;
  while (g.out_degree(prev) < 8) ++prev;
  const VertexId cur = g.neighbors(prev)[0];
  if (g.out_degree(cur) == 0) GTEST_SKIP();
  const auto s = rw::sample_second_order(g, prev, cur, g.offsets()[cur],
                                         g.offsets()[cur + 1], {1.0, 2.0}, rng);
  EXPECT_NE(s.next, kInvalidVertex);
  EXPECT_GT(s.search_steps, 0u);
}

TEST(EngineSecondOrder, CompletesAndBacktracksLikeReference) {
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto opts = small_opts(3000);
  opts.spec.second_order.enabled = true;
  opts.spec.second_order.p = 0.2;  // strong return bias
  opts.spec.length = 8;
  opts.record_paths = true;
  auto engine = SimulationBuilder(pg).options(opts).build();
  const auto r = engine.run();
  EXPECT_EQ(r.metrics.walks_completed, 3000u);

  // Measure A-B-A backtracking frequency in the recorded paths and compare
  // with the host reference at the same p.
  auto backtracks = [](const std::vector<std::vector<VertexId>>& paths) {
    std::uint64_t back = 0, steps = 0;
    for (const auto& path : paths) {
      for (std::size_t i = 2; i < path.size(); ++i) {
        ++steps;
        back += path[i] == path[i - 2];
      }
    }
    return steps == 0 ? 0.0 : static_cast<double>(back) / static_cast<double>(steps);
  };
  const double engine_low_p = backtracks(r.paths);

  rw::Node2VecParams np;
  np.p = 0.2;
  np.q = 1.0;
  np.walk_length = 8;
  np.seed = 7;
  const double ref_low_p = backtracks(rw::node2vec_walks(g, np));
  // Engine and reference agree on the backtrack frequency at the same p.
  EXPECT_NEAR(engine_low_p, ref_low_p, 0.5 * ref_low_p + 0.005);

  // And the p-effect is strong: raising p collapses the backtrack rate.
  auto high_p = opts;
  high_p.spec.second_order.p = 10.0;
  auto engine_hp = SimulationBuilder(pg).options(high_p).build();
  const double engine_high_p = backtracks(engine_hp.run().paths);
  EXPECT_GT(engine_low_p, 10.0 * std::max(engine_high_p, 1e-6));
}

TEST(EngineSecondOrder, CarriesPrevCostInWalkBytes) {
  // Second-order walks are bigger (they carry prev), so the same buffers
  // hold fewer walks; just verify the run still conserves walks.
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto opts = small_opts(2000);
  opts.spec.second_order.enabled = true;
  auto engine = SimulationBuilder(pg).options(opts).build();
  EXPECT_EQ(engine.run().metrics.walks_completed, 2000u);
}

// --- dead-end restart ----------------------------------------------------------

TEST(DeadEndRestart, EngineConservesWalks) {
  // ClueWeb-like test graph: huge dead-end population.
  const auto g = graph::make_dataset(graph::DatasetId::CW, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto opts = small_opts(3000);
  opts.spec.dead_end = rw::WalkSpec::DeadEnd::kRestart;
  auto engine = SimulationBuilder(pg).options(opts).build();
  const auto r = engine.run();
  EXPECT_EQ(r.metrics.walks_completed, 3000u);
  EXPECT_EQ(r.metrics.dead_ends, 0u);  // restarts, never dies at a dead end
}

TEST(DeadEndRestart, GraphWalkerConservesWalks) {
  const auto g = graph::make_dataset(graph::DatasetId::CW, graph::Scale::kTest);
  baseline::GraphWalkerOptions opts;
  opts.ssd = ssd::test_ssd_config();
  opts.spec.num_walks = 2000;
  opts.spec.length = 6;
  opts.spec.dead_end = rw::WalkSpec::DeadEnd::kRestart;
  opts.host.memory_bytes = 64 * KiB;
  opts.host.block_bytes = 8 * KiB;
  baseline::GraphWalkerEngine engine(g, opts);
  const auto r = engine.run();
  EXPECT_EQ(r.walks_completed, 2000u);
  EXPECT_EQ(r.dead_ends, 0u);
}

TEST(DeadEndRestart, ReferenceNeverReportsDeadEnds) {
  const auto g = graph::make_dataset(graph::DatasetId::CW, graph::Scale::kTest);
  rw::WalkSpec spec;
  spec.num_walks = 3000;
  spec.dead_end = rw::WalkSpec::DeadEnd::kRestart;
  EXPECT_EQ(rw::run_walks(g, spec).dead_ends, 0u);
}

// --- walk-path recording ------------------------------------------------------

TEST(PathRecording, PathsAreValidWalks) {
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto opts = small_opts(1500);
  opts.record_paths = true;
  auto engine = SimulationBuilder(pg).options(opts).build();
  const auto r = engine.run();
  ASSERT_EQ(r.paths.size(), 1500u);
  std::uint64_t recorded_hops = 0;
  for (const auto& path : r.paths) {
    ASSERT_GE(path.size(), 1u);
    ASSERT_LE(path.size(), 7u);  // start + up to 6 hops
    for (std::size_t i = 1; i < path.size(); ++i) {
      const auto nbrs = g.neighbors(path[i - 1]);
      ASSERT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), path[i]))
          << "hop " << i << " is not an edge";
    }
    recorded_hops += path.size() - 1;
  }
  EXPECT_EQ(recorded_hops, r.metrics.total_hops);
}

TEST(PathRecording, MatchesVisitCounts) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto opts = small_opts(1000);
  opts.record_paths = true;
  auto engine = SimulationBuilder(pg).options(opts).build();
  const auto r = engine.run();
  std::vector<std::uint64_t> from_paths(g.num_vertices(), 0);
  for (const auto& path : r.paths) {
    for (std::size_t i = 1; i < path.size(); ++i) ++from_paths[path[i]];
  }
  EXPECT_EQ(from_paths, r.visit_counts);
}

TEST(PathRecording, OffByDefault) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto engine = SimulationBuilder(pg).options(small_opts(100)).build();
  EXPECT_TRUE(engine.run().paths.empty());
}

// --- endpoint recording ---------------------------------------------------------

TEST(EndpointRecording, CountsSumToWalks) {
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto opts = small_opts(3000);
  opts.record_endpoints = true;
  auto engine = SimulationBuilder(pg).options(opts).build();
  const auto r = engine.run();
  std::uint64_t total = 0;
  for (const auto c : r.endpoint_counts) total += c;
  EXPECT_EQ(total, 3000u);
}

TEST(EndpointRecording, MatchesRecordedPathEnds) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto opts = small_opts(1500);
  opts.record_endpoints = true;
  opts.record_paths = true;
  auto engine = SimulationBuilder(pg).options(opts).build();
  const auto r = engine.run();
  std::vector<std::uint64_t> from_paths(g.num_vertices(), 0);
  for (const auto& path : r.paths) ++from_paths[path.back()];
  EXPECT_EQ(from_paths, r.endpoint_counts);
}

TEST(EndpointRecording, OffByDefault) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto engine = SimulationBuilder(pg).options(small_opts(100)).build();
  EXPECT_TRUE(engine.run().endpoint_counts.empty());
}

// --- energy model ---------------------------------------------------------------

TEST(EnergyModel, ComponentsArePositiveAndSum) {
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto engine = SimulationBuilder(pg).options(small_opts(5000)).build();
  const auto r = engine.run();
  const auto e = estimate_flashwalker(r, bench_accel_config(), ssd::test_ssd_config());
  EXPECT_GT(e.flash_j, 0.0);
  EXPECT_GT(e.compute_j, 0.0);
  EXPECT_GT(e.static_j, 0.0);
  EXPECT_NEAR(e.total_j(),
              e.flash_j + e.interconnect_j + e.dram_j + e.compute_j + e.static_j, 1e-12);
}

TEST(EnergyModel, BaselineChargesCpuAndPcie) {
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  baseline::GraphWalkerOptions opts;
  opts.ssd = ssd::test_ssd_config();
  opts.spec.num_walks = 5000;
  opts.host.memory_bytes = 64 * KiB;
  opts.host.block_bytes = 8 * KiB;
  baseline::GraphWalkerEngine engine(g, opts);
  const auto r = engine.run();
  const auto e = estimate_baseline(r, ssd::test_ssd_config());
  EXPECT_GT(e.compute_j, 0.0);
  EXPECT_GT(e.interconnect_j, 0.0);
  EXPECT_GT(e.static_j, 0.0);  // idle power during I/O waits
}

TEST(EnergyModel, MoreWalksMoreEnergy) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  partition::PartitionedGraph pg(g, small_pc());
  auto e1 = SimulationBuilder(pg).options(small_opts(1000)).build();
  auto e2 = SimulationBuilder(pg).options(small_opts(8000)).build();
  const auto r1 = e1.run();
  const auto r2 = e2.run();
  const auto cfg = bench_accel_config();
  EXPECT_LT(estimate_flashwalker(r1, cfg, ssd::test_ssd_config()).total_j(),
            estimate_flashwalker(r2, cfg, ssd::test_ssd_config()).total_j());
}

}  // namespace
}  // namespace fw::accel
