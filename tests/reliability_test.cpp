// Fault-injection suite for the NAND reliability subsystem: the RBER/ECC/
// retry oracle, the flash-array latency contract (each retry is a full tR),
// grown-bad-block retirement through the FTL, and the engine-level guarantee
// that faults perturb timing but never walk output.
#include <gtest/gtest.h>

#include <vector>

#include "accel/builder.hpp"
#include "accel/engine.hpp"
#include "graph/datasets.hpp"
#include "ssd/address.hpp"
#include "ssd/config.hpp"
#include "ssd/flash_array.hpp"
#include "ssd/ftl.hpp"
#include "ssd/reliability/bad_block.hpp"
#include "ssd/reliability/reliability_model.hpp"

namespace fw::ssd {
namespace {

using reliability::PageReadFault;
using reliability::ReliabilityModel;
using reliability::RetireReason;

/// Moderate mid-life RBER: lambda ~41 errors per 1 KiB codeword against a
/// 40-bit budget, so roughly half of all pages need at least one retry and
/// the ladder (halving the rate each step) clears the rest.
SsdConfig retrying_config() {
  SsdConfig cfg = test_ssd_config();
  cfg.reliability.rber.base = 5e-3;
  cfg.reliability.fault_seed = 7;
  return cfg;
}

TEST(ReliabilityModel_, UnderBudgetErrorsNeverRetry) {
  // lambda ~8 errors per codeword against a 40-bit budget: every page must
  // clear ECC on the first read, with a single decode pass charged.
  SsdConfig cfg = test_ssd_config();
  cfg.reliability.rber.base = 1e-3;
  const ReliabilityModel model(cfg.reliability, cfg.topo.page_bytes);
  std::uint64_t corrected = 0;
  for (std::uint32_t p = 0; p < 16; ++p) {
    for (std::uint32_t page = 0; page < 16; ++page) {
      const PageReadFault f = model.read_fault(p, /*block=*/3, page, /*pe=*/0);
      EXPECT_EQ(f.retries, 0u);
      EXPECT_FALSE(f.uncorrectable);
      EXPECT_EQ(f.ecc_latency, model.ecc().decode_latency(f.corrected_bits));
      corrected += f.corrected_bits;
    }
  }
  EXPECT_GT(corrected, 0u);  // the errors are there, ECC just absorbs them
}

TEST(ReliabilityModel_, RberGrowsWithWearAndShrinksDownTheLadder) {
  SsdConfig cfg = retrying_config();
  const reliability::RberModel rber(cfg.reliability.rber, cfg.reliability.retry);
  EXPECT_LT(rber.raw(0), rber.raw(1500));
  EXPECT_LT(rber.raw(1500), rber.raw(3000));
  EXPECT_GT(rber.effective(3000, 0), rber.effective(3000, 1));
  EXPECT_GT(rber.effective(3000, 1), rber.effective(3000, 3));
}

TEST(ReliabilityModel_, DrawsAreSeedDeterministic) {
  const SsdConfig cfg = retrying_config();
  const ReliabilityModel a(cfg.reliability, cfg.topo.page_bytes);
  const ReliabilityModel b(cfg.reliability, cfg.topo.page_bytes);
  SsdConfig other = cfg;
  other.reliability.fault_seed = 8;
  const ReliabilityModel c(other.reliability, other.topo.page_bytes);

  std::uint64_t retries_a = 0;
  std::uint64_t retries_c = 0;
  bool seed_changed_something = false;
  for (std::uint32_t page = 0; page < 128; ++page) {
    const PageReadFault fa = a.read_fault(0, 0, page, 0);
    const PageReadFault fb = b.read_fault(0, 0, page, 0);
    EXPECT_EQ(fa.retries, fb.retries);
    EXPECT_EQ(fa.corrected_bits, fb.corrected_bits);
    EXPECT_EQ(fa.ecc_latency, fb.ecc_latency);
    const PageReadFault fc = c.read_fault(0, 0, page, 0);
    retries_a += fa.retries;
    retries_c += fc.retries;
    seed_changed_something |= fa.retries != fc.retries ||
                              fa.corrected_bits != fc.corrected_bits;
  }
  EXPECT_GT(retries_a, 0u);  // the ladder is actually exercised
  EXPECT_GT(retries_c, 0u);
  EXPECT_TRUE(seed_changed_something);
}

TEST(FlashReliability, RetryChargesFullTrPerLadderStep) {
  // The array must charge exactly (1 + retries) plane occupations of tR plus
  // the model's decode latency — cross-checked against an independently
  // constructed oracle for a spread of addresses on idle planes.
  const SsdConfig cfg = retrying_config();
  FlashArray flash(cfg);
  const ReliabilityModel model(cfg.reliability, cfg.topo.page_bytes);
  const AddressMap& amap = flash.address_map();

  std::uint64_t retried = 0;
  for (std::uint32_t i = 0; i < 32; ++i) {
    FlashAddress addr;
    addr.channel = i % cfg.topo.channels;
    addr.chip = (i / cfg.topo.channels) % cfg.topo.chips_per_channel;
    addr.plane = i / (cfg.topo.channels * cfg.topo.chips_per_channel);
    addr.block = i % cfg.topo.blocks_per_plane;
    addr.page = i % cfg.topo.pages_per_block;
    const PageReadFault f =
        model.read_fault(amap.plane_index(addr), addr.block, addr.page, /*pe=*/0);
    const PageReadResult rr = flash.read_page_checked(0, addr, /*over_channel=*/false);
    EXPECT_EQ(rr.retries, f.retries);
    EXPECT_EQ(rr.corrected_bits, f.corrected_bits);
    EXPECT_EQ(rr.ready,
              static_cast<Tick>(1 + f.retries) * cfg.timing.read_latency + f.ecc_latency);
    retried += f.retries;
  }
  EXPECT_GT(retried, 0u);
  EXPECT_EQ(flash.reliability_stats().retries, retried);
}

TEST(FlashReliability, ForcedUncorrectableExhaustsTheWholeLadder) {
  // inject.uncorrectable = 1 forces every read to walk all max_retries
  // threshold shifts and still fail: latency is hand-computable.
  SsdConfig cfg = test_ssd_config();
  cfg.reliability.inject.uncorrectable = 1.0;
  FlashArray flash(cfg);
  ASSERT_TRUE(flash.reliability_enabled());

  const std::uint32_t ladder = cfg.reliability.retry.max_retries;
  const Tick decode = cfg.reliability.ecc.decode_latency;
  FlashAddress addr;  // plane 0, block 0, page 0
  const PageReadResult rr = flash.read_page_checked(0, addr, /*over_channel=*/false);
  EXPECT_TRUE(rr.uncorrectable);
  EXPECT_EQ(rr.retries, ladder);
  EXPECT_EQ(rr.ready, static_cast<Tick>(1 + ladder) * cfg.timing.read_latency +
                          static_cast<Tick>(1 + ladder) * decode);
  EXPECT_EQ(flash.reliability_stats().uncorrectable, 1u);
}

TEST(FlashReliability, DisabledModelKeepsIdealTiming) {
  const SsdConfig cfg = test_ssd_config();  // reliability off by default
  FlashArray flash(cfg);
  ASSERT_FALSE(flash.reliability_enabled());
  FlashAddress addr;
  const PageReadResult rr = flash.read_page_checked(0, addr, /*over_channel=*/false);
  EXPECT_EQ(rr.ready, cfg.timing.read_latency);
  EXPECT_EQ(rr.retries, 0u);
  EXPECT_EQ(flash.block_pe(0, 0), 0u);
  EXPECT_EQ(flash.reliability_stats().retried_reads, 0u);
}

TEST(BadBlocks, ManagerIsIdempotentAndKeepsOrder) {
  reliability::BadBlockManager bbm(4);
  EXPECT_TRUE(bbm.retire(1, 7, RetireReason::kProgramFail));
  EXPECT_FALSE(bbm.retire(1, 7, RetireReason::kEraseFail));  // already retired
  EXPECT_TRUE(bbm.retire(3, 0, RetireReason::kUncorrectable));
  EXPECT_TRUE(bbm.is_bad(1, 7));
  EXPECT_FALSE(bbm.is_bad(1, 6));
  EXPECT_FALSE(bbm.is_bad(0, 7));
  ASSERT_EQ(bbm.retired_count(), 2u);
  EXPECT_EQ(bbm.retired()[0].plane, 1u);
  EXPECT_EQ(bbm.retired()[0].block, 7u);
  EXPECT_EQ(bbm.retired()[0].reason, RetireReason::kProgramFail);
  EXPECT_EQ(bbm.retired()[1].reason, RetireReason::kUncorrectable);
}

SsdConfig tiny_config(std::uint32_t blocks, std::uint32_t pages = 4) {
  SsdConfig cfg = test_ssd_config();
  cfg.topo.channels = 1;
  cfg.topo.chips_per_channel = 1;
  cfg.topo.dies_per_chip = 1;
  cfg.topo.planes_per_die = 2;
  cfg.topo.blocks_per_plane = blocks;
  cfg.topo.pages_per_block = pages;
  return cfg;
}

TEST(BadBlocks, ProgramFailureRetiresBlockAndRemapsTheWrite) {
  SsdConfig cfg = tiny_config(/*blocks=*/16);
  cfg.reliability.inject.program_fail = 0.2;
  cfg.reliability.fault_seed = 11;
  FlashArray flash(cfg);
  Ftl ftl(flash, /*reserved_blocks_per_plane=*/1);

  constexpr std::uint64_t kLpns = 40;
  for (std::uint64_t lpn = 0; lpn < kLpns; ++lpn) ftl.write_page(0, lpn);

  EXPECT_GT(flash.reliability_stats().program_failures, 0u);
  EXPECT_GT(ftl.stats().bad_blocks, 0u);
  EXPECT_EQ(ftl.stats().bad_blocks, ftl.bad_block_manager().retired_count());
  // Every write landed somewhere despite the failures, and reads work.
  for (std::uint64_t lpn = 0; lpn < kLpns; ++lpn) {
    ASSERT_TRUE(ftl.is_mapped(lpn));
    EXPECT_GT(ftl.read_page(0, lpn), 0u);
  }
  // Retired blocks are sealed: their retirement is permanent and recorded
  // with the program-failure reason.
  for (const auto& rb : ftl.bad_block_manager().retired()) {
    EXPECT_EQ(rb.reason, RetireReason::kProgramFail);
    EXPECT_TRUE(ftl.bad_block_manager().is_bad(rb.plane, rb.block));
  }
}

TEST(BadBlocks, GcRetiresVictimsWithUncorrectablePagesAndDataSurvives) {
  // Fill blocks half cold / half hot (sequential allocation interleaves the
  // write order into the blocks), invalidate the hot half, then compact with
  // idle GC: every victim has live cold pages the copy-back must relocate.
  // With a high uncorrectable-read rate some relocations fail, the copy is
  // rebuilt via the recovery path, and the victim is retired instead of
  // rejoining the free pool. All data must stay mapped and readable.
  SsdConfig cfg = tiny_config(/*blocks=*/8);
  cfg.reliability.inject.uncorrectable = 0.2;
  cfg.reliability.fault_seed = 5;
  FlashArray flash(cfg);
  Ftl ftl(flash, /*reserved_blocks_per_plane=*/1);

  // Allocation round-robins across the two planes per write, so cold and
  // hot writes go in pairs to land one of each on every plane.
  constexpr std::uint64_t kColdLpns = 16;
  constexpr std::uint64_t kHotLpns = 16;
  for (std::uint64_t i = 0; i < 8; ++i) {
    ftl.write_page(0, 1000 + 2 * i);
    ftl.write_page(0, 1001 + 2 * i);
    ftl.write_page(0, i);
    ftl.write_page(0, i + 8);
  }
  Tick now = 0;
  for (std::uint64_t i = 0; i < kHotLpns; ++i) now = ftl.write_page(now, i);
  ftl.idle_gc(now, /*max_episodes=*/32);

  const FtlStats stats = ftl.stats();
  ASSERT_GT(stats.gc_erases, 0u);
  ASSERT_GT(stats.gc_page_moves, 0u);
  EXPECT_GT(stats.gc_uncorrectable, 0u);
  EXPECT_GT(stats.bad_blocks, 0u);
  for (const auto& rb : ftl.bad_block_manager().retired()) {
    EXPECT_EQ(rb.reason, RetireReason::kUncorrectable);
  }
  // No page was lost: everything written is still mapped and readable, and
  // nothing live sits in a retired block waiting to disappear.
  const AddressMap amap(cfg.topo);
  for (std::uint64_t i = 0; i < kColdLpns; ++i) {
    ASSERT_TRUE(ftl.is_mapped(1000 + i));
    EXPECT_GT(ftl.read_page(0, 1000 + i), 0u);
    const auto addr = amap.from_ppn(ftl.physical_of(1000 + i));
    EXPECT_FALSE(ftl.bad_block_manager().is_bad(
        amap.plane_index(addr), addr.block - ftl.reserved_blocks_per_plane()));
  }
  for (std::uint64_t i = 0; i < kHotLpns; ++i) ASSERT_TRUE(ftl.is_mapped(i));
  // The pool shrank but the FTL still takes new writes.
  for (std::uint64_t lpn = 100; lpn < 104; ++lpn) ftl.write_page(0, lpn);
}

}  // namespace
}  // namespace fw::ssd

namespace fw::accel {
namespace {

EngineOptions fault_opts(double rber, std::uint64_t fault_seed,
                         double uncorrectable = 0.0) {
  EngineOptions o;
  o.ssd = ssd::test_ssd_config();
  o.ssd.reliability.rber.base = rber;
  o.ssd.reliability.inject.uncorrectable = uncorrectable;
  o.ssd.reliability.fault_seed = fault_seed;
  o.spec.num_walks = 1200;
  o.spec.length = 6;
  o.spec.seed = 99;
  return o;
}

class EngineFaults : public ::testing::Test {
 protected:
  EngineFaults()
      : g_(graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest)),
        pg_(g_, [] {
          partition::PartitionConfig pc;
          pc.block_capacity_bytes = 4096;
          pc.subgraphs_per_partition = 1u << 20;
          pc.subgraphs_per_range = 8;
          return pc;
        }()) {}
  graph::CsrGraph g_;
  partition::PartitionedGraph pg_;
};

TEST_F(EngineFaults, ElevatedRberPreservesWalkOutput) {
  // Faults may only ever change *when* things happen, never *what* the
  // walks do: per-walk RNG streams make trajectories independent of
  // fault-induced reordering.
  auto clean =
      SimulationBuilder(pg_).options(fault_opts(/*rber=*/0.0, /*fault_seed=*/7)).build();
  auto faulty = SimulationBuilder(pg_).options(fault_opts(/*rber=*/5e-3, /*fault_seed=*/7,
                                           /*uncorrectable=*/0.02)).build();
  const auto rc = clean.run();
  const auto rf = faulty.run();

  EXPECT_EQ(rc.visit_counts, rf.visit_counts);
  EXPECT_EQ(rc.metrics.total_hops, rf.metrics.total_hops);
  EXPECT_EQ(rc.metrics.walks_completed, rf.metrics.walks_completed);
  EXPECT_EQ(rc.metrics.dead_ends, rf.metrics.dead_ends);

  // ... but the faulty run pays for its retries and recoveries.
  EXPECT_GT(rf.exec_time, rc.exec_time);
  EXPECT_GT(rf.reliability.retried_reads, 0u);
  EXPECT_GT(rf.reliability.retries, 0u);
  EXPECT_GT(rf.reliability.corrected_bits, 0u);
  EXPECT_GT(rf.reliability.uncorrectable, 0u);
  EXPECT_GT(rf.metrics.recovered_pages, 0u);
  EXPECT_GT(rf.metrics.parked_walks, 0u);
  // The clean run has an idle fault model end to end.
  EXPECT_EQ(rc.reliability.retried_reads, 0u);
  EXPECT_EQ(rc.metrics.parked_walks, 0u);
}

TEST_F(EngineFaults, FaultRunsAreBitReproducible) {
  auto e1 = SimulationBuilder(pg_).options(fault_opts(5e-3, 7, 0.02)).build();
  auto e2 = SimulationBuilder(pg_).options(fault_opts(5e-3, 7, 0.02)).build();
  const auto r1 = e1.run();
  const auto r2 = e2.run();
  EXPECT_EQ(r1.exec_time, r2.exec_time);
  EXPECT_EQ(r1.visit_counts, r2.visit_counts);
  EXPECT_EQ(r1.flash_read_bytes, r2.flash_read_bytes);
  EXPECT_EQ(r1.reliability.retries, r2.reliability.retries);
  EXPECT_EQ(r1.reliability.corrected_bits, r2.reliability.corrected_bits);
  EXPECT_EQ(r1.reliability.uncorrectable, r2.reliability.uncorrectable);
  EXPECT_EQ(r1.metrics.parked_walks, r2.metrics.parked_walks);
}

TEST_F(EngineFaults, FaultSeedShiftsTimingNotTrajectories) {
  auto e1 = SimulationBuilder(pg_).options(fault_opts(5e-3, 7)).build();
  auto e2 = SimulationBuilder(pg_).options(fault_opts(5e-3, 8)).build();
  const auto r1 = e1.run();
  const auto r2 = e2.run();
  EXPECT_EQ(r1.visit_counts, r2.visit_counts);
  EXPECT_EQ(r1.metrics.total_hops, r2.metrics.total_hops);
  EXPECT_NE(r1.reliability.corrected_bits, r2.reliability.corrected_bits);
}

}  // namespace
}  // namespace fw::accel
