// GraphSSD-style baseline: conservation, per-hop I/O accounting, cache
// behaviour, and positioning between GraphWalker and FlashWalker.
#include <gtest/gtest.h>

#include "accel/builder.hpp"
#include "accel/engine.hpp"
#include "baseline/graphssd.hpp"
#include "baseline/graphwalker.hpp"
#include "graph/datasets.hpp"
#include "rw/algorithms.hpp"

namespace fw::baseline {
namespace {

GraphSsdOptions gs_opts(std::uint64_t walks = 3000) {
  GraphSsdOptions o;
  o.ssd = ssd::test_ssd_config();
  o.spec.num_walks = walks;
  o.spec.length = 6;
  o.spec.seed = 9;
  o.host.memory_bytes = 64 * KiB;
  return o;
}

TEST(GraphSsd, ConservesWalks) {
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  GraphSsdEngine engine(g, gs_opts());
  const auto r = engine.run();
  EXPECT_EQ(r.walks_started, 3000u);
  EXPECT_EQ(r.walks_completed, 3000u);
  EXPECT_GT(r.exec_time, 0u);
}

TEST(GraphSsd, ReadsPagesNotBlocks) {
  // Page-granular I/O: bytes read per hop far below GraphWalker's
  // block-granular reads on a cold cache.
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  auto opts = gs_opts(3000);
  opts.host.memory_bytes = 4 * KiB;  // nearly no cache
  GraphSsdEngine engine(g, opts);
  const auto r = engine.run();
  EXPECT_GT(r.block_loads, 0u);
  EXPECT_EQ(r.bytes_read, r.block_loads * ssd::test_ssd_config().topo.page_bytes);
}

TEST(GraphSsd, CacheCutsIo) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  auto small = gs_opts(3000);
  small.host.memory_bytes = 4 * KiB;
  auto large = gs_opts(3000);
  large.host.memory_bytes = 16 * MiB;  // whole graph's pages fit
  GraphSsdEngine e_small(g, small), e_large(g, large);
  const auto r_small = e_small.run();
  const auto r_large = e_large.run();
  EXPECT_LT(r_large.bytes_read, r_small.bytes_read);
  EXPECT_GT(e_large.cache_hits(), e_small.cache_hits());
  EXPECT_LE(r_large.exec_time, r_small.exec_time);
}

TEST(GraphSsd, VisitTotalsMatchReference) {
  const auto g = graph::make_dataset(graph::DatasetId::TT, graph::Scale::kTest);
  auto opts = gs_opts(20'000);
  GraphSsdEngine engine(g, opts);
  const auto r = engine.run();
  const auto ref = rw::run_walks(g, opts.spec);
  const auto rt = static_cast<double>(ref.total_hops);
  EXPECT_NEAR(static_cast<double>(r.total_hops), rt, 0.05 * rt);
}

TEST(GraphSsd, InStorageWalkingStillWins) {
  // Graph-semantic reads beat nothing here: each hop still crosses
  // flash -> channel -> PCIe + NVMe overheads, so FlashWalker stays ahead.
  const auto g = graph::make_dataset(graph::DatasetId::FS, graph::Scale::kTest);
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = 4096;
  const partition::PartitionedGraph pg(g, pc);
  accel::EngineOptions fw_opts;
  fw_opts.ssd = ssd::test_ssd_config();
  fw_opts.spec.num_walks = 5000;
  fw_opts.spec.length = 6;
  fw_opts.record_visits = false;
  auto fw_engine = accel::SimulationBuilder(pg).options(fw_opts).build();
  const auto fw = fw_engine.run();

  auto opts = gs_opts(5000);
  opts.record_visits = false;
  GraphSsdEngine gs(g, opts);
  const auto r = gs.run();
  EXPECT_LT(fw.exec_time, r.exec_time);
}

}  // namespace
}  // namespace fw::baseline
