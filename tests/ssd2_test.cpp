// Tests for the deeper SSD substrates: banked DRAM timing, the NVMe host
// interface (MDTS splitting, queue-depth backpressure, multi-queue), and
// FTL wear leveling.
#include <gtest/gtest.h>

#include "ssd/dram_banked.hpp"
#include "ssd/ftl.hpp"
#include "ssd/nvme.hpp"

namespace fw::ssd {
namespace {

// --- BankedDram --------------------------------------------------------------

TEST(BankedDram, RowHitIsCheaperThanMiss) {
  BankedDram dram{DramConfig{}};
  // First access to a row: activate + CAS.
  const Tick t1 = dram.access(0, /*addr=*/0, 64);
  // Same row immediately after: CAS only — strictly sooner per byte.
  BankedDram dram2{DramConfig{}};
  dram2.access(0, 0, 64);
  const Tick t_hit = dram2.access(t1, 0, 64) - t1;
  BankedDram dram3{DramConfig{}};
  const Tick t_coldmiss = dram3.access(0, 0, 64);
  EXPECT_LT(t_hit, t_coldmiss);
  EXPECT_EQ(dram3.stats().row_misses, 1u);
}

TEST(BankedDram, SequentialStreamHitsRows) {
  BankedDram dram{DramConfig{}, 8, 2048};
  Tick t = 0;
  for (std::uint64_t a = 0; a < 64 * 1024; a += 64) {
    t = dram.access(t, a, 64);
  }
  EXPECT_GT(dram.stats().row_hit_rate(), 0.9);
}

TEST(BankedDram, ScatteredAccessesMissRows) {
  BankedDram dram{DramConfig{}, 8, 2048};
  Tick t = 0;
  // Stride far beyond the row size and bank count.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    t = dram.access(t, i * 1'000'003, 16);
  }
  EXPECT_LT(dram.stats().row_hit_rate(), 0.1);
}

TEST(BankedDram, ScatteredSlowerThanSequential) {
  BankedDram seq{DramConfig{}, 8, 2048};
  BankedDram scat{DramConfig{}, 8, 2048};
  Tick t_seq = 0, t_scat = 0;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    t_seq = seq.access(t_seq, i * 16, 16);
    t_scat = scat.access(t_scat, i * 1'000'003, 16);
  }
  EXPECT_GT(t_scat, t_seq);
}

TEST(BankedDram, TimingDerivation) {
  BankedDram dram{DramConfig{}};  // DDR4-1600: tCK = 1.25 ns
  EXPECT_EQ(dram.t_cas(), static_cast<Tick>(22 * 1.25));
  EXPECT_EQ(dram.t_rcd(), static_cast<Tick>(22 * 1.25));
  EXPECT_EQ(dram.t_ras(), static_cast<Tick>(52 * 1.25));
}

TEST(BankedDram, BytesAccounted) {
  BankedDram dram{DramConfig{}};
  dram.access(0, 0, 100);
  dram.access(0, 5000, 200);
  EXPECT_EQ(dram.bytes_moved(), 300u);
  EXPECT_EQ(dram.stats().accesses, 2u);
}

// --- NVMe --------------------------------------------------------------------

struct NvmeFixture : ::testing::Test {
  NvmeFixture() : flash(test_ssd_config()), dev(flash), nvme(dev, NvmeConfig{}) {}
  FlashArray flash;
  SsdDevice dev;
  NvmeInterface nvme;
};

TEST_F(NvmeFixture, MdtsSplitsLargeTransfers) {
  const auto mdts = nvme.config().mdts_bytes;
  nvme.read(0, 0, 4 * mdts + 1);
  EXPECT_EQ(nvme.stats().commands, 5u);
  EXPECT_EQ(nvme.stats().read_commands, 5u);
}

TEST_F(NvmeFixture, SmallTransferIsOneCommand) {
  nvme.read(0, 0, 4096);
  EXPECT_EQ(nvme.stats().commands, 1u);
}

TEST_F(NvmeFixture, ZeroBytesIsFree) {
  EXPECT_EQ(nvme.read(42, 0, 0), 42u);
  EXPECT_EQ(nvme.stats().commands, 0u);
}

TEST_F(NvmeFixture, CommandOverheadAdds) {
  // Through NVMe, a read completes later than the raw device path.
  FlashArray flash2(test_ssd_config());
  SsdDevice dev2(flash2);
  const Tick raw = dev2.host_read(0, 64 * KiB);
  const Tick via_nvme = nvme.read(0, 0, 64 * KiB);
  EXPECT_GT(via_nvme, raw);
}

TEST_F(NvmeFixture, WritesCounted) {
  nvme.write(0, 1, 8 * KiB);
  EXPECT_EQ(nvme.stats().write_commands, 1u);
}

TEST(Nvme, QueueDepthBackpressure) {
  FlashArray flash(test_ssd_config());
  SsdDevice dev(flash);
  NvmeConfig cfg;
  cfg.queue_pairs = 1;
  cfg.queue_depth = 2;
  cfg.mdts_bytes = 4096;
  NvmeInterface nvme(dev, cfg);
  // 16 pages split into 16 commands against depth 2: must stall.
  nvme.read(0, 0, 16 * 4096);
  EXPECT_GT(nvme.stats().depth_stalls, 0u);
}

TEST(Nvme, DeeperQueueFinishesNoLater) {
  auto run = [](std::uint32_t depth) {
    FlashArray flash(test_ssd_config());
    SsdDevice dev(flash);
    NvmeConfig cfg;
    cfg.queue_depth = depth;
    cfg.mdts_bytes = 4096;
    NvmeInterface nvme(dev, cfg);
    return nvme.read(0, 0, 64 * 4096);
  };
  EXPECT_LE(run(64), run(1));
}

TEST(Nvme, RejectsZeroDepth) {
  FlashArray flash(test_ssd_config());
  SsdDevice dev(flash);
  NvmeConfig cfg;
  cfg.queue_depth = 0;
  EXPECT_THROW(NvmeInterface(dev, cfg), std::invalid_argument);
}

// --- FTL wear leveling ----------------------------------------------------------

TEST(FtlWear, EraseCountsTracked) {
  SsdConfig cfg = test_ssd_config();
  cfg.topo.channels = 1;
  cfg.topo.chips_per_channel = 1;
  cfg.topo.dies_per_chip = 1;
  cfg.topo.planes_per_die = 1;
  cfg.topo.blocks_per_plane = 4;
  cfg.topo.pages_per_block = 4;
  FlashArray flash(cfg);
  Ftl ftl(flash, 1);
  for (int round = 0; round < 40; ++round) {
    for (std::uint64_t lpn = 0; lpn < 4; ++lpn) ftl.write_page(0, lpn);
  }
  const auto stats = ftl.stats();
  EXPECT_GT(stats.gc_erases, 0u);
  EXPECT_GT(stats.max_block_erases, 0u);
  // Wear-aware victim selection keeps wear within a small spread.
  EXPECT_LE(stats.wear_spread(), stats.max_block_erases);
  EXPECT_LE(stats.wear_spread(), 4u);
}

}  // namespace
}  // namespace fw::ssd
