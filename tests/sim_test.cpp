// Unit tests for the DES kernel: event queue ordering, simulator clock,
// contention primitives, timeline recorder.
#include <gtest/gtest.h>

#include <vector>

#include "common/units.hpp"
#include "sim/event_queue.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "sim/timeline.hpp"

namespace fw::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTicksFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  Tick seen = 0;
  sim.schedule(100, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 100u);
  EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] {
    ++fired;
    sim.schedule(10, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20u);
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(100, [&] { ++fired; });
  sim.run(50);
  EXPECT_EQ(fired, 1);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ScheduleAtClampsToNow) {
  Simulator sim;
  sim.schedule(100, [&] {
    sim.schedule_at(50, [] {});  // in the past: clamped
  });
  sim.run();
  EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulator, StepExecutesOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1, [&] { ++fired; });
  sim.schedule(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(SerialResource, FifoQueuing) {
  SerialResource r;
  EXPECT_EQ(r.acquire(0, 10), 10u);
  EXPECT_EQ(r.acquire(0, 10), 20u);   // queued behind the first
  EXPECT_EQ(r.acquire(50, 10), 60u);  // idle gap, starts at 50
  EXPECT_EQ(r.busy_time(), 30u);
  EXPECT_EQ(r.requests(), 3u);
}

TEST(SerialResource, Utilization) {
  SerialResource r;
  r.acquire(0, 50);
  EXPECT_DOUBLE_EQ(r.utilization(100), 0.5);
}

TEST(BandwidthLink, RateAndLatency) {
  BandwidthLink link(1000, 100);  // 1 GB/s + 100 ns setup
  // 1 MB at 1 GB/s = 1'000'000 ns + 100 ns.
  EXPECT_EQ(link.transfer(0, 1'000'000), 1'000'100u);
  EXPECT_EQ(link.bytes_moved(), 1'000'000u);
}

TEST(BandwidthLink, SerializesTransfers) {
  BandwidthLink link(1000, 0);
  const Tick t1 = link.transfer(0, 1000);
  const Tick t2 = link.transfer(0, 1000);
  EXPECT_EQ(t1, 1000u / 1000 * 1000);  // 1 us
  EXPECT_EQ(t2, 2 * t1);
}

TEST(TimelineRecorder, ComputesRates) {
  TimelineRecorder rec(1000);
  rec.sample(1000, 1'000'000, 0, 500'000, 1'500'000, 50, 100);
  ASSERT_EQ(rec.points().size(), 1u);
  const auto& p = rec.points()[0];
  // 1 MB over 1 us = 1e6 MB/s.
  EXPECT_DOUBLE_EQ(p.flash_read_mb_s, 1e6);
  EXPECT_DOUBLE_EQ(p.channel_mb_s, 5e5);
  EXPECT_DOUBLE_EQ(p.walks_done_pct, 50.0);
}

TEST(TimelineRecorder, DeltasBetweenSamples) {
  TimelineRecorder rec(1000);
  rec.sample(1000, 1000, 0, 0, 0, 0, 10);
  rec.sample(2000, 1000, 0, 0, 0, 10, 10);  // no new bytes
  ASSERT_EQ(rec.points().size(), 2u);
  EXPECT_DOUBLE_EQ(rec.points()[1].flash_read_mb_s, 0.0);
  EXPECT_DOUBLE_EQ(rec.points()[1].walks_done_pct, 100.0);
}

TEST(TimelineRecorder, IgnoresNonAdvancingSample) {
  TimelineRecorder rec(10);
  rec.sample(10, 1, 1, 1, 1, 1, 2);
  rec.sample(10, 2, 2, 2, 2, 2, 2);  // same tick: dropped
  EXPECT_EQ(rec.points().size(), 1u);
}

TEST(Determinism, SameScheduleSameTrace) {
  auto run_once = [] {
    Simulator sim;
    std::vector<Tick> trace;
    for (int i = 0; i < 100; ++i) {
      sim.schedule((i * 37) % 50, [&trace, &sim] { trace.push_back(sim.now()); });
    }
    sim.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace fw::sim
