// Statistical (chi-square goodness-of-fit) tests for the sampling kernels:
// uniform neighbor choice, ITS biased sampling, and node2vec second-order
// rejection sampling including its pathological-p/q uniform fallback.
//
// Critical values come from the Wilson–Hilferty cube approximation at
// z = 3.09 (p ≈ 0.999), so a correct sampler fails a given test with
// probability ~1e-3 — and since every test runs a fixed seed, outcomes are
// deterministic: these either always pass or flag a real distribution bug.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "graph/builder.hpp"
#include "rw/sampler.hpp"

namespace fw::rw {
namespace {

/// Wilson–Hilferty chi-square critical value at p ≈ 0.999 (z = 3.09).
double chi2_crit(double df) {
  const double z = 3.09;
  const double a = 1.0 - 2.0 / (9.0 * df) + z * std::sqrt(2.0 / (9.0 * df));
  return df * a * a * a;
}

graph::CsrGraph star_graph(std::size_t leaves, bool weighted) {
  // Vertex 0 points at vertices 1..leaves; weight = leaf index when kept.
  graph::GraphBuilder b(leaves + 1);
  for (std::size_t i = 1; i <= leaves; ++i) {
    b.add_edge(0, i, static_cast<float>(i));
  }
  graph::BuildOptions opts;
  opts.keep_weights = weighted;
  return std::move(b).build(opts);
}

TEST(SamplerStats, UnbiasedIsUniform) {
  const auto g = star_graph(16, false);
  Xoshiro256 rng(101);
  constexpr int kDraws = 160'000;
  std::vector<std::uint64_t> counts(17, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[sample_unbiased(g, 0, rng).next];
  EXPECT_EQ(counts[0], 0u);
  std::vector<double> expected(17, 0.0);
  for (int i = 1; i <= 16; ++i) expected[i] = 1.0 / 16;
  EXPECT_LT(chi_square(counts, expected), chi2_crit(15));
}

TEST(SamplerStats, BoundedDrawIsUniformForNonPowerOfTwoRange) {
  // The Lemire rejection step is what de-biases non-power-of-two bounds;
  // exercise it directly since every sampler builds on it.
  Xoshiro256 rng(202);
  constexpr std::uint64_t kBound = 6;
  constexpr int kDraws = 120'000;
  std::vector<std::uint64_t> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.bounded(kBound)];
  const std::vector<double> expected(kBound, 1.0 / kBound);
  EXPECT_LT(chi_square(counts, expected), chi2_crit(kBound - 1));
}

TEST(SamplerStats, ItsMatchesEdgeWeights) {
  // Leaf i carries weight i, so P(i) = i / (1 + 2 + ... + 12).
  constexpr std::size_t kLeaves = 12;
  const auto g = star_graph(kLeaves, true);
  const ItsTable its(g);
  Xoshiro256 rng(303);
  constexpr int kDraws = 200'000;
  std::vector<std::uint64_t> counts(kLeaves + 1, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[its.sample(g, 0, rng).next];
  const double total = kLeaves * (kLeaves + 1) / 2.0;
  std::vector<double> expected(kLeaves + 1, 0.0);
  for (std::size_t i = 1; i <= kLeaves; ++i) {
    expected[i] = static_cast<double>(i) / total;
  }
  EXPECT_LT(chi_square(counts, expected), chi2_crit(kLeaves - 1));
}

TEST(SamplerStats, ItsSliceMatchesConditionalWeights) {
  // Restricting ITS to edges [4, 8) of the star (leaves 5..8) must produce
  // the weight distribution *conditioned* on that slice.
  const auto g = star_graph(12, true);
  const ItsTable its(g);
  Xoshiro256 rng(404);
  constexpr int kDraws = 120'000;
  std::vector<std::uint64_t> counts(13, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[its.sample_slice(g, /*vertex_first_edge=*/0, /*begin=*/4, /*end=*/8, rng)
                 .next];
  }
  const double total = 5 + 6 + 7 + 8;
  std::vector<double> expected(13, 0.0);
  for (int i = 5; i <= 8; ++i) expected[i] = i / total;
  EXPECT_LT(chi_square(counts, expected), chi2_crit(3));
}

/// node2vec fixture: prev = 0 with N(0) = {1, 2}; cur = 1 with
/// N(1) = {0, 2, 3}. From (0 -> 1), candidate 0 is the return hop (weight
/// 1/p), candidate 2 closes a triangle (weight 1), candidate 3 is an
/// outward hop (weight 1/q).
graph::CsrGraph node2vec_graph() {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 0);
  b.add_edge(1, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 1);
  b.add_edge(3, 1);
  return std::move(b).build();
}

TEST(SamplerStats, SecondOrderMatchesNode2vecWeights) {
  const auto g = node2vec_graph();
  const SecondOrderSpecView so{/*p=*/2.0, /*q=*/4.0};
  Xoshiro256 rng(505);
  constexpr int kDraws = 150'000;
  std::map<VertexId, std::uint64_t> hits;
  for (int i = 0; i < kDraws; ++i) {
    const auto s = sample_second_order(g, /*prev=*/0, /*cur=*/1, g.offsets()[1],
                                       g.offsets()[2], so, rng);
    ASSERT_NE(s.next, kInvalidVertex);
    ++hits[s.next];
  }
  // Un-normalized weights: return 1/p = 0.5, triangle 1, outward 1/q = 0.25.
  // The 16-attempt rejection budget leaves a ~(1 - 0.583)^16 ≈ 1e-6 uniform
  // contamination — far below chi-square sensitivity at this sample size.
  const double total = 0.5 + 1.0 + 0.25;
  const std::vector<std::uint64_t> counts = {hits[0], hits[2], hits[3]};
  const std::vector<double> expected = {0.5 / total, 1.0 / total, 0.25 / total};
  EXPECT_LT(chi_square(counts, expected), chi2_crit(2));
}

TEST(SamplerStats, SecondOrderExhaustedBudgetFallsBackToUniform) {
  // max_attempts = 0 skips rejection sampling entirely: the fallback draw
  // must be uniform over the slice regardless of p/q.
  const auto g = node2vec_graph();
  const SecondOrderSpecView so{/*p=*/2.0, /*q=*/4.0};
  Xoshiro256 rng(606);
  constexpr int kDraws = 90'000;
  std::map<VertexId, std::uint64_t> hits;
  for (int i = 0; i < kDraws; ++i) {
    const auto s = sample_second_order(g, 0, 1, g.offsets()[1], g.offsets()[2], so, rng,
                                       /*max_attempts=*/0);
    ++hits[s.next];
  }
  const std::vector<std::uint64_t> counts = {hits[0], hits[2], hits[3]};
  const std::vector<double> expected(3, 1.0 / 3);
  EXPECT_LT(chi_square(counts, expected), chi2_crit(2));
}

TEST(SamplerStats, SecondOrderPathologicalPQStillMakesProgress) {
  // p = q = 1e9 drives every candidate's acceptance weight to ~1e-9 while
  // w_max stays 1 (the triangle weight), so when cur has no triangle or
  // return candidates, all 16 attempts reject and the uniform fallback is
  // effectively the whole distribution. Walks must neither stall nor skew.
  graph::GraphBuilder b(5);
  b.add_edge(0, 1);  // prev 0's only neighbor is cur; N(0) ∩ N(1) = ∅
  b.add_edge(1, 2);
  b.add_edge(1, 3);
  b.add_edge(1, 4);
  const auto g = std::move(b).build();
  const SecondOrderSpecView so{/*p=*/1e9, /*q=*/1e9};
  Xoshiro256 rng(707);
  constexpr int kDraws = 90'000;
  std::map<VertexId, std::uint64_t> hits;
  for (int i = 0; i < kDraws; ++i) {
    const auto s =
        sample_second_order(g, 0, 1, g.offsets()[1], g.offsets()[2], so, rng);
    ASSERT_NE(s.next, kInvalidVertex);
    ++hits[s.next];
  }
  const std::vector<std::uint64_t> counts = {hits[2], hits[3], hits[4]};
  const std::vector<double> expected(3, 1.0 / 3);
  EXPECT_LT(chi_square(counts, expected), chi2_crit(2));
}

TEST(SamplerStats, UniformDoubleMomentsMatch) {
  // Sanity on the [0,1) transform every ITS/rejection draw uses: mean and
  // variance within 4 sigma of 1/2 and 1/12.
  Xoshiro256 rng(808);
  RunningStats stats;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) stats.add(rng.uniform());
  const double sigma_mean = std::sqrt(1.0 / 12 / kDraws);
  EXPECT_NEAR(stats.mean(), 0.5, 4 * sigma_mean);
  EXPECT_NEAR(stats.variance(), 1.0 / 12, 0.01);
  EXPECT_GE(stats.min(), 0.0);
  EXPECT_LT(stats.max(), 1.0);
}

}  // namespace
}  // namespace fw::rw
