// Dense vertices mapping table (paper §III.D "Pre-walking for a Dense
// Vertex"): a Bloom filter plus a hash table of per-dense-vertex graph-block
// metadata. The guider consults the Bloom filter first — a false positive
// merely costs one failed hash probe, so correctness is unaffected.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/bloom.hpp"
#include "partition/partitioned_graph.hpp"

namespace fw::partition {

/// Metadata the paper stores per dense vertex: the number of graph blocks,
/// the first block's ID, and the out-degree of the last (partial) block.
struct DenseVertexMeta {
  std::uint32_t num_blocks = 0;
  SubgraphId first_sgid = kInvalidSubgraph;
  std::uint64_t out_degree = 0;
  EdgeId last_block_degree = 0;
};

class DenseVertexTable {
 public:
  explicit DenseVertexTable(const PartitionedGraph& pg, double bloom_fpr = 0.01);

  struct Result {
    std::optional<DenseVertexMeta> meta;
    bool bloom_positive = false;      ///< filter said "maybe"
    bool bloom_false_positive = false;  ///< it said "maybe" but the table missed
  };

  [[nodiscard]] Result lookup(VertexId v) const;

  /// Fast-path membership check only.
  [[nodiscard]] bool may_be_dense(VertexId v) const { return bloom_.may_contain(v); }

  [[nodiscard]] std::size_t num_dense_vertices() const { return table_.size(); }
  [[nodiscard]] std::uint64_t table_bytes() const;
  [[nodiscard]] const BloomFilter& bloom() const { return bloom_; }

 private:
  BloomFilter bloom_;
  std::unordered_map<VertexId, DenseVertexMeta> table_;
  std::size_t id_bytes_;
};

}  // namespace fw::partition
