// Subgraph mapping table + subgraph range mapping table (paper §III.C/D).
//
// The board-level accelerator resolves a walk's destination subgraph by
// binary-searching a table sorted by each subgraph's low-end vertex. Every
// lookup returns the number of search *steps* taken so the engine can charge
// guider cycles; the channel-level "approximate walk search" narrows a later
// board-level search to one range of consecutive subgraphs, trading a cheap
// small-table search for most of the big-table steps.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "partition/partitioned_graph.hpp"

namespace fw::partition {

/// Device-level shard assignment for a multi-board array: partitions are
/// striped round-robin across devices, so consecutive partitions land on
/// different boards and every board owns a contiguous-in-stride slice of the
/// walk start distribution. Centralized here so the mapping table, engine,
/// and array coordinator can never disagree about a walk's home board.
[[nodiscard]] constexpr std::uint32_t device_of_partition(PartitionId p,
                                                          std::uint32_t devices) {
  return devices <= 1 ? 0u : static_cast<std::uint32_t>(p % devices);
}

struct MappingEntry {
  VertexId low_vid;
  VertexId high_vid;
  SubgraphId sgid;
  std::uint64_t flash_page;      ///< first flash page of the graph block
  std::uint64_t sum_out_degree;  ///< paper: stored per entry
  bool dense;
};

struct Lookup {
  SubgraphId sgid = kInvalidSubgraph;
  std::uint32_t steps = 0;  ///< binary-search probes performed
  [[nodiscard]] bool found() const { return sgid != kInvalidSubgraph; }
};

struct RangeLookup {
  std::uint32_t range_id = ~0u;
  std::uint32_t steps = 0;
  [[nodiscard]] bool found() const { return range_id != ~0u; }
};

class SubgraphMappingTable {
 public:
  /// Builds entries for every subgraph; `flash_page_of(sgid)` supplies the
  /// physical placement recorded in each entry.
  SubgraphMappingTable(const PartitionedGraph& pg,
                       const std::vector<std::uint64_t>& first_flash_page);

  /// Full-table binary search (board-level, no range hint). For a dense
  /// vertex this returns its *first* block; pre-walking picks the real one.
  [[nodiscard]] Lookup find(VertexId v) const;

  /// Approximate walk search (channel-level): which subgraph *range* holds v.
  [[nodiscard]] RangeLookup find_range(VertexId v) const;

  /// Board-level search constrained to one range (tagged roving walks).
  [[nodiscard]] Lookup find_in_range(VertexId v, std::uint32_t range_id) const;

  [[nodiscard]] const std::vector<MappingEntry>& entries() const { return entries_; }
  [[nodiscard]] std::uint32_t num_ranges() const {
    return static_cast<std::uint32_t>(ranges_.size());
  }

  /// The entry-index span [first, first + count) of a range — used by the
  /// channel-level foreigner check (paper §III.C: the range table "can also
  /// decide whether a walk is in the current graph partition").
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> range_span(
      std::uint32_t range_id) const {
    const Range& r = ranges_[range_id];
    return {r.first_entry, r.count};
  }
  [[nodiscard]] std::uint32_t subgraphs_per_range() const { return subgraphs_per_range_; }

  /// SRAM footprint of the full table / range table (entry sizes follow the
  /// paper's field lists).
  [[nodiscard]] std::uint64_t table_bytes() const;
  [[nodiscard]] std::uint64_t range_table_bytes() const;

  /// Annotates every entry with its home device for an N-board array
  /// (round-robin over partitions; see device_of_partition). Kept out of
  /// MappingEntry so the single-device SRAM area model (table_bytes) is
  /// untouched; the array's extra column is reported separately via
  /// device_table_bytes(). Idempotent; devices == 0 is rejected.
  void assign_devices(const PartitionedGraph& pg, std::uint32_t devices);
  [[nodiscard]] std::uint32_t num_devices() const { return num_devices_; }
  /// Home device of a subgraph (0 until assign_devices is called).
  [[nodiscard]] std::uint32_t device_of(SubgraphId sg) const {
    return entry_device_.empty() ? 0u : entry_device_[sg];
  }
  /// SRAM cost of the device column (one byte per entry, up to 256 boards);
  /// zero until assign_devices is called.
  [[nodiscard]] std::uint64_t device_table_bytes() const {
    return entry_device_.size();
  }

  /// Worst-case binary-search step count (ceil log2 of entry count).
  [[nodiscard]] std::uint32_t max_search_steps() const;

 private:
  struct Range {
    VertexId low_vid;
    VertexId high_vid;
    std::uint32_t first_entry;  ///< index into entries_
    std::uint32_t count;
  };

  [[nodiscard]] Lookup search_span(VertexId v, std::uint32_t first,
                                   std::uint32_t count) const;

  std::vector<MappingEntry> entries_;  // sorted by low_vid (construction order)
  std::vector<Range> ranges_;
  std::uint32_t subgraphs_per_range_;
  std::size_t id_bytes_;
  std::uint32_t num_devices_ = 1;
  std::vector<std::uint8_t> entry_device_;  // per sgid; empty = single device
};

}  // namespace fw::partition
