#include "partition/partitioned_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace fw::partition {

PartitionedGraph::PartitionedGraph(const graph::CsrGraph& graph, PartitionConfig config)
    : graph_(&graph), config_(config) {
  if (config_.block_capacity_bytes == 0 || config_.subgraphs_per_partition == 0 ||
      config_.subgraphs_per_range == 0) {
    throw std::invalid_argument("PartitionConfig: zero-sized parameter");
  }
  id_bytes_ = graph.id_bytes();
  const std::uint64_t bytes_per_edge =
      id_bytes_ + (config_.weighted && graph.weighted() ? sizeof(float) : 0);
  edges_per_block_ = std::max<EdgeId>(1, config_.block_capacity_bytes / bytes_per_edge);
  build_subgraphs();
  build_in_degrees();
  num_partitions_ = (num_subgraphs() + config_.subgraphs_per_partition - 1) /
                    config_.subgraphs_per_partition;
}

void PartitionedGraph::build_subgraphs() {
  const auto& g = *graph_;
  const VertexId n = g.num_vertices();
  vertex_to_subgraph_.assign(n, kInvalidSubgraph);

  const std::uint64_t bytes_per_edge =
      id_bytes_ + (config_.weighted && g.weighted() ? sizeof(float) : 0);
  // One offsets entry, plus the label byte when blocks carry labels.
  const std::uint64_t bytes_per_vertex_hdr =
      id_bytes_ + (config_.labeled && g.labeled() ? 1 : 0);

  auto emit = [&](VertexId low, VertexId high, EdgeId ebegin, EdgeId eend, bool dense,
                  std::uint32_t dense_idx, std::uint64_t payload) {
    Subgraph sg;
    sg.id = static_cast<SubgraphId>(subgraphs_.size());
    sg.low_vid = low;
    sg.high_vid = high;
    sg.edge_begin = ebegin;
    sg.edge_end = eend;
    sg.dense = dense;
    sg.dense_block_index = dense_idx;
    sg.payload_bytes = payload;
    for (VertexId v = low; v <= high; ++v) {
      if (vertex_to_subgraph_[v] == kInvalidSubgraph) vertex_to_subgraph_[v] = sg.id;
    }
    subgraphs_.push_back(sg);
  };

  VertexId run_start = 0;
  EdgeId run_edge_begin = 0;
  std::uint64_t run_bytes = 0;
  bool run_open = false;

  auto close_run = [&](VertexId last) {
    if (run_open) {
      emit(run_start, last, run_edge_begin, g.offsets()[last + 1], false, 0, run_bytes);
      run_open = false;
      run_bytes = 0;
    }
  };

  for (VertexId v = 0; v < n; ++v) {
    const EdgeId deg = g.out_degree(v);
    const std::uint64_t v_bytes = bytes_per_vertex_hdr + deg * bytes_per_edge;

    if (v_bytes > config_.block_capacity_bytes) {
      // Dense vertex: flush the open run, then split v across blocks.
      if (v > 0) close_run(v - 1);
      const EdgeId per_block = edges_per_block_;
      const EdgeId base = g.offsets()[v];
      const auto blocks =
          static_cast<std::uint32_t>((deg + per_block - 1) / per_block);
      for (std::uint32_t b = 0; b < blocks; ++b) {
        const EdgeId ebegin = base + static_cast<EdgeId>(b) * per_block;
        const EdgeId eend = std::min(base + deg, ebegin + per_block);
        emit(v, v, ebegin, eend, true, b,
             bytes_per_vertex_hdr + (eend - ebegin) * bytes_per_edge);
      }
      run_start = v + 1;
      run_edge_begin = g.offsets()[v + 1];
      continue;
    }

    if (run_open && run_bytes + v_bytes > config_.block_capacity_bytes) {
      close_run(v - 1);
    }
    if (!run_open) {
      run_start = v;
      run_edge_begin = g.offsets()[v];
      run_open = true;
    }
    run_bytes += v_bytes;
  }
  if (run_open) close_run(n - 1);

  if (subgraphs_.empty() && n > 0) {
    emit(0, n - 1, 0, g.num_edges(), false, 0, 0);
  }
}

void PartitionedGraph::build_in_degrees() {
  in_degree_sums_.assign(subgraphs_.size(), 0);
  // Count each incoming edge against the subgraph owning the destination
  // (the first block of a dense vertex).
  for (VertexId dst : graph_->edges()) {
    const SubgraphId sg = vertex_to_subgraph_[dst];
    if (sg != kInvalidSubgraph) ++in_degree_sums_[sg];
  }
}

std::pair<SubgraphId, SubgraphId> PartitionedGraph::partition_range(PartitionId p) const {
  const SubgraphId first = p * config_.subgraphs_per_partition;
  const SubgraphId last =
      std::min<SubgraphId>(num_subgraphs(), first + config_.subgraphs_per_partition);
  return {first, last};
}

bool PartitionedGraph::is_dense_vertex(VertexId v) const {
  const SubgraphId sg = vertex_to_subgraph_[v];
  return sg != kInvalidSubgraph && subgraphs_[sg].dense;
}

std::vector<SubgraphId> PartitionedGraph::top_k_popular(
    std::span<const SubgraphId> candidates, std::size_t k) const {
  std::vector<SubgraphId> ids(candidates.begin(), candidates.end());
  k = std::min(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(k), ids.end(),
                    [this](SubgraphId a, SubgraphId b) {
                      return in_degree_sums_[a] != in_degree_sums_[b]
                                 ? in_degree_sums_[a] > in_degree_sums_[b]
                                 : a < b;
                    });
  ids.resize(k);
  return ids;
}

}  // namespace fw::partition
