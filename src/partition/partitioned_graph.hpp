// The partitioned view of a graph: subgraph list, partition boundaries, and
// per-subgraph popularity (in-degree sums) used for hot-subgraph selection.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "partition/graph_block.hpp"

namespace fw::partition {

class PartitionedGraph {
 public:
  PartitionedGraph(const graph::CsrGraph& graph, PartitionConfig config);

  [[nodiscard]] const graph::CsrGraph& graph() const { return *graph_; }
  [[nodiscard]] const PartitionConfig& config() const { return config_; }

  [[nodiscard]] const std::vector<Subgraph>& subgraphs() const { return subgraphs_; }
  [[nodiscard]] std::uint32_t num_subgraphs() const {
    return static_cast<std::uint32_t>(subgraphs_.size());
  }
  [[nodiscard]] const Subgraph& subgraph(SubgraphId id) const { return subgraphs_[id]; }

  [[nodiscard]] std::uint32_t num_partitions() const { return num_partitions_; }
  [[nodiscard]] PartitionId partition_of(SubgraphId sg) const {
    return sg / config_.subgraphs_per_partition;
  }
  /// Subgraph ID range [first, last) of a partition.
  [[nodiscard]] std::pair<SubgraphId, SubgraphId> partition_range(PartitionId p) const;

  /// Exact subgraph containing `v` (the first block for a dense vertex).
  /// This is simulator-side ground truth; accelerator-visible lookups with
  /// timing go through SubgraphMappingTable.
  [[nodiscard]] SubgraphId subgraph_of(VertexId v) const { return vertex_to_subgraph_[v]; }

  [[nodiscard]] bool is_dense_vertex(VertexId v) const;

  /// Edges per graph block — size(gb) in the paper's pre-walking formula.
  [[nodiscard]] EdgeId edges_per_block() const { return edges_per_block_; }

  /// Sum of in-degrees of vertices in each subgraph — the popularity metric
  /// behind "store a few subgraphs with top in-degrees" (paper §I, §III.C).
  [[nodiscard]] const std::vector<std::uint64_t>& subgraph_in_degrees() const {
    return in_degree_sums_;
  }

  /// The K most popular subgraph IDs among `candidates` (by in-degree sum).
  [[nodiscard]] std::vector<SubgraphId> top_k_popular(std::span<const SubgraphId> candidates,
                                                      std::size_t k) const;

  [[nodiscard]] std::size_t id_bytes() const { return id_bytes_; }

 private:
  void build_subgraphs();
  void build_in_degrees();

  const graph::CsrGraph* graph_;
  PartitionConfig config_;
  std::size_t id_bytes_;
  EdgeId edges_per_block_;
  std::uint32_t num_partitions_ = 0;
  std::vector<Subgraph> subgraphs_;
  std::vector<SubgraphId> vertex_to_subgraph_;
  std::vector<std::uint64_t> in_degree_sums_;
};

}  // namespace fw::partition
