#include "partition/io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "graph/io.hpp"

namespace fw::partition {
namespace {

constexpr char kMagic[8] = {'F', 'W', 'P', 'A', 'R', 'T', '0', '1'};

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error("partition bundle: truncated stream");
  return value;
}

}  // namespace

void save_partitioned(const PartitionedGraph& pg, std::ostream& os) {
  os.write(kMagic, sizeof(kMagic));
  const PartitionConfig& cfg = pg.config();
  write_pod(os, cfg.block_capacity_bytes);
  write_pod(os, cfg.subgraphs_per_partition);
  write_pod(os, cfg.subgraphs_per_range);
  write_pod(os, static_cast<std::uint8_t>(cfg.weighted));
  // Checksums the loader verifies after re-partitioning.
  write_pod(os, static_cast<std::uint64_t>(pg.num_subgraphs()));
  write_pod(os, static_cast<std::uint64_t>(pg.num_partitions()));
  graph::save_binary(pg.graph(), os);
  if (!os) throw std::runtime_error("partition bundle: write failed");
}

PartitionedBundle load_partitioned(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("partition bundle: bad magic");
  }
  PartitionConfig cfg;
  cfg.block_capacity_bytes = read_pod<std::uint64_t>(is);
  cfg.subgraphs_per_partition = read_pod<std::uint32_t>(is);
  cfg.subgraphs_per_range = read_pod<std::uint32_t>(is);
  cfg.weighted = read_pod<std::uint8_t>(is) != 0;
  const auto expect_subgraphs = read_pod<std::uint64_t>(is);
  const auto expect_partitions = read_pod<std::uint64_t>(is);

  PartitionedBundle bundle;
  bundle.graph = std::make_unique<graph::CsrGraph>(graph::load_binary(is));
  bundle.partitioned = std::make_unique<PartitionedGraph>(*bundle.graph, cfg);
  if (bundle.partitioned->num_subgraphs() != expect_subgraphs ||
      bundle.partitioned->num_partitions() != expect_partitions) {
    throw std::runtime_error(
        "partition bundle: layout checksum mismatch (corrupt file or "
        "incompatible partitioner version)");
  }
  return bundle;
}

void save_partitioned_file(const PartitionedGraph& pg, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  save_partitioned(pg, os);
}

PartitionedBundle load_partitioned_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return load_partitioned(is);
}

}  // namespace fw::partition
