#include "partition/mapping_table.hpp"

#include <bit>
#include <stdexcept>

namespace fw::partition {

SubgraphMappingTable::SubgraphMappingTable(
    const PartitionedGraph& pg, const std::vector<std::uint64_t>& first_flash_page)
    : subgraphs_per_range_(pg.config().subgraphs_per_range), id_bytes_(pg.id_bytes()) {
  const auto& sgs = pg.subgraphs();
  if (first_flash_page.size() != sgs.size()) {
    throw std::invalid_argument("mapping table: flash placement size mismatch");
  }
  entries_.reserve(sgs.size());
  for (const Subgraph& sg : sgs) {
    entries_.push_back(MappingEntry{sg.low_vid, sg.high_vid, sg.id, first_flash_page[sg.id],
                                    sg.sum_out_degree(), sg.dense});
  }
  for (std::uint32_t first = 0; first < entries_.size(); first += subgraphs_per_range_) {
    const auto count = std::min<std::uint32_t>(
        subgraphs_per_range_, static_cast<std::uint32_t>(entries_.size()) - first);
    ranges_.push_back(Range{entries_[first].low_vid,
                            entries_[first + count - 1].high_vid, first, count});
  }
}

Lookup SubgraphMappingTable::search_span(VertexId v, std::uint32_t first,
                                         std::uint32_t count) const {
  Lookup result;
  std::uint32_t lo = first;
  std::uint32_t hi = first + count;  // exclusive
  while (lo < hi) {
    ++result.steps;
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const MappingEntry& e = entries_[mid];
    if (v < e.low_vid) {
      hi = mid;
    } else if (v > e.high_vid) {
      lo = mid + 1;
    } else {
      // Dense vertices span several consecutive entries with equal
      // low/high; report the first block (pre-walking resolves the rest).
      // The back-scan deliberately crosses the span start: a dense vertex's
      // blocks may straddle a range boundary, and the first block is the
      // canonical answer regardless of which range matched.
      std::uint32_t idx = mid;
      while (idx > 0 && entries_[idx - 1].low_vid == e.low_vid &&
             entries_[idx - 1].high_vid == e.high_vid) {
        ++result.steps;
        --idx;
      }
      result.sgid = entries_[idx].sgid;
      return result;
    }
  }
  return result;
}

Lookup SubgraphMappingTable::find(VertexId v) const {
  return search_span(v, 0, static_cast<std::uint32_t>(entries_.size()));
}

RangeLookup SubgraphMappingTable::find_range(VertexId v) const {
  RangeLookup result;
  std::uint32_t lo = 0;
  auto hi = static_cast<std::uint32_t>(ranges_.size());
  while (lo < hi) {
    ++result.steps;
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const Range& r = ranges_[mid];
    if (v < r.low_vid) {
      hi = mid;
    } else if (v > r.high_vid) {
      lo = mid + 1;
    } else {
      result.range_id = mid;
      return result;
    }
  }
  return result;
}

Lookup SubgraphMappingTable::find_in_range(VertexId v, std::uint32_t range_id) const {
  if (range_id >= ranges_.size()) return {};
  const Range& r = ranges_[range_id];
  return search_span(v, r.first_entry, r.count);
}

void SubgraphMappingTable::assign_devices(const PartitionedGraph& pg,
                                          std::uint32_t devices) {
  if (devices == 0) {
    throw std::invalid_argument("mapping table: device count must be >= 1");
  }
  if (devices > 256) {
    throw std::invalid_argument("mapping table: device column holds at most 256 boards");
  }
  num_devices_ = devices;
  entry_device_.resize(entries_.size());
  for (const MappingEntry& e : entries_) {
    entry_device_[e.sgid] =
        static_cast<std::uint8_t>(device_of_partition(pg.partition_of(e.sgid), devices));
  }
}

std::uint64_t SubgraphMappingTable::table_bytes() const {
  // Per entry (paper): two end vertices, a flash address, sum of out-degree.
  const std::uint64_t per_entry = 2 * id_bytes_ + 4 + 4;
  return per_entry * entries_.size();
}

std::uint64_t SubgraphMappingTable::range_table_bytes() const {
  // Per range entry: low-end and high-end vertex IDs.
  return 2 * id_bytes_ * ranges_.size();
}

std::uint32_t SubgraphMappingTable::max_search_steps() const {
  return entries_.empty()
             ? 0
             : static_cast<std::uint32_t>(std::bit_width(entries_.size() - 1) + 1);
}

}  // namespace fw::partition
