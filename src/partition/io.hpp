// Partitioned-graph serialization.
//
// The paper excludes graph partitioning from measured time because
// "partitioned graphs are standard inputs to many different graph
// processing tasks" (§IV.A) — i.e., partitioning is a preprocessing step
// whose artifact is saved and reused. This is that artifact: a container
// holding the CSR plus the partitioning configuration, so loading it
// reproduces the exact PartitionedGraph (subgraph boundaries are a pure
// function of graph + config, which keeps the format small and the loader
// trivially verifiable).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "partition/partitioned_graph.hpp"

namespace fw::partition {

/// A loaded preprocessing artifact: owns the graph and its partitioned view.
struct PartitionedBundle {
  std::unique_ptr<graph::CsrGraph> graph;
  std::unique_ptr<PartitionedGraph> partitioned;
};

void save_partitioned(const PartitionedGraph& pg, std::ostream& os);
PartitionedBundle load_partitioned(std::istream& is);

void save_partitioned_file(const PartitionedGraph& pg, const std::string& path);
PartitionedBundle load_partitioned_file(const std::string& path);

}  // namespace fw::partition
