#include "partition/dense_table.hpp"

#include <algorithm>

namespace fw::partition {

DenseVertexTable::DenseVertexTable(const PartitionedGraph& pg, double bloom_fpr)
    : bloom_([&] {
        std::size_t dense_count = 0;
        VertexId prev = kInvalidVertex;
        for (const Subgraph& sg : pg.subgraphs()) {
          if (sg.dense && sg.low_vid != prev) {
            ++dense_count;
            prev = sg.low_vid;
          }
        }
        return std::max<std::size_t>(dense_count, 1);
      }(), bloom_fpr),
      id_bytes_(pg.id_bytes()) {
  const auto& sgs = pg.subgraphs();
  for (std::size_t i = 0; i < sgs.size(); ++i) {
    const Subgraph& sg = sgs[i];
    if (!sg.dense || sg.dense_block_index != 0) continue;
    DenseVertexMeta meta;
    meta.first_sgid = sg.id;
    meta.out_degree = pg.graph().out_degree(sg.low_vid);
    std::size_t j = i;
    while (j < sgs.size() && sgs[j].dense && sgs[j].low_vid == sg.low_vid) ++j;
    meta.num_blocks = static_cast<std::uint32_t>(j - i);
    meta.last_block_degree = sgs[j - 1].sum_out_degree();
    table_.emplace(sg.low_vid, meta);
    bloom_.insert(sg.low_vid);
  }
}

DenseVertexTable::Result DenseVertexTable::lookup(VertexId v) const {
  Result r;
  r.bloom_positive = bloom_.may_contain(v);
  if (!r.bloom_positive) return r;
  const auto it = table_.find(v);
  if (it == table_.end()) {
    r.bloom_false_positive = true;
    return r;
  }
  r.meta = it->second;
  return r;
}

std::uint64_t DenseVertexTable::table_bytes() const {
  // Per entry: vertex ID + {num_blocks, first block ID, last-block degree}.
  const std::uint64_t per_entry = id_bytes_ + 4 + 4 + 4;
  return bloom_.byte_size() + per_entry * table_.size();
}

}  // namespace fw::partition
