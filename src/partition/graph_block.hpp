// Graph-block layout (paper §III.D "Subgraph Mapping Table"):
//
//   "A subgraph stores its vertices and their out-edges in a flash memory
//    block with the fixed size and the flash memory block is referred to as
//    a graph block. Therefore, a subgraph contains varied number of vertices
//    since it has different number of out-edges."
//
// A *dense* vertex whose edge list alone exceeds a graph block is split
// across several consecutive graph blocks (each becomes its own subgraph
// with low == high == the dense vertex) — the precondition for pre-walking.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace fw::partition {

struct Subgraph {
  SubgraphId id = kInvalidSubgraph;
  VertexId low_vid = 0;       ///< first vertex covered (inclusive)
  VertexId high_vid = 0;      ///< last vertex covered (inclusive)
  EdgeId edge_begin = 0;      ///< global CSR edge range [begin, end)
  EdgeId edge_end = 0;
  bool dense = false;         ///< one block of a split dense vertex
  std::uint32_t dense_block_index = 0;  ///< position within the dense vertex's block list
  std::uint64_t payload_bytes = 0;      ///< stored offsets + edges (+ weights)

  [[nodiscard]] EdgeId sum_out_degree() const { return edge_end - edge_begin; }
  [[nodiscard]] VertexId vertex_count() const { return high_vid - low_vid + 1; }
};

struct PartitionConfig {
  /// Graph-block capacity. Paper: 256 KB (512 KB for ClueWeb); scaled down
  /// by default so subgraph counts stay proportional on scaled graphs.
  std::uint64_t block_capacity_bytes = 64 * 1024;
  /// Subgraphs per graph partition (fixed, except the last; paper §III.D).
  std::uint32_t subgraphs_per_partition = 256;
  /// Subgraphs per range in the channel-level approximate-search table
  /// (paper uses 256 as the example reduction factor).
  std::uint32_t subgraphs_per_range = 64;
  /// Store edge weights (biased random walk / ITS).
  bool weighted = false;
  /// Store per-vertex labels (heterogeneous graph / metapath walks): one
  /// label byte per vertex header in each graph block.
  bool labeled = false;
};

}  // namespace fw::partition
