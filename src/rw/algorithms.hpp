// Host-side reference implementations of the random-walk applications the
// paper motivates (§I): DeepWalk corpus generation, Personalized PageRank,
// node2vec sampling, SimRank estimation, and walk-based graph sampling.
//
// These run directly on the CSR (no timing model). The in-storage engine
// executes the *same* walk semantics under a timing model; tests cross-check
// the two (visit-distribution equivalence under a fixed spec).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "graph/csr.hpp"
#include "rw/sampler.hpp"
#include "rw/spec.hpp"

namespace fw::rw {

/// One random walk from `start`; returns the visited path (including start).
std::vector<VertexId> walk_path(const graph::CsrGraph& g, VertexId start,
                                const WalkSpec& spec, Xoshiro256& rng,
                                const ItsTable* its = nullptr);

struct WalkSummary {
  std::uint64_t walks = 0;
  std::uint64_t total_hops = 0;
  std::uint64_t dead_ends = 0;  ///< walks cut short at a zero-out-degree vertex
  std::vector<std::uint64_t> visit_counts;  ///< per-vertex visits (excl. starts)
};

/// Execute `spec` fully on the host; the ground truth the engines must match
/// statistically.
WalkSummary run_walks(const graph::CsrGraph& g, const WalkSpec& spec,
                      const ItsTable* its = nullptr);

// --- DeepWalk -------------------------------------------------------------

struct DeepWalkParams {
  std::uint32_t walks_per_vertex = 2;
  std::uint32_t walk_length = 6;
  std::uint64_t seed = 1;
};

/// The random-walk corpus DeepWalk feeds to skip-gram: one sequence per
/// (vertex, repeat).
std::vector<std::vector<VertexId>> deepwalk_corpus(const graph::CsrGraph& g,
                                                   const DeepWalkParams& params);

// --- Personalized PageRank --------------------------------------------------

struct PprParams {
  VertexId source = 0;
  std::uint64_t num_walks = 10'000;
  double restart_prob = 0.15;
  std::uint32_t max_hops = 32;  ///< safety bound per walk
  std::uint64_t seed = 1;
};

/// Monte-Carlo PPR: visit frequency of walk endpoints approximates the PPR
/// vector of `source`. Returns (vertex, score) sorted by descending score.
std::vector<std::pair<VertexId, double>> personalized_pagerank(const graph::CsrGraph& g,
                                                               const PprParams& params,
                                                               std::size_t top_k = 20);

// --- node2vec ----------------------------------------------------------------

struct Node2VecParams {
  double p = 1.0;  ///< return parameter
  double q = 1.0;  ///< in-out parameter
  std::uint32_t walk_length = 6;
  std::uint32_t walks_per_vertex = 1;
  std::uint64_t seed = 1;
};

/// Second-order biased walks via rejection sampling (KnightKing-style).
std::vector<std::vector<VertexId>> node2vec_walks(const graph::CsrGraph& g,
                                                  const Node2VecParams& params);

// --- SimRank ------------------------------------------------------------------

struct SimRankParams {
  double decay = 0.8;
  std::uint32_t max_hops = 10;
  std::uint64_t num_pairs = 20'000;  ///< sampled walk pairs
  std::uint64_t seed = 1;
};

/// Monte-Carlo SimRank s(a, b): expected decay^t of the first meeting time
/// of two reverse walks. (Uses out-edges on the given graph; pass a reversed
/// graph for textbook SimRank.)
double simrank(const graph::CsrGraph& g, VertexId a, VertexId b,
               const SimRankParams& params);

// --- Graph sampling -------------------------------------------------------------

struct SamplingParams {
  std::uint64_t target_vertices = 1000;
  std::uint32_t walk_length = 16;
  double restart_prob = 0.15;
  std::uint64_t seed = 1;
};

/// Random-walk-with-restart vertex sampling: returns the induced vertex set,
/// a small representative sample of a large graph (paper §I's sampling use
/// case).
std::vector<VertexId> rw_sample_vertices(const graph::CsrGraph& g,
                                         const SamplingParams& params);

/// Metropolis–Hastings random-walk sampling: corrects the degree bias of a
/// plain random walk (acceptance min(1, deg(cur)/deg(candidate))), yielding
/// a near-uniform vertex sample from walk exploration alone. The correction
/// assumes symmetric adjacency — pass an undirected (symmetrized) graph for
/// the textbook guarantee.
std::vector<VertexId> mhrw_sample_vertices(const graph::CsrGraph& g,
                                           const SamplingParams& params);

/// Forest-fire sampling: burn outward from random seeds with geometric
/// fan-out (probability `burn_prob` per additional neighbor).
struct ForestFireParams {
  std::uint64_t target_vertices = 1000;
  double burn_prob = 0.7;
  std::uint64_t seed = 1;
};
std::vector<VertexId> forest_fire_sample(const graph::CsrGraph& g,
                                         const ForestFireParams& params);

// --- Graphlet concentration -----------------------------------------------------

struct GraphletParams {
  std::uint64_t num_samples = 50'000;  ///< sampled length-2 walk segments
  std::uint64_t seed = 1;
};

struct GraphletConcentration {
  std::uint64_t wedges = 0;     ///< open 3-node paths sampled
  std::uint64_t triangles = 0;  ///< closed ones
  /// Fraction of sampled connected 3-node subgraphs that are triangles —
  /// the paper §I "Graphlet Concentration" use case, estimated with random
  /// walks (each sample is a 2-hop walk segment; closure is checked against
  /// the adjacency list).
  [[nodiscard]] double triangle_concentration() const {
    const auto total = wedges + triangles;
    return total == 0 ? 0.0
                      : static_cast<double>(triangles) / static_cast<double>(total);
  }
};

GraphletConcentration graphlet_concentration(const graph::CsrGraph& g,
                                             const GraphletParams& params);

}  // namespace fw::rw
