// Name-keyed walk-model registry: jobs_spec, SimulationBuilder, and the
// CLI all resolve models from here, so adding a model means registering it
// once — the --jobs grammar, generated help text, and capability-derived
// partitioning (weights, labels) pick it up automatically.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "rw/model/walk_model.hpp"
#include "rw/spec.hpp"

namespace fw::rw {

struct ModelInfo {
  std::string_view name;
  std::string_view summary;  ///< one-line description for generated help
  std::string_view keys;     ///< model-specific --jobs keys ("" if none)
  bool legacy = false;       ///< pre-plugin model, byte-identity-pinned
  /// Model-specific WalkSpec defaults (also stamps spec.model).
  void (*apply_defaults)(WalkSpec& spec);
  /// Returns false when `key` is not a key of this model; throws
  /// std::invalid_argument on a malformed value.
  bool (*parse_key)(WalkSpec& spec, std::string_view key, const std::string& value);
  std::unique_ptr<const WalkModel> (*create)(const WalkSpec& spec);
};

/// All registered models, sorted by name.
const std::vector<ModelInfo>& model_registry();

/// nullptr when `name` is not registered.
const ModelInfo* find_model(std::string_view name);

/// "autoreg|deepwalk|metapath|node2vec|ppr" — for error messages.
std::string registered_model_names();

/// Effective model name for a spec: spec.model when set, else the legacy
/// flag resolution (second_order.enabled → node2vec, else deepwalk; the
/// flag-built PPR spec is deepwalk + stop_prob, which the same first-order
/// model serves).
std::string_view resolve_model_name(const WalkSpec& spec);

/// Instantiate the spec's model; throws std::invalid_argument for an
/// unknown model name or invalid model parameters.
std::unique_ptr<const WalkModel> create_model(const WalkSpec& spec);

/// Carried-state bytes of the spec's model (walk-DRAM / fabric math).
std::uint64_t model_state_bytes(const WalkSpec& spec, std::size_t id_bytes);

}  // namespace fw::rw
