// Step-centric walk-model plugin API (ThunderRW-style Gather–Move–Update):
// the engine owns routing, subgraph residency, and all bookkeeping; a
// WalkModel owns the per-hop decisions — the pre-hop stop draw, next-vertex
// sampling over the gathered candidate slice, and the walk's carried state.
//
// RNG-draw discipline: the engine seeds one Xoshiro256 per hop from
// w.rng_state and derives the next state exactly once afterwards, so a
// model's stop_before_hop()/sample() draw sequence fully determines the
// walk path. The legacy models (deepwalk/node2vec/ppr) reproduce the
// pre-plugin draw sequence byte-identically — they are pinned by the
// model-conformance tests and the committed bench baselines; never reorder
// or add draws on their paths.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "graph/csr.hpp"
#include "rw/sampler.hpp"
#include "rw/spec.hpp"
#include "rw/walk.hpp"

namespace fw::rw {

/// Candidate edge slice for one hop, gathered by the engine from the
/// resident subgraph: the walk vertex's full adjacency for regular
/// subgraphs, or the resident sub-slice of a dense (multi-block) vertex.
/// Indices are global-CSR edge indices.
struct Gather {
  EdgeId begin = 0;
  EdgeId end = 0;
  /// First edge of the vertex owning the slice (ITS base offset).
  EdgeId vertex_first_edge = 0;
  bool dense = false;
};

class WalkModel {
 public:
  enum class Verdict : std::uint8_t { kContinue, kTerminate };

  virtual ~WalkModel();
  WalkModel(const WalkModel&) = delete;
  WalkModel& operator=(const WalkModel&) = delete;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Carried per-walk state bytes beyond the base walker record; charged
  /// against walk-DRAM capacity and fabric forwarding traffic (uniformly,
  /// at the max over co-scheduled jobs).
  [[nodiscard]] virtual std::uint64_t state_bytes(std::size_t id_bytes) const;

  /// Initial w.state for a freshly admitted walk.
  [[nodiscard]] virtual std::uint64_t init_state() const;

  /// Model samples ∝ edge weight: the engine builds the ITS table (and the
  /// partitioner keeps cumulative-weight lists in blocks) iff any
  /// co-scheduled job's model needs it. Also selects the weighted pre-walk
  /// path for dense vertices.
  [[nodiscard]] virtual bool needs_weights() const;

  /// Model reads per-vertex labels: graph blocks carry one label byte per
  /// vertex header iff any co-scheduled job's model needs it.
  [[nodiscard]] virtual bool needs_labels() const;

  /// Pre-hop termination draw (PPR-style geometric stop). Default: one
  /// chance(stop_prob) draw when stop_prob > 0, else no draw.
  [[nodiscard]] virtual bool stop_before_hop(const Walk& w, Xoshiro256& rng) const;

  /// Choose the next vertex from the gathered slice; kInvalidVertex means
  /// dead end (the engine then applies WalkSpec::dead_end without touching
  /// w.state). `its` is non-null iff needs_weights(). search_steps feeds
  /// the guider's extra_cycles accounting.
  [[nodiscard]] virtual SampleResult sample(const graph::CsrGraph& g, const ItsTable* its,
                                            const Gather& gv, const Walk& w,
                                            Xoshiro256& rng) const = 0;

  /// Advance carried state after a successful sample and decide whether
  /// the walk continues (kTerminate ends it at `next` even with hops
  /// remaining — per-walk stop criteria). Called before the engine commits
  /// w.cur = next, so w.cur is still the hop's origin; never called on the
  /// dead-end path.
  virtual Verdict update(Walk& w, VertexId next) const;

 protected:
  explicit WalkModel(const WalkSpec& spec);

  double stop_prob_;  ///< pre-hop geometric stop probability
};

}  // namespace fw::rw
