#include "rw/model/walk_model.hpp"

#include <algorithm>
#include <bit>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "rw/model/registry.hpp"

namespace fw::rw {

WalkModel::WalkModel(const WalkSpec& spec) : stop_prob_(spec.stop_prob) {}

WalkModel::~WalkModel() = default;

std::uint64_t WalkModel::state_bytes(std::size_t /*id_bytes*/) const { return 0; }

std::uint64_t WalkModel::init_state() const { return 0; }

bool WalkModel::needs_weights() const { return false; }

bool WalkModel::needs_labels() const { return false; }

bool WalkModel::stop_before_hop(const Walk& /*w*/, Xoshiro256& rng) const {
  return stop_prob_ > 0.0 && rng.chance(stop_prob_);
}

WalkModel::Verdict WalkModel::update(Walk& /*w*/, VertexId /*next*/) const {
  return Verdict::kContinue;
}

namespace {

// ---------------------------------------------------------------------------
// Legacy models (byte-identity-pinned draw sequences)
// ---------------------------------------------------------------------------

/// First-order walk: uniform or ITS-biased neighbor choice, optional
/// geometric stop. Serves both deepwalk and flag-built (geometric) PPR.
class FirstOrderModel : public WalkModel {
 public:
  FirstOrderModel(const WalkSpec& spec, std::string_view name)
      : WalkModel(spec), name_(name), biased_(spec.biased) {}

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] bool needs_weights() const override { return biased_; }

  [[nodiscard]] SampleResult sample(const graph::CsrGraph& g, const ItsTable* its,
                                    const Gather& gv, const Walk& w,
                                    Xoshiro256& rng) const override {
    if (gv.dense) {
      return biased_ ? its->sample_slice(g, gv.vertex_first_edge, gv.begin, gv.end, rng)
                     : sample_unbiased_slice(g, gv.begin, gv.end, rng);
    }
    return biased_ ? its->sample(g, w.cur, rng) : sample_unbiased(g, w.cur, rng);
  }

 private:
  std::string_view name_;
  bool biased_;
};

/// node2vec: rejection sampling against the carried previous vertex, with
/// first-order fallback on the first hop and empty slices.
class SecondOrderModel : public FirstOrderModel {
 public:
  explicit SecondOrderModel(const WalkSpec& spec)
      : FirstOrderModel(spec, "node2vec"),
        p_(spec.second_order.p),
        q_(spec.second_order.q) {
    if (p_ <= 0.0 || q_ <= 0.0) {
      throw std::invalid_argument("node2vec: p and q must be > 0");
    }
  }

  [[nodiscard]] std::uint64_t state_bytes(std::size_t id_bytes) const override {
    return id_bytes;  // the previous vertex rides with the walk
  }
  [[nodiscard]] std::uint64_t init_state() const override { return kInvalidVertex; }

  [[nodiscard]] SampleResult sample(const graph::CsrGraph& g, const ItsTable* its,
                                    const Gather& gv, const Walk& w,
                                    Xoshiro256& rng) const override {
    if (w.state != kInvalidVertex && gv.end > gv.begin) {
      return sample_second_order(g, w.state, w.cur, gv.begin, gv.end, {p_, q_}, rng);
    }
    return FirstOrderModel::sample(g, its, gv, w, rng);
  }

  Verdict update(Walk& w, VertexId /*next*/) const override {
    w.state = w.cur;
    return Verdict::kContinue;
  }

 private:
  double p_;
  double q_;
};

// ---------------------------------------------------------------------------
// Plugin models
// ---------------------------------------------------------------------------

/// Variable-length PPR: the geometric stop draw is unchanged, but the walk
/// also carries its residual mass (1-stop)^hops and terminates once it
/// falls below eps — truncating the geometric tail deterministically.
class ResidualPprModel : public FirstOrderModel {
 public:
  explicit ResidualPprModel(const WalkSpec& spec)
      : FirstOrderModel(spec, "ppr"), eps_(spec.residual_eps) {
    if (eps_ <= 0.0 || eps_ >= 1.0) {
      throw std::invalid_argument("ppr: eps must be in (0, 1)");
    }
    if (stop_prob_ <= 0.0) {
      throw std::invalid_argument("ppr: stop_mode=residual requires stop > 0");
    }
  }

  [[nodiscard]] std::uint64_t state_bytes(std::size_t /*id_bytes*/) const override {
    return 4;  // fixed-point residual register (simulated at double precision)
  }
  [[nodiscard]] std::uint64_t init_state() const override {
    return std::bit_cast<std::uint64_t>(1.0);
  }

  Verdict update(Walk& w, VertexId /*next*/) const override {
    const double r = std::bit_cast<double>(w.state) * (1.0 - stop_prob_);
    w.state = std::bit_cast<std::uint64_t>(r);
    return r < eps_ ? Verdict::kTerminate : Verdict::kContinue;
  }

 private:
  double eps_;
};

/// Metapath walk over a labeled graph: hop k must land on a vertex labeled
/// pattern[(k+1) % |pattern|]; the choice is uniform among on-pattern
/// candidates in the gathered slice, and an off-pattern neighborhood is a
/// dead end (WalkSpec::dead_end applies).
class MetapathModel : public WalkModel {
 public:
  explicit MetapathModel(const WalkSpec& spec)
      : WalkModel(spec), pattern_(spec.metapath_pattern), length_(spec.length) {
    if (pattern_.empty()) {
      throw std::invalid_argument("metapath: empty label pattern");
    }
  }

  [[nodiscard]] std::string_view name() const override { return "metapath"; }
  [[nodiscard]] bool needs_labels() const override { return true; }

  [[nodiscard]] SampleResult sample(const graph::CsrGraph& g, const ItsTable* /*its*/,
                                    const Gather& gv, const Walk& w,
                                    Xoshiro256& rng) const override {
    SampleResult s;
    if (gv.end <= gv.begin) return s;
    const auto& labels = g.labels();
    const auto& edges = g.edges();
    const std::uint32_t hops_done = length_ - w.hops_left;
    const std::uint8_t want = pattern_[(hops_done + 1) % pattern_.size()];
    // 8-wide label comparator in the guider: one cycle per 8 candidates.
    s.search_steps = static_cast<std::uint32_t>((gv.end - gv.begin + 7) / 8);
    EdgeId matches = 0;
    for (EdgeId e = gv.begin; e < gv.end; ++e) {
      matches += labels[edges[e]] == want ? 1 : 0;
    }
    if (matches == 0) return s;
    std::uint64_t pick = rng.bounded(matches);
    for (EdgeId e = gv.begin; e < gv.end; ++e) {
      if (labels[edges[e]] == want && pick-- == 0) {
        s.next = edges[e];
        break;
      }
    }
    return s;
  }

 private:
  std::vector<std::uint8_t> pattern_;
  std::uint32_t length_;
};

/// Autoregressive second-order walk: proposals inside the previous hop's
/// neighborhood carry accept-weight alpha, all others 1-alpha, so
/// consecutive hops are correlated ("momentum" walks).
class AutoregModel : public WalkModel {
 public:
  explicit AutoregModel(const WalkSpec& spec)
      : WalkModel(spec), alpha_(spec.autoreg_alpha) {
    if (alpha_ <= 0.0 || alpha_ >= 1.0) {
      throw std::invalid_argument("autoreg: alpha must be in (0, 1)");
    }
  }

  [[nodiscard]] std::string_view name() const override { return "autoreg"; }
  [[nodiscard]] std::uint64_t state_bytes(std::size_t id_bytes) const override {
    return id_bytes;
  }
  [[nodiscard]] std::uint64_t init_state() const override { return kInvalidVertex; }

  [[nodiscard]] SampleResult sample(const graph::CsrGraph& g, const ItsTable* /*its*/,
                                    const Gather& gv, const Walk& w,
                                    Xoshiro256& rng) const override {
    if (w.state != kInvalidVertex && gv.end > gv.begin) {
      return sample_autoregressive(g, w.state, gv.begin, gv.end, alpha_, rng);
    }
    if (gv.dense) return sample_unbiased_slice(g, gv.begin, gv.end, rng);
    return sample_unbiased(g, w.cur, rng);
  }

  Verdict update(Walk& w, VertexId /*next*/) const override {
    w.state = w.cur;
    return Verdict::kContinue;
  }

 private:
  double alpha_;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

[[noreturn]] void bad_value(std::string_view key, const std::string& why) {
  throw std::invalid_argument("key '" + std::string(key) + "': " + why);
}

double model_f64(std::string_view key, const std::string& v) {
  try {
    std::size_t pos = 0;
    const double r = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return r;
  } catch (const std::exception&) {
    bad_value(key, "expected a number, got '" + v + "'");
  }
}

double model_f64_positive(std::string_view key, const std::string& v) {
  const double r = model_f64(key, v);
  if (r <= 0.0) bad_value(key, "must be > 0");
  return r;
}

double model_f64_unit_open(std::string_view key, const std::string& v) {
  const double r = model_f64(key, v);
  if (r <= 0.0 || r >= 1.0) bad_value(key, "must be in (0, 1)");
  return r;
}

std::vector<std::uint8_t> parse_pattern(const std::string& v) {
  std::vector<std::uint8_t> out;
  std::size_t start = 0;
  while (start <= v.size()) {
    const std::size_t dash = v.find('-', start);
    const std::string tok =
        dash == std::string::npos ? v.substr(start) : v.substr(start, dash - start);
    try {
      std::size_t pos = 0;
      const unsigned long lab = std::stoul(tok, &pos);
      if (pos != tok.size() || lab > 255) throw std::invalid_argument(tok);
      out.push_back(static_cast<std::uint8_t>(lab));
    } catch (const std::exception&) {
      bad_value("pattern", "expected dash-separated labels 0-255, got '" + v + "'");
    }
    if (dash == std::string::npos) break;
    start = dash + 1;
  }
  return out;
}

bool no_model_keys(WalkSpec& /*spec*/, std::string_view /*key*/,
                   const std::string& /*value*/) {
  return false;
}

bool node2vec_key(WalkSpec& spec, std::string_view key, const std::string& v) {
  if (key == "p") {
    spec.second_order.p = model_f64_positive(key, v);
    return true;
  }
  if (key == "q") {
    spec.second_order.q = model_f64_positive(key, v);
    return true;
  }
  return false;
}

bool ppr_key(WalkSpec& spec, std::string_view key, const std::string& v) {
  if (key == "stop") {
    const double r = model_f64(key, v);
    if (r < 0.0 || r >= 1.0) bad_value(key, "must be in [0, 1)");
    spec.stop_prob = r;
    return true;
  }
  if (key == "stop_mode") {
    if (v == "geometric") {
      spec.residual_eps = 0.0;
    } else if (v == "residual") {
      // Residual-threshold early termination; eps= refines the default.
      if (spec.residual_eps == 0.0) spec.residual_eps = 0.01;
    } else {
      bad_value(key, "expected geometric|residual, got '" + v + "'");
    }
    return true;
  }
  if (key == "eps") {
    spec.residual_eps = model_f64_unit_open(key, v);
    return true;
  }
  return false;
}

bool metapath_key(WalkSpec& spec, std::string_view key, const std::string& v) {
  if (key == "pattern") {
    spec.metapath_pattern = parse_pattern(v);
    return true;
  }
  return false;
}

bool autoreg_key(WalkSpec& spec, std::string_view key, const std::string& v) {
  if (key == "alpha") {
    spec.autoreg_alpha = model_f64_unit_open(key, v);
    return true;
  }
  return false;
}

std::unique_ptr<const WalkModel> make_deepwalk(const WalkSpec& spec) {
  return std::make_unique<FirstOrderModel>(spec, "deepwalk");
}

std::unique_ptr<const WalkModel> make_node2vec(const WalkSpec& spec) {
  return std::make_unique<SecondOrderModel>(spec);
}

std::unique_ptr<const WalkModel> make_ppr(const WalkSpec& spec) {
  if (spec.residual_eps > 0.0) return std::make_unique<ResidualPprModel>(spec);
  return std::make_unique<FirstOrderModel>(spec, "ppr");
}

std::unique_ptr<const WalkModel> make_metapath(const WalkSpec& spec) {
  return std::make_unique<MetapathModel>(spec);
}

std::unique_ptr<const WalkModel> make_autoreg(const WalkSpec& spec) {
  return std::make_unique<AutoregModel>(spec);
}

}  // namespace

const std::vector<ModelInfo>& model_registry() {
  static const std::vector<ModelInfo> kRegistry = {
      {"autoreg",
       "autoregressive second-order (momentum) walk",
       "alpha",
       false,
       [](WalkSpec& s) { s.model = "autoreg"; },
       autoreg_key,
       make_autoreg},
      {"deepwalk",
       "first-order uniform walk (random start)",
       "",
       true,
       [](WalkSpec& s) {
         s.model = "deepwalk";
         s.start_mode = StartMode::kUniformRandom;
       },
       no_model_keys,
       make_deepwalk},
      {"metapath",
       "label-pattern walk over a labeled graph",
       "pattern (dash-separated labels, e.g. 0-1-2)",
       false,
       [](WalkSpec& s) {
         s.model = "metapath";
         if (s.metapath_pattern.empty()) s.metapath_pattern = {0, 1};
       },
       metapath_key,
       make_metapath},
      {"node2vec",
       "second-order p/q walk",
       "p, q",
       true,
       [](WalkSpec& s) {
         s.model = "node2vec";
         s.start_mode = StartMode::kUniformRandom;
         s.second_order.enabled = true;
       },
       node2vec_key,
       make_node2vec},
      {"ppr",
       "Monte-Carlo PPR (single source, geometric or residual stop)",
       "stop, stop_mode=geometric|residual, eps",
       true,
       [](WalkSpec& s) {
         // Monte-Carlo PPR: all walks from one source, geometric
         // termination, restart at the source on dead ends.
         s.model = "ppr";
         s.start_mode = StartMode::kSingleSource;
         s.stop_prob = 0.15;
         s.dead_end = WalkSpec::DeadEnd::kRestart;
       },
       ppr_key,
       make_ppr},
  };
  return kRegistry;
}

const ModelInfo* find_model(std::string_view name) {
  for (const ModelInfo& m : model_registry()) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::string registered_model_names() {
  std::string out;
  for (const ModelInfo& m : model_registry()) {
    if (!out.empty()) out += '|';
    out += m.name;
  }
  return out;
}

std::string_view resolve_model_name(const WalkSpec& spec) {
  if (!spec.model.empty()) return spec.model;
  return spec.second_order.enabled ? "node2vec" : "deepwalk";
}

std::unique_ptr<const WalkModel> create_model(const WalkSpec& spec) {
  const std::string_view name = resolve_model_name(spec);
  const ModelInfo* info = find_model(name);
  if (info == nullptr) {
    throw std::invalid_argument("unknown walk model '" + std::string(name) +
                                "' (registered: " + registered_model_names() + ")");
  }
  return info->create(spec);
}

std::uint64_t model_state_bytes(const WalkSpec& spec, std::size_t id_bytes) {
  return create_model(spec)->state_bytes(id_bytes);
}

}  // namespace fw::rw
