// Multithreaded host-side walk execution.
//
// The reference `run_walks` is single-threaded by design (it is the ground
// truth the engines are checked against). This is the practical variant for
// corpus generation at scale: walks are sharded across threads, each shard
// draws from its own deterministically-derived RNG stream, and per-vertex
// visit counts merge at the end — so results are reproducible for a fixed
// (seed, thread count) pair and walk-exact regardless of scheduling.
//
// Relationship to the serial reference: `run_walks` draws every hop of every
// walk from ONE master stream, so walk i's randomness depends on all walks
// before it. Here each walk's stream is derived from (seed, walk index) so
// walks are independent of execution order. The two executors therefore
// *intentionally* produce different individual walks for the same seed; they
// agree in distribution (visit frequencies, expected hop counts), and the
// parallel executor is byte-identical to itself across any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "rw/algorithms.hpp"
#include "rw/spec.hpp"

namespace fw::rw {

struct ParallelWalkResult {
  WalkSummary summary;
  /// Walk sequences, in start order (independent of thread interleaving).
  std::vector<std::vector<VertexId>> paths;
  std::uint32_t threads_used = 0;
};

struct ParallelWalkOptions {
  std::uint32_t threads = 0;  ///< 0 = hardware concurrency
  bool record_paths = false;
};

/// Execute `spec` with `opts.threads` worker threads. Walk i's randomness
/// depends only on (spec.seed, i), so any thread count produces identical
/// walks.
ParallelWalkResult run_walks_parallel(const graph::CsrGraph& g, const WalkSpec& spec,
                                      const ParallelWalkOptions& opts = {},
                                      const ItsTable* its = nullptr);

}  // namespace fw::rw
