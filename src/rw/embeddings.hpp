// Skip-gram with negative sampling over a random-walk corpus — the
// downstream consumer that makes DeepWalk/node2vec walks useful (paper §I:
// "learned node embeddings are used by the downstream machine learning
// tasks"). A compact, dependency-free trainer: enough to validate
// end-to-end that walks produced by the engines yield embeddings where
// graph neighbors are closer than random pairs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "graph/csr.hpp"

namespace fw::rw {

struct SkipGramParams {
  std::uint32_t dimensions = 32;
  std::uint32_t window = 2;          ///< context radius within a walk
  std::uint32_t negatives = 4;       ///< negative samples per positive pair
  std::uint32_t epochs = 2;
  double learning_rate = 0.025;
  double min_learning_rate = 0.0005;
  std::uint64_t seed = 1;
};

class EmbeddingModel {
 public:
  EmbeddingModel(VertexId num_vertices, const SkipGramParams& params);

  /// One pass of SGD over the corpus (call per epoch, or use train()).
  void train_epoch(std::span<const std::vector<VertexId>> corpus, double lr);

  /// Full training schedule with linear learning-rate decay.
  void train(std::span<const std::vector<VertexId>> corpus);

  [[nodiscard]] std::span<const float> embedding(VertexId v) const;
  [[nodiscard]] std::uint32_t dimensions() const { return params_.dimensions; }
  [[nodiscard]] VertexId num_vertices() const { return num_vertices_; }

  /// Cosine similarity of two vertices' embeddings.
  [[nodiscard]] double similarity(VertexId a, VertexId b) const;

  /// The `k` nearest vertices to `v` by cosine similarity (excluding v).
  [[nodiscard]] std::vector<std::pair<VertexId, double>> nearest(VertexId v,
                                                                 std::size_t k) const;

 private:
  void train_pair(VertexId center, VertexId context, double lr, Xoshiro256& rng);

  VertexId num_vertices_;
  SkipGramParams params_;
  std::vector<float> in_;   ///< input (center) vectors, row-major
  std::vector<float> out_;  ///< output (context) vectors
  Xoshiro256 rng_;
};

/// Embedding-quality probe: mean similarity of `pairs` sampled graph edges
/// minus mean similarity of random vertex pairs. Positive and large means
/// the embedding captures structure.
double edge_similarity_gap(const EmbeddingModel& model, const graph::CsrGraph& g,
                           std::size_t pairs, std::uint64_t seed);

}  // namespace fw::rw
