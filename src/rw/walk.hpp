// Walk state (paper §III.B): "a walk w's state includes the ID of its source
// vertex, the offset of the current vertex in the subgraph, and the number
// of hops, indicated by w.src, w.cur, and w.hop."
//
// We carry the full current-vertex ID (the offset form is a storage
// optimization the byte-accounting reflects instead) plus the transient
// routing fields the accelerators attach: the approximate-search range tag
// and the pre-walked destination block for dense walks.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace fw::rw {

inline constexpr std::uint32_t kNoRangeTag = ~0u;

struct Walk {
  /// Simulation-side identity (used for optional path recording; not part
  /// of the modeled on-flash state, so it never enters byte accounting).
  /// Globally unique across jobs: job `walk_base` + local walk index.
  std::uint32_t id = 0;
  /// Owning walk job (index into the engine's job table). Single-workload
  /// runs use the implicit job 0. Rides along for per-job walk-model
  /// dispatch, fair-share accounting, and per-job output attribution; like
  /// `id` it is simulation-side and never enters byte accounting.
  std::uint16_t job = 0;
  VertexId src = 0;
  VertexId cur = 0;
  /// Model-owned carried state (WalkModel::init_state/update): the previous
  /// vertex for second-order models (node2vec, autoreg), the residual-mass
  /// bits for early-termination PPR, unused otherwise. Its modeled size is
  /// WalkModel::state_bytes(), not sizeof — byte accounting charges the max
  /// over co-scheduled jobs.
  std::uint64_t state = 0;
  std::uint16_t hops_left = 0;
  /// Range ID attached by the channel-level approximate walk search; the
  /// board-level guider then searches only that slice of the mapping table.
  std::uint32_t range_tag = kNoRangeTag;
  /// For a dense walk: the subgraph (graph block) pre-walking selected.
  SubgraphId prewalked_sg = kInvalidSubgraph;
  /// Per-walk RNG stream (simulation-side, like `id`): sampling draws come
  /// from the walk's own stream, so its path depends only on (seed, id, hop)
  /// — never on how timing interleaves walks. This is what keeps walk output
  /// invariant under fault-injected (retry/recovery) schedules.
  std::uint64_t rng_state = 0;
  /// Set while the walk sits parked behind a retrying subgraph load; cleared
  /// on its next update. A walk parks at most once per hop, so retries delay
  /// but can never livelock it.
  bool parked = false;

  [[nodiscard]] bool finished() const { return hops_left == 0; }
};

/// On-flash / in-buffer footprint of one walk: src + cur + hop counter.
/// Dense walks stored in a dense subgraph's buffer entry omit `cur` (it is
/// implied by the entry), which is the β asymmetry in the scheduler's Eq. 1.
constexpr std::uint64_t walk_bytes(std::size_t id_bytes, bool dense = false) {
  return (dense ? 1 : 2) * static_cast<std::uint64_t>(id_bytes) + 2;
}

}  // namespace fw::rw
