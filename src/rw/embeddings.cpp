#include "rw/embeddings.hpp"

#include <algorithm>
#include <cmath>

namespace fw::rw {
namespace {

double sigmoid(double x) {
  if (x > 8.0) return 1.0;
  if (x < -8.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

}  // namespace

EmbeddingModel::EmbeddingModel(VertexId num_vertices, const SkipGramParams& params)
    : num_vertices_(num_vertices), params_(params), rng_(params.seed) {
  const std::size_t total =
      static_cast<std::size_t>(num_vertices) * params_.dimensions;
  in_.resize(total);
  out_.assign(total, 0.0f);
  // word2vec-style init: uniform in [-0.5/dim, 0.5/dim).
  const float scale = 1.0f / static_cast<float>(params_.dimensions);
  for (auto& x : in_) {
    x = (static_cast<float>(rng_.uniform()) - 0.5f) * scale;
  }
}

std::span<const float> EmbeddingModel::embedding(VertexId v) const {
  return {in_.data() + static_cast<std::size_t>(v) * params_.dimensions,
          params_.dimensions};
}

void EmbeddingModel::train_pair(VertexId center, VertexId context, double lr,
                                Xoshiro256& rng) {
  const std::uint32_t dim = params_.dimensions;
  float* vc = in_.data() + static_cast<std::size_t>(center) * dim;
  std::vector<float> grad_center(dim, 0.0f);

  auto update = [&](VertexId target, double label) {
    float* vo = out_.data() + static_cast<std::size_t>(target) * dim;
    double dot = 0;
    for (std::uint32_t d = 0; d < dim; ++d) dot += vc[d] * vo[d];
    const double g = (label - sigmoid(dot)) * lr;
    for (std::uint32_t d = 0; d < dim; ++d) {
      grad_center[d] += static_cast<float>(g) * vo[d];
      vo[d] += static_cast<float>(g) * vc[d];
    }
  };

  update(context, 1.0);
  for (std::uint32_t n = 0; n < params_.negatives; ++n) {
    const VertexId neg = rng.bounded(num_vertices_);
    if (neg == context) continue;
    update(neg, 0.0);
  }
  for (std::uint32_t d = 0; d < dim; ++d) vc[d] += grad_center[d];
}

void EmbeddingModel::train_epoch(std::span<const std::vector<VertexId>> corpus,
                                 double lr) {
  for (const auto& walk : corpus) {
    for (std::size_t i = 0; i < walk.size(); ++i) {
      const std::size_t lo = i >= params_.window ? i - params_.window : 0;
      const std::size_t hi = std::min(walk.size(), i + params_.window + 1);
      for (std::size_t j = lo; j < hi; ++j) {
        if (j == i) continue;
        train_pair(walk[i], walk[j], lr, rng_);
      }
    }
  }
}

void EmbeddingModel::train(std::span<const std::vector<VertexId>> corpus) {
  for (std::uint32_t epoch = 0; epoch < params_.epochs; ++epoch) {
    const double progress =
        params_.epochs <= 1 ? 0.0
                            : static_cast<double>(epoch) / (params_.epochs - 1);
    const double lr = params_.learning_rate +
                      (params_.min_learning_rate - params_.learning_rate) * progress;
    train_epoch(corpus, lr);
  }
}

double EmbeddingModel::similarity(VertexId a, VertexId b) const {
  const auto va = embedding(a);
  const auto vb = embedding(b);
  double dot = 0, na = 0, nb = 0;
  for (std::uint32_t d = 0; d < params_.dimensions; ++d) {
    dot += va[d] * vb[d];
    na += va[d] * va[d];
    nb += vb[d] * vb[d];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  return denom == 0.0 ? 0.0 : dot / denom;
}

std::vector<std::pair<VertexId, double>> EmbeddingModel::nearest(VertexId v,
                                                                 std::size_t k) const {
  std::vector<std::pair<VertexId, double>> scored;
  scored.reserve(num_vertices_);
  for (VertexId u = 0; u < num_vertices_; ++u) {
    if (u != v) scored.emplace_back(u, similarity(v, u));
  }
  k = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(k),
                    scored.end(),
                    [](const auto& a, const auto& b) { return a.second > b.second; });
  scored.resize(k);
  return scored;
}

double edge_similarity_gap(const EmbeddingModel& model, const graph::CsrGraph& g,
                           std::size_t pairs, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  double edge_sum = 0, rand_sum = 0;
  std::size_t edge_n = 0;
  for (std::size_t i = 0; i < pairs; ++i) {
    const VertexId v = rng.bounded(g.num_vertices());
    if (g.out_degree(v) > 0) {
      const auto nbrs = g.neighbors(v);
      const VertexId u = nbrs[rng.bounded(nbrs.size())];
      if (u != v) {
        edge_sum += model.similarity(v, u);
        ++edge_n;
      }
    }
    const VertexId a = rng.bounded(g.num_vertices());
    const VertexId b = rng.bounded(g.num_vertices());
    rand_sum += a == b ? 0.0 : model.similarity(a, b);
  }
  if (edge_n == 0) return 0.0;
  return edge_sum / static_cast<double>(edge_n) -
         rand_sum / static_cast<double>(pairs);
}

}  // namespace fw::rw
