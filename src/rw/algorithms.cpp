#include "rw/algorithms.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace fw::rw {
namespace {

SampleResult next_hop(const graph::CsrGraph& g, VertexId v, VertexId prev,
                      const WalkSpec& spec, const ItsTable* its, Xoshiro256& rng) {
  if (spec.second_order.enabled && prev != kInvalidVertex && g.out_degree(v) > 0) {
    return sample_second_order(g, prev, v, g.offsets()[v], g.offsets()[v + 1],
                               {spec.second_order.p, spec.second_order.q}, rng);
  }
  if (spec.biased && its != nullptr) return its->sample(g, v, rng);
  return sample_unbiased(g, v, rng);
}

}  // namespace

std::vector<VertexId> walk_path(const graph::CsrGraph& g, VertexId start,
                                const WalkSpec& spec, Xoshiro256& rng,
                                const ItsTable* its) {
  std::vector<VertexId> path{start};
  VertexId cur = start;
  VertexId prev = kInvalidVertex;
  for (std::uint32_t hop = 0; hop < spec.length; ++hop) {
    if (spec.stop_prob > 0.0 && rng.chance(spec.stop_prob)) break;
    const SampleResult s = next_hop(g, cur, prev, spec, its, rng);
    if (s.next == kInvalidVertex) {
      if (spec.dead_end == WalkSpec::DeadEnd::kRestart) {
        cur = start;
        prev = kInvalidVertex;
        path.push_back(cur);
        continue;
      }
      break;
    }
    prev = cur;
    cur = s.next;
    path.push_back(cur);
  }
  return path;
}

WalkSummary run_walks(const graph::CsrGraph& g, const WalkSpec& spec, const ItsTable* its) {
  WalkSummary summary;
  summary.visit_counts.assign(g.num_vertices(), 0);
  Xoshiro256 rng(spec.seed);

  auto one_walk = [&](VertexId start) {
    ++summary.walks;
    VertexId cur = start;
    VertexId prev = kInvalidVertex;
    for (std::uint32_t hop = 0; hop < spec.length; ++hop) {
      if (spec.stop_prob > 0.0 && rng.chance(spec.stop_prob)) return;
      const SampleResult s = next_hop(g, cur, prev, spec, its, rng);
      if (s.next == kInvalidVertex) {
        if (spec.dead_end == WalkSpec::DeadEnd::kRestart) {
          cur = start;
          prev = kInvalidVertex;
          continue;
        }
        ++summary.dead_ends;
        return;
      }
      prev = cur;
      cur = s.next;
      ++summary.total_hops;
      ++summary.visit_counts[cur];
    }
  };

  switch (spec.start_mode) {
    case StartMode::kAllVertices:
      for (VertexId v = 0; v < g.num_vertices(); ++v) one_walk(v);
      break;
    case StartMode::kUniformRandom:
      for (std::uint64_t i = 0; i < spec.num_walks; ++i) {
        one_walk(rng.bounded(g.num_vertices()));
      }
      break;
    case StartMode::kSingleSource:
      for (std::uint64_t i = 0; i < spec.num_walks; ++i) one_walk(spec.source);
      break;
  }
  return summary;
}

std::vector<std::vector<VertexId>> deepwalk_corpus(const graph::CsrGraph& g,
                                                   const DeepWalkParams& params) {
  Xoshiro256 rng(params.seed);
  WalkSpec spec;
  spec.length = params.walk_length;
  std::vector<std::vector<VertexId>> corpus;
  corpus.reserve(g.num_vertices() * params.walks_per_vertex);
  for (std::uint32_t r = 0; r < params.walks_per_vertex; ++r) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      corpus.push_back(walk_path(g, v, spec, rng));
    }
  }
  return corpus;
}

std::vector<std::pair<VertexId, double>> personalized_pagerank(const graph::CsrGraph& g,
                                                               const PprParams& params,
                                                               std::size_t top_k) {
  Xoshiro256 rng(params.seed);
  std::vector<std::uint64_t> end_counts(g.num_vertices(), 0);
  for (std::uint64_t i = 0; i < params.num_walks; ++i) {
    VertexId cur = params.source;
    for (std::uint32_t hop = 0; hop < params.max_hops; ++hop) {
      if (rng.chance(params.restart_prob)) break;
      const SampleResult s = sample_unbiased(g, cur, rng);
      if (s.next == kInvalidVertex) break;  // dangling: walk ends here
      cur = s.next;
    }
    ++end_counts[cur];
  }
  std::vector<std::pair<VertexId, double>> scores;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (end_counts[v] > 0) {
      scores.emplace_back(v, static_cast<double>(end_counts[v]) /
                                 static_cast<double>(params.num_walks));
    }
  }
  std::sort(scores.begin(), scores.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (scores.size() > top_k) scores.resize(top_k);
  return scores;
}

std::vector<std::vector<VertexId>> node2vec_walks(const graph::CsrGraph& g,
                                                  const Node2VecParams& params) {
  Xoshiro256 rng(params.seed);
  // Rejection sampling (KnightKing): propose uniform neighbor t of cur;
  // accept with prob w(t)/w_max where w(t) is 1/p if t == prev, 1 if t is a
  // neighbor of prev, 1/q otherwise.
  const double wp = 1.0 / params.p;
  const double wq = 1.0 / params.q;
  const double w_max = std::max({wp, 1.0, wq});

  auto is_neighbor = [&](VertexId a, VertexId b) {
    const auto nbrs = g.neighbors(a);
    return std::binary_search(nbrs.begin(), nbrs.end(), b);
  };

  std::vector<std::vector<VertexId>> walks;
  walks.reserve(g.num_vertices() * params.walks_per_vertex);
  for (std::uint32_t r = 0; r < params.walks_per_vertex; ++r) {
    for (VertexId start = 0; start < g.num_vertices(); ++start) {
      std::vector<VertexId> path{start};
      VertexId prev = kInvalidVertex;
      VertexId cur = start;
      while (path.size() <= params.walk_length) {
        const EdgeId deg = g.out_degree(cur);
        if (deg == 0) break;
        VertexId chosen = kInvalidVertex;
        // First hop is unbiased; later hops rejection-sample.
        if (prev == kInvalidVertex) {
          chosen = sample_unbiased(g, cur, rng).next;
        } else {
          for (int attempt = 0; attempt < 64 && chosen == kInvalidVertex; ++attempt) {
            const VertexId t = sample_unbiased(g, cur, rng).next;
            double w = wq;
            if (t == prev) {
              w = wp;
            } else if (is_neighbor(prev, t)) {
              w = 1.0;
            }
            if (rng.uniform() * w_max < w) chosen = t;
          }
          if (chosen == kInvalidVertex) chosen = sample_unbiased(g, cur, rng).next;
        }
        prev = cur;
        cur = chosen;
        path.push_back(cur);
      }
      walks.push_back(std::move(path));
    }
  }
  return walks;
}

double simrank(const graph::CsrGraph& g, VertexId a, VertexId b,
               const SimRankParams& params) {
  if (a == b) return 1.0;
  Xoshiro256 rng(params.seed);
  double sum = 0.0;
  for (std::uint64_t i = 0; i < params.num_pairs; ++i) {
    VertexId x = a, y = b;
    for (std::uint32_t t = 1; t <= params.max_hops; ++t) {
      const SampleResult sx = sample_unbiased(g, x, rng);
      const SampleResult sy = sample_unbiased(g, y, rng);
      if (sx.next == kInvalidVertex || sy.next == kInvalidVertex) break;
      x = sx.next;
      y = sy.next;
      if (x == y) {
        sum += std::pow(params.decay, static_cast<double>(t));
        break;
      }
    }
  }
  return sum / static_cast<double>(params.num_pairs);
}

std::vector<VertexId> mhrw_sample_vertices(const graph::CsrGraph& g,
                                           const SamplingParams& params) {
  Xoshiro256 rng(params.seed);
  const VertexId n = g.num_vertices();
  if (n == 0) return {};
  std::unordered_set<VertexId> sampled;
  // Start from a vertex with out-edges so the walk can move at all.
  VertexId cur = rng.bounded(n);
  std::uint64_t guard = 0;
  while (g.out_degree(cur) == 0 && ++guard < n) cur = rng.bounded(n);

  std::uint64_t stuck = 0;
  while (sampled.size() < params.target_vertices && sampled.size() < n &&
         stuck < 100 * params.target_vertices) {
    sampled.insert(cur);
    ++stuck;
    const SampleResult s = sample_unbiased(g, cur, rng);
    if (s.next == kInvalidVertex || g.out_degree(s.next) == 0) {
      // Dead end or sink candidate: teleport to keep exploring.
      cur = rng.bounded(n);
      continue;
    }
    // Metropolis–Hastings acceptance removes the degree bias of plain
    // random walks: accept with min(1, deg(cur)/deg(candidate)).
    const double ratio = static_cast<double>(g.out_degree(cur)) /
                         static_cast<double>(g.out_degree(s.next));
    if (ratio >= 1.0 || rng.uniform() < ratio) cur = s.next;
  }
  return {sampled.begin(), sampled.end()};
}

std::vector<VertexId> forest_fire_sample(const graph::CsrGraph& g,
                                         const ForestFireParams& params) {
  Xoshiro256 rng(params.seed);
  const VertexId n = g.num_vertices();
  if (n == 0) return {};
  std::unordered_set<VertexId> burned;
  std::vector<VertexId> frontier;

  while (burned.size() < params.target_vertices && burned.size() < n) {
    if (frontier.empty()) {
      // Ignite a fresh unburned seed.
      VertexId seed_v = rng.bounded(n);
      std::uint64_t guard = 0;
      while (burned.contains(seed_v) && ++guard < 4 * n) seed_v = rng.bounded(n);
      if (burned.contains(seed_v)) break;
      burned.insert(seed_v);
      frontier.push_back(seed_v);
    }
    const VertexId v = frontier.back();
    frontier.pop_back();
    // Geometric fan-out: keep burning neighbors while the coin says so.
    for (VertexId u : g.neighbors(v)) {
      if (burned.size() >= params.target_vertices) break;
      if (burned.contains(u)) continue;
      if (!rng.chance(params.burn_prob)) break;
      burned.insert(u);
      frontier.push_back(u);
    }
  }
  return {burned.begin(), burned.end()};
}

GraphletConcentration graphlet_concentration(const graph::CsrGraph& g,
                                             const GraphletParams& params) {
  Xoshiro256 rng(params.seed);
  GraphletConcentration result;
  const VertexId n = g.num_vertices();
  if (n == 0) return result;
  for (std::uint64_t i = 0; i < params.num_samples; ++i) {
    // Sample a 2-hop walk segment a -> b -> c with distinct endpoints, then
    // check whether edge (a, c) closes the triangle.
    const VertexId a = rng.bounded(n);
    const SampleResult sb = sample_unbiased(g, a, rng);
    if (sb.next == kInvalidVertex) continue;
    const VertexId b = sb.next;
    const SampleResult sc = sample_unbiased(g, b, rng);
    if (sc.next == kInvalidVertex) continue;
    const VertexId c = sc.next;
    if (c == a || b == a || c == b) continue;
    const auto nbrs = g.neighbors(a);
    if (std::binary_search(nbrs.begin(), nbrs.end(), c)) {
      ++result.triangles;
    } else {
      ++result.wedges;
    }
  }
  return result;
}

std::vector<VertexId> rw_sample_vertices(const graph::CsrGraph& g,
                                         const SamplingParams& params) {
  Xoshiro256 rng(params.seed);
  std::unordered_set<VertexId> sampled;
  const VertexId n = g.num_vertices();
  if (n == 0) return {};
  VertexId anchor = rng.bounded(n);
  VertexId cur = anchor;
  std::uint64_t stuck = 0;
  while (sampled.size() < params.target_vertices && sampled.size() < n &&
         stuck < 50 * params.target_vertices) {
    sampled.insert(cur);
    ++stuck;
    if (rng.chance(params.restart_prob)) {
      cur = anchor;
      continue;
    }
    const SampleResult s = sample_unbiased(g, cur, rng);
    if (s.next == kInvalidVertex) {
      // Dead end: restart from a fresh anchor to keep exploring.
      anchor = rng.bounded(n);
      cur = anchor;
      continue;
    }
    cur = s.next;
  }
  return {sampled.begin(), sampled.end()};
}

}  // namespace fw::rw
