// Random-walk algorithm specification (paper §II.A): variants differ in the
// neighbor-sampling distribution (unbiased / biased-by-edge-weight) and the
// termination condition (fixed hop count / probabilistic).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace fw::rw {

enum class StartMode {
  kAllVertices,     ///< one or more walks from every vertex (DeepWalk-style)
  kUniformRandom,   ///< N walks from uniformly random vertices
  kSingleSource,    ///< N walks from one vertex (PPR-style)
};

/// Second-order (node2vec-style) sampling parameters. This is an
/// *extension* beyond the paper (which supports static biased walks via ITS
/// and leaves dynamic walks to KnightKing): the updater rejection-samples
/// with return parameter p and in-out parameter q, carrying the previous
/// vertex in the walk state.
struct SecondOrder {
  bool enabled = false;
  double p = 1.0;  ///< return parameter (1/p weight for backtracking)
  double q = 1.0;  ///< in-out parameter (1/q weight for outward hops)
};

struct WalkSpec {
  /// Fixed walk length in hops (paper fixes 6 in all experiments).
  std::uint32_t length = 6;
  /// Per-hop termination probability (0 = fixed-length only).
  double stop_prob = 0.0;
  /// Biased walk: next hop ∝ edge weight, via Inverse Transform Sampling.
  bool biased = false;
  /// node2vec-style dynamic sampling (see SecondOrder).
  SecondOrder second_order;
  /// What to do at a vertex with no out-edges.
  enum class DeadEnd { kTerminate, kRestart } dead_end = DeadEnd::kTerminate;

  StartMode start_mode = StartMode::kUniformRandom;
  std::uint64_t num_walks = 100'000;  ///< for kUniformRandom / kSingleSource
  VertexId source = 0;                ///< for kSingleSource
  std::uint64_t seed = 42;

  /// Registered walk-model name (rw/model/registry.hpp); empty resolves
  /// from the legacy flags above (second_order.enabled → node2vec, else
  /// deepwalk — which also serves flag-built geometric PPR).
  std::string model;
  /// metapath: cyclic label pattern; hop k must land on a vertex labeled
  /// pattern[(k+1) % size]. Empty unless the model is metapath.
  std::vector<std::uint8_t> metapath_pattern;
  /// autoreg: accept-weight for proposals inside the previous hop's
  /// neighborhood (1-alpha outside); must be in (0, 1).
  double autoreg_alpha = 0.7;
  /// ppr stop_mode=residual: terminate once the walk's carried residual
  /// (1-stop_prob)^hops falls below this (0 = geometric stop only).
  double residual_eps = 0.0;
};

}  // namespace fw::rw
