#include "rw/sampler.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace fw::rw {

SampleResult sample_unbiased(const graph::CsrGraph& g, VertexId v, Xoshiro256& rng) {
  const EdgeId deg = g.out_degree(v);
  if (deg == 0) return {};
  const auto nbrs = g.neighbors(v);
  return {nbrs[static_cast<std::size_t>(rng.bounded(deg))], 0};
}

SampleResult sample_unbiased_slice(const graph::CsrGraph& g, EdgeId begin, EdgeId end,
                                   Xoshiro256& rng) {
  if (end <= begin) return {};
  const EdgeId pick = begin + rng.bounded(end - begin);
  return {g.edges()[pick], 0};
}

ItsTable::ItsTable(const graph::CsrGraph& g) {
  if (!g.weighted()) {
    throw std::invalid_argument("ItsTable requires a weighted graph");
  }
  // Cumulative sums restart at every vertex: cumulative_[e] is the weight
  // sum of the vertex's edges up to and including e.
  cumulative_.resize(g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const EdgeId begin = g.offsets()[v];
    const EdgeId end = g.offsets()[v + 1];
    double sum = 0.0;
    for (EdgeId e = begin; e < end; ++e) {
      sum += static_cast<double>(g.weights()[e]);
      cumulative_[e] = sum;
    }
  }
}

namespace {

/// Binary search the CL slice [begin, end) for the smallest index whose
/// cumulative value (relative to `base`) exceeds a uniform draw.
SampleResult its_search(const graph::CsrGraph& g, const std::vector<double>& cum,
                        EdgeId begin, EdgeId end, double base, Xoshiro256& rng) {
  if (end <= begin) return {};
  const double total = cum[end - 1] - base;
  const double rnd = rng.uniform() * total;
  SampleResult result;
  EdgeId lo = begin, hi = end;
  while (lo < hi) {
    ++result.search_steps;
    const EdgeId mid = lo + (hi - lo) / 2;
    if (rnd < cum[mid] - base) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  result.next = g.edges()[std::min(lo, end - 1)];
  return result;
}

}  // namespace

SampleResult ItsTable::sample(const graph::CsrGraph& g, VertexId v, Xoshiro256& rng) const {
  return its_search(g, cumulative_, g.offsets()[v], g.offsets()[v + 1], /*base=*/0.0, rng);
}

SampleResult ItsTable::sample_slice(const graph::CsrGraph& g, EdgeId vertex_first_edge,
                                    EdgeId begin, EdgeId end, Xoshiro256& rng) const {
  if (end <= begin) return {};
  const double base = begin == vertex_first_edge ? 0.0 : cumulative_[begin - 1];
  return its_search(g, cumulative_, begin, end, base, rng);
}

SampleResult sample_second_order(const graph::CsrGraph& g, VertexId prev, VertexId cur,
                                 EdgeId begin, EdgeId end, const SecondOrderSpecView& so,
                                 Xoshiro256& rng, std::uint32_t max_attempts) {
  (void)cur;
  if (end <= begin) return {};
  const double wp = 1.0 / so.p;
  const double wq = 1.0 / so.q;
  const double w_max = std::max({wp, 1.0, wq});
  const auto prev_nbrs = g.neighbors(prev);

  SampleResult result;
  auto membership_steps = [&](std::size_t n) {
    return n == 0 ? 1u : static_cast<std::uint32_t>(std::bit_width(n));
  };
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    const VertexId t = g.edges()[begin + rng.bounded(end - begin)];
    double w = wq;
    if (t == prev) {
      w = wp;
    } else {
      result.search_steps += membership_steps(prev_nbrs.size());
      if (std::binary_search(prev_nbrs.begin(), prev_nbrs.end(), t)) w = 1.0;
    }
    if (rng.uniform() * w_max < w) {
      result.next = t;
      return result;
    }
  }
  // Rejection budget exhausted (pathological p/q): fall back to uniform so
  // walks always make progress.
  result.next = g.edges()[begin + rng.bounded(end - begin)];
  return result;
}

SampleResult sample_autoregressive(const graph::CsrGraph& g, VertexId prev, EdgeId begin,
                                   EdgeId end, double alpha, Xoshiro256& rng,
                                   std::uint32_t max_attempts) {
  if (end <= begin) return {};
  const double w_in = alpha;
  const double w_out = 1.0 - alpha;
  const double w_max = std::max(w_in, w_out);
  const auto prev_nbrs = g.neighbors(prev);

  SampleResult result;
  auto membership_steps = [&](std::size_t n) {
    return n == 0 ? 1u : static_cast<std::uint32_t>(std::bit_width(n));
  };
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    const VertexId t = g.edges()[begin + rng.bounded(end - begin)];
    double w = w_out;
    if (t == prev) {
      w = w_in;
    } else {
      result.search_steps += membership_steps(prev_nbrs.size());
      if (std::binary_search(prev_nbrs.begin(), prev_nbrs.end(), t)) w = w_in;
    }
    if (rng.uniform() * w_max < w) {
      result.next = t;
      return result;
    }
  }
  // Rejection budget exhausted: fall back to uniform so walks always make
  // progress (mirrors sample_second_order).
  result.next = g.edges()[begin + rng.bounded(end - begin)];
  return result;
}

std::uint32_t prewalk_block_choice(std::uint64_t rnd, EdgeId edges_per_block) {
  return edges_per_block == 0 ? 0 : static_cast<std::uint32_t>(rnd / edges_per_block);
}

std::uint64_t prewalk_draw(EdgeId out_degree, Xoshiro256& rng) {
  return out_degree == 0 ? 0 : rng.bounded(out_degree);
}

}  // namespace fw::rw
