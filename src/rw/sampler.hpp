// Neighbor sampling: the walk updater's step ③–⑥ (paper §III.B).
//
// Unbiased: rnd1 = uniform[0, outDegree), next = edges[offset + rnd1].
// Biased:   Inverse Transform Sampling over the vertex's cumulative weight
//           list CL — binary search for the smallest idx with rnd < CL[idx].
// Pre-walk: for a dense vertex split over several graph blocks, choose the
//           destination *block* first (∝ its edge count), so only that block
//           ever needs loading.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "graph/csr.hpp"

namespace fw::rw {

struct SampleResult {
  VertexId next = kInvalidVertex;   ///< kInvalidVertex at a dead end
  std::uint32_t search_steps = 0;   ///< ITS binary-search probes (0 if unbiased)
};

/// Uniform neighbor choice.
SampleResult sample_unbiased(const graph::CsrGraph& g, VertexId v, Xoshiro256& rng);

/// Uniform choice restricted to a global-CSR edge slice [begin, end) — the
/// in-block step of a pre-walked dense walk.
SampleResult sample_unbiased_slice(const graph::CsrGraph& g, EdgeId begin, EdgeId end,
                                   Xoshiro256& rng);

/// Cumulative-weight table for ITS biased sampling. The hardware stores CL
/// inside each subgraph; we precompute it once per graph.
class ItsTable {
 public:
  explicit ItsTable(const graph::CsrGraph& g);

  /// Biased neighbor choice for v; counts binary-search steps.
  SampleResult sample(const graph::CsrGraph& g, VertexId v, Xoshiro256& rng) const;

  /// Biased choice within edge slice [begin, end) of a single vertex whose
  /// edge list starts at `vertex_first_edge` (dense-walk in-block step).
  SampleResult sample_slice(const graph::CsrGraph& g, EdgeId vertex_first_edge,
                            EdgeId begin, EdgeId end, Xoshiro256& rng) const;

  [[nodiscard]] std::uint64_t table_bytes() const {
    return cumulative_.size() * sizeof(double);
  }

  /// In-vertex cumulative weight at edge index `e` (CL[e] in the paper).
  [[nodiscard]] double cumulative_weight(EdgeId e) const { return cumulative_[e]; }

 private:
  std::vector<double> cumulative_;  ///< per-edge running weight sum within each vertex
};

/// Second-order (node2vec) rejection sampling over the edge slice
/// [begin, end) of vertex `cur` (pass the full neighbor range for
/// non-dense vertices). Each attempt proposes a uniform neighbor and
/// accepts with probability w/w_max, where w is 1/p for returning to
/// `prev`, 1 for a triangle-closing hop, and 1/q otherwise. `search_steps`
/// counts the binary-search probes of prev's edge list (the membership
/// test) so callers can charge cycles.
struct SecondOrderSpecView {
  double p = 1.0;
  double q = 1.0;
};

SampleResult sample_second_order(const graph::CsrGraph& g, VertexId prev, VertexId cur,
                                 EdgeId begin, EdgeId end, const SecondOrderSpecView& so,
                                 Xoshiro256& rng, std::uint32_t max_attempts = 16);

/// Autoregressive second-order rejection sampling over the edge slice
/// [begin, end): proposals inside the previous hop's neighborhood (or a
/// backtrack to `prev` itself) carry accept-weight `alpha`, all others
/// 1-alpha, so consecutive hops are correlated. Same attempt budget and
/// membership-probe accounting (`search_steps`) as sample_second_order.
SampleResult sample_autoregressive(const graph::CsrGraph& g, VertexId prev, EdgeId begin,
                                   EdgeId end, double alpha, Xoshiro256& rng,
                                   std::uint32_t max_attempts = 16);

/// Pre-walking block choice (paper §III.D): with rnd uniform in
/// [0, outDegree), the target is graph block floor(rnd / size(gb)).
/// Returns the block index within the dense vertex's block list.
std::uint32_t prewalk_block_choice(std::uint64_t rnd, EdgeId edges_per_block);

/// Draw the pre-walk random offset for a dense vertex with `out_degree`.
std::uint64_t prewalk_draw(EdgeId out_degree, Xoshiro256& rng);

}  // namespace fw::rw
