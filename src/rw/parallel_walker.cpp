#include "rw/parallel_walker.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "rw/sampler.hpp"

namespace fw::rw {
namespace {

/// Start vertices are drawn up front from the spec's master stream so the
/// workload is identical to the single-threaded reference modes.
std::vector<VertexId> draw_starts(const graph::CsrGraph& g, const WalkSpec& spec) {
  Xoshiro256 rng(spec.seed);
  std::vector<VertexId> starts;
  switch (spec.start_mode) {
    case StartMode::kAllVertices:
      starts.resize(g.num_vertices());
      for (VertexId v = 0; v < g.num_vertices(); ++v) starts[v] = v;
      break;
    case StartMode::kUniformRandom:
      starts.reserve(spec.num_walks);
      for (std::uint64_t i = 0; i < spec.num_walks; ++i) {
        starts.push_back(rng.bounded(g.num_vertices()));
      }
      break;
    case StartMode::kSingleSource:
      starts.assign(spec.num_walks, spec.source);
      break;
  }
  return starts;
}

}  // namespace

ParallelWalkResult run_walks_parallel(const graph::CsrGraph& g, const WalkSpec& spec,
                                      const ParallelWalkOptions& opts,
                                      const ItsTable* its) {
  ParallelWalkResult result;
  const auto starts = draw_starts(g, spec);
  const std::uint64_t total = starts.size();

  std::uint32_t threads = opts.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(threads, std::max<std::uint64_t>(total, 1)));
  result.threads_used = threads;

  result.summary.walks = total;
  result.summary.visit_counts.assign(g.num_vertices(), 0);
  if (opts.record_paths) result.paths.resize(total);

  std::vector<WalkSummary> partial(threads);
  std::atomic<std::uint64_t> next_shard{0};
  const std::uint64_t shard = std::max<std::uint64_t>(1, total / (threads * 8) + 1);

  auto worker = [&](std::uint32_t tid) {
    WalkSummary& local = partial[tid];
    local.visit_counts.assign(g.num_vertices(), 0);
    for (;;) {
      const std::uint64_t begin = next_shard.fetch_add(shard);
      if (begin >= total) break;
      const std::uint64_t end = std::min(total, begin + shard);
      for (std::uint64_t i = begin; i < end; ++i) {
        // Per-walk stream: identical walks for any thread count.
        Xoshiro256 rng(spec.seed ^ (0x9E3779B97F4A7C15ull * (i + 1)));
        VertexId cur = starts[i];
        VertexId prev = kInvalidVertex;
        std::vector<VertexId>* path = opts.record_paths ? &result.paths[i] : nullptr;
        if (path != nullptr) path->push_back(cur);
        for (std::uint32_t hop = 0; hop < spec.length; ++hop) {
          if (spec.stop_prob > 0.0 && rng.chance(spec.stop_prob)) break;
          SampleResult s;
          if (spec.second_order.enabled && prev != kInvalidVertex &&
              g.out_degree(cur) > 0) {
            s = sample_second_order(g, prev, cur, g.offsets()[cur], g.offsets()[cur + 1],
                                    {spec.second_order.p, spec.second_order.q}, rng);
          } else if (spec.biased && its != nullptr) {
            s = its->sample(g, cur, rng);
          } else {
            s = sample_unbiased(g, cur, rng);
          }
          if (s.next == kInvalidVertex) {
            if (spec.dead_end == WalkSpec::DeadEnd::kRestart) {
              cur = starts[i];
              prev = kInvalidVertex;
              continue;
            }
            ++local.dead_ends;
            break;
          }
          prev = cur;
          cur = s.next;
          ++local.total_hops;
          ++local.visit_counts[cur];
          if (path != nullptr) path->push_back(cur);
        }
      }
    }
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& t : pool) t.join();
  }

  for (const auto& local : partial) {
    result.summary.total_hops += local.total_hops;
    result.summary.dead_ends += local.dead_ends;
    for (std::size_t v = 0; v < local.visit_counts.size(); ++v) {
      result.summary.visit_counts[v] += local.visit_counts[v];
    }
  }
  return result;
}

}  // namespace fw::rw
