#include "common/topn.hpp"

#include <algorithm>
#include <limits>

namespace fw {

bool TopNList::update(std::uint64_t id, double score) {
  for (auto& e : entries_) {
    if (e.id == id) {
      e.score = score;
      return true;
    }
  }
  if (entries_.size() < n_) {
    entries_.push_back({id, score});
    return true;
  }
  auto worst = std::min_element(
      entries_.begin(), entries_.end(),
      [](const Entry& a, const Entry& b) { return a.score < b.score; });
  if (worst->score < score) {
    *worst = {id, score};
    return true;
  }
  return false;
}

void TopNList::remove(std::uint64_t id) {
  std::erase_if(entries_, [id](const Entry& e) { return e.id == id; });
}

std::optional<std::pair<std::uint64_t, double>> TopNList::peek_best() const {
  if (entries_.empty()) return std::nullopt;
  auto best = std::max_element(
      entries_.begin(), entries_.end(),
      [](const Entry& a, const Entry& b) { return a.score < b.score; });
  return std::make_pair(best->id, best->score);
}

std::optional<std::pair<std::uint64_t, double>> TopNList::pop_best() {
  if (entries_.empty()) return std::nullopt;
  auto best = std::max_element(
      entries_.begin(), entries_.end(),
      [](const Entry& a, const Entry& b) { return a.score < b.score; });
  auto result = std::make_pair(best->id, best->score);
  *best = entries_.back();
  entries_.pop_back();
  return result;
}

bool TopNList::contains(std::uint64_t id) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [id](const Entry& e) { return e.id == id; });
}

std::vector<std::pair<std::uint64_t, double>> TopNList::entries() const {
  std::vector<std::pair<std::uint64_t, double>> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.emplace_back(e.id, e.score);
  return out;
}

double TopNList::min_score() const {
  if (entries_.empty()) return -std::numeric_limits<double>::infinity();
  auto worst = std::min_element(
      entries_.begin(), entries_.end(),
      [](const Entry& a, const Entry& b) { return a.score < b.score; });
  return worst->score;
}

}  // namespace fw
