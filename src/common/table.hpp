// ASCII table printer for the bench harnesses: every table/figure bench
// prints the same rows/series the paper reports, so output must be readable
// and machine-greppable (pipe-separated, aligned columns).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fw {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Formats `value` with `precision` digits after the decimal point.
  static std::string num(double value, int precision = 2);
  /// Human-readable byte count (e.g. "1.5 GiB").
  static std::string bytes(std::uint64_t n);
  /// Human-readable simulated time from ns.
  static std::string time_ns(std::uint64_t ns);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fw
