#include "common/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace fw {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::span<const double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::vector<double> copy(sample.begin(), sample.end());
  std::sort(copy.begin(), copy.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(copy.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, copy.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return copy[lo] * (1.0 - frac) + copy[hi] * frac;
}

double percentile_nearest_rank(std::span<const double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::vector<double> copy(sample.begin(), sample.end());
  std::sort(copy.begin(), copy.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = std::ceil(p / 100.0 * static_cast<double>(copy.size()));
  // p = 0 gives rank 0; clamp to the first order statistic (the minimum).
  const std::size_t idx = rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  return copy[std::min(idx, copy.size() - 1)];
}

double geomean(std::span<const double> sample) {
  double log_sum = 0.0;
  std::size_t n = 0;
  for (double x : sample) {
    if (x > 0.0) {
      log_sum += std::log(x);
      ++n;
    }
  }
  return n == 0 ? 0.0 : std::exp(log_sum / static_cast<double>(n));
}

double chi_square(std::span<const std::uint64_t> observed,
                  std::span<const double> expected_prob) {
  std::uint64_t total = 0;
  for (auto o : observed) total += o;
  if (total == 0) return 0.0;
  double stat = 0.0;
  const std::size_t k = std::min(observed.size(), expected_prob.size());
  for (std::size_t i = 0; i < k; ++i) {
    const double expected = expected_prob[i] * static_cast<double>(total);
    if (expected <= 0.0) continue;
    const double diff = static_cast<double>(observed[i]) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

void Log2Histogram::add(std::uint64_t value) {
  const std::size_t bucket = value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
  if (bucket >= buckets_.size()) buckets_.resize(bucket + 1, 0);
  ++buckets_[bucket];
  ++total_;
}

}  // namespace fw
