#include "common/bloom.hpp"

#include <algorithm>
#include <cmath>

namespace fw {
namespace {

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

BloomFilter::BloomFilter(std::size_t expected_items, double target_fpr) {
  expected_items = std::max<std::size_t>(expected_items, 1);
  target_fpr = std::clamp(target_fpr, 1e-9, 0.5);
  const double ln2 = std::log(2.0);
  const double bits =
      -static_cast<double>(expected_items) * std::log(target_fpr) / (ln2 * ln2);
  bit_count_ = std::max<std::size_t>(64, static_cast<std::size_t>(std::ceil(bits)));
  hash_count_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::round(bits / static_cast<double>(expected_items) * ln2)));
  bits_.assign((bit_count_ + 63) / 64, 0);
}

std::pair<std::uint64_t, std::uint64_t> BloomFilter::hash_pair(std::uint64_t key) const {
  // Kirsch–Mitzenmacher double hashing: h_i = h1 + i*h2.
  const std::uint64_t h1 = mix64(key ^ 0x2545f4914f6cdd1dull);
  const std::uint64_t h2 = mix64(key + 0x9e3779b97f4a7c15ull) | 1;  // odd stride
  return {h1, h2};
}

void BloomFilter::insert(std::uint64_t key) {
  auto [h1, h2] = hash_pair(key);
  for (std::size_t i = 0; i < hash_count_; ++i) {
    const std::size_t bit = (h1 + i * h2) % bit_count_;
    bits_[bit >> 6] |= (1ull << (bit & 63));
  }
  ++inserted_;
}

bool BloomFilter::may_contain(std::uint64_t key) const {
  auto [h1, h2] = hash_pair(key);
  for (std::size_t i = 0; i < hash_count_; ++i) {
    const std::size_t bit = (h1 + i * h2) % bit_count_;
    if ((bits_[bit >> 6] & (1ull << (bit & 63))) == 0) return false;
  }
  return true;
}

double BloomFilter::predicted_fpr() const {
  const double k = static_cast<double>(hash_count_);
  const double n = static_cast<double>(inserted_);
  const double m = static_cast<double>(bit_count_);
  return std::pow(1.0 - std::exp(-k * n / m), k);
}

}  // namespace fw
