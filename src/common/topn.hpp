// Bounded top-N list keyed by a mutable score (paper §III.D, subgraph
// scheduling): the scheduler keeps, per chip, the N highest-scoring
// subgraphs so picking the next subgraph never sorts the full set.
//
// The structure supports the access pattern the paper describes:
//   - update(id, score): called every M walk insertions for a subgraph;
//   - pop_best(): take the current best and remove it;
//   - remove(id): a subgraph leaves the list when it is scheduled.
// N is small (a design parameter), so O(N) updates are intentional — the
// hardware analogue is a small comparator array, not a heap.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace fw {

class TopNList {
 public:
  explicit TopNList(std::size_t n) : n_(n == 0 ? 1 : n) {}

  /// Insert or refresh `id` with `score`. Keeps only the N best; returns
  /// true if `id` is in the list after the call.
  bool update(std::uint64_t id, double score);

  /// Remove `id` if present.
  void remove(std::uint64_t id);

  /// Highest-scoring entry, if any (not removed).
  [[nodiscard]] std::optional<std::pair<std::uint64_t, double>> peek_best() const;

  /// Remove and return the highest-scoring entry.
  std::optional<std::pair<std::uint64_t, double>> pop_best();

  [[nodiscard]] bool contains(std::uint64_t id) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return n_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Lowest score currently retained (used to decide if an update can
  /// possibly enter the list without scanning).
  [[nodiscard]] double min_score() const;

  /// Unordered snapshot of the retained (id, score) entries, for callers
  /// that rank the candidates with their own key (e.g. the weighted-fair
  /// scheduler). N is small, so the copy is a handful of pairs.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, double>> entries() const;

 private:
  struct Entry {
    std::uint64_t id;
    double score;
  };

  std::size_t n_;
  std::vector<Entry> entries_;  // unsorted; N is small
};

}  // namespace fw
