// Core scalar types shared by every FlashWalker module.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fw {

/// Vertex identifier. 64-bit because ClueWeb-class graphs exceed the 4-byte
/// ID range (paper §IV.A); graphs that fit in 32 bits record that in their
/// metadata so storage-size accounting can use 4-byte IDs.
using VertexId = std::uint64_t;

/// Index into a CSR edges array.
using EdgeId = std::uint64_t;

/// Subgraph (graph-block) identifier, dense from 0 within a graph.
using SubgraphId = std::uint32_t;

/// Graph-partition identifier (a partition is a fixed-size run of subgraphs).
using PartitionId = std::uint32_t;

/// Simulated time in nanoseconds.
using Tick = std::uint64_t;

inline constexpr VertexId kInvalidVertex = ~VertexId{0};
inline constexpr SubgraphId kInvalidSubgraph = ~SubgraphId{0};

}  // namespace fw
