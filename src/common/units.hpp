// Byte and time unit helpers. All simulated time is in nanoseconds (Tick).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace fw {

inline constexpr std::uint64_t KiB = 1024ull;
inline constexpr std::uint64_t MiB = 1024ull * KiB;
inline constexpr std::uint64_t GiB = 1024ull * MiB;

inline constexpr Tick kNs = 1;
inline constexpr Tick kUs = 1000 * kNs;
inline constexpr Tick kMs = 1000 * kUs;
inline constexpr Tick kSec = 1000 * kMs;

/// Time to move `bytes` over a link of `mb_per_s` (decimal MB/s), rounded up.
constexpr Tick transfer_time_ns(std::uint64_t bytes, std::uint64_t mb_per_s) {
  if (mb_per_s == 0) return 0;
  // bytes / (mb_per_s * 1e6 B/s) seconds = bytes * 1000 / mb_per_s ns.
  return (bytes * 1000 + mb_per_s - 1) / mb_per_s;
}

/// Achieved bandwidth in MB/s (decimal) for `bytes` moved over `ns`.
constexpr double bandwidth_mb_per_s(std::uint64_t bytes, Tick ns) {
  if (ns == 0) return 0.0;
  return static_cast<double>(bytes) * 1000.0 / static_cast<double>(ns);
}

constexpr double to_seconds(Tick t) { return static_cast<double>(t) / 1e9; }
constexpr double to_ms(Tick t) { return static_cast<double>(t) / 1e6; }

}  // namespace fw
