// Set-associative cache *model*: tracks hits/misses for a key stream.
//
// Used to model the walk query caches (paper §III.D): small SRAM caches in
// front of the subgraph mapping table. We only need hit/miss behaviour and
// occupancy accounting, not payload storage — the payload (a mapping entry)
// is always available from the backing table.
#pragma once

#include <cstdint>
#include <vector>

namespace fw {

class AssocCacheModel {
 public:
  /// `capacity_bytes / entry_bytes` total entries, LRU within each set.
  AssocCacheModel(std::size_t capacity_bytes, std::size_t entry_bytes,
                  std::size_t associativity = 4);

  /// Touch `key`: returns true on hit; on miss the key is inserted
  /// (evicting the set's LRU entry if full).
  bool access(std::uint64_t key);

  /// Invalidate the whole cache (e.g. on graph-partition switch, which
  /// replaces the subgraph mapping entries the cache indexes).
  void clear();

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] double hit_rate() const {
    const auto total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }
  [[nodiscard]] std::size_t num_sets() const { return sets_; }
  [[nodiscard]] std::size_t associativity() const { return ways_; }

 private:
  struct Line {
    std::uint64_t key = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  std::size_t sets_;
  std::size_t ways_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::vector<Line> lines_;  // sets_ * ways_, row-major by set
};

}  // namespace fw
