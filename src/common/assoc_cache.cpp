#include "common/assoc_cache.hpp"

#include <algorithm>

namespace fw {
namespace {

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 33)) * 0xff51afd7ed558ccdull;
  z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53ull;
  return z ^ (z >> 33);
}

}  // namespace

AssocCacheModel::AssocCacheModel(std::size_t capacity_bytes, std::size_t entry_bytes,
                                 std::size_t associativity) {
  entry_bytes = std::max<std::size_t>(entry_bytes, 1);
  std::size_t entries = std::max<std::size_t>(capacity_bytes / entry_bytes, 1);
  ways_ = std::clamp<std::size_t>(associativity, 1, entries);
  sets_ = std::max<std::size_t>(entries / ways_, 1);
  lines_.assign(sets_ * ways_, Line{});
}

bool AssocCacheModel::access(std::uint64_t key) {
  ++clock_;
  const std::size_t set = mix64(key) % sets_;
  Line* base = &lines_[set * ways_];
  Line* victim = base;
  for (std::size_t w = 0; w < ways_; ++w) {
    Line& line = base[w];
    if (line.valid && line.key == key) {
      line.last_use = clock_;
      ++hits_;
      return true;
    }
    if (!line.valid) {
      victim = &line;
    } else if (victim->valid && line.last_use < victim->last_use) {
      victim = &line;
    }
  }
  ++misses_;
  victim->key = key;
  victim->valid = true;
  victim->last_use = clock_;
  return false;
}

void AssocCacheModel::clear() {
  std::fill(lines_.begin(), lines_.end(), Line{});
}

}  // namespace fw
