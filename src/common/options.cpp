#include "common/options.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace fw {

OptionSet& OptionSet::add(Option o) {
  if (find(o.name) != nullptr) {
    throw std::logic_error("OptionSet: duplicate option " + o.name);
  }
  opts_.push_back(std::move(o));
  return *this;
}

const OptionSet::Option* OptionSet::find(const std::string& name) const {
  for (const Option& o : opts_) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

OptionSet& OptionSet::flag(const std::string& name, bool* target,
                           const std::string& help) {
  return add({name, "", help, false, [target](const std::string&) { *target = true; }});
}

OptionSet& OptionSet::flag(const std::string& name, const std::string& help,
                           std::function<void()> fn) {
  return add({name, "", help, false,
              [fn = std::move(fn)](const std::string&) { fn(); }});
}

OptionSet& OptionSet::opt(const std::string& name, std::string* target,
                          const std::string& metavar, const std::string& help) {
  return add({name, metavar, help, true,
              [target](const std::string& v) { *target = v; }});
}

OptionSet& OptionSet::opt(const std::string& name, std::uint64_t* target,
                          const std::string& metavar, const std::string& help) {
  return add({name, metavar, help, true,
              [name, target](const std::string& v) { *target = to_u64(name, v); }});
}

OptionSet& OptionSet::opt(const std::string& name, std::uint32_t* target,
                          const std::string& metavar, const std::string& help) {
  return add({name, metavar, help, true, [name, target](const std::string& v) {
                const std::uint64_t r = to_u64(name, v);
                if (r > 0xFFFFFFFFull) {
                  throw std::invalid_argument(name + ": value out of range: " + v);
                }
                *target = static_cast<std::uint32_t>(r);
              }});
}

OptionSet& OptionSet::opt(const std::string& name, double* target,
                          const std::string& metavar, const std::string& help) {
  return add({name, metavar, help, true,
              [name, target](const std::string& v) { *target = to_f64(name, v); }});
}

OptionSet& OptionSet::opt(const std::string& name, const std::string& metavar,
                          const std::string& help, Handler fn) {
  return add({name, metavar, help, true, std::move(fn)});
}

std::uint64_t OptionSet::to_u64(const std::string& name, const std::string& value) {
  try {
    // std::stoull accepts a leading '-' and wraps modulo 2^64 ("-5" parses
    // as 18446744073709551611); these are unsigned options, so any sign —
    // anywhere stoull would tolerate it, including after whitespace — is an
    // error, not a wrap.
    if (value.find('-') != std::string::npos) throw std::invalid_argument(value);
    std::size_t pos = 0;
    const std::uint64_t r = std::stoull(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return r;
  } catch (const std::exception&) {
    throw std::invalid_argument(name + ": expected an integer, got '" + value + "'");
  }
}

double OptionSet::to_f64(const std::string& name, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double r = std::stod(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return r;
  } catch (const std::exception&) {
    throw std::invalid_argument(name + ": expected a number, got '" + value + "'");
  }
}

void OptionSet::parse(int argc, const char* const* argv) const {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool have_inline = false;
    if (const std::size_t eq = arg.find('='); eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      have_inline = true;
    }
    const Option* o = find(arg);
    if (o == nullptr) throw std::invalid_argument("unknown option " + arg);
    if (!o->takes_value) {
      if (have_inline) {
        throw std::invalid_argument(arg + " does not take a value");
      }
      o->handler("");
      continue;
    }
    if (have_inline) {
      o->handler(inline_value);
    } else {
      if (++i >= argc) throw std::invalid_argument(arg + " needs a value");
      o->handler(argv[i]);
    }
  }
}

void OptionSet::parse_or_exit(int argc, const char* const* argv,
                              const std::string& summary) const {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help(std::cout, argv[0], summary);
      std::exit(0);
    }
  }
  try {
    parse(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::cerr << argv[0] << ": " << e.what() << " (try --help)\n";
    std::exit(2);
  }
}

void OptionSet::print_help(std::ostream& os, const std::string& prog,
                           const std::string& summary) const {
  os << "usage: " << prog << " [options]\n";
  if (!summary.empty()) os << summary << "\n";
  os << "\noptions:\n";
  std::size_t width = 0;
  for (const Option& o : opts_) {
    std::size_t w = o.name.size();
    if (!o.metavar.empty()) w += 1 + o.metavar.size();
    width = std::max(width, w);
  }
  for (const Option& o : opts_) {
    std::string left = o.name;
    if (!o.metavar.empty()) left += " " + o.metavar;
    os << "  " << left << std::string(width - left.size() + 2, ' ');
    // Indent continuation lines of multi-line help under the first line.
    const std::string indent(2 + width + 2, ' ');
    std::size_t start = 0;
    bool first = true;
    while (start <= o.help.size()) {
      const std::size_t nl = o.help.find('\n', start);
      const std::string line = o.help.substr(
          start, nl == std::string::npos ? std::string::npos : nl - start);
      if (!first) os << indent;
      os << line << "\n";
      first = false;
      if (nl == std::string::npos) break;
      start = nl + 1;
    }
  }
}

}  // namespace fw
