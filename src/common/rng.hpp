// Deterministic, fast PRNGs for simulation and sampling.
//
// Random-walk engines draw billions of variates; std::mt19937_64 is both
// slower and larger than needed. We use SplitMix64 for seeding and
// xoshiro256** for the main streams, with Lemire-style unbiased bounded
// sampling. All simulation randomness flows through these so a fixed seed
// reproduces a run exactly.
#pragma once

#include <array>
#include <cstdint>

namespace fw {

/// SplitMix64: used to expand a single seed into stream state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Unbiased integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t bounded(std::uint64_t bound) {
    if (bound <= 1) return 0;
    __extension__ using u128 = unsigned __int128;
    u128 m = static_cast<u128>(next()) * static_cast<u128>(bound);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<u128>(next()) * static_cast<u128>(bound);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace fw
