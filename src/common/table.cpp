#include "common/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/units.hpp"

namespace fw {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::bytes(std::uint64_t n) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  if (n >= GiB) {
    os << static_cast<double>(n) / static_cast<double>(GiB) << " GiB";
  } else if (n >= MiB) {
    os << static_cast<double>(n) / static_cast<double>(MiB) << " MiB";
  } else if (n >= KiB) {
    os << static_cast<double>(n) / static_cast<double>(KiB) << " KiB";
  } else {
    os << n << " B";
  }
  return os.str();
}

std::string TextTable::time_ns(std::uint64_t ns) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  if (ns >= kSec) {
    os << static_cast<double>(ns) / static_cast<double>(kSec) << " s";
  } else if (ns >= kMs) {
    os << static_cast<double>(ns) / static_cast<double>(kMs) << " ms";
  } else if (ns >= kUs) {
    os << static_cast<double>(ns) / static_cast<double>(kUs) << " us";
  } else {
    os << ns << " ns";
  }
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      os << ' ' << std::left << std::setw(static_cast<int>(width[c])) << cell << " |";
    }
    os << '\n';
  };
  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace fw
