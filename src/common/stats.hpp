// Small statistics helpers used by graph analysis, tests, and benches.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fw {

/// Streaming counter statistics (Welford) — mean/variance without storing
/// the sample.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample by linear interpolation between order statistics
/// (numpy's default). Empty sample -> 0.0. Copies + sorts; fine for
/// test/bench sizes.
double percentile(std::span<const double> sample, double p);

/// Nearest-rank percentile: the ceil(p/100 * n)-th order statistic, always
/// an actually observed value — the right definition for SLO latency
/// reporting, and well-behaved on tiny samples (n = 1 returns that sample
/// for every p; n = 2 returns the max for p > 50). Empty sample -> 0.0.
double percentile_nearest_rank(std::span<const double> sample, double p);

/// Geometric mean; ignores non-positive values.
double geomean(std::span<const double> sample);

/// Pearson chi-square statistic of `observed` counts against `expected`
/// probabilities (used by sampling-distribution property tests).
double chi_square(std::span<const std::uint64_t> observed,
                  std::span<const double> expected_prob);

/// Fixed-bound histogram with power-of-two buckets, for degree and latency
/// distributions.
class Log2Histogram {
 public:
  void add(std::uint64_t value);
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  std::vector<std::uint64_t> buckets_;  // bucket i holds values in [2^i, 2^(i+1))
  std::uint64_t total_ = 0;
};

}  // namespace fw
