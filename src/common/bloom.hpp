// Bloom filter used by the dense-vertices mapping table (paper §III.D).
//
// The board-level guider consults the Bloom filter before the dense-vertex
// hash table; a false positive merely costs one failed hash-table probe, so
// correctness never depends on the filter (the paper makes the same point).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace fw {

class BloomFilter {
 public:
  /// `expected_items` sizes the filter for roughly `target_fpr` false
  /// positives; `hashes` defaults to the optimal count for that rate.
  BloomFilter(std::size_t expected_items, double target_fpr = 0.01);

  void insert(std::uint64_t key);
  [[nodiscard]] bool may_contain(std::uint64_t key) const;

  [[nodiscard]] std::size_t bit_count() const { return bit_count_; }
  [[nodiscard]] std::size_t hash_count() const { return hash_count_; }
  [[nodiscard]] std::size_t byte_size() const { return bits_.size() * sizeof(std::uint64_t); }
  [[nodiscard]] std::size_t inserted() const { return inserted_; }

  /// Predicted false-positive rate for the current load.
  [[nodiscard]] double predicted_fpr() const;

 private:
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> hash_pair(std::uint64_t key) const;

  std::size_t bit_count_;
  std::size_t hash_count_;
  std::size_t inserted_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace fw
