// Declarative command-line option table shared by every CLI entry point
// (examples/flashwalker_sim, bench/*). One registration is the single
// source of truth for parsing, the generated --help text, and the value
// binding, so tools cannot drift apart on flag spelling or semantics.
//
//   fw::OptionSet opts;
//   opts.opt("--walks", &cfg.walks, "N", "number of walks")
//       .flag("--biased", &cfg.biased, "edge-weight-biased walks (ITS)");
//   opts.parse_or_exit(argc, argv, "one-line tool summary");
//
// Both `--name value` and `--name=value` are accepted. `--help`/`-h`
// print the generated table and exit 0. parse() throws
// std::invalid_argument for unknown flags, missing values, and malformed
// numbers; parse_or_exit() turns that into exit(2) with a hint.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace fw {

class OptionSet {
 public:
  using Handler = std::function<void(const std::string&)>;

  /// Presence flag: `--name` sets *target to true.
  OptionSet& flag(const std::string& name, bool* target, const std::string& help);
  /// Presence flag with a side effect instead of a bound bool.
  OptionSet& flag(const std::string& name, const std::string& help,
                  std::function<void()> fn);

  /// Value options bound directly to a variable. The metavar is only used
  /// in the generated help (`--walks N`).
  OptionSet& opt(const std::string& name, std::string* target,
                 const std::string& metavar, const std::string& help);
  OptionSet& opt(const std::string& name, std::uint64_t* target,
                 const std::string& metavar, const std::string& help);
  OptionSet& opt(const std::string& name, std::uint32_t* target,
                 const std::string& metavar, const std::string& help);
  OptionSet& opt(const std::string& name, double* target, const std::string& metavar,
                 const std::string& help);
  /// Value option with a custom handler (validation, enums, sub-grammars).
  OptionSet& opt(const std::string& name, const std::string& metavar,
                 const std::string& help, Handler fn);

  /// Parse argv[1..). Throws std::invalid_argument on any error. Does NOT
  /// special-case --help (so the error path stays testable).
  void parse(int argc, const char* const* argv) const;

  /// parse(), but --help/-h print the option table to stdout and exit 0,
  /// and parse errors print to stderr (with a --help hint) and exit 2.
  void parse_or_exit(int argc, const char* const* argv,
                     const std::string& summary) const;

  /// The generated help text: summary line, then one aligned row per
  /// registered option (multi-line help strings indent their continuation
  /// lines under the first).
  void print_help(std::ostream& os, const std::string& prog,
                  const std::string& summary) const;

  [[nodiscard]] std::size_t size() const { return opts_.size(); }

  /// Strict scalar conversions used by the typed binders; `name` labels
  /// the error message. Exposed for custom handlers.
  static std::uint64_t to_u64(const std::string& name, const std::string& value);
  static double to_f64(const std::string& name, const std::string& value);

 private:
  struct Option {
    std::string name;
    std::string metavar;  // empty for flags
    std::string help;
    bool takes_value = false;
    Handler handler;
  };

  OptionSet& add(Option o);
  [[nodiscard]] const Option* find(const std::string& name) const;

  std::vector<Option> opts_;
};

}  // namespace fw
