// Free-list pools for hot-path transients.
//
// The DES hot path moves batches of walks (and per-batch scratch lists)
// through short-lived std::vectors: every roving pull, board batch, and
// subgraph load used to allocate a fresh vector and drop it one event
// later. VectorPool recycles those buffers — acquire() hands back an empty
// vector that keeps its previous capacity, release() returns it — so
// steady-state simulation performs no allocator traffic for batch vectors.
//
// Not thread-safe by design: pools are owned per shard — each DES shard
// keeps its own VectorPool and only that shard's worker touches it (see
// docs/MODELING.md "Parallel DES").
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace fw {

template <typename T>
class VectorPool {
 public:
  /// Bound the free list so a one-off burst does not pin memory forever.
  explicit VectorPool(std::size_t max_free = 256) : max_free_(max_free) {}

  /// An empty vector, reusing capacity from a released one when available.
  [[nodiscard]] std::vector<T> acquire() {
    if (free_.empty()) return {};
    std::vector<T> v = std::move(free_.back());
    free_.pop_back();
    return v;
  }

  /// Return a spent vector to the pool (cleared, capacity retained).
  void release(std::vector<T>&& v) {
    if (free_.size() >= max_free_ || v.capacity() == 0) return;
    v.clear();
    free_.push_back(std::move(v));
  }

  [[nodiscard]] std::size_t free_count() const { return free_.size(); }

 private:
  std::size_t max_free_;
  std::vector<std::vector<T>> free_;
};

}  // namespace fw
