// Page-level flash translation layer.
//
// The graph itself is written once at preprocessing time and never updated,
// so the engine places it directly (see GraphLayout) and reserves the first
// blocks of every plane for it. The FTL manages the remaining blocks for
// runtime writes — completed/foreigner/overflow walk flushes — with
// log-structured allocation, out-of-place update, and greedy garbage
// collection, mirroring the MQSim FTL features the paper lists (§II.C).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "ssd/flash_array.hpp"

namespace fw::ssd {

struct FtlStats {
  std::uint64_t host_page_writes = 0;
  std::uint64_t host_page_reads = 0;
  std::uint64_t gc_page_moves = 0;
  std::uint64_t gc_erases = 0;
  std::uint32_t min_block_erases = 0;
  std::uint32_t max_block_erases = 0;

  [[nodiscard]] double write_amplification() const {
    return host_page_writes == 0
               ? 1.0
               : 1.0 + static_cast<double>(gc_page_moves) /
                           static_cast<double>(host_page_writes);
  }

  /// Wear spread across blocks (0 = perfectly even).
  [[nodiscard]] std::uint32_t wear_spread() const {
    return max_block_erases - min_block_erases;
  }
};

class Ftl {
 public:
  /// `reserved_blocks_per_plane` blocks at the start of every plane hold the
  /// immutable graph and are never allocated.
  Ftl(FlashArray& flash, std::uint32_t reserved_blocks_per_plane);

  /// Write one logical page; allocates a fresh physical page (round-robin
  /// across channels/chips/planes for parallelism), invalidating any prior
  /// mapping. Returns the program completion tick.
  Tick write_page(Tick now, std::uint64_t lpn, bool over_channel = true);

  /// Read a previously written logical page. Throws on unmapped LPN.
  Tick read_page(Tick now, std::uint64_t lpn, bool over_channel = true);

  [[nodiscard]] bool is_mapped(std::uint64_t lpn) const { return l2p_.contains(lpn); }
  /// Stats with the wear counters folded in.
  [[nodiscard]] FtlStats stats() const;
  [[nodiscard]] std::uint32_t reserved_blocks_per_plane() const { return reserved_; }

 private:
  struct BlockState {
    std::uint32_t written = 0;  ///< next page to program
    std::uint32_t valid = 0;    ///< live pages
    std::uint32_t erases = 0;   ///< wear counter
  };

  struct PlaneState {
    std::vector<BlockState> blocks;       ///< indexed by block - reserved
    std::uint32_t active_block = 0;
    std::deque<std::uint32_t> free_blocks;
  };

  /// Pick the next physical page on the allocation cursor, running GC on
  /// the target plane if it has no free block. Returns the PPN and the tick
  /// at which the plane is ready (GC may delay it).
  std::pair<std::uint64_t, Tick> allocate(Tick now);

  Tick collect_garbage(Tick now, std::uint32_t plane_index);

  [[nodiscard]] PlaneState& plane_state(std::uint32_t plane_index) {
    return planes_[plane_index];
  }

  FlashArray& flash_;
  std::uint32_t reserved_;
  std::uint32_t usable_blocks_;  ///< per plane
  std::vector<PlaneState> planes_;
  std::unordered_map<std::uint64_t, std::uint64_t> l2p_;
  std::unordered_map<std::uint64_t, std::uint64_t> p2l_;
  std::uint32_t cursor_plane_ = 0;  ///< global plane round-robin cursor
  mutable FtlStats stats_;
};

}  // namespace fw::ssd
