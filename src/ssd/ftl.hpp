// Page-level flash translation layer.
//
// The graph itself is written once at preprocessing time and never updated,
// so the engine places it directly (see GraphLayout) and reserves the first
// blocks of every plane for it. The FTL manages the remaining blocks for
// runtime writes — completed/foreigner/overflow walk flushes — with
// log-structured allocation, out-of-place update, and greedy garbage
// collection, mirroring the MQSim FTL features the paper lists (§II.C).
//
// GC is strictly in-plane: each plane keeps one over-provisioned spare block
// that receives copy-back relocations, so valid pages never cross a plane
// boundary and the copy-back timing model (no channel transfer) matches what
// actually happens. See docs/MODELING.md "GC model" for the spare-rotation
// policy and the idle-GC pass.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "ssd/flash_array.hpp"
#include "ssd/reliability/bad_block.hpp"

namespace fw::obs {
class Counter;
class CounterRegistry;
class TraceRecorder;
}  // namespace fw::obs

namespace fw::ssd {

struct FtlStats {
  std::uint64_t host_page_writes = 0;
  std::uint64_t host_page_reads = 0;
  std::uint64_t gc_page_moves = 0;
  std::uint64_t gc_erases = 0;
  std::uint64_t gc_idle_episodes = 0;
  std::uint32_t min_block_erases = 0;
  std::uint32_t max_block_erases = 0;
  std::uint64_t bad_blocks = 0;        ///< grown bad blocks retired so far
  std::uint64_t gc_uncorrectable = 0;  ///< pages lost during GC relocation

  [[nodiscard]] double write_amplification() const {
    return host_page_writes == 0
               ? 1.0
               : 1.0 + static_cast<double>(gc_page_moves) /
                           static_cast<double>(host_page_writes);
  }

  /// Wear spread across blocks (0 = perfectly even).
  [[nodiscard]] std::uint32_t wear_spread() const {
    return max_block_erases - min_block_erases;
  }
};

class Ftl {
 public:
  /// `reserved_blocks_per_plane` blocks at the start of every plane hold the
  /// immutable graph and are never allocated. Of the remaining blocks, one
  /// per plane is held back as the GC copy-back spare (when at least two
  /// remain), so host-visible capacity is `usable - 1` blocks per plane.
  Ftl(FlashArray& flash, std::uint32_t reserved_blocks_per_plane);

  /// Write one logical page; allocates a fresh physical page (round-robin
  /// across channels/chips/planes for parallelism), invalidating any prior
  /// mapping. Returns the program completion tick.
  Tick write_page(Tick now, std::uint64_t lpn, bool over_channel = true);

  /// Read a previously written logical page. Throws on unmapped LPN.
  Tick read_page(Tick now, std::uint64_t lpn, bool over_channel = true);

  /// Background compaction pass, run while the device is idle: every plane
  /// independently collects blocks whose invalid-page count has reached half
  /// the block, up to `max_episodes` block collections in total. Returns the
  /// tick at which the last plane finishes (planes run concurrently).
  Tick idle_gc(Tick now, std::uint32_t max_episodes);

  [[nodiscard]] bool is_mapped(std::uint64_t lpn) const { return l2p_.contains(lpn); }
  /// Current physical page of a mapped LPN (throws on unmapped). Exposed so
  /// tests can assert GC relocations stay inside the victim's plane.
  [[nodiscard]] std::uint64_t physical_of(std::uint64_t lpn) const;
  /// Stats with the wear counters folded in.
  [[nodiscard]] FtlStats stats() const;
  [[nodiscard]] std::uint32_t reserved_blocks_per_plane() const { return reserved_; }
  [[nodiscard]] std::uint32_t usable_blocks_per_plane() const { return usable_blocks_; }
  /// Grown bad-block bookkeeping (block indices are FTL-relative).
  [[nodiscard]] const reliability::BadBlockManager& bad_block_manager() const {
    return bbm_;
  }
  /// Pages the host can keep live at once (spare blocks excluded).
  [[nodiscard]] std::uint64_t host_capacity_pages() const;

  /// Mirror FTL activity into live counters (`ftl.*`) and record one trace
  /// span per GC episode. Both pointers may be null; pass the pair that is
  /// wanted. Handles must outlive the FTL.
  void attach_observability(obs::CounterRegistry* registry, obs::TraceRecorder* trace);

 private:
  struct BlockState {
    std::uint32_t written = 0;  ///< next page to program
    std::uint32_t valid = 0;    ///< live pages
    std::uint32_t erases = 0;   ///< wear counter
  };

  static constexpr std::uint32_t kNone = 0xffffffffu;

  struct PlaneState {
    std::vector<BlockState> blocks;  ///< indexed by block - reserved
    std::uint32_t active_block = 0;
    std::uint32_t spare_block = kNone;  ///< GC copy-back destination
    std::deque<std::uint32_t> free_blocks;
    std::uint32_t trace_track = kNone;  ///< lazily registered GC lane
  };

  /// Pick the next physical page on the allocation cursor, running GC on
  /// the target plane if it has no free block. Returns the PPN and the tick
  /// at which the plane is ready (GC may delay it).
  std::pair<std::uint64_t, Tick> allocate(Tick now);

  /// Retire (plane, rel_block) as a grown bad block: record it, seal it so
  /// the allocator and GC never touch it again. Pages it still holds stay
  /// readable but are never relocated.
  void retire_block(std::uint32_t plane_index, std::uint32_t rel_block,
                    reliability::RetireReason reason);

  /// Greedy victim in the plane: a non-active, non-spare, non-retired block
  /// whose valid pages fit in the spare; fewest valid first, fewest erases
  /// as the wear tie-break. Space-pressure mode (`idle == false`) considers
  /// only full blocks with at least one invalid page; idle mode also
  /// compacts partially written blocks once half their pages are invalid.
  /// kNone if no block qualifies.
  [[nodiscard]] std::uint32_t find_victim(std::uint32_t plane_index, bool idle) const;

  /// Collect one block: copy-back its valid pages into the plane's spare,
  /// erase it, rotate the spare. Returns the completion tick.
  Tick gc_block(Tick now, std::uint32_t plane_index, std::uint32_t victim);

  /// Space-pressure GC for `allocate`: collect the greediest victim, if any.
  Tick collect_garbage(Tick now, std::uint32_t plane_index);

  [[nodiscard]] FlashAddress plane_address(std::uint32_t plane_index) const;

  FlashArray& flash_;
  std::uint32_t reserved_;
  std::uint32_t usable_blocks_;  ///< per plane
  std::vector<PlaneState> planes_;
  std::unordered_map<std::uint64_t, std::uint64_t> l2p_;
  std::unordered_map<std::uint64_t, std::uint64_t> p2l_;
  std::uint32_t cursor_plane_ = 0;  ///< global plane round-robin cursor
  bool gc_active_ = false;          ///< recursion guard: GC must never re-enter
  reliability::BadBlockManager bbm_;
  mutable FtlStats stats_;

  obs::TraceRecorder* trace_ = nullptr;
  obs::Counter* c_host_writes_ = nullptr;
  obs::Counter* c_host_reads_ = nullptr;
  obs::Counter* c_gc_moves_ = nullptr;
  obs::Counter* c_gc_erases_ = nullptr;
  obs::Counter* c_gc_idle_ = nullptr;
  obs::Counter* c_bad_blocks_ = nullptr;
};

}  // namespace fw::ssd
