#include "ssd/nvme.hpp"

#include <algorithm>
#include <stdexcept>

namespace fw::ssd {

NvmeInterface::NvmeInterface(SsdDevice& device, const NvmeConfig& config)
    : device_(device), config_(config), pairs_(std::max<std::uint32_t>(1, config.queue_pairs)) {
  if (config_.queue_depth == 0 || config_.mdts_bytes == 0) {
    throw std::invalid_argument("NvmeConfig: zero queue depth or MDTS");
  }
}

Tick NvmeInterface::reserve_slot(QueuePair& pair, Tick now) {
  // Retire completions that have already landed.
  while (!pair.outstanding.empty() && pair.outstanding.front() <= now) {
    pair.outstanding.pop_front();
  }
  if (pair.outstanding.size() < config_.queue_depth) return now;
  // Queue full: the submission waits for the oldest completion.
  ++stats_.depth_stalls;
  const Tick free_at = pair.outstanding.front();
  pair.outstanding.pop_front();
  return free_at;
}

Tick NvmeInterface::submit(Tick now, std::uint32_t qp, std::uint64_t bytes,
                           bool is_write) {
  if (bytes == 0) return now;
  QueuePair& pair = pairs_[qp % pairs_.size()];

  Tick last_completion = now;
  std::uint64_t remaining = bytes;
  Tick t = now;
  while (remaining > 0) {
    const std::uint64_t chunk = std::min(remaining, config_.mdts_bytes);
    remaining -= chunk;

    t = reserve_slot(pair, t);
    // Controller fetches and decodes the command (shared across pairs —
    // round-robin arbitration degenerates to FIFO here).
    const Tick decoded = controller_.acquire(t, config_.command_process);
    const Tick data_done = is_write ? device_.host_write(decoded, chunk)
                                    : device_.host_read(decoded, chunk);
    const Tick completed = data_done + config_.completion_post;
    // Keep completions ordered oldest-first.
    const auto pos =
        std::upper_bound(pair.outstanding.begin(), pair.outstanding.end(), completed);
    pair.outstanding.insert(pos, completed);

    last_completion = std::max(last_completion, completed);
    ++stats_.commands;
    if (is_write) {
      ++stats_.write_commands;
    } else {
      ++stats_.read_commands;
    }
  }
  return last_completion;
}

Tick NvmeInterface::read(Tick now, std::uint32_t qp, std::uint64_t bytes) {
  return submit(now, qp, bytes, /*is_write=*/false);
}

Tick NvmeInterface::write(Tick now, std::uint32_t qp, std::uint64_t bytes) {
  return submit(now, qp, bytes, /*is_write=*/true);
}

}  // namespace fw::ssd
