// NVMe host-interface logic (HIL) model.
//
// The paper's SSD presents an NVMe interface (Table III), and its simulator
// base (MQSim) exists precisely to model multi-queue behaviour. This layer
// adds what the raw SsdDevice path abstracts away:
//   - submission/completion queue pairs with bounded queue depth
//     (submissions beyond the depth stall until completions retire),
//   - per-command controller processing cost (fetch, decode, PRP walk),
//   - MDTS splitting: transfers larger than the controller's maximum data
//     transfer size become multiple commands.
// The GraphWalker baseline issues its block reads through this interface,
// so large sequential block loads pay realistic per-command overheads.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/resource.hpp"
#include "ssd/ssd_device.hpp"

namespace fw::ssd {

struct NvmeConfig {
  std::uint32_t queue_pairs = 8;       ///< one per host core, typically
  std::uint32_t queue_depth = 64;      ///< outstanding commands per pair
  std::uint64_t mdts_bytes = 128 * KiB;  ///< max data transfer size per command
  Tick command_process = 500;          ///< HIL fetch + decode + PRP per command
  Tick completion_post = 250;          ///< CQ entry + interrupt amortized
};

struct NvmeStats {
  std::uint64_t commands = 0;
  std::uint64_t read_commands = 0;
  std::uint64_t write_commands = 0;
  std::uint64_t depth_stalls = 0;  ///< submissions that waited for queue space
};

class NvmeInterface {
 public:
  NvmeInterface(SsdDevice& device, const NvmeConfig& config);

  /// Read `bytes` through queue pair `qp`. Returns the tick at which the
  /// final completion is visible to the host.
  Tick read(Tick now, std::uint32_t qp, std::uint64_t bytes);

  /// Write `bytes` through queue pair `qp`.
  Tick write(Tick now, std::uint32_t qp, std::uint64_t bytes);

  [[nodiscard]] const NvmeStats& stats() const { return stats_; }
  [[nodiscard]] const NvmeConfig& config() const { return config_; }

 private:
  struct QueuePair {
    std::deque<Tick> outstanding;  ///< completion ticks of in-flight commands
  };

  Tick submit(Tick now, std::uint32_t qp, std::uint64_t bytes, bool is_write);

  /// Wait (if needed) until the pair has a free slot at or after `now`.
  Tick reserve_slot(QueuePair& pair, Tick now);

  SsdDevice& device_;
  NvmeConfig config_;
  std::vector<QueuePair> pairs_;
  sim::SerialResource controller_;  ///< shared HIL command processor
  NvmeStats stats_;
};

}  // namespace fw::ssd
