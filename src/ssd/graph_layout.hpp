// Static placement of graph blocks onto flash.
//
// Each subgraph (one graph block) lives wholly inside one chip, its pages
// striped across that chip's planes — the paper restricts "subgraphs fetched
// by a chip-level accelerator must be in the same chip's flash planes"
// (§III.D), which this layout guarantees by construction. Chips are filled
// round-robin so subgraph load across channels/chips is balanced.
#pragma once

#include <cstdint>
#include <vector>

#include "partition/partitioned_graph.hpp"
#include "ssd/config.hpp"

namespace fw::ssd {

struct SubgraphPlacement {
  std::uint32_t channel = 0;
  std::uint32_t chip = 0;         ///< within channel
  std::uint32_t start_plane = 0;  ///< first plane of the page stripe
  std::uint32_t num_pages = 0;
  std::uint64_t first_ppn = 0;    ///< representative physical page number
};

class GraphLayout {
 public:
  GraphLayout(const partition::PartitionedGraph& pg, const SsdConfig& ssd);

  [[nodiscard]] const SubgraphPlacement& placement(SubgraphId sg) const {
    return placements_[sg];
  }
  [[nodiscard]] const std::vector<SubgraphPlacement>& placements() const {
    return placements_;
  }

  /// Subgraphs stored in a given chip (used to scope per-chip scheduling and
  /// channel-level hot-subgraph selection).
  [[nodiscard]] const std::vector<SubgraphId>& chip_subgraphs(std::uint32_t channel,
                                                              std::uint32_t chip) const;

  /// Flash blocks per plane consumed by the graph (the FTL reserves them).
  [[nodiscard]] std::uint32_t reserved_blocks_per_plane() const { return reserved_blocks_; }

  /// First-page PPN per subgraph, for the mapping table's flash address field.
  [[nodiscard]] std::vector<std::uint64_t> first_pages() const;

 private:
  std::uint32_t chips_total_;
  std::uint32_t chips_per_channel_ = 1;
  std::vector<SubgraphPlacement> placements_;
  std::vector<std::vector<SubgraphId>> per_chip_;  // indexed channel*chips+chip
  std::uint32_t reserved_blocks_ = 0;
};

}  // namespace fw::ssd
