// NAND flash timing model: per-plane serial resources + per-channel ONFI
// bus links, with byte accounting for the Fig 6/8 metrics.
//
// This is a *timing calculator*: callers pass `now` and get completion
// ticks; the engine owns event scheduling. Two read paths exist on purpose:
//   - `over_channel = false`: a chip-level accelerator pulling a page from
//     its own planes (the in-storage fast path — no ONFI transfer);
//   - `over_channel = true`: data leaving the chip over the channel bus
//     (host reads, and board/channel-level accelerator fills).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/resource.hpp"
#include "ssd/address.hpp"
#include "ssd/config.hpp"

namespace fw::ssd {

class FlashArray {
 public:
  explicit FlashArray(const SsdConfig& config);

  [[nodiscard]] const SsdConfig& config() const { return config_; }
  [[nodiscard]] const AddressMap& address_map() const { return amap_; }

  /// Read one page; returns the tick at which its data is available at the
  /// requested boundary (plane register, or channel output).
  Tick read_page(Tick now, const FlashAddress& addr, bool over_channel);

  /// Read `num_pages` pages of one chip, striped round-robin over its
  /// planes starting at `start_plane`. Returns the last completion tick.
  Tick read_chip_pages(Tick now, std::uint32_t channel, std::uint32_t chip,
                       std::uint32_t start_plane, std::uint32_t num_pages,
                       bool over_channel);

  /// Program one page (data reaches the chip over the channel unless the
  /// writer sits inside it).
  Tick program_page(Tick now, const FlashAddress& addr, bool over_channel);

  Tick erase_block(Tick now, const FlashAddress& addr);

  /// Transfer `bytes` of non-page data (commands, roving walks) over a
  /// channel bus.
  Tick channel_transfer(Tick now, std::uint32_t channel, std::uint64_t bytes);

  // --- accounting -------------------------------------------------------
  [[nodiscard]] std::uint64_t read_bytes() const { return read_bytes_; }
  [[nodiscard]] std::uint64_t programmed_bytes() const { return programmed_bytes_; }
  [[nodiscard]] std::uint64_t channel_bytes() const;
  [[nodiscard]] std::uint64_t erase_count() const { return erase_count_; }
  [[nodiscard]] std::uint64_t page_reads() const { return page_reads_; }

  [[nodiscard]] double plane_utilization(Tick elapsed) const;
  [[nodiscard]] double channel_utilization(Tick elapsed) const;

  /// Earliest tick at which the given plane is free (for idle checks).
  [[nodiscard]] Tick plane_busy_until(std::uint32_t plane_index) const {
    return planes_[plane_index].busy_until();
  }

 private:
  sim::SerialResource& plane(const FlashAddress& a) {
    return planes_[amap_.plane_index(a)];
  }

  SsdConfig config_;
  AddressMap amap_;
  std::vector<sim::SerialResource> planes_;    // one per physical plane
  std::vector<sim::BandwidthLink> channels_;   // one ONFI bus per channel
  /// Per-plane page tallies for batched in-chip reads; a member (not a
  /// local) so the hot multi-page path never touches the allocator.
  std::vector<std::uint64_t> plane_read_counts_;
  std::uint64_t read_bytes_ = 0;
  std::uint64_t programmed_bytes_ = 0;
  std::uint64_t erase_count_ = 0;
  std::uint64_t page_reads_ = 0;
};

}  // namespace fw::ssd
