// NAND flash timing model: per-plane serial resources + per-channel ONFI
// bus links, with byte accounting for the Fig 6/8 metrics.
//
// This is a *timing calculator*: callers pass `now` and get completion
// ticks; the engine owns event scheduling. Two read paths exist on purpose:
//   - `over_channel = false`: a chip-level accelerator pulling a page from
//     its own planes (the in-storage fast path — no ONFI transfer);
//   - `over_channel = true`: data leaving the chip over the channel bus
//     (host reads, and board/channel-level accelerator fills).
//
// When `config.reliability` is enabled the array owns the NAND fault oracle
// (src/ssd/reliability): every read runs the RBER -> ECC -> read-retry
// pipeline (each retry is a full tR that re-occupies the plane), and
// program/erase operations can fail so the FTL grows bad blocks. The
// `*_checked` entry points expose the fault outcome; the legacy signatures
// delegate to them and keep their exact pre-reliability timing when the
// model is off.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/resource.hpp"
#include "ssd/address.hpp"
#include "ssd/config.hpp"
#include "ssd/reliability/reliability_model.hpp"

namespace fw::obs {
class Counter;
class CounterRegistry;
}  // namespace fw::obs

namespace fw::ssd {

/// Outcome of one checked page read.
struct PageReadResult {
  Tick ready = 0;  ///< data available at the requested boundary
  std::uint32_t retries = 0;
  std::uint32_t corrected_bits = 0;
  bool uncorrectable = false;
};

/// Aggregate outcome of one checked multi-page chip read.
struct ChipReadResult {
  Tick done = 0;        ///< everything available, including retried pages
  Tick clean_done = 0;  ///< pages that cleared ECC without a retry
  std::uint32_t retried_pages = 0;
  std::uint32_t uncorrectable_pages = 0;
  std::uint64_t retries = 0;
  std::uint64_t corrected_bits = 0;
};

/// Outcome of a checked program/erase operation.
struct OpResult {
  Tick done = 0;
  bool failed = false;
};

/// Array-level reliability accounting (all zero when the model is off).
struct ReliabilityStats {
  std::uint64_t retried_reads = 0;   ///< page reads needing >= 1 retry
  std::uint64_t retries = 0;         ///< total extra tR re-reads
  std::uint64_t corrected_bits = 0;  ///< ECC corrections on successful passes
  std::uint64_t uncorrectable = 0;   ///< reads that exhausted the ladder
  std::uint64_t program_failures = 0;
  std::uint64_t erase_failures = 0;
};

class FlashArray {
 public:
  explicit FlashArray(const SsdConfig& config);

  [[nodiscard]] const SsdConfig& config() const { return config_; }
  [[nodiscard]] const AddressMap& address_map() const { return amap_; }

  /// Read one page; returns the tick at which its data is available at the
  /// requested boundary (plane register, or channel output).
  Tick read_page(Tick now, const FlashAddress& addr, bool over_channel);

  /// Read one page with the fault outcome exposed.
  PageReadResult read_page_checked(Tick now, const FlashAddress& addr,
                                   bool over_channel);

  /// Read `num_pages` pages of one chip, striped round-robin over its
  /// planes starting at `start_plane`. Returns the last completion tick.
  Tick read_chip_pages(Tick now, std::uint32_t channel, std::uint32_t chip,
                       std::uint32_t start_plane, std::uint32_t num_pages,
                       bool over_channel);

  /// Striped chip read with per-page fault outcomes folded into an
  /// aggregate. `fault_base` keys the fault draws (callers pass a stable
  /// per-extent page number, e.g. the subgraph's first PPN, so distinct
  /// extents see distinct fault populations); the graph region is
  /// write-once, so these reads charge wear level zero.
  ChipReadResult read_chip_pages_checked(Tick now, std::uint32_t channel,
                                         std::uint32_t chip, std::uint32_t start_plane,
                                         std::uint32_t num_pages, bool over_channel,
                                         std::uint64_t fault_base = 0);

  /// Program one page (data reaches the chip over the channel unless the
  /// writer sits inside it).
  Tick program_page(Tick now, const FlashAddress& addr, bool over_channel);

  /// Program with the failure outcome exposed (the page is still charged
  /// its program time on failure — the chip reports status after tPROG).
  OpResult program_page_checked(Tick now, const FlashAddress& addr, bool over_channel);

  Tick erase_block(Tick now, const FlashAddress& addr);

  /// Erase with the failure outcome exposed; wear advances either way.
  OpResult erase_block_checked(Tick now, const FlashAddress& addr);

  /// Transfer `bytes` of non-page data (commands, roving walks) over a
  /// channel bus.
  Tick channel_transfer(Tick now, std::uint32_t channel, std::uint64_t bytes);

  // --- accounting -------------------------------------------------------
  [[nodiscard]] std::uint64_t read_bytes() const { return read_bytes_; }
  [[nodiscard]] std::uint64_t programmed_bytes() const { return programmed_bytes_; }
  [[nodiscard]] std::uint64_t channel_bytes() const;
  [[nodiscard]] std::uint64_t erase_count() const { return erase_count_; }
  [[nodiscard]] std::uint64_t page_reads() const { return page_reads_; }

  [[nodiscard]] double plane_utilization(Tick elapsed) const;
  [[nodiscard]] double channel_utilization(Tick elapsed) const;

  /// Earliest tick at which the given plane is free (for idle checks).
  [[nodiscard]] Tick plane_busy_until(std::uint32_t plane_index) const {
    return planes_[plane_index].busy_until();
  }

  // --- reliability ------------------------------------------------------
  [[nodiscard]] bool reliability_enabled() const { return rel_ != nullptr; }
  [[nodiscard]] const ReliabilityStats& reliability_stats() const { return rel_stats_; }
  /// P/E cycles of (global plane, block); zero when the model is off.
  [[nodiscard]] std::uint32_t block_pe(std::uint32_t plane_index,
                                       std::uint32_t block) const;

  /// Mirror reliability events into live `reliability.*` counters (no-op
  /// when the model is off). The registry must outlive the array.
  void attach_observability(obs::CounterRegistry* registry);

 private:
  sim::SerialResource& plane(const FlashAddress& a) {
    return planes_[amap_.plane_index(a)];
  }
  [[nodiscard]] std::uint32_t pe_of(const FlashAddress& a) const;
  /// Fold one read fault into stats/counters and charge the plane the
  /// retry re-reads. Returns the sense-complete tick (ECC latency included).
  Tick apply_read_fault(Tick now, sim::SerialResource& pl,
                        const reliability::PageReadFault& fault);

  SsdConfig config_;
  AddressMap amap_;
  std::vector<sim::SerialResource> planes_;    // one per physical plane
  std::vector<sim::BandwidthLink> channels_;   // one ONFI bus per channel
  /// Per-plane page tallies for batched in-chip reads; a member (not a
  /// local) so the hot multi-page path never touches the allocator.
  std::vector<std::uint64_t> plane_read_counts_;
  std::uint64_t read_bytes_ = 0;
  std::uint64_t programmed_bytes_ = 0;
  std::uint64_t erase_count_ = 0;
  std::uint64_t page_reads_ = 0;

  std::unique_ptr<reliability::ReliabilityModel> rel_;  ///< null = ideal NAND
  std::vector<std::uint32_t> block_pe_;  ///< wear, plane-major (model on only)
  ReliabilityStats rel_stats_;
  obs::Counter* c_retried_ = nullptr;
  obs::Counter* c_retries_ = nullptr;
  obs::Counter* c_corrected_ = nullptr;
  obs::Counter* c_uncorrectable_ = nullptr;
  obs::Counter* c_prog_fail_ = nullptr;
  obs::Counter* c_erase_fail_ = nullptr;
};

}  // namespace fw::ssd
