#include "ssd/dram_banked.hpp"

#include <algorithm>

namespace fw::ssd {

BankedDram::BankedDram(const DramConfig& config, std::uint32_t banks,
                       std::uint32_t row_bytes)
    : config_(config),
      row_bytes_(std::max<std::uint32_t>(row_bytes, 64)),
      banks_(std::max<std::uint32_t>(banks, 1)),
      bus_(config.peak_mb_per_s(), /*fixed_latency=*/0) {}

Tick BankedDram::access(Tick now, std::uint64_t addr, std::uint64_t bytes) {
  ++stats_.accesses;
  stats_.bytes += bytes;

  const std::uint64_t row = addr / row_bytes_;
  Bank& bank = banks_[row % banks_.size()];

  Tick start = std::max(now, bank.ready_at);
  Tick command_done;
  if (bank.open_row == row) {
    ++stats_.row_hits;
    command_done = start + t_cas();
  } else {
    ++stats_.row_misses;
    // Precharge the old row (if any), then activate the new one. Honour
    // tRAS: a row must stay open at least tRAS after its activate.
    Tick precharge_at = start;
    if (bank.open_row != ~0ull) {
      precharge_at = std::max(start, bank.last_activate + t_ras());
    }
    const Tick activate_at = precharge_at + (bank.open_row != ~0ull ? t_rp() : 0);
    bank.last_activate = activate_at;
    bank.open_row = row;
    command_done = activate_at + t_rcd() + t_cas();
  }
  bank.ready_at = command_done;
  // Data burst over the shared channel bus.
  return bus_.transfer(command_done, bytes);
}

}  // namespace fw::ssd
