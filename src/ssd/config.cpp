#include "ssd/config.hpp"

namespace fw::ssd {

SsdConfig test_ssd_config() {
  SsdConfig cfg;
  cfg.topo.channels = 4;
  cfg.topo.chips_per_channel = 2;
  cfg.topo.dies_per_chip = 2;
  cfg.topo.planes_per_die = 2;
  cfg.topo.blocks_per_plane = 64;
  cfg.topo.pages_per_block = 16;
  return cfg;
}

}  // namespace fw::ssd
