// Physical flash addressing.
#pragma once

#include <cstdint>

#include "ssd/config.hpp"

namespace fw::ssd {

struct FlashAddress {
  std::uint32_t channel = 0;
  std::uint32_t chip = 0;   ///< within channel
  std::uint32_t plane = 0;  ///< within chip (die folded in: plane index 0..planes_per_chip)
  std::uint32_t block = 0;  ///< within plane
  std::uint32_t page = 0;   ///< within block

  friend bool operator==(const FlashAddress&, const FlashAddress&) = default;
};

/// Linearizes / delinearizes physical page numbers. Page order: channel,
/// chip, plane, block, page — so consecutive PPNs within one (channel, chip,
/// plane) stay in one plane, and the striding helpers below distribute
/// across planes explicitly.
class AddressMap {
 public:
  explicit AddressMap(const FlashTopology& topo) : topo_(topo) {}

  [[nodiscard]] std::uint64_t to_ppn(const FlashAddress& a) const {
    std::uint64_t ppn = a.channel;
    ppn = ppn * topo_.chips_per_channel + a.chip;
    ppn = ppn * topo_.planes_per_chip() + a.plane;
    ppn = ppn * topo_.blocks_per_plane + a.block;
    ppn = ppn * topo_.pages_per_block + a.page;
    return ppn;
  }

  [[nodiscard]] FlashAddress from_ppn(std::uint64_t ppn) const {
    FlashAddress a;
    a.page = static_cast<std::uint32_t>(ppn % topo_.pages_per_block);
    ppn /= topo_.pages_per_block;
    a.block = static_cast<std::uint32_t>(ppn % topo_.blocks_per_plane);
    ppn /= topo_.blocks_per_plane;
    a.plane = static_cast<std::uint32_t>(ppn % topo_.planes_per_chip());
    ppn /= topo_.planes_per_chip();
    a.chip = static_cast<std::uint32_t>(ppn % topo_.chips_per_channel);
    ppn /= topo_.chips_per_channel;
    a.channel = static_cast<std::uint32_t>(ppn);
    return a;
  }

  [[nodiscard]] std::uint64_t total_pages() const {
    return static_cast<std::uint64_t>(topo_.channels) * topo_.chips_per_channel *
           topo_.planes_per_chip() * topo_.blocks_per_plane * topo_.pages_per_block;
  }

  /// Global plane index (for per-plane resource arrays).
  [[nodiscard]] std::uint32_t plane_index(const FlashAddress& a) const {
    return (a.channel * topo_.chips_per_channel + a.chip) * topo_.planes_per_chip() +
           a.plane;
  }

 private:
  FlashTopology topo_;
};

}  // namespace fw::ssd
