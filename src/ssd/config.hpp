// SSD architectural configuration — defaults are the paper's Table I/III.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "common/units.hpp"
#include "ssd/reliability/config.hpp"

namespace fw::ssd {

struct FlashTopology {
  std::uint32_t channels = 32;
  std::uint32_t chips_per_channel = 4;
  std::uint32_t dies_per_chip = 2;
  std::uint32_t planes_per_die = 4;
  std::uint32_t blocks_per_plane = 2048;
  std::uint32_t pages_per_block = 64;
  std::uint32_t page_bytes = 4096;

  [[nodiscard]] std::uint32_t planes_per_chip() const {
    return dies_per_chip * planes_per_die;
  }
  [[nodiscard]] std::uint32_t total_chips() const { return channels * chips_per_channel; }
  [[nodiscard]] std::uint32_t total_planes() const {
    return total_chips() * planes_per_chip();
  }
  [[nodiscard]] std::uint64_t pages_per_plane() const {
    return static_cast<std::uint64_t>(blocks_per_plane) * pages_per_block;
  }
  [[nodiscard]] std::uint64_t capacity_bytes() const {
    return static_cast<std::uint64_t>(total_planes()) * pages_per_plane() * page_bytes;
  }
};

struct FlashTimings {
  Tick read_latency = 35 * kUs;      ///< page read (tR)
  Tick program_latency = 350 * kUs;  ///< page program
  Tick erase_latency = 2 * kMs;      ///< block erase
  std::uint64_t channel_mb_per_s = 333;  ///< ONFI 3.1 NV-DDR2, 8-bit @ 333 MT/s
  Tick channel_cmd_overhead = 200;       ///< command/address cycles per transfer
};

struct DramConfig {
  // Table III: DDR4, 1600 MHz, 64-bit bus, BL 8, CL/RCD/RP 22, RAS 52.
  std::uint32_t mts = 1600;      ///< mega-transfers per second
  std::uint32_t bus_bits = 64;
  std::uint32_t burst_length = 8;
  std::uint32_t tCL = 22;
  std::uint32_t tRCD = 22;
  std::uint32_t tRP = 22;
  std::uint32_t tRAS = 52;
  std::uint64_t capacity_bytes = 4 * GiB;

  [[nodiscard]] std::uint64_t peak_mb_per_s() const {
    return static_cast<std::uint64_t>(mts) * (bus_bits / 8);
  }
  /// First-access latency: row activate (tRCD) + CAS (tCL) at the command
  /// clock (half the transfer rate).
  [[nodiscard]] Tick access_latency() const {
    const double tck_ns = 2000.0 / static_cast<double>(mts);
    return static_cast<Tick>((tRCD + tCL) * tck_ns);
  }
};

struct PcieConfig {
  std::uint32_t lanes = 4;
  std::uint64_t mb_per_s_per_lane = 1000;  ///< paper: "1GB/s x 4"
  Tick dma_latency = 1 * kUs;              ///< command submission + completion

  [[nodiscard]] std::uint64_t mb_per_s() const { return lanes * mb_per_s_per_lane; }
};

struct SsdConfig {
  FlashTopology topo;
  FlashTimings timing;
  DramConfig dram;
  PcieConfig pcie;
  /// NAND fault model; disabled by default (`reliability.enabled() == false`),
  /// in which case every flash op takes the exact ideal-NAND code path.
  reliability::ReliabilityConfig reliability;

  /// Aggregate ONFI channel-bus bandwidth (paper: 10.4 GB/s for 32 ch).
  [[nodiscard]] std::uint64_t aggregate_channel_mb_per_s() const {
    return topo.channels * timing.channel_mb_per_s;
  }
  /// Minimum latency of any path that leaves a channel's island of state:
  /// the ONFI command/address overhead to get off the channel bus plus one
  /// on-board DRAM first-access hop. The parallel DES uses this as the
  /// floor of its conservative-lookahead window (accel/lookahead.hpp).
  [[nodiscard]] Tick min_cross_channel_ns() const {
    return timing.channel_cmd_overhead + dram.access_latency();
  }
  /// Aggregate in-plane read throughput if every plane streams pages.
  [[nodiscard]] double aggregate_plane_read_mb_per_s() const {
    const double per_plane =
        bandwidth_mb_per_s(topo.page_bytes, timing.read_latency);
    return per_plane * topo.total_planes();
  }
};

/// Scaled-down topology for unit tests (same shape, fewer parts).
SsdConfig test_ssd_config();

}  // namespace fw::ssd
