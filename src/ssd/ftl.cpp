#include "ssd/ftl.hpp"

#include <limits>
#include <stdexcept>

namespace fw::ssd {

Ftl::Ftl(FlashArray& flash, std::uint32_t reserved_blocks_per_plane)
    : flash_(flash), reserved_(reserved_blocks_per_plane) {
  const auto& topo = flash.config().topo;
  if (reserved_ >= topo.blocks_per_plane) {
    throw std::invalid_argument("Ftl: graph reservation leaves no writable blocks");
  }
  usable_blocks_ = topo.blocks_per_plane - reserved_;
  planes_.resize(topo.total_planes());
  for (auto& p : planes_) {
    p.blocks.resize(usable_blocks_);
    p.active_block = 0;
    for (std::uint32_t b = 1; b < usable_blocks_; ++b) p.free_blocks.push_back(b);
  }
}

std::pair<std::uint64_t, Tick> Ftl::allocate(Tick now) {
  const auto& topo = flash_.config().topo;
  const std::uint32_t plane_index = cursor_plane_;
  cursor_plane_ = (cursor_plane_ + 1) % planes_.size();

  PlaneState& ps = planes_[plane_index];
  Tick ready = now;
  BlockState* active = &ps.blocks[ps.active_block];
  if (active->written >= topo.pages_per_block) {
    if (ps.free_blocks.empty()) {
      ready = collect_garbage(now, plane_index);
    }
    if (ps.free_blocks.empty()) {
      throw std::runtime_error("Ftl: plane out of space even after GC");
    }
    ps.active_block = ps.free_blocks.front();
    ps.free_blocks.pop_front();
    active = &ps.blocks[ps.active_block];
  }

  FlashAddress addr;
  const std::uint32_t planes_per_chip = topo.planes_per_chip();
  addr.plane = plane_index % planes_per_chip;
  const std::uint32_t chip_global = plane_index / planes_per_chip;
  addr.chip = chip_global % topo.chips_per_channel;
  addr.channel = chip_global / topo.chips_per_channel;
  addr.block = reserved_ + ps.active_block;
  addr.page = active->written;

  ++active->written;
  ++active->valid;
  return {flash_.address_map().to_ppn(addr), ready};
}

Tick Ftl::collect_garbage(Tick now, std::uint32_t plane_index) {
  const auto& topo = flash_.config().topo;
  PlaneState& ps = planes_[plane_index];

  // Greedy victim: fully written block with the fewest valid pages,
  // excluding the active block; wear-leveling tie-break prefers the block
  // with the fewest erases so wear spreads evenly.
  std::uint32_t victim = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t victim_valid = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t victim_erases = std::numeric_limits<std::uint32_t>::max();
  for (std::uint32_t b = 0; b < ps.blocks.size(); ++b) {
    if (b == ps.active_block) continue;
    const BlockState& bs = ps.blocks[b];
    if (bs.written != topo.pages_per_block) continue;
    if (bs.valid < victim_valid ||
        (bs.valid == victim_valid && bs.erases < victim_erases)) {
      victim = b;
      victim_valid = bs.valid;
      victim_erases = bs.erases;
    }
  }
  if (victim == std::numeric_limits<std::uint32_t>::max()) return now;

  FlashAddress victim_addr;
  const std::uint32_t planes_per_chip = topo.planes_per_chip();
  victim_addr.plane = plane_index % planes_per_chip;
  const std::uint32_t chip_global = plane_index / planes_per_chip;
  victim_addr.chip = chip_global % topo.chips_per_channel;
  victim_addr.channel = chip_global / topo.chips_per_channel;
  victim_addr.block = reserved_ + victim;

  Tick done = now;
  // Relocate valid pages (copy-back inside the plane: read + program, no
  // channel transfer).
  for (std::uint32_t pg = 0; pg < topo.pages_per_block && victim_valid > 0; ++pg) {
    victim_addr.page = pg;
    const std::uint64_t ppn = flash_.address_map().to_ppn(victim_addr);
    const auto it = p2l_.find(ppn);
    if (it == p2l_.end()) continue;
    const std::uint64_t lpn = it->second;
    done = flash_.read_page(done, victim_addr, /*over_channel=*/false);
    // Re-append into some other plane via the normal allocator.
    auto [new_ppn, ready] = allocate(done);
    const FlashAddress new_addr = flash_.address_map().from_ppn(new_ppn);
    done = flash_.program_page(ready, new_addr, /*over_channel=*/false);
    p2l_.erase(it);
    p2l_[new_ppn] = lpn;
    l2p_[lpn] = new_ppn;
    ++stats_.gc_page_moves;
    --victim_valid;
  }

  victim_addr.page = 0;
  done = flash_.erase_block(done, victim_addr);
  ps.blocks[victim].written = 0;
  ps.blocks[victim].valid = 0;
  ++ps.blocks[victim].erases;
  ps.free_blocks.push_back(victim);
  ++stats_.gc_erases;
  return done;
}

FtlStats Ftl::stats() const {
  std::uint32_t min_erases = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t max_erases = 0;
  for (const PlaneState& ps : planes_) {
    for (const BlockState& bs : ps.blocks) {
      min_erases = std::min(min_erases, bs.erases);
      max_erases = std::max(max_erases, bs.erases);
    }
  }
  stats_.min_block_erases = planes_.empty() ? 0 : min_erases;
  stats_.max_block_erases = max_erases;
  return stats_;
}

Tick Ftl::write_page(Tick now, std::uint64_t lpn, bool over_channel) {
  // Invalidate the previous version.
  const auto old = l2p_.find(lpn);
  if (old != l2p_.end()) {
    const FlashAddress addr = flash_.address_map().from_ppn(old->second);
    const std::uint32_t plane_index = flash_.address_map().plane_index(addr);
    PlaneState& ps = planes_[plane_index];
    const std::uint32_t rel_block = addr.block - reserved_;
    if (rel_block < ps.blocks.size() && ps.blocks[rel_block].valid > 0) {
      --ps.blocks[rel_block].valid;
    }
    p2l_.erase(old->second);
  }

  auto [ppn, ready] = allocate(now);
  l2p_[lpn] = ppn;
  p2l_[ppn] = lpn;
  ++stats_.host_page_writes;
  const FlashAddress addr = flash_.address_map().from_ppn(ppn);
  return flash_.program_page(ready, addr, over_channel);
}

Tick Ftl::read_page(Tick now, std::uint64_t lpn, bool over_channel) {
  const auto it = l2p_.find(lpn);
  if (it == l2p_.end()) throw std::out_of_range("Ftl: read of unmapped LPN");
  ++stats_.host_page_reads;
  const FlashAddress addr = flash_.address_map().from_ppn(it->second);
  return flash_.read_page(now, addr, over_channel);
}

}  // namespace fw::ssd
