#include "ssd/ftl.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>
#include <string>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace fw::ssd {

Ftl::Ftl(FlashArray& flash, std::uint32_t reserved_blocks_per_plane)
    : flash_(flash),
      reserved_(reserved_blocks_per_plane),
      bbm_(flash.config().topo.total_planes()) {
  const auto& topo = flash.config().topo;
  if (reserved_ >= topo.blocks_per_plane) {
    throw std::invalid_argument("Ftl: graph reservation leaves no writable blocks");
  }
  usable_blocks_ = topo.blocks_per_plane - reserved_;
  planes_.resize(topo.total_planes());
  for (auto& p : planes_) {
    p.blocks.resize(usable_blocks_);
    p.active_block = 0;
    // The last usable block is the GC copy-back spare: relocated pages land
    // there, which keeps GC strictly in-plane. A one-block plane has no
    // spare (and thus no way to relocate valid data).
    if (usable_blocks_ >= 2) p.spare_block = usable_blocks_ - 1;
    const std::uint32_t free_end = usable_blocks_ >= 2 ? usable_blocks_ - 1 : usable_blocks_;
    for (std::uint32_t b = 1; b < free_end; ++b) p.free_blocks.push_back(b);
  }
}

void Ftl::attach_observability(obs::CounterRegistry* registry,
                               obs::TraceRecorder* trace) {
  trace_ = trace;
  if (registry != nullptr) {
    c_host_writes_ = &registry->counter("ftl.host_page_writes");
    c_host_reads_ = &registry->counter("ftl.host_page_reads");
    c_gc_moves_ = &registry->counter("ftl.gc.page_moves");
    c_gc_erases_ = &registry->counter("ftl.gc.erases");
    c_gc_idle_ = &registry->counter("ftl.gc.idle_episodes");
    // Registered only alongside the fault model so ideal-NAND runs keep
    // their exact pre-reliability metrics JSON.
    c_bad_blocks_ = flash_.reliability_enabled()
                        ? &registry->counter("ftl.bad_blocks")
                        : nullptr;
  } else {
    c_host_writes_ = c_host_reads_ = c_gc_moves_ = c_gc_erases_ = c_gc_idle_ = nullptr;
    c_bad_blocks_ = nullptr;
  }
}

FlashAddress Ftl::plane_address(std::uint32_t plane_index) const {
  const auto& topo = flash_.config().topo;
  FlashAddress addr;
  const std::uint32_t planes_per_chip = topo.planes_per_chip();
  addr.plane = plane_index % planes_per_chip;
  const std::uint32_t chip_global = plane_index / planes_per_chip;
  addr.chip = chip_global % topo.chips_per_channel;
  addr.channel = chip_global / topo.chips_per_channel;
  return addr;
}

std::pair<std::uint64_t, Tick> Ftl::allocate(Tick now) {
  const auto& topo = flash_.config().topo;
  const std::uint32_t plane_index = cursor_plane_;
  cursor_plane_ = (cursor_plane_ + 1) % planes_.size();

  PlaneState& ps = planes_[plane_index];
  Tick ready = now;
  BlockState* active = &ps.blocks[ps.active_block];
  if (active->written >= topo.pages_per_block) {
    // Each successful GC pass erases one block; it may rotate into the
    // spare instead of landing on the free list, so keep collecting while
    // progress is being made (bounded by the plane's block count). A pass
    // that only retires a bad block is progress too — the next iteration
    // picks a different victim.
    for (std::uint32_t attempt = 0;
         ps.free_blocks.empty() && attempt < usable_blocks_; ++attempt) {
      const std::uint64_t erases_before = stats_.gc_erases;
      ready = collect_garbage(ready, plane_index);
      if (stats_.gc_erases == erases_before) break;
    }
    // Retired blocks never enter the free list at retirement time, but a
    // block queued here before going bad must not be re-opened.
    while (!ps.free_blocks.empty() &&
           bbm_.is_bad(plane_index, ps.free_blocks.front())) {
      ps.free_blocks.pop_front();
    }
    if (ps.free_blocks.empty()) {
      throw std::runtime_error("Ftl: plane out of space even after GC");
    }
    ps.active_block = ps.free_blocks.front();
    ps.free_blocks.pop_front();
    active = &ps.blocks[ps.active_block];
  }

  FlashAddress addr = plane_address(plane_index);
  addr.block = reserved_ + ps.active_block;
  addr.page = active->written;

  ++active->written;
  ++active->valid;
  return {flash_.address_map().to_ppn(addr), ready};
}

std::uint32_t Ftl::find_victim(std::uint32_t plane_index, bool idle) const {
  const PlaneState& ps = planes_[plane_index];
  const auto& topo = flash_.config().topo;
  const std::uint32_t spare_room =
      ps.spare_block == kNone
          ? 0
          : topo.pages_per_block - ps.blocks[ps.spare_block].written;
  std::uint32_t victim = kNone;
  std::uint32_t victim_valid = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t victim_erases = std::numeric_limits<std::uint32_t>::max();
  for (std::uint32_t b = 0; b < ps.blocks.size(); ++b) {
    if (b == ps.spare_block) continue;
    if (bbm_.is_bad(plane_index, b)) continue;  // retired: never erase again
    const BlockState& bs = ps.blocks[b];
    // The open (active) block is off-limits while pages can still land in
    // it; once full it is sealed de facto and collectible under space
    // pressure (`allocate` re-opens on a fresh block right after). Idle GC
    // seals the open block itself, with the reassignment done first.
    if (b == ps.active_block && (idle || bs.written != topo.pages_per_block)) continue;
    if (bs.written == 0) continue;
    const std::uint32_t invalid = bs.written - bs.valid;
    if (idle) {
      // Background compaction is worth an erase once half the block's
      // written pages are garbage.
      if (invalid < std::max(1u, bs.written / 2)) continue;
    } else {
      if (bs.written != topo.pages_per_block || invalid == 0) continue;
    }
    if (bs.valid > spare_room) continue;  // relocations must fit in the spare
    if (bs.valid < victim_valid ||
        (bs.valid == victim_valid && bs.erases < victim_erases)) {
      victim = b;
      victim_valid = bs.valid;
      victim_erases = bs.erases;
    }
  }
  return victim;
}

Tick Ftl::gc_block(Tick now, std::uint32_t plane_index, std::uint32_t victim) {
  // GC never re-enters: relocation targets come from the plane's own spare
  // block, not the allocator, so a collection cannot trigger another one.
  assert(!gc_active_ && "Ftl: recursive garbage collection");
  gc_active_ = true;

  const auto& topo = flash_.config().topo;
  PlaneState& ps = planes_[plane_index];
  BlockState& vb = ps.blocks[victim];

  FlashAddress victim_addr = plane_address(plane_index);
  victim_addr.block = reserved_ + victim;

  Tick done = now;
  std::uint64_t moves = 0;
  std::uint32_t lost_pages = 0;
  // Copy-back relocation: read + program inside the plane, no channel
  // transfer. Valid pages land in the plane's spare block, so they never
  // leave the plane the timing model says they stay in.
  for (std::uint32_t pg = 0; pg < topo.pages_per_block && vb.valid > 0; ++pg) {
    victim_addr.page = pg;
    const std::uint64_t ppn = flash_.address_map().to_ppn(victim_addr);
    const auto it = p2l_.find(ppn);
    if (it == p2l_.end()) continue;
    const std::uint64_t lpn = it->second;
    assert(ps.spare_block != kNone && "Ftl: relocation with no spare block");
    BlockState& sb = ps.blocks[ps.spare_block];
    FlashAddress new_addr = victim_addr;
    new_addr.block = reserved_ + ps.spare_block;
    new_addr.page = sb.written;
    const PageReadResult rr = flash_.read_page_checked(done, victim_addr,
                                                       /*over_channel=*/false);
    if (rr.uncorrectable) {
      // The relocated copy is rebuilt through the board-level recovery path
      // before programming; the victim block itself is retired after its
      // erase (an uncorrectable during GC is a grown-bad-block trigger).
      ++lost_pages;
      ++stats_.gc_uncorrectable;
      done = rr.ready + flash_.config().reliability.recovery_latency;
    } else {
      done = rr.ready;
    }
    const OpResult pr = flash_.program_page_checked(done, new_addr,
                                                    /*over_channel=*/false);
    done = pr.done;
    if (pr.failed) {
      // The spare went bad mid-relocation: retire it and abort this
      // collection. Pages not yet moved keep their victim mappings, so no
      // data is orphaned; the plane continues with degraded spare capacity.
      retire_block(plane_index, ps.spare_block, reliability::RetireReason::kProgramFail);
      ps.spare_block = kNone;
      gc_active_ = false;
      return done;
    }
    const std::uint64_t new_ppn = flash_.address_map().to_ppn(new_addr);
    p2l_.erase(it);
    p2l_[new_ppn] = lpn;
    l2p_[lpn] = new_ppn;
    ++sb.written;
    ++sb.valid;
    --vb.valid;
    ++stats_.gc_page_moves;
    ++moves;
  }

  victim_addr.page = 0;
  const OpResult er = flash_.erase_block_checked(done, victim_addr);
  done = er.done;
  vb.written = 0;
  vb.valid = 0;
  ++vb.erases;
  ++stats_.gc_erases;

  if (er.failed || lost_pages > 0) {
    // Erase failure, or uncorrectable pages discovered while relocating:
    // the block is retired instead of re-entering circulation. The FTL's
    // replacement capacity comes out of the free/spare pool — remapping is
    // implicit in never allocating the block again.
    retire_block(plane_index, victim,
                 er.failed ? reliability::RetireReason::kEraseFail
                           : reliability::RetireReason::kUncorrectable);
    // The retired victim cannot take over the spare role, but a full spare
    // must still rotate out or the plane deadlocks: no relocation room means
    // no victim with valid pages ever qualifies again. Promote the old spare
    // to a regular block and pull a replacement from the free list (degraded
    // `kNone` spare if the plane has none to give).
    if (ps.spare_block != kNone &&
        ps.blocks[ps.spare_block].written == topo.pages_per_block) {
      while (!ps.free_blocks.empty() &&
             bbm_.is_bad(plane_index, ps.free_blocks.front())) {
        ps.free_blocks.pop_front();
      }
      if (ps.free_blocks.empty()) {
        ps.spare_block = kNone;
      } else {
        ps.spare_block = ps.free_blocks.front();
        ps.free_blocks.pop_front();
      }
    }
  } else if (ps.spare_block == kNone) {
    ps.free_blocks.push_back(victim);
  } else {
    // Spare rotation. The freshly erased victim is the most attractive
    // spare (it is empty and just gained an erase, so handing it the cold
    // relocation role levels wear); what happens to the old spare depends
    // on how full it is:
    //   - full: it becomes a regular block (a future GC victim), victim is
    //     the new spare — note no block reaches the free list this round;
    //   - empty: swap roles and push the old spare to the free list;
    //   - partially filled: keep it as the spare so it can absorb more
    //     relocations, and free the victim.
    const BlockState& sb = ps.blocks[ps.spare_block];
    if (sb.written == topo.pages_per_block) {
      ps.spare_block = victim;
    } else if (sb.written == 0) {
      ps.free_blocks.push_back(ps.spare_block);
      ps.spare_block = victim;
    } else {
      ps.free_blocks.push_back(victim);
    }
  }

  if (c_gc_moves_ != nullptr && moves > 0) c_gc_moves_->add(moves);
  if (c_gc_erases_ != nullptr) c_gc_erases_->add();
  if (trace_ != nullptr) {
    if (ps.trace_track == kNone) {
      ps.trace_track =
          trace_->register_track("ftl", "gc.plane." + std::to_string(plane_index));
    }
    trace_->complete(ps.trace_track, "gc", now, done, moves, "page_moves");
  }

  gc_active_ = false;
  return done;
}

void Ftl::retire_block(std::uint32_t plane_index, std::uint32_t rel_block,
                       reliability::RetireReason reason) {
  if (!bbm_.retire(plane_index, rel_block, reason)) return;
  // Seal the block so the allocator treats it as full; `find_victim` and
  // the free-list filters consult the manager directly. Pages it still
  // holds stay mapped and readable — they are just never relocated.
  planes_[plane_index].blocks[rel_block].written = flash_.config().topo.pages_per_block;
  if (c_bad_blocks_ != nullptr) c_bad_blocks_->add();
}

Tick Ftl::collect_garbage(Tick now, std::uint32_t plane_index) {
  const std::uint32_t victim = find_victim(plane_index, /*idle=*/false);
  if (victim == kNone) return now;
  return gc_block(now, plane_index, victim);
}

Tick Ftl::idle_gc(Tick now, std::uint32_t max_episodes) {
  const auto& topo = flash_.config().topo;
  Tick done = now;
  std::uint32_t episodes = 0;
  // Planes compact independently and concurrently; the pass finishes when
  // the slowest plane does.
  for (std::uint32_t plane = 0; plane < planes_.size() && episodes < max_episodes;
       ++plane) {
    PlaneState& ps = planes_[plane];
    Tick plane_done = now;
    while (episodes < max_episodes) {
      std::uint32_t victim = find_victim(plane, /*idle=*/true);
      if (victim == kNone) {
        // Closed blocks are clean; seal-and-compact the open (active) block
        // if it is fragmented enough, the way background GC closes open
        // blocks on a real drive. Needs a free block to re-open and spare
        // room for the survivors.
        const BlockState& ab = ps.blocks[ps.active_block];
        const std::uint32_t spare_room =
            ps.spare_block == kNone
                ? 0
                : topo.pages_per_block - ps.blocks[ps.spare_block].written;
        if (ab.written == 0 || ab.written - ab.valid < std::max(1u, ab.written / 2) ||
            ab.valid > spare_room || ps.free_blocks.empty()) {
          break;
        }
        victim = ps.active_block;
        ps.active_block = ps.free_blocks.front();
        ps.free_blocks.pop_front();
      }
      plane_done = gc_block(plane_done, plane, victim);
      ++episodes;
      ++stats_.gc_idle_episodes;
      if (c_gc_idle_ != nullptr) c_gc_idle_->add();
    }
    done = std::max(done, plane_done);
  }
  return done;
}

FtlStats Ftl::stats() const {
  std::uint32_t min_erases = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t max_erases = 0;
  for (const PlaneState& ps : planes_) {
    for (const BlockState& bs : ps.blocks) {
      min_erases = std::min(min_erases, bs.erases);
      max_erases = std::max(max_erases, bs.erases);
    }
  }
  stats_.min_block_erases = planes_.empty() ? 0 : min_erases;
  stats_.max_block_erases = max_erases;
  stats_.bad_blocks = bbm_.retired_count();
  return stats_;
}

std::uint64_t Ftl::host_capacity_pages() const {
  const auto& topo = flash_.config().topo;
  const std::uint32_t data_blocks = usable_blocks_ >= 2 ? usable_blocks_ - 1 : usable_blocks_;
  return static_cast<std::uint64_t>(planes_.size()) * data_blocks * topo.pages_per_block;
}

std::uint64_t Ftl::physical_of(std::uint64_t lpn) const {
  const auto it = l2p_.find(lpn);
  if (it == l2p_.end()) throw std::out_of_range("Ftl: physical_of unmapped LPN");
  return it->second;
}

Tick Ftl::write_page(Tick now, std::uint64_t lpn, bool over_channel) {
  // Invalidate the previous version.
  const auto old = l2p_.find(lpn);
  if (old != l2p_.end()) {
    const FlashAddress addr = flash_.address_map().from_ppn(old->second);
    const std::uint32_t plane_index = flash_.address_map().plane_index(addr);
    PlaneState& ps = planes_[plane_index];
    const std::uint32_t rel_block = addr.block - reserved_;
    if (rel_block < ps.blocks.size() && ps.blocks[rel_block].valid > 0) {
      --ps.blocks[rel_block].valid;
    }
    p2l_.erase(old->second);
  }

  ++stats_.host_page_writes;
  if (c_host_writes_ != nullptr) c_host_writes_->add();

  // A program failure retires the target block and re-allocates elsewhere.
  // Failure draws are address-keyed and the cursor moves every attempt, so
  // consecutive attempts are independent; the bound only guards against
  // pathological injection rates.
  constexpr std::uint32_t kMaxProgramAttempts = 8;
  Tick t = now;
  for (std::uint32_t attempt = 0; attempt < kMaxProgramAttempts; ++attempt) {
    auto [ppn, ready] = allocate(t);
    const FlashAddress addr = flash_.address_map().from_ppn(ppn);
    const OpResult pr = flash_.program_page_checked(ready, addr, over_channel);
    t = pr.done;
    if (!pr.failed) {
      l2p_[lpn] = ppn;
      p2l_[ppn] = lpn;
      return t;
    }
    // Unwind the allocation (the page is wasted, not mapped) and retire the
    // block; the next attempt allocates from a different plane.
    const std::uint32_t plane_index = flash_.address_map().plane_index(addr);
    const std::uint32_t rel_block = addr.block - reserved_;
    --planes_[plane_index].blocks[rel_block].valid;
    retire_block(plane_index, rel_block, reliability::RetireReason::kProgramFail);
  }
  throw std::runtime_error("Ftl: page program failed on every replacement block");
}

Tick Ftl::read_page(Tick now, std::uint64_t lpn, bool over_channel) {
  const auto it = l2p_.find(lpn);
  if (it == l2p_.end()) throw std::out_of_range("Ftl: read of unmapped LPN");
  ++stats_.host_page_reads;
  if (c_host_reads_ != nullptr) c_host_reads_->add();
  const FlashAddress addr = flash_.address_map().from_ppn(it->second);
  const PageReadResult rr = flash_.read_page_checked(now, addr, over_channel);
  // Uncorrectable host reads are rebuilt at the board (RAID-style) — the
  // caller always gets its data, later.
  return rr.uncorrectable ? rr.ready + flash_.config().reliability.recovery_latency
                          : rr.ready;
}

}  // namespace fw::ssd
