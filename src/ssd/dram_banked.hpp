// Banked DRAM timing model (DRAMSim3-lite).
//
// Refines the flat bandwidth model with the structure that actually sets
// DDR4 latency: banks with open rows. An access to a bank's open row pays
// CAS only (tCL); a closed-row or row-conflict access pays precharge +
// activate + CAS (tRP + tRCD + tCL), and a bank cannot re-activate within
// tRAS of the previous activate. Data transfer shares the single 64-bit
// channel bus at the configured transfer rate.
//
// The partition walk buffer's access pattern — many small appends scattered
// across per-subgraph entries — is row-buffer hostile, which is why this
// matters: the flat model undercharges it.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/resource.hpp"
#include "ssd/config.hpp"

namespace fw::ssd {

struct BankedDramStats {
  std::uint64_t accesses = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;  ///< closed row or conflict
  std::uint64_t bytes = 0;

  [[nodiscard]] double row_hit_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(row_hits) / static_cast<double>(accesses);
  }
};

class BankedDram {
 public:
  /// `banks` defaults to a typical DDR4 x16 arrangement (2 bank groups x 4).
  explicit BankedDram(const DramConfig& config, std::uint32_t banks = 8,
                      std::uint32_t row_bytes = 2048);

  /// One access of `bytes` at DRAM address `addr` (drives row/bank mapping),
  /// starting no earlier than `now`. Returns the completion tick.
  Tick access(Tick now, std::uint64_t addr, std::uint64_t bytes);

  [[nodiscard]] const BankedDramStats& stats() const { return stats_; }
  [[nodiscard]] const DramConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t bytes_moved() const { return stats_.bytes; }
  [[nodiscard]] double bus_utilization(Tick elapsed) const {
    return bus_.utilization(elapsed);
  }

  // Timing components in ns (derived from the Table III DDR4 numbers).
  [[nodiscard]] Tick t_cas() const { return cycles_to_ns(config_.tCL); }
  [[nodiscard]] Tick t_rcd() const { return cycles_to_ns(config_.tRCD); }
  [[nodiscard]] Tick t_rp() const { return cycles_to_ns(config_.tRP); }
  [[nodiscard]] Tick t_ras() const { return cycles_to_ns(config_.tRAS); }

 private:
  struct Bank {
    std::uint64_t open_row = ~0ull;
    Tick ready_at = 0;        ///< bank-level availability
    Tick last_activate = 0;   ///< for tRAS
  };

  [[nodiscard]] Tick cycles_to_ns(std::uint32_t cycles) const {
    // Command clock is half the transfer rate (DDR).
    return static_cast<Tick>(cycles * 2000.0 / static_cast<double>(config_.mts));
  }

  DramConfig config_;
  std::uint32_t row_bytes_;
  std::vector<Bank> banks_;
  sim::BandwidthLink bus_;
  BankedDramStats stats_;
};

}  // namespace fw::ssd
