#include "ssd/ssd_device.hpp"

#include <algorithm>

namespace fw::ssd {

SsdDevice::SsdDevice(FlashArray& flash)
    : flash_(flash),
      pcie_(flash.config().pcie.mb_per_s(), flash.config().pcie.dma_latency) {}

Tick SsdDevice::host_read(Tick now, std::uint64_t bytes) {
  if (bytes == 0) return now;
  const auto& topo = flash_.config().topo;
  const std::uint64_t pages = (bytes + topo.page_bytes - 1) / topo.page_bytes;

  // Stripe page reads over chips: each involved chip senses its share of
  // pages across its planes and ships them over its channel.
  const std::uint32_t chips = topo.total_chips();
  const std::uint64_t involved = std::min<std::uint64_t>(pages, chips);
  Tick flash_done = now;
  for (std::uint64_t i = 0; i < involved; ++i) {
    const std::uint32_t chip_global = (stripe_cursor_ + static_cast<std::uint32_t>(i)) % chips;
    const std::uint64_t chip_pages = pages / involved + (i < pages % involved ? 1 : 0);
    const Tick t = flash_.read_chip_pages(
        now, chip_global / topo.chips_per_channel, chip_global % topo.chips_per_channel,
        /*start_plane=*/0, static_cast<std::uint32_t>(chip_pages), /*over_channel=*/true);
    flash_done = std::max(flash_done, t);
  }
  stripe_cursor_ = (stripe_cursor_ + static_cast<std::uint32_t>(involved)) % chips;

  host_read_bytes_ += bytes;
  return pcie_.transfer(flash_done, bytes);
}

Tick SsdDevice::host_write(Tick now, std::uint64_t bytes) {
  if (bytes == 0) return now;
  const auto& topo = flash_.config().topo;
  const Tick at_ssd = pcie_.transfer(now, bytes);
  const std::uint64_t pages = (bytes + topo.page_bytes - 1) / topo.page_bytes;

  const std::uint32_t chips = topo.total_chips();
  const std::uint64_t involved = std::min<std::uint64_t>(pages, chips);
  Tick done = at_ssd;
  for (std::uint64_t i = 0; i < involved; ++i) {
    const std::uint32_t chip_global = (stripe_cursor_ + static_cast<std::uint32_t>(i)) % chips;
    const std::uint64_t chip_pages = pages / involved + (i < pages % involved ? 1 : 0);
    for (std::uint64_t p = 0; p < chip_pages; ++p) {
      FlashAddress addr;
      addr.channel = chip_global / topo.chips_per_channel;
      addr.chip = chip_global % topo.chips_per_channel;
      addr.plane = static_cast<std::uint32_t>(p % topo.planes_per_chip());
      done = std::max(done, flash_.program_page(at_ssd, addr, /*over_channel=*/true));
    }
  }
  stripe_cursor_ = (stripe_cursor_ + static_cast<std::uint32_t>(involved)) % chips;
  host_write_bytes_ += bytes;
  return done;
}

}  // namespace fw::ssd
