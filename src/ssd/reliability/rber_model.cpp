#include "ssd/reliability/rber_model.hpp"

#include <cmath>

namespace fw::ssd::reliability {

double RberModel::raw(std::uint32_t pe) const {
  const double wear = rber_.pe_nominal == 0
                          ? 0.0
                          : std::pow(static_cast<double>(pe) /
                                         static_cast<double>(rber_.pe_nominal),
                                     rber_.pe_exponent);
  return rber_.base * (1.0 + rber_.pe_coeff * wear) *
         (1.0 + rber_.retention_coeff * rber_.retention_age);
}

double RberModel::effective(std::uint32_t pe, std::uint32_t step) const {
  double r = raw(pe);
  for (std::uint32_t s = 0; s < step; ++s) r *= retry_.rber_scale;
  return r;
}

}  // namespace fw::ssd::reliability
