// Deterministic per-operation fault oracle: RBER draw -> ECC verdict ->
// read-retry ladder, plus program/erase failure injection.
//
// Every draw is a pure function of (fault seed, physical address, block P/E
// count, attempt index) — no mutable RNG stream — so outcomes are identical
// across runs regardless of event ordering, and a page re-read at the same
// wear level sees the same cell errors it saw the first time. That is what
// keeps fault-injected runs bit-reproducible (the determinism tests rely on
// it) while still letting wear evolve the fault population between erases.
#pragma once

#include <cstdint>
#include <initializer_list>

#include "ssd/reliability/config.hpp"
#include "ssd/reliability/ecc_model.hpp"
#include "ssd/reliability/rber_model.hpp"

namespace fw::ssd::reliability {

/// Outcome of one logical page read after the full ECC/retry pipeline.
struct PageReadFault {
  std::uint32_t retries = 0;         ///< extra full-tR re-reads performed
  std::uint32_t corrected_bits = 0;  ///< errors fixed on the successful pass
  bool uncorrectable = false;        ///< ladder exhausted; data lost
  Tick ecc_latency = 0;              ///< total decode time across attempts
};

class ReliabilityModel {
 public:
  ReliabilityModel(const ReliabilityConfig& config, std::uint32_t page_bytes);

  /// Fault outcome of reading (plane, block, page) at wear level `pe`.
  [[nodiscard]] PageReadFault read_fault(std::uint32_t plane, std::uint32_t block,
                                         std::uint32_t page, std::uint32_t pe) const;

  /// Program/erase failure draws (`gen` distinguishes successive operations
  /// on the same address so a once-failed address is not doomed forever).
  [[nodiscard]] bool program_fails(std::uint32_t plane, std::uint32_t block,
                                   std::uint32_t page, std::uint32_t gen) const;
  [[nodiscard]] bool erase_fails(std::uint32_t plane, std::uint32_t block,
                                 std::uint32_t gen) const;

  [[nodiscard]] const ReliabilityConfig& config() const { return config_; }
  [[nodiscard]] const EccModel& ecc() const { return ecc_; }

 private:
  /// Stateless hash chain over the key tuple (SplitMix64 per element).
  [[nodiscard]] std::uint64_t key(std::initializer_list<std::uint64_t> parts) const;
  /// Deterministic Poisson(lambda) variate derived from `k`.
  [[nodiscard]] static std::uint32_t poisson(double lambda, std::uint64_t k);
  /// Deterministic uniform [0,1) derived from `k`.
  [[nodiscard]] static double uniform(std::uint64_t k);

  ReliabilityConfig config_;
  RberModel rber_;
  EccModel ecc_;
};

}  // namespace fw::ssd::reliability
