#include "ssd/reliability/ecc_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace fw::ssd::reliability {

EccModel::EccModel(const EccParams& ecc, std::uint32_t page_bytes) : ecc_(ecc) {
  if (ecc_.codeword_bytes == 0) {
    throw std::invalid_argument("EccModel: codeword_bytes must be nonzero");
  }
  codewords_ = std::max(1u, page_bytes / ecc_.codeword_bytes);
  codeword_bits_ = ecc_.codeword_bytes * 8;
}

}  // namespace fw::ssd::reliability
