// Grown bad-block bookkeeping.
//
// Blocks are retired when a program or erase operation fails, or when GC
// hits an uncorrectable page while relocating — the classic grown-bad-block
// triggers. The manager only records retirement; the FTL owns the remap
// (replacement capacity comes out of its free/spare pool, so a retired
// block simply never re-enters circulation).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace fw::ssd::reliability {

enum class RetireReason : std::uint8_t {
  kProgramFail = 0,
  kEraseFail = 1,
  kUncorrectable = 2,
};

struct RetiredBlock {
  std::uint32_t plane = 0;
  std::uint32_t block = 0;  ///< FTL-relative block index within the plane
  RetireReason reason = RetireReason::kProgramFail;
};

class BadBlockManager {
 public:
  explicit BadBlockManager(std::uint32_t num_planes) : per_plane_(num_planes) {}

  /// Retire (plane, block); idempotent. Returns true when newly retired.
  bool retire(std::uint32_t plane, std::uint32_t block, RetireReason reason);

  [[nodiscard]] bool is_bad(std::uint32_t plane, std::uint32_t block) const {
    return per_plane_[plane].contains(block);
  }
  [[nodiscard]] std::uint64_t retired_count() const { return retired_.size(); }
  [[nodiscard]] const std::vector<RetiredBlock>& retired() const { return retired_; }

 private:
  std::vector<std::unordered_set<std::uint32_t>> per_plane_;
  std::vector<RetiredBlock> retired_;  ///< retirement log, in order
};

}  // namespace fw::ssd::reliability
