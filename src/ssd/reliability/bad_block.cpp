#include "ssd/reliability/bad_block.hpp"

namespace fw::ssd::reliability {

bool BadBlockManager::retire(std::uint32_t plane, std::uint32_t block,
                             RetireReason reason) {
  if (!per_plane_[plane].insert(block).second) return false;
  retired_.push_back({plane, block, reason});
  return true;
}

}  // namespace fw::ssd::reliability
