// NAND reliability model configuration.
//
// All defaults describe a mid-life TLC-class device scaled to the paper's
// Table-III flash timings; `base_rber == 0` (the default) disables the whole
// subsystem, and every flash call then takes the exact pre-reliability code
// path — bit-identical timing, zero overhead. See docs/MODELING.md
// "Reliability model" for the curve shapes and the retry/bad-block policies.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "common/units.hpp"

namespace fw::ssd::reliability {

/// Raw bit error rate as a function of block wear and retention age:
///   rber(pe) = base * (1 + pe_coeff * (pe / pe_nominal)^pe_exponent)
///                   * (1 + retention_coeff * retention_age)
/// The power-law wear term and the linear retention term follow the shape
/// measured in large-scale NAND studies (errors grow superlinearly with P/E
/// cycling, roughly linearly with retention time at fixed wear).
struct RberParams {
  double base = 0.0;                 ///< RBER of a fresh block; 0 disables
  double pe_coeff = 4.0;             ///< wear multiplier at rated endurance
  double pe_exponent = 2.0;          ///< superlinear wear growth
  std::uint32_t pe_nominal = 3000;   ///< rated P/E cycles
  double retention_coeff = 0.5;      ///< per-unit-age multiplier
  double retention_age = 0.0;        ///< simulated retention age (arbitrary units)
};

/// BCH-style block code: each codeword independently corrects up to
/// `correctable_bits`; a page fails when its worst codeword exceeds that.
struct EccParams {
  std::uint32_t codeword_bytes = 1024;   ///< payload per codeword
  std::uint32_t correctable_bits = 40;   ///< t of BCH(t) per codeword
  Tick decode_latency = 1 * kUs;         ///< decoder pass over one page
  Tick per_bit_latency = 10 * kNs;       ///< extra ns per corrected bit
};

/// Read-retry ladder: each step re-reads the page with shifted sense
/// thresholds (a full tR through the plane), recovering a fraction of the
/// raw errors; after `max_retries` failed steps the page is uncorrectable.
struct RetryParams {
  std::uint32_t max_retries = 5;   ///< threshold-shift steps after the first read
  double rber_scale = 0.5;         ///< effective-RBER multiplier per step
};

/// Probabilistic fault injection, independent of the RBER curve. Draws are
/// keyed on the physical address (and op generation), so a fixed fault seed
/// reproduces the exact same fault set on every run.
struct InjectParams {
  double program_fail = 0.0;    ///< per program operation
  double erase_fail = 0.0;      ///< per erase operation
  double uncorrectable = 0.0;   ///< forced ladder exhaustion per page read
};

struct ReliabilityConfig {
  RberParams rber;
  EccParams ecc;
  RetryParams retry;
  InjectParams inject;
  std::uint64_t fault_seed = 1;
  /// Board-level reconstruction cost charged per uncorrectable page that the
  /// engine recovers through the channel path (RAID-style rebuild).
  Tick recovery_latency = 40 * kUs;
  /// Backoff before a parked walk batch is re-dispatched after its subgraph
  /// load cleared the retry ladder.
  Tick retry_backoff = 4 * kUs;

  [[nodiscard]] bool enabled() const {
    return rber.base > 0.0 || inject.program_fail > 0.0 ||
           inject.erase_fail > 0.0 || inject.uncorrectable > 0.0;
  }
};

}  // namespace fw::ssd::reliability
