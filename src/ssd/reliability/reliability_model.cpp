#include "ssd/reliability/reliability_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace fw::ssd::reliability {
namespace {

// Salts keep the read / program / erase / injection draw families disjoint.
constexpr std::uint64_t kSaltRead = 0x52454144u;       // "READ"
constexpr std::uint64_t kSaltProgram = 0x50524f47u;    // "PROG"
constexpr std::uint64_t kSaltErase = 0x45525345u;      // "ERSE"
constexpr std::uint64_t kSaltInjectUnc = 0x494e4a55u;  // "INJU"

}  // namespace

ReliabilityModel::ReliabilityModel(const ReliabilityConfig& config,
                                   std::uint32_t page_bytes)
    : config_(config),
      rber_(config.rber, config.retry),
      ecc_(config.ecc, page_bytes) {}

std::uint64_t ReliabilityModel::key(std::initializer_list<std::uint64_t> parts) const {
  SplitMix64 sm(config_.fault_seed);
  std::uint64_t k = sm.next();
  for (const std::uint64_t p : parts) {
    SplitMix64 step(k ^ p);
    k = step.next();
  }
  return k;
}

double ReliabilityModel::uniform(std::uint64_t k) {
  SplitMix64 sm(k);
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

std::uint32_t ReliabilityModel::poisson(double lambda, std::uint64_t k) {
  if (lambda <= 0.0) return 0;
  SplitMix64 sm(k);
  auto u01 = [&sm] { return static_cast<double>(sm.next() >> 11) * 0x1.0p-53; };
  if (lambda < 32.0) {
    // Knuth multiplication method — exact, fine for small means.
    const double limit = std::exp(-lambda);
    double prod = 1.0;
    std::uint32_t n = 0;
    do {
      ++n;
      prod *= u01();
    } while (prod > limit);
    return n - 1;
  }
  // Large means: normal approximation via an Irwin–Hall N(0,1) surrogate.
  double z = -6.0;
  for (int i = 0; i < 12; ++i) z += u01();
  const double v = lambda + z * std::sqrt(lambda) + 0.5;
  return v <= 0.0 ? 0 : static_cast<std::uint32_t>(v);
}

PageReadFault ReliabilityModel::read_fault(std::uint32_t plane, std::uint32_t block,
                                           std::uint32_t page, std::uint32_t pe) const {
  PageReadFault out;
  const std::uint32_t codewords = ecc_.codewords_per_page();
  const std::uint32_t ladder = config_.retry.max_retries;

  // Forced injection: the page exhausts the whole ladder and stays broken.
  if (config_.inject.uncorrectable > 0.0 &&
      uniform(key({kSaltInjectUnc, plane, block, page})) <
          config_.inject.uncorrectable) {
    out.retries = ladder;
    out.uncorrectable = true;
    out.ecc_latency = static_cast<Tick>(ladder + 1) * ecc_.decode_latency(0);
    return out;
  }

  for (std::uint32_t attempt = 0; attempt <= ladder; ++attempt) {
    const double lambda =
        rber_.effective(pe, attempt) * static_cast<double>(ecc_.codeword_bits());
    std::uint32_t worst = 0;
    std::uint32_t total = 0;
    for (std::uint32_t cw = 0; cw < codewords; ++cw) {
      const std::uint32_t errors =
          poisson(lambda, key({kSaltRead, plane, block, page, pe, attempt, cw}));
      worst = std::max(worst, errors);
      total += errors;
    }
    if (ecc_.correctable(worst)) {
      out.retries = attempt;
      out.corrected_bits = total;
      out.ecc_latency += ecc_.decode_latency(total);
      return out;
    }
    // Failed decode pass: detection cost only, then shift thresholds.
    out.ecc_latency += ecc_.decode_latency(0);
  }
  out.retries = ladder;
  out.uncorrectable = true;
  return out;
}

bool ReliabilityModel::program_fails(std::uint32_t plane, std::uint32_t block,
                                     std::uint32_t page, std::uint32_t gen) const {
  if (config_.inject.program_fail <= 0.0) return false;
  return uniform(key({kSaltProgram, plane, block, page, gen})) <
         config_.inject.program_fail;
}

bool ReliabilityModel::erase_fails(std::uint32_t plane, std::uint32_t block,
                                   std::uint32_t gen) const {
  if (config_.inject.erase_fail <= 0.0) return false;
  return uniform(key({kSaltErase, plane, block, gen})) < config_.inject.erase_fail;
}

}  // namespace fw::ssd::reliability
