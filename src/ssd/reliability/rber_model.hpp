// Raw bit error rate curve: wear (P/E cycles) x retention age x retry step.
#pragma once

#include <cstdint>

#include "ssd/reliability/config.hpp"

namespace fw::ssd::reliability {

class RberModel {
 public:
  RberModel(const RberParams& rber, const RetryParams& retry)
      : rber_(rber), retry_(retry) {}

  /// RBER of a page in a block with `pe` program/erase cycles, before any
  /// read-retry threshold shift.
  [[nodiscard]] double raw(std::uint32_t pe) const;

  /// Effective RBER at retry step `step` (0 = initial read): each threshold
  /// shift scales the raw rate by `retry.rber_scale`.
  [[nodiscard]] double effective(std::uint32_t pe, std::uint32_t step) const;

 private:
  RberParams rber_;
  RetryParams retry_;
};

}  // namespace fw::ssd::reliability
