// Registers the reliability CLI flags (--rber / --retention / --fault-seed
// / --inject) onto an OptionSet, bound to a ReliabilityConfig. This is the
// single definition of those flags; every tool that models faults pulls
// them from here so spelling and semantics cannot drift between binaries.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

#include "common/options.hpp"
#include "ssd/reliability/config.hpp"

namespace fw::ssd {

inline void add_reliability_options(OptionSet& opts,
                                    reliability::ReliabilityConfig* cfg) {
  opts.opt("--rber", &cfg->rber.base, "X",
           "NAND raw bit error rate of a fresh block\n"
           "(0 disables the fault model; default 0)");
  opts.opt("--retention", &cfg->rber.retention_age, "X",
           "simulated retention age multiplier");
  opts.opt("--fault-seed", &cfg->fault_seed, "N",
           "seed for all fault draws (default 1);\n"
           "runs are bit-identical for a fixed seed");
  opts.opt("--inject", "K=V[,K=V...]",
           "probabilistic fault injection; keys:\n"
           "prog_fail, erase_fail, uncorrectable",
           [cfg](const std::string& list) {
             std::stringstream ss(list);
             std::string kv;
             while (std::getline(ss, kv, ',')) {
               const auto eq = kv.find('=');
               if (eq == std::string::npos) {
                 throw std::invalid_argument("--inject: expected key=value, got '" +
                                             kv + "'");
               }
               const std::string key = kv.substr(0, eq);
               const double val = OptionSet::to_f64("--inject", kv.substr(eq + 1));
               if (key == "prog_fail") {
                 cfg->inject.program_fail = val;
               } else if (key == "erase_fail") {
                 cfg->inject.erase_fail = val;
               } else if (key == "uncorrectable") {
                 cfg->inject.uncorrectable = val;
               } else {
                 throw std::invalid_argument("--inject: unknown key '" + key + "'");
               }
             }
           });
}

}  // namespace fw::ssd
