// BCH-style ECC model: per-codeword correction budget + decode latency.
#pragma once

#include <cstdint>

#include "ssd/reliability/config.hpp"

namespace fw::ssd::reliability {

class EccModel {
 public:
  EccModel(const EccParams& ecc, std::uint32_t page_bytes);

  [[nodiscard]] std::uint32_t codewords_per_page() const { return codewords_; }
  [[nodiscard]] std::uint32_t codeword_bits() const { return codeword_bits_; }
  [[nodiscard]] std::uint32_t correctable_bits() const { return ecc_.correctable_bits; }

  /// Can one codeword with `bit_errors` raw errors be corrected?
  [[nodiscard]] bool correctable(std::uint32_t bit_errors) const {
    return bit_errors <= ecc_.correctable_bits;
  }

  /// Latency of one decoder pass over a page that corrected `corrected_bits`
  /// in total (error location dominates, so the cost grows with the count).
  [[nodiscard]] Tick decode_latency(std::uint32_t corrected_bits) const {
    return ecc_.decode_latency + static_cast<Tick>(corrected_bits) * ecc_.per_bit_latency;
  }

 private:
  EccParams ecc_;
  std::uint32_t codewords_;
  std::uint32_t codeword_bits_;
};

}  // namespace fw::ssd::reliability
