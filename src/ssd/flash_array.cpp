#include "ssd/flash_array.hpp"

#include <stdexcept>

namespace fw::ssd {

FlashArray::FlashArray(const SsdConfig& config)
    : config_(config),
      amap_(config.topo),
      planes_(config.topo.total_planes()),
      channels_(config.topo.channels,
                sim::BandwidthLink(config.timing.channel_mb_per_s,
                                   config.timing.channel_cmd_overhead)) {}

Tick FlashArray::read_page(Tick now, const FlashAddress& addr, bool over_channel) {
  const Tick sensed = plane(addr).acquire(now, config_.timing.read_latency);
  read_bytes_ += config_.topo.page_bytes;
  ++page_reads_;
  if (!over_channel) return sensed;
  return channels_[addr.channel].transfer(sensed, config_.topo.page_bytes);
}

Tick FlashArray::read_chip_pages(Tick now, std::uint32_t channel, std::uint32_t chip,
                                 std::uint32_t start_plane, std::uint32_t num_pages,
                                 bool over_channel) {
  const std::uint32_t planes = config_.topo.planes_per_chip();
  Tick done = now;
  if (!over_channel) {
    // In-storage fast path (no ONFI transfer): pages stripe round-robin over
    // the chip's planes, and each plane serializes its own reads. Issue one
    // batched reservation per plane — bit-identical timing and accounting to
    // the per-page loop, without a call (and address translation) per page.
    // `plane_read_counts_` is reused across calls so multi-page loads stay
    // allocation-free on the hot path.
    plane_read_counts_.assign(planes, 0);
    for (std::uint32_t i = 0; i < num_pages; ++i) {
      ++plane_read_counts_[(start_plane + i) % planes];
    }
    FlashAddress addr;
    addr.channel = channel;
    addr.chip = chip;
    for (std::uint32_t p = 0; p < planes; ++p) {
      if (plane_read_counts_[p] == 0) continue;
      addr.plane = p;
      const Tick t =
          plane(addr).acquire_n(now, config_.timing.read_latency, plane_read_counts_[p]);
      done = t > done ? t : done;
    }
    read_bytes_ += static_cast<std::uint64_t>(num_pages) * config_.topo.page_bytes;
    page_reads_ += num_pages;
    return done;
  }
  for (std::uint32_t i = 0; i < num_pages; ++i) {
    FlashAddress addr;
    addr.channel = channel;
    addr.chip = chip;
    addr.plane = (start_plane + i) % planes;
    // Block/page within the plane do not affect timing; leave zero.
    const Tick t = read_page(now, addr, over_channel);
    done = t > done ? t : done;
  }
  return done;
}

Tick FlashArray::program_page(Tick now, const FlashAddress& addr, bool over_channel) {
  Tick data_at_chip = now;
  if (over_channel) {
    data_at_chip = channels_[addr.channel].transfer(now, config_.topo.page_bytes);
  }
  programmed_bytes_ += config_.topo.page_bytes;
  return plane(addr).acquire(data_at_chip, config_.timing.program_latency);
}

Tick FlashArray::erase_block(Tick now, const FlashAddress& addr) {
  ++erase_count_;
  return plane(addr).acquire(now, config_.timing.erase_latency);
}

Tick FlashArray::channel_transfer(Tick now, std::uint32_t channel, std::uint64_t bytes) {
  if (channel >= channels_.size()) throw std::out_of_range("channel index");
  return channels_[channel].transfer(now, bytes);
}

std::uint64_t FlashArray::channel_bytes() const {
  std::uint64_t total = 0;
  for (const auto& ch : channels_) total += ch.bytes_moved();
  return total;
}

double FlashArray::plane_utilization(Tick elapsed) const {
  if (elapsed == 0 || planes_.empty()) return 0.0;
  Tick busy = 0;
  for (const auto& p : planes_) busy += p.busy_time();
  return static_cast<double>(busy) /
         (static_cast<double>(elapsed) * static_cast<double>(planes_.size()));
}

double FlashArray::channel_utilization(Tick elapsed) const {
  if (elapsed == 0 || channels_.empty()) return 0.0;
  Tick busy = 0;
  for (const auto& ch : channels_) busy += ch.busy_time();
  return static_cast<double>(busy) /
         (static_cast<double>(elapsed) * static_cast<double>(channels_.size()));
}

}  // namespace fw::ssd
