#include "ssd/flash_array.hpp"

#include <stdexcept>

#include "obs/counters.hpp"

namespace fw::ssd {

FlashArray::FlashArray(const SsdConfig& config)
    : config_(config),
      amap_(config.topo),
      planes_(config.topo.total_planes()),
      channels_(config.topo.channels,
                sim::BandwidthLink(config.timing.channel_mb_per_s,
                                   config.timing.channel_cmd_overhead)) {
  if (config_.reliability.enabled()) {
    rel_ = std::make_unique<reliability::ReliabilityModel>(config_.reliability,
                                                           config_.topo.page_bytes);
    block_pe_.assign(static_cast<std::size_t>(config_.topo.total_planes()) *
                         config_.topo.blocks_per_plane,
                     0);
  }
}

std::uint32_t FlashArray::pe_of(const FlashAddress& a) const {
  if (block_pe_.empty()) return 0;
  return block_pe_[static_cast<std::size_t>(amap_.plane_index(a)) *
                       config_.topo.blocks_per_plane +
                   a.block];
}

std::uint32_t FlashArray::block_pe(std::uint32_t plane_index, std::uint32_t block) const {
  if (block_pe_.empty()) return 0;
  return block_pe_[static_cast<std::size_t>(plane_index) * config_.topo.blocks_per_plane +
                   block];
}

void FlashArray::attach_observability(obs::CounterRegistry* registry) {
  // Counters exist only when the fault model is on, so ideal-NAND runs emit
  // exactly the same metrics JSON they did before this subsystem existed.
  if (rel_ == nullptr || registry == nullptr) return;
  c_retried_ = &registry->counter("reliability.retried_reads");
  c_retries_ = &registry->counter("reliability.retries");
  c_corrected_ = &registry->counter("reliability.corrected_bits");
  c_uncorrectable_ = &registry->counter("reliability.uncorrectable");
  c_prog_fail_ = &registry->counter("reliability.program_failures");
  c_erase_fail_ = &registry->counter("reliability.erase_failures");
}

Tick FlashArray::apply_read_fault(Tick now, sim::SerialResource& pl,
                                  const reliability::PageReadFault& fault) {
  // Each retry is a full tR that re-occupies the plane (threshold-shift
  // re-reads are real senses), so downstream reads on this plane queue
  // behind them. Decoding happens in the controller pipeline and does not
  // hold the plane.
  const Tick sensed =
      pl.acquire_n(now, config_.timing.read_latency, 1 + fault.retries);
  read_bytes_ +=
      static_cast<std::uint64_t>(1 + fault.retries) * config_.topo.page_bytes;
  ++page_reads_;
  if (fault.retries > 0) {
    ++rel_stats_.retried_reads;
    rel_stats_.retries += fault.retries;
    if (c_retried_ != nullptr) c_retried_->add(1);
    if (c_retries_ != nullptr) c_retries_->add(fault.retries);
  }
  if (fault.corrected_bits > 0) {
    rel_stats_.corrected_bits += fault.corrected_bits;
    if (c_corrected_ != nullptr) c_corrected_->add(fault.corrected_bits);
  }
  if (fault.uncorrectable) {
    ++rel_stats_.uncorrectable;
    if (c_uncorrectable_ != nullptr) c_uncorrectable_->add(1);
  }
  return sensed + fault.ecc_latency;
}

Tick FlashArray::read_page(Tick now, const FlashAddress& addr, bool over_channel) {
  if (rel_ != nullptr) return read_page_checked(now, addr, over_channel).ready;
  const Tick sensed = plane(addr).acquire(now, config_.timing.read_latency);
  read_bytes_ += config_.topo.page_bytes;
  ++page_reads_;
  if (!over_channel) return sensed;
  return channels_[addr.channel].transfer(sensed, config_.topo.page_bytes);
}

PageReadResult FlashArray::read_page_checked(Tick now, const FlashAddress& addr,
                                             bool over_channel) {
  PageReadResult out;
  if (rel_ == nullptr) {
    out.ready = read_page(now, addr, over_channel);
    return out;
  }
  const reliability::PageReadFault fault =
      rel_->read_fault(amap_.plane_index(addr), addr.block, addr.page, pe_of(addr));
  Tick ready = apply_read_fault(now, plane(addr), fault);
  if (over_channel) {
    // The raw page crosses the bus even when uncorrectable: the controller
    // pulls it out to attempt board-level reconstruction.
    ready = channels_[addr.channel].transfer(ready, config_.topo.page_bytes);
  }
  out.ready = ready;
  out.retries = fault.retries;
  out.corrected_bits = fault.corrected_bits;
  out.uncorrectable = fault.uncorrectable;
  return out;
}

Tick FlashArray::read_chip_pages(Tick now, std::uint32_t channel, std::uint32_t chip,
                                 std::uint32_t start_plane, std::uint32_t num_pages,
                                 bool over_channel) {
  if (rel_ != nullptr) {
    return read_chip_pages_checked(now, channel, chip, start_plane, num_pages,
                                   over_channel)
        .done;
  }
  const std::uint32_t planes = config_.topo.planes_per_chip();
  Tick done = now;
  if (!over_channel) {
    // In-storage fast path (no ONFI transfer): pages stripe round-robin over
    // the chip's planes, and each plane serializes its own reads. Issue one
    // batched reservation per plane — bit-identical timing and accounting to
    // the per-page loop, without a call (and address translation) per page.
    // `plane_read_counts_` is reused across calls so multi-page loads stay
    // allocation-free on the hot path.
    plane_read_counts_.assign(planes, 0);
    for (std::uint32_t i = 0; i < num_pages; ++i) {
      ++plane_read_counts_[(start_plane + i) % planes];
    }
    FlashAddress addr;
    addr.channel = channel;
    addr.chip = chip;
    for (std::uint32_t p = 0; p < planes; ++p) {
      if (plane_read_counts_[p] == 0) continue;
      addr.plane = p;
      const Tick t =
          plane(addr).acquire_n(now, config_.timing.read_latency, plane_read_counts_[p]);
      done = t > done ? t : done;
    }
    read_bytes_ += static_cast<std::uint64_t>(num_pages) * config_.topo.page_bytes;
    page_reads_ += num_pages;
    return done;
  }
  for (std::uint32_t i = 0; i < num_pages; ++i) {
    FlashAddress addr;
    addr.channel = channel;
    addr.chip = chip;
    addr.plane = (start_plane + i) % planes;
    // Block/page within the plane do not affect timing; leave zero.
    const Tick t = read_page(now, addr, over_channel);
    done = t > done ? t : done;
  }
  return done;
}

ChipReadResult FlashArray::read_chip_pages_checked(
    Tick now, std::uint32_t channel, std::uint32_t chip, std::uint32_t start_plane,
    std::uint32_t num_pages, bool over_channel, std::uint64_t fault_base) {
  ChipReadResult out;
  if (rel_ == nullptr) {
    out.done = read_chip_pages(now, channel, chip, start_plane, num_pages, over_channel);
    out.clean_done = out.done;
    return out;
  }
  const std::uint32_t planes = config_.topo.planes_per_chip();
  out.done = now;
  out.clean_done = now;
  bool any_clean = false;
  FlashAddress addr;
  addr.channel = channel;
  addr.chip = chip;
  for (std::uint32_t i = 0; i < num_pages; ++i) {
    addr.plane = (start_plane + i) % planes;
    // Striped reads carry no real block/page address (the graph region is a
    // pre-placed, write-once extent), so the fault draw is keyed on a pseudo
    // physical page derived from `fault_base` — stable per extent, distinct
    // across extents — at wear level zero (the region is never erased).
    const std::uint64_t gp = fault_base + i;
    const auto block = static_cast<std::uint32_t>((gp / config_.topo.pages_per_block) %
                                                  config_.topo.blocks_per_plane);
    const auto page = static_cast<std::uint32_t>(gp % config_.topo.pages_per_block);
    const reliability::PageReadFault fault =
        rel_->read_fault(amap_.plane_index(addr), block, page, /*pe=*/0);
    Tick t = apply_read_fault(now, plane(addr), fault);
    if (over_channel) t = channels_[channel].transfer(t, config_.topo.page_bytes);
    out.done = t > out.done ? t : out.done;
    out.retries += fault.retries;
    out.corrected_bits += fault.corrected_bits;
    if (fault.uncorrectable) {
      ++out.uncorrectable_pages;
    } else if (fault.retries > 0) {
      ++out.retried_pages;
    } else {
      any_clean = true;
      out.clean_done = t > out.clean_done ? t : out.clean_done;
    }
  }
  // With no clean page there is no early activation point; callers wait for
  // the full load.
  if (!any_clean) out.clean_done = out.done;
  return out;
}

Tick FlashArray::program_page(Tick now, const FlashAddress& addr, bool over_channel) {
  if (rel_ != nullptr) return program_page_checked(now, addr, over_channel).done;
  Tick data_at_chip = now;
  if (over_channel) {
    data_at_chip = channels_[addr.channel].transfer(now, config_.topo.page_bytes);
  }
  programmed_bytes_ += config_.topo.page_bytes;
  return plane(addr).acquire(data_at_chip, config_.timing.program_latency);
}

OpResult FlashArray::program_page_checked(Tick now, const FlashAddress& addr,
                                          bool over_channel) {
  OpResult out;
  if (rel_ == nullptr) {
    out.done = program_page(now, addr, over_channel);
    return out;
  }
  Tick data_at_chip = now;
  if (over_channel) {
    data_at_chip = channels_[addr.channel].transfer(now, config_.topo.page_bytes);
  }
  programmed_bytes_ += config_.topo.page_bytes;
  out.done = plane(addr).acquire(data_at_chip, config_.timing.program_latency);
  // `pe_of` distinguishes generations: in a log-structured FTL a page is
  // programmed once per erase cycle of its block.
  if (rel_->program_fails(amap_.plane_index(addr), addr.block, addr.page, pe_of(addr))) {
    out.failed = true;
    ++rel_stats_.program_failures;
    if (c_prog_fail_ != nullptr) c_prog_fail_->add(1);
  }
  return out;
}

Tick FlashArray::erase_block(Tick now, const FlashAddress& addr) {
  if (rel_ != nullptr) return erase_block_checked(now, addr).done;
  ++erase_count_;
  return plane(addr).acquire(now, config_.timing.erase_latency);
}

OpResult FlashArray::erase_block_checked(Tick now, const FlashAddress& addr) {
  OpResult out;
  if (rel_ == nullptr) {
    out.done = erase_block(now, addr);
    return out;
  }
  ++erase_count_;
  out.done = plane(addr).acquire(now, config_.timing.erase_latency);
  if (rel_->erase_fails(amap_.plane_index(addr), addr.block, pe_of(addr))) {
    out.failed = true;
    ++rel_stats_.erase_failures;
    if (c_erase_fail_ != nullptr) c_erase_fail_->add(1);
  }
  // Wear advances on failure too — the cycle stressed the cells either way.
  block_pe_[static_cast<std::size_t>(amap_.plane_index(addr)) *
                config_.topo.blocks_per_plane +
            addr.block] += 1;
  return out;
}

Tick FlashArray::channel_transfer(Tick now, std::uint32_t channel, std::uint64_t bytes) {
  if (channel >= channels_.size()) throw std::out_of_range("channel index");
  return channels_[channel].transfer(now, bytes);
}

std::uint64_t FlashArray::channel_bytes() const {
  std::uint64_t total = 0;
  for (const auto& ch : channels_) total += ch.bytes_moved();
  return total;
}

double FlashArray::plane_utilization(Tick elapsed) const {
  if (elapsed == 0 || planes_.empty()) return 0.0;
  Tick busy = 0;
  for (const auto& p : planes_) busy += p.busy_time();
  return static_cast<double>(busy) /
         (static_cast<double>(elapsed) * static_cast<double>(planes_.size()));
}

double FlashArray::channel_utilization(Tick elapsed) const {
  if (elapsed == 0 || channels_.empty()) return 0.0;
  Tick busy = 0;
  for (const auto& ch : channels_) busy += ch.busy_time();
  return static_cast<double>(busy) /
         (static_cast<double>(elapsed) * static_cast<double>(channels_.size()));
}

}  // namespace fw::ssd
