// Host-facing SSD view: reads and writes travel flash plane → ONFI channel
// → PCIe, the data path whose two narrow stages (channel bus, PCIe lanes)
// motivate the whole paper. Used by the GraphWalker / DrunkardMob baselines.
//
// Large transfers are striped across every plane (the layout a filesystem's
// large sequential file gets), so a host read's latency is the max of
//   - per-plane sensing time   (pages/planes × tR),
//   - per-channel bus time     (bytes/channels ÷ 333 MB/s),
//   - PCIe time                (bytes ÷ 4 GB/s),
// each charged against the real shared resources so concurrent requests
// queue realistically.
#pragma once

#include <cstdint>

#include "sim/resource.hpp"
#include "ssd/flash_array.hpp"

namespace fw::ssd {

class SsdDevice {
 public:
  explicit SsdDevice(FlashArray& flash);

  /// Read `bytes` of (striped) data to the host. Returns completion tick.
  Tick host_read(Tick now, std::uint64_t bytes);

  /// Write `bytes` from the host (striped programs).
  Tick host_write(Tick now, std::uint64_t bytes);

  [[nodiscard]] std::uint64_t host_read_bytes() const { return host_read_bytes_; }
  [[nodiscard]] std::uint64_t host_write_bytes() const { return host_write_bytes_; }
  [[nodiscard]] const sim::BandwidthLink& pcie() const { return pcie_; }
  [[nodiscard]] FlashArray& flash() { return flash_; }

 private:
  FlashArray& flash_;
  sim::BandwidthLink pcie_;
  std::uint32_t stripe_cursor_ = 0;  ///< rotates start channel for fairness
  std::uint64_t host_read_bytes_ = 0;
  std::uint64_t host_write_bytes_ = 0;
};

}  // namespace fw::ssd
