// On-board DRAM model (DRAMSim3 substitute): a shared bus at the DDR4 peak
// rate with a per-access row-activate + CAS latency. Good enough for the
// role DRAM plays here — the partition walk buffer and mapping tables live
// in it, and the evaluation depends on its *bandwidth* relative to flash and
// the channel buses, not on bank-level scheduling detail.
#pragma once

#include <cstdint>

#include "sim/resource.hpp"
#include "ssd/config.hpp"

namespace fw::ssd {

class DramModel {
 public:
  explicit DramModel(const DramConfig& config)
      : config_(config), bus_(config.peak_mb_per_s(), config.access_latency()) {}

  /// Move `bytes` to/from DRAM starting no earlier than `now`.
  Tick access(Tick now, std::uint64_t bytes) { return bus_.transfer(now, bytes); }

  [[nodiscard]] const DramConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t bytes_moved() const { return bus_.bytes_moved(); }
  [[nodiscard]] std::uint64_t accesses() const { return bus_.transfers(); }
  [[nodiscard]] double utilization(Tick elapsed) const { return bus_.utilization(elapsed); }

 private:
  DramConfig config_;
  sim::BandwidthLink bus_;
};

}  // namespace fw::ssd
