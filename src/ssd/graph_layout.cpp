#include "ssd/graph_layout.hpp"

#include <algorithm>
#include <stdexcept>

#include "ssd/address.hpp"

namespace fw::ssd {

GraphLayout::GraphLayout(const partition::PartitionedGraph& pg, const SsdConfig& ssd) {
  const auto& topo = ssd.topo;
  chips_total_ = topo.total_chips();
  chips_per_channel_ = topo.chips_per_channel;
  per_chip_.resize(chips_total_);
  placements_.resize(pg.num_subgraphs());

  AddressMap amap(topo);
  // Pages already placed per chip, to derive plane striping offsets and the
  // per-plane block reservation.
  std::vector<std::uint64_t> chip_pages(chips_total_, 0);

  std::uint32_t cursor = 0;
  for (const auto& sg : pg.subgraphs()) {
    const std::uint32_t chip_global = cursor;
    cursor = (cursor + 1) % chips_total_;

    SubgraphPlacement p;
    p.channel = chip_global / topo.chips_per_channel;
    p.chip = chip_global % topo.chips_per_channel;
    p.num_pages = static_cast<std::uint32_t>(
        (sg.payload_bytes + topo.page_bytes - 1) / topo.page_bytes);
    if (p.num_pages == 0) p.num_pages = 1;
    p.start_plane =
        static_cast<std::uint32_t>(chip_pages[chip_global] % topo.planes_per_chip());

    FlashAddress first;
    first.channel = p.channel;
    first.chip = p.chip;
    first.plane = p.start_plane;
    const std::uint64_t per_plane_pages =
        chip_pages[chip_global] / topo.planes_per_chip();
    first.block = static_cast<std::uint32_t>(per_plane_pages / topo.pages_per_block);
    first.page = static_cast<std::uint32_t>(per_plane_pages % topo.pages_per_block);
    p.first_ppn = amap.to_ppn(first);

    chip_pages[chip_global] += p.num_pages;
    placements_[sg.id] = p;
    per_chip_[chip_global].push_back(sg.id);
  }

  std::uint64_t max_chip_pages = 0;
  for (auto pages : chip_pages) max_chip_pages = std::max(max_chip_pages, pages);
  const std::uint64_t per_plane =
      (max_chip_pages + topo.planes_per_chip() - 1) / topo.planes_per_chip();
  reserved_blocks_ =
      static_cast<std::uint32_t>((per_plane + topo.pages_per_block - 1) /
                                 topo.pages_per_block);
  if (reserved_blocks_ >= topo.blocks_per_plane) {
    throw std::runtime_error("GraphLayout: graph does not fit in the configured SSD");
  }
}

const std::vector<SubgraphId>& GraphLayout::chip_subgraphs(std::uint32_t channel,
                                                           std::uint32_t chip) const {
  return per_chip_[channel * chips_per_channel_ + chip];
}

std::vector<std::uint64_t> GraphLayout::first_pages() const {
  std::vector<std::uint64_t> pages(placements_.size());
  for (std::size_t i = 0; i < placements_.size(); ++i) pages[i] = placements_[i].first_ppn;
  return pages;
}

}  // namespace fw::ssd
