#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace fw::graph {

void GraphBuilder::add_edge(VertexId src, VertexId dst, float weight) {
  if (src >= num_vertices_ || dst >= num_vertices_) {
    throw std::out_of_range("GraphBuilder: edge endpoint outside vertex space");
  }
  edges_.push_back(Edge{src, dst, weight});
}

void GraphBuilder::add_edges(const std::vector<Edge>& edges) {
  edges_.reserve(edges_.size() + edges.size());
  for (const Edge& e : edges) add_edge(e.src, e.dst, e.weight);
}

CsrGraph GraphBuilder::build(const BuildOptions& opts) && {
  std::vector<Edge> edges = std::move(edges_);

  if (opts.drop_self_loops) {
    std::erase_if(edges, [](const Edge& e) { return e.src == e.dst; });
  }
  if (opts.symmetrize) {
    const std::size_t n = edges.size();
    edges.reserve(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      edges.push_back(Edge{edges[i].dst, edges[i].src, edges[i].weight});
    }
  }

  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  if (opts.deduplicate) {
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const Edge& a, const Edge& b) {
                              return a.src == b.src && a.dst == b.dst;
                            }),
                edges.end());
  }

  std::vector<EdgeId> offsets(num_vertices_ + 1, 0);
  for (const Edge& e : edges) ++offsets[e.src + 1];
  for (std::size_t v = 1; v < offsets.size(); ++v) offsets[v] += offsets[v - 1];

  std::vector<VertexId> targets(edges.size());
  std::vector<float> weights;
  if (opts.keep_weights) weights.resize(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    targets[i] = edges[i].dst;
    if (opts.keep_weights) weights[i] = edges[i].weight;
  }
  return CsrGraph(std::move(offsets), std::move(targets), std::move(weights));
}

}  // namespace fw::graph
