#include "graph/csr.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"

namespace fw::graph {

CsrGraph::CsrGraph(std::vector<EdgeId> offsets, std::vector<VertexId> edges,
                   std::vector<float> weights)
    : offsets_(std::move(offsets)), edges_(std::move(edges)), weights_(std::move(weights)) {
  if (offsets_.empty()) {
    throw std::invalid_argument("CsrGraph: offsets must have at least one entry");
  }
  if (offsets_.back() != edges_.size()) {
    throw std::invalid_argument("CsrGraph: offsets.back() != edges.size()");
  }
  if (!weights_.empty() && weights_.size() != edges_.size()) {
    throw std::invalid_argument("CsrGraph: weights must be empty or match edges");
  }
}

void CsrGraph::set_labels(std::vector<std::uint8_t> labels) {
  if (labels.size() != num_vertices()) {
    throw std::invalid_argument("CsrGraph: labels must match num_vertices");
  }
  labels_ = std::move(labels);
}

void CsrGraph::assign_hashed_labels(std::uint8_t num_labels, std::uint64_t seed) {
  if (num_labels == 0) {
    throw std::invalid_argument("CsrGraph: need at least one label class");
  }
  std::vector<std::uint8_t> labels(num_vertices());
  for (VertexId v = 0; v < labels.size(); ++v) {
    // One SplitMix64 step per vertex: position-independent, so the labeling
    // of a vertex never depends on graph size or traversal order.
    SplitMix64 h(seed ^ (v * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull));
    labels[v] = static_cast<std::uint8_t>(h.next() % num_labels);
  }
  labels_ = std::move(labels);
}

std::vector<EdgeId> CsrGraph::compute_in_degrees() const {
  std::vector<EdgeId> in(num_vertices(), 0);
  for (VertexId dst : edges_) {
    if (dst < in.size()) ++in[dst];
  }
  return in;
}

std::uint64_t CsrGraph::csr_size_bytes() const {
  const std::uint64_t id = id_bytes();
  // Offsets need one more byte class than IDs when E > 4B, but we keep the
  // simple convention the paper's Table IV implies: offsets at 8 bytes for
  // 8-byte-ID graphs, else 4 (plus 8-byte offsets whenever E overflows).
  const std::uint64_t off = (num_edges() > 0xFFFFFFFFull) ? 8 : id;
  std::uint64_t size = (num_vertices() + 1) * off + num_edges() * id;
  if (weighted()) size += num_edges() * sizeof(float);
  return size;
}

std::uint64_t CsrGraph::text_size_bytes() const {
  // "src dst\n" per edge with average decimal width of a vertex ID.
  const double digits =
      num_vertices() <= 1 ? 1.0 : std::ceil(std::log10(static_cast<double>(num_vertices())));
  const double per_edge = 2.0 * digits + 2.0;  // separator + newline
  return static_cast<std::uint64_t>(per_edge * static_cast<double>(num_edges()));
}

std::string CsrGraph::validate() const {
  if (offsets_.empty()) return "offsets empty";
  if (offsets_.front() != 0) return "offsets[0] != 0";
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    if (offsets_[i] < offsets_[i - 1]) return "offsets not monotone at " + std::to_string(i);
  }
  if (offsets_.back() != edges_.size()) return "offsets.back() != edges.size()";
  const VertexId n = num_vertices();
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i] >= n) return "edge target out of range at " + std::to_string(i);
  }
  if (!labels_.empty() && labels_.size() != n) return "labels size mismatch";
  if (!weights_.empty()) {
    if (weights_.size() != edges_.size()) return "weights size mismatch";
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      if (!(weights_[i] > 0.0f)) return "non-positive weight at " + std::to_string(i);
    }
  }
  return {};
}

}  // namespace fw::graph
