// Structural statistics used by Table IV and the dataset sanity tests.
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "graph/csr.hpp"

namespace fw::graph {

struct GraphStats {
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;
  std::uint64_t csr_size_bytes = 0;
  std::uint64_t text_size_bytes = 0;
  double avg_out_degree = 0.0;
  EdgeId max_out_degree = 0;
  EdgeId max_in_degree = 0;
  VertexId zero_out_degree_vertices = 0;
  /// Fraction of all edges owned by the top 1% of vertices by out-degree —
  /// the skew measure behind the hot-subgraph optimization.
  double top1pct_edge_share = 0.0;
};

GraphStats compute_stats(const CsrGraph& graph);

}  // namespace fw::graph
