#include "graph/io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/builder.hpp"

namespace fw::graph {
namespace {

constexpr char kMagic[8] = {'F', 'W', 'G', 'R', 'A', 'P', 'H', '1'};

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error("graph binary: truncated stream");
  return value;
}

template <typename T>
void write_vec(std::ostream& os, const std::vector<T>& v) {
  write_pod<std::uint64_t>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& is) {
  const auto n = read_pod<std::uint64_t>(is);
  std::vector<T> v(n);
  is.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n * sizeof(T)));
  if (!is) throw std::runtime_error("graph binary: truncated array");
  return v;
}

}  // namespace

void save_binary(const CsrGraph& graph, std::ostream& os) {
  os.write(kMagic, sizeof(kMagic));
  write_vec(os, graph.offsets());
  write_vec(os, graph.edges());
  write_vec(os, graph.weights());
  if (!os) throw std::runtime_error("graph binary: write failed");
}

CsrGraph load_binary(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("graph binary: bad magic");
  }
  auto offsets = read_vec<EdgeId>(is);
  auto edges = read_vec<VertexId>(is);
  auto weights = read_vec<float>(is);
  return CsrGraph(std::move(offsets), std::move(edges), std::move(weights));
}

void save_binary_file(const CsrGraph& graph, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  save_binary(graph, os);
}

CsrGraph load_binary_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return load_binary(is);
}

void save_edge_list(const CsrGraph& graph, std::ostream& os) {
  os << "# vertices " << graph.num_vertices() << " edges " << graph.num_edges() << '\n';
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto nbrs = graph.neighbors(v);
    if (graph.weighted()) {
      const auto w = graph.edge_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        os << v << ' ' << nbrs[i] << ' ' << w[i] << '\n';
      }
    } else {
      for (VertexId dst : nbrs) os << v << ' ' << dst << '\n';
    }
  }
}

CsrGraph load_edge_list(std::istream& is) {
  std::vector<Edge> edges;
  VertexId max_vertex = 0;
  bool weighted = false;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    Edge e;
    if (!(ls >> e.src >> e.dst)) {
      throw std::runtime_error("edge list: malformed line: " + line);
    }
    if (ls >> e.weight) weighted = true;
    max_vertex = std::max({max_vertex, e.src, e.dst});
    edges.push_back(e);
  }
  GraphBuilder builder(edges.empty() ? 0 : max_vertex + 1);
  builder.add_edges(edges);
  BuildOptions opts;
  opts.keep_weights = weighted;
  return std::move(builder).build(opts);
}

}  // namespace fw::graph
