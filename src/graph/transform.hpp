// Graph transformations: reversal, symmetrization, relabeling.
//
// Relabeling matters to FlashWalker specifically: subgraphs are contiguous
// vertex-ID ranges, so a labeling that puts connected vertices near each
// other (BFS / degree order) increases the chance a hop stays inside the
// loaded subgraph — fewer roving walks, less channel traffic. The
// `ablation_reordering` bench measures this.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace fw::graph {

/// Reverse every edge (in-edges become out-edges).
CsrGraph reverse(const CsrGraph& g);

/// Make the graph symmetric (add missing reverse edges, deduplicated).
CsrGraph symmetrize(const CsrGraph& g);

/// Apply a vertex relabeling: `new_id[v]` is v's ID in the result. Must be
/// a permutation of [0, num_vertices).
CsrGraph relabel(const CsrGraph& g, const std::vector<VertexId>& new_id);

/// BFS ordering from the highest-out-degree vertex (unreached vertices are
/// appended in ID order). Returns the new_id permutation for relabel().
std::vector<VertexId> bfs_order(const CsrGraph& g);

/// Descending-out-degree ordering (hubs first — clusters the hot vertices
/// into few subgraphs).
std::vector<VertexId> degree_order(const CsrGraph& g);

/// Random permutation (the locality-destroying control).
std::vector<VertexId> random_order(const CsrGraph& g, std::uint64_t seed);

/// Fraction of edges whose endpoints fall in the same `span`-sized ID range
/// — a cheap proxy for how often a hop stays inside a subgraph.
double edge_locality(const CsrGraph& g, VertexId span);

}  // namespace fw::graph
