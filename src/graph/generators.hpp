// Synthetic graph generators.
//
// The paper's R2B/R8B graphs are PaRMAT R-MAT graphs; we implement the same
// recursive-matrix generator. Real graphs (Twitter / Friendster / ClueWeb)
// are replaced by scaled synthetics that preserve the structural properties
// the paper's evaluation leans on (see DESIGN.md §3): power-law degrees for
// hot subgraphs & dense vertices, and ClueWeb's high |V|/|E| sparsity.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "graph/csr.hpp"

namespace fw::graph {

struct RmatParams {
  VertexId num_vertices = 1 << 16;  ///< rounded up to a power of two
  EdgeId num_edges = 1 << 20;
  double a = 0.57, b = 0.19, c = 0.19;  ///< d = 1 - a - b - c (Graph500 defaults)
  double noise = 0.05;                  ///< per-level probability perturbation
  bool weighted = false;
  std::uint64_t seed = 1;
};

/// Recursive-matrix (R-MAT) generator à la PaRMAT/Graph500.
CsrGraph generate_rmat(const RmatParams& params);

struct ErdosRenyiParams {
  VertexId num_vertices = 1 << 14;
  EdgeId num_edges = 1 << 18;
  bool weighted = false;
  std::uint64_t seed = 1;
};

/// Uniform random (Erdős–Rényi G(n, m)) generator.
CsrGraph generate_erdos_renyi(const ErdosRenyiParams& params);

struct ZipfParams {
  VertexId num_vertices = 1 << 16;
  EdgeId num_edges = 1 << 20;
  double exponent = 1.8;      ///< out-degree Zipf exponent
  double hub_fraction = 0.0;  ///< extra mass routed to the first vertices
  bool weighted = false;
  std::uint64_t seed = 1;
};

/// Power-law out-degree graph with Zipf-distributed destination popularity;
/// produces the skew (a few very dense vertices) that exercises dense-vertex
/// splitting and pre-walking.
CsrGraph generate_zipf(const ZipfParams& params);

/// Zipf destination sampler (shared with tests): returns a vertex with
/// probability proportional to 1 / (rank+1)^exponent via rejection-free
/// inverse-CDF over a precomputed table.
class ZipfSampler {
 public:
  ZipfSampler(VertexId n, double exponent);
  VertexId sample(Xoshiro256& rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace fw::graph
