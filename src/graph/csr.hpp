// Compressed Sparse Row graph — the storage format FlashWalker keeps in
// flash (paper §III.B: "A subgraph is stored in CSR format, which contains
// an offsets array and an edges array").
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace fw::graph {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Takes ownership of pre-built CSR arrays. `offsets.size()` must be
  /// `num_vertices + 1`; `weights` is empty (unweighted) or `edges.size()`.
  CsrGraph(std::vector<EdgeId> offsets, std::vector<VertexId> edges,
           std::vector<float> weights = {});

  [[nodiscard]] VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  [[nodiscard]] EdgeId num_edges() const {
    return offsets_.empty() ? 0 : offsets_.back();
  }
  [[nodiscard]] bool weighted() const { return !weights_.empty(); }

  [[nodiscard]] EdgeId out_degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    return {edges_.data() + offsets_[v], static_cast<std::size_t>(out_degree(v))};
  }
  [[nodiscard]] std::span<const float> edge_weights(VertexId v) const {
    return {weights_.data() + offsets_[v], static_cast<std::size_t>(out_degree(v))};
  }

  [[nodiscard]] const std::vector<EdgeId>& offsets() const { return offsets_; }
  [[nodiscard]] const std::vector<VertexId>& edges() const { return edges_; }
  [[nodiscard]] const std::vector<float>& weights() const { return weights_; }

  /// Optional per-vertex labels (heterogeneous graphs; metapath walks).
  [[nodiscard]] bool labeled() const { return !labels_.empty(); }
  [[nodiscard]] std::uint8_t label(VertexId v) const { return labels_[v]; }
  [[nodiscard]] const std::vector<std::uint8_t>& labels() const { return labels_; }

  /// Attach per-vertex labels; size must equal num_vertices().
  void set_labels(std::vector<std::uint8_t> labels);

  /// Deterministic synthetic labeling: label(v) = hash(seed, v) % num_labels.
  /// Keeps generated datasets reproducible across runs and platforms.
  void assign_hashed_labels(std::uint8_t num_labels, std::uint64_t seed);

  /// In-degree of every vertex (one O(E) pass; used to rank hot subgraphs).
  [[nodiscard]] std::vector<EdgeId> compute_in_degrees() const;

  /// Bytes per vertex ID when stored: 4 unless IDs exceed 32 bits
  /// (ClueWeb-class graphs; paper §IV.A).
  [[nodiscard]] std::size_t id_bytes() const {
    return num_vertices() > 0xFFFFFFFFull ? 8 : 4;
  }

  /// On-flash CSR footprint: offsets + edges (+ weights if any).
  [[nodiscard]] std::uint64_t csr_size_bytes() const;

  /// Estimated size as a text edge list (for Table IV's "Text Size" column).
  [[nodiscard]] std::uint64_t text_size_bytes() const;

  /// Structural validation; returns an empty string when well formed,
  /// otherwise a description of the first violation.
  [[nodiscard]] std::string validate() const;

 private:
  std::vector<EdgeId> offsets_;        // num_vertices + 1, non-decreasing
  std::vector<VertexId> edges_;        // neighbor lists, concatenated
  std::vector<float> weights_;         // empty or parallel to edges_
  std::vector<std::uint8_t> labels_;   // empty or num_vertices
};

}  // namespace fw::graph
