#include "graph/generators.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "graph/builder.hpp"

namespace fw::graph {
namespace {

VertexId round_up_pow2(VertexId v) {
  return v <= 1 ? 1 : std::bit_ceil(v);
}

float random_weight(Xoshiro256& rng) {
  // Weights in (0, 1]; strictly positive so ITS cumulative sums are monotone.
  return static_cast<float>(1.0 - rng.uniform() * (1.0 - 1e-6));
}

}  // namespace

CsrGraph generate_rmat(const RmatParams& params) {
  const VertexId n = round_up_pow2(params.num_vertices);
  const int levels = std::countr_zero(n);
  Xoshiro256 rng(params.seed);
  GraphBuilder builder(n);

  const double d = 1.0 - params.a - params.b - params.c;
  for (EdgeId e = 0; e < params.num_edges; ++e) {
    VertexId src = 0, dst = 0;
    for (int level = 0; level < levels; ++level) {
      // Perturb quadrant probabilities per level (PaRMAT's noise option)
      // to avoid the exact self-similarity artifacts of vanilla R-MAT.
      const double na = params.a * (1.0 + params.noise * (rng.uniform() - 0.5));
      const double nb = params.b * (1.0 + params.noise * (rng.uniform() - 0.5));
      const double nc = params.c * (1.0 + params.noise * (rng.uniform() - 0.5));
      const double nd = d * (1.0 + params.noise * (rng.uniform() - 0.5));
      const double total = na + nb + nc + nd;
      const double r = rng.uniform() * total;
      src <<= 1;
      dst <<= 1;
      if (r < na) {
        // top-left: no bits set
      } else if (r < na + nb) {
        dst |= 1;
      } else if (r < na + nb + nc) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    builder.add_edge(src, dst, params.weighted ? random_weight(rng) : 1.0f);
  }

  BuildOptions opts;
  opts.keep_weights = params.weighted;
  return std::move(builder).build(opts);
}

CsrGraph generate_erdos_renyi(const ErdosRenyiParams& params) {
  Xoshiro256 rng(params.seed);
  GraphBuilder builder(params.num_vertices);
  for (EdgeId e = 0; e < params.num_edges; ++e) {
    const VertexId src = rng.bounded(params.num_vertices);
    const VertexId dst = rng.bounded(params.num_vertices);
    builder.add_edge(src, dst, params.weighted ? random_weight(rng) : 1.0f);
  }
  BuildOptions opts;
  opts.keep_weights = params.weighted;
  return std::move(builder).build(opts);
}

ZipfSampler::ZipfSampler(VertexId n, double exponent) {
  cdf_.resize(n);
  double sum = 0.0;
  for (VertexId i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = sum;
  }
  for (double& x : cdf_) x /= sum;
}

VertexId ZipfSampler::sample(Xoshiro256& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<VertexId>(std::min<std::ptrdiff_t>(
      it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size() - 1)));
}

CsrGraph generate_zipf(const ZipfParams& params) {
  Xoshiro256 rng(params.seed);
  const VertexId n = params.num_vertices;

  // Out-degrees: Zipf over a random permutation of vertices so hubs are not
  // clustered at low IDs (the partitioner must find them, not assume them).
  std::vector<double> mass(n);
  double total_mass = 0.0;
  for (VertexId i = 0; i < n; ++i) {
    mass[i] = 1.0 / std::pow(static_cast<double>(i + 1), params.exponent);
    total_mass += mass[i];
  }
  std::vector<VertexId> perm(n);
  for (VertexId i = 0; i < n; ++i) perm[i] = i;
  for (VertexId i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.bounded(i)]);
  }

  std::vector<EdgeId> out_degree(n, 0);
  EdgeId assigned = 0;
  for (VertexId rank = 0; rank < n; ++rank) {
    const auto deg = static_cast<EdgeId>(
        std::floor(mass[rank] / total_mass * static_cast<double>(params.num_edges)));
    out_degree[perm[rank]] = deg;
    assigned += deg;
  }
  // Distribute rounding remainder uniformly.
  while (assigned < params.num_edges) {
    ++out_degree[rng.bounded(n)];
    ++assigned;
  }

  ZipfSampler dst_sampler(n, params.exponent * 0.75);  // milder in-degree skew
  GraphBuilder builder(n);
  for (VertexId v = 0; v < n; ++v) {
    for (EdgeId e = 0; e < out_degree[v]; ++e) {
      VertexId dst = perm[dst_sampler.sample(rng)];
      if (params.hub_fraction > 0.0 && rng.chance(params.hub_fraction)) {
        dst = perm[rng.bounded(std::max<VertexId>(1, n / 1000))];
      }
      builder.add_edge(v, dst, params.weighted ? random_weight(rng) : 1.0f);
    }
  }
  BuildOptions opts;
  opts.keep_weights = params.weighted;
  return std::move(builder).build(opts);
}

}  // namespace fw::graph
