#include "graph/transform.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"
#include "graph/builder.hpp"

namespace fw::graph {

CsrGraph reverse(const CsrGraph& g) {
  GraphBuilder b(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.weighted()) {
      const auto nbrs = g.neighbors(v);
      const auto w = g.edge_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) b.add_edge(nbrs[i], v, w[i]);
    } else {
      for (VertexId u : g.neighbors(v)) b.add_edge(u, v);
    }
  }
  BuildOptions opts;
  opts.keep_weights = g.weighted();
  return std::move(b).build(opts);
}

CsrGraph symmetrize(const CsrGraph& g) {
  GraphBuilder b(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) b.add_edge(v, u);
  }
  BuildOptions opts;
  opts.symmetrize = true;
  opts.deduplicate = true;
  return std::move(b).build(opts);
}

CsrGraph relabel(const CsrGraph& g, const std::vector<VertexId>& new_id) {
  if (new_id.size() != g.num_vertices()) {
    throw std::invalid_argument("relabel: permutation size mismatch");
  }
  GraphBuilder b(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.weighted()) {
      const auto nbrs = g.neighbors(v);
      const auto w = g.edge_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        b.add_edge(new_id[v], new_id[nbrs[i]], w[i]);
      }
    } else {
      for (VertexId u : g.neighbors(v)) b.add_edge(new_id[v], new_id[u]);
    }
  }
  BuildOptions opts;
  opts.keep_weights = g.weighted();
  return std::move(b).build(opts);
}

std::vector<VertexId> bfs_order(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> new_id(n, kInvalidVertex);
  VertexId next = 0;

  VertexId root = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (g.out_degree(v) > g.out_degree(root)) root = v;
  }
  std::deque<VertexId> frontier;
  auto visit = [&](VertexId v) {
    if (new_id[v] == kInvalidVertex) {
      new_id[v] = next++;
      frontier.push_back(v);
    }
  };
  visit(root);
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop_front();
    for (VertexId u : g.neighbors(v)) visit(u);
  }
  for (VertexId v = 0; v < n; ++v) {
    if (new_id[v] == kInvalidVertex) new_id[v] = next++;
  }
  return new_id;
}

std::vector<VertexId> degree_order(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), 0u);
  std::stable_sort(by_degree.begin(), by_degree.end(), [&](VertexId a, VertexId b) {
    return g.out_degree(a) > g.out_degree(b);
  });
  std::vector<VertexId> new_id(n);
  for (VertexId rank = 0; rank < n; ++rank) new_id[by_degree[rank]] = rank;
  return new_id;
}

std::vector<VertexId> random_order(const CsrGraph& g, std::uint64_t seed) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> new_id(n);
  std::iota(new_id.begin(), new_id.end(), 0u);
  Xoshiro256 rng(seed);
  for (VertexId i = n; i > 1; --i) {
    std::swap(new_id[i - 1], new_id[rng.bounded(i)]);
  }
  return new_id;
}

double edge_locality(const CsrGraph& g, VertexId span) {
  if (g.num_edges() == 0 || span == 0) return 0.0;
  std::uint64_t local = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) {
      local += (v / span) == (u / span);
    }
  }
  return static_cast<double>(local) / static_cast<double>(g.num_edges());
}

}  // namespace fw::graph
