// Scaled stand-ins for the paper's Table IV datasets.
//
// The real Twitter / Friendster / ClueWeb graphs are 23–138 GB and cannot be
// shipped or simulated here; R2B/R8B were synthetic R-MAT graphs already.
// Each stand-in preserves what the evaluation depends on (DESIGN.md §3):
//   * relative size ordering  TT < R2B < FS < R8B < CW,
//   * power-law skew (TT extreme — drives the Fig 9 HS discussion),
//   * ClueWeb's |V| ≈ |E| sparsity that produces the straggler tail (Fig 8d).
#pragma once

#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace fw::graph {

enum class DatasetId { TT, FS, CW, R2B, R8B };

enum class Scale {
  kTest,   ///< tiny graphs for unit/integration tests (sub-second)
  kSmall,  ///< quick bench runs
  kBench,  ///< default benchmark scale (seconds per simulation)
};

struct PaperStats {
  std::string vertices;  ///< as printed in Table IV, e.g. "41.6M"
  std::string edges;
  std::string csr_size;
  std::string text_size;
};

struct DatasetInfo {
  DatasetId id;
  std::string name;    ///< e.g. "Twitter"
  std::string abbrev;  ///< e.g. "TT"
  PaperStats paper;    ///< the numbers Table IV reports for the real graph
};

/// All five Table IV datasets, in paper order.
const std::vector<DatasetInfo>& all_datasets();

const DatasetInfo& dataset_info(DatasetId id);

/// Deterministically generate the scaled stand-in graph.
CsrGraph make_dataset(DatasetId id, Scale scale = Scale::kBench);

/// Walk count matching the paper's "number of walks" x-axis, scaled: the
/// paper uses 10^9 for CW and 4x10^8 elsewhere at the top end.
std::uint64_t default_walk_count(DatasetId id, Scale scale);

}  // namespace fw::graph
