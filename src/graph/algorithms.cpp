#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

namespace fw::graph {

std::vector<std::uint32_t> bfs_levels(const CsrGraph& g, VertexId source) {
  std::vector<std::uint32_t> level(g.num_vertices(), ~0u);
  if (source >= g.num_vertices()) return level;
  std::deque<VertexId> frontier{source};
  level[source] = 0;
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop_front();
    for (VertexId u : g.neighbors(v)) {
      if (level[u] == ~0u) {
        level[u] = level[v] + 1;
        frontier.push_back(u);
      }
    }
  }
  return level;
}

namespace {

/// Union-find with path halving.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

std::vector<std::uint32_t> weakly_connected_components(const CsrGraph& g,
                                                       std::uint32_t* num_components) {
  DisjointSets dsu(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) {
      dsu.unite(static_cast<std::uint32_t>(v), static_cast<std::uint32_t>(u));
    }
  }
  std::vector<std::uint32_t> comp(g.num_vertices());
  std::vector<std::uint32_t> remap(g.num_vertices(), ~0u);
  std::uint32_t next = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::uint32_t root = dsu.find(static_cast<std::uint32_t>(v));
    if (remap[root] == ~0u) remap[root] = next++;
    comp[v] = remap[root];
  }
  if (num_components != nullptr) *num_components = next;
  return comp;
}

std::uint64_t largest_wcc_size(const CsrGraph& g) {
  std::uint32_t n = 0;
  const auto comp = weakly_connected_components(g, &n);
  std::vector<std::uint64_t> sizes(n, 0);
  for (const auto c : comp) ++sizes[c];
  return sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
}

std::vector<double> pagerank(const CsrGraph& g, double damping,
                             std::uint32_t iterations) {
  const VertexId n = g.num_vertices();
  if (n == 0) return {};
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  for (std::uint32_t it = 0; it < iterations; ++it) {
    double dangling = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (VertexId v = 0; v < n; ++v) {
      const EdgeId deg = g.out_degree(v);
      if (deg == 0) {
        dangling += rank[v];
        continue;
      }
      const double share = rank[v] / static_cast<double>(deg);
      for (VertexId u : g.neighbors(v)) next[u] += share;
    }
    const double base =
        (1.0 - damping) / static_cast<double>(n) +
        damping * dangling / static_cast<double>(n);
    for (VertexId v = 0; v < n; ++v) next[v] = base + damping * next[v];
    rank.swap(next);
  }
  return rank;
}

std::uint64_t count_triangles(const CsrGraph& g, std::size_t sample) {
  // Each directed wedge v -> u with intersection |N(v) ∩ N(u)| counts the
  // triangles through edge (v, u); the sum triple-counts undirected
  // triangles only for symmetric graphs, so we report the raw closed-wedge
  // count (monotone in triangle density, which is what callers compare).
  std::uint64_t closed = 0;
  const VertexId n = g.num_vertices();
  const VertexId limit = sample == 0 ? n : std::min<VertexId>(n, sample);
  for (VertexId v = 0; v < limit; ++v) {
    const auto nv = g.neighbors(v);
    for (VertexId u : nv) {
      if (u == v) continue;
      const auto nu = g.neighbors(u);
      // sorted intersection
      std::size_t i = 0, j = 0;
      while (i < nv.size() && j < nu.size()) {
        if (nv[i] < nu[j]) {
          ++i;
        } else if (nv[i] > nu[j]) {
          ++j;
        } else {
          ++closed;
          ++i;
          ++j;
        }
      }
    }
  }
  return closed;
}

}  // namespace fw::graph
