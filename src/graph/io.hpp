// Graph (de)serialization: a compact binary CSR container plus text edge
// lists (the interchange format GraphWalker and friends consume).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace fw::graph {

/// Binary container: magic, version, counts, then raw arrays.
void save_binary(const CsrGraph& graph, std::ostream& os);
CsrGraph load_binary(std::istream& is);

void save_binary_file(const CsrGraph& graph, const std::string& path);
CsrGraph load_binary_file(const std::string& path);

/// "src dst [weight]\n" per line; '#'-prefixed comment lines are skipped.
void save_edge_list(const CsrGraph& graph, std::ostream& os);
CsrGraph load_edge_list(std::istream& is);

}  // namespace fw::graph
