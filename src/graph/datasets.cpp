#include "graph/datasets.hpp"

#include <stdexcept>

#include "graph/generators.hpp"

namespace fw::graph {
namespace {

struct ScaleFactors {
  VertexId v_shift;  ///< vertices = base << v_shift ... we store explicit sizes instead
};

struct GenPlan {
  VertexId vertices;
  EdgeId edges;
};

// Explicit per-scale sizes. Ratios follow Table IV: CW has ~0.6 edges per
// vertex *surplus* (|V| 4.78B vs |E| 7.94B, avg degree 1.66) while the
// social graphs average 35–55.
GenPlan plan(DatasetId id, Scale scale) {
  switch (scale) {
    case Scale::kTest:
      switch (id) {
        case DatasetId::TT:  return {1u << 10, 16u << 10};
        case DatasetId::FS:  return {1u << 11, 24u << 10};
        case DatasetId::CW:  return {1u << 15, 48u << 10};
        case DatasetId::R2B: return {1u << 10, 20u << 10};
        case DatasetId::R8B: return {1u << 12, 48u << 10};
      }
      break;
    case Scale::kSmall:
      switch (id) {
        case DatasetId::TT:  return {1u << 13, 256u << 10};
        case DatasetId::FS:  return {1u << 15, 512u << 10};
        case DatasetId::CW:  return {1u << 18, 448u << 10};
        case DatasetId::R2B: return {1u << 14, 384u << 10};
        case DatasetId::R8B: return {1u << 16, 1u << 20};
      }
      break;
    case Scale::kBench:
      switch (id) {
        case DatasetId::TT:  return {1u << 15, 1u << 20};
        case DatasetId::FS:  return {1u << 17, 2u << 20};
        case DatasetId::CW:  return {1u << 22, 7u << 20};
        case DatasetId::R2B: return {1u << 16, 1536u << 10};
        case DatasetId::R8B: return {1u << 18, 4u << 20};
      }
      break;
  }
  throw std::invalid_argument("unknown dataset/scale");
}

}  // namespace

const std::vector<DatasetInfo>& all_datasets() {
  static const std::vector<DatasetInfo> kDatasets = {
      {DatasetId::TT, "Twitter", "TT", {"41.6M", "1.46B", "5.8GB", "23GB"}},
      {DatasetId::FS, "Friendster", "FS", {"65.6M", "3.61B", "14GB", "59GB"}},
      {DatasetId::CW, "ClueWeb", "CW", {"4.78B", "7.94B", "95GB", "138GB"}},
      {DatasetId::R2B, "RMAT2B", "R2B", {"62.5M", "2B", "8GB", "32GB"}},
      {DatasetId::R8B, "RMAT8B", "R8B", {"250M", "8B", "32GB", "137GB"}},
  };
  return kDatasets;
}

const DatasetInfo& dataset_info(DatasetId id) {
  for (const auto& info : all_datasets()) {
    if (info.id == id) return info;
  }
  throw std::invalid_argument("unknown dataset id");
}

CsrGraph make_dataset(DatasetId id, Scale scale) {
  const GenPlan p = plan(id, scale);
  switch (id) {
    case DatasetId::TT: {
      // Twitter: extreme celebrity skew — the paper calls out a vertex with
      // 1.2M out-edges spanning 19 graph blocks, and Fig 9 attributes TT's
      // behaviour to this skew. Zipf with a hot-hub boost reproduces it.
      ZipfParams zp;
      zp.num_vertices = p.vertices;
      zp.num_edges = p.edges;
      zp.exponent = 1.35;
      zp.hub_fraction = 0.10;
      zp.seed = 11;
      return generate_zipf(zp);
    }
    case DatasetId::FS: {
      // Friendster: heavy but less extreme skew; R-MAT with Graph500 params.
      RmatParams rp;
      rp.num_vertices = p.vertices;
      rp.num_edges = p.edges;
      rp.seed = 22;
      return generate_rmat(rp);
    }
    case DatasetId::CW: {
      // ClueWeb: enormous sparse web graph, avg degree ~1.7, mild skew.
      RmatParams rp;
      rp.num_vertices = p.vertices;
      rp.num_edges = p.edges;
      rp.a = 0.50;
      rp.b = 0.22;
      rp.c = 0.22;
      rp.seed = 33;
      return generate_rmat(rp);
    }
    case DatasetId::R2B: {
      RmatParams rp;
      rp.num_vertices = p.vertices;
      rp.num_edges = p.edges;
      rp.seed = 44;
      return generate_rmat(rp);
    }
    case DatasetId::R8B: {
      RmatParams rp;
      rp.num_vertices = p.vertices;
      rp.num_edges = p.edges;
      rp.seed = 55;
      return generate_rmat(rp);
    }
  }
  throw std::invalid_argument("unknown dataset id");
}

std::uint64_t default_walk_count(DatasetId id, Scale scale) {
  // Paper top end: 10^9 walks for CW, 4x10^8 elsewhere. Scaled by the same
  // factor as the graphs (~1/1000 at bench scale).
  switch (scale) {
    case Scale::kTest:
      return 2000;
    case Scale::kSmall:
      return id == DatasetId::CW ? 100'000 : 40'000;
    case Scale::kBench:
      return id == DatasetId::CW ? 1'000'000 : 400'000;
  }
  return 10'000;
}

}  // namespace fw::graph
