#include "graph/graph_stats.hpp"

#include <algorithm>
#include <vector>

namespace fw::graph {

GraphStats compute_stats(const CsrGraph& graph) {
  GraphStats s;
  s.num_vertices = graph.num_vertices();
  s.num_edges = graph.num_edges();
  s.csr_size_bytes = graph.csr_size_bytes();
  s.text_size_bytes = graph.text_size_bytes();
  if (s.num_vertices == 0) return s;

  std::vector<EdgeId> out(s.num_vertices);
  for (VertexId v = 0; v < s.num_vertices; ++v) {
    out[v] = graph.out_degree(v);
    if (out[v] == 0) ++s.zero_out_degree_vertices;
    s.max_out_degree = std::max(s.max_out_degree, out[v]);
  }
  s.avg_out_degree =
      static_cast<double>(s.num_edges) / static_cast<double>(s.num_vertices);

  const auto in = graph.compute_in_degrees();
  s.max_in_degree = in.empty() ? 0 : *std::max_element(in.begin(), in.end());

  std::sort(out.begin(), out.end(), std::greater<>());
  const std::size_t top = std::max<std::size_t>(1, out.size() / 100);
  EdgeId top_edges = 0;
  for (std::size_t i = 0; i < top; ++i) top_edges += out[i];
  s.top1pct_edge_share =
      s.num_edges == 0 ? 0.0
                       : static_cast<double>(top_edges) / static_cast<double>(s.num_edges);
  return s;
}

}  // namespace fw::graph
