// Edge-list → CSR construction.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "graph/csr.hpp"

namespace fw::graph {

struct Edge {
  VertexId src;
  VertexId dst;
  float weight = 1.0f;

  friend bool operator==(const Edge&, const Edge&) = default;
};

struct BuildOptions {
  bool deduplicate = false;       ///< drop parallel edges (keep first weight)
  bool drop_self_loops = false;   ///< drop (v, v)
  bool symmetrize = false;        ///< add reverse edge for every edge
  bool keep_weights = false;      ///< emit a weighted CsrGraph
};

class GraphBuilder {
 public:
  /// `num_vertices` fixes the ID space; edges referencing vertices outside
  /// it throw.
  explicit GraphBuilder(VertexId num_vertices) : num_vertices_(num_vertices) {}

  void add_edge(VertexId src, VertexId dst, float weight = 1.0f);
  void add_edges(const std::vector<Edge>& edges);

  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  /// Consumes the accumulated edges and produces a CSR graph with neighbor
  /// lists sorted by destination ID.
  CsrGraph build(const BuildOptions& opts = {}) &&;

 private:
  VertexId num_vertices_;
  std::vector<Edge> edges_;
};

}  // namespace fw::graph
