// Classic graph algorithms used for dataset validation, sampling-quality
// metrics, and the reordering ablation (BFS ordering).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace fw::graph {

/// BFS levels from `source` over out-edges; unreachable = ~0u.
std::vector<std::uint32_t> bfs_levels(const CsrGraph& g, VertexId source);

/// Weakly-connected components (treating edges as undirected).
/// Returns per-vertex component id (dense, 0-based) and sets
/// `num_components`.
std::vector<std::uint32_t> weakly_connected_components(const CsrGraph& g,
                                                       std::uint32_t* num_components);

/// Size of the largest weakly-connected component.
std::uint64_t largest_wcc_size(const CsrGraph& g);

/// Power-iteration PageRank (dangling mass redistributed uniformly).
std::vector<double> pagerank(const CsrGraph& g, double damping = 0.85,
                             std::uint32_t iterations = 30);

/// Exact directed triangle count is expensive; this counts triangles in the
/// undirected sense via sorted-adjacency intersection, sampling `sample`
/// vertices (0 = all vertices).
std::uint64_t count_triangles(const CsrGraph& g, std::size_t sample = 0);

}  // namespace fw::graph
