#include "obs/counters.hpp"

#include <ostream>

namespace fw::obs {

Counter& CounterRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  auto [pos, inserted] =
      counters_.emplace(std::string(name), std::make_unique<Counter>());
  return *pos->second;
}

const Counter* CounterRegistry::find(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

std::vector<CounterSample> CounterRegistry::snapshot() const {
  std::vector<CounterSample> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) out.emplace_back(name, counter->value());
  return out;  // map iteration order is already sorted
}

void CounterRegistry::write_json(std::ostream& os) const { write_counters_json(os, snapshot()); }

namespace {

/// Longest shared dotted-segment prefix depth of two names.
std::size_t common_depth(std::string_view a, std::string_view b) {
  std::size_t depth = 0;
  std::size_t i = 0;
  const std::size_t n = std::min(a.size(), b.size());
  while (i < n && a[i] == b[i]) {
    if (a[i] == '.') ++depth;
    ++i;
  }
  // A full-prefix match counts only if it ends exactly on a segment boundary.
  if (i == a.size() && (i == b.size() || b[i] == '.')) ++depth;
  else if (i == b.size() && a[i] == '.') ++depth;
  return depth;
}

std::vector<std::string_view> split_segments(std::string_view name) {
  std::vector<std::string_view> segs;
  while (true) {
    const auto dot = name.find('.');
    if (dot == std::string_view::npos) {
      segs.push_back(name);
      return segs;
    }
    segs.push_back(name.substr(0, dot));
    name.remove_prefix(dot + 1);
  }
}

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void write_counters_json(std::ostream& os, const std::vector<CounterSample>& sorted) {
  // Sorted names make nesting a stack walk: compare each name's segment path
  // with its predecessor, close the objects that ended, open the new ones.
  os << '{';
  std::vector<std::string_view> open;  // currently open object path
  bool first = true;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const auto& [name, value] = sorted[i];
    auto segs = split_segments(name);
    // A name that is also a prefix of the next name gets an object of its
    // own; its value goes under the reserved "value" key inside it.
    const bool is_prefix =
        i + 1 < sorted.size() &&
        common_depth(name, sorted[i + 1].first) == segs.size();
    std::size_t shared = 0;
    while (shared < open.size() && shared < segs.size() - (is_prefix ? 0 : 1) &&
           open[shared] == segs[shared]) {
      ++shared;
    }
    for (std::size_t k = open.size(); k > shared; --k) os << '}';
    if (open.size() > shared) first = false;
    open.resize(shared);
    if (!first) os << ',';
    first = false;
    for (std::size_t k = shared; k + 1 < segs.size(); ++k) {
      write_escaped(os, segs[k]);
      os << ":{";
      open.push_back(segs[k]);
    }
    if (is_prefix) {
      write_escaped(os, segs.back());
      os << ":{\"value\":" << value;
      open.push_back(segs.back());
    } else {
      write_escaped(os, segs.back());
      os << ':' << value;
    }
  }
  for (std::size_t k = open.size(); k > 0; --k) os << '}';
  os << '}';
}

}  // namespace fw::obs
