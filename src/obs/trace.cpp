#include "obs/trace.hpp"

#include <ostream>

namespace fw::obs {

namespace {

/// Chrome's `ts`/`dur` unit is microseconds; keep nanosecond precision by
/// printing the sub-microsecond remainder as three fractional digits.
void write_us(std::ostream& os, Tick ns) {
  os << (ns / 1000);
  const auto frac = static_cast<unsigned>(ns % 1000);
  if (frac != 0) {
    os << '.' << static_cast<char>('0' + frac / 100)
       << static_cast<char>('0' + frac / 10 % 10) << static_cast<char>('0' + frac % 10);
  }
}

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

std::uint32_t TraceRecorder::pid_of(const std::string& process) {
  for (const auto& [name, pid] : pids_) {
    if (name == process) return pid;
  }
  const auto pid = static_cast<std::uint32_t>(pids_.size() + 1);
  pids_.emplace_back(process, pid);
  return pid;
}

std::uint32_t TraceRecorder::register_track(const std::string& process,
                                            const std::string& thread) {
  const auto track = static_cast<std::uint32_t>(tracks_.size());
  tracks_.push_back(Track{pid_of(process), track + 1, process, thread});
  return track;
}

void TraceRecorder::complete(std::uint32_t track, const char* name, Tick start, Tick end,
                             std::uint64_t arg0, const char* arg0_name) {
  events_.push_back(Event{Kind::kComplete, track, name, start, end, arg0, arg0_name});
}

void TraceRecorder::instant(std::uint32_t track, const char* name, Tick at) {
  events_.push_back(Event{Kind::kInstant, track, name, at, at, 0, nullptr});
}

void TraceRecorder::counter(const char* name, Tick at, std::uint64_t value) {
  events_.push_back(Event{Kind::kCounter, 0, name, at, at, value, "value"});
}

void TraceRecorder::write_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ',';
    first = false;
  };
  // Metadata first: name every process and thread lane.
  for (const auto& [name, pid] : pids_) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << pid
       << ",\"name\":\"process_name\",\"args\":{\"name\":";
    write_escaped(os, name);
    os << "}}";
  }
  for (const auto& t : tracks_) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << t.pid << ",\"tid\":" << t.tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":";
    write_escaped(os, t.thread);
    os << "}}";
  }
  constexpr std::uint32_t kCounterPid = 0;  // pids_ start at 1
  bool counter_meta_done = false;
  for (const auto& e : events_) {
    if (e.kind != Kind::kCounter) continue;
    if (!counter_meta_done) {
      sep();
      os << "{\"ph\":\"M\",\"pid\":" << kCounterPid
         << ",\"name\":\"process_name\",\"args\":{\"name\":\"counters\"}}";
      counter_meta_done = true;
    }
    break;
  }
  for (const auto& e : events_) {
    sep();
    switch (e.kind) {
      case Kind::kComplete: {
        const auto& t = tracks_[e.track];
        os << "{\"ph\":\"X\",\"pid\":" << t.pid << ",\"tid\":" << t.tid << ",\"name\":";
        write_escaped(os, e.name);
        os << ",\"ts\":";
        write_us(os, e.start);
        os << ",\"dur\":";
        write_us(os, e.end - e.start);
        if (e.arg0_name != nullptr) {
          os << ",\"args\":{";
          write_escaped(os, e.arg0_name);
          os << ':' << e.arg0 << '}';
        }
        os << '}';
        break;
      }
      case Kind::kInstant: {
        const auto& t = tracks_[e.track];
        os << "{\"ph\":\"i\",\"pid\":" << t.pid << ",\"tid\":" << t.tid
           << ",\"s\":\"t\",\"name\":";
        write_escaped(os, e.name);
        os << ",\"ts\":";
        write_us(os, e.start);
        os << '}';
        break;
      }
      case Kind::kCounter: {
        os << "{\"ph\":\"C\",\"pid\":" << kCounterPid << ",\"name\":";
        write_escaped(os, e.name);
        os << ",\"ts\":";
        write_us(os, e.start);
        os << ",\"args\":{\"value\":" << e.arg0 << "}}";
        break;
      }
    }
  }
  os << "]}";
}

}  // namespace fw::obs
