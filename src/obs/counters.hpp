// Named, hierarchical counter registry — the export path for run metrics.
//
// Components register counters by dotted name ("chip.3.updates",
// "ftl.gc.page_moves") and keep the returned `Counter&` for hot-path
// increments (one pointer-chase, no lookup). The registry owns storage, so
// handles stay valid for its lifetime; `write_json` renders the dotted
// namespace as nested JSON objects, which is what `--metrics-out` emits.
//
// Naming convention (see docs/MODELING.md "Observability"):
//   <component>[.<instance>].<metric>
// e.g. chip.7.updates, channel.0.busy_ns, board.guider.busy_ns,
//      ftl.gc.page_moves, flash.read_bytes, dram.row_hits.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fw::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  void set(std::uint64_t value) { value_ = value; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// One (name, value) pair of a registry snapshot, sorted by name.
using CounterSample = std::pair<std::string, std::uint64_t>;

class CounterRegistry {
 public:
  /// Get-or-create the counter named `name`. The reference stays valid for
  /// the registry's lifetime.
  Counter& counter(std::string_view name);

  /// Lookup without creating; nullptr when absent.
  [[nodiscard]] const Counter* find(std::string_view name) const;

  [[nodiscard]] std::size_t size() const { return counters_.size(); }

  /// All counters as (name, value), sorted by name.
  [[nodiscard]] std::vector<CounterSample> snapshot() const;

  /// Nested-object JSON keyed by the dotted name segments. A name that is
  /// both a leaf and a prefix ("a" next to "a.b") emits its own value under
  /// the key "value" inside the shared object.
  void write_json(std::ostream& os) const;

 private:
  // std::map: stable addresses for handed-out references, sorted iteration.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
};

/// Render a sorted snapshot with the same nesting rules as
/// `CounterRegistry::write_json` (used when only a snapshot survives, e.g.
/// inside an `EngineResult`).
void write_counters_json(std::ostream& os, const std::vector<CounterSample>& sorted);

}  // namespace fw::obs
