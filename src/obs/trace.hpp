// Chrome trace_event recorder for the DES (open the output in Perfetto or
// chrome://tracing).
//
// The simulator's unit hierarchy maps onto the trace's process/thread grid:
// a *track* is one (process, thread) lane — e.g. process "chip", thread
// "chip.3" — registered once up front; spans and instants then reference the
// track by handle. Ticks are nanoseconds; the JSON emits microsecond
// timestamps (Chrome's unit) with nanosecond precision kept in the
// fractional digits.
//
// Cost model: recording appends one POD-ish event to a vector (names are
// `const char*` string literals by contract — no allocation per event);
// serialization happens once at `write_json`. Disabled tracing is a null
// `TraceRecorder*` at every call site, so hot paths pay one branch.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace fw::obs {

class TraceRecorder {
 public:
  /// Register a lane named `thread` under process `process`; processes are
  /// created on first use. Returns the track handle spans refer to.
  std::uint32_t register_track(const std::string& process, const std::string& thread);

  /// A completed span [start, end] on `track`. `name` must outlive the
  /// recorder (string literals). Zero-length spans are recorded; Perfetto
  /// renders them as instants.
  void complete(std::uint32_t track, const char* name, Tick start, Tick end,
                std::uint64_t arg0 = 0, const char* arg0_name = nullptr);

  /// An instant marker on `track` at `at`.
  void instant(std::uint32_t track, const char* name, Tick at);

  /// A counter sample: `name` series takes `value` at `at`. Counters live in
  /// their own "counters" process so they plot under the unit lanes.
  void counter(const char* name, Tick at, std::uint64_t value);

  [[nodiscard]] std::size_t num_events() const { return events_.size(); }
  [[nodiscard]] std::size_t num_tracks() const { return tracks_.size(); }

  /// Emit the whole trace as a JSON object: {"traceEvents":[...], ...}.
  void write_json(std::ostream& os) const;

 private:
  enum class Kind : std::uint8_t { kComplete, kInstant, kCounter };

  struct Track {
    std::uint32_t pid;
    std::uint32_t tid;
    std::string process;
    std::string thread;
  };

  struct Event {
    Kind kind;
    std::uint32_t track;  // counters: unused
    const char* name;
    Tick start;
    Tick end;  // complete only
    std::uint64_t arg0;
    const char* arg0_name;  // nullptr = no args object
  };

  std::uint32_t pid_of(const std::string& process);

  std::vector<Track> tracks_;
  std::vector<std::pair<std::string, std::uint32_t>> pids_;  // process -> pid
  std::vector<Event> events_;
};

}  // namespace fw::obs
