#include "sim/event_queue.hpp"

#include <utility>

namespace fw::sim {

void EventQueue::push(Tick at, EventFn fn) {
  heap_.push(Event{at, next_seq_++, std::move(fn)});
}

std::pair<Tick, EventFn> EventQueue::pop() {
  const Event& top = heap_.top();
  std::pair<Tick, EventFn> result{top.at, std::move(top.fn)};
  heap_.pop();
  return result;
}

}  // namespace fw::sim
