#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace fw::sim {
namespace {

/// Cold path for the empty-queue precondition: a thrown logic_error instead
/// of the former assert, which compiled out in Release and left UB.
[[noreturn]] void throw_empty(const char* what) { throw std::logic_error(what); }

/// Heap/sort order: earliest (at, seq) first. Keys are unique (seq is
/// monotone), so plain sort preserves insertion order at equal ticks.
struct Later {
  template <typename E>
  bool operator()(const E& a, const E& b) const {
    return a.at != b.at ? a.at > b.at : a.seq > b.seq;
  }
};

}  // namespace

EventQueue::EventQueue(std::uint32_t width_log2, std::uint32_t buckets_log2)
    : shift_(width_log2),
      nbuckets_(std::uint64_t{1} << buckets_log2),
      mask_(nbuckets_ - 1),
      buckets_(nbuckets_) {}

void EventQueue::push(Tick at, EventFn fn) {
  Event ev{at, next_seq_++, std::move(fn)};
  const std::uint64_t bid = bucket_of(at);
  if (bid >= window_end()) {
    overflow_.push_back(std::move(ev));
    std::push_heap(overflow_.begin(), overflow_.end(), Later{});
  } else {
    if (bid < floor_bid_) rewind_to(bid);
    insert_into_window(std::move(ev));
    ++win_count_;
  }
  ++size_;
}

void EventQueue::insert_into_window(Event ev) {
  const std::uint64_t bid = bucket_of(ev.at);
  assert(bid >= floor_bid_ && bid < window_end());
  std::vector<Event>& b = bucket(bid);
  if (active_ && bid == scan_bid_) {
    // The bucket is mid-drain: keep the remaining suffix sorted. The new
    // event carries the largest seq, so upper_bound on the tick alone is
    // the correct (insertion-order-preserving) position.
    const auto it =
        std::upper_bound(b.begin() + static_cast<std::ptrdiff_t>(pos_), b.end(),
                         ev.at, [](Tick t, const Event& e) { return t < e.at; });
    b.insert(it, std::move(ev));
    return;
  }
  b.push_back(std::move(ev));
  if (bid < scan_bid_) {
    // A pop from the scan bucket would have anchored floor_ == scan_, and
    // anything earlier than floor_ takes the rewind path — so the scan
    // bucket is untouched (pos_ == 0) and the cursor can simply back up.
    assert(pos_ == 0);
    scan_bid_ = bid;
    active_ = false;
  }
}

void EventQueue::promote_overflow() {
  while (!overflow_.empty() && bucket_of(overflow_.front().at) < window_end()) {
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    Event ev = std::move(overflow_.back());
    overflow_.pop_back();
    insert_into_window(std::move(ev));
    ++win_count_;
  }
}

void EventQueue::rewind_to(std::uint64_t bid) {
  // Drop the consumed prefix of the active bucket so a later re-sort cannot
  // resurrect already-delivered events.
  if (active_) {
    std::vector<Event>& b = bucket(scan_bid_);
    b.erase(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(pos_));
    active_ = false;
    pos_ = 0;
  }
  // The new, earlier window ends sooner: evict events past its end back to
  // the overflow heap. O(buckets + events), but only direct queue users can
  // schedule behind the last delivery, so the simulator never pays this.
  const std::uint64_t new_end = bid + nbuckets_;
  for (std::vector<Event>& b : buckets_) {
    auto keep = b.begin();
    for (auto& ev : b) {
      if (bucket_of(ev.at) >= new_end) {
        overflow_.push_back(std::move(ev));
        std::push_heap(overflow_.begin(), overflow_.end(), Later{});
        --win_count_;
      } else {
        *keep++ = std::move(ev);
      }
    }
    b.erase(keep, b.end());
  }
  floor_bid_ = bid;
  scan_bid_ = bid;
}

void EventQueue::settle() {
  assert(size_ > 0 && "EventQueue::settle on empty queue");
  if (active_ && pos_ < bucket(scan_bid_).size()) return;
  if (active_) {
    bucket(scan_bid_).clear();
    active_ = false;
    pos_ = 0;
    ++scan_bid_;
  }
  if (win_count_ == 0) {
    // Window fully drained: jump straight to the earliest overflow event.
    assert(!overflow_.empty());
    floor_bid_ = bucket_of(overflow_.front().at);
    scan_bid_ = floor_bid_;
    promote_overflow();
  }
  while (bucket(scan_bid_).empty()) {
    ++scan_bid_;
    assert(scan_bid_ < window_end() && "window count out of sync");
  }
  std::vector<Event>& b = bucket(scan_bid_);
  if (b.size() > 1) {
    std::sort(b.begin(), b.end(), [](const Event& a, const Event& e) {
      return a.at != e.at ? a.at < e.at : a.seq < e.seq;
    });
  }
  active_ = true;
  pos_ = 0;
}

Tick EventQueue::next_tick() {
  if (empty()) throw_empty("EventQueue::next_tick on empty queue");
  settle();
  return bucket(scan_bid_)[pos_].at;
}

std::optional<std::pair<Tick, EventFn>> EventQueue::try_pop() {
  if (empty()) return std::nullopt;
  return pop();
}

std::pair<Tick, EventFn> EventQueue::pop() {
  if (empty()) throw_empty("EventQueue::pop on empty queue");
  settle();
  std::vector<Event>& b = bucket(scan_bid_);
  Event ev = std::move(b[pos_]);
  ++pos_;
  if (pos_ == b.size()) {
    b.clear();
    active_ = false;
    pos_ = 0;
    // Keep scan_ on the drained bucket until floor_ advances below.
  }
  floor_bid_ = scan_bid_;
  if (!active_) ++scan_bid_;
  --win_count_;
  --size_;
  // The window end moved with floor_: pull in any overflow it now covers.
  promote_overflow();
  return {ev.at, std::move(ev.fn)};
}

}  // namespace fw::sim
