// Deterministic event queue for the discrete-event simulator.
//
// Events at equal ticks fire in insertion order (a monotone sequence number
// breaks ties), so a fixed seed reproduces a simulation trace exactly —
// the DES analogue of MQSim's deterministic engine.
//
// Structure: a two-level bucketed (calendar) queue replacing the former
// binary heap. The near future is a ring of `2^buckets_log2` tick buckets,
// each `2^width_log2` ns wide; events beyond the window land in a sorted
// overflow heap and are promoted as the window slides forward.
//
// The default geometry (4 ns x 1024 buckets ≈ 4.1 us window) is keyed to
// the Table II/III latency clusters. The 4 ns width matches the densest
// cluster — the 4-16 ns accelerator cycles that dominate event traffic —
// so buckets near the drain cursor hold only a handful of events and the
// lazy per-bucket sort stays cheap. The 4.1 us span covers every
// controller-side class (cycles, ~55 ns DRAM accesses, 0.1-1.4 us ONFI
// channel transfers, 2 us roving polls) as an O(1) bucket append, while
// flash-array timings (35 us reads, 350 us programs, 2 ms erases) ride the
// overflow heap. That split is deliberate: in-flight flash commands number
// at most channels x chips x planes, so the heap stays small and
// cache-resident, whereas widening the window to cover them would grow the
// ring's working set past L2 and cost more in bucket-header misses than
// the heap's O(log k) costs (measured: a 0.52 ms window runs ~2.5x slower
// than this geometry on the bench/sim_hotpath mixture). Buckets are sorted
// lazily when the drain cursor reaches them, so the common push is
// allocation-free and comparison-free. See docs/MODELING.md ("The DES
// kernel").
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sim/event_fn.hpp"

namespace fw::sim {

class EventQueue {
 public:
  /// Default geometry: 4 ns buckets, 1024 of them (~4.1 us window).
  static constexpr std::uint32_t kDefaultWidthLog2 = 2;
  static constexpr std::uint32_t kDefaultBucketsLog2 = 10;

  EventQueue() : EventQueue(kDefaultWidthLog2, kDefaultBucketsLog2) {}
  /// Custom geometry (tests use tiny windows to exercise overflow paths).
  EventQueue(std::uint32_t width_log2, std::uint32_t buckets_log2);

  void push(Tick at, EventFn fn);

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Tick of the earliest pending event. Throws std::logic_error when the
  /// queue is empty — a hard check, not an assert, because callers like the
  /// multi-shard drain loop hit this path in Release builds too.
  /// (Non-const: positions the drain cursor, which may sort a bucket or
  /// promote overflow events — observable state is unchanged.)
  Tick next_tick();

  /// Pop and return the earliest event. Throws std::logic_error when empty.
  std::pair<Tick, EventFn> pop();

  /// Pop the earliest event, or nullopt when the queue is empty. The
  /// non-throwing form for drain loops that race the queue dry.
  [[nodiscard]] std::optional<std::pair<Tick, EventFn>> try_pop();

  /// Events currently parked in the overflow heap (observability/tests).
  [[nodiscard]] std::size_t overflow_size() const { return overflow_.size(); }

 private:
  struct Event {
    Tick at;
    std::uint64_t seq;
    EventFn fn;
  };

  [[nodiscard]] std::uint64_t bucket_of(Tick at) const { return at >> shift_; }
  [[nodiscard]] std::uint64_t window_end() const { return floor_bid_ + nbuckets_; }
  [[nodiscard]] std::vector<Event>& bucket(std::uint64_t bid) {
    return buckets_[bid & mask_];
  }

  /// Position the drain cursor on the earliest event: advance over empty
  /// buckets, jump/promote from overflow when the window is drained, and
  /// sort the target bucket. Precondition: !empty().
  void settle();

  /// Place an in-window event (counters managed by the caller).
  void insert_into_window(Event ev);

  /// Pull every overflow event the current window now covers.
  void promote_overflow();

  /// Re-anchor the window at `bid` after a push earlier than any pop so far
  /// delivered (never taken by the Simulator, which clamps to `now`; direct
  /// queue users may rewind time). Evicts events past the new window end.
  void rewind_to(std::uint64_t bid);

  std::uint32_t shift_;
  std::uint64_t nbuckets_;
  std::uint64_t mask_;

  std::vector<std::vector<Event>> buckets_;
  std::vector<Event> overflow_;  ///< min-heap by (at, seq)

  std::uint64_t floor_bid_ = 0;  ///< window anchor: bucket of the last pop
  std::uint64_t scan_bid_ = 0;   ///< drain cursor; [floor_, scan_) is empty
  std::size_t pos_ = 0;          ///< consumed prefix of the active bucket
  bool active_ = false;          ///< scan bucket is sorted and being drained

  std::uint64_t win_count_ = 0;  ///< events resident in the bucket window
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace fw::sim
