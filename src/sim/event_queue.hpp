// Deterministic event queue for the discrete-event simulator.
//
// Events at equal ticks fire in insertion order (a monotone sequence number
// breaks ties), so a fixed seed reproduces a simulation trace exactly —
// the DES analogue of MQSim's deterministic engine.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace fw::sim {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  void push(Tick at, EventFn fn);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  /// Tick of the earliest pending event. Precondition: !empty().
  [[nodiscard]] Tick next_tick() const {
    assert(!heap_.empty() && "EventQueue::next_tick on empty queue");
    return heap_.top().at;
  }

  /// Pop and return the earliest event. Precondition: !empty().
  std::pair<Tick, EventFn> pop();

 private:
  struct Event {
    Tick at;
    std::uint64_t seq;
    mutable EventFn fn;  // moved out on pop; priority_queue::top() is const

    bool operator>(const Event& other) const {
      return at != other.at ? at > other.at : seq > other.seq;
    }
  };

  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
};

}  // namespace fw::sim
