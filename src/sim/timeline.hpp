// Periodic resource-consumption sampling (paper Fig. 8): the engine feeds
// cumulative byte counters; the sampler converts them into per-interval
// bandwidth series plus the walk-completion progression.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace fw::sim {

struct TimelinePoint {
  Tick at = 0;
  double flash_read_mb_s = 0.0;   ///< aggregate flash-plane read bandwidth
  double flash_write_mb_s = 0.0;  ///< aggregate flash-plane program bandwidth
  double channel_mb_s = 0.0;      ///< aggregate ONFI channel-bus bandwidth
  double overall_mb_s = 0.0;      ///< achieved overall data movement
  double walks_done_pct = 0.0;    ///< percentage of walks completed
};

class TimelineRecorder {
 public:
  explicit TimelineRecorder(Tick interval) : interval_(interval == 0 ? 1 : interval) {}

  /// Record cumulative counters observed at `now`; emits a point per elapsed
  /// interval boundary (rates are deltas over the interval).
  void sample(Tick now, std::uint64_t flash_read_bytes, std::uint64_t flash_write_bytes,
              std::uint64_t channel_bytes, std::uint64_t overall_bytes,
              std::uint64_t walks_done, std::uint64_t walks_total);

  [[nodiscard]] const std::vector<TimelinePoint>& points() const { return points_; }
  [[nodiscard]] Tick interval() const { return interval_; }

  /// Next tick at which a sample is due.
  [[nodiscard]] Tick next_due() const { return last_at_ + interval_; }

 private:
  Tick interval_;
  Tick last_at_ = 0;
  std::uint64_t last_read_ = 0;
  std::uint64_t last_write_ = 0;
  std::uint64_t last_channel_ = 0;
  std::uint64_t last_overall_ = 0;
  std::vector<TimelinePoint> points_;
};

}  // namespace fw::sim
