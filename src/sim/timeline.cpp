#include "sim/timeline.hpp"

#include "common/units.hpp"

namespace fw::sim {

void TimelineRecorder::sample(Tick now, std::uint64_t flash_read_bytes,
                              std::uint64_t flash_write_bytes, std::uint64_t channel_bytes,
                              std::uint64_t overall_bytes, std::uint64_t walks_done,
                              std::uint64_t walks_total) {
  if (now <= last_at_) return;
  const Tick elapsed = now - last_at_;
  TimelinePoint p;
  p.at = now;
  p.flash_read_mb_s = bandwidth_mb_per_s(flash_read_bytes - last_read_, elapsed);
  p.flash_write_mb_s = bandwidth_mb_per_s(flash_write_bytes - last_write_, elapsed);
  p.channel_mb_s = bandwidth_mb_per_s(channel_bytes - last_channel_, elapsed);
  p.overall_mb_s = bandwidth_mb_per_s(overall_bytes - last_overall_, elapsed);
  p.walks_done_pct =
      walks_total == 0
          ? 100.0
          : 100.0 * static_cast<double>(walks_done) / static_cast<double>(walks_total);
  points_.push_back(p);
  last_at_ = now;
  last_read_ = flash_read_bytes;
  last_write_ = flash_write_bytes;
  last_channel_ = channel_bytes;
  last_overall_ = overall_bytes;
}

}  // namespace fw::sim
