#include "sim/simulator.hpp"

namespace fw::sim {

std::uint64_t Simulator::run(Tick until) {
  std::uint64_t executed = 0;
  while (!queue_.empty() && queue_.next_tick() <= until) {
    auto [at, fn] = queue_.pop();
    now_ = at;
    fn();
    ++executed;
  }
  events_executed_ += executed;
  if (queue_.empty() && until != std::numeric_limits<Tick>::max() && now_ < until) {
    now_ = until;
  }
  return executed;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [at, fn] = queue_.pop();
  now_ = at;
  fn();
  ++events_executed_;
  return true;
}

}  // namespace fw::sim
