#include "sim/simulator.hpp"

#include <utility>

namespace fw::sim {

void Simulator::schedule_on(ShardId home, Tick delay, EventFn fn) {
  if (audit_ == nullptr) {
    queue_.push(now_ + delay, std::move(fn));
    return;
  }
  audit_->record_send(current_shard_, home, delay);
  queue_.push(now_ + delay, tag(home, std::move(fn)));
}

void Simulator::schedule_at_on(ShardId home, Tick at, EventFn fn) {
  if (audit_ == nullptr) {
    queue_.push(at < now_ ? now_ : at, std::move(fn));
    return;
  }
  const Tick eff = at < now_ ? now_ : at;
  audit_->record_send(current_shard_, home, eff - now_);
  queue_.push(eff, tag(home, std::move(fn)));
}

EventFn Simulator::tag(ShardId home, EventFn fn) {
  return EventFn([this, home, fn = std::move(fn)]() mutable {
    const ShardId prev = current_shard_;
    current_shard_ = home;
    audit_->record_execute(home);
    fn();
    current_shard_ = prev;
  });
}

std::uint64_t Simulator::run(Tick until) {
  std::uint64_t executed = 0;
  while (!queue_.empty() && queue_.next_tick() <= until) {
    auto [at, fn] = queue_.pop();
    now_ = at;
    fn();
    ++executed;
  }
  events_executed_ += executed;
  if (queue_.empty() && until != std::numeric_limits<Tick>::max() && now_ < until) {
    now_ = until;
  }
  return executed;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [at, fn] = queue_.pop();
  now_ = at;
  fn();
  ++events_executed_;
  return true;
}

}  // namespace fw::sim
