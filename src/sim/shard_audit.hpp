// Shard identity + the serial-mode shard audit.
//
// The parallel DES (sim/parallel_sim.hpp) shards the event queue per
// channel. The serial Simulator stays the bit-exact reference, but it can
// carry the same shard tagging: every event is scheduled with a home shard,
// and an attached ShardAudit measures what a conservative-lookahead
// parallel execution of the identical event stream would see — per-shard
// event balance, cross-shard traffic volume, the minimum cross-shard delay,
// and how many cross-shard sends land inside the configured lookahead
// window (each such send would force a smaller window, or a model change
// that charges the real transfer latency on that path). This is how the
// engine's event stream is validated against the window derivation in
// docs/MODELING.md ("Parallel DES") without perturbing the serial run.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.hpp"

namespace fw::sim {

/// Identifies one event-queue shard. By engine convention shard 0 is the
/// board/shared-resource shard and shard 1 + c is channel c.
using ShardId = std::uint32_t;

class ShardAudit {
 public:
  ShardAudit(std::uint32_t num_shards, Tick lookahead)
      : lookahead_(lookahead), events_(num_shards, 0) {}

  void record_execute(ShardId home) { ++events_[home]; }

  void record_send(ShardId src, ShardId dst, Tick delay) {
    if (src == dst) {
      ++local_sends_;
      return;
    }
    ++cross_sends_;
    min_cross_delay_ = std::min(min_cross_delay_, delay);
    if (delay < lookahead_) ++violations_;
  }

  [[nodiscard]] std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(events_.size());
  }
  [[nodiscard]] Tick lookahead() const { return lookahead_; }
  /// Events executed on one shard (the parallel-mode load-balance signal).
  [[nodiscard]] std::uint64_t events(ShardId s) const { return events_[s]; }
  [[nodiscard]] std::uint64_t total_events() const {
    std::uint64_t sum = 0;
    for (std::uint64_t e : events_) sum += e;
    return sum;
  }
  [[nodiscard]] std::uint64_t max_shard_events() const {
    return events_.empty() ? 0 : *std::max_element(events_.begin(), events_.end());
  }
  [[nodiscard]] std::uint64_t min_shard_events() const {
    return events_.empty() ? 0 : *std::min_element(events_.begin(), events_.end());
  }
  /// Events executed on the board shard (shard 0 by engine convention) —
  /// the serial-hub share of the event stream, in parts per million of the
  /// total. Zero when no events ran.
  [[nodiscard]] std::uint64_t board_share_ppm() const {
    const std::uint64_t total = total_events();
    if (total == 0 || events_.empty()) return 0;
    return events_[0] * 1000000ull / total;
  }
  [[nodiscard]] std::uint64_t local_sends() const { return local_sends_; }
  [[nodiscard]] std::uint64_t cross_sends() const { return cross_sends_; }
  /// Smallest observed cross-shard delay (max Tick when no send occurred).
  [[nodiscard]] Tick min_cross_delay() const { return min_cross_delay_; }
  /// Cross-shard sends scheduled closer than the lookahead window.
  [[nodiscard]] std::uint64_t lookahead_violations() const { return violations_; }

 private:
  Tick lookahead_;
  std::vector<std::uint64_t> events_;
  std::uint64_t local_sends_ = 0;
  std::uint64_t cross_sends_ = 0;
  Tick min_cross_delay_ = std::numeric_limits<Tick>::max();
  std::uint64_t violations_ = 0;
};

}  // namespace fw::sim
