// The simulation clock + event loop.
//
// The serial Simulator is the bit-exact reference engine. It can optionally
// carry the parallel-DES shard model (sim/shard_audit.hpp): when an audit
// is attached, every event is tagged with a home shard — explicitly via
// `schedule_on`/`schedule_at_on`, or inherited from the currently executing
// event for plain `schedule`/`schedule_at` — and each schedule is recorded
// as a (src, dst, delay) send. Execution order and timing are unchanged;
// with no audit attached the tagged overloads collapse to the plain ones,
// so the default path stays byte-identical to the pre-audit engine.
#pragma once

#include <cstdint>
#include <limits>

#include "sim/event_queue.hpp"
#include "sim/shard_audit.hpp"

namespace fw::sim {

class Simulator {
 public:
  [[nodiscard]] Tick now() const { return now_; }

  /// Schedule `fn` to run `delay` ns from now.
  void schedule(Tick delay, EventFn fn) {
    if (audit_ == nullptr) {
      queue_.push(now_ + delay, std::move(fn));
      return;
    }
    schedule_on(current_shard_, delay, std::move(fn));
  }

  /// Schedule `fn` at absolute tick `at` (clamped to now).
  void schedule_at(Tick at, EventFn fn) {
    if (audit_ == nullptr) {
      queue_.push(at < now_ ? now_ : at, std::move(fn));
      return;
    }
    schedule_at_on(current_shard_, at, std::move(fn));
  }

  /// Tagged variants: like schedule/schedule_at, but naming the event's
  /// home shard. No-cost aliases of the plain forms when no audit is
  /// attached.
  void schedule_on(ShardId home, Tick delay, EventFn fn);
  void schedule_at_on(ShardId home, Tick at, EventFn fn);

  /// Attach (or detach, with nullptr) a shard audit. Only events scheduled
  /// while attached are tagged and counted; attach before the first
  /// schedule for full coverage. The audit must outlive the run.
  void attach_audit(ShardAudit* audit) { audit_ = audit; }
  /// Home shard of the currently executing event (0 outside events or when
  /// no audit is attached).
  [[nodiscard]] ShardId current_shard() const { return current_shard_; }

  /// Run until the queue drains or `until` is reached. Returns the number
  /// of events executed.
  std::uint64_t run(Tick until = std::numeric_limits<Tick>::max());

  /// Execute at most one pending event; returns false if none remain.
  bool step();

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_executed() const { return events_executed_; }

 private:
  /// Wrap `fn` so execution sets the current shard and records itself.
  [[nodiscard]] EventFn tag(ShardId home, EventFn fn);

  Tick now_ = 0;
  std::uint64_t events_executed_ = 0;
  EventQueue queue_;
  ShardId current_shard_ = 0;
  ShardAudit* audit_ = nullptr;
};

}  // namespace fw::sim
