// The simulation clock + event loop.
#pragma once

#include <cstdint>
#include <limits>

#include "sim/event_queue.hpp"

namespace fw::sim {

class Simulator {
 public:
  [[nodiscard]] Tick now() const { return now_; }

  /// Schedule `fn` to run `delay` ns from now.
  void schedule(Tick delay, EventFn fn) { queue_.push(now_ + delay, std::move(fn)); }

  /// Schedule `fn` at absolute tick `at` (clamped to now).
  void schedule_at(Tick at, EventFn fn) {
    queue_.push(at < now_ ? now_ : at, std::move(fn));
  }

  /// Run until the queue drains or `until` is reached. Returns the number
  /// of events executed.
  std::uint64_t run(Tick until = std::numeric_limits<Tick>::max());

  /// Execute at most one pending event; returns false if none remain.
  bool step();

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_executed() const { return events_executed_; }

 private:
  Tick now_ = 0;
  std::uint64_t events_executed_ = 0;
  EventQueue queue_;
};

}  // namespace fw::sim
