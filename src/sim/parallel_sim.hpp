// Conservative-lookahead parallel DES over per-channel event-queue shards.
//
// Each shard owns a private bucketed calendar EventQueue (sim/event_queue)
// plus a clock and a set of single-writer outboxes. Execution proceeds in
// windows: the coordinator takes the globally earliest pending tick
// `start`, opens the window [start, start + lookahead), and every shard
// drains its own queue strictly inside the window with no locks — safe
// because the model guarantees any cross-shard interaction takes at least
// `lookahead` ns (ONFI channel transfer + DRAM hop; see
// accel/lookahead.hpp and docs/MODELING.md "Parallel DES"). Cross-shard
// sends therefore always land at or after the window end; they are parked
// in the sender's outbox and merged at the barrier.
//
// Determinism: the window schedule is a pure function of queue state at
// barriers, each shard executes serially in (tick, seq) order, and the
// barrier merge delivers crossings in ascending (tick, src_shard, seq)
// order into the destination queues — so equal-tick arrivals tie-break by
// source shard then send order, and locally scheduled events (pushed
// earlier, hence smaller destination seq) fire before same-tick crossings.
// None of this depends on the worker count: 1, 2, and 8 workers produce
// bit-identical traces, which tests/parallel_sim_test.cpp pins (and the CI
// TSan job re-checks for data races).
//
// Threading: `workers == 1` runs the identical window/merge schedule
// inline on the caller's thread (no threads spawned). With more workers,
// shard s is statically owned by worker s % workers, workers run shards in
// increasing id, and a sense-reversing spin-then-yield barrier (two
// rendezvous per window) separates the parallel drain phase from the
// serial merge phase.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "sim/event_queue.hpp"
#include "sim/shard_audit.hpp"

namespace fw::sim {

class ParallelSimulator;

/// One event-queue shard. Handlers receive a reference to their home shard
/// and use it exactly like the serial Simulator — plus `send` for
/// cross-shard traffic. Constructed and owned by ParallelSimulator.
class Shard {
 public:
  Shard() = default;
  Shard(Shard&&) = default;
  Shard& operator=(Shard&&) = default;

  [[nodiscard]] ShardId id() const { return id_; }
  [[nodiscard]] Tick now() const { return now_; }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Schedule on this shard, `delay` ns from the shard clock.
  void schedule(Tick delay, EventFn fn) { queue_.push(now_ + delay, std::move(fn)); }

  /// Schedule on this shard at absolute tick `at` (clamped to the shard
  /// clock, like Simulator::schedule_at).
  void schedule_at(Tick at, EventFn fn) {
    queue_.push(at < now_ ? now_ : at, std::move(fn));
  }

  /// Schedule on shard `dst`, `delay` ns from this shard's clock. A
  /// self-send degenerates to a local schedule (no lookahead constraint).
  /// Cross-shard sends must respect the conservative window: throws
  /// std::logic_error when `delay` is below the simulator's lookahead, and
  /// std::out_of_range for an unknown destination. The event is parked in
  /// this shard's outbox and delivered at the next window barrier.
  void send(ShardId dst, Tick delay, EventFn fn);

  /// Send on shard `dst` at absolute tick `at` on the destination clock.
  /// Same rules as `send`; `at` must be >= now + lookahead for a
  /// cross-shard destination (self-sends clamp like schedule_at). Used by
  /// window-flush hooks, whose batched deliveries are phrased in absolute
  /// ticks (the max over the staged operations' intended arrival times).
  void send_at(ShardId dst, Tick at, EventFn fn);

  /// Install a per-window flush hook. When set, the hook runs exactly once
  /// at the end of every drain_window pass over this shard — after the
  /// shard executed its final event of the window, with the shard clock
  /// still at that event's tick — in both inline and threaded modes, so
  /// the hook cadence (and therefore anything it sends) is a pure function
  /// of the window schedule, independent of the worker count. Hooks may
  /// call send/send_at but must not schedule local events.
  void set_window_flush(std::function<void(Shard&)> hook) {
    window_flush_ = std::move(hook);
  }

 private:
  friend class ParallelSimulator;

  struct Envelope {
    Tick at;
    std::uint64_t seq;  ///< per-source send order, tie-break within a tick
    EventFn fn;
  };

  ParallelSimulator* owner_ = nullptr;
  ShardId id_ = 0;
  Tick now_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t send_seq_ = 0;
  EventQueue queue_;
  std::function<void(Shard&)> window_flush_;
  /// outbox_[dst]: crossings produced this window. Written only by the
  /// worker that owns this shard; drained only by the merge phase.
  std::vector<std::vector<Envelope>> outbox_;
};

class ParallelSimulator {
 public:
  /// `lookahead` must be >= 1 ns (the window would otherwise be empty);
  /// `workers` is clamped to [1, num_shards]. Throws std::invalid_argument
  /// on a zero shard count or zero lookahead.
  ParallelSimulator(std::uint32_t num_shards, Tick lookahead,
                    std::uint32_t workers = 1);

  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;

  [[nodiscard]] Shard& shard(ShardId s) { return shards_[s]; }
  [[nodiscard]] const Shard& shard(ShardId s) const { return shards_[s]; }
  [[nodiscard]] std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] Tick lookahead() const { return lookahead_; }
  [[nodiscard]] std::uint32_t workers() const { return workers_; }

  /// Global completed-through time: the latest shard clock after run()
  /// (clamped up to `until`, matching Simulator::run).
  [[nodiscard]] Tick now() const { return now_; }
  [[nodiscard]] bool idle() const;
  [[nodiscard]] std::uint64_t events_executed() const;

  /// Run windows until every shard queue drains or the earliest pending
  /// event lies beyond `until`. Returns the number of events executed by
  /// this call across all shards.
  std::uint64_t run(Tick until = std::numeric_limits<Tick>::max());

 private:
  friend class Shard;

  /// Sense-reversing central barrier; spins briefly then yields, so it
  /// stays live even when threads outnumber cores.
  class Barrier {
   public:
    explicit Barrier(std::uint32_t parties) : parties_(parties) {}
    void arrive_and_wait();

   private:
    static constexpr int kSpinLimit = 1024;
    const std::uint32_t parties_;
    std::atomic<std::uint32_t> arrived_{0};
    std::atomic<std::uint64_t> generation_{0};
  };

  /// Next window end, or nullopt when nothing remains at or before
  /// `until`. Pure function of the shard queues — callers must hold all
  /// workers at a barrier.
  [[nodiscard]] std::optional<Tick> next_window(Tick until);

  /// Drain one shard's events with tick < window_end (the parallel phase
  /// body; also the inline-mode body), then run the shard's window-flush
  /// hook so staged cross-shard batches leave via the outbox before the
  /// merge barrier.
  static void drain_window(Shard& s, Tick window_end);

  /// Deliver every outbox envelope in (tick, src, seq) order (the serial
  /// merge phase).
  void merge_outboxes();

  void worker_loop(std::uint32_t worker);

  Tick lookahead_;
  std::uint32_t workers_;
  std::vector<Shard> shards_;
  Tick now_ = 0;

  // Window-loop rendezvous state (used only when workers_ > 1). The
  // barrier's acquire/release pairs order these plain fields: the
  // coordinator writes before releasing workers into a window, workers
  // read after.
  Barrier barrier_;
  Tick window_end_ = 0;
  std::atomic<bool> stop_{false};

  struct Crossing {
    Tick at;
    ShardId src;
    std::uint64_t seq;
    ShardId dst;
    EventFn fn;
  };
  std::vector<Crossing> merge_scratch_;
};

}  // namespace fw::sim
