// Contention primitives for the DES.
//
// SerialResource models anything that serves one request at a time in FIFO
// order at a fixed per-request duration (a flash plane, an updater PE).
// BandwidthLink models a shared serial bus with a byte rate (ONFI channel,
// PCIe lanes, DRAM bus). Both hand back the *completion tick* of a request
// issued "now", and keep busy-time + byte counters for utilization metrics.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "common/units.hpp"

namespace fw::sim {

class SerialResource {
 public:
  /// Reserve the resource for `duration` starting no earlier than `now`.
  /// Returns the completion tick.
  Tick acquire(Tick now, Tick duration) {
    const Tick start = busy_until_ > now ? busy_until_ : now;
    busy_until_ = start + duration;
    busy_time_ += duration;
    ++requests_;
    return busy_until_;
  }

  /// Reserve `count` back-to-back slots of `duration`, all issued at `now`.
  /// Observably identical to `count` successive acquire(now, duration)
  /// calls (same completion tick, busy time, and request count) — the
  /// batched form the flash array uses for multi-page plane reads.
  Tick acquire_n(Tick now, Tick duration, std::uint64_t count) {
    if (count == 0) return busy_until_ > now ? busy_until_ : now;
    const Tick start = busy_until_ > now ? busy_until_ : now;
    busy_until_ = start + duration * static_cast<Tick>(count);
    busy_time_ += duration * static_cast<Tick>(count);
    requests_ += count;
    return busy_until_;
  }

  [[nodiscard]] Tick busy_until() const { return busy_until_; }
  [[nodiscard]] Tick busy_time() const { return busy_time_; }
  [[nodiscard]] std::uint64_t requests() const { return requests_; }
  [[nodiscard]] bool idle_at(Tick now) const { return busy_until_ <= now; }

  [[nodiscard]] double utilization(Tick elapsed) const {
    return elapsed == 0 ? 0.0
                        : static_cast<double>(busy_time_) / static_cast<double>(elapsed);
  }

 private:
  Tick busy_until_ = 0;
  Tick busy_time_ = 0;
  std::uint64_t requests_ = 0;
};

class BandwidthLink {
 public:
  /// `mb_per_s` is the decimal-MB/s line rate; `fixed_latency` is added to
  /// every transfer (command/DMA setup).
  explicit BandwidthLink(std::uint64_t mb_per_s, Tick fixed_latency = 0)
      : mb_per_s_(mb_per_s), fixed_latency_(fixed_latency) {}

  /// Transfer `bytes` starting no earlier than `now`; returns completion tick.
  Tick transfer(Tick now, std::uint64_t bytes) {
    const Tick duration = transfer_time_ns(bytes, mb_per_s_) + fixed_latency_;
    const Tick start = busy_until_ > now ? busy_until_ : now;
    busy_until_ = start + duration;
    busy_time_ += duration;
    bytes_moved_ += bytes;
    ++transfers_;
    return busy_until_;
  }

  [[nodiscard]] std::uint64_t rate_mb_per_s() const { return mb_per_s_; }
  [[nodiscard]] Tick busy_until() const { return busy_until_; }
  [[nodiscard]] Tick busy_time() const { return busy_time_; }
  [[nodiscard]] std::uint64_t bytes_moved() const { return bytes_moved_; }
  [[nodiscard]] std::uint64_t transfers() const { return transfers_; }

  [[nodiscard]] double utilization(Tick elapsed) const {
    return elapsed == 0 ? 0.0
                        : static_cast<double>(busy_time_) / static_cast<double>(elapsed);
  }

 private:
  std::uint64_t mb_per_s_;
  Tick fixed_latency_;
  Tick busy_until_ = 0;
  Tick busy_time_ = 0;
  std::uint64_t bytes_moved_ = 0;
  std::uint64_t transfers_ = 0;
};

}  // namespace fw::sim
