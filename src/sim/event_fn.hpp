// EventFn: a small-buffer-optimized, move-only callable for DES events.
//
// The event queue is the hottest structure in the simulator — every flash
// command, accelerator batch, and heartbeat flows through it — and the
// previous std::function<void()> representation heap-allocated for any
// capture beyond ~2 pointers. EventFn keeps 64 bytes of inline storage,
// which covers every lambda the engine schedules (the largest captures
// this + a reference + two scalars + a std::vector ≈ 56 bytes); larger or
// over-aligned callables fall back to a single heap allocation. Unlike
// std::function, EventFn accepts move-only callables (e.g. captures holding
// std::unique_ptr), so event payloads never need to be made copyable.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace fw::sim {

class EventFn {
 public:
  /// Inline capture budget. Sized so the engine's largest hot-path lambda
  /// (this + reference + index + id + moved-in std::vector) stays inline.
  static constexpr std::size_t kInlineBytes = 64;

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { steal(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() {
    assert(ops_ != nullptr && "invoking empty EventFn");
    ops_->invoke(buf_);
  }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when a callable of type F is stored inline (no heap allocation).
  template <typename F>
  static constexpr bool stores_inline() {
    return fits_inline<std::remove_cvref_t<F>>();
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move the callable from `src` storage into `dst` (raw, uninitialized)
    /// and destroy the source; with dst == nullptr, destroy only.
    void (*relocate)(void* src, void* dst) noexcept;
    /// Inline, trivially copyable, trivially destructible: moving is a
    /// memcpy of the buffer and destruction is a no-op. This keeps Event
    /// moves inside the queue's bucket vectors (push_back shifts, the lazy
    /// sort, mid-drain sorted inserts) free of indirect calls for the
    /// scalar/pointer-capturing lambdas that dominate engine traffic.
    bool trivial;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static void inline_invoke(void* storage) {
    (*std::launder(reinterpret_cast<Fn*>(storage)))();
  }

  template <typename Fn>
  static void inline_relocate(void* src, void* dst) noexcept {
    Fn* f = std::launder(reinterpret_cast<Fn*>(src));
    if (dst != nullptr) ::new (dst) Fn(std::move(*f));
    f->~Fn();
  }

  template <typename Fn>
  static void heap_invoke(void* storage) {
    (**std::launder(reinterpret_cast<Fn**>(storage)))();
  }

  template <typename Fn>
  static void heap_relocate(void* src, void* dst) noexcept {
    Fn** p = std::launder(reinterpret_cast<Fn**>(src));
    if (dst != nullptr) {
      ::new (dst) Fn*(*p);
    } else {
      delete *p;
    }
    // The pointer itself is trivially destructible; nothing else to do.
  }

  template <typename Fn>
  static constexpr Ops inline_ops{&inline_invoke<Fn>, &inline_relocate<Fn>,
                                  std::is_trivially_copyable_v<Fn> &&
                                      std::is_trivially_destructible_v<Fn>};
  template <typename Fn>
  static constexpr Ops heap_ops{&heap_invoke<Fn>, &heap_relocate<Fn>, false};

  void steal(EventFn& other) noexcept {
    if (other.ops_ != nullptr) {
      if (other.ops_->trivial) {
        // Unconditional full-buffer copy: branchless, vectorizes, and the
        // stored callable is bitwise-relocatable by construction.
        std::memcpy(buf_, other.buf_, kInlineBytes);
      } else {
        other.ops_->relocate(other.buf_, buf_);
      }
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (!ops_->trivial) ops_->relocate(buf_, nullptr);
      ops_ = nullptr;
    }
  }

  // Zero-initialized so the trivial-relocate memcpy (which copies the full
  // buffer regardless of the stored callable's size) never reads
  // indeterminate bytes. The compiler folds the zeroing into the
  // placement-new stores on the hot construction path.
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes] = {};
  const Ops* ops_ = nullptr;
};

}  // namespace fw::sim
