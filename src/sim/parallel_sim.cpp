#include "sim/parallel_sim.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

namespace fw::sim {

namespace {
constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();
}  // namespace

void Shard::send(ShardId dst, Tick delay, EventFn fn) {
  if (dst == id_) {
    schedule(delay, std::move(fn));
    return;
  }
  if (dst >= outbox_.size()) {
    throw std::out_of_range("Shard::send: destination shard out of range");
  }
  if (delay < owner_->lookahead_) {
    throw std::logic_error(
        "Shard::send: cross-shard delay below the conservative lookahead");
  }
  outbox_[dst].push_back(Envelope{now_ + delay, send_seq_++, std::move(fn)});
}

void Shard::send_at(ShardId dst, Tick at, EventFn fn) {
  if (dst == id_) {
    schedule_at(at, std::move(fn));
    return;
  }
  if (dst >= outbox_.size()) {
    throw std::out_of_range("Shard::send_at: destination shard out of range");
  }
  if (at < now_ || at - now_ < owner_->lookahead_) {
    throw std::logic_error(
        "Shard::send_at: cross-shard delivery below the conservative "
        "lookahead");
  }
  outbox_[dst].push_back(Envelope{at, send_seq_++, std::move(fn)});
}

void ParallelSimulator::Barrier::arrive_and_wait() {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    arrived_.store(0, std::memory_order_relaxed);
    generation_.store(gen + 1, std::memory_order_release);
  } else {
    int spins = 0;
    while (generation_.load(std::memory_order_acquire) == gen) {
      if (++spins > kSpinLimit) std::this_thread::yield();
    }
  }
}

ParallelSimulator::ParallelSimulator(std::uint32_t num_shards, Tick lookahead,
                                     std::uint32_t workers)
    : lookahead_(lookahead),
      workers_(std::clamp<std::uint32_t>(workers, 1,
                                         num_shards == 0 ? 1 : num_shards)),
      barrier_(workers_ + 1) {
  if (num_shards == 0) {
    throw std::invalid_argument("ParallelSimulator: need at least one shard");
  }
  if (lookahead == 0) {
    throw std::invalid_argument("ParallelSimulator: lookahead must be >= 1 ns");
  }
  shards_.resize(num_shards);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    shards_[s].owner_ = this;
    shards_[s].id_ = s;
    shards_[s].outbox_.resize(num_shards);
  }
}

bool ParallelSimulator::idle() const {
  for (const Shard& s : shards_) {
    if (!s.queue_.empty()) return false;
  }
  return true;
}

std::uint64_t ParallelSimulator::events_executed() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.executed_;
  return total;
}

std::optional<Tick> ParallelSimulator::next_window(Tick until) {
  Tick start = kMaxTick;
  bool any = false;
  for (Shard& s : shards_) {
    if (s.queue_.empty()) continue;
    any = true;
    start = std::min(start, s.queue_.next_tick());
  }
  if (!any || start > until) return std::nullopt;
  Tick end = start + lookahead_;
  if (end < start) end = kMaxTick;  // saturate
  if (until != kMaxTick && end > until + 1) end = until + 1;
  return end;
}

void ParallelSimulator::drain_window(Shard& s, Tick window_end) {
  while (!s.queue_.empty() && s.queue_.next_tick() < window_end) {
    auto popped = s.queue_.try_pop();
    if (!popped) break;  // unreachable given the guard; keeps the API honest
    s.now_ = popped->first;
    popped->second();
    ++s.executed_;
  }
  // Flush after the pop loop so anything the shard staged during the window
  // crosses via the outbox this barrier. The hook fires even when the shard
  // executed nothing (staging is then necessarily empty), keeping its
  // cadence a pure function of the window schedule.
  if (s.window_flush_) s.window_flush_(s);
}

void ParallelSimulator::merge_outboxes() {
  merge_scratch_.clear();
  for (Shard& src : shards_) {
    for (ShardId dst = 0; dst < src.outbox_.size(); ++dst) {
      for (Shard::Envelope& env : src.outbox_[dst]) {
        merge_scratch_.push_back(
            Crossing{env.at, src.id_, env.seq, dst, std::move(env.fn)});
      }
      src.outbox_[dst].clear();
    }
  }
  // (tick, src, seq) is a total order — seq is monotone per source — so the
  // destination queues see crossings in a schedule-independent sequence.
  std::sort(merge_scratch_.begin(), merge_scratch_.end(),
            [](const Crossing& a, const Crossing& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  for (Crossing& c : merge_scratch_) {
    shards_[c.dst].queue_.push(c.at, std::move(c.fn));
  }
  merge_scratch_.clear();
}

void ParallelSimulator::worker_loop(std::uint32_t worker) {
  for (;;) {
    barrier_.arrive_and_wait();  // coordinator publishes window_end_ / stop_
    if (stop_.load(std::memory_order_acquire)) return;
    const Tick end = window_end_;
    for (ShardId s = worker; s < shards_.size(); s += workers_) {
      drain_window(shards_[s], end);
    }
    barrier_.arrive_and_wait();  // window complete; coordinator merges
  }
}

std::uint64_t ParallelSimulator::run(Tick until) {
  const std::uint64_t before = events_executed();
  if (workers_ == 1) {
    // Inline mode: identical window/merge schedule, no threads.
    while (std::optional<Tick> end = next_window(until)) {
      for (Shard& s : shards_) drain_window(s, *end);
      merge_outboxes();
    }
  } else {
    stop_.store(false, std::memory_order_release);
    std::vector<std::thread> pool;
    pool.reserve(workers_);
    for (std::uint32_t w = 0; w < workers_; ++w) {
      pool.emplace_back([this, w] { worker_loop(w); });
    }
    // Between barriers the coordinator is the only thread touching shard
    // state: workers sit at the round-start rendezvous while it inspects
    // queues, merges outboxes, and publishes the next window.
    while (std::optional<Tick> end = next_window(until)) {
      window_end_ = *end;
      barrier_.arrive_and_wait();  // release workers into the window
      barrier_.arrive_and_wait();  // wait for the drain phase
      merge_outboxes();
    }
    stop_.store(true, std::memory_order_release);
    barrier_.arrive_and_wait();
    for (std::thread& t : pool) t.join();
  }
  for (const Shard& s : shards_) now_ = std::max(now_, s.now_);
  if (idle() && until != kMaxTick && now_ < until) now_ = until;
  return events_executed() - before;
}

}  // namespace fw::sim
