// Conservative-lookahead window derivation for the parallel DES.
//
// The per-channel shards of sim/parallel_sim.hpp may only exchange events
// with a delay of at least the lookahead, so the window must lower-bound
// every modeled cross-channel interaction. All such paths — foreigner
// forwards through the board accelerator, DRAM walk-buffer traffic, host
// link completions — leave the channel over the ONFI bus (command/address
// overhead, Table III: 200 ns) and touch on-board DRAM (first-access
// tRCD + tCL at the DDR4 command clock: 55 ns) before any other channel
// can observe them. Board-level accelerator work adds at least one guider
// cycle (Table II: 4 ns) on top. ≈ 259 ns with paper defaults — roughly a
// 65-bucket span of the 4 ns calendar ring, comfortably above the
// cycle-scale traffic that dominates each shard's local work.
//
// See docs/MODELING.md "Parallel DES" for the full argument. The engine
// floors every cross-shard handoff to this window (the honest ONFI-command
// + DRAM-hop cost the old zero-latency completions skipped), so the shard
// audit reports zero lookahead violations by construction.
#pragma once

#include "accel/config.hpp"
#include "common/types.hpp"
#include "ssd/config.hpp"

namespace fw::accel {

/// Safe window width for conservative-lookahead execution: minimum
/// cross-channel latency (ONFI transfer + DRAM hop) plus one board guider
/// cycle. Never returns 0 (a degenerate config still yields a 1 ns window).
[[nodiscard]] inline Tick conservative_lookahead_ns(const AccelConfig& accel,
                                                    const ssd::SsdConfig& ssd) {
  const Tick la = ssd.min_cross_channel_ns() + accel.board.guider_cycle;
  return la == 0 ? Tick{1} : la;
}

}  // namespace fw::accel
