// SimulationBuilder: the one assembly point for a FlashWalker simulation.
//
// Every entry point (examples, benches, tests, the walk service) used to
// hand-wire the same constructor chain — partition the graph, fill
// EngineOptions, construct the engine. The builder owns that chain behind a
// fluent API over a single SimulationConfig, so adding a subsystem (the
// reliability model in PR 3, the job service in this PR) changes one struct
// instead of every call site:
//
//   auto result = SimulationBuilder(pg).options(opts).run();       // one-shot
//   auto sim = SimulationBuilder(graph).partition(pc).spec(s).build();
//   sim.run();                   // engine accessors stay valid on `sim`
#pragma once

#include <memory>
#include <vector>

#include "accel/array/array_config.hpp"
#include "accel/engine.hpp"
#include "accel/service/job.hpp"
#include "graph/csr.hpp"
#include "partition/graph_block.hpp"
#include "partition/partitioned_graph.hpp"

namespace fw::accel {

/// Everything a simulation needs, in one struct: the engine options (DES,
/// flash array, FTL, reliability, DRAM, workload/jobs) plus the graph
/// partitioning used when building from a raw CSR graph.
struct SimulationConfig : EngineOptions {
  partition::PartitionConfig partition;
  /// Multi-SSD array scale-out (devices == 1 = plain single-device run).
  /// Consumed by accel::array::BoardArray; the single-device build path
  /// ignores it entirely.
  array::ArrayConfig array;
};

/// An assembled simulation: the engine plus (when built from a raw graph)
/// the partitioned graph it runs over. Movable; construct via
/// SimulationBuilder::build.
class Simulation {
 public:
  Simulation(Simulation&&) = default;
  Simulation& operator=(Simulation&&) = default;

  /// Execute the configured workload to completion.
  EngineResult run() { return engine_->run(); }

  [[nodiscard]] FlashWalkerEngine& engine() { return *engine_; }
  [[nodiscard]] const FlashWalkerEngine& engine() const { return *engine_; }
  [[nodiscard]] const partition::PartitionedGraph& partitioned_graph() const {
    return *pg_;
  }

 private:
  friend class SimulationBuilder;
  Simulation() = default;

  std::unique_ptr<partition::PartitionedGraph> owned_pg_;
  const partition::PartitionedGraph* pg_ = nullptr;
  std::unique_ptr<FlashWalkerEngine> engine_;
};

class SimulationBuilder {
 public:
  /// Build over an existing partitioned graph (not copied; must outlive the
  /// Simulation).
  explicit SimulationBuilder(const partition::PartitionedGraph& pg) : pg_(&pg) {}
  /// Build from a raw graph; `partition(...)` configures the graph-block
  /// partitioning and the Simulation owns the result.
  explicit SimulationBuilder(const graph::CsrGraph& graph) : graph_(&graph) {}

  /// Replace the full config (partitioning included).
  SimulationBuilder& config(SimulationConfig cfg) {
    cfg_ = std::move(cfg);
    return *this;
  }
  /// Replace the engine options, keeping the partitioning config.
  SimulationBuilder& options(EngineOptions opts) {
    static_cast<EngineOptions&>(cfg_) = std::move(opts);
    return *this;
  }
  SimulationBuilder& partition(partition::PartitionConfig pc) {
    cfg_.partition = pc;
    return *this;
  }
  SimulationBuilder& accel(AccelConfig a) {
    cfg_.accel = a;
    return *this;
  }
  SimulationBuilder& features(Features f) {
    cfg_.accel.features = f;
    return *this;
  }
  SimulationBuilder& ssd(ssd::SsdConfig s) {
    cfg_.ssd = s;
    return *this;
  }
  SimulationBuilder& reliability(ssd::reliability::ReliabilityConfig r) {
    cfg_.ssd.reliability = r;
    return *this;
  }
  SimulationBuilder& spec(rw::WalkSpec s) {
    cfg_.spec = s;
    return *this;
  }
  SimulationBuilder& jobs(std::vector<service::WalkJob> jobs) {
    cfg_.jobs = std::move(jobs);
    return *this;
  }
  SimulationBuilder& add_job(service::WalkJob job) {
    cfg_.jobs.push_back(std::move(job));
    return *this;
  }
  SimulationBuilder& policy(service::ServicePolicy p) {
    cfg_.policy = p;
    return *this;
  }
  SimulationBuilder& record_visits(bool on) {
    cfg_.record_visits = on;
    return *this;
  }
  SimulationBuilder& record_paths(bool on) {
    cfg_.record_paths = on;
    return *this;
  }
  SimulationBuilder& record_endpoints(bool on) {
    cfg_.record_endpoints = on;
    return *this;
  }
  SimulationBuilder& timeline_interval(Tick interval) {
    cfg_.timeline_interval = interval;
    return *this;
  }
  SimulationBuilder& trace(obs::TraceRecorder* recorder) {
    cfg_.trace = recorder;
    return *this;
  }
  SimulationBuilder& idle_gc_episodes(std::uint32_t episodes) {
    cfg_.idle_gc_episodes = episodes;
    return *this;
  }
  /// Worker threads for the parallel DES (bit-identical for any value).
  SimulationBuilder& sim_threads(std::uint32_t n) {
    cfg_.sim_threads = n;
    return *this;
  }
  /// Record the shard audit (pure observation) on the run.
  SimulationBuilder& shard_audit(bool on) {
    cfg_.shard_audit = on;
    return *this;
  }
  /// Multi-SSD array scale-out config (see accel/array/board_array.hpp).
  /// The builder itself always assembles a single-device Simulation; array
  /// runs construct accel::array::BoardArray with the same SimulationConfig.
  SimulationBuilder& array(array::ArrayConfig a) {
    cfg_.array = a;
    return *this;
  }
  SimulationBuilder& devices(std::uint32_t n) {
    cfg_.array.devices = n;
    return *this;
  }
  [[nodiscard]] const SimulationConfig& config() const { return cfg_; }

  /// Assemble the simulation (partitions the graph if built from a raw CSR
  /// graph). Validation errors (biased walk on an unweighted graph,
  /// admission policy violations, ...) throw std::invalid_argument.
  [[nodiscard]] Simulation build();

  /// Convenience: build and run in one step.
  EngineResult run() { return build().run(); }

 private:
  const partition::PartitionedGraph* pg_ = nullptr;
  const graph::CsrGraph* graph_ = nullptr;
  SimulationConfig cfg_;
};

}  // namespace fw::accel
