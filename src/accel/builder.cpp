#include "accel/builder.hpp"

namespace fw::accel {

Simulation SimulationBuilder::build() {
  Simulation sim;
  if (graph_ != nullptr) {
    partition::PartitionConfig pc = cfg_.partition;
    // Biased jobs need edge weights in the graph blocks; derive the flag so
    // callers cannot assemble a partitioning that contradicts the workload.
    bool any_biased = cfg_.spec.biased;
    for (const auto& job : cfg_.jobs) any_biased |= job.spec.biased;
    pc.weighted = pc.weighted || any_biased;
    sim.owned_pg_ = std::make_unique<partition::PartitionedGraph>(*graph_, pc);
    sim.pg_ = sim.owned_pg_.get();
  } else {
    sim.pg_ = pg_;
  }
  sim.engine_ = std::make_unique<FlashWalkerEngine>(
      *sim.pg_, static_cast<const EngineOptions&>(cfg_),
      FlashWalkerEngine::BuildAccess{});
  return sim;
}

}  // namespace fw::accel
