#include "accel/builder.hpp"

#include "rw/model/registry.hpp"

namespace fw::accel {

Simulation SimulationBuilder::build() {
  Simulation sim;
  if (graph_ != nullptr) {
    partition::PartitionConfig pc = cfg_.partition;
    // Walk models declare their block-content needs (edge weights for ITS
    // bias, label bytes for metapath); derive the partition flags so
    // callers cannot assemble a partitioning that contradicts the workload.
    bool any_weights = rw::create_model(cfg_.spec)->needs_weights();
    bool any_labels = rw::create_model(cfg_.spec)->needs_labels();
    for (const auto& job : cfg_.jobs) {
      const auto model = rw::create_model(job.spec);
      any_weights |= model->needs_weights();
      any_labels |= model->needs_labels();
    }
    pc.weighted = pc.weighted || any_weights;
    pc.labeled = pc.labeled || any_labels;
    sim.owned_pg_ = std::make_unique<partition::PartitionedGraph>(*graph_, pc);
    sim.pg_ = sim.owned_pg_.get();
  } else {
    sim.pg_ = pg_;
  }
  sim.engine_ = std::make_unique<FlashWalkerEngine>(
      *sim.pg_, static_cast<const EngineOptions&>(cfg_),
      FlashWalkerEngine::BuildAccess{});
  return sim;
}

}  // namespace fw::accel
