#include "accel/report.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "obs/counters.hpp"

namespace fw::accel {
namespace {

/// Minimal JSON emitter: objects of numbers/strings/arrays, enough for run
/// reports (keys are code-controlled, values numeric — no escaping needed
/// beyond the label).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin() { os_ << "{"; }
  void end() { os_ << "}"; }

  void field(const std::string& key, std::uint64_t value) {
    sep();
    os_ << '"' << key << "\":" << value;
  }
  void field(const std::string& key, double value) {
    sep();
    os_ << '"' << key << "\":" << value;
  }
  /// Emit `"key":` and leave the value to the caller (for nested objects).
  void raw_field(const std::string& key) {
    sep();
    os_ << '"' << key << "\":";
  }

  void field(const std::string& key, const std::string& value) {
    sep();
    os_ << '"' << key << "\":\"";
    for (const char c : value) {
      if (c == '"' || c == '\\') os_ << '\\';
      os_ << c;
    }
    os_ << '"';
  }

  template <typename T, typename Fn>
  void array(const std::string& key, const std::vector<T>& items, Fn&& emit) {
    sep();
    os_ << '"' << key << "\":[";
    bool first = true;
    for (const auto& item : items) {
      if (!first) os_ << ',';
      first = false;
      emit(item);
    }
    os_ << ']';
  }

  std::ostream& stream() { return os_; }

 private:
  void sep() {
    if (need_comma_) os_ << ',';
    need_comma_ = true;
  }

  std::ostream& os_;
  bool need_comma_ = false;
};

}  // namespace

void write_json(std::ostream& os, const std::string& label, const EngineResult& r) {
  JsonWriter w(os);
  w.begin();
  w.field("schema_version", kReportSchemaVersion);
  w.field("name", label);
  w.field("engine", std::string("flashwalker"));
  w.field("exec_time_ns", r.exec_time);
  w.field("walks_started", r.metrics.walks_started);
  w.field("walks_completed", r.metrics.walks_completed);
  w.field("total_hops", r.metrics.total_hops);
  w.field("dead_ends", r.metrics.dead_ends);
  w.field("chip_updates", r.metrics.chip_updates);
  w.field("channel_updates", r.metrics.channel_updates);
  w.field("board_updates", r.metrics.board_updates);
  w.field("roving_walks", r.metrics.roving_walks);
  w.field("foreigner_walks", r.metrics.foreigner_walks);
  w.field("subgraph_loads", r.metrics.subgraph_loads);
  w.field("dense_prewalks", r.metrics.dense_prewalks);
  w.field("query_cache_hits", r.metrics.query_cache_hits);
  w.field("query_cache_misses", r.metrics.query_cache_misses);
  w.field("pwb_overflow_walks", r.metrics.pwb_overflow_walks);
  w.field("partition_switches", r.metrics.partition_switches);
  w.field("flash_read_bytes", r.flash_read_bytes);
  w.field("flash_write_bytes", r.flash_write_bytes);
  w.field("channel_bytes", r.channel_bytes);
  w.field("dram_bytes", r.dram_bytes);
  w.field("flash_read_mb_per_s", r.flash_read_mb_per_s());
  w.field("mean_chip_utilization", r.mean_chip_utilization());
  w.field("max_chip_utilization", r.max_chip_utilization());
  w.field("ftl_gc_erases", r.ftl.gc_erases);
  w.field("ftl_write_amplification", r.ftl.write_amplification());
  w.field("ftl_bad_blocks", r.ftl.bad_blocks);
  w.field("reliability_retried_reads", r.reliability.retried_reads);
  w.field("reliability_retries", r.reliability.retries);
  w.field("reliability_corrected_bits", r.reliability.corrected_bits);
  w.field("reliability_uncorrectable", r.reliability.uncorrectable);
  w.field("reliability_program_failures", r.reliability.program_failures);
  w.field("reliability_erase_failures", r.reliability.erase_failures);
  w.field("parked_walks", r.metrics.parked_walks);
  w.field("recovered_pages", r.metrics.recovered_pages);
  w.field("degraded_loads", r.metrics.degraded_loads);
  if (!r.jobs.empty()) {
    w.array("jobs", r.jobs, [&](const service::JobResult& j) {
      std::ostringstream name;
      for (const char c : j.stats.name) {
        if (c == '"' || c == '\\') name << '\\';
        name << c;
      }
      w.stream() << "{\"id\":" << j.stats.id << ",\"name\":\"" << name.str()
                 << "\",\"weight\":" << j.stats.weight
                 << ",\"walks\":" << j.stats.walks << ",\"steps\":" << j.stats.steps
                 << ",\"parked_walks\":" << j.stats.parked_walks
                 << ",\"arrival_ns\":" << j.stats.arrival
                 << ",\"admitted_ns\":" << j.stats.admitted
                 << ",\"completed_ns\":" << j.stats.completed
                 << ",\"exec_ns\":" << j.stats.exec_ns()
                 << ",\"latency_ns\":" << j.stats.latency_ns()
                 << ",\"steps_per_sec\":" << j.stats.steps_per_sec() << "}";
    });
  }
  if (!r.counters.empty()) {
    w.raw_field("counters");
    obs::write_counters_json(w.stream(), r.counters);
  }
  if (!r.timeline.empty()) {
    w.array("timeline", r.timeline, [&](const sim::TimelinePoint& p) {
      w.stream() << "{\"at_ns\":" << p.at << ",\"read_mb_s\":" << p.flash_read_mb_s
                 << ",\"write_mb_s\":" << p.flash_write_mb_s
                 << ",\"channel_mb_s\":" << p.channel_mb_s
                 << ",\"done_pct\":" << p.walks_done_pct << "}";
    });
  }
  w.end();
}

void write_json(std::ostream& os, const std::string& label,
                const baseline::BaselineResult& r) {
  JsonWriter w(os);
  w.begin();
  w.field("schema_version", kReportSchemaVersion);
  w.field("name", label);
  w.field("engine", std::string("baseline"));
  w.field("exec_time_ns", r.exec_time);
  w.field("graph_load_ns", r.breakdown.graph_load);
  w.field("walk_load_ns", r.breakdown.walk_load);
  w.field("walk_write_ns", r.breakdown.walk_write);
  w.field("compute_ns", r.breakdown.compute);
  w.field("walks_started", r.walks_started);
  w.field("walks_completed", r.walks_completed);
  w.field("total_hops", r.total_hops);
  w.field("dead_ends", r.dead_ends);
  w.field("block_loads", r.block_loads);
  w.field("cache_hits", r.cache_hits);
  w.field("bytes_read", r.bytes_read);
  w.field("bytes_written", r.bytes_written);
  w.field("flash_read_bytes", r.flash_read_bytes);
  w.field("read_mb_per_s", r.read_mb_per_s());
  w.field("nvme_commands", r.nvme.commands);
  w.field("nvme_depth_stalls", r.nvme.depth_stalls);
  w.end();
}

void write_json(std::ostream& os, const std::string& label,
                const array::ArrayResult& r) {
  JsonWriter w(os);
  w.begin();
  w.field("schema_version", kReportSchemaVersion);
  w.field("name", label);
  w.field("engine", std::string("flashwalker-array"));
  w.field("devices", static_cast<std::uint64_t>(r.devices));
  w.field("exec_time_ns", r.exec_time);
  w.field("walks_started", r.metrics.walks_started);
  w.field("walks_completed", r.metrics.walks_completed);
  w.field("total_hops", r.metrics.total_hops);
  w.field("dead_ends", r.metrics.dead_ends);
  w.field("aggregate_walks_per_sec", r.walks_per_sec());
  w.raw_field("fabric");
  {
    JsonWriter f(w.stream());
    f.begin();
    f.field("link_ns", r.fabric.link_ns);
    f.field("batches", r.fabric.batches);
    f.field("walks", r.fabric.walks);
    f.field("bytes", r.fabric.bytes);
    f.field("job_notifications", r.fabric.job_notifications);
    f.field("uplink_busy_ns", r.fabric.uplink_busy_ns);
    f.field("downlink_busy_ns", r.fabric.downlink_busy_ns);
    f.end();
  }
  w.array("boards", r.boards, [&, d = std::uint64_t{0}](const EngineResult& b) mutable {
    JsonWriter bw(w.stream());
    bw.begin();
    bw.field("device", d);
    bw.field("forwarded_out_walks", b.metrics.forwarded_out_walks);
    bw.field("forwarded_in_walks", b.metrics.forwarded_in_walks);
    bw.field("forward_batches", b.metrics.forward_batches);
    bw.field("forward_timeout_flushes", b.metrics.forward_timeout_flushes);
    bw.field("forwarded_bytes", b.metrics.forwarded_bytes);
    bw.raw_field("report");
    write_json(bw.stream(), label + "/board" + std::to_string(d), b);
    bw.end();
    ++d;
  });
  if (!r.jobs.empty()) {
    w.array("jobs", r.jobs, [&](const service::JobStats& s) {
      std::ostringstream name;
      for (const char c : s.name) {
        if (c == '"' || c == '\\') name << '\\';
        name << c;
      }
      w.stream() << "{\"id\":" << s.id << ",\"name\":\"" << name.str()
                 << "\",\"weight\":" << s.weight << ",\"walks\":" << s.walks
                 << ",\"steps\":" << s.steps
                 << ",\"parked_walks\":" << s.parked_walks
                 << ",\"arrival_ns\":" << s.arrival
                 << ",\"admitted_ns\":" << s.admitted
                 << ",\"completed_ns\":" << s.completed
                 << ",\"exec_ns\":" << s.exec_ns()
                 << ",\"latency_ns\":" << s.latency_ns() << "}";
    });
  }
  w.end();
}

std::string to_json(const std::string& label, const EngineResult& result) {
  std::ostringstream os;
  write_json(os, label, result);
  return os.str();
}

std::string to_json(const std::string& label, const baseline::BaselineResult& result) {
  std::ostringstream os;
  write_json(os, label, result);
  return os.str();
}

std::string to_json(const std::string& label, const array::ArrayResult& result) {
  std::ostringstream os;
  write_json(os, label, result);
  return os.str();
}

std::vector<obs::CounterSample> counter_samples(const baseline::BaselineResult& r) {
  std::vector<obs::CounterSample> s;
  s.emplace_back("engine.walks_started", r.walks_started);
  s.emplace_back("engine.walks_completed", r.walks_completed);
  s.emplace_back("engine.total_hops", r.total_hops);
  s.emplace_back("engine.dead_ends", r.dead_ends);
  s.emplace_back("host.block_loads", r.block_loads);
  s.emplace_back("host.cache_hits", r.cache_hits);
  s.emplace_back("host.bytes_read", r.bytes_read);
  s.emplace_back("host.bytes_written", r.bytes_written);
  s.emplace_back("flash.read_bytes", r.flash_read_bytes);
  s.emplace_back("nvme.commands", r.nvme.commands);
  s.emplace_back("nvme.depth_stalls", r.nvme.depth_stalls);
  s.emplace_back("time.exec_ns", r.exec_time);
  s.emplace_back("time.graph_load_ns", r.breakdown.graph_load);
  s.emplace_back("time.walk_load_ns", r.breakdown.walk_load);
  s.emplace_back("time.walk_write_ns", r.breakdown.walk_write);
  s.emplace_back("time.compute_ns", r.breakdown.compute);
  std::sort(s.begin(), s.end());
  return s;
}

void write_counters_json(std::ostream& os, const EngineResult& result) {
  obs::write_counters_json(os, result.counters);
}

void write_counters_json(std::ostream& os, const baseline::BaselineResult& result) {
  obs::write_counters_json(os, counter_samples(result));
}

}  // namespace fw::accel
