#include "accel/engine.hpp"

#include <algorithm>
#include <bit>
#include <iterator>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>

#include "accel/lookahead.hpp"
#include "common/stats.hpp"
#include "rw/model/registry.hpp"

namespace fw::accel {
namespace {

/// Comparator-tree depth for matching against `n` loaded subgraphs.
std::uint32_t match_cycles(std::size_t n) {
  return n == 0 ? 1 : static_cast<std::uint32_t>(std::bit_width(n));
}

}  // namespace

FlashWalkerEngine::FlashWalkerEngine(const partition::PartitionedGraph& pg,
                                     EngineOptions options, BuildAccess access)
    : FlashWalkerEngine(pg, std::move(options), nullptr, access) {}

FlashWalkerEngine::FlashWalkerEngine(const partition::PartitionedGraph& pg,
                                     EngineOptions options, const ArrayAttachment* array,
                                     BuildAccess /*access*/)
    : pg_(&pg), opt_(std::move(options)), array_(array) {
  // Build the job table: the explicit job list, or `spec` as implicit job 0.
  explicit_jobs_ = !opt_.jobs.empty();
  track_job_outputs_ = explicit_jobs_;
  std::vector<service::WalkJob> job_defs;
  if (explicit_jobs_) {
    job_defs = opt_.jobs;
  } else {
    service::WalkJob j;
    j.name = "default";
    j.spec = opt_.spec;
    job_defs.push_back(std::move(j));
  }
  if (opt_.policy.max_jobs > 0 && job_defs.size() > opt_.policy.max_jobs) {
    throw std::invalid_argument("FlashWalkerEngine: job count exceeds policy.max_jobs");
  }
  if (job_defs.size() >
      static_cast<std::size_t>(std::numeric_limits<std::uint16_t>::max())) {
    throw std::invalid_argument("FlashWalkerEngine: too many jobs");
  }
  bool any_weights = false;
  bool any_labels = false;
  std::uint64_t max_state_bytes = 0;
  jobs_.reserve(job_defs.size());
  for (auto& def : job_defs) {
    JobRt jc;
    jc.job = std::move(def);
    // Resolve the job's walk model from the registry; throws for an
    // unknown model name or invalid model parameters.
    jc.model = rw::create_model(jc.job.spec);
    if (jc.job.weight == 0) jc.job.weight = service::qos_weight(jc.job.qos);
    jc.expected = service::expected_walks(jc.job.spec, pg.graph().num_vertices());
    jc.walk_base = static_cast<std::uint32_t>(total_expected_);
    total_expected_ += jc.expected;
    any_weights |= jc.model->needs_weights();
    any_labels |= jc.model->needs_labels();
    max_state_bytes = std::max(max_state_bytes, jc.model->state_bytes(pg.id_bytes()));
    jobs_.push_back(std::move(jc));
  }
  if (any_labels && !pg.graph().labeled()) {
    throw std::invalid_argument("metapath walk requires a labeled graph");
  }
  if (total_expected_ > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("FlashWalkerEngine: total walk count overflows walk ids");
  }
  if (opt_.policy.max_total_walks > 0 && total_expected_ > opt_.policy.max_total_walks) {
    throw std::invalid_argument(
        "FlashWalkerEngine: total walk count exceeds policy.max_total_walks");
  }

  flash_ = std::make_unique<ssd::FlashArray>(opt_.ssd);
  layout_ = std::make_unique<ssd::GraphLayout>(pg, opt_.ssd);
  flash_->attach_observability(&registry_);
  ftl_ = std::make_unique<ssd::Ftl>(*flash_, layout_->reserved_blocks_per_plane());
  ftl_->attach_observability(&registry_, opt_.trace);
  // Walk flushes cycle through a bounded LPN window sized well under the
  // FTL's spare capacity, so steady flushing overwrites (and invalidates)
  // earlier pages instead of marching through fresh LPNs forever — that is
  // what gives garbage collection something to reclaim.
  flush_window_ = std::clamp<std::uint64_t>(ftl_->host_capacity_pages() / 3, 1, 1024);
  dram_ = std::make_unique<ssd::BankedDram>(opt_.ssd.dram);
  mtab_ = std::make_unique<partition::SubgraphMappingTable>(pg, layout_->first_pages());
  dtab_ = std::make_unique<partition::DenseVertexTable>(pg);

  const auto& topo = opt_.ssd.topo;
  scheduler_ = std::make_unique<SubgraphScheduler>(pg, *layout_, opt_.accel,
                                                   topo.total_chips(),
                                                   topo.chips_per_channel);
  if (jobs_.size() > 1) {
    // Multi-job runs turn on the weighted-fair pick policy; single-job runs
    // keep the exact paper pick sequence.
    std::vector<std::uint32_t> weights;
    weights.reserve(jobs_.size());
    for (const JobRt& jc : jobs_) weights.push_back(jc.job.weight);
    scheduler_->configure_jobs(std::move(weights));
  }
  if (any_weights) {
    if (!pg.graph().weighted()) {
      throw std::invalid_argument("biased walk requires a weighted graph");
    }
    its_ = std::make_unique<rw::ItsTable>(pg.graph());
  }
  // The board guider pool: K sub-shards, each owning an equal slice of the
  // guiders/updaters and of the query caches. Entry: the mapping-table
  // fields a cached lookup short-circuits.
  gshards_.resize(std::max<std::uint32_t>(1, opt_.accel.board_guider_shards));
  const std::uint32_t caches_per_shard = std::max<std::uint32_t>(
      1, opt_.accel.query_cache_count /
             static_cast<std::uint32_t>(gshards_.size()));
  for (GuiderShard& g : gshards_) {
    for (std::uint32_t i = 0; i < caches_per_shard; ++i) {
      g.caches.push_back(std::make_unique<AssocCacheModel>(
          opt_.accel.query_cache_bytes, 2 * pg.id_bytes() + 8));
    }
  }

  // Model-carried state (prev vertex, residual register, ...) rides with
  // every walk, charged uniformly at the max over co-scheduled jobs.
  walk_bytes_ = rw::walk_bytes(pg.id_bytes()) + max_state_bytes;

  const std::uint64_t block_cap = pg.config().block_capacity_bytes;
  const auto chip_slots = std::max<std::uint64_t>(
      1, opt_.accel.chip.subgraph_buffer_bytes / block_cap);
  chips_.resize(topo.total_chips());
  for (std::uint32_t g = 0; g < chips_.size(); ++g) {
    ChipState& c = chips_[g];
    c.global = g;
    c.channel = g / topo.chips_per_channel;
    c.chip = g % topo.chips_per_channel;
    c.slots.resize(chip_slots);
  }
  channels_.resize(topo.channels);
  for (std::uint32_t i = 0; i < channels_.size(); ++i) {
    channels_[i].index = i;
    // Channel-owned roving lane, same ONFI parameters as the FlashArray's
    // per-channel links (see ChannelState::bus for why it is separate).
    channels_[i].bus = sim::BandwidthLink(opt_.ssd.timing.channel_mb_per_s,
                                          opt_.ssd.timing.channel_cmd_overhead);
  }
  chip_views_.resize(chips_.size());
  for (auto& v : chip_views_) v.slots.resize(chip_slots);

  pwb_walks_.resize(pg.num_subgraphs());
  pwb_wc_bytes_.assign(pg.num_subgraphs(), 0);
  fl_walks_.resize(pg.num_subgraphs());
  pending_.resize(pg.num_partitions());
  if (opt_.record_visits) visits_.assign(pg.graph().num_vertices(), 0);
  if (opt_.record_endpoints) endpoints_.assign(pg.graph().num_vertices(), 0);
  // Walk ids are global (job walk_base + local index), so the path table can
  // be sized up front even though jobs are admitted at different times.
  if (opt_.record_paths) paths_.resize(total_expected_);
  if (opt_.timeline_interval > 0) {
    timeline_ = std::make_unique<sim::TimelineRecorder>(opt_.timeline_interval);
  }
  if (opt_.trace != nullptr) {
    for (auto& c : chips_) {
      c.trace_track =
          opt_.trace->register_track("chip", "chip." + std::to_string(c.global));
    }
    for (auto& ch : channels_) {
      ch.trace_track =
          opt_.trace->register_track("channel", "channel." + std::to_string(ch.index));
    }
    board_.guider_track = opt_.trace->register_track("board", "guider");
    board_.updater_track = opt_.trace->register_track("board", "updater");
  }

  // The sharded DES: board residue = shard 0, channel c (and its chips) =
  // 1 + c, guider-pool sub-shard k = 1 + channels + k. Cross-shard messages
  // pay at least the conservative-lookahead window as their honest
  // ONFI-command + DRAM-hop cost, so every send clears it.
  track_job_visits_ = track_job_outputs_ && opt_.record_visits;
  sinks_ = std::vector<ShardSink>(local_shard_count(opt_.accel, opt_.ssd));
  for (auto& sink : sinks_) {
    sink.job_hops.assign(jobs_.size(), 0);
    if (track_job_visits_) sink.job_visits.resize(jobs_.size());
  }
  handoff_ns_ = conservative_lookahead_ns(opt_.accel, opt_.ssd);
  if (opt_.trace != nullptr && opt_.sim_threads > 1) {
    throw std::invalid_argument(
        "FlashWalkerEngine: tracing requires sim_threads == 1 (the trace "
        "recorder is a single shared sink)");
  }
  if (array_ == nullptr) {
    owned_psim_ = std::make_unique<sim::ParallelSimulator>(
        num_local_shards(), handoff_ns_,
        std::max<std::uint32_t>(1, opt_.sim_threads));
    psim_ = owned_psim_.get();
  } else {
    // Array-attached board: run on the array's shared simulator inside the
    // shard slice it assigned us. The board keeps full walk/visit tables
    // (walk ids are global across the array) but only ever starts, loads,
    // and schedules partitions it owns.
    if (array_->psim == nullptr || !array_->forward || !array_->notify_completed) {
      throw std::invalid_argument(
          "FlashWalkerEngine: array attachment needs a simulator and fabric "
          "callbacks");
    }
    if (array_->device >= array_->devices) {
      throw std::invalid_argument("FlashWalkerEngine: array device out of range");
    }
    if (opt_.trace != nullptr) {
      throw std::invalid_argument(
          "FlashWalkerEngine: tracing is limited to single-device runs");
    }
    if (opt_.record_paths) {
      throw std::invalid_argument(
          "FlashWalkerEngine: record_paths is limited to single-device runs "
          "(a forwarded walk's path would be split across boards)");
    }
    psim_ = array_->psim;
    shard_base_ = array_->shard_base;
    if (psim_->num_shards() < shard_base_ + num_local_shards()) {
      throw std::invalid_argument(
          "FlashWalkerEngine: array shard slice exceeds the shared simulator");
    }
    if (psim_->lookahead() > handoff_ns_) {
      throw std::invalid_argument(
          "FlashWalkerEngine: array lookahead exceeds the board handoff floor");
    }
    fwd_buf_.resize(array_->devices);
    fwd_epoch_.assign(array_->devices, 0);
    completion_delta_.assign(jobs_.size(), 0);
    // Annotate the mapping table with the array's device column so lookups,
    // the routing filter, and the SRAM area accounting all share one
    // device-assignment source of truth.
    mtab_->assign_devices(pg, array_->devices);
  }

  // Windowed board batching: each channel shard flushes its staged
  // channel→board ops once per lookahead window as a single aggregated
  // message. The hook cadence is a pure function of the window schedule,
  // so batching is invariant under the worker count.
  for (std::uint32_t c = 0; c < channels_.size(); ++c) {
    const sim::ShardId cs = 1 + c;
    shard(cs).set_window_flush(
        [this, cs](sim::Shard&) { flush_board_stage(cs); });
  }
}

FlashWalkerEngine::~FlashWalkerEngine() = default;

std::uint32_t FlashWalkerEngine::chip_of_sg(SubgraphId sg) const {
  const auto& p = layout_->placement(sg);
  return p.channel * opt_.ssd.topo.chips_per_channel + p.chip;
}

bool FlashWalkerEngine::walk_in_sg(const rw::Walk& w, const partition::Subgraph& sg) const {
  if (sg.dense) return w.prewalked_sg == sg.id;
  return w.prewalked_sg == kInvalidSubgraph && w.cur >= sg.low_vid && w.cur <= sg.high_vid;
}

// ---------------------------------------------------------------------------
// Parallel-DES shard facade
// ---------------------------------------------------------------------------

void FlashWalkerEngine::sched(sim::ShardId s, Tick delay, sim::EventFn fn) {
  if (opt_.shard_audit) ++sinks_[s].local_sends;
  shard(s).schedule(delay, std::move(fn));
}

void FlashWalkerEngine::sched_at(sim::ShardId s, Tick at, sim::EventFn fn) {
  if (opt_.shard_audit) ++sinks_[s].local_sends;
  shard(s).schedule_at(at, std::move(fn));
}

void FlashWalkerEngine::xsend(sim::ShardId src, sim::ShardId dst, Tick at,
                              sim::EventFn fn) {
  const Tick now = shard(src).now();
  Tick delay = at > now ? at - now : Tick{0};
  // The honest handoff floor: any cross-shard interaction rides the ONFI
  // command path and touches board DRAM, which is exactly what the
  // conservative lookahead lower-bounds — so the floored delay always
  // clears the window and the audit must report zero violations.
  if (delay < handoff_ns_) delay = handoff_ns_;
  if (opt_.shard_audit) {
    ShardSink& sink = sinks_[src];
    ++sink.cross_sends;
    sink.min_cross_delay = std::min(sink.min_cross_delay, delay);
    if (delay < psim_->lookahead()) ++sink.lookahead_violations;
  }
  shard(src).send(shard_base_ + dst, delay, std::move(fn));
}

// ---------------------------------------------------------------------------
// Setup / job lifecycle
// ---------------------------------------------------------------------------

service::JobStats FlashWalkerEngine::job_stats(const JobRt& jc) const {
  service::JobStats s;
  s.id = static_cast<service::JobId>(&jc - jobs_.data());
  s.name = jc.job.name;
  s.qos = jc.job.qos;
  s.weight = jc.job.weight;
  s.walks = jc.completed;
  s.steps = jc.hops;
  s.parked_walks = jc.parked;
  s.arrival = jc.job.arrival;
  s.admitted = jc.admit_tick;
  s.completed = jc.done_tick;
  return s;
}

void FlashWalkerEngine::arrive_job(std::uint16_t j) {
  if (opt_.policy.max_concurrent_jobs > 0 &&
      running_jobs_ >= opt_.policy.max_concurrent_jobs) {
    admit_queue_.push_back(j);  // FIFO: admitted as running jobs finish
    return;
  }
  admit_job(j);
}

void FlashWalkerEngine::admit_job(std::uint16_t j) {
  JobRt& jc = jobs_[j];
  jc.admitted = true;
  jc.admit_tick = bnow();
  ++admitted_jobs_;
  ++running_jobs_;
  if (!hot_loaded_) {
    load_hot_subgraphs();  // global hot sets, loaded once per run
    hot_loaded_ = true;
  }
  if (track_job_outputs_ && opt_.record_endpoints) {
    jc.endpoints.assign(pg_->graph().num_vertices(), 0);
  }
  // Per-job visit counts accumulate in the shard sinks and are merged after
  // the run (merge_sinks), so no per-job vector is assigned here.

  const auto& spec = jc.job.spec;
  const VertexId n = pg_->graph().num_vertices();
  // Start-vertex draws come from a job-local generator and the per-walk
  // streams are keyed off (job seed, local walk id), so a job's walk output
  // is bit-identical whether it runs alone or co-scheduled.
  Xoshiro256 job_rng(spec.seed);
  std::uint32_t local = 0;
  auto start_walk = [&](VertexId v) {
    const std::uint32_t idx = local++;
    // Every board of an array enumerates every walk in the same global
    // order (ids and RNG streams are array-wide invariants), but a walk
    // starts only on the board that owns its start partition; the rest of
    // the array sees it later, if ever, as forwarded traffic.
    const SubgraphId sg = pg_->subgraph_of(v);
    const PartitionId part = pg_->partition_of(sg);
    if (!owns_partition(part)) return;
    rw::Walk w;
    w.id = jc.walk_base + idx;
    w.job = j;
    w.src = v;
    w.cur = v;
    w.state = jc.model->init_state();
    w.hops_left = static_cast<std::uint16_t>(spec.length);
    // Per-walk stream, same derivation as the host reference walker: the
    // walk's path is a pure function of (seed, id), independent of how the
    // DES interleaves updates — fault-induced reordering and co-scheduled
    // jobs cannot change it.
    w.rng_state = spec.seed ^ (0x9E3779B97F4A7C15ull * (idx + 1));
    ++sinks_[kBoardShard].metrics.walks_started;
    if (opt_.record_paths) paths_[w.id].push_back(v);
    pending_[part].push_back(w);
  };

  switch (spec.start_mode) {
    case rw::StartMode::kAllVertices:
      for (VertexId v = 0; v < n; ++v) start_walk(v);
      break;
    case rw::StartMode::kUniformRandom:
      for (std::uint64_t i = 0; i < spec.num_walks; ++i) start_walk(job_rng.bounded(n));
      break;
    case rw::StartMode::kSingleSource:
      for (std::uint64_t i = 0; i < spec.num_walks; ++i) start_walk(spec.source);
      break;
  }
  jc.started = local;
  if (jc.expected == 0) {
    // Standalone: the empty job completes on the spot. Array-attached: the
    // coordinator observes the zero expected count and broadcasts the
    // finish, keeping every board's admission bookkeeping in lockstep.
    if (array_ == nullptr) finish_job(jc);
    return;
  }
  inject_admitted_walks();
}

void FlashWalkerEngine::finish_job(JobRt& jc) {
  jc.done_tick = bnow();
  // Board-visible lower bound for the completion callback; the exact
  // all-shard total replaces it in merge_sinks after the run.
  jc.hops = sinks_[kBoardShard].job_hops[static_cast<std::size_t>(&jc - jobs_.data())];
  --running_jobs_;
  if (jc.job.on_complete) jc.job.on_complete(job_stats(jc));
  drain_admit_queue();
}

void FlashWalkerEngine::drain_admit_queue() {
  // A freed slot admits queued jobs (FIFO) before anything else runs.
  while (!admit_queue_.empty() &&
         (opt_.policy.max_concurrent_jobs == 0 ||
          running_jobs_ < opt_.policy.max_concurrent_jobs)) {
    const std::uint16_t next = admit_queue_.front();
    admit_queue_.pop_front();
    admit_job(next);
  }
}

void FlashWalkerEngine::array_finish_job(std::uint16_t j, Tick at) {
  // Coordinator broadcast: job `j`'s final walk completed somewhere in the
  // array at tick `at`. Every board records the same completion tick and
  // frees the admission slot at the same local tick, so queued-job admission
  // stays in lockstep across boards. on_complete fires at the coordinator
  // (it alone sees array-wide stats), not here.
  JobRt& jc = jobs_[j];
  jc.done_tick = at;
  jc.hops = sinks_[kBoardShard].job_hops[j];
  --running_jobs_;
  drain_admit_queue();
}

void FlashWalkerEngine::array_finish_run(Tick at) {
  if (done_) return;
  done_ = true;
  done_tick_ = at;
  broadcast_done();
}

void FlashWalkerEngine::inject_admitted_walks() {
  if (!partition_started_) {
    // First admission: start with the first partition that has walks.
    for (PartitionId p = 0; p < pg_->num_partitions(); ++p) {
      if (!pending_[p].empty()) {
        partition_started_ = true;
        begin_partition(p, /*charge_io=*/false);
        return;
      }
    }
    return;
  }
  // A partition is (or was) active: walks that landed in it enter the board
  // directly; the rest wait in pending_ for their partition's turn.
  auto& cur = pending_[current_partition_];
  if (!cur.empty()) {
    auto walks = std::move(cur);
    cur.clear();
    active_walks_ += walks.size();
    enqueue_board(std::move(walks));
  } else {
    maybe_switch_partition();
  }
}

void FlashWalkerEngine::load_hot_subgraphs() {
  // Hot sets are global (paper §III.C: "top K among subgraphs stored in
  // flash chips connected to the channel" — no partition qualifier), so
  // they are selected and loaded once per run, and hot-subgraph walks are
  // updatable regardless of the current partition.
  board_.hot.clear();
  if (!opt_.accel.features.hot_subgraphs) return;

  const std::uint64_t block_cap = pg_->config().block_capacity_bytes;

  // Non-dense candidates only: dense blocks are routed via pre-walking and
  // must be loaded where the chosen block lives. An array-attached board
  // restricts the candidate set to partitions it owns — a foreign hot
  // subgraph would swallow walks that must instead cross the fabric to
  // their home board.
  std::vector<SubgraphId> part_sgs;
  for (SubgraphId sg = 0; sg < pg_->num_subgraphs(); ++sg) {
    if (pg_->subgraph(sg).dense) continue;
    if (!owns_partition(pg_->partition_of(sg))) continue;
    part_sgs.push_back(sg);
  }

  // Every hot load's flash traffic is charged here on the board shard (the
  // board orchestrates the loads); channel hot lists then cross to their
  // home shards with the handoff floor. Roving walks that race ahead of
  // the list simply pass through to the board — deterministic either way.
  auto charge_load = [&](SubgraphId sg) {
    const auto& place = layout_->placement(sg);
    flash_->read_chip_pages(bnow(), place.channel, place.chip, place.start_plane,
                            place.num_pages, /*over_channel=*/true);
    ++sinks_[kBoardShard].metrics.hot_subgraph_loads;
  };

  const auto board_k = std::max<std::uint64_t>(
      1, opt_.accel.board.subgraph_buffer_bytes / block_cap);
  for (SubgraphId sg : pg_->top_k_popular(part_sgs, board_k)) {
    LoadedSg slot;
    slot.sg = sg;
    board_.hot.push_back(std::move(slot));
    charge_load(sg);
  }

  const auto chan_k = std::max<std::uint64_t>(
      1, opt_.accel.channel.subgraph_buffer_bytes / block_cap);
  for (auto& ch : channels_) {
    std::vector<SubgraphId> local;
    for (SubgraphId sg : part_sgs) {
      if (layout_->placement(sg).channel == ch.index) local.push_back(sg);
    }
    auto top = pg_->top_k_popular(local, chan_k);
    if (top.empty()) continue;
    for (SubgraphId sg : top) charge_load(sg);
    xsend(kBoardShard, channel_shard(ch), bnow(),
          [this, &ch, list = std::move(top)] {
      for (SubgraphId sg : list) {
        LoadedSg slot;
        slot.sg = sg;
        ch.hot.push_back(std::move(slot));
      }
    });
  }
}

void FlashWalkerEngine::begin_partition(PartitionId p, bool charge_io) {
  current_partition_ = p;
  scheduler_->begin_partition(p);
  // Partition switch replaces the mapping entries the query caches index.
  // The caches live on the guider sub-shards, so the epoch bump rides the
  // next dispatch message and each sub-shard clears lazily on observing it
  // (no cross-shard write here; switches only happen with no decisions in
  // flight — active_walks_ gates maybe_switch_partition).
  ++partition_epoch_;

  auto walks = std::move(pending_[p]);
  pending_[p].clear();
  if (walks.empty()) return;
  active_walks_ += walks.size();

  if (charge_io) {
    // Pending walks were flushed to flash when they became foreigners; read
    // them back (striped pages over one channel, round-robin by partition).
    const std::uint64_t bytes = walks.size() * wbytes();
    const auto pages = static_cast<std::uint32_t>(
        (bytes + opt_.ssd.topo.page_bytes - 1) / opt_.ssd.topo.page_bytes);
    const std::uint32_t channel = p % opt_.ssd.topo.channels;
    flash_->read_chip_pages(bnow(), channel, 0, 0, pages, /*over_channel=*/true);
  }
  enqueue_board(std::move(walks));
}

void FlashWalkerEngine::schedule_heartbeats() {
  for (auto& ch : channels_) {
    sched(channel_shard(ch), opt_.accel.roving_poll_interval,
          [this, &ch] { poll_channel(ch); });
  }
  if (timeline_) {
    // Samplers live on the board shard: they read board-owned models plus
    // the board sink's progress counters. Channel-lane bus bytes are folded
    // in post-run only, so mid-run channel-byte samples reflect the board's
    // view of the FlashArray links.
    const Tick interval = timeline_->interval();
    auto tick = [this, interval](auto&& self) -> void {
      timeline_->sample(bnow(), flash_->read_bytes(), flash_->programmed_bytes(),
                        flash_->channel_bytes(),
                        flash_->read_bytes() + flash_->programmed_bytes() +
                            flash_->channel_bytes() + dram_->bytes_moved(),
                        sinks_[kBoardShard].metrics.walks_completed,
                        sinks_[kBoardShard].metrics.walks_started);
      if (!done_) {
        sched(kBoardShard, interval, [self]() mutable { self(self); });
      }
    };
    sched(kBoardShard, interval, [tick]() mutable { tick(tick); });
  }
  if (opt_.trace != nullptr) {
    // Periodic counter samples give the trace its progress overlays. Reuse
    // the Fig-8 cadence when timeline sampling is on; otherwise sample at a
    // coarse multiple of the roving poll so the overhead stays negligible.
    const Tick interval = opt_.timeline_interval > 0
                              ? opt_.timeline_interval
                              : opt_.accel.roving_poll_interval * 64;
    auto sample = [this, interval](auto&& self) -> void {
      const Tick now = bnow();
      opt_.trace->counter("engine.walks_completed", now,
                          sinks_[kBoardShard].metrics.walks_completed);
      opt_.trace->counter("flash.read_bytes", now, flash_->read_bytes());
      opt_.trace->counter("flash.write_bytes", now, flash_->programmed_bytes());
      opt_.trace->counter("dram.bytes", now, dram_->bytes_moved());
      if (!done_) {
        sched(kBoardShard, interval, [self]() mutable { self(self); });
      }
    };
    sched(kBoardShard, interval, [sample]() mutable { sample(sample); });
  }
}

// ---------------------------------------------------------------------------
// Walk updating (shared step 2-6 logic)
// ---------------------------------------------------------------------------

FlashWalkerEngine::HopOutcome FlashWalkerEngine::update_walk(
    rw::Walk& w, const partition::Subgraph& sg, ShardSink& sink) {
  Xoshiro256 wrng(w.rng_state);
  w.parked = false;  // the walk made progress; it may park again next hop
  const HopOutcome out = update_walk_step(w, sg, sink, wrng);
  // One state derivation per hop, however many draws the hop consumed.
  w.rng_state = wrng.next();
  return out;
}

FlashWalkerEngine::HopOutcome FlashWalkerEngine::update_walk_step(
    rw::Walk& w, const partition::Subgraph& sg, ShardSink& sink, Xoshiro256& rng) {
  HopOutcome out;
  // Per-hop decisions dispatch through the owning job's walk model, so
  // co-scheduled jobs each run their own model over the shared hierarchy.
  const rw::WalkModel& model = model_of(w);
  if (model.stop_before_hop(w, rng)) {
    out.completed = true;
    return out;
  }

  // Gather: the candidate slice the resident subgraph exposes — the walk
  // vertex's full adjacency, or the resident sub-slice of a dense vertex.
  const auto& g = pg_->graph();
  rw::Gather gv;
  gv.dense = sg.dense;
  gv.begin = sg.dense ? sg.edge_begin : g.offsets()[w.cur];
  gv.end = sg.dense ? sg.edge_end : g.offsets()[w.cur + 1];
  gv.vertex_first_edge = sg.dense ? g.offsets()[sg.low_vid] : gv.begin;

  const rw::SampleResult s = model.sample(g, its_.get(), gv, w, rng);
  out.extra_cycles = s.search_steps;

  if (s.next == kInvalidVertex) {
    if (spec_of(w).dead_end == rw::WalkSpec::DeadEnd::kRestart) {
      // Restart-at-source consumes the hop but revisits nothing (matches
      // rw::run_walks); the walk then routes onward from its source. Model
      // state is deliberately left untouched (pre-plugin behavior).
      w.cur = w.src;
      w.prewalked_sg = kInvalidSubgraph;
      w.range_tag = rw::kNoRangeTag;
      --w.hops_left;
      if (opt_.record_paths) paths_[w.id].push_back(w.cur);
      out.completed = w.finished();
      return out;
    }
    ++sink.metrics.dead_ends;
    out.completed = true;
    return out;
  }
  // Update: the model advances its carried state (still seeing w.cur as the
  // hop's origin) and may terminate the walk early (per-walk stop criteria).
  const rw::WalkModel::Verdict verdict = model.update(w, s.next);
  w.cur = s.next;
  w.prewalked_sg = kInvalidSubgraph;
  w.range_tag = rw::kNoRangeTag;
  --w.hops_left;
  ++sink.metrics.total_hops;
  ++sink.job_hops[w.job];
  if (opt_.record_visits) {
    if (sink.visits.empty()) sink.visits.assign(pg_->graph().num_vertices(), 0);
    ++sink.visits[s.next];
  }
  if (track_job_visits_) {
    auto& jv = sink.job_visits[w.job];
    if (jv.empty()) jv.assign(pg_->graph().num_vertices(), 0);
    ++jv[s.next];
  }
  if (opt_.record_paths) paths_[w.id].push_back(s.next);
  out.completed = verdict == rw::WalkModel::Verdict::kTerminate || w.finished();
  return out;
}

// ---------------------------------------------------------------------------
// Shared routing helpers (board shard)
// ---------------------------------------------------------------------------

void FlashWalkerEngine::flush_walk_pages(std::uint64_t bytes, std::uint64_t& counter) {
  const std::uint32_t page = opt_.ssd.topo.page_bytes;
  const std::uint64_t pages = (bytes + page - 1) / page;
  for (std::uint64_t i = 0; i < pages; ++i) {
    // Rolling LPN window (sized in the constructor from FTL capacity): later
    // flushes overwrite older (already consumed) walk pages, invalidating
    // them so FTL garbage collection has blocks to reclaim.
    ftl_->write_page(bnow(), flush_lpn_);
    flush_lpn_ = (flush_lpn_ + 1) % flush_window_;
    ++counter;
  }
}

void FlashWalkerEngine::complete_walk(const rw::Walk& w, std::uint64_t& completed_bytes,
                                      std::uint64_t flush_cap) {
  ++sinks_[kBoardShard].metrics.walks_completed;
  if (!endpoints_.empty()) ++endpoints_[w.cur];
  --active_walks_;
  completed_bytes += wbytes();
  if (completed_bytes >= flush_cap) {
    flush_walk_pages(completed_bytes, sinks_[kBoardShard].metrics.completed_flush_pages);
    completed_bytes = 0;
  }
  JobRt& jc = jobs_[w.job];
  if (!jc.endpoints.empty()) ++jc.endpoints[w.cur];
  ++jc.completed;
  if (array_ != nullptr) {
    // Array-attached: a board sees only its slice of the job, so completion
    // decisions belong to the coordinator. Deltas batch up per caller (see
    // array_flush_completions call sites) to keep fabric chatter bounded.
    completion_delta_[w.job] += 1;
    completion_dirty_ = true;
    return;
  }
  if (jc.completed == jc.expected) finish_job(jc);
  check_done();
}

void FlashWalkerEngine::insert_pwb(SubgraphId sg, rw::Walk w,
                                   std::vector<std::uint32_t>& touched_chips) {
  ShardSink& bsink = sinks_[kBoardShard];
  pwb_walks_[sg].push_back(w);
  scheduler_->on_walk_insert(sg, w.job);
  ++bsink.metrics.pwb_inserts;
  // Appends are write-combined through a board SRAM line buffer: DRAM sees
  // one (row-buffer-hostile, which the banked model charges for) 64 B line
  // write per ~6 walks, not one random access per walk.
  pwb_wc_bytes_[sg] += wbytes();
  if (pwb_wc_bytes_[sg] >= kDramLineBytes) {
    pwb_wc_bytes_[sg] -= kDramLineBytes;
    const std::uint64_t addr = static_cast<std::uint64_t>(sg) * opt_.accel.pwb_entry_bytes +
                               pwb_walks_[sg].size() * wbytes();
    dram_->access(bnow(), addr, kDramLineBytes);
  }
  touched_chips.push_back(chip_of_sg(sg));

  // Dense entries store walks without `cur` (implied by the entry), so the
  // same byte budget holds more dense walks — the β asymmetry of Eq. 1.
  const std::uint64_t entry_bytes =
      pwb_walks_[sg].size() * rw::walk_bytes(pg_->id_bytes(), pg_->subgraph(sg).dense);
  if (entry_bytes >= opt_.accel.pwb_entry_bytes) {
    // Entry overflow: the entry's walks move to flash (paper §III.D).
    auto& fl = fl_walks_[sg];
    const std::uint64_t n = pwb_walks_[sg].size();
    fl.insert(fl.end(), pwb_walks_[sg].begin(), pwb_walks_[sg].end());
    pwb_walks_[sg].clear();
    scheduler_->on_entry_flushed(sg, n);
    flush_walk_pages(n * wbytes(), bsink.metrics.overflow_flush_pages);
    ++bsink.metrics.pwb_overflow_events;
    bsink.metrics.pwb_overflow_walks += n;
  }
}

FlashWalkerEngine::RouteDecision FlashWalkerEngine::route_decide(
    rw::Walk w, PartitionId part, GuiderShard& g, ShardSink& sink,
    std::uint64_t& cycles) {
  RouteDecision d;
  SubgraphId target = w.prewalked_sg;

  if (target == kInvalidSubgraph) {
    // Dense-vertex check runs first (paper: "looks up the dense vertices
    // mapping table before the subgraph mapping table").
    ++cycles;  // Bloom probe
    ++sink.metrics.bloom_lookups;
    const auto dres = dtab_->lookup(w.cur);
    if (dres.bloom_positive) {
      ++cycles;  // hash-table probe
      if (dres.bloom_false_positive) ++sink.metrics.bloom_false_positives;
    }
    if (dres.meta) {
      // Pre-walking: choose the destination graph block before the hop. The
      // draw comes from the walk's own stream (it picks part of the walk's
      // path), so the choice survives any event-ordering perturbation.
      ++cycles;
      Xoshiro256 wrng(w.rng_state);
      const auto& meta = *dres.meta;
      std::uint32_t block;
      if (model_of(w).needs_weights()) {
        // Biased pre-walk: block chosen proportionally to its weight mass.
        const auto& gr = pg_->graph();
        const EdgeId first_edge = gr.offsets()[w.cur];
        const EdgeId last_edge = gr.offsets()[w.cur + 1];
        const double total = its_->cumulative_weight(last_edge - 1);
        const double rnd = wrng.uniform() * total;
        // Binary search over block boundaries.
        std::uint32_t lo = 0, hi = meta.num_blocks;
        while (lo + 1 < hi) {
          ++cycles;
          const std::uint32_t mid = lo + (hi - lo) / 2;
          const EdgeId bound = first_edge +
                               static_cast<EdgeId>(mid) * pg_->edges_per_block();
          if (rnd < its_->cumulative_weight(bound - 1)) {
            hi = mid;
          } else {
            lo = mid;
          }
        }
        block = lo;
      } else {
        const std::uint64_t rnd = rw::prewalk_draw(meta.out_degree, wrng);
        block = rw::prewalk_block_choice(rnd, pg_->edges_per_block());
      }
      block = std::min(block, meta.num_blocks - 1);
      target = meta.first_sgid + block;
      w.prewalked_sg = target;
      w.rng_state = wrng.next();
      ++sink.metrics.dense_prewalks;
    }
  }

  if (target == kInvalidSubgraph) {
    // Hot-subgraph short circuit (HS). Slot identities are fixed at load
    // time, so membership is decidable here; queue capacity is live board
    // state and is re-checked when the decision applies.
    if (opt_.accel.features.hot_subgraphs && !board_.hot.empty()) {
      cycles += match_cycles(board_.hot.size());
      for (std::size_t i = 0; i < board_.hot.size(); ++i) {
        if (walk_in_sg(w, pg_->subgraph(board_.hot[i].sg))) {
          d.w = w;
          d.action = RouteDecision::Action::kHot;
          d.hot_slot = static_cast<std::uint32_t>(i);
          return d;
        }
      }
    }

    // Channel-attached range tags double as a foreigner check (paper
    // §III.C): if the whole tagged range lies in another partition, the
    // walk goes straight to the foreigner buffer — no mapping search. The
    // comparison runs against the snapshot partition `part` the dispatch
    // carried; switches are blocked while decisions are in flight, so the
    // snapshot always equals the live partition at apply time.
    if (opt_.accel.features.walk_query && w.range_tag != rw::kNoRangeTag) {
      ++cycles;
      const auto [first, count] = mtab_->range_span(w.range_tag);
      const PartitionId pid_lo = pg_->partition_of(mtab_->entries()[first].sgid);
      const PartitionId pid_hi =
          pg_->partition_of(mtab_->entries()[first + count - 1].sgid);
      if (pid_lo == pid_hi && pid_lo != part) {
        ++sink.metrics.range_foreigner_hints;
        d.w = w;
        d.pid = pid_lo;
        d.action = owns_partition(pid_lo) ? RouteDecision::Action::kForeign
                                          : RouteDecision::Action::kDevice;
        return d;
      }
    }

    // Subgraph mapping lookup, possibly accelerated by WQ through the
    // sub-shard's private query-cache slice.
    partition::Lookup lookup;
    if (opt_.accel.features.walk_query) {
      lookup = w.range_tag != rw::kNoRangeTag ? mtab_->find_in_range(w.cur, w.range_tag)
                                              : mtab_->find(w.cur);
      auto& cache = *g.caches[g.cache_rr++ % g.caches.size()];
      if (cache.access(lookup.sgid)) {
        ++cycles;
        ++sink.metrics.query_cache_hits;
      } else {
        cycles += lookup.steps;
        ++sink.metrics.query_cache_misses;
        sink.metrics.mapping_search_steps += lookup.steps;
      }
    } else {
      lookup = mtab_->find(w.cur);
      cycles += lookup.steps;
      sink.metrics.mapping_search_steps += lookup.steps;
    }
    if (!lookup.found()) {
      throw std::logic_error("route_decide: mapping lookup failed");
    }
    target = lookup.sgid;
  }

  d.w = w;
  d.action = RouteDecision::Action::kLocal;
  d.target = target;
  return d;
}

void FlashWalkerEngine::park_foreigner(PartitionId pid, const rw::Walk& w) {
  // Foreigner: buffered, flushed to flash when the buffer fills, and
  // revisited when its partition becomes current.
  ShardSink& bsink = sinks_[kBoardShard];
  pending_[pid].push_back(w);
  --active_walks_;
  ++bsink.metrics.foreigner_walks;
  board_.foreigner_buffered_bytes += wbytes();
  if (board_.foreigner_buffered_bytes >= opt_.accel.foreigner_buffer_bytes) {
    flush_walk_pages(board_.foreigner_buffered_bytes,
                     bsink.metrics.foreigner_flush_pages);
    board_.foreigner_buffered_bytes = 0;
  }
}

void FlashWalkerEngine::place_routed(SubgraphId target, const rw::Walk& w,
                                     std::vector<std::uint32_t>& touched_chips) {
  const PartitionId pid = pg_->partition_of(target);
  if (pid == current_partition_) {
    insert_pwb(target, w, touched_chips);
  } else if (!owns_partition(pid)) {
    // The walk's next subgraph lives on another board: stage it for the
    // host fabric instead of the local foreigner buffer.
    forward_walk(pid, w);
  } else {
    park_foreigner(pid, w);
  }
}

void FlashWalkerEngine::route_fallback(rw::Walk w,
                                       std::vector<std::uint32_t>& touched_chips) {
  // A hot-slot queue filled while this walk's decision was in flight. The
  // serial guider fell through a full hot slot to the range check and the
  // mapping lookup; replicate that tail here. The lookup runs uncached (the
  // query caches live on the sub-shards) and its cycles are not re-charged:
  // the chunk already paid its guider time, and this path fires at most
  // once per capacity race.
  ShardSink& bsink = sinks_[kBoardShard];
  if (opt_.accel.features.walk_query && w.range_tag != rw::kNoRangeTag) {
    const auto [first, count] = mtab_->range_span(w.range_tag);
    const PartitionId pid_lo = pg_->partition_of(mtab_->entries()[first].sgid);
    const PartitionId pid_hi =
        pg_->partition_of(mtab_->entries()[first + count - 1].sgid);
    if (pid_lo == pid_hi && pid_lo != current_partition_) {
      ++bsink.metrics.range_foreigner_hints;
      if (!owns_partition(pid_lo)) {
        forward_walk(pid_lo, w);
        return;
      }
      park_foreigner(pid_lo, w);
      return;
    }
  }
  const partition::Lookup lookup =
      opt_.accel.features.walk_query && w.range_tag != rw::kNoRangeTag
          ? mtab_->find_in_range(w.cur, w.range_tag)
          : mtab_->find(w.cur);
  bsink.metrics.mapping_search_steps += lookup.steps;
  if (!lookup.found()) {
    throw std::logic_error("route_fallback: mapping lookup failed");
  }
  place_routed(lookup.sgid, w, touched_chips);
}

void FlashWalkerEngine::apply_route_decisions(std::vector<RouteDecision> decs) {
  std::vector<std::uint32_t> touched_chips = chip_list_pool_.acquire();
  for (RouteDecision& d : decs) {
    switch (d.action) {
      case RouteDecision::Action::kHot: {
        LoadedSg& slot = board_.hot[d.hot_slot];
        const std::uint64_t cap =
            opt_.accel.board.walk_queue_bytes /
            std::max<std::uint64_t>(1, board_.hot.size() * wbytes());
        if (slot.queue.size() < cap) {
          slot.queue.push_back(d.w);
        } else {
          route_fallback(d.w, touched_chips);
        }
        break;
      }
      case RouteDecision::Action::kLocal:
        place_routed(d.target, d.w, touched_chips);
        break;
      case RouteDecision::Action::kForeign:
        park_foreigner(d.pid, d.w);
        break;
      case RouteDecision::Action::kDevice:
        forward_walk(d.pid, d.w);
        break;
    }
  }
  // Re-run the load granter for every chip this chunk fed: chips holding
  // walks are already processing (they kick themselves); idle chips get
  // their loads granted from the board-side slot views.
  for (std::uint32_t g : touched_chips) board_request_loads(g);
  chip_list_pool_.release(std::move(touched_chips));
  kick_board_updater();
  kick_board_guider();
  maybe_switch_partition();
}

// ---------------------------------------------------------------------------
// Cross-device forwarding (board shard, array-attached only)
// ---------------------------------------------------------------------------

void FlashWalkerEngine::forward_walk(PartitionId pid, const rw::Walk& w) {
  ShardSink& bsink = sinks_[kBoardShard];
  const std::uint32_t dst = partition::device_of_partition(pid, array_->devices);
  --active_walks_;
  ++bsink.metrics.forwarded_out_walks;
  bsink.metrics.forwarded_bytes += wbytes();
  auto& buf = fwd_buf_[dst];
  buf.push_back(w);
  if (buf.size() >= array_->forward_batch) {
    flush_forward(dst);
    return;
  }
  if (buf.size() == 1) {
    // First walk in an empty buffer arms the flush timeout, so a straggler
    // that never fills a batch still leaves within forward_timeout_ns. The
    // epoch stamp stales the timer if a size-triggered flush beats it.
    const std::uint64_t epoch = fwd_epoch_[dst];
    sched(kBoardShard, array_->forward_timeout_ns, [this, dst, epoch] {
      if (fwd_epoch_[dst] == epoch && !fwd_buf_[dst].empty()) {
        ++sinks_[kBoardShard].metrics.forward_timeout_flushes;
        flush_forward(dst);
      }
    });
  }
}

void FlashWalkerEngine::flush_forward(std::uint32_t dst) {
  ++fwd_epoch_[dst];
  auto batch = std::move(fwd_buf_[dst]);
  fwd_buf_[dst].clear();
  ++sinks_[kBoardShard].metrics.forward_batches;
  // Serializing the batch out of board DRAM before it crosses the host link.
  dram_->access(bnow(), static_cast<std::uint64_t>(dst) * opt_.accel.pwb_entry_bytes,
                batch.size() * wbytes());
  array_->forward(dst, std::move(batch));
}

void FlashWalkerEngine::array_flush_completions() {
  if (array_ == nullptr || !completion_dirty_) return;
  completion_dirty_ = false;
  std::vector<std::pair<std::uint16_t, std::uint64_t>> deltas;
  for (std::size_t j = 0; j < completion_delta_.size(); ++j) {
    if (completion_delta_[j] == 0) continue;
    deltas.emplace_back(static_cast<std::uint16_t>(j), completion_delta_[j]);
    completion_delta_[j] = 0;
  }
  array_->notify_completed(std::move(deltas));
}

void FlashWalkerEngine::receive_forwarded(std::vector<rw::Walk> walks) {
  ShardSink& bsink = sinks_[kBoardShard];
  bsink.metrics.forwarded_in_walks += walks.size();
  for (const rw::Walk& w : walks) {
    // Re-admission with foreigner-buffer semantics: the walk lands in its
    // partition's pending list and, unless that partition is being worked
    // on right now, charges the board's foreigner buffer like any other
    // out-of-partition walk.
    const SubgraphId sg =
        w.prewalked_sg != kInvalidSubgraph ? w.prewalked_sg : pg_->subgraph_of(w.cur);
    const PartitionId pid = pg_->partition_of(sg);
    pending_[pid].push_back(w);
    if (!partition_started_ || pid != current_partition_) {
      board_.foreigner_buffered_bytes += wbytes();
      if (board_.foreigner_buffered_bytes >= opt_.accel.foreigner_buffer_bytes) {
        flush_walk_pages(board_.foreigner_buffered_bytes,
                         bsink.metrics.foreigner_flush_pages);
        board_.foreigner_buffered_bytes = 0;
      }
    }
  }
  inject_admitted_walks();
}

// ---------------------------------------------------------------------------
// Chip level (channel shard)
// ---------------------------------------------------------------------------

void FlashWalkerEngine::kick_chip(ChipState& c) {
  if (sinks_[chip_shard(c)].done) return;
  report_drained_slots(c);
  if (c.processing) return;
  const bool has_walks = std::any_of(c.slots.begin(), c.slots.end(),
                                     [](const LoadedSg& s) { return !s.queue.empty(); });
  if (!has_walks) return;
  c.processing = true;
  sched_at(chip_shard(c), std::max(shard(chip_shard(c)).now(), c.unit.busy_until()),
           [this, &c] { process_chip(c); });
}

void FlashWalkerEngine::report_drained_slots(ChipState& c) {
  if (sinks_[chip_shard(c)].done) return;
  const std::uint32_t g = c.global;
  for (std::size_t i = 0; i < c.slots.size(); ++i) {
    LoadedSg& s = c.slots[i];
    if (!s.queue.empty() || s.reported) continue;
    s.reported = true;
    // Staged, not sent: the window-flush hook coalesces every drained-slot
    // report the shard produced this window into one board message.
    stage_board_op(chip_shard(c),
                   BoardOp{BoardOp::Kind::kDrained, g,
                           static_cast<std::uint32_t>(i),
                           shard(chip_shard(c)).now(), {}});
  }
}

void FlashWalkerEngine::process_chip(ChipState& c) {
  c.processing = false;
  // Round-robin over slots with walks.
  LoadedSg* slot = nullptr;
  for (std::size_t i = 0; i < c.slots.size(); ++i) {
    LoadedSg& s = c.slots[(c.rr + i) % c.slots.size()];
    if (!s.queue.empty()) {
      slot = &s;
      c.rr = static_cast<std::uint32_t>((c.rr + i + 1) % c.slots.size());
      break;
    }
  }
  if (slot == nullptr) {
    report_drained_slots(c);
    return;
  }

  ShardSink& sink = sinks_[chip_shard(c)];
  const std::uint64_t roving_cap =
      std::max<std::uint64_t>(1, opt_.accel.chip.roving_buffer_bytes / wbytes());
  const auto& sg = pg_->subgraph(slot->sg);
  const Tick ucycle = opt_.accel.chip.updater_cycle;
  const Tick gcycle = opt_.accel.chip.guider_cycle;

  Tick cost = 0;
  std::uint32_t processed = 0;
  bool stalled = false;
  std::vector<rw::Walk> completed = sink.walk_pool.acquire();
  while (processed < opt_.accel.batch_walks && !slot->queue.empty()) {
    if (c.roving.size() >= roving_cap) {
      stalled = true;  // roving buffer full: wait for the channel poll
      break;
    }
    rw::Walk w = slot->queue.front();
    slot->queue.pop_front();
    ++processed;

    const HopOutcome hop = update_walk(w, sg, sink);
    cost += (5 + hop.extra_cycles) * ucycle;
    ++sink.metrics.chip_updates;
    ++c.updates;

    if (hop.completed) {
      completed.push_back(w);  // finishes at the board (shared FTL/DRAM path)
      continue;
    }

    // Guider: compare against the chip's loaded subgraphs. Walks landing on
    // a dense vertex always rove — the board must pre-walk them.
    cost += match_cycles(c.slots.size()) * gcycle;
    LoadedSg* dest = nullptr;
    if (!pg_->is_dense_vertex(w.cur)) {
      for (auto& s : c.slots) {
        if (!s.reported && s.sg != kInvalidSubgraph && !pg_->subgraph(s.sg).dense &&
            walk_in_sg(w, pg_->subgraph(s.sg))) {
          dest = &s;
          break;
        }
      }
    }
    if (dest != nullptr) {
      dest->queue.push_back(w);
    } else {
      c.roving.push_back(w);
    }
  }

  if (processed == 0) {
    // Stalled before doing any work (roving buffer full): stay idle and let
    // the next channel poll drain the buffer and re-kick us.
    sink.walk_pool.release(std::move(completed));
    return;
  }
  (void)stalled;
  const Tick completion = c.unit.acquire(shard(chip_shard(c)).now(), cost);
  if (opt_.trace != nullptr && cost > 0) {
    opt_.trace->complete(c.trace_track, "update", completion - cost, completion,
                         processed, "walks");
  }
  if (!completed.empty()) {
    stage_board_op(chip_shard(c),
                   BoardOp{BoardOp::Kind::kCompleted, c.global, 0, completion,
                           std::move(completed)});
  } else {
    sink.walk_pool.release(std::move(completed));
  }
  c.processing = true;
  sched_at(chip_shard(c), completion, [this, &c] {
    c.processing = false;
    kick_chip(c);
  });
}

// ---------------------------------------------------------------------------
// Board-side load path
// ---------------------------------------------------------------------------

void FlashWalkerEngine::board_slot_drained(std::uint32_t g, std::size_t slot_idx) {
  // The chip consumed everything the board installed into this slot (and
  // its guider will not refill it while the report is outstanding), so the
  // slot is a safe load target. A grant dispatched before this report
  // landed keeps the slot `loading`; the belief refreshes at install time.
  SlotView& s = chip_views_[g].slots[slot_idx];
  if (!s.loading) s.empty = true;
  board_request_loads(g);
}

void FlashWalkerEngine::board_request_loads(std::uint32_t g) {
  ChipView& cv = chip_views_[g];
  for (std::size_t i = 0; i < cv.slots.size(); ++i) {
    SlotView& slot = cv.slots[i];
    if (slot.loading || !slot.empty) continue;
    auto eligible = [&](SubgraphId sg) {
      for (const SlotView& s : cv.slots) {
        if (s.loading && s.sg == sg) return false;
      }
      return true;
    };
    const auto pick = scheduler_->pick_for_chip(g, eligible);
    if (!pick) break;  // nothing pending for this chip
    sinks_[kBoardShard].metrics.scheduler_compare_ops += pick->compare_ops;
    // If the subgraph is already resident in another slot, refresh that
    // slot (walk fetch only, no flash page reads).
    std::size_t target = i;
    for (std::size_t j = 0; j < cv.slots.size(); ++j) {
      if (!cv.slots[j].loading && cv.slots[j].sg == pick->sg) {
        target = j;
        break;
      }
    }
    start_load(g, target, pick->sg, pick->compare_ops);
  }
}

void FlashWalkerEngine::start_load(std::uint32_t g, std::size_t slot_idx, SubgraphId sg,
                                   std::uint32_t compare_ops) {
  ChipState& c = chips_[g];  // topology + trace lane only; queues are chip-owned
  SlotView& vslot = chip_views_[g].slots[slot_idx];
  const bool refresh = vslot.sg == sg;
  // `vslot.sg` keeps the *installed* subgraph until the install lands (set
  // in the t_install callback below), mirroring the serial engine, where
  // slot.sg changed only at install. The eligibility filter therefore
  // excludes only (loading, installed-sg) pairs — an in-flight first load
  // of `sg` does not hide it from later picks, and those picks load `sg`
  // into further empty slots. These speculative duplicate loads are part
  // of the reference dynamics (they are what makes plane reads dominate
  // in small configs) and are preserved, not "fixed".
  vslot.loading = true;
  vslot.empty = false;

  ShardSink& bsink = sinks_[kBoardShard];
  // Take the buffered walks now; new arrivals accumulate for the next load.
  std::vector<rw::Walk> walks = std::move(pwb_walks_[sg]);
  pwb_walks_[sg] = bsink.walk_pool.acquire();
  const std::uint64_t fl_count = fl_walks_[sg].size();
  walks.insert(walks.end(), fl_walks_[sg].begin(), fl_walks_[sg].end());
  fl_walks_[sg].clear();
  // A full load grants the subgraph's plane-read pages to the jobs whose
  // walks it serves (the weighted-fair deficit currency); a refresh fetches
  // walks only and grants nothing.
  scheduler_->on_subgraph_loaded(sg,
                                 refresh ? 0 : layout_->placement(sg).num_pages);

  const Tick now = bnow();
  // Scheduling decision cost runs on the board guider pool.
  const Tick sched_ns = static_cast<Tick>(compare_ops) * opt_.accel.board.guider_cycle /
                        std::max<std::uint32_t>(1, opt_.accel.board.guiders);
  const Tick t_cmd = board_.guider_unit.acquire(now, sched_ns);
  // Load command travels over the channel bus (extended ONFI command).
  const Tick cmd_done = flash_->channel_transfer(t_cmd, c.channel, 16);
  // Walks (from DRAM/flash) and the clean slice of the subgraph both gate
  // slot activation; pages stuck in the retry ladder (and board-rebuilt
  // uncorrectable pages) only gate the parked walks, so the plane slot goes
  // back to work while recovery proceeds in the background.
  Tick fetch_done = cmd_done;
  Tick sg_clean = cmd_done;
  Tick sg_full = cmd_done;
  std::uint32_t faulty_pages = 0;
  std::uint32_t sg_pages = 0;

  if (!refresh) {
    const auto& place = layout_->placement(sg);
    // The in-storage fast path: pages stream from the chip's own planes
    // into the subgraph buffer — no ONFI transfer.
    const ssd::ChipReadResult rd = flash_->read_chip_pages_checked(
        t_cmd, c.channel, c.chip, place.start_plane, place.num_pages,
        /*over_channel=*/false, /*fault_base=*/place.first_ppn);
    sg_pages = place.num_pages;
    faulty_pages = rd.retried_pages + rd.uncorrectable_pages;
    sg_clean = std::max(sg_clean, rd.clean_done);
    sg_full = std::max(sg_full, rd.done);
    if (rd.uncorrectable_pages > 0) {
      // Lost pages are rebuilt through the board-level path (RAID-style
      // reconstruction): each crosses the channel and pays the recovery
      // latency, but the load always completes — a deterministic fault
      // oracle would otherwise fail the same pages on every re-load.
      const std::uint64_t bytes =
          static_cast<std::uint64_t>(rd.uncorrectable_pages) * opt_.ssd.topo.page_bytes;
      const Tick rebuilt =
          flash_->channel_transfer(rd.done, c.channel, bytes) +
          static_cast<Tick>(rd.uncorrectable_pages) * opt_.ssd.reliability.recovery_latency;
      sg_full = std::max(sg_full, rebuilt);
      bsink.metrics.recovered_pages += rd.uncorrectable_pages;
      ++bsink.metrics.degraded_loads;
      if (opt_.trace != nullptr) {
        opt_.trace->complete(c.trace_track, "recover", rd.done, rebuilt,
                             rd.uncorrectable_pages, "pages");
      }
    }
    ++bsink.metrics.subgraph_loads;
    bsink.metrics.subgraph_load_pages += place.num_pages;
  }

  // Walk fetch: pwb walks come from on-board DRAM over the channel bus;
  // fl walks are read back from flash pages.
  const std::uint64_t pwb_bytes = (walks.size() - fl_count) * wbytes();
  if (pwb_bytes > 0) {
    const Tick t_dram = dram_->access(
        t_cmd, static_cast<std::uint64_t>(sg) * opt_.accel.pwb_entry_bytes, pwb_bytes);
    fetch_done = std::max(fetch_done, flash_->channel_transfer(t_dram, c.channel, pwb_bytes));
  }
  if (fl_count > 0) {
    const std::uint64_t fl_bytes = fl_count * wbytes();
    const auto pages = static_cast<std::uint32_t>(
        (fl_bytes + opt_.ssd.topo.page_bytes - 1) / opt_.ssd.topo.page_bytes);
    fetch_done = std::max(fetch_done,
                          flash_->read_chip_pages(t_cmd, c.channel, c.chip, 0, pages,
                                                  /*over_channel=*/true));
    bsink.metrics.walk_reload_pages += pages;
  }

  const Tick t_install = std::max(fetch_done, sg_clean);
  const Tick t_full = std::max(fetch_done, sg_full);

  if (opt_.trace != nullptr) {
    opt_.trace->complete(c.trace_track, refresh ? "walk_fetch" : "sg_load", t_cmd, t_full,
                         sg, "subgraph");
  }

  // Park a proportional share of the batch behind the retrying/lost pages;
  // the rest start at `t_install`. A walk parks at most once per hop
  // (`parked` is cleared by its next update), so faults delay walks but can
  // never starve them.
  if (faulty_pages > 0 && sg_pages > 0 && !walks.empty()) {
    const std::uint64_t npark =
        std::min<std::uint64_t>(walks.size(),
                                (walks.size() * faulty_pages + sg_pages - 1) / sg_pages);
    std::vector<rw::Walk> parked = bsink.walk_pool.acquire();
    std::vector<rw::Walk> ready = bsink.walk_pool.acquire();
    for (auto& w : walks) {
      if (parked.size() < npark && !w.parked) {
        w.parked = true;
        parked.push_back(w);
      } else {
        ready.push_back(w);
      }
    }
    walks.swap(ready);
    bsink.walk_pool.release(std::move(ready));
    if (!parked.empty()) {
      bsink.metrics.parked_walks += parked.size();
      for (const auto& w : parked) ++jobs_[w.job].parked;
      const Tick t_parked = t_full + opt_.ssd.reliability.retry_backoff;
      if (opt_.trace != nullptr) {
        opt_.trace->complete(c.trace_track, "parked", t_install, t_parked,
                             parked.size(), "walks");
      }
      xsend(kBoardShard, chip_shard(c), t_parked,
            [this, g, slot_idx, sg, ws = std::move(parked)]() mutable {
        ChipState& cc = chips_[g];
        LoadedSg& s = cc.slots[slot_idx];
        if (s.sg == sg) {
          for (auto& w : ws) s.queue.push_back(w);
          sinks_[chip_shard(cc)].walk_pool.release(std::move(ws));
          kick_chip(cc);
        } else {
          // The slot moved on while these walks waited out the retries;
          // re-route them through the board instead of blocking the chip.
          stage_board_op(chip_shard(cc),
                         BoardOp{BoardOp::Kind::kGuide, 0, 0,
                                 shard(chip_shard(cc)).now(), std::move(ws)});
        }
      });
    } else {
      bsink.walk_pool.release(std::move(parked));
    }
  }

  // The board's view flips to the new subgraph exactly at t_install, so a
  // later dispatch to the same slot can never overtake this one in flight.
  sched_at(kBoardShard, t_install, [this, g, slot_idx, sg] {
    SlotView& v = chip_views_[g].slots[slot_idx];
    v.loading = false;
    v.sg = sg;
  });
  xsend(kBoardShard, chip_shard(c), t_install,
        [this, g, slot_idx, sg, walks = std::move(walks)]() mutable {
    ChipState& cc = chips_[g];
    LoadedSg& s = cc.slots[slot_idx];
    if (s.sg != sg && !s.queue.empty()) {
      // Chip-side guider appends can land in a slot the board re-targeted
      // while this load was in flight; send the stale queue back through
      // the board (walk conservation — nothing is dropped).
      ShardSink& sink = sinks_[chip_shard(cc)];
      std::vector<rw::Walk> stale = sink.walk_pool.acquire();
      stale.insert(stale.end(), s.queue.begin(), s.queue.end());
      s.queue.clear();
      stage_board_op(chip_shard(cc),
                     BoardOp{BoardOp::Kind::kGuide, 0, 0,
                             shard(chip_shard(cc)).now(), std::move(stale)});
    }
    s.sg = sg;
    s.reported = false;
    for (auto& w : walks) s.queue.push_back(w);
    sinks_[chip_shard(cc)].walk_pool.release(std::move(walks));
    kick_chip(cc);
  });
}

// ---------------------------------------------------------------------------
// Channel level (channel shard)
// ---------------------------------------------------------------------------

void FlashWalkerEngine::poll_channel(ChannelState& ch) {
  const sim::ShardId cs = channel_shard(ch);
  ShardSink& sink = sinks_[cs];
  if (sink.done) return;
  std::vector<rw::Walk> pulled = sink.walk_pool.acquire();
  const auto chips_per_channel = opt_.ssd.topo.chips_per_channel;
  for (std::uint32_t k = 0; k < chips_per_channel; ++k) {
    ChipState& c = chips_[ch.index * chips_per_channel + k];
    if (c.roving.empty()) continue;
    pulled.insert(pulled.end(), c.roving.begin(), c.roving.end());
    c.roving.clear();
    kick_chip(c);  // a stalled chip can resume
  }
  if (!pulled.empty()) {
    sink.metrics.roving_walks += pulled.size();
    const Tick done = ch.bus.transfer(shard(cs).now(), pulled.size() * wbytes());
    sched_at(cs, done, [this, &ch, walks = std::move(pulled)]() mutable {
      receive_roving(ch, std::move(walks));
    });
  } else {
    sink.walk_pool.release(std::move(pulled));
  }
  sched(cs, opt_.accel.roving_poll_interval, [this, &ch] { poll_channel(ch); });
}

void FlashWalkerEngine::receive_roving(ChannelState& ch, std::vector<rw::Walk> walks) {
  const sim::ShardId cs = channel_shard(ch);
  ShardSink& sink = sinks_[cs];
  const Tick gcycle = opt_.accel.channel.guider_cycle;
  const std::uint32_t guiders = std::max<std::uint32_t>(1, opt_.accel.channel.guiders);

  Tick cost = 0;
  std::vector<rw::Walk> to_board = sink.walk_pool.acquire();
  for (auto& w : walks) {
    // Hot-subgraph check (HS) — dense-vertex walks always continue to the
    // board for pre-walking.
    bool placed = false;
    if (opt_.accel.features.hot_subgraphs && !ch.hot.empty() &&
        !pg_->is_dense_vertex(w.cur)) {
      cost += match_cycles(ch.hot.size()) * gcycle / guiders;
      for (auto& slot : ch.hot) {
        if (walk_in_sg(w, pg_->subgraph(slot.sg))) {
          const std::uint64_t cap =
              opt_.accel.channel.walk_queue_bytes /
              std::max<std::uint64_t>(1, ch.hot.size() * wbytes());
          if (slot.queue.size() < cap) {
            slot.queue.push_back(w);
            placed = true;
          }
          break;
        }
      }
    }
    if (placed) continue;

    // Approximate walk search (WQ): tag the walk with its subgraph range so
    // the board searches one range instead of the whole table.
    if (opt_.accel.features.walk_query) {
      const auto r = mtab_->find_range(w.cur);
      cost += static_cast<Tick>(r.steps) * gcycle / guiders;
      ++sink.metrics.range_searches;
      if (r.found()) {
        w.range_tag = r.range_id;
        ++sink.metrics.range_tagged_walks;
      }
    }
    to_board.push_back(w);
  }

  const Tick completion = ch.unit.acquire(shard(cs).now(), cost);
  if (opt_.trace != nullptr && cost > 0) {
    opt_.trace->complete(ch.trace_track, "rove", completion - cost, completion,
                         walks.size(), "walks");
  }
  if (!to_board.empty()) {
    sink.metrics.to_board_walks += to_board.size();
    stage_board_op(cs, BoardOp{BoardOp::Kind::kGuide, 0, 0, completion,
                               std::move(to_board)});
  } else {
    sink.walk_pool.release(std::move(to_board));
  }
  sink.walk_pool.release(std::move(walks));
  kick_channel(ch);
}

void FlashWalkerEngine::kick_channel(ChannelState& ch) {
  if (ch.processing || sinks_[channel_shard(ch)].done) return;
  const bool has_walks = std::any_of(ch.hot.begin(), ch.hot.end(),
                                     [](const LoadedSg& s) { return !s.queue.empty(); });
  if (!has_walks) return;
  ch.processing = true;
  sched_at(channel_shard(ch),
           std::max(shard(channel_shard(ch)).now(), ch.unit.busy_until()),
           [this, &ch] { process_channel(ch); });
}

void FlashWalkerEngine::process_channel(ChannelState& ch) {
  ch.processing = false;
  LoadedSg* slot = nullptr;
  for (std::size_t i = 0; i < ch.hot.size(); ++i) {
    LoadedSg& s = ch.hot[(ch.rr + i) % ch.hot.size()];
    if (!s.queue.empty()) {
      slot = &s;
      ch.rr = static_cast<std::uint32_t>((ch.rr + i + 1) % ch.hot.size());
      break;
    }
  }
  if (slot == nullptr) return;

  const sim::ShardId cs = channel_shard(ch);
  ShardSink& sink = sinks_[cs];
  const auto& sg = pg_->subgraph(slot->sg);
  const Tick ucycle = opt_.accel.channel.updater_cycle;
  const Tick gcycle = opt_.accel.channel.guider_cycle;
  const std::uint32_t updaters = std::max<std::uint32_t>(1, opt_.accel.channel.updaters);
  const std::uint32_t guiders = std::max<std::uint32_t>(1, opt_.accel.channel.guiders);

  Tick cost = 0;
  std::vector<rw::Walk> to_board = sink.walk_pool.acquire();
  std::vector<rw::Walk> completed = sink.walk_pool.acquire();
  std::uint32_t processed = 0;
  while (processed < opt_.accel.batch_walks && !slot->queue.empty()) {
    rw::Walk w = slot->queue.front();
    slot->queue.pop_front();
    ++processed;

    const HopOutcome hop = update_walk(w, sg, sink);
    cost += (5 + hop.extra_cycles) * ucycle / updaters;
    ++sink.metrics.channel_updates;
    ++ch.updates;

    if (hop.completed) {
      completed.push_back(w);  // finishes at the board (shared FTL/DRAM path)
      continue;
    }

    bool placed = false;
    if (!pg_->is_dense_vertex(w.cur)) {
      cost += match_cycles(ch.hot.size()) * gcycle / guiders;
      for (auto& s : ch.hot) {
        if (walk_in_sg(w, pg_->subgraph(s.sg))) {
          s.queue.push_back(w);
          placed = true;
          break;
        }
      }
    }
    if (!placed) {
      if (opt_.accel.features.walk_query) {
        const auto r = mtab_->find_range(w.cur);
        cost += static_cast<Tick>(r.steps) * gcycle / guiders;
        ++sink.metrics.range_searches;
        if (r.found()) {
          w.range_tag = r.range_id;
          ++sink.metrics.range_tagged_walks;
        }
      }
      to_board.push_back(w);
    }
  }

  const Tick completion = ch.unit.acquire(shard(cs).now(), cost);
  if (opt_.trace != nullptr && cost > 0) {
    opt_.trace->complete(ch.trace_track, "update", completion - cost, completion,
                         processed, "walks");
  }
  if (!completed.empty()) {
    stage_board_op(cs, BoardOp{BoardOp::Kind::kCompleted, kBoardOrigin, 0,
                               completion, std::move(completed)});
  } else {
    sink.walk_pool.release(std::move(completed));
  }
  if (!to_board.empty()) {
    sink.metrics.to_board_walks += to_board.size();
    stage_board_op(cs, BoardOp{BoardOp::Kind::kGuide, 0, 0, completion,
                               std::move(to_board)});
  } else {
    sink.walk_pool.release(std::move(to_board));
  }
  ch.processing = true;
  sched_at(cs, completion, [this, &ch] {
    ch.processing = false;
    kick_channel(ch);
  });
}

// ---------------------------------------------------------------------------
// Board level
// ---------------------------------------------------------------------------

void FlashWalkerEngine::stage_board_op(sim::ShardId src, BoardOp op) {
  sinks_[src].board_stage.push_back(std::move(op));
}

void FlashWalkerEngine::flush_board_stage(sim::ShardId src) {
  // Runs from the shard's window-flush hook: everything this shard staged
  // for the board during the window leaves as ONE cross-shard message,
  // delivered at the latest intended arrival tick (xsend floors the delay
  // to the handoff minimum). Ops inside the batch keep their staging order,
  // which is the order the serial reference would have delivered them in —
  // same tick, same source, ascending send sequence.
  ShardSink& sink = sinks_[src];
  if (sink.board_stage.empty()) return;
  Tick deliver = 0;
  for (const BoardOp& op : sink.board_stage) deliver = std::max(deliver, op.at);
  ++sink.board_batches;
  sink.board_batched_ops += sink.board_stage.size();
  std::vector<BoardOp> ops = std::move(sink.board_stage);
  sink.board_stage.clear();
  xsend(src, kBoardShard, deliver, [this, ops = std::move(ops)]() mutable {
    apply_board_batch(std::move(ops));
  });
}

void FlashWalkerEngine::apply_board_batch(std::vector<BoardOp> ops) {
  for (BoardOp& op : ops) {
    switch (op.kind) {
      case BoardOp::Kind::kDrained:
        board_slot_drained(op.origin, op.slot);
        break;
      case BoardOp::Kind::kCompleted:
        board_receive_completed(op.origin, std::move(op.walks));
        break;
      case BoardOp::Kind::kGuide:
        enqueue_board(std::move(op.walks));
        break;
    }
  }
}

void FlashWalkerEngine::enqueue_board(std::vector<rw::Walk> walks) {
  for (auto& w : walks) board_.guide.push_back(w);
  sinks_[kBoardShard].walk_pool.release(std::move(walks));
  kick_board_guider();
}

void FlashWalkerEngine::board_receive_completed(std::uint32_t origin,
                                                std::vector<rw::Walk> walks) {
  // Chip-level finishes buffer in the (board-tracked) per-chip completed
  // buffer; channel-level finishes share the board's own buffer — the same
  // accounting the serial engine used, now fed by explicit messages.
  std::uint64_t& bytes = origin == kBoardOrigin
                             ? board_.completed_buffered_bytes
                             : chip_views_[origin].completed_buffered_bytes;
  for (const rw::Walk& w : walks) {
    complete_walk(w, bytes, opt_.accel.completed_buffer_bytes);
  }
  sinks_[kBoardShard].walk_pool.release(std::move(walks));
  array_flush_completions();  // one fabric notification per completed batch
  maybe_switch_partition();
}

void FlashWalkerEngine::kick_board_guider() {
  if (board_.guiding || board_.guide.empty() || done_) return;
  board_.guiding = true;
  sched_at(kBoardShard, std::max(bnow(), board_.guider_unit.busy_until()),
           [this] { process_board_guider(); });
}

void FlashWalkerEngine::process_board_guider() {
  board_.guiding = false;
  if (board_.guide.empty() || done_) return;

  const Tick gcycle = opt_.accel.board.guider_cycle;
  const std::uint32_t guiders = std::max<std::uint32_t>(1, opt_.accel.board.guiders);
  const std::uint32_t pool = guider_pool_shards();
  ShardSink& bsink = sinks_[kBoardShard];

  // The board drains bigger batches: it has 128 guiders. The dispatch pass
  // scans each walk once to pick its (job, walk-batch) sub-shard; the
  // per-walk routing work is charged on the sub-shards' guider slices.
  const std::uint32_t batch = opt_.accel.batch_walks * 4;
  std::vector<std::vector<rw::Walk>> chunks(pool);
  for (auto& chunk : chunks) chunk = bsink.walk_pool.acquire();
  std::uint32_t processed = 0;
  while (processed < batch && !board_.guide.empty()) {
    rw::Walk w = board_.guide.front();
    board_.guide.pop_front();
    ++processed;
    chunks[guider_shard_of(w)].push_back(w);
  }
  const Tick cost = static_cast<Tick>(processed) * gcycle / guiders;
  const Tick t_dispatch = board_.guider_unit.acquire(bnow(), cost);
  if (opt_.trace != nullptr && cost > 0) {
    opt_.trace->complete(board_.guider_track, "dispatch", t_dispatch - cost,
                         t_dispatch, processed, "walks");
  }
  // Partition identity travels with the chunk; sub-shards never read the
  // live current_partition_/partition_epoch_ (no cross-shard reads). The
  // snapshot stays valid: maybe_switch_partition requires active_walks_ == 0
  // and these walks are still active until their decisions apply.
  const PartitionId part = current_partition_;
  const std::uint64_t epoch = partition_epoch_;
  for (std::uint32_t k = 0; k < pool; ++k) {
    if (chunks[k].empty()) {
      bsink.walk_pool.release(std::move(chunks[k]));
      continue;
    }
    xsend(kBoardShard, guider_shard_id(k), t_dispatch,
          [this, k, part, epoch, ws = std::move(chunks[k])]() mutable {
      guide_route_chunk(k, part, epoch, std::move(ws));
    });
  }
  // Pipelined: the next batch dispatches as soon as the dispatch pass's
  // guider time frees; routing rounds overlap, and their decision messages
  // apply in the deterministic (tick, src, seq) merge order.
  board_.guiding = true;
  sched_at(kBoardShard, t_dispatch, [this] {
    board_.guiding = false;
    kick_board_guider();
  });
}

void FlashWalkerEngine::guide_route_chunk(std::uint32_t k, PartitionId part,
                                          std::uint64_t epoch,
                                          std::vector<rw::Walk> walks) {
  GuiderShard& g = gshards_[k];
  const sim::ShardId gs = guider_shard_id(k);
  ShardSink& sink = sinks_[gs];
  if (g.epoch != epoch) {
    // A partition switch replaced the mapping entries the caches index.
    g.epoch = epoch;
    for (auto& cache : g.caches) cache->clear();
  }

  std::uint64_t cycles = 0;
  std::vector<RouteDecision> decs;
  decs.reserve(walks.size());
  for (rw::Walk& w : walks) {
    decs.push_back(route_decide(w, part, g, sink, cycles));
  }
  const std::size_t n = walks.size();
  sink.walk_pool.release(std::move(walks));

  // This sub-shard models its 1/K slice of the board guider pool.
  const Tick gcycle = opt_.accel.board.guider_cycle;
  const std::uint32_t width = std::max<std::uint32_t>(
      1, std::max<std::uint32_t>(1, opt_.accel.board.guiders) /
             guider_pool_shards());
  const Tick cost = static_cast<Tick>(cycles) * gcycle / width;
  const Tick completion = g.guider_unit.acquire(shard(gs).now(), cost);
  if (opt_.trace != nullptr && cost > 0) {
    opt_.trace->complete(board_.guider_track, "guide", completion - cost,
                         completion, n, "walks");
  }
  xsend(gs, kBoardShard, completion, [this, ds = std::move(decs)]() mutable {
    apply_route_decisions(std::move(ds));
  });
}

void FlashWalkerEngine::kick_board_updater() {
  if (board_.updating || done_) return;
  const bool has_walks = std::any_of(board_.hot.begin(), board_.hot.end(),
                                     [](const LoadedSg& s) { return !s.queue.empty(); });
  if (!has_walks) return;
  board_.updating = true;
  sched_at(kBoardShard, std::max(bnow(), board_.updater_unit.busy_until()),
           [this] { process_board_updater(); });
}

void FlashWalkerEngine::process_board_updater() {
  board_.updating = false;
  LoadedSg* slot = nullptr;
  for (std::size_t i = 0; i < board_.hot.size(); ++i) {
    LoadedSg& s = board_.hot[(board_.rr + i) % board_.hot.size()];
    if (!s.queue.empty()) {
      slot = &s;
      board_.rr = static_cast<std::uint32_t>((board_.rr + i + 1) % board_.hot.size());
      break;
    }
  }
  if (slot == nullptr) return;

  ShardSink& bsink = sinks_[kBoardShard];
  std::vector<rw::Walk> ws = bsink.walk_pool.acquire();
  std::uint32_t processed = 0;
  while (processed < opt_.accel.batch_walks && !slot->queue.empty()) {
    ws.push_back(slot->queue.front());
    slot->queue.pop_front();
    ++processed;
  }
  const SubgraphId sgid = slot->sg;
  const std::uint32_t k = upd_rr_++ % guider_pool_shards();
  xsend(kBoardShard, guider_shard_id(k), bnow(),
        [this, k, sgid, ws = std::move(ws)]() mutable {
    update_board_chunk(k, sgid, std::move(ws));
  });
  // Pipelined: the next hot batch dispatches immediately (to the next
  // sub-shard, round-robin); the sub-units' serial resources pace the
  // actual hop work.
  kick_board_updater();
}

void FlashWalkerEngine::update_board_chunk(std::uint32_t k, SubgraphId sgid,
                                           std::vector<rw::Walk> walks) {
  GuiderShard& g = gshards_[k];
  const sim::ShardId gs = guider_shard_id(k);
  ShardSink& sink = sinks_[gs];
  const auto& sg = pg_->subgraph(sgid);
  const Tick ucycle = opt_.accel.board.updater_cycle;
  // This sub-shard models its 1/K slice of the board updater pool.
  const std::uint32_t width = std::max<std::uint32_t>(
      1, std::max<std::uint32_t>(1, opt_.accel.board.updaters) /
             guider_pool_shards());

  Tick cost = 0;
  std::vector<rw::Walk> completed = sink.walk_pool.acquire();
  std::vector<rw::Walk> to_guide = sink.walk_pool.acquire();
  for (rw::Walk& w : walks) {
    const HopOutcome hop = update_walk(w, sg, sink);
    cost += (5 + hop.extra_cycles) * ucycle / width;
    ++sink.metrics.board_updates;
    ++g.updates;
    if (hop.completed) {
      completed.push_back(w);
    } else {
      to_guide.push_back(w);  // updated walks re-enter the board guide buffer
    }
  }
  const std::size_t n = walks.size();
  sink.walk_pool.release(std::move(walks));

  const Tick completion = g.updater_unit.acquire(shard(gs).now(), cost);
  if (opt_.trace != nullptr && cost > 0) {
    opt_.trace->complete(board_.updater_track, "update", completion - cost,
                         completion, n, "walks");
  }
  xsend(gs, kBoardShard, completion,
        [this, done = std::move(completed), guide = std::move(to_guide)]() mutable {
    apply_board_updates(std::move(done), std::move(guide));
  });
}

void FlashWalkerEngine::apply_board_updates(std::vector<rw::Walk> completed,
                                            std::vector<rw::Walk> to_guide) {
  ShardSink& bsink = sinks_[kBoardShard];
  for (const rw::Walk& w : completed) {
    complete_walk(w, board_.completed_buffered_bytes,
                  opt_.accel.completed_buffer_bytes);
  }
  bsink.walk_pool.release(std::move(completed));
  array_flush_completions();  // hot-subgraph completions notify per batch too
  if (!to_guide.empty()) {
    enqueue_board(std::move(to_guide));
  } else {
    bsink.walk_pool.release(std::move(to_guide));
  }
  kick_board_updater();
  maybe_switch_partition();
}

// ---------------------------------------------------------------------------
// Partition lifecycle / termination
// ---------------------------------------------------------------------------

void FlashWalkerEngine::check_done() {
  // Array-attached boards never self-terminate: only the coordinator sees
  // array-wide completion, and it calls array_finish_run on every board.
  if (array_ != nullptr) return;
  if (!done_ && sinks_[kBoardShard].metrics.walks_completed == total_expected_) {
    done_ = true;
    done_tick_ = bnow();
    if (total_expected_ > 0) broadcast_done();
  }
}

void FlashWalkerEngine::broadcast_done() {
  // Quiesce: channel shards keep polling until they observe their done
  // flag, then stop rescheduling — the queues drain and the run ends. No
  // walk-carrying event can still be in flight here (every walk has
  // completed at the board), so dropping future kicks loses nothing.
  const Tick at = bnow();
  for (auto& ch : channels_) {
    const sim::ShardId cs = channel_shard(ch);
    xsend(kBoardShard, cs, at, [this, cs] { sinks_[cs].done = true; });
  }
}

void FlashWalkerEngine::maybe_switch_partition() {
  if (done_ || active_walks_ > 0) return;
  // Also require the accelerator pipelines to be empty: in-flight batches
  // still hold active walks, so active_walks_ == 0 already implies drained
  // queues; this is a pure safety re-check for the buffers.
  if (!board_.guide.empty()) return;

  const std::uint32_t parts = pg_->num_partitions();
  for (std::uint32_t step = 1; step <= parts; ++step) {
    const PartitionId p = (current_partition_ + step) % parts;
    if (!pending_[p].empty()) {
      ++sinks_[kBoardShard].metrics.partition_switches;
      begin_partition(p, /*charge_io=*/true);
      return;
    }
  }
  if (admitted_jobs_ < jobs_.size()) {
    // The device idles until a future arrival (or a queued admission) brings
    // new walks; the pending arrival events keep the simulation alive.
    return;
  }
  if (array_ != nullptr) {
    // An idle array board is normal mid-run: its walks may all be executing
    // on other boards right now. Conservation (started + forwarded_in ==
    // completed + forwarded_out) is checked board-wide in finalize().
    return;
  }
  if (sinks_[kBoardShard].metrics.walks_completed !=
      sinks_[kBoardShard].metrics.walks_started) {
    throw std::logic_error("FlashWalkerEngine: walks lost (conservation violated)");
  }
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

void FlashWalkerEngine::merge_sinks() {
  const VertexId nv = pg_->graph().num_vertices();
  for (auto& jc : jobs_) jc.hops = 0;
  for (const ShardSink& sink : sinks_) {
    metrics_ += sink.metrics;
    for (std::size_t j = 0; j < jobs_.size(); ++j) jobs_[j].hops += sink.job_hops[j];
    if (!sink.visits.empty()) {
      for (VertexId v = 0; v < nv; ++v) visits_[v] += sink.visits[v];
    }
  }
  if (track_job_visits_) {
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      JobRt& jc = jobs_[j];
      if (!jc.admitted) continue;  // never-admitted jobs report no vectors
      jc.visits.assign(nv, 0);
      for (const ShardSink& sink : sinks_) {
        const auto& jv = sink.job_visits[j];
        if (jv.empty()) continue;
        for (VertexId v = 0; v < nv; ++v) jc.visits[v] += jv[v];
      }
    }
  }
}

void FlashWalkerEngine::publish_counters(const ShardAuditReport& audit) {
  auto set = [this](const std::string& name, std::uint64_t v) {
    registry_.counter(name).set(v);
  };
  set("engine.walks_started", metrics_.walks_started);
  set("engine.walks_completed", metrics_.walks_completed);
  set("engine.total_hops", metrics_.total_hops);
  set("engine.dead_ends", metrics_.dead_ends);
  set("engine.foreigner_walks", metrics_.foreigner_walks);
  set("engine.partition_switches", metrics_.partition_switches);
  set("sched.compare_ops", metrics_.scheduler_compare_ops);
  set("sched.subgraph_loads", metrics_.subgraph_loads);
  set("sched.subgraph_load_pages", metrics_.subgraph_load_pages);
  set("flash.read_bytes", flash_->read_bytes());
  set("flash.write_bytes", flash_->programmed_bytes());
  std::uint64_t bus_bytes = 0;
  for (const ChannelState& ch : channels_) bus_bytes += ch.bus.bytes_moved();
  set("flash.channel_bytes", flash_->channel_bytes() + bus_bytes);
  set("dram.bytes", dram_->bytes_moved());
  for (const ChipState& c : chips_) {
    const std::string prefix = "chip." + std::to_string(c.global);
    set(prefix + ".updates", c.updates);
    set(prefix + ".busy_ns", c.unit.busy_time());
  }
  for (const ChannelState& ch : channels_) {
    const std::string prefix = "channel." + std::to_string(ch.index);
    set(prefix + ".updates", ch.updates);
    set(prefix + ".busy_ns", ch.unit.busy_time());
  }
  // Board totals span the residue shard plus the guider-pool sub-shards.
  std::uint64_t board_updates = board_.updates;
  Tick guider_busy = board_.guider_unit.busy_time();
  Tick updater_busy = board_.updater_unit.busy_time();
  for (const GuiderShard& g : gshards_) {
    board_updates += g.updates;
    guider_busy += g.guider_unit.busy_time();
    updater_busy += g.updater_unit.busy_time();
  }
  set("board.updates", board_updates);
  set("board.guider.busy_ns", guider_busy);
  set("board.updater.busy_ns", updater_busy);
  if (flash_->reliability_enabled()) {
    // Gated so ideal-NAND runs emit exactly the pre-reliability metrics JSON
    // (the `reliability.*` family is live-updated by the flash array).
    set("engine.parked_walks", metrics_.parked_walks);
    set("engine.recovered_pages", metrics_.recovered_pages);
    set("engine.degraded_loads", metrics_.degraded_loads);
  }
  if (explicit_jobs_) {
    // Per-job and service-level families exist only for explicit multi-job
    // runs, so single-workload runs keep their pre-service counter sets.
    std::vector<double> latencies;
    latencies.reserve(jobs_.size());
    for (const JobRt& jc : jobs_) {
      const std::string prefix = "job." + std::to_string(&jc - jobs_.data());
      set(prefix + ".exec_ns", jc.done_tick - jc.admit_tick);
      set(prefix + ".steps", jc.hops);
      set(prefix + ".parked_walks", jc.parked);
      set(prefix + ".walks", jc.completed);
      set(prefix + ".latency_ns", jc.done_tick - jc.job.arrival);
      latencies.push_back(static_cast<double>(jc.done_tick - jc.job.arrival));
    }
    set("service.jobs", jobs_.size());
    // Nearest-rank (see WalkService::run): SLO percentiles report observed
    // latencies, not interpolations between them.
    set("service.latency_p50_ns",
        static_cast<std::uint64_t>(percentile_nearest_rank(latencies, 50)));
    set("service.latency_p95_ns",
        static_cast<std::uint64_t>(percentile_nearest_rank(latencies, 95)));
    set("service.latency_p99_ns",
        static_cast<std::uint64_t>(percentile_nearest_rank(latencies, 99)));
  }
  if (array_ != nullptr) {
    // The array.* family exists only on array-attached boards, so every
    // single-device run keeps its counter set byte-for-byte.
    set("array.device", array_->device);
    set("array.devices", array_->devices);
    set("array.forwarded_out_walks", metrics_.forwarded_out_walks);
    set("array.forwarded_in_walks", metrics_.forwarded_in_walks);
    set("array.forward_batches", metrics_.forward_batches);
    set("array.forward_timeout_flushes", metrics_.forward_timeout_flushes);
    set("array.forwarded_bytes", metrics_.forwarded_bytes);
  }
  if (audit.enabled) {
    // The parallel.* family exists only in shard-audit runs, so default
    // runs keep their pre-audit counter sets byte-for-byte.
    set("parallel.shards", audit.shards);
    set("parallel.lookahead_ns", audit.lookahead_ns);
    set("parallel.events", audit.events);
    set("parallel.max_shard_events", audit.max_shard_events);
    set("parallel.shard_events_min", audit.min_shard_events);
    set("parallel.shard_events_max", audit.max_shard_events);
    set("parallel.shard_events_board_share_ppm", audit.board_share_ppm());
    set("parallel.board_batches", audit.board_batches);
    set("parallel.board_batched_ops", audit.board_batched_ops);
    set("parallel.local_sends", audit.local_sends);
    set("parallel.cross_sends", audit.cross_sends);
    set("parallel.lookahead_violations", audit.lookahead_violations);
  }
}

void FlashWalkerEngine::prime() {
  if (primed_) {
    throw std::logic_error("FlashWalkerEngine: prime() called twice");
  }
  primed_ = true;
  check_done();  // zero-walk workloads finish immediately (standalone only)

  if (!done_) {
    // Jobs enter the simulation at their arrival ticks; the implicit
    // single-workload job arrives at tick 0, reproducing the pre-service
    // event sequence exactly. Job control lives on the board shard.
    for (std::uint16_t j = 0; j < jobs_.size(); ++j) {
      sched_at(kBoardShard, jobs_[j].job.arrival, [this, j] { arrive_job(j); });
    }
    schedule_heartbeats();
  }
}

EngineResult FlashWalkerEngine::finalize() {
  if (finalized_) {
    throw std::logic_error("FlashWalkerEngine: finalize() called twice");
  }
  finalized_ = true;
  merge_sinks();

  if (array_ == nullptr) {
    if (metrics_.walks_completed != total_expected_) {
      throw std::logic_error("FlashWalkerEngine: run ended with unfinished walks");
    }
  } else {
    // Board-wide conservation: every walk this board took in either
    // completed here or left over the fabric; the array checks the global
    // ledger (sum of completions == total expected) on top.
    if (!done_) {
      throw std::logic_error(
          "FlashWalkerEngine: board never observed array completion");
    }
    if (metrics_.walks_started + metrics_.forwarded_in_walks !=
        metrics_.walks_completed + metrics_.forwarded_out_walks) {
      throw std::logic_error(
          "FlashWalkerEngine: walks lost crossing the fabric (conservation "
          "violated)");
    }
  }

  EngineResult result;
  // The run ends when the final walk completes. Heartbeat timers (channel
  // polls, timeline/trace samplers) already queued at that point still fire
  // and advance the shard clocks, so psim_->now() would overstate the run
  // by up to one sampling interval — and would make attaching a tracer
  // perturb the measurement.
  result.exec_time = done_tick_;
  result.metrics = metrics_;
  if (opt_.shard_audit) {
    // The audit covers this board's shard slice. For a standalone engine
    // the slice is the whole simulator, so the totals are unchanged from
    // when they were read off the simulator directly.
    ShardAuditReport& r = result.shard_audit;
    r.enabled = true;
    r.shards = num_local_shards();
    r.lookahead_ns = psim_->lookahead();
    Tick min_cross = std::numeric_limits<Tick>::max();
    r.min_shard_events = std::numeric_limits<std::uint64_t>::max();
    r.board_events = shard(kBoardShard).events_executed();
    for (sim::ShardId s = 0; s < num_local_shards(); ++s) {
      const std::uint64_t ev = shard(s).events_executed();
      r.events += ev;
      r.max_shard_events = std::max(r.max_shard_events, ev);
      r.min_shard_events = std::min(r.min_shard_events, ev);
      const ShardSink& sink = sinks_[s];
      r.local_sends += sink.local_sends;
      r.cross_sends += sink.cross_sends;
      r.lookahead_violations += sink.lookahead_violations;
      r.board_batches += sink.board_batches;
      r.board_batched_ops += sink.board_batched_ops;
      min_cross = std::min(min_cross, sink.min_cross_delay);
    }
    r.min_cross_delay_ns = r.cross_sends > 0 ? min_cross : Tick{0};
  }
  result.flash_read_bytes = flash_->read_bytes();
  result.flash_write_bytes = flash_->programmed_bytes();
  // Channel traffic = the FlashArray's per-channel links (loads, walk
  // fetches, foreigner reloads) plus the channel accelerators' own roving
  // lanes — the concurrent split of what the serial engine charged to one
  // set of links.
  std::uint64_t bus_bytes = 0;
  for (const ChannelState& ch : channels_) bus_bytes += ch.bus.bytes_moved();
  result.channel_bytes = flash_->channel_bytes() + bus_bytes;
  result.dram_bytes = dram_->bytes_moved();
  // Run totals (exec time, bandwidth numerators) are captured above; the
  // idle-GC pass below models background compaction after the workload
  // drains, so its flash traffic must not count against the run.
  publish_counters(result.shard_audit);
  if (opt_.idle_gc_episodes > 0) {
    ftl_->idle_gc(psim_->now(), opt_.idle_gc_episodes);
  }
  result.ftl = ftl_->stats();
  result.reliability = flash_->reliability_stats();
  result.counters = registry_.snapshot();
  result.chip_utilization.reserve(chips_.size());
  for (const ChipState& c : chips_) {
    result.chip_utilization.push_back(c.unit.utilization(result.exec_time));
  }
  if (timeline_) result.timeline = timeline_->points();
  result.visit_counts = std::move(visits_);
  result.endpoint_counts = std::move(endpoints_);
  result.jobs.reserve(jobs_.size());
  for (JobRt& jc : jobs_) {
    service::JobResult jr;
    jr.stats = job_stats(jc);
    jr.visit_counts = std::move(jc.visits);
    jr.endpoint_counts = std::move(jc.endpoints);
    if (track_job_outputs_ && opt_.record_paths) {
      // Slice the global path table by the job's contiguous walk-id range.
      auto first = paths_.begin() + static_cast<std::ptrdiff_t>(jc.walk_base);
      auto last = first + static_cast<std::ptrdiff_t>(jc.expected);
      jr.paths.assign(std::make_move_iterator(first), std::make_move_iterator(last));
    }
    result.jobs.push_back(std::move(jr));
  }
  if (track_job_outputs_ && opt_.record_paths) {
    paths_.clear();  // gutted by the per-job slices above
  }
  result.paths = std::move(paths_);
  return result;
}

EngineResult FlashWalkerEngine::run() {
  if (array_ != nullptr) {
    throw std::logic_error(
        "FlashWalkerEngine: array-attached boards are driven by BoardArray "
        "(prime / shared simulator / finalize), not run()");
  }
  prime();
  psim_->run();
  return finalize();
}

}  // namespace fw::accel
