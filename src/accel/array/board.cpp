#include "accel/array/board.hpp"

#include <utility>

namespace fw::accel::array {

Board::Board(const partition::PartitionedGraph& pg, EngineOptions options,
             ArrayAttachment attachment)
    : attach_(std::move(attachment)),
      engine_(std::make_unique<FlashWalkerEngine>(pg, std::move(options), &attach_,
                                                  FlashWalkerEngine::BuildAccess{})) {}

}  // namespace fw::accel::array
