// BoardArray: N FlashWalker boards behind a host fabric, one simulation.
//
// Scale-out topology (ISSUE 8): the partitioner's device-level shard
// assignment (partition::device_of_partition, striped round-robin) splits
// the graph across `devices` boards; each board runs the unmodified
// single-device engine over the full partitioned graph but only starts and
// processes walks whose partitions it owns. A walk that hops into a foreign
// partition is serialized into the owning engine's per-destination
// forwarding buffer and — once the batch fills or the straggler timeout
// fires — shipped over the modeled host fabric to its home board, where it
// re-enters through the foreigner-buffer path.
//
// The fabric is a first-class DES shard (global shard 0) of one shared
// conservative-lookahead ParallelSimulator; board d owns the contiguous
// global slice [1 + d*(1+C), 1 + (d+1)*(1+C)) where C is the per-SSD
// channel count. Every board→fabric and fabric→board message is a
// cross-shard event with at least one hop latency (>= the lookahead
// window), so the whole array stays bit-identical for any --sim-threads.
//
// Fabric model: a central switch with one full-duplex link per board.
// A forwarded batch pays one hop up, serializes over the source board's
// uplink, then over the destination's downlink, and pays one hop down.
// Job/run completion is decided solely by the fabric coordinator from the
// boards' completion-delta notifications, then broadcast back — no board
// ever terminates on its own (its local view undercounts).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "accel/array/array_config.hpp"
#include "accel/array/board.hpp"
#include "accel/builder.hpp"
#include "accel/service/job.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/resource.hpp"

namespace fw::accel::array {

/// Host-fabric traffic totals for one array run.
struct FabricStats {
  Tick link_ns = 0;  ///< effective per-hop latency (config floored to lookahead)
  std::uint64_t batches = 0;  ///< forwarded batches switched
  std::uint64_t walks = 0;    ///< walks inside those batches
  std::uint64_t bytes = 0;    ///< serialized walk bytes moved
  std::uint64_t job_notifications = 0;  ///< completion-delta messages received
  Tick uplink_busy_ns = 0;    ///< summed across boards
  Tick downlink_busy_ns = 0;
};

struct ArrayResult {
  std::uint32_t devices = 1;
  Tick exec_time = 0;  ///< tick the coordinator observed array-wide completion
  /// Metrics merged (summed) across boards; walk totals are exact because
  /// every counter is a sum and each walk completes on exactly one board.
  EngineMetrics metrics;
  FabricStats fabric;
  /// Per-board results, indexed by device.
  std::vector<EngineResult> boards;
  /// Array-wide per-job stats: walks/steps/parked summed over boards,
  /// `completed` is the coordinator's job-done tick.
  std::vector<service::JobStats> jobs;
  std::vector<std::uint64_t> visit_counts;     ///< merged, when recorded
  std::vector<std::uint64_t> endpoint_counts;  ///< merged, when recorded

  [[nodiscard]] double walks_per_sec() const {
    if (exec_time == 0) return 0.0;
    return static_cast<double>(metrics.walks_completed) * 1e9 /
           static_cast<double>(exec_time);
  }
};

class BoardArray {
 public:
  /// Builds `cfg.array.devices` boards over one partitioned graph. Throws
  /// std::invalid_argument for configurations the array cannot honor
  /// (tracing, path recording, zero-walk jobs under an admission cap).
  BoardArray(const partition::PartitionedGraph& pg, SimulationConfig cfg);
  ~BoardArray();

  BoardArray(const BoardArray&) = delete;
  BoardArray& operator=(const BoardArray&) = delete;

  /// Execute the workload across the array to completion (call once).
  ArrayResult run();

  [[nodiscard]] std::uint32_t devices() const { return acfg_.devices; }
  [[nodiscard]] const Board& board(std::uint32_t d) const { return *boards_[d]; }

 private:
  [[nodiscard]] sim::ShardId board_base(std::uint32_t d) const {
    return 1 + static_cast<sim::ShardId>(d) * local_shards_;
  }
  [[nodiscard]] sim::Shard& fabric() { return psim_->shard(0); }

  // Fabric-shard handlers (single-threaded within the fabric shard).
  void fabric_forward(std::uint32_t src, std::uint32_t dst,
                      std::vector<rw::Walk> walks);
  void fabric_tally(std::vector<std::pair<std::uint16_t, std::uint64_t>> deltas);
  void finish_job_global(std::uint16_t j);
  void finish_run_global();

  const partition::PartitionedGraph* pg_;
  SimulationConfig cfg_;
  ArrayConfig acfg_;
  Tick hop_ns_ = 0;           ///< per-hop latency, >= the lookahead window
  sim::ShardId local_shards_ = 0;  ///< shards per board (1 board + C channels)
  std::uint64_t walk_bytes_ = 0;   ///< serialized bytes per forwarded walk

  std::unique_ptr<sim::ParallelSimulator> psim_;
  std::vector<std::unique_ptr<Board>> boards_;
  std::vector<sim::BandwidthLink> uplinks_;    // board → switch, per device
  std::vector<sim::BandwidthLink> downlinks_;  // switch → board, per device

  // Coordinator job ledger (fabric shard only).
  std::vector<service::WalkJob> job_defs_;
  std::vector<std::uint64_t> job_expected_;
  std::vector<std::uint64_t> job_completed_;
  std::vector<Tick> job_done_tick_;
  std::uint64_t total_expected_ = 0;
  std::uint64_t total_completed_ = 0;
  bool done_ = false;
  Tick done_tick_ = 0;
  bool ran_ = false;

  FabricStats fabric_stats_;
};

}  // namespace fw::accel::array
