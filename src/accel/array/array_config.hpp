// Multi-SSD array configuration: how many FlashWalker boards the host
// fabric spans and how the fabric moves forwarded walks between them.
// Dependency-free so SimulationConfig can embed it without pulling the
// array implementation into every builder include.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace fw::accel::array {

struct ArrayConfig {
  /// Boards in the array. 1 = plain single-device run (no fabric shard, no
  /// forwarding; byte-identical to the pre-array engine).
  std::uint32_t devices = 1;
  /// One-way per-hop fabric latency (board → switch or switch → board), a
  /// PCIe/NVMe-oF-style round figure. Floored to the DES lookahead window,
  /// since fabric messages are cross-shard events.
  Tick link_ns = 600;
  /// Per-direction, per-device link bandwidth; forwarded batches serialize
  /// up the source board's link and down the destination's.
  std::uint64_t link_mb_per_s = 3200;
  /// Walks buffered per destination board before a forwarding batch ships.
  std::uint32_t forward_batch = 32;
  /// Straggler bound: a non-empty forwarding buffer flushes after this many
  /// ns even if the batch never fills.
  Tick forward_timeout_ns = 20'000;
};

}  // namespace fw::accel::array
