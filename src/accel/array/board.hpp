// Board: one FlashWalker device of a multi-SSD array.
//
// The single-device engine stays the unit of reuse — a Board is the engine
// plus the ArrayAttachment that binds it to the array's shared simulator and
// fabric callbacks. The attachment is a member declared before the engine
// (the engine holds a pointer to it for its whole lifetime), which is why a
// Board is pinned in memory: BoardArray stores unique_ptr<Board>.
#pragma once

#include <cstdint>
#include <memory>

#include "accel/engine.hpp"

namespace fw::accel::array {

class Board {
 public:
  /// Constructs the engine attached as board `attachment.device`; the
  /// attachment's simulator and callbacks must already be populated.
  Board(const partition::PartitionedGraph& pg, EngineOptions options,
        ArrayAttachment attachment);

  Board(const Board&) = delete;
  Board& operator=(const Board&) = delete;

  [[nodiscard]] FlashWalkerEngine& engine() { return *engine_; }
  [[nodiscard]] const FlashWalkerEngine& engine() const { return *engine_; }
  [[nodiscard]] std::uint32_t device() const { return attach_.device; }
  [[nodiscard]] sim::ShardId shard_base() const { return attach_.shard_base; }

 private:
  ArrayAttachment attach_;  // must outlive engine_ (the engine points at it)
  std::unique_ptr<FlashWalkerEngine> engine_;
};

}  // namespace fw::accel::array
