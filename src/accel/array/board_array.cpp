#include "accel/array/board_array.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "accel/lookahead.hpp"
#include "rw/model/registry.hpp"
#include "rw/walk.hpp"

namespace fw::accel::array {

BoardArray::BoardArray(const partition::PartitionedGraph& pg, SimulationConfig cfg)
    : pg_(&pg), cfg_(std::move(cfg)), acfg_(cfg_.array) {
  if (acfg_.devices == 0) {
    throw std::invalid_argument("BoardArray: device count must be >= 1");
  }
  if (acfg_.devices > 256) {
    throw std::invalid_argument("BoardArray: at most 256 boards (device column is a byte)");
  }
  if (acfg_.forward_batch == 0) {
    throw std::invalid_argument("BoardArray: forward_batch must be >= 1");
  }
  if (cfg_.trace != nullptr) {
    throw std::invalid_argument("BoardArray: tracing requires a single-device run");
  }
  if (cfg_.record_paths) {
    throw std::invalid_argument(
        "BoardArray: path recording is single-device only (a forwarded walk's "
        "path would be split across boards)");
  }
  acfg_.forward_timeout_ns = std::max<Tick>(acfg_.forward_timeout_ns, 1);

  // Coordinator job ledger — mirrors the engine's job-table derivation so
  // every board and the coordinator agree on job ids, weights, and expected
  // walk counts.
  if (!cfg_.jobs.empty()) {
    job_defs_ = cfg_.jobs;
  } else {
    service::WalkJob j;
    j.name = "default";
    j.spec = cfg_.spec;
    job_defs_.push_back(std::move(j));
  }
  std::uint64_t max_state_bytes = 0;
  for (auto& def : job_defs_) {
    if (def.weight == 0) def.weight = service::qos_weight(def.qos);
    const std::uint64_t expected =
        service::expected_walks(def.spec, pg.graph().num_vertices());
    if (expected == 0 && cfg_.policy.max_concurrent_jobs > 0) {
      // The coordinator finishes zero-walk jobs at their arrival tick, but
      // under an admission cap a board may still be queueing the job then —
      // the finish broadcast would release a slot the board never took.
      throw std::invalid_argument(
          "BoardArray: zero-walk jobs are unsupported under "
          "policy.max_concurrent_jobs");
    }
    job_expected_.push_back(expected);
    total_expected_ += expected;
    max_state_bytes = std::max(max_state_bytes,
                               rw::model_state_bytes(def.spec, pg.id_bytes()));
  }
  job_completed_.assign(job_defs_.size(), 0);
  job_done_tick_.assign(job_defs_.size(), 0);
  // Forwarded walks carry their model state across the fabric (mirrors the
  // engine's walk_bytes_ derivation).
  walk_bytes_ = rw::walk_bytes(pg.id_bytes()) + max_state_bytes;

  // One shared conservative-lookahead simulator: fabric = global shard 0,
  // board d owns the next local_shards_ slots (board residue, channels,
  // guider-pool sub-shards — see engine.hpp). Fabric messages ride the
  // same window protocol as everything else, floored to the lookahead.
  const Tick lookahead = conservative_lookahead_ns(cfg_.accel, cfg_.ssd);
  hop_ns_ = std::max(acfg_.link_ns, lookahead);
  local_shards_ = accel::FlashWalkerEngine::local_shard_count(cfg_.accel, cfg_.ssd);
  const std::uint32_t total_shards = 1 + acfg_.devices * local_shards_;
  psim_ = std::make_unique<sim::ParallelSimulator>(total_shards, lookahead,
                                                   std::max<std::uint32_t>(1, cfg_.sim_threads));

  uplinks_.reserve(acfg_.devices);
  downlinks_.reserve(acfg_.devices);
  for (std::uint32_t d = 0; d < acfg_.devices; ++d) {
    uplinks_.emplace_back(acfg_.link_mb_per_s, 0);
    downlinks_.emplace_back(acfg_.link_mb_per_s, 0);
  }

  boards_.reserve(acfg_.devices);
  for (std::uint32_t d = 0; d < acfg_.devices; ++d) {
    ArrayAttachment att;
    att.device = d;
    att.devices = acfg_.devices;
    att.shard_base = board_base(d);
    att.psim = psim_.get();
    att.forward_batch = acfg_.forward_batch;
    att.forward_timeout_ns = acfg_.forward_timeout_ns;
    // Board shard → fabric shard: one hop up to the switch. The fabric
    // handler then charges link serialization and the hop down.
    att.forward = [this, d](std::uint32_t dst, std::vector<rw::Walk> walks) {
      psim_->shard(board_base(d)).send(
          0, hop_ns_, [this, d, dst, ws = std::move(walks)]() mutable {
            fabric_forward(d, dst, std::move(ws));
          });
    };
    att.notify_completed =
        [this, d](std::vector<std::pair<std::uint16_t, std::uint64_t>> deltas) {
          psim_->shard(board_base(d))
              .send(0, hop_ns_, [this, ds = std::move(deltas)]() mutable {
                fabric_tally(std::move(ds));
              });
        };
    boards_.push_back(std::make_unique<Board>(
        pg, static_cast<const EngineOptions&>(cfg_), std::move(att)));
  }
}

BoardArray::~BoardArray() = default;

void BoardArray::fabric_forward(std::uint32_t src, std::uint32_t dst,
                                std::vector<rw::Walk> walks) {
  const std::uint64_t bytes = walks.size() * walk_bytes_;
  ++fabric_stats_.batches;
  fabric_stats_.walks += walks.size();
  fabric_stats_.bytes += bytes;
  // Store-and-forward through the switch: the batch serializes over the
  // source board's uplink, then the destination's downlink, then pays the
  // switch→board hop. Links are FIFO (BandwidthLink), so contention from
  // other batches sharing a link is modeled as queueing delay.
  const Tick now = fabric().now();
  const Tick up_done = uplinks_[src].transfer(now, bytes);
  const Tick down_done = downlinks_[dst].transfer(up_done, bytes);
  const Tick delay = (down_done - now) + hop_ns_;
  fabric().send(board_base(dst), delay, [this, dst, ws = std::move(walks)]() mutable {
    boards_[dst]->engine().receive_forwarded(std::move(ws));
  });
}

void BoardArray::fabric_tally(
    std::vector<std::pair<std::uint16_t, std::uint64_t>> deltas) {
  ++fabric_stats_.job_notifications;
  for (const auto& [j, n] : deltas) {
    job_completed_[j] += n;
    total_completed_ += n;
    if (job_completed_[j] == job_expected_[j]) finish_job_global(j);
  }
  if (!done_ && total_completed_ == total_expected_) finish_run_global();
}

void BoardArray::finish_job_global(std::uint16_t j) {
  const Tick now = fabric().now();
  job_done_tick_[j] = now;
  // Broadcast so every board retires the job (admission slots, queued-job
  // drain) at the same tick. Per-board finalize rebuilds full stats; the
  // on_complete callback fires here with the coordinator's view (walks and
  // completion tick; steps are only known post-run).
  for (std::uint32_t d = 0; d < acfg_.devices; ++d) {
    fabric().send(board_base(d), hop_ns_,
                  [this, d, j, now] { boards_[d]->engine().array_finish_job(j, now); });
  }
  if (job_defs_[j].on_complete) {
    service::JobStats stats;
    stats.id = j;
    stats.name = job_defs_[j].name;
    stats.qos = job_defs_[j].qos;
    stats.weight = job_defs_[j].weight;
    stats.walks = job_completed_[j];
    stats.arrival = job_defs_[j].arrival;
    stats.admitted = job_defs_[j].arrival;
    stats.completed = now;
    job_defs_[j].on_complete(stats);
  }
}

void BoardArray::finish_run_global() {
  done_ = true;
  done_tick_ = fabric().now();
  for (std::uint32_t d = 0; d < acfg_.devices; ++d) {
    fabric().send(board_base(d), hop_ns_,
                  [this, d] { boards_[d]->engine().array_finish_run(done_tick_); });
  }
}

ArrayResult BoardArray::run() {
  if (ran_) throw std::logic_error("BoardArray::run called twice");
  ran_ = true;

  for (auto& b : boards_) b->engine().prime();
  // Coordinator bootstrap, mirroring standalone semantics: a zero-walk job
  // completes at its arrival tick; an entirely empty workload at tick 0.
  for (std::uint16_t j = 0; j < job_defs_.size(); ++j) {
    if (job_expected_[j] == 0) {
      fabric().schedule_at(job_defs_[j].arrival, [this, j] { finish_job_global(j); });
    }
  }
  if (total_expected_ == 0) {
    fabric().schedule_at(0, [this] { finish_run_global(); });
  }

  psim_->run();
  if (!done_) {
    throw std::runtime_error(
        "BoardArray: simulator drained before array-wide completion "
        "(forwarded walks lost?)");
  }

  ArrayResult r;
  r.devices = acfg_.devices;
  r.exec_time = done_tick_;
  r.fabric = fabric_stats_;
  r.fabric.link_ns = hop_ns_;
  for (std::uint32_t d = 0; d < acfg_.devices; ++d) {
    r.fabric.uplink_busy_ns += uplinks_[d].busy_time();
    r.fabric.downlink_busy_ns += downlinks_[d].busy_time();
  }

  r.boards.reserve(acfg_.devices);
  for (auto& b : boards_) r.boards.push_back(b->engine().finalize());

  std::uint64_t out = 0;
  std::uint64_t in = 0;
  for (const EngineResult& br : r.boards) {
    r.metrics += br.metrics;
    out += br.metrics.forwarded_out_walks;
    in += br.metrics.forwarded_in_walks;
    if (!br.visit_counts.empty()) {
      r.visit_counts.resize(br.visit_counts.size(), 0);
      for (std::size_t v = 0; v < br.visit_counts.size(); ++v) {
        r.visit_counts[v] += br.visit_counts[v];
      }
    }
    if (!br.endpoint_counts.empty()) {
      r.endpoint_counts.resize(br.endpoint_counts.size(), 0);
      for (std::size_t v = 0; v < br.endpoint_counts.size(); ++v) {
        r.endpoint_counts[v] += br.endpoint_counts[v];
      }
    }
  }
  // Conservation across the fabric: every forwarded walk left exactly one
  // board, crossed the switch once per forward, and landed on exactly one.
  if (r.metrics.walks_completed != total_expected_ || out != in ||
      out != fabric_stats_.walks) {
    throw std::runtime_error("BoardArray: walk conservation violated across the fabric");
  }

  r.jobs.reserve(job_defs_.size());
  for (std::uint16_t j = 0; j < job_defs_.size(); ++j) {
    service::JobStats s;
    s.id = j;
    s.name = job_defs_[j].name;
    s.qos = job_defs_[j].qos;
    s.weight = job_defs_[j].weight;
    s.arrival = job_defs_[j].arrival;
    s.walks = job_completed_[j];
    s.completed = job_done_tick_[j];
    for (const EngineResult& br : r.boards) {
      if (j < br.jobs.size()) {
        s.steps += br.jobs[j].stats.steps;
        s.parked_walks += br.jobs[j].stats.parked_walks;
      }
    }
    // Admission is synchronized across boards (same arrival ticks, same
    // finish broadcasts), so board 0's admitted tick is the array's.
    if (!r.boards.empty() && j < r.boards[0].jobs.size()) {
      s.admitted = r.boards[0].jobs[j].stats.admitted;
    }
    r.jobs.push_back(std::move(s));
  }
  return r;
}

}  // namespace fw::accel::array
