// Machine-readable run reports: serialize engine/baseline results as JSON
// so bench outputs can feed plotting scripts without scraping tables.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "accel/array/board_array.hpp"
#include "accel/engine.hpp"
#include "baseline/graphwalker.hpp"

namespace fw::accel {

/// Version stamped into every JSON run report / metrics envelope as
/// "schema_version". v2 added the stamp itself and per-job sections;
/// consumers (bench/regression.py, plotting scripts) must reject
/// versions they do not understand rather than silently parse.
inline constexpr std::uint64_t kReportSchemaVersion = 2;

/// Serialize an engine result (counters, byte totals, utilization summary,
/// per-job sections and timeline if present) as a single JSON object.
/// `label` becomes the "name" field.
void write_json(std::ostream& os, const std::string& label, const EngineResult& result);

/// Serialize a baseline result.
void write_json(std::ostream& os, const std::string& label,
                const baseline::BaselineResult& result);

/// Serialize a multi-board array result: array-wide totals and fabric
/// traffic at the top level, then one per-board entry wrapping the
/// unchanged single-device report (so existing tooling can parse each
/// board's section with the same code path).
void write_json(std::ostream& os, const std::string& label,
                const array::ArrayResult& result);

/// Convenience: JSON string forms.
std::string to_json(const std::string& label, const EngineResult& result);
std::string to_json(const std::string& label, const baseline::BaselineResult& result);
std::string to_json(const std::string& label, const array::ArrayResult& result);

/// Counter-style samples for a baseline run (sorted by name), so
/// `--metrics-out` emits the same hierarchical shape for every engine.
std::vector<obs::CounterSample> counter_samples(const baseline::BaselineResult& result);

/// Nested counter JSON (the `--metrics-out` payload) for one run.
void write_counters_json(std::ostream& os, const EngineResult& result);
void write_counters_json(std::ostream& os, const baseline::BaselineResult& result);

}  // namespace fw::accel
