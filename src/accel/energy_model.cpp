#include "accel/energy_model.hpp"

#include "accel/area_model.hpp"
#include "common/units.hpp"

namespace fw::accel {
namespace {

double pages(std::uint64_t bytes, std::uint32_t page_bytes) {
  return static_cast<double>(bytes) / static_cast<double>(page_bytes);
}

}  // namespace

EnergyReport estimate_flashwalker(const EngineResult& result, const AccelConfig& accel,
                                  const ssd::SsdConfig& ssd, const EnergyParams& params) {
  EnergyReport report;
  const double seconds = to_seconds(result.exec_time);

  report.flash_j = 1e-6 * (pages(result.flash_read_bytes, ssd.topo.page_bytes) *
                               params.flash_read_uj_per_page +
                           pages(result.flash_write_bytes, ssd.topo.page_bytes) *
                               params.flash_program_uj_per_page +
                           static_cast<double>(result.ftl.gc_erases) *
                               params.flash_erase_uj_per_block);

  report.interconnect_j =
      1e-12 * static_cast<double>(result.channel_bytes) * params.channel_pj_per_byte;

  report.dram_j =
      1e-12 * static_cast<double>(result.dram_bytes) * params.dram_pj_per_byte;

  // Dynamic PE energy: 5 updater ops per update plus the guider traffic.
  const double ops =
      5.0 * static_cast<double>(result.metrics.chip_updates + result.metrics.channel_updates +
                                result.metrics.board_updates) +
      static_cast<double>(result.metrics.mapping_search_steps + result.metrics.bloom_lookups +
                          result.metrics.range_searches);
  report.compute_j = 1e-12 * ops * params.pe_pj_per_op;

  // Leakage of the whole accelerator hierarchy over the run.
  const double area_mm2 = 128.0 * estimate_area(accel, AccelLevel::kChip).total() +
                          32.0 * estimate_area(accel, AccelLevel::kChannel).total() +
                          estimate_area(accel, AccelLevel::kBoard).total();
  report.static_j = 1e-3 * params.leakage_mw_per_mm2 * area_mm2 * seconds;
  return report;
}

EnergyReport estimate_baseline(const baseline::BaselineResult& result,
                               const ssd::SsdConfig& ssd, const EnergyParams& params) {
  EnergyReport report;

  report.flash_j = 1e-6 * (pages(result.flash_read_bytes, ssd.topo.page_bytes) *
                               params.flash_read_uj_per_page +
                           pages(result.bytes_written, ssd.topo.page_bytes) *
                               params.flash_program_uj_per_page);

  // Host data crosses channel, PCIe, and host DRAM.
  const double moved = static_cast<double>(result.bytes_read + result.bytes_written);
  report.interconnect_j =
      1e-12 * moved * (params.channel_pj_per_byte + params.pcie_pj_per_byte);
  report.dram_j = 1e-12 * moved * params.dram_pj_per_byte;

  // CPU: active while computing, idle-but-powered while waiting on I/O.
  const double compute_s = to_seconds(result.breakdown.compute);
  const double io_s = to_seconds(result.exec_time) - compute_s;
  report.compute_j = params.host_active_w * compute_s;
  report.static_j = params.host_idle_w * (io_s > 0 ? io_s : 0.0);
  return report;
}

}  // namespace fw::accel
