// FlashWalker accelerator configuration — defaults follow the paper's
// Table II (per-level PE counts, cycle times, buffer capacities) and §IV.A
// (mapping-table / query-cache sizes, α = 1.2, β = 1.5).
//
// `bench_accel_config()` returns the scaled variant used with scaled graphs
// and the scaled SSD (DESIGN.md §3.5): cycle times and PE counts stay at
// paper values — only buffer capacities shrink with the graphs.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "common/units.hpp"

namespace fw::accel {

/// One accelerator level's processing resources (Table II columns).
struct LevelConfig {
  std::uint32_t updaters = 1;
  Tick updater_cycle = 16;  ///< ns between updater operations
  std::uint32_t guiders = 1;
  Tick guider_cycle = 16;
  std::uint64_t subgraph_buffer_bytes = 1 * MiB;
  std::uint64_t walk_queue_bytes = 64 * KiB;
  std::uint64_t guide_buffer_bytes = 0;
  std::uint64_t roving_buffer_bytes = 32 * KiB;
};

/// The three §IV-E optimizations, individually toggleable for Fig 9.
struct Features {
  bool walk_query = true;          ///< WQ: approximate search + query caches
  bool hot_subgraphs = true;       ///< HS: hot subgraphs at channel/board level
  bool subgraph_scheduling = true; ///< SS: Eq. 1 scoring + top-N lists
};

struct AccelConfig {
  LevelConfig chip{1, 16, 1, 16, 1 * MiB, 64 * KiB, 0, 32 * KiB};
  LevelConfig channel{1, 8, 4, 8, 2 * MiB, 128 * KiB, 16 * KiB, 8 * KiB};
  LevelConfig board{4, 4, 128, 4, 16 * MiB, 1 * MiB, 128 * KiB, 0};

  std::uint64_t mapping_table_bytes = 2 * MiB;
  std::uint64_t dense_table_bytes = 128 * KiB;

  std::uint32_t query_cache_count = 32;
  std::uint64_t query_cache_bytes = 4 * KiB;
  std::uint32_t guiders_per_cache = 4;

  /// Partition-walk-buffer entry capacity (per subgraph, in on-board DRAM).
  std::uint64_t pwb_entry_bytes = 16 * KiB;
  std::uint64_t completed_buffer_bytes = 16 * KiB;
  std::uint64_t foreigner_buffer_bytes = 16 * KiB;

  /// Channel-level accelerators poll chip roving buffers on this interval
  /// (paper §III.B: "in a fixed time interval").
  Tick roving_poll_interval = 2 * kUs;

  /// Eq. 1 parameters (§IV.A defaults; §IV.E uses α = 0.4 for the SS run).
  double alpha = 1.2;
  double beta = 1.5;
  std::uint32_t top_n = 8;               ///< per-chip top-N list size
  std::uint32_t score_update_every = 16; ///< M: insertions between list updates

  /// Walks drained per processing event (simulation batching knob; time is
  /// still charged per walk).
  std::uint32_t batch_walks = 64;

  /// Board guider pool sub-shards: the paper's 128 board guiders are split
  /// across K DES shards so per-hop model dispatch, mapping lookups, and
  /// query-cache probes run off the board shard (values < 1 clamp to 1).
  /// Fixed independently of --sim-threads: the shard layout — and therefore
  /// the event schedule — must not change with the worker count.
  std::uint32_t board_guider_shards = 4;

  Features features;
};

/// Paper Table II values verbatim (use with the full Table III SSD).
inline AccelConfig paper_accel_config() { return AccelConfig{}; }

/// Scaled variant for the scaled benchmark SSD/graphs. Hot-subgraph buffer
/// capacities shrink more than the rest: the paper's 64-subgraph board hot
/// set is ~0.3% of a 23K-subgraph graph, and keeping that *fraction* (not
/// the count) preserves the paper's HS behaviour — the 4 board updaters
/// relieve the hottest chips without themselves becoming the bottleneck.
inline AccelConfig bench_accel_config() {
  AccelConfig cfg;
  cfg.chip.subgraph_buffer_bytes = 128 * KiB;
  cfg.chip.walk_queue_bytes = 32 * KiB;
  cfg.chip.roving_buffer_bytes = 16 * KiB;
  cfg.channel.subgraph_buffer_bytes = 32 * KiB;
  cfg.channel.walk_queue_bytes = 64 * KiB;
  cfg.board.subgraph_buffer_bytes = 64 * KiB;
  cfg.board.walk_queue_bytes = 256 * KiB;
  // Paper proportions: 4x10^8 walks x ~10 B equal the entire 4 GB on-board
  // DRAM, which also holds mapping tables and staging buffers — the
  // partition walk buffer is under-provisioned relative to the walk
  // population by design (that pressure is why Eq. 1 exists). 4 KiB entries
  // reproduce that regime at bench scale.
  cfg.pwb_entry_bytes = 4 * KiB;
  return cfg;
}

}  // namespace fw::accel
