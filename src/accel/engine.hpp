// FlashWalkerEngine: the in-storage accelerator hierarchy (paper §III) as a
// deterministic discrete-event simulation over the flash substrate.
//
// Hierarchy and walk flow, as in Fig. 2:
//
//   chip-level accelerators (one per flash chip)
//     load subgraphs from their own planes (no channel-bus transfer — the
//     whole point of the design), update walks, and emit roving walks;
//   channel-level accelerators (one per channel)
//     poll chip roving buffers over the ONFI bus, update walks that land in
//     their hot subgraphs, approximate-search the rest (WQ) and forward
//     them to the board;
//   board-level accelerator
//     directs roving walks (dense-vertex pre-walking, query caches, mapping
//     table), updates walks in its own hot subgraphs, manages the partition
//     walk buffer in on-board DRAM, schedules subgraph loads (Eq. 1), and
//     writes completed/foreigner/overflow walks to flash through the FTL.
//
// Walks execute *real* hops over the real CSR, so visit statistics are
// checkable against the host reference (rw::run_walks); the DES charges
// every hop the cycle/bus/flash costs of Table II/III.
//
// Execution model: the engine always runs on the conservative-lookahead
// parallel DES (sim/parallel_sim). The board residue (scheduler, FTL,
// DRAM, job control, PWB/pending mutation) lives on shard 0; channel c and
// its chips live on shard 1 + c; the board guider pool is split across K
// sub-shards (1 + channels + k) that run per-hop model dispatch, mapping
// lookups, and hot-walk updates off the board shard, returning decisions
// as messages the board applies in (tick, src, seq) merge order. Channel→
// board traffic is coalesced per lookahead window: shards stage drain
// reports, completion batches, and guide batches and ship one aggregated
// message per window (the window-flush hook). Every cross-shard message
// pays at least the lookahead window (accel/lookahead.hpp) as its honest
// ONFI-command + DRAM-hop floor, shard-crossing state is split into
// per-shard sinks merged after the run, and the window/merge schedule is a
// pure function of queue state — so any worker count (sim_threads) yields
// bit-identical results. See docs/MODELING.md "Parallel DES".
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "accel/config.hpp"
#include "accel/metrics.hpp"
#include "accel/scheduler.hpp"
#include "accel/service/job.hpp"
#include "common/assoc_cache.hpp"
#include "common/pool.hpp"
#include "common/rng.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "partition/dense_table.hpp"
#include "partition/mapping_table.hpp"
#include "partition/partitioned_graph.hpp"
#include "rw/model/walk_model.hpp"
#include "rw/sampler.hpp"
#include "rw/spec.hpp"
#include "rw/walk.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/resource.hpp"
#include "sim/timeline.hpp"
#include "ssd/dram_banked.hpp"
#include "ssd/flash_array.hpp"
#include "ssd/ftl.hpp"
#include "ssd/graph_layout.hpp"

namespace fw::accel {

struct EngineOptions {
  AccelConfig accel = bench_accel_config();
  ssd::SsdConfig ssd;
  rw::WalkSpec spec;
  /// Multi-job mode: when non-empty, the engine multiplexes these jobs over
  /// the shared hierarchy (each with its own walk model and RNG streams)
  /// and `spec` is ignored. Jobs arrive at their `arrival` ticks, pass
  /// through `policy` admission control, and complete independently. When
  /// empty, `spec` runs as the single implicit job 0.
  std::vector<service::WalkJob> jobs;
  /// Admission control for multi-job runs (all-zero = admit everything).
  service::ServicePolicy policy;
  bool record_visits = true;
  /// Record every walk's vertex sequence (memory ∝ walks x length; meant
  /// for corpus generation and tests, not large sweeps).
  bool record_paths = false;
  /// Count where walks terminate (per-vertex) — the output a Monte-Carlo
  /// PPR consumer reads back from the completed-walk flash region.
  bool record_endpoints = false;
  Tick timeline_interval = 0;  ///< 0 disables Fig-8 sampling
  /// When set, the engine records Chrome trace_event spans (chip/channel/
  /// board unit activity, subgraph loads, FTL GC episodes) and periodic
  /// counter samples into this recorder. Null disables tracing entirely:
  /// every hook is a single pointer test on the hot path. The recorder must
  /// outlive the engine. Tracing requires sim_threads == 1 (the recorder is
  /// a single shared sink); combining it with a concurrent run throws.
  obs::TraceRecorder* trace = nullptr;
  /// Post-run idle-time GC budget (block collections). The FTL compacts
  /// fragmented planes while the device would otherwise sit idle after the
  /// walk workload drains; 0 disables the pass.
  std::uint32_t idle_gc_episodes = 256;
  /// Worker threads for the parallel DES (the `--sim-threads` CLI knob).
  /// The engine always executes on the sharded conservative-lookahead
  /// simulator (board = shard 0, channel c = shard 1 + c); this selects how
  /// many OS threads drain the shards. 1 runs the identical window/merge
  /// schedule inline on the caller's thread; N > 1 runs shards concurrently
  /// between barriers. Results are bit-identical for any value (clamped to
  /// the shard count) — see docs/MODELING.md "Parallel DES".
  std::uint32_t sim_threads = 1;
  /// Record the shard audit (per-shard balance, cross-shard traffic,
  /// lookahead-window margins) on the same run and publish it via the
  /// result's `shard_audit` plus the `parallel.*` counters. Pure
  /// observation: execution and all other outputs stay byte-identical.
  bool shard_audit = false;
};

/// Attaches one engine instance to a multi-board array as board `device` of
/// `devices`. The array (accel/array/board_array) owns the shared
/// ParallelSimulator and hands each board a contiguous slice of its global
/// shard space starting at `shard_base`; the engine keeps its internal
/// board-is-local-shard-0 layout and translates through the slice. Walks
/// whose next subgraph lives on a foreign device are staged in a per-
/// destination forwarding buffer and flushed — on reaching `forward_batch`
/// walks or after `forward_timeout_ns` — through the `forward` callback,
/// which the array turns into fabric-shard link traffic. Per-job completion
/// deltas flow through `notify_completed`; the array coordinator (not the
/// board) decides job and run completion and calls array_finish_job /
/// array_finish_run back on each board. The attachment must outlive the
/// engine.
struct ArrayAttachment {
  std::uint32_t device = 0;
  std::uint32_t devices = 1;
  sim::ShardId shard_base = 0;
  sim::ParallelSimulator* psim = nullptr;
  std::uint32_t forward_batch = 32;
  Tick forward_timeout_ns = 20000;
  /// Board shard → fabric: ship a flushed batch to `dst_device`.
  std::function<void(std::uint32_t dst_device, std::vector<rw::Walk> walks)> forward;
  /// Board shard → fabric: per-job walk-completion deltas since last call.
  std::function<void(std::vector<std::pair<std::uint16_t, std::uint64_t>> deltas)>
      notify_completed;
};

/// How the engine's event stream maps onto the conservative-lookahead
/// shards; populated when EngineOptions::shard_audit is set.
struct ShardAuditReport {
  bool enabled = false;
  std::uint32_t shards = 0;
  Tick lookahead_ns = 0;
  std::uint64_t events = 0;
  std::uint64_t max_shard_events = 0;  ///< busiest shard (balance signal)
  std::uint64_t min_shard_events = 0;  ///< idlest shard (imbalance floor)
  std::uint64_t board_events = 0;      ///< shard-0 residue (serial-hub share)
  std::uint64_t local_sends = 0;
  std::uint64_t cross_sends = 0;
  /// Windowed channel→board batching: aggregated flushes sent, and the
  /// individual operations (drain reports, completion batches, guide
  /// batches) they carried. ops / batches is the coalescing factor.
  std::uint64_t board_batches = 0;
  std::uint64_t board_batched_ops = 0;
  Tick min_cross_delay_ns = 0;  ///< 0 when no cross-shard send occurred
  std::uint64_t lookahead_violations = 0;
  /// Board-shard share of all executed events, in parts per million.
  [[nodiscard]] std::uint64_t board_share_ppm() const {
    return events == 0 ? 0 : board_events * 1000000ull / events;
  }
};

struct EngineResult {
  Tick exec_time = 0;
  EngineMetrics metrics;
  ssd::FtlStats ftl;
  /// NAND fault-model totals (all zero when `ssd.reliability` is disabled).
  ssd::ReliabilityStats reliability;

  /// Snapshot of the engine's counter registry (sorted by name): the
  /// hierarchical `chip.*` / `channel.*` / `board.*` / `ftl.*` / `engine.*`
  /// namespace that `--metrics-out` serializes.
  std::vector<obs::CounterSample> counters;

  std::uint64_t flash_read_bytes = 0;
  std::uint64_t flash_write_bytes = 0;
  std::uint64_t channel_bytes = 0;
  std::uint64_t dram_bytes = 0;

  /// Achieved flash read bandwidth over the run (Fig 6 numerator).
  [[nodiscard]] double flash_read_mb_per_s() const {
    return bandwidth_mb_per_s(flash_read_bytes, exec_time);
  }

  std::vector<sim::TimelinePoint> timeline;

  /// Per-chip-accelerator utilization over the run (busy time / exec time),
  /// indexed by global chip. Imbalance here is the straggler signature.
  std::vector<double> chip_utilization;
  [[nodiscard]] double mean_chip_utilization() const {
    if (chip_utilization.empty()) return 0.0;
    double sum = 0;
    for (double u : chip_utilization) sum += u;
    return sum / static_cast<double>(chip_utilization.size());
  }
  [[nodiscard]] double max_chip_utilization() const {
    double m = 0;
    for (double u : chip_utilization) m = std::max(m, u);
    return m;
  }

  std::vector<std::uint64_t> visit_counts;  ///< per-vertex, when recorded
  /// Per-vertex terminal counts, when record_endpoints is set.
  std::vector<std::uint64_t> endpoint_counts;
  /// Per-walk vertex sequences (starting vertex first), when recorded. For
  /// explicit multi-job runs the sequences live in `jobs[j].paths` instead.
  std::vector<std::vector<VertexId>> paths;

  /// Per-job results in submission order: timing/throughput stats always;
  /// per-job output vectors only for explicit multi-job runs.
  std::vector<service::JobResult> jobs;

  /// Shard-audit report (enabled only when EngineOptions::shard_audit).
  ShardAuditReport shard_audit;
};

class FlashWalkerEngine {
 public:
  /// Construction access token: the supported entry points are
  /// accel::SimulationBuilder and service::WalkService, which assemble a
  /// validated EngineOptions and construct through this tag.
  struct BuildAccess {
    explicit BuildAccess() = default;
  };

  FlashWalkerEngine(const partition::PartitionedGraph& pg, EngineOptions options,
                    BuildAccess access);
  /// Array-attached construction: the engine becomes board
  /// `array->device` of an N-board array, running on the array's shared
  /// simulator instead of owning one. `array` may be null (plain
  /// single-device engine) and must otherwise outlive the engine.
  FlashWalkerEngine(const partition::PartitionedGraph& pg, EngineOptions options,
                    const ArrayAttachment* array, BuildAccess access);
  ~FlashWalkerEngine();

  FlashWalkerEngine(const FlashWalkerEngine&) = delete;
  FlashWalkerEngine& operator=(const FlashWalkerEngine&) = delete;

  /// Execute the configured walk workload to completion.
  EngineResult run();

  // --- array integration (accel::array::BoardArray only) ------------------
  // A standalone engine's run() is prime() + simulator run + finalize(); an
  // array-attached board exposes the two halves so the array can prime every
  // board, drive the shared simulator once, then finalize each board. The
  // remaining three are event handlers the array schedules on this board's
  // board shard.
  /// Schedule job arrivals and heartbeat timers (call exactly once, before
  /// the simulator runs).
  void prime();
  /// Merge shard sinks and build the result (call exactly once, after the
  /// simulator has drained).
  EngineResult finalize();
  /// Fabric → board: re-admit a batch of walks forwarded from other boards.
  void receive_forwarded(std::vector<rw::Walk> walks);
  /// Coordinator → board: job `j` completed array-wide at tick `at`.
  void array_finish_job(std::uint16_t j, Tick at);
  /// Coordinator → board: every walk in the array completed at tick `at`.
  void array_finish_run(Tick at);

  [[nodiscard]] const partition::SubgraphMappingTable& mapping_table() const {
    return *mtab_;
  }
  [[nodiscard]] const partition::DenseVertexTable& dense_table() const { return *dtab_; }
  [[nodiscard]] const ssd::GraphLayout& layout() const { return *layout_; }
  /// Live counter registry (fully populated after `run`).
  [[nodiscard]] const obs::CounterRegistry& counters() const { return registry_; }

  /// Local shards one board occupies: board residue (0), one per channel
  /// (1 + c), and the guider-pool sub-shards (1 + channels + k). The array
  /// sizes its global shard space with this.
  [[nodiscard]] static std::uint32_t local_shard_count(const AccelConfig& accel,
                                                       const ssd::SsdConfig& ssd) {
    return 1 + ssd.topo.channels +
           std::max<std::uint32_t>(1, accel.board_guider_shards);
  }

 private:
  struct LoadedSg {
    SubgraphId sg = kInvalidSubgraph;
    std::deque<rw::Walk> queue;
    /// Chip-side: a drain report for this slot is in flight (the board may
    /// already be loading into it). The chip guider skips reported slots —
    /// the concurrent mirror of the serial engine skipping `loading` slots
    /// — so an install can never evict guider-fed walks. Cleared when the
    /// install lands.
    bool reported = false;
  };

  struct ChipState {
    std::uint32_t channel = 0;
    std::uint32_t chip = 0;
    std::uint32_t global = 0;
    std::vector<LoadedSg> slots;
    std::vector<rw::Walk> roving;
    sim::SerialResource unit;
    bool processing = false;
    std::uint32_t rr = 0;
    std::uint64_t updates = 0;     ///< walk updates executed on this chip
    std::uint32_t trace_track = 0; ///< trace lane, valid when tracing
  };

  struct ChannelState {
    std::uint32_t index = 0;
    std::vector<LoadedSg> hot;
    sim::SerialResource unit;
    /// Channel-owned ONFI lane charging the roving pulls this channel's
    /// accelerator issues itself. Board-issued traffic (loads, walk
    /// fetches) stays on the FlashArray's per-channel links; the two are
    /// separate FIFOs, a deliberate concession so no bus model is written
    /// from two shards (docs/MODELING.md "Parallel DES").
    sim::BandwidthLink bus{0, 0};
    bool processing = false;
    std::uint32_t rr = 0;
    std::uint64_t updates = 0;
    std::uint32_t trace_track = 0;
  };

  struct BoardState {
    std::vector<LoadedSg> hot;
    std::deque<rw::Walk> guide;
    sim::SerialResource guider_unit;
    sim::SerialResource updater_unit;
    bool guiding = false;
    bool updating = false;
    std::uint64_t foreigner_buffered_bytes = 0;
    std::uint64_t completed_buffered_bytes = 0;
    std::uint32_t rr = 0;
    std::uint64_t updates = 0;
    std::uint32_t guider_track = 0;
    std::uint32_t updater_track = 0;
  };

  /// Board-side replica of one chip slot: the scheduler grants loads
  /// against this view because it cannot read chip-owned queue state
  /// across the shard boundary. `loading` covers dispatch → install;
  /// `empty` is the board's belief that the slot holds no queued walks
  /// (refreshed by chip idle reports).
  struct SlotView {
    SubgraphId sg = kInvalidSubgraph;
    bool loading = false;
    bool empty = true;
  };
  struct ChipView {
    std::vector<SlotView> slots;
    std::uint64_t completed_buffered_bytes = 0;
  };

  /// One staged channel→board operation. Channel shards stage these in
  /// their sink instead of sending one cross-shard event each; the shard's
  /// window-flush hook ships the whole window's worth as a single
  /// aggregated message delivered at the latest staged arrival tick, and
  /// the board applies them in staged order.
  struct BoardOp {
    enum class Kind : std::uint8_t {
      kDrained,    ///< chip slot drained (origin = global chip, slot)
      kCompleted,  ///< completed-walk batch (origin = chip or kBoardOrigin)
      kGuide,      ///< walks for the board guide buffer
    };
    Kind kind = Kind::kGuide;
    std::uint32_t origin = 0;
    std::uint32_t slot = 0;
    Tick at = 0;  ///< intended arrival tick (the un-batched send time)
    std::vector<rw::Walk> walks;
  };

  /// One board guider/updater sub-shard (local shard 1 + channels + k): a
  /// slice of the board's guider pool and updater array with its own serial
  /// units and query caches. Sub-shard handlers read only immutable
  /// structures (graph, mapping/dense tables, hot-slot identities fixed at
  /// load time) plus this private state; every mutation of board residue
  /// state (PWB, pending lists, job control) travels back to shard 0 as a
  /// decision message and applies in (tick, src, seq) merge order.
  struct GuiderShard {
    sim::SerialResource guider_unit;
    sim::SerialResource updater_unit;
    std::vector<std::unique_ptr<AssocCacheModel>> caches;
    std::uint64_t cache_rr = 0;
    std::uint64_t epoch = 0;    ///< partition epoch the caches are valid for
    std::uint64_t updates = 0;  ///< board-updater hops executed here
  };

  /// Sub-shard → board routing verdict for one walk. Capacity-dependent
  /// choices (hot queue space) are re-validated against live state on the
  /// board when the decision applies.
  struct RouteDecision {
    enum class Action : std::uint8_t {
      kHot,      ///< walk_in_sg matched board hot slot `hot_slot`
      kLocal,    ///< mapped to subgraph `target`
      kForeign,  ///< whole tagged range lives in foreign partition `pid`
      kDevice,   ///< partition `pid` lives on another board of the array
    };
    rw::Walk w;
    Action action = Action::kLocal;
    std::uint32_t hot_slot = 0;
    SubgraphId target = kInvalidSubgraph;
    PartitionId pid = 0;
  };

  /// Per-shard accumulation state: every counter or pool an event handler
  /// mutates that is not owned by exactly one shard's model objects. One
  /// instance per shard (board = 0, channel c = 1 + c), written only by
  /// that shard's handlers, folded into the run totals by merge_sinks().
  /// Cache-line aligned so neighbouring shards don't false-share.
  struct alignas(64) ShardSink {
    EngineMetrics metrics;
    /// Per-vertex visit counts (lazily sized on first hop, merged into the
    /// global vector post-run); only filled when record_visits is on.
    std::vector<std::uint64_t> visits;
    std::vector<std::uint64_t> job_hops;  ///< per job, sized up front
    /// Per-job visit counts (explicit-jobs runs with record_visits only).
    std::vector<std::vector<std::uint64_t>> job_visits;
    VectorPool<rw::Walk> walk_pool;
    bool done = false;  ///< quiesce flag, set by the board's broadcast
    /// Channel→board ops staged this window (channel shards only); always
    /// empty at window barriers — the flush hook drains it every window.
    std::vector<BoardOp> board_stage;
    std::uint64_t board_batches = 0;      ///< aggregated flushes sent
    std::uint64_t board_batched_ops = 0;  ///< ops carried inside them
    // Shard-audit tallies (written only when EngineOptions::shard_audit).
    std::uint64_t local_sends = 0;
    std::uint64_t cross_sends = 0;
    std::uint64_t lookahead_violations = 0;
    Tick min_cross_delay = std::numeric_limits<Tick>::max();
  };

  /// Result of updating one walk (shared by all three levels).
  struct HopOutcome {
    bool completed = false;
    std::uint32_t extra_cycles = 0;  ///< ITS search steps etc.
  };

  /// Per-job runtime state: workload + walk model + progress counters +
  /// timing marks.
  struct JobRt {
    service::WalkJob job;
    /// The job's walk model (resolved from the registry at construction);
    /// every per-hop decision for this job's walks dispatches through it.
    std::unique_ptr<const rw::WalkModel> model;
    std::uint64_t expected = 0;   ///< walks this job will start
    std::uint64_t started = 0;
    std::uint64_t completed = 0;
    std::uint64_t hops = 0;
    std::uint64_t parked = 0;
    std::uint32_t walk_base = 0;  ///< global walk-id offset of local walk 0
    bool admitted = false;
    Tick admit_tick = 0;
    Tick done_tick = 0;
    std::vector<std::uint64_t> visits;     ///< explicit-jobs runs only
    std::vector<std::uint64_t> endpoints;  ///< explicit-jobs runs only
  };

  // --- setup / job lifecycle ---------------------------------------------
  void arrive_job(std::uint16_t j);
  void admit_job(std::uint16_t j);
  void finish_job(JobRt& jc);
  void drain_admit_queue();
  void inject_admitted_walks();
  [[nodiscard]] service::JobStats job_stats(const JobRt& jc) const;
  [[nodiscard]] const rw::WalkSpec& spec_of(const rw::Walk& w) const {
    return jobs_[w.job].job.spec;
  }
  [[nodiscard]] const rw::WalkModel& model_of(const rw::Walk& w) const {
    return *jobs_[w.job].model;
  }
  void begin_partition(PartitionId p, bool charge_io);
  void load_hot_subgraphs();
  void schedule_heartbeats();

  // --- walk updating -----------------------------------------------------
  /// Advance `w` one hop. Sampling draws come from the walk's own RNG
  /// stream (`w.rng_state`), so the resulting path is independent of the
  /// order in which the DES interleaves walks. Progress counters go into
  /// the executing shard's sink.
  HopOutcome update_walk(rw::Walk& w, const partition::Subgraph& sg, ShardSink& sink);
  HopOutcome update_walk_step(rw::Walk& w, const partition::Subgraph& sg,
                              ShardSink& sink, Xoshiro256& rng);

  // --- chip level (channel shard) ----------------------------------------
  void kick_chip(ChipState& c);
  void process_chip(ChipState& c);
  /// Chip → board: send a drain report for every empty, not-yet-reported
  /// slot so the board can grant loads into it. Per-slot reporting keeps
  /// the load cadence close to the serial engine's (a slot becomes
  /// grantable the moment it drains, one handoff later), instead of
  /// batching everything behind whole-chip idle.
  void report_drained_slots(ChipState& c);

  // --- board-side load path ----------------------------------------------
  void board_slot_drained(std::uint32_t g, std::size_t slot_idx);
  void board_request_loads(std::uint32_t g);
  void start_load(std::uint32_t g, std::size_t slot_idx, SubgraphId sg,
                  std::uint32_t compare_ops);

  // --- channel level (channel shard) -------------------------------------
  void poll_channel(ChannelState& ch);
  void receive_roving(ChannelState& ch, std::vector<rw::Walk> walks);
  void kick_channel(ChannelState& ch);
  void process_channel(ChannelState& ch);

  // --- board level (board shard) -----------------------------------------
  void enqueue_board(std::vector<rw::Walk> walks);
  void kick_board_guider();
  void process_board_guider();
  void kick_board_updater();
  void process_board_updater();
  /// Channel/chip → board: a batch of walks finished at `origin` (a global
  /// chip id, or kBoardOrigin for channel-level completions).
  void board_receive_completed(std::uint32_t origin, std::vector<rw::Walk> walks);

  // --- windowed channel→board batching -------------------------------------
  /// Stage one channel→board operation in shard `src`'s sink; the shard's
  /// window-flush hook ships the window's accumulated ops as one message.
  void stage_board_op(sim::ShardId src, BoardOp op);
  /// Window-flush hook body: one aggregated xsend per window per shard,
  /// delivered at the latest staged arrival tick.
  void flush_board_stage(sim::ShardId src);
  /// Board shard: apply a flushed window batch in staged order.
  void apply_board_batch(std::vector<BoardOp> ops);

  // --- sharded board guider/updater pool ------------------------------------
  [[nodiscard]] std::uint32_t guider_pool_shards() const {
    return static_cast<std::uint32_t>(gshards_.size());
  }
  [[nodiscard]] sim::ShardId guider_shard_id(std::uint32_t k) const {
    return 1 + static_cast<sim::ShardId>(channels_.size()) + k;
  }
  /// Deterministic (job, walk-batch) partition: which sub-shard routes `w`.
  /// A pure function of walk identity, so the assignment — and with it the
  /// event schedule — is invariant under worker count and timing.
  [[nodiscard]] std::uint32_t guider_shard_of(const rw::Walk& w) const {
    const std::uint32_t batch = std::max<std::uint32_t>(1, opt_.accel.batch_walks);
    return (w.job + w.id / batch) % guider_pool_shards();
  }
  /// Sub-shard k: route a dispatched chunk (dense pre-walk, hot membership,
  /// range check against the snapshot partition `part`, mapping lookup via
  /// the sub-shard's private caches), charge the chunk on the sub-shard's
  /// guider slice, and send the decisions back to the board.
  void guide_route_chunk(std::uint32_t k, PartitionId part, std::uint64_t epoch,
                         std::vector<rw::Walk> walks);
  /// Pure routing verdict for one walk (sub-shard compute half of the old
  /// board_route_walk). Mutates only `w` (pre-walk), the sub-shard's private
  /// cache state, and `sink`/`cycles` tallies.
  RouteDecision route_decide(rw::Walk w, PartitionId part, GuiderShard& g,
                             ShardSink& sink, std::uint64_t& cycles);
  /// Board shard: apply a chunk's decisions in arrival order (PWB inserts,
  /// hot placement with live capacity check, foreigner/forward placement,
  /// then load grants for the touched chips).
  void apply_route_decisions(std::vector<RouteDecision> decs);
  /// Board-shard tail for a hot-slot decision whose queue filled while the
  /// decision was in flight: route past the hot set (range check + uncached
  /// mapping lookup) exactly as the serial guider's fall-through did.
  void route_fallback(rw::Walk w, std::vector<std::uint32_t>& touched_chips);
  /// Place a routed walk: PWB when its partition is current, forward when
  /// another board owns it, foreigner-park otherwise.
  void place_routed(SubgraphId target, const rw::Walk& w,
                    std::vector<std::uint32_t>& touched_chips);
  /// Foreigner placement: pending list + buffered-bytes accounting + flush.
  void park_foreigner(PartitionId pid, const rw::Walk& w);
  /// Sub-shard k: run one hot-slot batch through update_walk on the
  /// sub-shard's updater slice; completed/to-guide splits return to board.
  void update_board_chunk(std::uint32_t k, SubgraphId sgid,
                          std::vector<rw::Walk> walks);
  /// Board shard: complete finished walks, re-enqueue the rest.
  void apply_board_updates(std::vector<rw::Walk> completed,
                           std::vector<rw::Walk> to_guide);

  // --- cross-device forwarding (array-attached boards only) ---------------
  /// True when partition `p`'s walks execute on this board. Always true for
  /// a standalone engine.
  [[nodiscard]] bool owns_partition(PartitionId p) const {
    return array_ == nullptr ||
           partition::device_of_partition(p, array_->devices) == array_->device;
  }
  /// Board shard: stage `w` (headed for foreign partition `pid`) in the
  /// forwarding buffer of its home device; flushes on batch size, arms the
  /// timeout on the buffer's 0 → 1 transition.
  void forward_walk(PartitionId pid, const rw::Walk& w);
  /// Serialize-and-ship one destination's forwarding buffer to the fabric.
  void flush_forward(std::uint32_t dst);
  /// Push per-job completion deltas accumulated by complete_walk to the
  /// array coordinator (no-op when clean or standalone).
  void array_flush_completions();

  // --- shared helpers ----------------------------------------------------
  void complete_walk(const rw::Walk& w, std::uint64_t& completed_bytes,
                     std::uint64_t flush_cap);
  void flush_walk_pages(std::uint64_t bytes, std::uint64_t& counter);
  void insert_pwb(SubgraphId sg, rw::Walk w, std::vector<std::uint32_t>& touched_chips);
  void maybe_switch_partition();
  void check_done();
  /// Board → all channel shards: the run is over; stop polling and kicking.
  void broadcast_done();
  /// Fold every shard sink into the global totals (metrics_, job hops and
  /// visit vectors). Deterministic: plain sums in shard order.
  void merge_sinks();
  [[nodiscard]] std::uint32_t chip_of_sg(SubgraphId sg) const;
  [[nodiscard]] bool walk_in_sg(const rw::Walk& w, const partition::Subgraph& sg) const;
  [[nodiscard]] std::uint64_t wbytes() const { return walk_bytes_; }

  /// Fold run totals (per-unit update counts, busy times, byte counters,
  /// scheduler work) into the counter registry; called once at end of run.
  void publish_counters(const ShardAuditReport& audit);

  // --- parallel-DES shard facade -----------------------------------------
  /// Home shards: the board (plus every other shared resource — DRAM, FTL,
  /// host link, job control) is shard 0; channel c and its chips are 1 + c.
  static constexpr sim::ShardId kBoardShard = 0;
  /// `origin` sentinel for board_receive_completed: channel-level finish.
  static constexpr std::uint32_t kBoardOrigin =
      std::numeric_limits<std::uint32_t>::max();
  [[nodiscard]] static sim::ShardId chip_shard(const ChipState& c) {
    return 1 + c.channel;
  }
  [[nodiscard]] static sim::ShardId channel_shard(const ChannelState& ch) {
    return 1 + ch.index;
  }
  /// Translate a board-local shard id (0 = board, 1 + c = channel c) into
  /// the owning simulator's global shard. Standalone engines own their
  /// simulator, so the slice starts at 0 and the mapping is the identity;
  /// array-attached boards add the slice base the array assigned them.
  [[nodiscard]] sim::Shard& shard(sim::ShardId s) {
    return psim_->shard(shard_base_ + s);
  }
  [[nodiscard]] std::uint32_t num_local_shards() const {
    return static_cast<std::uint32_t>(sinks_.size());
  }
  /// Board clock — the timeline every board-owned model charges against.
  [[nodiscard]] Tick bnow() const {
    return psim_->shard(shard_base_ + kBoardShard).now();
  }
  /// Same-shard schedule, `delay` ns from the shard clock.
  void sched(sim::ShardId s, Tick delay, sim::EventFn fn);
  /// Same-shard schedule at absolute tick `at` (clamped to the shard clock).
  void sched_at(sim::ShardId s, Tick at, sim::EventFn fn);
  /// Cross-shard send targeting absolute tick `at`, floored to the honest
  /// handoff cost (>= the lookahead window) so it always clears the
  /// conservative window — the shard audit must report zero violations.
  void xsend(sim::ShardId src, sim::ShardId dst, Tick at, sim::EventFn fn);

  // --- members -----------------------------------------------------------
  const partition::PartitionedGraph* pg_;
  EngineOptions opt_;
  Tick handoff_ns_ = 0;  ///< cross-shard floor == conservative lookahead
  /// Array attachment (null for a standalone engine). Non-owning; the
  /// array keeps it alive for the engine's lifetime.
  const ArrayAttachment* array_ = nullptr;
  sim::ShardId shard_base_ = 0;  ///< first global shard of this board's slice
  /// Simulator owned by a standalone engine; empty when array-attached.
  std::unique_ptr<sim::ParallelSimulator> owned_psim_;
  /// The simulator events actually run on: owned_psim_ or the array's.
  sim::ParallelSimulator* psim_ = nullptr;
  std::unique_ptr<ssd::FlashArray> flash_;
  std::unique_ptr<ssd::GraphLayout> layout_;
  std::unique_ptr<ssd::Ftl> ftl_;
  std::unique_ptr<ssd::BankedDram> dram_;
  std::unique_ptr<partition::SubgraphMappingTable> mtab_;
  std::unique_ptr<partition::DenseVertexTable> dtab_;
  std::unique_ptr<SubgraphScheduler> scheduler_;
  std::unique_ptr<rw::ItsTable> its_;

  std::vector<ChipState> chips_;
  std::vector<ChannelState> channels_;
  BoardState board_;
  std::vector<GuiderShard> gshards_;  ///< board guider pool, one per sub-shard
  std::vector<ChipView> chip_views_;  ///< board-side slot residency replica
  std::vector<ShardSink> sinks_;      ///< one per shard, single writer each

  static constexpr std::uint64_t kDramLineBytes = 64;
  /// Free list for the per-batch chip lists the board guider emits
  /// (board-shard only; walk batches use the per-shard sink pools).
  VectorPool<std::uint32_t> chip_list_pool_;
  std::vector<std::vector<rw::Walk>> pwb_walks_;   // per subgraph (current partition)
  std::vector<std::uint32_t> pwb_wc_bytes_;        // write-combining residue per entry
  std::vector<std::vector<rw::Walk>> fl_walks_;    // per subgraph, resident in flash
  std::vector<std::vector<rw::Walk>> pending_;     // per partition (foreign / future)

  // Job table (always at least the implicit job 0), in submission order.
  std::vector<JobRt> jobs_;
  bool explicit_jobs_ = false;     ///< EngineOptions::jobs was non-empty
  bool track_job_outputs_ = false; ///< record per-job visits/endpoints/paths
  bool track_job_visits_ = false;  ///< track_job_outputs_ && record_visits
  std::uint64_t total_expected_ = 0;
  std::uint32_t admitted_jobs_ = 0;
  std::uint32_t running_jobs_ = 0;
  std::deque<std::uint16_t> admit_queue_;  ///< arrived, awaiting a slot
  bool partition_started_ = false;
  bool hot_loaded_ = false;

  EngineMetrics metrics_;  ///< run totals, valid after merge_sinks()
  obs::CounterRegistry registry_;
  std::vector<std::uint64_t> visits_;
  std::vector<std::uint64_t> endpoints_;
  std::vector<std::vector<VertexId>> paths_;
  std::unique_ptr<sim::TimelineRecorder> timeline_;

  // Cross-device forwarding state (board shard only; sized iff array-attached).
  std::vector<std::vector<rw::Walk>> fwd_buf_;  ///< per destination device
  std::vector<std::uint64_t> fwd_epoch_;  ///< bumped per flush; stales timeouts
  std::vector<std::uint64_t> completion_delta_;  ///< per job, un-notified
  bool completion_dirty_ = false;
  bool primed_ = false;
  bool finalized_ = false;

  PartitionId current_partition_ = 0;
  std::uint64_t active_walks_ = 0;  ///< unfinished walks owned by current partition
  std::uint64_t walk_bytes_ = 0;
  std::uint64_t flush_lpn_ = 0;     ///< rolling logical page for walk flushes
  std::uint64_t flush_window_ = 1;  ///< LPN window size for walk flushes
  std::uint64_t partition_epoch_ = 0;  ///< bumped per switch; stales sub caches
  std::uint32_t upd_rr_ = 0;  ///< round-robin updater-chunk dispatch
  bool done_ = false;
  Tick done_tick_ = 0;  ///< when the final walk completed (== exec time)
};

}  // namespace fw::accel
