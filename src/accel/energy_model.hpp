// Energy model for FlashWalker vs the host baseline.
//
// The paper motivates in-storage processing partly by the "high memory cost
// and energy consumption" of host-based systems (§I) but does not publish
// an energy evaluation; this model is our extension, built from
// order-of-magnitude per-operation energies typical of the literature
// (NAND datasheets, DDR4 power notes, 45 nm accelerator papers). Outputs
// are for *relative* comparison between the two systems running the same
// workload on the same flash — absolute joules carry the usual model-error
// caveats.
#pragma once

#include <cstdint>

#include "accel/config.hpp"
#include "accel/engine.hpp"
#include "baseline/graphwalker.hpp"

namespace fw::accel {

struct EnergyParams {
  // NAND flash (per 4 KiB page / per block).
  double flash_read_uj_per_page = 25.0;
  double flash_program_uj_per_page = 250.0;
  double flash_erase_uj_per_block = 2000.0;
  // Interconnect, per byte moved.
  double channel_pj_per_byte = 15.0;  ///< ONFI bus drivers
  double pcie_pj_per_byte = 60.0;     ///< SerDes + protocol
  double dram_pj_per_byte = 150.0;    ///< DDR4 activate+rw amortized
  // Accelerator PEs (45 nm): dynamic energy per operation, leakage per mm².
  double pe_pj_per_op = 15.0;
  double leakage_mw_per_mm2 = 1.5;
  // Host CPU: active power while the baseline runs (8-core desktop under
  // a memory-bound pointer-chasing load), plus host DRAM background.
  double host_active_w = 65.0;
  double host_idle_w = 20.0;  ///< charged while the host waits on I/O
};

struct EnergyReport {
  double flash_j = 0.0;
  double interconnect_j = 0.0;  ///< channel + PCIe
  double dram_j = 0.0;
  double compute_j = 0.0;       ///< PEs (FlashWalker) or CPU (baseline)
  double static_j = 0.0;        ///< leakage / idle over the run

  [[nodiscard]] double total_j() const {
    return flash_j + interconnect_j + dram_j + compute_j + static_j;
  }
};

/// Energy of a FlashWalker run.
EnergyReport estimate_flashwalker(const EngineResult& result, const AccelConfig& accel,
                                  const ssd::SsdConfig& ssd,
                                  const EnergyParams& params = {});

/// Energy of a GraphWalker (or DrunkardMob) run on the host model.
EnergyReport estimate_baseline(const baseline::BaselineResult& result,
                               const ssd::SsdConfig& ssd,
                               const EnergyParams& params = {});

}  // namespace fw::accel
