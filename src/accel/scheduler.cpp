#include "accel/scheduler.hpp"

namespace fw::accel {

SubgraphScheduler::SubgraphScheduler(const partition::PartitionedGraph& pg,
                                     const ssd::GraphLayout& layout,
                                     const AccelConfig& config, std::uint32_t num_chips,
                                     std::uint32_t chips_per_channel)
    : pg_(&pg), layout_(&layout), config_(config), num_chips_(num_chips) {
  state_.resize(pg.num_subgraphs());
  chip_of_sg_.resize(pg.num_subgraphs());
  for (SubgraphId sg = 0; sg < pg.num_subgraphs(); ++sg) {
    const auto& place = layout.placement(sg);
    chip_of_sg_[sg] = place.channel * chips_per_channel + place.chip;
  }
  candidates_.resize(num_chips_);
  topn_.assign(num_chips_, TopNList(config_.top_n));
}

void SubgraphScheduler::begin_partition(PartitionId p) {
  current_partition_ = p;
  for (auto& c : candidates_) c.clear();
  for (auto& t : topn_) t = TopNList(config_.top_n);
  const auto [first, last] = pg_->partition_range(p);
  for (SubgraphId sg = first; sg < last; ++sg) {
    candidates_[chip_of_sg_[sg]].push_back(sg);
    if (config_.features.subgraph_scheduling && pending_walks(sg) > 0) {
      topn_[chip_of_sg_[sg]].update(sg, score(sg));
    }
  }
}

double SubgraphScheduler::score(SubgraphId sg) const {
  const SgState& s = state_[sg];
  const double base = static_cast<double>(s.pwb) * config_.alpha +
                      static_cast<double>(s.fl);
  return pg_->subgraph(sg).dense ? base : base * config_.beta;
}

void SubgraphScheduler::maybe_refresh_topn(SubgraphId sg) {
  if (!config_.features.subgraph_scheduling) return;
  if (pg_->partition_of(sg) != current_partition_) return;
  SgState& s = state_[sg];
  if (++s.inserts_since_update < config_.score_update_every &&
      topn_[chip_of_sg_[sg]].contains(sg)) {
    return;  // lazy: defer the list write (paper's every-M-insertions rule)
  }
  s.inserts_since_update = 0;
  topn_[chip_of_sg_[sg]].update(sg, score(sg));
}

void SubgraphScheduler::on_walk_insert(SubgraphId sg, bool to_flash) {
  if (to_flash) {
    ++state_[sg].fl;
  } else {
    ++state_[sg].pwb;
  }
  maybe_refresh_topn(sg);
}

void SubgraphScheduler::on_entry_flushed(SubgraphId sg, std::uint64_t n) {
  SgState& s = state_[sg];
  s.pwb = s.pwb >= n ? s.pwb - n : 0;
  s.fl += n;
  maybe_refresh_topn(sg);
}

void SubgraphScheduler::on_subgraph_loaded(SubgraphId sg) {
  state_[sg].pwb = 0;
  state_[sg].fl = 0;
  state_[sg].inserts_since_update = 0;
  topn_[chip_of_sg_[sg]].remove(sg);
}

std::optional<SubgraphScheduler::Pick> SubgraphScheduler::pick_for_chip(
    std::uint32_t chip_global, const std::function<bool(SubgraphId)>& eligible) {
  Pick pick;
  if (config_.features.subgraph_scheduling) {
    // Fast path: pop the per-chip top-N list.
    TopNList& list = topn_[chip_global];
    while (!list.empty()) {
      pick.compare_ops += static_cast<std::uint32_t>(list.size());
      const auto best = list.pop_best();
      const SubgraphId sg = static_cast<SubgraphId>(best->first);
      if (pending_walks(sg) > 0 && eligible(sg)) {
        pick.sg = sg;
        return pick;
      }
      // Stale entry (drained or ineligible): keep popping.
    }
  }
  // Fallback / baseline: scan the chip's candidates. Baseline policy is
  // GraphWalker's most-walks-first; with SS on this also repopulates a
  // drained top-N list, so the scan's work is amortized — subsequent picks
  // take the N-comparison fast path again instead of rescanning.
  std::uint64_t best_walks = 0;
  double best_score = -1.0;
  for (SubgraphId sg : candidates_[chip_global]) {
    ++pick.compare_ops;
    const std::uint64_t walks = pending_walks(sg);
    if (walks == 0) continue;
    if (config_.features.subgraph_scheduling) {
      // Repopulate regardless of eligibility: a subgraph mid-load is only
      // transiently ineligible and should stay ranked for future picks.
      topn_[chip_global].update(sg, score(sg));
      state_[sg].inserts_since_update = 0;
      if (!eligible(sg)) continue;
      const double s = score(sg);
      if (s > best_score) {
        best_score = s;
        pick.sg = sg;
      }
    } else {
      if (!eligible(sg)) continue;
      if (walks > best_walks) {
        best_walks = walks;
        pick.sg = sg;
      }
    }
  }
  if (pick.sg == kInvalidSubgraph) return std::nullopt;
  return pick;
}

}  // namespace fw::accel
