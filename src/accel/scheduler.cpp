#include "accel/scheduler.hpp"

#include <algorithm>

namespace fw::accel {

SubgraphScheduler::SubgraphScheduler(const partition::PartitionedGraph& pg,
                                     const ssd::GraphLayout& layout,
                                     const AccelConfig& config, std::uint32_t num_chips,
                                     std::uint32_t chips_per_channel)
    : pg_(&pg), layout_(&layout), config_(config), num_chips_(num_chips) {
  state_.resize(pg.num_subgraphs());
  chip_of_sg_.resize(pg.num_subgraphs());
  for (SubgraphId sg = 0; sg < pg.num_subgraphs(); ++sg) {
    const auto& place = layout.placement(sg);
    chip_of_sg_[sg] = place.channel * chips_per_channel + place.chip;
  }
  candidates_.resize(num_chips_);
  topn_.assign(num_chips_, TopNList(config_.top_n));
}

void SubgraphScheduler::begin_partition(PartitionId p) {
  current_partition_ = p;
  for (auto& c : candidates_) c.clear();
  for (auto& t : topn_) t = TopNList(config_.top_n);
  const auto [first, last] = pg_->partition_range(p);
  for (SubgraphId sg = first; sg < last; ++sg) {
    candidates_[chip_of_sg_[sg]].push_back(sg);
    if (config_.features.subgraph_scheduling && pending_walks(sg) > 0) {
      topn_[chip_of_sg_[sg]].update(sg, score(sg));
    }
  }
}

double SubgraphScheduler::score(SubgraphId sg) const {
  const SgState& s = state_[sg];
  const double base = static_cast<double>(s.pwb) * config_.alpha +
                      static_cast<double>(s.fl);
  return pg_->subgraph(sg).dense ? base : base * config_.beta;
}

void SubgraphScheduler::maybe_refresh_topn(SubgraphId sg) {
  if (!config_.features.subgraph_scheduling) return;
  if (pg_->partition_of(sg) != current_partition_) return;
  SgState& s = state_[sg];
  if (++s.inserts_since_update < config_.score_update_every &&
      topn_[chip_of_sg_[sg]].contains(sg)) {
    return;  // lazy: defer the list write (paper's every-M-insertions rule)
  }
  s.inserts_since_update = 0;
  topn_[chip_of_sg_[sg]].update(sg, score(sg));
}

void SubgraphScheduler::configure_jobs(std::vector<std::uint32_t> weights) {
  job_weight_ = std::move(weights);
  for (auto& w : job_weight_) w = std::max<std::uint32_t>(1, w);
  job_service_.assign(job_weight_.size(), 0.0);
  job_pending_.assign(
      fair() ? state_.size() * job_weight_.size() : 0, 0);
}

double SubgraphScheduler::job_service(std::uint16_t job) const {
  if (job >= job_service_.size()) return 0.0;
  return job_service_[job] / static_cast<double>(job_weight_[job]);
}

double SubgraphScheduler::fair_need(SubgraphId sg) const {
  const std::size_t jobs = job_weight_.size();
  const std::size_t row = static_cast<std::size_t>(sg) * jobs;
  double need = -1.0;
  for (std::size_t j = 0; j < jobs; ++j) {
    if (job_pending_[row + j] == 0) continue;
    const double s = job_service(static_cast<std::uint16_t>(j));
    if (need < 0.0 || s < need) need = s;
  }
  return need < 0.0 ? 0.0 : need;
}

void SubgraphScheduler::on_walk_insert(SubgraphId sg, bool to_flash) {
  on_walk_insert(sg, /*job=*/0, to_flash);
}

void SubgraphScheduler::on_walk_insert(SubgraphId sg, std::uint16_t job, bool to_flash) {
  if (to_flash) {
    ++state_[sg].fl;
  } else {
    ++state_[sg].pwb;
  }
  if (fair()) {
    // The row tracks pwb + fl together: overflow flushes keep walks pending,
    // so a flush moves nothing between jobs.
    ++job_pending_[static_cast<std::size_t>(sg) * job_weight_.size() + job];
  }
  maybe_refresh_topn(sg);
}

void SubgraphScheduler::on_entry_flushed(SubgraphId sg, std::uint64_t n) {
  SgState& s = state_[sg];
  s.pwb = s.pwb >= n ? s.pwb - n : 0;
  s.fl += n;
  maybe_refresh_topn(sg);
}

void SubgraphScheduler::on_subgraph_loaded(SubgraphId sg, std::uint32_t granted_pages) {
  if (fair()) {
    // Deficit charging: bill the load's plane-read pages to the resident
    // jobs in proportion to their pending walks, then clear the row.
    const std::size_t jobs = job_weight_.size();
    const std::size_t row = static_cast<std::size_t>(sg) * jobs;
    std::uint64_t total = 0;
    for (std::size_t j = 0; j < jobs; ++j) total += job_pending_[row + j];
    for (std::size_t j = 0; j < jobs; ++j) {
      if (total > 0 && granted_pages > 0 && job_pending_[row + j] > 0) {
        job_service_[j] += static_cast<double>(granted_pages) *
                           static_cast<double>(job_pending_[row + j]) /
                           static_cast<double>(total);
      }
      job_pending_[row + j] = 0;
    }
  }
  state_[sg].pwb = 0;
  state_[sg].fl = 0;
  state_[sg].inserts_since_update = 0;
  topn_[chip_of_sg_[sg]].remove(sg);
}

std::optional<SubgraphScheduler::Pick> SubgraphScheduler::pick_for_chip(
    std::uint32_t chip_global, const std::function<bool(SubgraphId)>& eligible) {
  Pick pick;
  // Fairness key (multi-job only): least weight-normalized service over the
  // jobs resident in the candidate wins — a subgraph holding even one walk
  // of an underserved job outranks one holding only well-served jobs, so a
  // small job is never starved behind a large one that dominates every
  // subgraph. Eq. 1 score (or the baseline walk count) breaks ties, then
  // the lower subgraph id — fully deterministic.
  double best_need = 0.0;
  double fair_tie = -1.0;
  auto fair_better = [&](SubgraphId sg, double tie_break) {
    const double need = fair_need(sg);
    if (pick.sg == kInvalidSubgraph || need < best_need ||
        (need == best_need &&
         (tie_break > fair_tie || (tie_break == fair_tie && sg < pick.sg)))) {
      best_need = need;
      fair_tie = tie_break;
      return true;
    }
    return false;
  };

  if (config_.features.subgraph_scheduling) {
    TopNList& list = topn_[chip_global];
    if (!fair()) {
      // Fast path: pop the per-chip top-N list.
      while (!list.empty()) {
        pick.compare_ops += static_cast<std::uint32_t>(list.size());
        const auto best = list.pop_best();
        const SubgraphId sg = static_cast<SubgraphId>(best->first);
        if (pending_walks(sg) > 0 && eligible(sg)) {
          pick.sg = sg;
          return pick;
        }
        // Stale entry (drained or ineligible): keep popping.
      }
    } else if (!list.empty()) {
      // Fair path: scan the retained entries (N is small) with the fairness
      // key instead of popping by score alone.
      const auto entries = list.entries();
      pick.compare_ops += static_cast<std::uint32_t>(entries.size());
      for (const auto& entry : entries) {
        const SubgraphId sg = static_cast<SubgraphId>(entry.first);
        if (pending_walks(sg) == 0) {
          list.remove(entry.first);  // drained entries would otherwise linger
          continue;
        }
        if (!eligible(sg)) continue;
        if (fair_better(sg, score(sg))) pick.sg = sg;
      }
      if (pick.sg != kInvalidSubgraph) {
        list.remove(pick.sg);
        return pick;
      }
    }
  }
  // Fallback / baseline: scan the chip's candidates. Baseline policy is
  // GraphWalker's most-walks-first; with SS on this also repopulates a
  // drained top-N list, so the scan's work is amortized — subsequent picks
  // take the N-comparison fast path again instead of rescanning.
  std::uint64_t best_walks = 0;
  double best_score = -1.0;
  for (SubgraphId sg : candidates_[chip_global]) {
    ++pick.compare_ops;
    const std::uint64_t walks = pending_walks(sg);
    if (walks == 0) continue;
    if (config_.features.subgraph_scheduling) {
      // Repopulate regardless of eligibility: a subgraph mid-load is only
      // transiently ineligible and should stay ranked for future picks.
      topn_[chip_global].update(sg, score(sg));
      state_[sg].inserts_since_update = 0;
      if (!eligible(sg)) continue;
      const double s = score(sg);
      if (fair()) {
        if (fair_better(sg, s)) pick.sg = sg;
      } else if (s > best_score) {
        best_score = s;
        pick.sg = sg;
      }
    } else {
      if (!eligible(sg)) continue;
      if (fair()) {
        if (fair_better(sg, static_cast<double>(walks))) pick.sg = sg;
      } else if (walks > best_walks) {
        best_walks = walks;
        pick.sg = sg;
      }
    }
  }
  if (pick.sg == kInvalidSubgraph) return std::nullopt;
  return pick;
}

}  // namespace fw::accel
