// Analytic circuit-area model reproducing Table II's "Area (mm²)" row.
//
// Substitution (DESIGN.md §3.1): the paper synthesizes Chisel RTL with Yosys
// on FreePDK45 and sizes SRAM with CACTI/Destiny. Without EDA tools we
// estimate area from published 45 nm figures: SRAM macro density and
// per-PE logic areas calibrated so the three Table II totals (1.30 / 1.84 /
// 14.31 mm²) are reproduced by the same formula that then extrapolates to
// other configurations (the ablation benches sweep buffer sizes).
#pragma once

#include <cstdint>

#include "accel/config.hpp"

namespace fw::accel {

struct AreaBreakdown {
  double sram_mm2 = 0.0;     ///< buffers (subgraph, walk queues, guide, roving)
  double tables_mm2 = 0.0;   ///< mapping / dense tables, query caches (board)
  double logic_mm2 = 0.0;    ///< updaters + guiders + control
  [[nodiscard]] double total() const { return sram_mm2 + tables_mm2 + logic_mm2; }
};

struct AreaModelParams {
  /// 45 nm SRAM area: coeff * KiB^exponent (sublinear — bigger macros
  /// amortize peripheral circuitry; CACTI-class behaviour). Calibrated so
  /// the three Table II totals are matched within ~15%.
  double sram_coeff_mm2 = 0.0030;
  double sram_exponent = 0.843;
  /// Logic area per updater / guider PE at 45 nm (calibrated; board PEs run
  /// at 1 GHz and are charged extra for the deeper pipeline).
  double updater_mm2 = 0.035;
  double guider_mm2 = 0.012;
  double control_overhead = 0.10;  ///< fraction added for control/NoC glue
};

enum class AccelLevel { kChip, kChannel, kBoard };

/// Area of one accelerator instance at `level` under `cfg`.
AreaBreakdown estimate_area(const AccelConfig& cfg, AccelLevel level,
                            const AreaModelParams& params = {});

/// Paper Table II reference totals, for the bench's paper-vs-model column.
double paper_area_mm2(AccelLevel level);

}  // namespace fw::accel
